#include "pricing/tariff.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::pricing {

TouTariff::TouTariff(std::vector<TouPeriod> periods, double default_price)
    : periods_(std::move(periods)), default_price_(default_price) {
  for (const auto& p : periods_) {
    if (p.start_hour < 0.0 || p.start_hour >= 24.0 || p.end_hour < 0.0 || p.end_hour > 24.0) {
      throw std::invalid_argument("TouPeriod: hours out of range");
    }
    if (p.price < 0.0) throw std::invalid_argument("TouPeriod: negative price");
  }
  if (default_price < 0.0) throw std::invalid_argument("TouTariff: negative default price");
}

TouTariff TouTariff::typical() {
  return TouTariff({{23.0, 7.0, 45.0}, {17.0, 22.0, 110.0}}, 75.0);
}

double TouTariff::price_at_hour(double hour_of_day) const {
  double h = std::fmod(hour_of_day, 24.0);
  if (h < 0.0) h += 24.0;
  for (const auto& p : periods_) {
    const bool wraps = p.start_hour > p.end_hour;
    const bool inside = wraps ? (h >= p.start_hour || h < p.end_hour)
                              : (h >= p.start_hour && h < p.end_hour);
    if (inside) return p.price;
  }
  return default_price_;
}

}  // namespace ecthub::pricing
