#include "pricing/rtp.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecthub::pricing {

RtpGenerator::RtpGenerator(RtpConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {
  if (cfg_.base_price <= 0.0) throw std::invalid_argument("RtpConfig: base_price must be > 0");
  if (cfg_.spike_prob < 0.0 || cfg_.spike_prob > 1.0) {
    throw std::invalid_argument("RtpConfig: spike_prob out of [0, 1]");
  }
  if (cfg_.noise_persistence < 0.0 || cfg_.noise_persistence >= 1.0) {
    throw std::invalid_argument("RtpConfig: noise_persistence out of [0, 1)");
  }
}

double RtpGenerator::diurnal_component(double hour_of_day) const {
  // Two-bump day: a morning shoulder around 9h and the dominant evening peak
  // around 20h, with a deep trough in the small hours — the Fig. 5 shape.
  const double morning =
      0.45 * std::exp(-0.5 * std::pow((hour_of_day - 9.0) / 2.5, 2.0));
  const double evening =
      1.00 * std::exp(-0.5 * std::pow((hour_of_day - 20.0) / 2.8, 2.0));
  const double trough =
      -0.55 * std::exp(-0.5 * std::pow((hour_of_day - 4.0) / 2.5, 2.0));
  return cfg_.diurnal_amplitude * (morning + evening + trough);
}

std::vector<double> RtpGenerator::generate(const TimeGrid& grid,
                                           const std::vector<double>& system_load) {
  std::vector<double> price;
  generate_into(grid, system_load, price);
  return price;
}

void RtpGenerator::generate_into(const TimeGrid& grid, const std::vector<double>& system_load,
                                 std::vector<double>& price_out) {
  if (!system_load.empty() && system_load.size() != grid.size()) {
    throw std::invalid_argument("RtpGenerator: system_load length must match grid");
  }
  price_out.resize(grid.size());
  double ar = 0.0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    ar = cfg_.noise_persistence * ar + rng_.normal(0.0, cfg_.noise_sigma);
    double p = cfg_.base_price + diurnal_component(grid.hour_of_day(t)) + ar;
    if (!system_load.empty()) p += cfg_.load_coupling * system_load[t];
    if (rng_.bernoulli(cfg_.spike_prob)) p += rng_.exponential(1.0 / cfg_.spike_scale);
    price_out[t] = std::max(p, cfg_.floor_price);
  }
}

}  // namespace ecthub::pricing
