// Real-time electricity price (RTP) generator — the ENGIE-data substitute.
//
// The paper's Fig. 5 shows RTP in $/MWh over four days with (a) a diurnal
// double structure peaking in the evening, (b) positive correlation with the
// network load, and (c) occasional spikes.  We reproduce those features with
// a diurnal base curve, an optional load-coupling term and a jump process.
#pragma once

#include "common/rng.hpp"
#include "common/time_grid.hpp"

#include <vector>

namespace ecthub::pricing {

struct RtpConfig {
  double base_price = 70.0;        ///< $/MWh level around which prices move
  double diurnal_amplitude = 30.0; ///< $/MWh swing of the deterministic curve
  double load_coupling = 25.0;     ///< $/MWh added at full system load
  double noise_sigma = 4.0;        ///< per-slot Gaussian noise, $/MWh
  double noise_persistence = 0.6;  ///< AR(1) persistence of the noise
  double spike_prob = 0.01;        ///< per-slot probability of a price spike
  double spike_scale = 60.0;       ///< mean additional $/MWh during a spike
  double floor_price = 10.0;       ///< prices never drop below this
};

class RtpGenerator {
 public:
  RtpGenerator(RtpConfig cfg, Rng rng);

  /// Price series in $/MWh.  `system_load` (values in [0, 1]) couples prices
  /// to demand; pass an empty vector for a pure diurnal process.
  [[nodiscard]] std::vector<double> generate(const TimeGrid& grid,
                                             const std::vector<double>& system_load = {});

  /// Allocation-free variant: writes the series into `price_out`, reusing
  /// its capacity.  Draws the identical stochastic stream as generate() —
  /// EctHubEnv::reset uses this to regenerate episodes without touching the
  /// heap.  `price_out` must not alias `system_load`.
  void generate_into(const TimeGrid& grid, const std::vector<double>& system_load,
                     std::vector<double>& price_out);

  /// Deterministic diurnal component at an hour of day (no noise/spikes).
  [[nodiscard]] double diurnal_component(double hour_of_day) const;

  [[nodiscard]] const RtpConfig& config() const noexcept { return cfg_; }

 private:
  RtpConfig cfg_;
  Rng rng_;
};

}  // namespace ecthub::pricing
