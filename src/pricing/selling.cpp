#include "pricing/selling.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::pricing {

DiscountSchedule::DiscountSchedule(std::size_t slots) : fractions_(slots, 0.0) {}

DiscountSchedule DiscountSchedule::from_flags(const std::vector<bool>& discounted,
                                              double fraction) {
  if (fraction < 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("DiscountSchedule: fraction must be in [0, 1)");
  }
  DiscountSchedule s(discounted.size());
  for (std::size_t t = 0; t < discounted.size(); ++t) {
    if (discounted[t]) s.set(t, fraction);
  }
  return s;
}

void DiscountSchedule::set(std::size_t t, double fraction) {
  if (t >= fractions_.size()) throw std::out_of_range("DiscountSchedule: slot out of range");
  if (fraction < 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("DiscountSchedule: fraction must be in [0, 1)");
  }
  fractions_[t] = fraction;
}

double DiscountSchedule::at(std::size_t t) const {
  if (t >= fractions_.size()) throw std::out_of_range("DiscountSchedule: slot out of range");
  return fractions_[t];
}

std::size_t DiscountSchedule::num_discounted() const {
  return static_cast<std::size_t>(
      std::count_if(fractions_.begin(), fractions_.end(), [](double f) { return f > 0.0; }));
}

SellingPricePolicy::SellingPricePolicy(SellingConfig cfg, DiscountSchedule schedule)
    : cfg_(cfg), schedule_(std::move(schedule)) {
  if (cfg_.markup <= 0.0) throw std::invalid_argument("SellingConfig: markup must be > 0");
}

double SellingPricePolicy::srtp(std::size_t t, double rtp) const {
  const double p = cfg_.markup * rtp * (1.0 - schedule_.at(t));
  return std::max(p, cfg_.floor);
}

std::vector<double> SellingPricePolicy::series(const std::vector<double>& rtp) const {
  std::vector<double> out;
  series_into(rtp, out);
  return out;
}

void SellingPricePolicy::series_into(const std::vector<double>& rtp,
                                     std::vector<double>& out) const {
  if (rtp.size() != schedule_.size()) {
    throw std::invalid_argument("SellingPricePolicy: rtp length must match schedule");
  }
  out.resize(rtp.size());
  for (std::size_t t = 0; t < rtp.size(); ++t) out[t] = srtp(t, rtp[t]);
}

}  // namespace ecthub::pricing
