// Time-of-use (TOU) tariff: the simple peak/off-peak price structure used by
// the rule-based baseline schedulers and the economic-feasibility analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::pricing {

struct TouPeriod {
  double start_hour;  ///< inclusive, [0, 24)
  double end_hour;    ///< exclusive; may wrap past midnight (start > end)
  double price;       ///< $/MWh during the period
};

/// A tariff is an ordered list of periods plus a default price for hours not
/// covered by any period.  Periods may wrap midnight (e.g. 22h-6h off-peak).
class TouTariff {
 public:
  TouTariff(std::vector<TouPeriod> periods, double default_price);

  /// A typical two-tier utility tariff: off-peak 23h-7h, peak 17h-22h,
  /// shoulder otherwise.
  static TouTariff typical();

  [[nodiscard]] double price_at_hour(double hour_of_day) const;

  [[nodiscard]] const std::vector<TouPeriod>& periods() const noexcept { return periods_; }

 private:
  std::vector<TouPeriod> periods_;
  double default_price_;
};

}  // namespace ecthub::pricing
