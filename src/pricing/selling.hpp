// Selling-price policy for EV charging (SRTP in the paper's notation).
//
// The hub sells energy to EVs at a marked-up price relative to the real-time
// grid price; ECT-Price decides at which (station, slot) items to apply a
// discount.  A DiscountSchedule holds that per-slot decision and the policy
// composes SRTP(t) = markup * RTP(t) * (1 - discount(t)).
#pragma once

#include "common/time_grid.hpp"

#include <cstddef>
#include <vector>

namespace ecthub::pricing {

/// Per-slot discount fractions in [0, 1); 0 means full price.
class DiscountSchedule {
 public:
  /// All-zero schedule over `slots` slots.
  explicit DiscountSchedule(std::size_t slots);

  /// Schedule with a single discount fraction applied at selected slots.
  static DiscountSchedule from_flags(const std::vector<bool>& discounted, double fraction);

  void set(std::size_t t, double fraction);
  [[nodiscard]] double at(std::size_t t) const;
  [[nodiscard]] std::size_t size() const noexcept { return fractions_.size(); }

  /// Number of slots with a non-zero discount.
  [[nodiscard]] std::size_t num_discounted() const;

 private:
  std::vector<double> fractions_;
};

struct SellingConfig {
  /// SRTP = markup * RTP before discounting; > 1 so undiscounted charging is
  /// profitable per-unit.  Retail EV-charging prices typically run ~2x the
  /// wholesale energy price.
  double markup = 1.85;
  /// Hard floor on SRTP, $/MWh — the hub never sells below marginal cost.
  double floor = 20.0;
};

class SellingPricePolicy {
 public:
  SellingPricePolicy(SellingConfig cfg, DiscountSchedule schedule);

  /// Selling price at slot t given the grid RTP at t.
  [[nodiscard]] double srtp(std::size_t t, double rtp) const;

  /// Whole-horizon series.
  [[nodiscard]] std::vector<double> series(const std::vector<double>& rtp) const;

  /// Allocation-free variant: writes the series into `out` in place, reusing
  /// its capacity.  Produces the identical values as series().
  void series_into(const std::vector<double>& rtp, std::vector<double>& out) const;

  [[nodiscard]] const DiscountSchedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] const SellingConfig& config() const noexcept { return cfg_; }

 private:
  SellingConfig cfg_;
  DiscountSchedule schedule_;
};

}  // namespace ecthub::pricing
