#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0); }

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng, double scale) {
  Matrix m(rows, cols);
  const double sd = scale / std::sqrt(static_cast<double>(rows > 0 ? rows : 1));
  for (double& x : m.data_) x = rng.normal(0.0, sd);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) throw std::invalid_argument("from_rows: ragged input");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

void Matrix::resize_zeroed(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);  // keeps capacity: no realloc once warm
}

namespace {

// Kernel selection: the cache-blocked kernel runs only when the product is
// genuinely batched (enough rows to tile) AND the right-hand matrix
// outgrows L1 — below that the naive ikj loop already streams everything
// from cache and its simpler inner loop wins, and notably the 1-row
// matrix-vector forward of a scalar decide() is untouched.  The two kernels
// are bit-identical (same per-element k order, zero-skip and accumulation
// statement), so the threshold is purely a performance choice.
constexpr std::size_t kBlockedMinRows = 8;
constexpr std::size_t kBlockedMinRhsBytes = 32 * 1024;  // typical L1d size
constexpr std::size_t kRowTile = 8;    // A rows sharing one hot B column block
constexpr std::size_t kColTile = 128;  // B/out columns per block (1 KiB rows)

// out(i - row_begin, j) = sum_k a(i, k) * b(k, j) for i in [row_begin, row_end).
// Naive ikj loop order: streams through `b` rows for cache locality.
void matmul_naive(const double* a, const double* b, double* out, std::size_t row_begin,
                  std::size_t row_end, std::size_t inner, std::size_t cols) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double* orow = out + (i - row_begin) * cols;
    for (std::size_t k = 0; k < inner; ++k) {
      const double av = a[i * inner + k];
      if (av == 0.0) continue;
      const double* brow = b + k * cols;
      for (std::size_t j = 0; j < cols; ++j) orow[j] += av * brow[j];
    }
  }
}

// Cache-blocked variant: tiles A rows and B columns so each B column block
// stays hot across the row tile while k runs its full ascending range —
// every out element still accumulates its k terms in the naive kernel's
// exact order, with the identical zero-skip and `+=` statement, so the two
// kernels agree to the last bit.
void matmul_blocked(const double* a, const double* b, double* out, std::size_t row_begin,
                    std::size_t row_end, std::size_t inner, std::size_t cols) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += kRowTile) {
    const std::size_t i1 = std::min(i0 + kRowTile, row_end);
    for (std::size_t j0 = 0; j0 < cols; j0 += kColTile) {
      const std::size_t jt = std::min(kColTile, cols - j0);
      for (std::size_t k = 0; k < inner; ++k) {
        const double* brow = b + k * cols + j0;
        for (std::size_t i = i0; i < i1; ++i) {
          const double av = a[i * inner + k];
          if (av == 0.0) continue;
          double* orow = out + (i - row_begin) * cols + j0;
          for (std::size_t j = 0; j < jt; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(other, out);
  return out;
}

void Matrix::matmul_into(const Matrix& other, Matrix& out) const {
  matmul_rows_into(other, 0, rows_, out);
}

void Matrix::matmul_rows_into(const Matrix& other, std::size_t row_begin,
                              std::size_t row_end, Matrix& out) const {
  if (cols_ != other.rows_) throw std::invalid_argument("matmul: inner dimension mismatch");
  if (row_begin > row_end || row_end > rows_) {
    throw std::invalid_argument("matmul_rows_into: bad row range");
  }
  if (&out == this || &out == &other) {
    throw std::invalid_argument("matmul_rows_into: out must not alias an operand");
  }
  out.resize_zeroed(row_end - row_begin, other.cols_);
  if (out.data_.empty() || cols_ == 0) return;
  const std::size_t block_rows = row_end - row_begin;
  if (block_rows >= kBlockedMinRows &&
      other.data_.size() * sizeof(double) > kBlockedMinRhsBytes) {
    matmul_blocked(data_.data(), other.data_.data(), out.data_.data(), row_begin, row_end,
                   cols_, other.cols_);
  } else {
    matmul_naive(data_.data(), other.data_.data(), out.data_.data(), row_begin, row_end,
                 cols_, other.cols_);
  }
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = data_[r * cols_ + c];
  }
  return out;
}

Matrix& Matrix::add_inplace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("add_inplace: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::sub_inplace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("sub_inplace: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::scale_inplace(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::add_row_vector(const Matrix& rowv) {
  if (rowv.rows_ != 1 || rowv.cols_ != cols_) {
    throw std::invalid_argument("add_row_vector: expected 1 x cols vector");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += rowv.data_[c];
  }
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("hadamard: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * other.data_[i];
  return out;
}

Matrix Matrix::apply(const std::function<double(double)>& f) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
  return out;
}

Matrix Matrix::col_sum() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += data_[r * cols_ + c];
  }
  return out;
}

Matrix Matrix::hconcat(const Matrix& other) const {
  if (rows_ != other.rows_) throw std::invalid_argument("hconcat: row count mismatch");
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) = data_[r * cols_ + c];
    for (std::size_t c = 0; c < other.cols_; ++c) out(r, cols_ + c) = other(r, c);
  }
  return out;
}

Matrix Matrix::slice_cols(std::size_t begin, std::size_t end) const {
  if (begin > end || end > cols_) throw std::invalid_argument("slice_cols: bad range");
  Matrix out(rows_, end - begin);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = begin; c < end; ++c) out(r, c - begin) = data_[r * cols_ + c];
  }
  return out;
}

Matrix Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("row: index out of range");
  Matrix out(1, cols_);
  for (std::size_t c = 0; c < cols_; ++c) out(0, c) = data_[r * cols_ + c];
  return out;
}

void Matrix::fill(double v) {
  for (double& x : data_) x = v;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace ecthub::nn
