#include "nn/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0); }

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng, double scale) {
  Matrix m(rows, cols);
  const double sd = scale / std::sqrt(static_cast<double>(rows > 0 ? rows : 1));
  for (double& x : m.data_) x = rng.normal(0.0, sd);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) throw std::invalid_argument("from_rows: ragged input");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("matmul: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  // ikj loop order: streams through `other` rows for cache locality.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = data_[r * cols_ + c];
  }
  return out;
}

Matrix& Matrix::add_inplace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("add_inplace: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::sub_inplace(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("sub_inplace: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::scale_inplace(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::add_row_vector(const Matrix& rowv) {
  if (rowv.rows_ != 1 || rowv.cols_ != cols_) {
    throw std::invalid_argument("add_row_vector: expected 1 x cols vector");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += rowv.data_[c];
  }
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("hadamard: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * other.data_[i];
  return out;
}

Matrix Matrix::apply(const std::function<double(double)>& f) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
  return out;
}

Matrix Matrix::col_sum() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += data_[r * cols_ + c];
  }
  return out;
}

Matrix Matrix::hconcat(const Matrix& other) const {
  if (rows_ != other.rows_) throw std::invalid_argument("hconcat: row count mismatch");
  Matrix out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) = data_[r * cols_ + c];
    for (std::size_t c = 0; c < other.cols_; ++c) out(r, cols_ + c) = other(r, c);
  }
  return out;
}

Matrix Matrix::slice_cols(std::size_t begin, std::size_t end) const {
  if (begin > end || end > cols_) throw std::invalid_argument("slice_cols: bad range");
  Matrix out(rows_, end - begin);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = begin; c < end; ++c) out(r, c - begin) = data_[r * cols_ + c];
  }
  return out;
}

Matrix Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("row: index out of range");
  Matrix out(1, cols_);
  for (std::size_t c = 0; c < cols_; ++c) out(0, c) = data_[r * cols_ + c];
  return out;
}

void Matrix::fill(double v) {
  for (double& x : data_) x = v;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace ecthub::nn
