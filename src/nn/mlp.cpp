#include "nn/mlp.hpp"

#include <stdexcept>

namespace ecthub::nn {

Mlp::Mlp(MlpConfig cfg, Rng& rng, std::string name) {
  if (cfg.layer_dims.size() < 2) throw std::invalid_argument("Mlp: need at least in/out dims");
  for (std::size_t i = 0; i + 1 < cfg.layer_dims.size(); ++i) {
    dense_.emplace_back(cfg.layer_dims[i], cfg.layer_dims[i + 1], rng,
                        name + ".dense" + std::to_string(i));
    const bool last = i + 2 == cfg.layer_dims.size();
    acts_.emplace_back(last ? cfg.output_activation : cfg.hidden_activation);
  }
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (std::size_t i = 0; i < dense_.size(); ++i) {
    h = dense_[i].forward(h);
    h = acts_[i].forward(h);
  }
  return h;
}

const Matrix& Mlp::forward_rows(const Matrix& x, std::size_t row_begin,
                                std::size_t row_end,
                                std::vector<Matrix>& scratch) const {
  if (scratch.size() < dense_.size()) scratch.resize(dense_.size());
  for (std::size_t i = 0; i < dense_.size(); ++i) {
    const Matrix& in = i == 0 ? x : scratch[i - 1];
    const std::size_t begin = i == 0 ? row_begin : 0;
    const std::size_t end = i == 0 ? row_end : in.rows();
    dense_[i].forward_rows_into(in, begin, end, scratch[i]);
    acts_[i].forward_inplace(scratch[i]);
  }
  return scratch[dense_.size() - 1];
}

Matrix Mlp::backward(const Matrix& dy) {
  Matrix g = dy;
  for (std::size_t i = dense_.size(); i-- > 0;) {
    g = acts_[i].backward(g);
    g = dense_[i].backward(g);
  }
  return g;
}

void Mlp::zero_grad() {
  for (auto& d : dense_) d.zero_grad();
}

std::vector<Parameter> Mlp::parameters() {
  std::vector<Parameter> out;
  for (auto& d : dense_) {
    for (auto& p : d.parameters()) out.push_back(p);
  }
  return out;
}

std::vector<ConstParameter> Mlp::parameters() const {
  std::vector<ConstParameter> out;
  for (const auto& d : dense_) {
    for (const auto& p : d.parameters()) out.push_back(p);
  }
  return out;
}

std::size_t Mlp::in_dim() const { return dense_.front().in_dim(); }
std::size_t Mlp::out_dim() const { return dense_.back().out_dim(); }

}  // namespace ecthub::nn
