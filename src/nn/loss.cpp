#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::nn {

std::pair<double, Matrix> mse_loss(const Matrix& pred, const Matrix& target) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  const double n = static_cast<double>(pred.size());
  double loss = 0.0;
  Matrix grad(pred.rows(), pred.cols());
  for (std::size_t i = 0; i < pred.data().size(); ++i) {
    const double diff = pred.data()[i] - target.data()[i];
    loss += diff * diff;
    grad.data()[i] = 2.0 * diff / n;
  }
  return {loss / n, grad};
}

std::pair<double, Matrix> bce_loss(const Matrix& prob, const Matrix& target) {
  if (prob.rows() != target.rows() || prob.cols() != target.cols()) {
    throw std::invalid_argument("bce_loss: shape mismatch");
  }
  constexpr double kEps = 1e-7;
  const double n = static_cast<double>(prob.size());
  double loss = 0.0;
  Matrix grad(prob.rows(), prob.cols());
  for (std::size_t i = 0; i < prob.data().size(); ++i) {
    const double p = std::clamp(prob.data()[i], kEps, 1.0 - kEps);
    const double y = target.data()[i];
    loss += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
    grad.data()[i] = (p - y) / (p * (1.0 - p)) / n;
  }
  return {loss / n, grad};
}

}  // namespace ecthub::nn
