// Optimizers.  The paper trains everything with Adam (lr 1e-2 for ECT-Price
// and baselines, 1e-3 for ECT-DRL, weight decay 1e-4); we implement Adam with
// decoupled weight decay plus plain SGD for tests.
#pragma once

#include "nn/layers.hpp"

#include <unordered_map>
#include <vector>

namespace ecthub::nn {

class Sgd {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  void step(std::vector<Parameter>& params) const;

 private:
  double lr_;
};

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW-style)
  double grad_clip = 0.0;     ///< global-norm clip; 0 disables
};

class Adam {
 public:
  explicit Adam(AdamConfig cfg) : cfg_(cfg) {}

  /// Applies one update; first/second moment slots are keyed by parameter
  /// pointer so the same optimizer can drive several modules.
  void step(std::vector<Parameter>& params);

  [[nodiscard]] const AdamConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

 private:
  struct Slot {
    Matrix m, v;
  };
  AdamConfig cfg_;
  std::unordered_map<const Matrix*, Slot> slots_;
  std::size_t t_ = 0;
};

}  // namespace ecthub::nn
