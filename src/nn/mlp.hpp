// Multi-layer perceptron: a stack of Dense layers with a shared hidden
// activation and a configurable output activation.
#pragma once

#include "nn/layers.hpp"

#include <memory>
#include <vector>

namespace ecthub::nn {

struct MlpConfig {
  std::vector<std::size_t> layer_dims;  ///< e.g. {in, hidden..., out}
  Activation hidden_activation = Activation::kRelu;
  Activation output_activation = Activation::kIdentity;
};

class Mlp {
 public:
  Mlp(MlpConfig cfg, Rng& rng, std::string name = "mlp");

  Matrix forward(const Matrix& x);
  /// Inference-only forward over rows [row_begin, row_end) of x.  `scratch`
  /// supplies one reusable buffer per layer (resized on first use, then
  /// allocation-free); the returned reference points at scratch.back().
  /// Caches nothing and mutates no member state, so disjoint row blocks may
  /// run concurrently with distinct scratch vectors; bit-identical to the
  /// same rows of forward(x).
  const Matrix& forward_rows(const Matrix& x, std::size_t row_begin, std::size_t row_end,
                             std::vector<Matrix>& scratch) const;
  /// Returns dL/dX given dL/dY (through the output activation).
  Matrix backward(const Matrix& dy);

  void zero_grad();
  [[nodiscard]] std::vector<Parameter> parameters();
  [[nodiscard]] std::vector<ConstParameter> parameters() const;

  [[nodiscard]] std::size_t in_dim() const;
  [[nodiscard]] std::size_t out_dim() const;

 private:
  std::vector<Dense> dense_;
  std::vector<ActivationLayer> acts_;
};

}  // namespace ecthub::nn
