// Trainable layers with explicit forward/backward passes.
//
// Each layer caches what its backward pass needs, accumulates parameter
// gradients, and exposes its parameters to the optimizer through the
// Parameter handle list.  Models (NCF, ECT-Price, actor-critic) compose
// these blocks and wire custom loss gradients by hand — a deliberate choice
// over a general autograd: the model graphs in the paper are small and
// fixed, and explicit backprop keeps every gradient testable against finite
// differences.
#pragma once

#include "nn/matrix.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace ecthub::nn {

/// A named (value, gradient) pair registered with the optimizer.
struct Parameter {
  std::string name;
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

/// Read-only view of a parameter tensor — what serialization needs from a
/// const model (checkpointing mid-training without mutable access).
struct ConstParameter {
  std::string name;
  const Matrix* value = nullptr;
};

/// Fully connected layer: Y = X W + b.
class Dense {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng, std::string name = "dense");

  /// X: (batch x in_dim) -> (batch x out_dim); caches X.
  Matrix forward(const Matrix& x);
  /// Inference-only forward over rows [row_begin, row_end) of X, written
  /// into `out` (resized, allocation-free once warm).  Caches nothing and
  /// mutates no member state, so disjoint row blocks of one X may run
  /// concurrently; bit-identical to the same rows of forward(x).
  void forward_rows_into(const Matrix& x, std::size_t row_begin, std::size_t row_end,
                         Matrix& out) const;
  /// dY: (batch x out_dim) -> dX; accumulates dW, db.
  Matrix backward(const Matrix& dy);

  void zero_grad();
  [[nodiscard]] std::vector<Parameter> parameters();
  [[nodiscard]] std::vector<ConstParameter> parameters() const;

  [[nodiscard]] std::size_t in_dim() const noexcept { return w_.rows(); }
  [[nodiscard]] std::size_t out_dim() const noexcept { return w_.cols(); }
  [[nodiscard]] const Matrix& weights() const noexcept { return w_; }
  [[nodiscard]] Matrix& weights() noexcept { return w_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return b_; }

 private:
  std::string name_;
  Matrix w_, b_;
  Matrix dw_, db_;
  Matrix cached_x_;
};

/// Embedding table: maps integer ids to dense rows.
class Embedding {
 public:
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng, std::string name = "embedding");

  /// ids: batch of indices -> (batch x dim); caches ids.
  Matrix forward(const std::vector<std::size_t>& ids);
  /// Accumulates gradients into the rows selected by the cached ids.
  void backward(const Matrix& dy);

  void zero_grad();
  [[nodiscard]] std::vector<Parameter> parameters();

  [[nodiscard]] std::size_t vocab() const noexcept { return table_.rows(); }
  [[nodiscard]] std::size_t dim() const noexcept { return table_.cols(); }
  [[nodiscard]] const Matrix& table() const noexcept { return table_; }

 private:
  std::string name_;
  Matrix table_, dtable_;
  std::vector<std::size_t> cached_ids_;
};

enum class Activation { kRelu, kSigmoid, kTanh, kIdentity };

/// Stateless-parameter activation layer (caches pre-activation input).
class ActivationLayer {
 public:
  explicit ActivationLayer(Activation kind) : kind_(kind) {}

  Matrix forward(const Matrix& x);
  /// Inference-only: applies the activation in place without caching the
  /// pre-activation input (thread-safe const); same values as forward(x).
  void forward_inplace(Matrix& x) const;
  Matrix backward(const Matrix& dy) const;

  [[nodiscard]] Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  Matrix cached_x_;
};

/// Row-wise softmax (numerically stabilized).
[[nodiscard]] Matrix softmax_rows(const Matrix& logits);

/// Softmax of one row of `logits` written into `out` (resized to cols) —
/// the same operation sequence as softmax_rows, so the values are
/// bit-identical to that row of the full-matrix call.
void softmax_row_into(const Matrix& logits, std::size_t row, std::vector<double>& out);

/// Backward of softmax given dL/dsoftmax; returns dL/dlogits.
[[nodiscard]] Matrix softmax_backward(const Matrix& softmax_out, const Matrix& dsoftmax);

[[nodiscard]] double sigmoid(double x);

}  // namespace ecthub::nn
