// Parameter serialization: checkpoint trained models (ECT-Price, PPO
// policies) to a binary stream and restore them into an identically-shaped
// model.
#pragma once

#include "nn/layers.hpp"

#include <iosfwd>
#include <vector>

namespace ecthub::nn {

/// Writes all parameter tensors (name, shape, values) to `out`.
/// Throws std::runtime_error on I/O failure.
void save_parameters(std::ostream& out, const std::vector<Parameter>& params);

/// Same format from read-only parameter views — checkpointing a const model
/// (e.g. mid-training export from the rollout collector).  Byte-identical
/// output to the mutable overload for the same tensors.
void save_parameters(std::ostream& out, const std::vector<ConstParameter>& params);

/// Reads tensors back into `params`.  Names and shapes must match exactly
/// (same model architecture); throws std::runtime_error otherwise.
void load_parameters(std::istream& in, std::vector<Parameter>& params);

}  // namespace ecthub::nn
