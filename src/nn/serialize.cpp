#include "nn/serialize.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ecthub::nn {

namespace {

constexpr std::uint32_t kMagic = 0x45435448;  // "ECTH"

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("load_parameters: truncated stream");
  return v;
}

}  // namespace

void save_parameters(std::ostream& out, const std::vector<ConstParameter>& params) {
  write_u64(out, kMagic);
  write_u64(out, params.size());
  for (const auto& p : params) {
    if (p.value == nullptr) throw std::runtime_error("save_parameters: null tensor");
    write_u64(out, p.name.size());
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    write_u64(out, p.value->rows());
    write_u64(out, p.value->cols());
    out.write(reinterpret_cast<const char*>(p.value->data().data()),
              static_cast<std::streamsize>(p.value->data().size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void save_parameters(std::ostream& out, const std::vector<Parameter>& params) {
  std::vector<ConstParameter> views;
  views.reserve(params.size());
  for (const auto& p : params) views.push_back({p.name, p.value});
  save_parameters(out, views);
}

void load_parameters(std::istream& in, std::vector<Parameter>& params) {
  if (read_u64(in) != kMagic) throw std::runtime_error("load_parameters: bad magic");
  const std::uint64_t count = read_u64(in);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (auto& p : params) {
    if (p.value == nullptr) throw std::runtime_error("load_parameters: null tensor");
    const std::uint64_t name_len = read_u64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in || name != p.name) {
      throw std::runtime_error("load_parameters: parameter name mismatch (expected '" +
                               p.name + "')");
    }
    const std::uint64_t rows = read_u64(in);
    const std::uint64_t cols = read_u64(in);
    if (rows != p.value->rows() || cols != p.value->cols()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" + p.name + "'");
    }
    in.read(reinterpret_cast<char*>(p.value->data().data()),
            static_cast<std::streamsize>(p.value->data().size() * sizeof(double)));
    if (!in) throw std::runtime_error("load_parameters: truncated tensor data");
  }
}

}  // namespace ecthub::nn
