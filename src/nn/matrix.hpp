// Dense row-major matrix — the tensor type of the from-scratch NN library.
//
// The paper's models (NCF backbone, ECT-Price multi-task heads, PPO
// actor-critic) are all small dense networks; a straightforward double
// matrix with cache-friendly row-major loops is fast enough at CPU scale
// and keeps the numerics transparent for testing.
//
// matmul carries a second, cache-blocked kernel for batched inference: once
// the product has enough rows to tile and the right-hand matrix outgrows L1,
// it is tiled over A-rows and B-columns so a hot B column block is reused
// across the row tile.  Both kernels accumulate
// every output element over k in ascending order with the identical
// fused-able `out += a * b` statement and the identical zero-skip, so the
// blocked path is bit-identical to the naive one — the property that lets a
// batched fleet GEMM reproduce per-hub matrix-vector forwards exactly
// (tests/test_nn.cpp pins it over a randomized shape sweep).  Row-range
// products (matmul_rows_into) compute a disjoint row-block of the same
// product, bit-identical to the corresponding rows of the full call, which
// is what lets several workers shard one observation matrix.
#pragma once

#include "common/rng.hpp"

#include <cstddef>
#include <functional>
#include <vector>

namespace ecthub::nn {

/// The NN library reuses the project-wide deterministic RNG.
using Rng = ::ecthub::Rng;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix zeros(std::size_t rows, std::size_t cols);
  /// Gaussian init scaled by 1/sqrt(fan_in) (LeCun-style).
  [[nodiscard]] static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                                    double scale = 1.0);
  [[nodiscard]] static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// Reshapes to rows x cols and zero-fills, reusing the existing capacity —
  /// a steady-state caller (e.g. a reused inference workspace) never
  /// reallocates once its largest shape has been seen.
  void resize_zeroed(std::size_t rows, std::size_t cols);

  /// this (r x k) * other (k x c) -> (r x c)
  [[nodiscard]] Matrix matmul(const Matrix& other) const;
  /// matmul writing into `out` (resized via resize_zeroed — allocation-free
  /// once warm).  `out` must not alias this or other.
  void matmul_into(const Matrix& other, Matrix& out) const;
  /// Rows [row_begin, row_end) of this * other, written into `out` as a
  /// (row_end - row_begin) x other.cols() block.  Bit-identical to the same
  /// rows of matmul(other); safe to call concurrently on disjoint row ranges
  /// with distinct `out` targets.
  void matmul_rows_into(const Matrix& other, std::size_t row_begin, std::size_t row_end,
                        Matrix& out) const;
  [[nodiscard]] Matrix transpose() const;

  Matrix& add_inplace(const Matrix& other);
  Matrix& sub_inplace(const Matrix& other);
  Matrix& scale_inplace(double s);
  /// Adds a 1 x cols row vector to every row.
  Matrix& add_row_vector(const Matrix& row);

  [[nodiscard]] Matrix hadamard(const Matrix& other) const;
  [[nodiscard]] Matrix apply(const std::function<double(double)>& f) const;

  /// Column-wise sum -> 1 x cols.
  [[nodiscard]] Matrix col_sum() const;

  /// Concatenates [this | other] along columns (same row count).
  [[nodiscard]] Matrix hconcat(const Matrix& other) const;
  /// Extracts columns [begin, end).
  [[nodiscard]] Matrix slice_cols(std::size_t begin, std::size_t end) const;
  /// Extracts row r as a 1 x cols matrix.
  [[nodiscard]] Matrix row(std::size_t r) const;

  void fill(double v);

  /// Frobenius norm; useful for gradient-norm diagnostics.
  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ecthub::nn
