// Loss functions returning (loss value, gradient w.r.t. predictions).
#pragma once

#include "nn/matrix.hpp"

#include <utility>

namespace ecthub::nn {

/// Mean squared error averaged over all elements.
[[nodiscard]] std::pair<double, Matrix> mse_loss(const Matrix& pred, const Matrix& target);

/// Binary cross-entropy on probabilities in (0, 1); clamped for stability.
[[nodiscard]] std::pair<double, Matrix> bce_loss(const Matrix& prob, const Matrix& target);

}  // namespace ecthub::nn
