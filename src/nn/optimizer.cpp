#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::nn {

void Sgd::step(std::vector<Parameter>& params) const {
  for (auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) throw std::invalid_argument("Sgd: null param");
    for (std::size_t i = 0; i < p.value->data().size(); ++i) {
      p.value->data()[i] -= lr_ * p.grad->data()[i];
    }
  }
}

void Adam::step(std::vector<Parameter>& params) {
  ++t_;
  // Optional global-norm gradient clipping before the moment update.
  double scale = 1.0;
  if (cfg_.grad_clip > 0.0) {
    double norm_sq = 0.0;
    for (const auto& p : params) {
      for (double g : p.grad->data()) norm_sq += g * g;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > cfg_.grad_clip) scale = cfg_.grad_clip / norm;
  }
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) throw std::invalid_argument("Adam: null param");
    auto& slot = slots_[p.value];
    if (slot.m.empty()) {
      slot.m = Matrix::zeros(p.value->rows(), p.value->cols());
      slot.v = Matrix::zeros(p.value->rows(), p.value->cols());
    }
    auto& val = p.value->data();
    const auto& grad = p.grad->data();
    for (std::size_t i = 0; i < val.size(); ++i) {
      const double g = grad[i] * scale;
      slot.m.data()[i] = cfg_.beta1 * slot.m.data()[i] + (1.0 - cfg_.beta1) * g;
      slot.v.data()[i] = cfg_.beta2 * slot.v.data()[i] + (1.0 - cfg_.beta2) * g * g;
      const double mhat = slot.m.data()[i] / bc1;
      const double vhat = slot.v.data()[i] / bc2;
      val[i] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) + cfg_.weight_decay * val[i]);
    }
  }
}

}  // namespace ecthub::nn
