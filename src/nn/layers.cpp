#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::nn {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng, std::string name)
    : name_(std::move(name)),
      w_(Matrix::randn(in_dim, out_dim, rng)),
      b_(1, out_dim, 0.0),
      dw_(in_dim, out_dim, 0.0),
      db_(1, out_dim, 0.0) {
  if (in_dim == 0 || out_dim == 0) throw std::invalid_argument("Dense: zero dimension");
}

Matrix Dense::forward(const Matrix& x) {
  if (x.cols() != w_.rows()) throw std::invalid_argument("Dense::forward: dim mismatch");
  cached_x_ = x;
  Matrix y = x.matmul(w_);
  y.add_row_vector(b_);
  return y;
}

void Dense::forward_rows_into(const Matrix& x, std::size_t row_begin, std::size_t row_end,
                              Matrix& out) const {
  if (x.cols() != w_.rows()) {
    throw std::invalid_argument("Dense::forward_rows_into: dim mismatch");
  }
  x.matmul_rows_into(w_, row_begin, row_end, out);
  out.add_row_vector(b_);
}

Matrix Dense::backward(const Matrix& dy) {
  if (cached_x_.empty()) throw std::logic_error("Dense::backward before forward");
  if (dy.rows() != cached_x_.rows() || dy.cols() != w_.cols()) {
    throw std::invalid_argument("Dense::backward: dY shape mismatch");
  }
  dw_.add_inplace(cached_x_.transpose().matmul(dy));
  db_.add_inplace(dy.col_sum());
  return dy.matmul(w_.transpose());
}

void Dense::zero_grad() {
  dw_.fill(0.0);
  db_.fill(0.0);
}

std::vector<Parameter> Dense::parameters() {
  return {{name_ + ".W", &w_, &dw_}, {name_ + ".b", &b_, &db_}};
}

std::vector<ConstParameter> Dense::parameters() const {
  return {{name_ + ".W", &w_}, {name_ + ".b", &b_}};
}

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng, std::string name)
    : name_(std::move(name)),
      table_(Matrix::randn(vocab, dim, rng)),
      dtable_(vocab, dim, 0.0) {
  if (vocab == 0 || dim == 0) throw std::invalid_argument("Embedding: zero dimension");
}

Matrix Embedding::forward(const std::vector<std::size_t>& ids) {
  cached_ids_ = ids;
  Matrix out(ids.size(), table_.cols());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= table_.rows()) throw std::out_of_range("Embedding: id out of vocab");
    for (std::size_t c = 0; c < table_.cols(); ++c) out(i, c) = table_(ids[i], c);
  }
  return out;
}

void Embedding::backward(const Matrix& dy) {
  if (dy.rows() != cached_ids_.size() || dy.cols() != table_.cols()) {
    throw std::invalid_argument("Embedding::backward: dY shape mismatch");
  }
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    for (std::size_t c = 0; c < table_.cols(); ++c) dtable_(cached_ids_[i], c) += dy(i, c);
  }
}

void Embedding::zero_grad() { dtable_.fill(0.0); }

std::vector<Parameter> Embedding::parameters() {
  return {{name_ + ".table", &table_, &dtable_}};
}

Matrix ActivationLayer::forward(const Matrix& x) {
  cached_x_ = x;
  switch (kind_) {
    case Activation::kRelu:
      return x.apply([](double v) { return v > 0.0 ? v : 0.0; });
    case Activation::kSigmoid:
      return x.apply([](double v) { return sigmoid(v); });
    case Activation::kTanh:
      return x.apply([](double v) { return std::tanh(v); });
    case Activation::kIdentity:
      return x;
  }
  throw std::logic_error("ActivationLayer: invalid kind");
}

void ActivationLayer::forward_inplace(Matrix& x) const {
  switch (kind_) {
    case Activation::kRelu:
      for (double& v : x.data()) v = v > 0.0 ? v : 0.0;
      return;
    case Activation::kSigmoid:
      for (double& v : x.data()) v = sigmoid(v);
      return;
    case Activation::kTanh:
      for (double& v : x.data()) v = std::tanh(v);
      return;
    case Activation::kIdentity:
      return;
  }
  throw std::logic_error("ActivationLayer: invalid kind");
}

Matrix ActivationLayer::backward(const Matrix& dy) const {
  if (cached_x_.empty()) throw std::logic_error("ActivationLayer::backward before forward");
  Matrix dx(dy.rows(), dy.cols());
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    for (std::size_t c = 0; c < dy.cols(); ++c) {
      const double x = cached_x_(r, c);
      double g = 1.0;
      switch (kind_) {
        case Activation::kRelu: g = x > 0.0 ? 1.0 : 0.0; break;
        case Activation::kSigmoid: {
          const double s = sigmoid(x);
          g = s * (1.0 - s);
          break;
        }
        case Activation::kTanh: {
          const double th = std::tanh(x);
          g = 1.0 - th * th;
          break;
        }
        case Activation::kIdentity: g = 1.0; break;
      }
      dx(r, c) = dy(r, c) * g;
    }
  }
  return dx;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double mx = logits(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, logits(r, c));
    double denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out(r, c) = std::exp(logits(r, c) - mx);
      denom += out(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out(r, c) /= denom;
  }
  return out;
}

void softmax_row_into(const Matrix& logits, std::size_t row, std::vector<double>& out) {
  if (row >= logits.rows()) throw std::out_of_range("softmax_row_into: row out of range");
  const std::size_t cols = logits.cols();
  out.resize(cols);
  // The exact operation sequence of softmax_rows — max-stabilize, exp in
  // column order, accumulate, divide — so each value is bit-identical to
  // the same element of the full-matrix call.
  double mx = logits(row, 0);
  for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, logits(row, c));
  double denom = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    out[c] = std::exp(logits(row, c) - mx);
    denom += out[c];
  }
  for (std::size_t c = 0; c < cols; ++c) out[c] /= denom;
}

Matrix softmax_backward(const Matrix& softmax_out, const Matrix& dsoftmax) {
  if (softmax_out.rows() != dsoftmax.rows() || softmax_out.cols() != dsoftmax.cols()) {
    throw std::invalid_argument("softmax_backward: shape mismatch");
  }
  Matrix dlogits(softmax_out.rows(), softmax_out.cols());
  for (std::size_t r = 0; r < softmax_out.rows(); ++r) {
    double dot = 0.0;
    for (std::size_t c = 0; c < softmax_out.cols(); ++c) {
      dot += softmax_out(r, c) * dsoftmax(r, c);
    }
    for (std::size_t c = 0; c < softmax_out.cols(); ++c) {
      dlogits(r, c) = softmax_out(r, c) * (dsoftmax(r, c) - dot);
    }
  }
  return dlogits;
}

}  // namespace ecthub::nn
