#include "ev/station.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::ev {

ChargingStation::ChargingStation(StationConfig cfg, StrataProfile profile)
    : cfg_(cfg), profile_(std::move(profile)) {
  if (cfg_.plug_rate_kw <= 0.0) throw std::invalid_argument("StationConfig: plug_rate_kw <= 0");
  if (cfg_.num_plugs == 0) throw std::invalid_argument("StationConfig: num_plugs == 0");
}

double ChargingStation::power_kw(std::uint64_t vehicles) const {
  const std::uint64_t active = std::min<std::uint64_t>(vehicles, cfg_.num_plugs);
  return static_cast<double>(active) * cfg_.plug_rate_kw;
}

OccupancySeries ChargingStation::simulate(const TimeGrid& grid,
                                          const std::vector<bool>& discounted,
                                          Rng& rng) const {
  OccupancySeries out;
  simulate_into(grid, discounted, rng, out);
  return out;
}

void ChargingStation::simulate_into(const TimeGrid& grid, const std::vector<bool>& discounted,
                                    Rng& rng, OccupancySeries& out) const {
  if (discounted.size() != grid.size()) {
    throw std::invalid_argument("ChargingStation::simulate: discounted length must match grid");
  }
  out.vehicles.resize(grid.size());
  out.power_kw.resize(grid.size());
  out.stratum.resize(grid.size());
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const auto hour = static_cast<std::size_t>(grid.hour_of_day(t));
    const Stratum s = profile_.sample(hour, rng);
    out.stratum[t] = s;
    std::uint64_t n = charges(s, discounted[t], rng) ? 1 : 0;
    // Busy daytime slots occasionally fill a second plug.
    if (n > 0 && cfg_.num_plugs > 1) {
      const StrataProbs& p = profile_.at_hour(hour);
      if (rng.bernoulli(0.4 * p.p_always)) ++n;
    }
    out.vehicles[t] = n;
    out.power_kw[t] = power_kw(n);
  }
}

}  // namespace ecthub::ev
