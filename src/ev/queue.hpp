// M/M/s queueing model of a charging station (paper ref [29] models highway
// rapid-charging demand with fluid traffic + M/M/s queues).
//
// Provides both the closed-form stationary metrics (Erlang-C) and a
// discrete-event simulator, so station sizing (how many plugs?) can be
// analyzed analytically and the simulator cross-validated against theory —
// a property-test pairing.
#pragma once

#include "common/rng.hpp"

#include <cstddef>
#include <vector>

namespace ecthub::ev {

struct MmsConfig {
  double arrival_rate = 2.0;   ///< lambda, EVs per hour
  double service_rate = 1.5;   ///< mu, charge completions per hour per plug
  std::size_t servers = 2;     ///< s, plugs
};

/// Stationary metrics of the M/M/s queue (requires lambda < s * mu).
struct MmsMetrics {
  double utilization = 0.0;       ///< rho = lambda / (s mu)
  double p_wait = 0.0;            ///< Erlang-C: P(arriving EV must wait)
  double mean_queue_len = 0.0;    ///< Lq
  double mean_wait_h = 0.0;       ///< Wq
  double mean_in_system = 0.0;    ///< L = Lq + lambda/mu
};

/// Closed-form Erlang-C metrics; throws if the queue is unstable
/// (lambda >= s * mu) or parameters are non-positive.
[[nodiscard]] MmsMetrics mms_metrics(const MmsConfig& cfg);

/// Discrete-event simulation of the same queue.
struct MmsSimResult {
  double mean_wait_h = 0.0;
  double mean_in_system = 0.0;
  double fraction_waited = 0.0;
  std::size_t arrivals = 0;
};

/// Simulates `horizon_hours` of operation (after a warmup fraction that is
/// discarded from the statistics).
[[nodiscard]] MmsSimResult simulate_mms(const MmsConfig& cfg, double horizon_hours, Rng rng,
                                        double warmup_fraction = 0.1);

/// Smallest plug count keeping the stationary mean wait below
/// `max_wait_hours`; searches up to `max_servers` and throws if impossible.
[[nodiscard]] std::size_t size_station(double arrival_rate, double service_rate,
                                       double max_wait_hours, std::size_t max_servers = 16);

}  // namespace ecthub::ev
