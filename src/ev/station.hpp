// Charging-station model (paper Eq. 2): P_CS(t) = S_CS(t) * R_CS.
//
// The hub environment needs the station's occupancy state S_CS and power draw
// per slot.  Occupancy is driven by the strata ground truth: an EV is present
// when the slot's sampled behaviour (given the current discount decision)
// results in a charge.
#pragma once

#include "common/rng.hpp"
#include "common/time_grid.hpp"
#include "ev/behavior.hpp"

#include <vector>

namespace ecthub::ev {

struct StationConfig {
  std::size_t station_id = 0;
  double plug_rate_kw = 7.2;  ///< R_CS: level-2 DC charging rate per plug
  std::size_t num_plugs = 2;  ///< simultaneous charging capacity
};

/// Per-slot charging state for a horizon.
struct OccupancySeries {
  std::vector<std::uint64_t> vehicles;  ///< EVs charging in each slot
  std::vector<double> power_kw;         ///< P_CS(t)
  std::vector<Stratum> stratum;         ///< true stratum sampled for the slot

  [[nodiscard]] std::size_t size() const noexcept { return vehicles.size(); }
};

class ChargingStation {
 public:
  ChargingStation(StationConfig cfg, StrataProfile profile);

  /// Simulates the horizon: for each slot the true stratum is sampled from
  /// the profile and converted to an occupancy given the discount decision.
  /// `discounted[t]` marks slots where the hub offers a discount.
  [[nodiscard]] OccupancySeries simulate(const TimeGrid& grid,
                                         const std::vector<bool>& discounted, Rng& rng) const;

  /// Allocation-free variant: regenerates `out` in place, reusing the
  /// capacity of its three channels.  Draws the identical stochastic stream
  /// as simulate() — EctHubEnv regenerates occupancy through this overload
  /// without touching the heap.
  void simulate_into(const TimeGrid& grid, const std::vector<bool>& discounted, Rng& rng,
                     OccupancySeries& out) const;

  /// Power draw for a given number of charging EVs (clamped to num_plugs).
  [[nodiscard]] double power_kw(std::uint64_t vehicles) const;

  [[nodiscard]] const StationConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const StrataProfile& profile() const noexcept { return profile_; }

 private:
  StationConfig cfg_;
  StrataProfile profile_;
};

}  // namespace ecthub::ev
