#include "ev/queue.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace ecthub::ev {

MmsMetrics mms_metrics(const MmsConfig& cfg) {
  if (cfg.arrival_rate <= 0.0 || cfg.service_rate <= 0.0 || cfg.servers == 0) {
    throw std::invalid_argument("mms_metrics: non-positive parameters");
  }
  const double s = static_cast<double>(cfg.servers);
  const double a = cfg.arrival_rate / cfg.service_rate;  // offered load (Erlangs)
  const double rho = a / s;
  if (rho >= 1.0) throw std::invalid_argument("mms_metrics: unstable queue (rho >= 1)");

  // Erlang-C: P(wait) = (a^s / s!) / ((1-rho) sum_{k<s} a^k/k! + a^s/s!).
  double sum = 0.0;
  double term = 1.0;  // a^k / k!, k = 0
  for (std::size_t k = 0; k < cfg.servers; ++k) {
    sum += term;
    term *= a / static_cast<double>(k + 1);
  }
  // term now holds a^s / s!.
  const double erlang_c = term / ((1.0 - rho) * sum + term);

  MmsMetrics m;
  m.utilization = rho;
  m.p_wait = erlang_c;
  m.mean_queue_len = erlang_c * rho / (1.0 - rho);
  m.mean_wait_h = m.mean_queue_len / cfg.arrival_rate;
  m.mean_in_system = m.mean_queue_len + a;
  return m;
}

MmsSimResult simulate_mms(const MmsConfig& cfg, double horizon_hours, Rng rng,
                          double warmup_fraction) {
  if (horizon_hours <= 0.0) throw std::invalid_argument("simulate_mms: horizon <= 0");
  if (warmup_fraction < 0.0 || warmup_fraction >= 1.0) {
    throw std::invalid_argument("simulate_mms: warmup_fraction out of [0, 1)");
  }
  if (cfg.arrival_rate <= 0.0 || cfg.service_rate <= 0.0 || cfg.servers == 0) {
    throw std::invalid_argument("simulate_mms: non-positive parameters");
  }
  const double warmup_end = horizon_hours * warmup_fraction;

  // Event-driven: maintain the completion times of busy servers and a FIFO
  // of waiting arrivals.
  std::priority_queue<double, std::vector<double>, std::greater<>> busy_until;
  std::queue<double> waiting;  // arrival times
  MmsSimResult result;
  double total_wait = 0.0, total_system = 0.0;
  std::size_t counted = 0, waited = 0;

  double t = rng.exponential(cfg.arrival_rate);
  while (t < horizon_hours) {
    // Free all servers done before this arrival; assign waiting EVs in order.
    while (!busy_until.empty() && busy_until.top() <= t) {
      const double freed_at = busy_until.top();
      busy_until.pop();
      if (!waiting.empty()) {
        const double arrived = waiting.front();
        waiting.pop();
        const double start = freed_at;
        const double service = rng.exponential(cfg.service_rate);
        busy_until.push(start + service);
        if (arrived >= warmup_end) {
          total_wait += start - arrived;
          total_system += (start - arrived) + service;
          ++waited;
          ++counted;
        }
      }
    }
    if (busy_until.size() < cfg.servers) {
      const double service = rng.exponential(cfg.service_rate);
      busy_until.push(t + service);
      if (t >= warmup_end) {
        total_system += service;
        ++counted;
      }
    } else {
      waiting.push(t);
    }
    t += rng.exponential(cfg.arrival_rate);
  }
  result.arrivals = counted;
  if (counted > 0) {
    result.mean_wait_h = total_wait / static_cast<double>(counted);
    result.mean_in_system = total_system / static_cast<double>(counted);
    result.fraction_waited = static_cast<double>(waited) / static_cast<double>(counted);
  }
  return result;
}

std::size_t size_station(double arrival_rate, double service_rate, double max_wait_hours,
                         std::size_t max_servers) {
  if (max_wait_hours <= 0.0) throw std::invalid_argument("size_station: max_wait <= 0");
  for (std::size_t s = 1; s <= max_servers; ++s) {
    MmsConfig cfg;
    cfg.arrival_rate = arrival_rate;
    cfg.service_rate = service_rate;
    cfg.servers = s;
    if (arrival_rate >= service_rate * static_cast<double>(s)) continue;  // unstable
    if (mms_metrics(cfg).mean_wait_h <= max_wait_hours) return s;
  }
  throw std::invalid_argument("size_station: no feasible plug count up to max_servers");
}

}  // namespace ecthub::ev
