#include "ev/arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::ev {

std::array<double, 24> default_arrival_profile() {
  // Quiet 0-5h, ramp from 6h, broad 10-16h plateau, evening bump ~18-20h.
  return {0.06, 0.04, 0.03, 0.03, 0.04, 0.08, 0.18, 0.38, 0.62, 0.82,
          0.95, 1.00, 0.97, 0.92, 0.90, 0.85, 0.78, 0.72, 0.66, 0.55,
          0.40, 0.28, 0.16, 0.10};
}

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg, Rng rng)
    : cfg_(cfg), rng_(rng), profile_(default_arrival_profile()) {
  if (cfg_.peak_rate_per_hour < 0.0) {
    throw std::invalid_argument("ArrivalConfig: peak_rate_per_hour < 0");
  }
  if (cfg_.discount_uplift < 1.0) {
    throw std::invalid_argument("ArrivalConfig: discount_uplift must be >= 1");
  }
}

double ArrivalProcess::intensity(const TimeGrid& grid, std::size_t t, bool discounted) const {
  const auto hour = static_cast<std::size_t>(grid.hour_of_day(t));
  double rate = cfg_.peak_rate_per_hour * profile_[hour % 24];
  if (grid.is_weekend(t)) rate *= cfg_.weekend_factor;
  if (discounted) rate *= cfg_.discount_uplift;
  return rate;
}

std::vector<std::uint64_t> ArrivalProcess::generate(const TimeGrid& grid,
                                                    const std::vector<bool>& discounted) {
  if (!discounted.empty() && discounted.size() != grid.size()) {
    throw std::invalid_argument("ArrivalProcess: discounted length must match grid");
  }
  std::vector<std::uint64_t> counts(grid.size(), 0);
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const bool disc = !discounted.empty() && discounted[t];
    counts[t] = rng_.poisson(intensity(grid, t, disc) * grid.slot_hours());
  }
  return counts;
}

}  // namespace ecthub::ev
