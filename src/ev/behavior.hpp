// EV charging-behavior strata — the causal ground truth of the simulator.
//
// ECT-Price (paper Sec. IV-A) stratifies (station, time-slot) items into
//   Always Charge    — an EV charges whether or not a discount is offered,
//   Incentive Charge — an EV charges only if a discount is offered,
//   No Charge        — no EV charges either way.
// The paper labels its proprietary dataset heuristically (NCF ratings); our
// simulator instead *owns* the ground truth: every (station, hour) has true
// strata probabilities, so stratification quality is directly measurable.
//
// Shapes follow the paper's findings (Fig. 11-12): Incentive mass concentrates
// in the 18:00-24:00 period; Always dominates daytime; None is the majority
// class overall.
#pragma once

#include "common/rng.hpp"

#include <array>
#include <cstddef>
#include <string>

namespace ecthub::ev {

enum class Stratum { kNone = 0, kIncentive = 1, kAlways = 2 };

[[nodiscard]] std::string to_string(Stratum s);

/// True strata probabilities for one (station, hour) cell; sums to 1.
struct StrataProbs {
  double p_none = 1.0;
  double p_incentive = 0.0;
  double p_always = 0.0;

  void normalize();
};

/// Per-station behaviour profile: strata probabilities for each hour of day,
/// shaped by the station's popularity and its evening price sensitivity.
class StrataProfile {
 public:
  /// @param popularity         overall demand scale in (0, 1]; scales Always
  ///                           and Incentive mass.
  /// @param evening_sensitivity in [0, 1]; how strongly Incentive mass
  ///                           concentrates in the 18-24h window.
  /// @param evening_commuter   in [0, 1]; adds *Always* mass in the evening
  ///                           (commuters who charge after work regardless of
  ///                           price).  This is the "Always Buyer in the
  ///                           high-uplift window" the paper's stratification
  ///                           exists to avoid: at such stations a pure
  ///                           uplift ranking discounts evening slots whose
  ///                           charging would have happened anyway.
  StrataProfile(double popularity, double evening_sensitivity,
                double evening_commuter = 0.0);

  /// Randomized profile for a station (popularity ~ U[0.5, 1],
  /// sensitivity ~ U[0.4, 0.9], commuter ~ U[0, 0.7]).
  static StrataProfile random_station(Rng& rng);

  [[nodiscard]] const StrataProbs& at_hour(std::size_t hour) const;

  /// Samples the true stratum of one item.
  [[nodiscard]] Stratum sample(std::size_t hour, Rng& rng) const;

  [[nodiscard]] double popularity() const noexcept { return popularity_; }
  [[nodiscard]] double evening_sensitivity() const noexcept { return evening_sensitivity_; }
  [[nodiscard]] double evening_commuter() const noexcept { return evening_commuter_; }

 private:
  double popularity_;
  double evening_sensitivity_;
  double evening_commuter_;
  std::array<StrataProbs, 24> hourly_;
};

/// Realized outcome: does an EV charge given the item's true stratum and
/// whether a discount was offered?  Small label noise keeps the learning
/// problem realistic (paper's data is observational, not clean).
/// @param noise probability of flipping the deterministic outcome.
[[nodiscard]] bool charges(Stratum s, bool discounted, Rng& rng, double noise = 0.03);

}  // namespace ecthub::ev
