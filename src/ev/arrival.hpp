// EV arrival process at a charging station.
//
// A nonhomogeneous Poisson process whose intensity follows the diurnal shape
// of the paper's Fig. 3 (70k records, 12 stations, 3 years): quiet nights, a
// morning ramp, a broad midday/afternoon plateau and an early-evening bump.
#pragma once

#include "common/rng.hpp"
#include "common/time_grid.hpp"

#include <array>
#include <vector>

namespace ecthub::ev {

struct ArrivalConfig {
  /// Expected arrivals per hour at the busiest hour.
  double peak_rate_per_hour = 4.0;
  /// Weekend multiplier on the intensity.
  double weekend_factor = 1.1;
  /// Multiplier applied when a discount is active: discounts attract EVs.
  double discount_uplift = 1.6;
};

/// Normalized diurnal intensity profile (peak = 1) matching Fig. 3.
[[nodiscard]] std::array<double, 24> default_arrival_profile();

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalConfig cfg, Rng rng);

  /// Arrival counts per slot.  `discounted` (optional, per-slot) scales the
  /// intensity by discount_uplift where true.
  [[nodiscard]] std::vector<std::uint64_t> generate(
      const TimeGrid& grid, const std::vector<bool>& discounted = {});

  /// Expected (not sampled) intensity at a slot, arrivals per hour.
  [[nodiscard]] double intensity(const TimeGrid& grid, std::size_t t, bool discounted) const;

  [[nodiscard]] const ArrivalConfig& config() const noexcept { return cfg_; }

 private:
  ArrivalConfig cfg_;
  Rng rng_;
  std::array<double, 24> profile_;
};

}  // namespace ecthub::ev
