// Charging-history dataset generator — the substitute for the paper's
// proprietary campus dataset (12 stations x 3 years, 70k+ records).
//
// Each record is one (station, day, slot) item with the historically-logged
// discount decision T, the realized outcome Y, and (simulator-only) the true
// stratum.  The logging policy is *confounded* in two ways:
//   - observed: discounts were given preferentially at night and at
//     price-sensitive stations (both functions of the model features X);
//   - unmeasured (the paper's Fig. 8 "U" node): a latent per-day demand
//     factor (weather / events) raises both the charging probability and the
//     historical discount propensity (operators pushed promotions during
//     busy periods).  U is not available to any model.  It biases outcome
//     contrasts upward in proportion to a cell's Always mass — making naive
//     uplift estimates select "Always Buyers", the failure mode ECT-Price's
//     stratification is designed to avoid.
#pragma once

#include "common/rng.hpp"
#include "common/time_grid.hpp"
#include "ev/behavior.hpp"

#include <cstdint>
#include <vector>

namespace ecthub::ev {

struct ChargingRecord {
  std::uint32_t station = 0;     ///< station index, [0, num_stations)
  std::uint32_t day = 0;         ///< day index within the horizon
  std::uint32_t hour = 0;        ///< hour of day, [0, 24)
  std::uint8_t day_of_week = 0;  ///< [0, 7)
  bool treated = false;          ///< T: discount was offered
  bool charged = false;          ///< Y: an EV charged
  Stratum stratum = Stratum::kNone;  ///< ground truth (never shown to models)
};

struct DatasetConfig {
  std::size_t num_stations = 12;
  std::size_t num_days = 1095;  ///< three years
  /// Base propensity of the historical logging policy to give a discount.
  double base_propensity = 0.25;
  /// Additional night-time propensity (confounding with the Incentive mass).
  double night_propensity_boost = 0.25;
  /// Extra propensity at stations with high evening sensitivity.
  double sensitivity_boost = 0.15;
  /// Outcome label noise.
  double outcome_noise = 0.03;
  /// Unmeasured daily demand factor: U_d = exp(sigma Z - sigma^2/2)
  /// (mean 1).  0 disables the confounder.  At the default strength the
  /// induced bias inflates every method's uplift estimate in proportion to a
  /// cell's Always mass (~0.4 x), reproducing the paper's "Always Buyer"
  /// failure mode for uplift baselines; ECT-Price's explicit Always-cost
  /// term compensates in its *ranking*, which is why the decision stage
  /// ranks scores instead of thresholding them.
  double demand_sigma = 0.5;
  /// Propensity shift per unit of (U_d - 1).
  double busy_propensity_boost = 0.35;
};

class ChargingDataset {
 public:
  /// Generates the full dataset with per-station random profiles.
  ChargingDataset(DatasetConfig cfg, Rng rng);

  [[nodiscard]] const std::vector<ChargingRecord>& records() const noexcept { return records_; }
  [[nodiscard]] const std::vector<StrataProfile>& profiles() const noexcept { return profiles_; }
  [[nodiscard]] const DatasetConfig& config() const noexcept { return cfg_; }

  /// Number of records with Y = 1 (comparable to the paper's "70,000 rows of
  /// charging history").
  [[nodiscard]] std::size_t num_charges() const;

  /// Chronological train/test split: the first `train_fraction` of days go to
  /// train.  Keeps records intact (no leakage across the boundary).
  struct Split {
    std::vector<ChargingRecord> train;
    std::vector<ChargingRecord> test;
  };
  [[nodiscard]] Split split(double train_fraction) const;

  /// Hour-of-day histogram of charge events — the Fig. 3 series.
  [[nodiscard]] std::vector<std::size_t> charge_frequency_by_hour() const;

  /// The logging policy's X-conditional base propensity (before the
  /// unmeasured demand shift); exposed so tests can verify the observable
  /// confounding structure.
  [[nodiscard]] double true_propensity(std::uint32_t station, std::uint32_t hour) const;

  /// Full propensity including the latent demand factor of the record's day.
  [[nodiscard]] double true_propensity(std::uint32_t station, std::uint32_t hour,
                                       double demand_factor) const;

  /// The latent per-day demand factors (simulator ground truth; models never
  /// see these).
  [[nodiscard]] const std::vector<double>& demand_factors() const noexcept {
    return demand_factors_;
  }

 private:
  DatasetConfig cfg_;
  std::vector<StrataProfile> profiles_;
  std::vector<ChargingRecord> records_;
  std::vector<double> demand_factors_;
};

}  // namespace ecthub::ev
