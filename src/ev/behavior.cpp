#include "ev/behavior.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::ev {

std::string to_string(Stratum s) {
  switch (s) {
    case Stratum::kNone: return "None";
    case Stratum::kIncentive: return "Incentive";
    case Stratum::kAlways: return "Always";
  }
  throw std::logic_error("to_string(Stratum): invalid value");
}

void StrataProbs::normalize() {
  p_none = std::max(p_none, 0.0);
  p_incentive = std::max(p_incentive, 0.0);
  p_always = std::max(p_always, 0.0);
  const double total = p_none + p_incentive + p_always;
  if (total <= 0.0) {
    p_none = 1.0;
    p_incentive = p_always = 0.0;
    return;
  }
  p_none /= total;
  p_incentive /= total;
  p_always /= total;
}

namespace {

/// Daytime "must charge" envelope: commuters and fleet vehicles during
/// business hours, small overnight tail.
double always_envelope(double hour) {
  const double day = std::exp(-0.5 * std::pow((hour - 13.0) / 5.0, 2.0));
  const double overnight = 0.12;
  return std::clamp(0.45 * day + overnight * 0.2, 0.0, 1.0);
}

/// Price-sensitive evening envelope: discretionary charging 18-24h
/// (paper Fig. 12(d): Incentive share jumps to ~41% in that window).
double incentive_envelope(double hour) {
  const double evening = std::exp(-0.5 * std::pow((hour - 21.0) / 2.4, 2.0));
  const double base = 0.05;
  return std::clamp(evening + base, 0.0, 1.0);
}

}  // namespace

StrataProfile::StrataProfile(double popularity, double evening_sensitivity,
                             double evening_commuter)
    : popularity_(popularity),
      evening_sensitivity_(evening_sensitivity),
      evening_commuter_(evening_commuter) {
  if (popularity <= 0.0 || popularity > 1.0) {
    throw std::invalid_argument("StrataProfile: popularity out of (0, 1]");
  }
  if (evening_sensitivity < 0.0 || evening_sensitivity > 1.0) {
    throw std::invalid_argument("StrataProfile: evening_sensitivity out of [0, 1]");
  }
  if (evening_commuter < 0.0 || evening_commuter > 1.0) {
    throw std::invalid_argument("StrataProfile: evening_commuter out of [0, 1]");
  }
  for (std::size_t h = 0; h < 24; ++h) {
    StrataProbs p;
    const double hour = static_cast<double>(h);
    p.p_always = popularity * (always_envelope(hour) +
                               0.45 * evening_commuter * incentive_envelope(hour));
    p.p_incentive = popularity * evening_sensitivity * 0.55 * incentive_envelope(hour);
    p.p_none = 1.0 - p.p_always - p.p_incentive;
    p.normalize();
    hourly_[h] = p;
  }
}

StrataProfile StrataProfile::random_station(Rng& rng) {
  return StrataProfile(rng.uniform(0.5, 1.0), rng.uniform(0.4, 0.9), rng.uniform(0.0, 0.7));
}

const StrataProbs& StrataProfile::at_hour(std::size_t hour) const {
  if (hour >= 24) throw std::out_of_range("StrataProfile: hour out of range");
  return hourly_[hour];
}

Stratum StrataProfile::sample(std::size_t hour, Rng& rng) const {
  const StrataProbs& p = at_hour(hour);
  const double u = rng.uniform();
  if (u < p.p_always) return Stratum::kAlways;
  if (u < p.p_always + p.p_incentive) return Stratum::kIncentive;
  return Stratum::kNone;
}

bool charges(Stratum s, bool discounted, Rng& rng, double noise) {
  if (noise < 0.0 || noise > 0.5) throw std::invalid_argument("charges: noise out of [0, 0.5]");
  bool outcome = false;
  switch (s) {
    case Stratum::kAlways: outcome = true; break;
    case Stratum::kIncentive: outcome = discounted; break;
    case Stratum::kNone: outcome = false; break;
  }
  if (rng.bernoulli(noise)) outcome = !outcome;
  return outcome;
}

}  // namespace ecthub::ev
