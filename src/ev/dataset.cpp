#include "ev/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::ev {

ChargingDataset::ChargingDataset(DatasetConfig cfg, Rng rng) : cfg_(cfg) {
  if (cfg_.num_stations == 0) throw std::invalid_argument("DatasetConfig: num_stations == 0");
  if (cfg_.num_days == 0) throw std::invalid_argument("DatasetConfig: num_days == 0");
  if (cfg_.base_propensity < 0.0 || cfg_.base_propensity > 1.0) {
    throw std::invalid_argument("DatasetConfig: base_propensity out of [0, 1]");
  }

  profiles_.reserve(cfg_.num_stations);
  for (std::size_t s = 0; s < cfg_.num_stations; ++s) {
    profiles_.push_back(StrataProfile::random_station(rng));
  }

  // Latent per-day demand factors (the unmeasured confounder U).
  demand_factors_.reserve(cfg_.num_days);
  for (std::size_t d = 0; d < cfg_.num_days; ++d) {
    if (cfg_.demand_sigma <= 0.0) {
      demand_factors_.push_back(1.0);
    } else {
      const double z = rng.normal();
      demand_factors_.push_back(
          std::exp(cfg_.demand_sigma * z - 0.5 * cfg_.demand_sigma * cfg_.demand_sigma));
    }
  }

  records_.reserve(cfg_.num_stations * cfg_.num_days * 24);
  for (std::uint32_t s = 0; s < cfg_.num_stations; ++s) {
    for (std::uint32_t d = 0; d < cfg_.num_days; ++d) {
      const double demand = demand_factors_[d];
      for (std::uint32_t h = 0; h < 24; ++h) {
        ChargingRecord rec;
        rec.station = s;
        rec.day = d;
        rec.hour = h;
        rec.day_of_week = static_cast<std::uint8_t>(d % 7);
        // Demand scales the charging mass of the cell (both strata), with
        // None absorbing the remainder.
        StrataProbs p = profiles_[s].at_hour(h);
        p.p_always *= demand;
        p.p_incentive *= demand;
        p.p_none = 1.0 - p.p_always - p.p_incentive;
        p.normalize();
        const double u = rng.uniform();
        rec.stratum = u < p.p_always
                          ? Stratum::kAlways
                          : (u < p.p_always + p.p_incentive ? Stratum::kIncentive
                                                            : Stratum::kNone);
        rec.treated = rng.bernoulli(true_propensity(s, h, demand));
        rec.charged = charges(rec.stratum, rec.treated, rng, cfg_.outcome_noise);
        records_.push_back(rec);
      }
    }
  }
}

double ChargingDataset::true_propensity(std::uint32_t station, std::uint32_t hour) const {
  if (station >= profiles_.size()) throw std::out_of_range("true_propensity: bad station");
  if (hour >= 24) throw std::out_of_range("true_propensity: bad hour");
  double p = cfg_.base_propensity;
  if (hour >= 18 || hour < 2) p += cfg_.night_propensity_boost;
  p += cfg_.sensitivity_boost * profiles_[station].evening_sensitivity();
  return std::clamp(p, 0.02, 0.98);
}

double ChargingDataset::true_propensity(std::uint32_t station, std::uint32_t hour,
                                        double demand_factor) const {
  const double base = true_propensity(station, hour);
  return std::clamp(base + cfg_.busy_propensity_boost * (demand_factor - 1.0), 0.02, 0.98);
}

std::size_t ChargingDataset::num_charges() const {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [](const ChargingRecord& r) { return r.charged; }));
}

ChargingDataset::Split ChargingDataset::split(double train_fraction) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split: train_fraction must be in (0, 1)");
  }
  const auto boundary_day =
      static_cast<std::uint32_t>(static_cast<double>(cfg_.num_days) * train_fraction);
  Split out;
  for (const auto& r : records_) {
    (r.day < boundary_day ? out.train : out.test).push_back(r);
  }
  return out;
}

std::vector<std::size_t> ChargingDataset::charge_frequency_by_hour() const {
  std::vector<std::size_t> freq(24, 0);
  for (const auto& r : records_) {
    if (r.charged) ++freq[r.hour];
  }
  return freq;
}

}  // namespace ecthub::ev
