// Solar irradiance model — the NSRDB substitute.
//
// The paper feeds NSRDB solar-radiation data to the PV plant model; offline we
// synthesize global horizontal irradiance (GHI) with the two features the
// downstream models rely on: a deterministic diurnal/seasonal clear-sky
// envelope and stochastic cloud attenuation that makes generation volatile
// and hard to predict (paper Fig. 2).
#pragma once

#include "common/rng.hpp"
#include "common/time_grid.hpp"

#include <vector>

namespace ecthub::weather {

struct SolarConfig {
  /// Peak clear-sky GHI at solar noon on the summer solstice, W/m^2.
  double peak_ghi = 1000.0;
  /// Site latitude proxy: seasonal swing of day length in hours (0 = equator).
  double season_daylength_swing_h = 3.0;
  /// Mean day length, hours.
  double mean_daylength_h = 12.0;
  /// Cloud process: probability per slot of switching between clear/cloudy.
  double cloud_switch_prob = 0.08;
  /// Mean transmittance when cloudy (fraction of clear-sky GHI).
  double cloudy_transmittance = 0.35;
  /// Jitter of the transmittance around its mean.
  double transmittance_sigma = 0.10;
  /// Day-of-year the horizon starts at (0..364); controls the season.
  std::size_t start_day_of_year = 172;  // summer solstice by default
};

/// Clear-sky GHI (W/m^2) at a given hour of day for a given day of year.
/// Zero outside daylight; half-sine inside.
[[nodiscard]] double clear_sky_ghi(const SolarConfig& cfg, std::size_t day_of_year,
                                   double hour_of_day);

/// Generates a GHI series over `grid` with a two-state (clear/cloudy) Markov
/// cloud process modulating the clear-sky envelope.
class SolarModel {
 public:
  SolarModel(SolarConfig cfg, Rng rng);

  [[nodiscard]] std::vector<double> generate(const TimeGrid& grid);

  /// Allocation-free variant: writes the series into `ghi_wm2` in place,
  /// reusing its capacity.  Draws the identical stochastic stream as
  /// generate() — EctHubEnv regenerates episodes through this overload
  /// without touching the heap.
  void generate_into(const TimeGrid& grid, std::vector<double>& out_ghi_wm2);

  [[nodiscard]] const SolarConfig& config() const noexcept { return cfg_; }

 private:
  SolarConfig cfg_;
  Rng rng_;
};

}  // namespace ecthub::weather
