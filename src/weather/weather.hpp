// Combined weather series consumed by the renewable plant models and the
// DRL state vector (paper Eq. 24's "weather" component).
#pragma once

#include "common/rng.hpp"
#include "common/time_grid.hpp"
#include "weather/solar.hpp"
#include "weather/wind.hpp"

#include <vector>

namespace ecthub::weather {

/// Per-slot weather observations.
struct WeatherSeries {
  std::vector<double> ghi_wm2;        ///< global horizontal irradiance, W/m^2
  std::vector<double> wind_speed_ms;  ///< wind speed at hub height, m/s
  std::vector<double> temperature_c;  ///< ambient temperature, deg C

  [[nodiscard]] std::size_t size() const noexcept { return ghi_wm2.size(); }
};

struct WeatherConfig {
  SolarConfig solar;
  WindConfig wind;
  double mean_temperature_c = 18.0;
  double diurnal_temp_swing_c = 8.0;
  double temp_noise_sigma = 1.0;
};

/// Generates consistent solar / wind / temperature series on one grid.
class WeatherGenerator {
 public:
  WeatherGenerator(WeatherConfig cfg, Rng rng);

  [[nodiscard]] WeatherSeries generate(const TimeGrid& grid);

  /// Allocation-free variant: regenerates `series` in place, reusing the
  /// capacity of its three channels.  Draws the identical stochastic stream
  /// as generate() (same solar / wind / temperature fork order).
  void generate_into(const TimeGrid& grid, WeatherSeries& series);

  [[nodiscard]] const WeatherConfig& config() const noexcept { return cfg_; }

 private:
  WeatherConfig cfg_;
  Rng rng_;
};

}  // namespace ecthub::weather
