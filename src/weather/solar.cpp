#include "weather/solar.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecthub::weather {

double clear_sky_ghi(const SolarConfig& cfg, std::size_t day_of_year, double hour_of_day) {
  // Day length varies sinusoidally over the year around the mean; peak GHI
  // scales with relative day length as a season proxy.
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>((day_of_year + 365 - 172) % 365) / 365.0;
  const double daylength =
      cfg.mean_daylength_h + 0.5 * cfg.season_daylength_swing_h * std::cos(phase);
  const double sunrise = 12.0 - daylength / 2.0;
  const double sunset = 12.0 + daylength / 2.0;
  if (hour_of_day <= sunrise || hour_of_day >= sunset) return 0.0;
  const double x = (hour_of_day - sunrise) / daylength;  // in (0, 1)
  const double seasonal_peak = cfg.peak_ghi * (daylength / (cfg.mean_daylength_h +
                                                            0.5 * cfg.season_daylength_swing_h));
  return seasonal_peak * std::sin(std::numbers::pi * x);
}

SolarModel::SolarModel(SolarConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {
  if (cfg_.peak_ghi <= 0.0) throw std::invalid_argument("SolarConfig: peak_ghi must be > 0");
  if (cfg_.cloud_switch_prob < 0.0 || cfg_.cloud_switch_prob > 1.0) {
    throw std::invalid_argument("SolarConfig: cloud_switch_prob out of [0, 1]");
  }
  if (cfg_.cloudy_transmittance < 0.0 || cfg_.cloudy_transmittance > 1.0) {
    throw std::invalid_argument("SolarConfig: cloudy_transmittance out of [0, 1]");
  }
}

std::vector<double> SolarModel::generate(const TimeGrid& grid) {
  std::vector<double> ghi;
  generate_into(grid, ghi);
  return ghi;
}

void SolarModel::generate_into(const TimeGrid& grid, std::vector<double>& out_ghi) {
  out_ghi.resize(grid.size());
  bool cloudy = rng_.bernoulli(0.5);
  for (std::size_t t = 0; t < grid.size(); ++t) {
    if (rng_.bernoulli(cfg_.cloud_switch_prob)) cloudy = !cloudy;
    const std::size_t doy = (cfg_.start_day_of_year + grid.day_of(t)) % 365;
    const double clear = clear_sky_ghi(cfg_, doy, grid.hour_of_day(t));
    double trans = 1.0;
    if (cloudy) {
      trans = std::clamp(
          cfg_.cloudy_transmittance + rng_.normal(0.0, cfg_.transmittance_sigma), 0.05, 1.0);
    } else {
      // Even "clear" slots see small high-cirrus variation.
      trans = std::clamp(1.0 - std::abs(rng_.normal(0.0, 0.03)), 0.8, 1.0);
    }
    out_ghi[t] = clear * trans;
  }
}

}  // namespace ecthub::weather
