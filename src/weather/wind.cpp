#include "weather/wind.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecthub::weather {

WindModel::WindModel(WindConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {
  if (cfg_.mean_speed_ms < 0.0) throw std::invalid_argument("WindConfig: mean_speed_ms < 0");
  if (cfg_.reversion_rate <= 0.0 || cfg_.reversion_rate >= 1.0) {
    throw std::invalid_argument("WindConfig: reversion_rate must be in (0, 1)");
  }
  if (cfg_.volatility < 0.0) throw std::invalid_argument("WindConfig: volatility < 0");
}

std::vector<double> WindModel::generate(const TimeGrid& grid) {
  std::vector<double> speed;
  generate_into(grid, speed);
  return speed;
}

void WindModel::generate_into(const TimeGrid& grid, std::vector<double>& out_speed) {
  out_speed.resize(grid.size());
  double x = cfg_.mean_speed_ms;  // OU state
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double diurnal =
        1.0 + cfg_.diurnal_amplitude *
                  std::sin(2.0 * std::numbers::pi * (grid.hour_of_day(t) - 9.0) / 24.0);
    x += cfg_.reversion_rate * (cfg_.mean_speed_ms - x) +
         rng_.normal(0.0, cfg_.volatility);
    x = std::clamp(x, 0.0, cfg_.max_speed_ms);
    out_speed[t] = std::clamp(x * diurnal, 0.0, cfg_.max_speed_ms);
  }
}

}  // namespace ecthub::weather
