#include "weather/weather.hpp"

#include <cmath>
#include <numbers>

namespace ecthub::weather {

WeatherGenerator::WeatherGenerator(WeatherConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {}

WeatherSeries WeatherGenerator::generate(const TimeGrid& grid) {
  WeatherSeries series;
  generate_into(grid, series);
  return series;
}

void WeatherGenerator::generate_into(const TimeGrid& grid, WeatherSeries& series) {
  SolarModel solar(cfg_.solar, rng_.fork());
  WindModel wind(cfg_.wind, rng_.fork());
  solar.generate_into(grid, series.ghi_wm2);
  wind.generate_into(grid, series.wind_speed_ms);
  series.temperature_c.resize(grid.size());
  Rng temp_rng = rng_.fork();
  for (std::size_t t = 0; t < grid.size(); ++t) {
    // Temperature lags solar noon by ~2h; peak mid-afternoon.
    const double diurnal = std::sin(2.0 * std::numbers::pi * (grid.hour_of_day(t) - 8.0) / 24.0);
    series.temperature_c[t] = cfg_.mean_temperature_c +
                              0.5 * cfg_.diurnal_temp_swing_c * diurnal +
                              temp_rng.normal(0.0, cfg_.temp_noise_sigma);
  }
}

}  // namespace ecthub::weather
