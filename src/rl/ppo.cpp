#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecthub::rl {

PpoTrainer::PpoTrainer(PpoConfig cfg, ActorCriticConfig ac_cfg, nn::Rng rng)
    : cfg_(cfg), rng_(rng), ac_(ac_cfg, rng_), opt_(cfg.adam) {
  if (cfg_.clip_epsilon <= 0.0 || cfg_.clip_epsilon >= 1.0) {
    throw std::invalid_argument("PpoConfig: clip_epsilon out of (0, 1)");
  }
  if (cfg_.minibatch_size == 0) throw std::invalid_argument("PpoConfig: minibatch_size == 0");
  if (cfg_.episodes_per_iteration == 0) {
    throw std::invalid_argument("PpoConfig: episodes_per_iteration == 0");
  }
}

double PpoTrainer::collect_episode(Env& env, RolloutBuffer& buffer) {
  std::vector<double> state = env.reset();
  double total_reward = 0.0;
  bool done = false;
  while (!done) {
    const ActorCritic::Sample sample = ac_.act(state, rng_);
    const StepResult result = env.step(sample.action);
    Transition t;
    t.state = state;
    t.action = sample.action;
    t.log_prob = sample.log_prob;
    t.reward = result.reward;
    t.value = sample.value;
    t.done = result.done;
    t.truncated = result.done && result.truncated;
    if (t.truncated) {
      // Time-limit end: GAE bootstraps the critic's view of the final state
      // instead of assuming a terminal (the paper's MDP has no terminal).
      t.bootstrap_value = ac_.value_of(result.next_state, value_ws_);
    }
    buffer.add(std::move(t));
    total_reward += result.reward;
    state = result.next_state;
    done = result.done;
  }
  return total_reward;
}

PpoUpdateStats PpoTrainer::update(const RolloutBuffer& buffer) {
  const auto& trans = buffer.transitions();
  if (trans.empty()) throw std::invalid_argument("PpoTrainer::update: empty buffer");

  // Episodes end with done = true, so no trailing bootstrap is needed here;
  // truncated episodes carry their own per-transition bootstrap_value.
  RolloutBuffer::Targets targets = buffer.compute_gae(cfg_.gamma, cfg_.gae_lambda, 0.0);
  RolloutBuffer::normalize(targets.advantages);

  PpoUpdateStats agg;
  std::size_t agg_batches = 0;
  std::vector<std::size_t> order(trans.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < cfg_.update_epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += cfg_.minibatch_size) {
      const std::size_t end = std::min(start + cfg_.minibatch_size, order.size());
      const std::size_t n = end - start;

      std::vector<std::vector<double>> state_rows;
      state_rows.reserve(n);
      for (std::size_t k = start; k < end; ++k) state_rows.push_back(trans[order[k]].state);
      const nn::Matrix states = nn::Matrix::from_rows(state_rows);

      ac_.zero_grad();
      const PolicyOutput out = ac_.forward(states);

      nn::Matrix dprobs(n, out.probs.cols(), 0.0);
      nn::Matrix dvalues(n, 1, 0.0);
      PpoUpdateStats stats;
      const double dn = static_cast<double>(n);
      for (std::size_t k = 0; k < n; ++k) {
        const Transition& t = trans[order[start + k]];
        const double adv = targets.advantages[order[start + k]];
        const double ret = targets.returns[order[start + k]];
        const double p_new = std::max(out.probs(k, t.action), 1e-12);
        const double p_old = std::exp(t.log_prob);
        const double ratio = p_new / p_old;  // Eq. 26
        stats.mean_ratio += ratio / dn;

        // Clipped surrogate (Eq. 25).  Gradient flows through the unclipped
        // branch only when it is the active minimum.
        const double lo = 1.0 - cfg_.clip_epsilon, hi = 1.0 + cfg_.clip_epsilon;
        const double unclipped = ratio * adv;
        const double clipped = std::clamp(ratio, lo, hi) * adv;
        stats.policy_loss -= std::min(unclipped, clipped) / dn;
        const bool pass_gradient = (adv >= 0.0 && ratio <= hi) || (adv < 0.0 && ratio >= lo);
        if (!pass_gradient) stats.clip_fraction += 1.0 / dn;
        if (pass_gradient) {
          // dL/dp(a) = -adv / p_old, averaged over the batch.
          dprobs(k, t.action) += -adv / p_old / dn;
        }

        // Value regression (Eq. 27 second term).
        const double v = out.values(k, 0);
        stats.value_loss += cfg_.value_coeff * (v - ret) * (v - ret) / dn;
        dvalues(k, 0) = 2.0 * cfg_.value_coeff * (v - ret) / dn;

        // Entropy bonus: encourage exploration; subtracting beta * H from the
        // loss adds beta * (log p + 1) to dL/dp for every action.
        for (std::size_t a = 0; a < out.probs.cols(); ++a) {
          const double p = std::max(out.probs(k, a), 1e-12);
          stats.entropy -= p * std::log(p) / dn;
          dprobs(k, a) += cfg_.entropy_coeff * (std::log(p) + 1.0) / dn;
        }
      }

      ac_.backward(dprobs, dvalues);
      auto params = ac_.parameters();
      opt_.step(params);

      agg.policy_loss += stats.policy_loss;
      agg.value_loss += stats.value_loss;
      agg.entropy += stats.entropy;
      agg.mean_ratio += stats.mean_ratio;
      agg.clip_fraction += stats.clip_fraction;
      ++agg_batches;
    }
  }
  if (agg_batches > 0) {
    const double b = static_cast<double>(agg_batches);
    agg.policy_loss /= b;
    agg.value_loss /= b;
    agg.entropy /= b;
    agg.mean_ratio /= b;
    agg.clip_fraction /= b;
  }
  return agg;
}

std::vector<PpoIterationStats> PpoTrainer::train(Env& env, std::size_t iterations) {
  std::vector<PpoIterationStats> history;
  history.reserve(iterations);
  for (std::size_t it = 0; it < iterations; ++it) {
    RolloutBuffer buffer;
    double reward_acc = 0.0;
    for (std::size_t e = 0; e < cfg_.episodes_per_iteration; ++e) {
      reward_acc += collect_episode(env, buffer);
    }
    PpoIterationStats stats;
    stats.mean_episode_reward = reward_acc / static_cast<double>(cfg_.episodes_per_iteration);
    stats.update = update(buffer);
    history.push_back(stats);
  }
  return history;
}

std::vector<PpoIterationStats> PpoTrainer::train_fleet(const std::vector<Env*>& envs,
                                                       std::size_t iterations,
                                                       const VecCollectorConfig& collector) {
  VecRolloutCollector vec(envs, collector);
  std::vector<PpoIterationStats> history;
  history.reserve(iterations);
  for (std::size_t it = 0; it < iterations; ++it) {
    vec.clear();
    const VecRolloutCollector::Stats stats =
        vec.collect(ac_, cfg_.episodes_per_iteration);
    RolloutBuffer merged;
    merged.reserve(stats.transitions);
    for (const RolloutBuffer& lane : vec.buffers()) merged.append(lane);
    PpoIterationStats iteration;
    iteration.mean_episode_reward =
        stats.episodes > 0 ? stats.total_reward / static_cast<double>(stats.episodes) : 0.0;
    iteration.update = update(merged);
    history.push_back(iteration);
  }
  return history;
}

double PpoTrainer::evaluate(Env& env, std::size_t episodes) {
  const std::vector<double> rewards = evaluate_episodes(env, episodes);
  if (rewards.empty()) return 0.0;
  return std::accumulate(rewards.begin(), rewards.end(), 0.0) /
         static_cast<double>(rewards.size());
}

std::vector<double> PpoTrainer::evaluate_episodes(Env& env, std::size_t episodes) {
  std::vector<double> rewards;
  rewards.reserve(episodes);
  for (std::size_t e = 0; e < episodes; ++e) {
    std::vector<double> state = env.reset();
    double total = 0.0;
    bool done = false;
    while (!done) {
      const StepResult r = env.step(ac_.act_greedy(state));
      total += r.reward;
      state = r.next_state;
      done = r.done;
    }
    rewards.push_back(total);
  }
  return rewards;
}

}  // namespace ecthub::rl
