#include "rl/env.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::rl {

void Env::reset_into(std::span<double> state) {
  const std::vector<double> s = reset();
  if (state.size() != s.size()) {
    throw std::invalid_argument("Env::reset_into: buffer size != state_dim()");
  }
  std::copy(s.begin(), s.end(), state.begin());
}

StepOutcome Env::step_into(std::size_t action, std::span<double> next_state) {
  const StepResult r = step(action);
  if (next_state.size() != r.next_state.size()) {
    throw std::invalid_argument("Env::step_into: buffer size != state_dim()");
  }
  std::copy(r.next_state.begin(), r.next_state.end(), next_state.begin());
  return StepOutcome{r.reward, r.done, r.truncated};
}

}  // namespace ecthub::rl
