// Vectorized PPO rollout collection: N env lanes stepped in lockstep with
// one batched stochastic actor forward per slot.
//
// Inference got the batching machinery first (lockstep fleet GEMMs,
// decide_rows row blocks, cache-blocked matmul); this is the training half.
// The collector holds one observation row per lane in an (N x state_dim)
// matrix, advances every live lane one step per slot — reset_into /
// act_rows / step_into, all in place — and records each lane's transitions
// into its own RolloutBuffer.
//
// Determinism contract (mirrors the fleet runner's):
//  * Lane l samples from its own Rng stream seeded mix_seed(seed, l); the
//    streams persist across collect() calls and are never shared, so every
//    transition is a pure function of (envs, actor weights, seed, episode
//    index) — independent of thread count and of the other lanes.
//  * With threads > 1, lanes split into fixed contiguous partitions across a
//    BarrierCrew; each member drives its partition through one fused phase
//    per slot (episode turnover -> act_rows on its contiguous row block with
//    its own RowsWorkspace -> step + record).  A lane is touched by exactly
//    one thread, row-block GEMMs are bit-identical at any split, and the
//    per-lane RNG streams replay exactly — so the collected buffers are
//    bit-identical to the serial per-lane reference (collect_serial) at any
//    `threads` setting.  Finished lanes keep a stale observation row and
//    are masked out of sampling, so they never consume stream draws.
//  * Episodes that end truncated (time limit) record the critic bootstrap
//    V(s_T) on their final transition, evaluated on the terminal observation
//    the env leaves in the lane row.
#pragma once

#include "rl/actor_critic.hpp"
#include "rl/env.hpp"
#include "rl/rollout.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace ecthub {
class BarrierCrew;  // common/crew.hpp
}

namespace ecthub::rl {

struct VecCollectorConfig {
  /// Crew size for the per-slot phase; 0 = hardware concurrency, 1 = serial
  /// in-thread (the default).  Any value collects bit-identical buffers.
  std::size_t threads = 1;
  /// Base of the per-lane sampling streams: lane l draws from
  /// Rng(mix_seed(seed, l)).
  std::uint64_t seed = 123;
};

class VecRolloutCollector {
 public:
  /// Non-owning lanes: every env must outlive the collector, be distinct,
  /// and agree on state_dim/action_count (matching `ac` when collected).
  VecRolloutCollector(std::vector<Env*> envs, VecCollectorConfig cfg);
  ~VecRolloutCollector();

  VecRolloutCollector(const VecRolloutCollector&) = delete;
  VecRolloutCollector& operator=(const VecRolloutCollector&) = delete;

  struct Stats {
    double total_reward = 0.0;      ///< summed in lane order (deterministic)
    std::size_t episodes = 0;
    std::size_t transitions = 0;
  };

  /// Collects `episodes_per_lane` full episodes on every lane into the
  /// per-lane buffers (appending — call clear() between iterations),
  /// batching the actor forward across live lanes each slot.
  Stats collect(const ActorCritic& ac, std::size_t episodes_per_lane);

  /// The serial reference: the same lanes, streams and buffers driven one
  /// lane at a time through per-row act().  Bit-identical buffers to
  /// collect() at any VecCollectorConfig::threads.
  Stats collect_serial(ActorCritic& ac, std::size_t episodes_per_lane);

  [[nodiscard]] std::size_t lanes() const noexcept { return envs_.size(); }
  [[nodiscard]] const std::vector<RolloutBuffer>& buffers() const noexcept {
    return buffers_;
  }
  void clear();

 private:
  Stats finish_stats() const;

  std::vector<Env*> envs_;
  VecCollectorConfig cfg_;
  std::size_t crew_size_ = 1;  ///< resolved crew size (clamped to lanes)
  std::vector<nn::Rng> rngs_;  ///< per-lane sampling streams, persistent
  std::vector<RolloutBuffer> buffers_;
  std::vector<double> lane_reward_;      ///< per-lane reward accumulators
  std::vector<std::size_t> lane_episodes_;
  std::unique_ptr<BarrierCrew> crew_;    ///< lazily built when threads > 1

  // Lockstep slot state (sized to lanes, reused across collect calls).
  nn::Matrix obs_;                       ///< one observation row per lane
  std::vector<ActorCritic::Sample> samples_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> needs_reset_;
  std::vector<std::size_t> remaining_;
  std::vector<ActorCritic::RowsWorkspace> workspaces_;  ///< one per member
};

}  // namespace ecthub::rl
