// Rollout storage and Generalized Advantage Estimation.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::rl {

/// One transition collected under the behaviour policy.
struct Transition {
  std::vector<double> state;
  std::size_t action = 0;
  double log_prob = 0.0;  ///< log pi_old(a | s)
  double reward = 0.0;
  double value = 0.0;     ///< V_old(s)
  bool done = false;
  /// done by time limit: the tail still has value, so GAE bootstraps
  /// `bootstrap_value` (= V(s_T), recorded by the collector) instead of 0.
  bool truncated = false;
  double bootstrap_value = 0.0;
};

class RolloutBuffer {
 public:
  void add(Transition t);
  /// Appends a copy of `other`'s transitions (lane merge before an update).
  void append(const RolloutBuffer& other);
  void clear();
  void reserve(std::size_t n) { transitions_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return transitions_.size(); }
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

  /// Computes GAE(lambda) advantages and discounted returns.
  /// `last_value` bootstraps the value beyond the final transition when the
  /// rollout was truncated mid-episode (ignored after terminal steps).
  struct Targets {
    std::vector<double> advantages;
    std::vector<double> returns;  ///< advantage + value: critic regression target
  };
  [[nodiscard]] Targets compute_gae(double gamma, double lambda, double last_value) const;

  /// Normalizes advantages to zero mean / unit variance (PPO convention).
  static void normalize(std::vector<double>& advantages);

 private:
  std::vector<Transition> transitions_;
};

}  // namespace ecthub::rl
