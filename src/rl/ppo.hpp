// Proximal Policy Optimization with a clipped surrogate objective
// (paper Sec. IV-B, Eqs. 25-28).
//
// Loss per transition:
//   L = -min(r A, clip(r, 1-eps, 1+eps) A) + c (V - R)^2 - beta H(pi(.|s))
// where r is the new/old probability ratio and H the policy entropy.  The
// clip prevents the "great turbulence" of the vanilla policy gradient the
// paper calls out.
#pragma once

#include "nn/optimizer.hpp"
#include "rl/actor_critic.hpp"
#include "rl/env.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_collector.hpp"

#include <vector>

namespace ecthub::rl {

struct PpoConfig {
  /// 0.97 suits the hub task: battery arbitrage pays back within hours, so a
  /// shorter effective horizon reduces return variance.
  double gamma = 0.97;
  double gae_lambda = 0.95;
  double clip_epsilon = 0.2;
  double value_coeff = 0.5;     ///< c in Eq. 27
  double entropy_coeff = 0.01;  ///< exploration bonus
  std::size_t update_epochs = 4;
  std::size_t minibatch_size = 64;
  std::size_t episodes_per_iteration = 8;
  /// Adam lr 1e-3 / weight decay 1e-4: the paper's ECT-DRL training setup.
  nn::AdamConfig adam{.lr = 1e-3, .weight_decay = 1e-4, .grad_clip = 5.0};
};

struct PpoUpdateStats {
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double mean_ratio = 0.0;
  double clip_fraction = 0.0;  ///< share of transitions where the clip bound
};

struct PpoIterationStats {
  double mean_episode_reward = 0.0;
  PpoUpdateStats update;
};

class PpoTrainer {
 public:
  PpoTrainer(PpoConfig cfg, ActorCriticConfig ac_cfg, nn::Rng rng);

  /// Runs `iterations` collect+update cycles on `env`.
  std::vector<PpoIterationStats> train(Env& env, std::size_t iterations);

  /// Fleet-scale training: `iterations` cycles of vectorized lockstep
  /// collection over N env lanes (episodes_per_iteration episodes *per
  /// lane*, batched stochastic forwards via ActorCritic::act_rows) followed
  /// by the standard PPO update on the lane-merged buffer.  Collection
  /// samples from the collector's per-lane streams — never from the
  /// trainer's rng_ — and the update path is untouched, so the trained
  /// weights are bit-identical at any VecCollectorConfig::threads.
  std::vector<PpoIterationStats> train_fleet(const std::vector<Env*>& envs,
                                             std::size_t iterations,
                                             const VecCollectorConfig& collector = {});

  /// Mean episode reward under the greedy policy over `episodes` fresh
  /// episodes (no learning).
  double evaluate(Env& env, std::size_t episodes);

  /// Per-episode rewards under the greedy policy (for Fig. 13-style series).
  std::vector<double> evaluate_episodes(Env& env, std::size_t episodes);

  [[nodiscard]] ActorCritic& policy() noexcept { return ac_; }
  [[nodiscard]] const ActorCritic& policy() const noexcept { return ac_; }
  [[nodiscard]] const PpoConfig& config() const noexcept { return cfg_; }

  /// One PPO update over an externally-collected buffer (exposed for tests).
  PpoUpdateStats update(const RolloutBuffer& buffer);

 private:
  /// Collects one full episode into `buffer`; returns its total reward.
  double collect_episode(Env& env, RolloutBuffer& buffer);

  PpoConfig cfg_;
  nn::Rng rng_;
  ActorCritic ac_;
  nn::Adam opt_;
  ActorCritic::RowsWorkspace value_ws_;  ///< truncation-bootstrap scratch
};

}  // namespace ecthub::rl
