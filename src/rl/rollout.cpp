#include "rl/rollout.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::rl {

void RolloutBuffer::add(Transition t) { transitions_.push_back(std::move(t)); }

void RolloutBuffer::append(const RolloutBuffer& other) {
  transitions_.insert(transitions_.end(), other.transitions_.begin(),
                      other.transitions_.end());
}

void RolloutBuffer::clear() { transitions_.clear(); }

RolloutBuffer::Targets RolloutBuffer::compute_gae(double gamma, double lambda,
                                                  double last_value) const {
  if (transitions_.empty()) throw std::logic_error("compute_gae: empty buffer");
  if (gamma < 0.0 || gamma > 1.0 || lambda < 0.0 || lambda > 1.0) {
    throw std::invalid_argument("compute_gae: gamma/lambda out of [0, 1]");
  }
  const std::size_t n = transitions_.size();
  Targets out;
  out.advantages.assign(n, 0.0);
  out.returns.assign(n, 0.0);
  double gae = 0.0;
  double next_value = last_value;
  for (std::size_t i = n; i-- > 0;) {
    const Transition& t = transitions_[i];
    const double mask = t.done ? 0.0 : 1.0;
    // The advantage chain always cuts at an episode boundary (mask), but the
    // one-step bootstrap distinguishes how it ended: a true terminal has no
    // future value, while a time-limit truncation bootstraps the critic's
    // V(s_T) recorded on the transition (paper's infinite-horizon MDP).
    const double next_v = t.done ? (t.truncated ? t.bootstrap_value : 0.0) : next_value;
    const double delta = t.reward + gamma * next_v - t.value;
    gae = delta + gamma * lambda * mask * gae;
    out.advantages[i] = gae;
    out.returns[i] = gae + t.value;
    next_value = t.value;
  }
  return out;
}

void RolloutBuffer::normalize(std::vector<double>& advantages) {
  if (advantages.size() < 2) return;
  double mean = 0.0;
  for (double a : advantages) mean += a;
  mean /= static_cast<double>(advantages.size());
  double var = 0.0;
  for (double a : advantages) var += (a - mean) * (a - mean);
  var /= static_cast<double>(advantages.size());
  const double sd = std::sqrt(var) + 1e-8;
  for (double& a : advantages) a = (a - mean) / sd;
}

}  // namespace ecthub::rl
