#include "rl/actor_critic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::rl {

namespace {
nn::MlpConfig head_config(std::size_t in, std::size_t hidden, std::size_t out) {
  nn::MlpConfig mc;
  mc.layer_dims = {in, hidden, out};
  mc.output_activation = nn::Activation::kIdentity;
  return mc;
}
}  // namespace

ActorCritic::ActorCritic(ActorCriticConfig cfg, nn::Rng& rng)
    : cfg_(cfg),
      trunk_(cfg.state_dim, cfg.trunk_dim, rng, "ac.trunk"),
      trunk_act_(nn::Activation::kTanh),
      actor_(head_config(cfg.trunk_dim, cfg.head_dim, cfg.action_count), rng, "ac.actor"),
      critic_(head_config(cfg.trunk_dim, cfg.head_dim, 1), rng, "ac.critic") {
  if (cfg.state_dim == 0) throw std::invalid_argument("ActorCriticConfig: state_dim == 0");
  if (cfg.action_count < 2) throw std::invalid_argument("ActorCriticConfig: need >= 2 actions");
}

PolicyOutput ActorCritic::forward(const nn::Matrix& states) {
  const nn::Matrix h = trunk_act_.forward(trunk_.forward(states));
  PolicyOutput out;
  out.probs = nn::softmax_rows(actor_.forward(h));
  out.values = critic_.forward(h);
  cached_probs_ = out.probs;
  return out;
}

void ActorCritic::backward(const nn::Matrix& dprobs, const nn::Matrix& dvalues) {
  if (cached_probs_.empty()) throw std::logic_error("ActorCritic::backward before forward");
  if (dprobs.rows() != cached_probs_.rows() || dprobs.cols() != cached_probs_.cols()) {
    throw std::invalid_argument(
        "ActorCritic::backward: dprobs shape does not match the cached forward batch");
  }
  if (dvalues.rows() != cached_probs_.rows() || dvalues.cols() != 1) {
    throw std::invalid_argument(
        "ActorCritic::backward: dvalues shape does not match the cached forward batch");
  }
  const nn::Matrix dlogits = nn::softmax_backward(cached_probs_, dprobs);
  nn::Matrix dh = actor_.backward(dlogits);
  dh.add_inplace(critic_.backward(dvalues));
  trunk_.backward(trunk_act_.backward(dh));
}

void ActorCritic::zero_grad() {
  trunk_.zero_grad();
  actor_.zero_grad();
  critic_.zero_grad();
}

std::vector<nn::Parameter> ActorCritic::parameters() {
  std::vector<nn::Parameter> out = trunk_.parameters();
  for (auto& p : actor_.parameters()) out.push_back(p);
  for (auto& p : critic_.parameters()) out.push_back(p);
  return out;
}

std::vector<nn::ConstParameter> ActorCritic::parameters() const {
  std::vector<nn::ConstParameter> out = trunk_.parameters();
  for (const auto& p : actor_.parameters()) out.push_back(p);
  for (const auto& p : critic_.parameters()) out.push_back(p);
  return out;
}

ActorCritic::RowsOutput ActorCritic::forward_rows(const nn::Matrix& states,
                                                  std::size_t row_begin,
                                                  std::size_t row_end,
                                                  RowsWorkspace& ws) const {
  if (states.cols() != cfg_.state_dim) {
    throw std::invalid_argument("ActorCritic: state dim mismatch");
  }
  if (row_begin > row_end || row_end > states.rows()) {
    throw std::invalid_argument("ActorCritic: bad row range");
  }
  trunk_.forward_rows_into(states, row_begin, row_end, ws.trunk);
  trunk_act_.forward_inplace(ws.trunk);
  RowsOutput out;
  out.logits = &actor_.forward_rows(ws.trunk, 0, ws.trunk.rows(), ws.actor_scratch);
  out.values = &critic_.forward_rows(ws.trunk, 0, ws.trunk.rows(), ws.critic_scratch);
  return out;
}

void ActorCritic::act_rows(const nn::Matrix& states, std::size_t row_begin,
                           std::size_t row_end, std::span<nn::Rng> rngs,
                           std::span<Sample> out, RowsWorkspace& ws,
                           std::span<const std::uint8_t> active) const {
  if (rngs.size() != states.rows() || out.size() != states.rows()) {
    throw std::invalid_argument("ActorCritic::act_rows: rngs/out size != states.rows()");
  }
  if (!active.empty() && active.size() != states.rows()) {
    throw std::invalid_argument("ActorCritic::act_rows: active size != states.rows()");
  }
  if (row_begin == row_end) return;
  const RowsOutput fwd = forward_rows(states, row_begin, row_end, ws);
  for (std::size_t i = 0; i < row_end - row_begin; ++i) {
    const std::size_t r = row_begin + i;
    if (!active.empty() && active[r] == 0) continue;
    nn::softmax_row_into(*fwd.logits, i, ws.probs);
    Sample s;
    s.action = rngs[r].categorical(ws.probs);
    s.log_prob = std::log(std::max(ws.probs[s.action], 1e-12));
    s.value = (*fwd.values)(i, 0);
    out[r] = s;
  }
}

double ActorCritic::value_of(std::span<const double> state, RowsWorkspace& ws) const {
  if (state.size() != cfg_.state_dim) {
    throw std::invalid_argument("ActorCritic::value_of: state dim mismatch");
  }
  ws.single.resize_zeroed(1, cfg_.state_dim);
  std::copy(state.begin(), state.end(), ws.single.data().begin());
  const RowsOutput fwd = forward_rows(ws.single, 0, 1, ws);
  return (*fwd.values)(0, 0);
}

ActorCritic::Sample ActorCritic::act(const std::vector<double>& state, nn::Rng& rng) {
  if (state.size() != cfg_.state_dim) throw std::invalid_argument("act: state dim mismatch");
  // Own scratch (act_ws_), not the training path: sampling between forward()
  // and backward() no longer clobbers the cached softmax batch.
  act_ws_.single.resize_zeroed(1, cfg_.state_dim);
  std::copy(state.begin(), state.end(), act_ws_.single.data().begin());
  Sample s;
  act_rows(act_ws_.single, 0, 1, std::span<nn::Rng>(&rng, 1), std::span<Sample>(&s, 1),
           act_ws_);
  return s;
}

std::size_t ActorCritic::act_greedy(const std::vector<double>& state) {
  if (state.size() != cfg_.state_dim) {
    throw std::invalid_argument("act_greedy: state dim mismatch");
  }
  act_ws_.single.resize_zeroed(1, cfg_.state_dim);
  std::copy(state.begin(), state.end(), act_ws_.single.data().begin());
  const RowsOutput fwd = forward_rows(act_ws_.single, 0, 1, act_ws_);
  // argmax over logits == argmax over softmax probabilities (strictly
  // increasing per-row map), including tie order.
  std::size_t best = 0;
  for (std::size_t a = 1; a < cfg_.action_count; ++a) {
    if ((*fwd.logits)(0, a) > (*fwd.logits)(0, best)) best = a;
  }
  return best;
}

}  // namespace ecthub::rl
