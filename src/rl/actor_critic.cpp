#include "rl/actor_critic.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::rl {

namespace {
nn::MlpConfig head_config(std::size_t in, std::size_t hidden, std::size_t out) {
  nn::MlpConfig mc;
  mc.layer_dims = {in, hidden, out};
  mc.output_activation = nn::Activation::kIdentity;
  return mc;
}
}  // namespace

ActorCritic::ActorCritic(ActorCriticConfig cfg, nn::Rng& rng)
    : cfg_(cfg),
      trunk_(cfg.state_dim, cfg.trunk_dim, rng, "ac.trunk"),
      trunk_act_(nn::Activation::kTanh),
      actor_(head_config(cfg.trunk_dim, cfg.head_dim, cfg.action_count), rng, "ac.actor"),
      critic_(head_config(cfg.trunk_dim, cfg.head_dim, 1), rng, "ac.critic") {
  if (cfg.state_dim == 0) throw std::invalid_argument("ActorCriticConfig: state_dim == 0");
  if (cfg.action_count < 2) throw std::invalid_argument("ActorCriticConfig: need >= 2 actions");
}

PolicyOutput ActorCritic::forward(const nn::Matrix& states) {
  const nn::Matrix h = trunk_act_.forward(trunk_.forward(states));
  PolicyOutput out;
  out.probs = nn::softmax_rows(actor_.forward(h));
  out.values = critic_.forward(h);
  cached_probs_ = out.probs;
  return out;
}

void ActorCritic::backward(const nn::Matrix& dprobs, const nn::Matrix& dvalues) {
  if (cached_probs_.empty()) throw std::logic_error("ActorCritic::backward before forward");
  const nn::Matrix dlogits = nn::softmax_backward(cached_probs_, dprobs);
  nn::Matrix dh = actor_.backward(dlogits);
  dh.add_inplace(critic_.backward(dvalues));
  trunk_.backward(trunk_act_.backward(dh));
}

void ActorCritic::zero_grad() {
  trunk_.zero_grad();
  actor_.zero_grad();
  critic_.zero_grad();
}

std::vector<nn::Parameter> ActorCritic::parameters() {
  std::vector<nn::Parameter> out = trunk_.parameters();
  for (auto& p : actor_.parameters()) out.push_back(p);
  for (auto& p : critic_.parameters()) out.push_back(p);
  return out;
}

ActorCritic::Sample ActorCritic::act(const std::vector<double>& state, nn::Rng& rng) {
  if (state.size() != cfg_.state_dim) throw std::invalid_argument("act: state dim mismatch");
  const nn::Matrix s = nn::Matrix::from_rows({state});
  const PolicyOutput out = forward(s);
  std::vector<double> probs(cfg_.action_count);
  for (std::size_t a = 0; a < cfg_.action_count; ++a) probs[a] = out.probs(0, a);
  Sample sample;
  sample.action = rng.categorical(probs);
  sample.log_prob = std::log(std::max(probs[sample.action], 1e-12));
  sample.value = out.values(0, 0);
  return sample;
}

std::size_t ActorCritic::act_greedy(const std::vector<double>& state) {
  if (state.size() != cfg_.state_dim) {
    throw std::invalid_argument("act_greedy: state dim mismatch");
  }
  const nn::Matrix s = nn::Matrix::from_rows({state});
  const PolicyOutput out = forward(s);
  std::size_t best = 0;
  for (std::size_t a = 1; a < cfg_.action_count; ++a) {
    if (out.probs(0, a) > out.probs(0, best)) best = a;
  }
  return best;
}

}  // namespace ecthub::rl
