#include "rl/vec_collector.hpp"

#include "common/crew.hpp"
#include "common/rng.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

namespace ecthub::rl {

VecRolloutCollector::VecRolloutCollector(std::vector<Env*> envs, VecCollectorConfig cfg)
    : envs_(std::move(envs)), cfg_(cfg) {
  if (envs_.empty()) throw std::invalid_argument("VecRolloutCollector: no envs");
  for (Env* env : envs_) {
    if (env == nullptr) throw std::invalid_argument("VecRolloutCollector: null env");
    if (env->state_dim() != envs_.front()->state_dim() ||
        env->action_count() != envs_.front()->action_count()) {
      throw std::invalid_argument("VecRolloutCollector: lanes disagree on dimensions");
    }
  }
  std::vector<const Env*> sorted(envs_.begin(), envs_.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("VecRolloutCollector: duplicate env lane");
  }

  crew_size_ = cfg_.threads;
  if (crew_size_ == 0) {
    crew_size_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  crew_size_ = std::min(crew_size_, envs_.size());

  const std::size_t n = envs_.size();
  rngs_.reserve(n);
  for (std::size_t l = 0; l < n; ++l) rngs_.emplace_back(ecthub::mix_seed(cfg_.seed, l));
  buffers_.resize(n);
  lane_reward_.assign(n, 0.0);
  lane_episodes_.assign(n, 0);
}

VecRolloutCollector::~VecRolloutCollector() = default;

void VecRolloutCollector::clear() {
  for (RolloutBuffer& b : buffers_) b.clear();
}

VecRolloutCollector::Stats VecRolloutCollector::finish_stats() const {
  // Lane-order summation: the totals are as deterministic as the buffers.
  Stats stats;
  for (std::size_t l = 0; l < envs_.size(); ++l) {
    stats.total_reward += lane_reward_[l];
    stats.episodes += lane_episodes_[l];
  }
  return stats;
}

VecRolloutCollector::Stats VecRolloutCollector::collect(const ActorCritic& ac,
                                                        std::size_t episodes_per_lane) {
  const std::size_t n = envs_.size();
  const std::size_t dim = envs_.front()->state_dim();
  if (ac.config().state_dim != dim ||
      ac.config().action_count != envs_.front()->action_count()) {
    throw std::invalid_argument("VecRolloutCollector::collect: actor/env dim mismatch");
  }
  if (episodes_per_lane == 0) {
    throw std::invalid_argument("VecRolloutCollector::collect: episodes_per_lane == 0");
  }

  std::size_t transitions_before = 0;
  for (const RolloutBuffer& b : buffers_) transitions_before += b.size();

  obs_.resize_zeroed(n, dim);
  samples_.assign(n, ActorCritic::Sample{});
  active_.assign(n, 0);
  needs_reset_.assign(n, 1);
  remaining_.assign(n, episodes_per_lane);
  lane_reward_.assign(n, 0.0);
  lane_episodes_.assign(n, 0);
  workspaces_.resize(crew_size_);
  if (crew_size_ > 1 && !crew_) crew_ = std::make_unique<BarrierCrew>(crew_size_);

  const auto row_span = [&](std::size_t lane) {
    return std::span<double>(obs_.data().data() + lane * dim, dim);
  };
  const std::span<nn::Rng> rngs(rngs_.data(), n);
  const std::span<ActorCritic::Sample> samples(samples_.data(), n);
  const std::span<const std::uint8_t> active(active_.data(), n);

  // One fused phase per fleet slot: episode turnover, the member's row-block
  // stochastic forward, then step + record.  Every lane is touched by
  // exactly one member, so no phase-internal synchronization is needed.
  const auto step_partition = [&](std::size_t member) {
    const std::size_t lo = member * n / crew_size_;
    const std::size_t hi = (member + 1) * n / crew_size_;
    for (std::size_t lane = lo; lane < hi; ++lane) {
      if (needs_reset_[lane] != 0) {
        if (remaining_[lane] == 0) {
          active_[lane] = 0;  // drained: keep the stale row, stop sampling
          continue;
        }
        envs_[lane]->reset_into(row_span(lane));
        needs_reset_[lane] = 0;
        active_[lane] = 1;
      }
    }
    ac.act_rows(obs_, lo, hi, rngs, samples, workspaces_[member], active);
    for (std::size_t lane = lo; lane < hi; ++lane) {
      if (active_[lane] == 0) continue;
      const auto row = row_span(lane);
      Transition t;
      t.state.assign(row.begin(), row.end());  // the pre-step observation
      const ActorCritic::Sample& s = samples_[lane];
      const StepOutcome oc = envs_[lane]->step_into(s.action, row);
      t.action = s.action;
      t.log_prob = s.log_prob;
      t.value = s.value;
      t.reward = oc.reward;
      t.done = oc.done;
      t.truncated = oc.done && oc.truncated;
      if (t.truncated) {
        // The env left the terminal observation in the lane row.
        t.bootstrap_value = ac.value_of(row, workspaces_[member]);
      }
      buffers_[lane].add(std::move(t));
      lane_reward_[lane] += oc.reward;
      if (oc.done) {
        ++lane_episodes_[lane];
        --remaining_[lane];
        needs_reset_[lane] = 1;
      }
    }
  };

  for (;;) {
    bool any_work = false;
    for (std::size_t lane = 0; lane < n && !any_work; ++lane) {
      any_work = remaining_[lane] > 0 || needs_reset_[lane] == 0;
    }
    if (!any_work) break;
    if (crew_) {
      crew_->run(step_partition);
    } else {
      step_partition(0);
    }
  }

  Stats stats = finish_stats();
  std::size_t transitions_after = 0;
  for (const RolloutBuffer& b : buffers_) transitions_after += b.size();
  stats.transitions = transitions_after - transitions_before;
  return stats;
}

VecRolloutCollector::Stats VecRolloutCollector::collect_serial(ActorCritic& ac,
                                                               std::size_t episodes_per_lane) {
  const std::size_t n = envs_.size();
  const std::size_t dim = envs_.front()->state_dim();
  if (ac.config().state_dim != dim ||
      ac.config().action_count != envs_.front()->action_count()) {
    throw std::invalid_argument("VecRolloutCollector::collect_serial: actor/env dim mismatch");
  }
  if (episodes_per_lane == 0) {
    throw std::invalid_argument(
        "VecRolloutCollector::collect_serial: episodes_per_lane == 0");
  }

  std::size_t transitions_before = 0;
  for (const RolloutBuffer& b : buffers_) transitions_before += b.size();

  lane_reward_.assign(n, 0.0);
  lane_episodes_.assign(n, 0);
  workspaces_.resize(std::max<std::size_t>(1, workspaces_.size()));

  // Per-lane streams are independent, so running each lane to completion
  // draws exactly the sequence the lockstep interleaving draws — this is
  // the bit-identity reference for collect().
  std::vector<double> state(dim);
  std::vector<double> state_buf(dim);
  for (std::size_t lane = 0; lane < n; ++lane) {
    for (std::size_t e = 0; e < episodes_per_lane; ++e) {
      envs_[lane]->reset_into(std::span<double>(state));
      bool done = false;
      while (!done) {
        const ActorCritic::Sample s = ac.act(state, rngs_[lane]);
        Transition t;
        t.state = state;
        const StepOutcome oc =
            envs_[lane]->step_into(s.action, std::span<double>(state_buf));
        t.action = s.action;
        t.log_prob = s.log_prob;
        t.value = s.value;
        t.reward = oc.reward;
        t.done = oc.done;
        t.truncated = oc.done && oc.truncated;
        if (t.truncated) {
          t.bootstrap_value = ac.value_of(std::span<const double>(state_buf),
                                          workspaces_.front());
        }
        buffers_[lane].add(std::move(t));
        lane_reward_[lane] += oc.reward;
        done = oc.done;
        if (oc.done) {
          ++lane_episodes_[lane];
        } else {
          std::swap(state, state_buf);
        }
      }
    }
  }

  Stats stats = finish_stats();
  std::size_t transitions_after = 0;
  for (const RolloutBuffer& b : buffers_) transitions_after += b.size();
  stats.transitions = transitions_after - transitions_before;
  return stats;
}

}  // namespace ecthub::rl
