// Actor-critic network (paper Fig. 10).
//
// The concatenated state passes through a shared fully connected trunk; the
// actor head emits softmax action probabilities (3 BP actions) and the critic
// head emits the state value V(s).
//
// Two forward paths coexist:
//  * forward()/backward() — the training pass.  forward() caches the softmax
//    batch that backward() differentiates through; backward() validates the
//    incoming gradient shapes against that cache, so an interleaved stray
//    forward can no longer silently pair gradients with the wrong batch.
//  * act_rows()/value_of()/act()/act_greedy() — const inference over caller
//    (or member) scratch.  They never touch the training cache, so sampling
//    actions between forward() and backward() is safe, and disjoint row
//    blocks of one observation matrix may run on concurrent threads with
//    distinct workspaces (the vectorized rollout collector's hot path).
#pragma once

#include "nn/layers.hpp"
#include "nn/mlp.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ecthub::rl {

struct ActorCriticConfig {
  std::size_t state_dim = 0;
  std::size_t action_count = 3;
  std::size_t trunk_dim = 64;   ///< shared fully connected layer width
  std::size_t head_dim = 32;    ///< hidden width of each head
};

/// Output of one forward pass over a batch of states.
struct PolicyOutput {
  nn::Matrix probs;   ///< (batch x actions) softmax probabilities
  nn::Matrix values;  ///< (batch x 1) V(s)
};

class ActorCritic {
 public:
  ActorCritic(ActorCriticConfig cfg, nn::Rng& rng);

  PolicyOutput forward(const nn::Matrix& states);

  /// Backward pass given gradients w.r.t. action probabilities and values;
  /// accumulates parameter gradients.  Throws std::invalid_argument when the
  /// gradient shapes do not match the batch cached by the last forward().
  void backward(const nn::Matrix& dprobs, const nn::Matrix& dvalues);

  void zero_grad();
  [[nodiscard]] std::vector<nn::Parameter> parameters();
  /// Read-only parameter views — what a const checkpoint export serializes.
  [[nodiscard]] std::vector<nn::ConstParameter> parameters() const;

  /// Per-call scratch of the const inference path.  Resized on first use and
  /// reused after (allocation-free once warm); one per thread when row
  /// blocks of a shared network run concurrently.
  struct RowsWorkspace {
    nn::Matrix trunk;                        ///< row-block trunk activations
    std::vector<nn::Matrix> actor_scratch;   ///< Mlp::forward_rows buffers
    std::vector<nn::Matrix> critic_scratch;
    std::vector<double> probs;               ///< one row's softmax
    nn::Matrix single;                       ///< 1-row staging (act/value_of)
  };

  /// Samples an action from the policy at a single state; also returns the
  /// action's log-probability and the value estimate.
  struct Sample {
    std::size_t action = 0;
    double log_prob = 0.0;
    double value = 0.0;
  };
  Sample act(const std::vector<double>& state, nn::Rng& rng);

  /// Batched stochastic forward over rows [row_begin, row_end) of `states`:
  /// one trunk/head GEMM for the block, then per-row softmax + categorical
  /// sampling.  Row r draws from rngs[r] and writes out[r] (both spans are
  /// indexed by absolute row, sized states.rows()), so per-lane RNG streams
  /// replay exactly as under per-row act() — the results are bit-identical
  /// to calling act() on each row, at any block split.  A non-empty `active`
  /// mask (size states.rows()) skips sampling/output for rows flagged 0
  /// (finished lanes keep a stale row without consuming their stream).
  void act_rows(const nn::Matrix& states, std::size_t row_begin, std::size_t row_end,
                std::span<nn::Rng> rngs, std::span<Sample> out, RowsWorkspace& ws,
                std::span<const std::uint8_t> active = {}) const;

  /// Critic value of a single state (no sampling) — bootstraps truncated
  /// episode tails.
  [[nodiscard]] double value_of(std::span<const double> state, RowsWorkspace& ws) const;

  /// Greedy (argmax-probability) action for deployment.
  std::size_t act_greedy(const std::vector<double>& state);

  [[nodiscard]] const ActorCriticConfig& config() const noexcept { return cfg_; }

 private:
  /// Trunk + both heads over rows [row_begin, row_end); returns (logits,
  /// values) references into `ws`.  Const and cache-free.
  struct RowsOutput {
    const nn::Matrix* logits = nullptr;
    const nn::Matrix* values = nullptr;
  };
  RowsOutput forward_rows(const nn::Matrix& states, std::size_t row_begin,
                          std::size_t row_end, RowsWorkspace& ws) const;

  ActorCriticConfig cfg_;
  nn::Dense trunk_;
  nn::ActivationLayer trunk_act_;
  nn::Mlp actor_;   ///< -> logits
  nn::Mlp critic_;  ///< -> scalar value
  nn::Matrix cached_probs_;  ///< softmax of the last forward (for backward)
  RowsWorkspace act_ws_;     ///< scratch of the single-state act paths
};

}  // namespace ecthub::rl
