// Actor-critic network (paper Fig. 10).
//
// The concatenated state passes through a shared fully connected trunk; the
// actor head emits softmax action probabilities (3 BP actions) and the critic
// head emits the state value V(s).
#pragma once

#include "nn/layers.hpp"
#include "nn/mlp.hpp"

#include <cstddef>
#include <vector>

namespace ecthub::rl {

struct ActorCriticConfig {
  std::size_t state_dim = 0;
  std::size_t action_count = 3;
  std::size_t trunk_dim = 64;   ///< shared fully connected layer width
  std::size_t head_dim = 32;    ///< hidden width of each head
};

/// Output of one forward pass over a batch of states.
struct PolicyOutput {
  nn::Matrix probs;   ///< (batch x actions) softmax probabilities
  nn::Matrix values;  ///< (batch x 1) V(s)
};

class ActorCritic {
 public:
  ActorCritic(ActorCriticConfig cfg, nn::Rng& rng);

  PolicyOutput forward(const nn::Matrix& states);

  /// Backward pass given gradients w.r.t. action probabilities and values;
  /// accumulates parameter gradients.
  void backward(const nn::Matrix& dprobs, const nn::Matrix& dvalues);

  void zero_grad();
  [[nodiscard]] std::vector<nn::Parameter> parameters();

  /// Samples an action from the policy at a single state; also returns the
  /// action's log-probability and the value estimate.
  struct Sample {
    std::size_t action = 0;
    double log_prob = 0.0;
    double value = 0.0;
  };
  Sample act(const std::vector<double>& state, nn::Rng& rng);

  /// Greedy (argmax-probability) action for deployment.
  std::size_t act_greedy(const std::vector<double>& state);

  [[nodiscard]] const ActorCriticConfig& config() const noexcept { return cfg_; }

 private:
  ActorCriticConfig cfg_;
  nn::Dense trunk_;
  nn::ActivationLayer trunk_act_;
  nn::Mlp actor_;   ///< -> logits
  nn::Mlp critic_;  ///< -> scalar value
  nn::Matrix cached_probs_;  ///< softmax of the last forward (for backward)
};

}  // namespace ecthub::rl
