// Abstract episodic environment with a discrete action space.
//
// The ECT-Hub environment (src/core/hub_env.hpp) implements this interface;
// keeping it abstract lets the PPO trainer be unit-tested on toy MDPs.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::rl {

struct StepResult {
  std::vector<double> next_state;
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Resets the episode and returns the initial state.
  virtual std::vector<double> reset() = 0;

  /// Applies a discrete action in [0, action_count).
  virtual StepResult step(std::size_t action) = 0;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  [[nodiscard]] virtual std::size_t action_count() const = 0;
};

}  // namespace ecthub::rl
