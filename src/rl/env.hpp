// Abstract episodic environment with a discrete action space.
//
// The ECT-Hub environment (src/core/hub_env.hpp) implements this interface;
// keeping it abstract lets the PPO trainer be unit-tested on toy MDPs.
//
// Termination vs truncation.  `done` ends the episode either way; `truncated`
// distinguishes a time-limit cut (the paper's infinite-horizon MDP stopped at
// the training horizon — the tail still has value, so GAE bootstraps V(s_T))
// from a true terminal state (no future value, bootstrap zero).  EctHubEnv
// episodes end only at the fixed horizon, so it always truncates; toy MDPs
// with real terminals leave the flag false.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ecthub::rl {

struct StepResult {
  std::vector<double> next_state;
  double reward = 0.0;
  bool done = false;
  bool truncated = false;  ///< done by time limit, not a terminal state
};

/// Reward / termination of one allocation-free step (Env::step_into).
struct StepOutcome {
  double reward = 0.0;
  bool done = false;
  bool truncated = false;  ///< done by time limit, not a terminal state
};

class Env {
 public:
  virtual ~Env() = default;

  /// Resets the episode and returns the initial state.
  virtual std::vector<double> reset() = 0;

  /// Applies a discrete action in [0, action_count).
  virtual StepResult step(std::size_t action) = 0;

  // ---- Allocation-free fast path ----------------------------------------
  // The vectorized rollout collector drives lanes through these overloads
  // with one persistent observation row per lane.  The defaults forward to
  // reset()/step() and copy (correct for toy MDPs); EctHubEnv overrides
  // them with its zero-allocation in-place path.

  /// reset() writing the initial state into `state` (size == state_dim()).
  virtual void reset_into(std::span<double> state);

  /// step() writing the next observation into `next_state`.  On done the
  /// buffer holds the final observation (what V(s_T) is evaluated on when
  /// the episode was truncated).
  virtual StepOutcome step_into(std::size_t action, std::span<double> next_state);

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  [[nodiscard]] virtual std::size_t action_count() const = 0;
};

}  // namespace ecthub::rl
