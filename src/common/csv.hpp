// CSV export helper: benches optionally dump their series for plotting.
#pragma once

#include <string>
#include <vector>

namespace ecthub {

/// Writes named columns of equal length to `path` as CSV.
/// Throws std::runtime_error on I/O failure or ragged columns.
void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& columns);

}  // namespace ecthub
