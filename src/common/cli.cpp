#include "common/cli.hpp"

#include <stdexcept>

namespace ecthub {

namespace {
bool looks_like_flag(const std::string& s) { return s.rfind("--", 0) == 0 && s.size() > 2; }
}  // namespace

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (boolean switch).
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  consumed_.insert(name);
  return values_.count(name) > 0;
}

std::string CliFlags::get_string(const std::string& name, std::string def) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(def) : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t def) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::size_t parsed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + it->second +
                                "'");
  }
  // std::stoll("4abc") stops at the first non-digit and yields 4; the whole
  // value must be the number, so a mistyped flag value cannot half-parse.
  if (parsed != it->second.size()) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + it->second +
                                "' (trailing garbage)");
  }
  return value;
}

double CliFlags::get_double(const std::string& name, double def) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::size_t parsed = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + it->second + "'");
  }
  if (parsed != it->second.size()) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + it->second +
                                "' (trailing garbage)");
  }
  return value;
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  consumed_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + v + "'");
}

void CliFlags::check_unknown() const {
  std::string unknown;
  for (const auto& [name, value] : values_) {
    if (consumed_.count(name) > 0) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "--" + name;
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unrecognized flag(s): " + unknown +
                                " (run with no flags to use defaults; see the binary's "
                                "header comment for the flags it reads)");
  }
  // Stray positionals are the same bug class: `stations=2500` (missing the
  // leading --) must not silently run defaults.  Binaries that take
  // positionals read positional() before this call, which waives the check.
  if (!positional_read_ && !positional_.empty()) {
    std::string stray;
    for (const std::string& p : positional_) {
      if (!stray.empty()) stray += ", ";
      stray += "'" + p + "'";
    }
    throw std::invalid_argument("unexpected positional argument(s): " + stray +
                                " (flags are --name value; did you drop the --?)");
  }
}

}  // namespace ecthub
