#include "common/cli.hpp"

#include <stdexcept>

namespace ecthub {

namespace {
bool looks_like_flag(const std::string& s) { return s.rfind("--", 0) == 0 && s.size() > 2; }
}  // namespace

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (boolean switch).
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliFlags::get_string(const std::string& name, std::string def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(def) : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + it->second +
                                "'");
  }
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + it->second + "'");
  }
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + v + "'");
}

}  // namespace ecthub
