#include "common/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ecthub {

std::uint64_t mix_seed(std::uint64_t base_seed, std::uint64_t stream) noexcept {
  // splitmix64 finalizer over a golden-ratio stride; (stream + 1) keeps
  // stream 0 from collapsing onto the raw base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  std::poisson_distribution<std::uint64_t> d(mean);
  return d(engine_);
}

double Rng::weibull(double shape, double scale) {
  std::weibull_distribution<double> d(shape, scale);
  return d(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

Rng Rng::fork() {
  // Derive a child seed from the parent stream; advances the parent state so
  // successive forks are independent.
  return Rng(engine_());
}

void Rng::shuffle(std::vector<std::size_t>& idx) {
  std::shuffle(idx.begin(), idx.end(), engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("Rng::categorical: weights must sum > 0");
  double u = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ecthub
