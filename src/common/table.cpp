#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ecthub {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: header must be non-empty");
}

TextTable& TextTable::begin_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  if (rows_.empty()) throw std::logic_error("TextTable: add before begin_row");
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("TextTable: too many cells in row");
  }
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

TextTable& TextTable::add_int(long long v) { return add(std::to_string(v)); }

std::string TextTable::str() const {
  for (const auto& r : rows_) {
    if (r.size() != header_.size()) throw std::logic_error("TextTable: incomplete row");
  }
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << r[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace ecthub
