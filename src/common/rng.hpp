// Deterministic random-number utilities.
//
// Every stochastic component in the system draws from an Rng seeded from the
// experiment configuration, so that all tables and figures are reproducible
// bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ecthub {

/// Deterministic stream seed: a splitmix64 finalizer over (base, stream).
/// Distinct stream ids map to well-separated seeds even for adjacent bases —
/// the per-hub seeding primitive of the fleet engine (sim::mix_seed forwards
/// here) and of every metro front stream derived in core.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base_seed,
                                     std::uint64_t stream) noexcept;

/// Thin wrapper over std::mt19937_64 with the distributions used across the
/// codebase.  Copyable (copies carry the full engine state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw.
  bool bernoulli(double p);

  /// Poisson draw with the given mean (mean <= 0 yields 0).
  std::uint64_t poisson(double mean);

  /// Weibull draw with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Exponential draw with the given rate (rate > 0).
  double exponential(double rate);

  /// A fresh Rng whose seed is derived from this one; used to give each
  /// sub-component an independent, reproducible stream.
  Rng fork();

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& idx);

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ecthub
