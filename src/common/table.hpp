// Aligned text-table printer used by the bench harnesses to emit the paper's
// tables and figure series in a readable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ecthub {

/// A simple column-aligned table.  Cells are strings; numeric helpers format
/// with fixed precision.  Rendering pads every column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  TextTable& begin_row();
  TextTable& add(std::string cell);
  TextTable& add_double(double v, int precision = 2);
  TextTable& add_int(long long v);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header_.size(); }

  /// Renders with a header rule; throws if any row has the wrong arity.
  [[nodiscard]] std::string str() const;
  void print(std::ostream& os) const;

  /// Comma-separated rendering (no alignment padding) for CSV export.
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecthub
