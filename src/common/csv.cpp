#include "common/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace ecthub {

void write_csv(const std::string& path, const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size()) {
    throw std::runtime_error("write_csv: names/columns size mismatch");
  }
  if (columns.empty()) throw std::runtime_error("write_csv: no columns");
  const std::size_t n = columns.front().size();
  for (const auto& c : columns) {
    if (c.size() != n) throw std::runtime_error("write_csv: ragged columns");
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  for (std::size_t c = 0; c < names.size(); ++c) {
    if (c) out << ',';
    out << names[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ',';
      out << columns[c][r];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

}  // namespace ecthub
