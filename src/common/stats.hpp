// Small statistics helpers used by generators, evaluators and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::stats {

/// Arithmetic mean; 0 for an empty vector.
double mean(const std::vector<double>& v);

/// Population variance; 0 for fewer than 2 elements.
double variance(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// Pearson correlation coefficient; 0 if either side is constant or empty.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Linearly-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> v, double p);

/// Allocation-free variant for hot paths: copies `v` into `scratch` (whose
/// capacity is reused across calls) before the in-place sort.
double percentile(const std::vector<double>& v, double p, std::vector<double>& scratch);

double min(const std::vector<double>& v);
double max(const std::vector<double>& v);
double sum(const std::vector<double>& v);

/// Centered moving average over a window of exactly `w` elements in the
/// interior: out[i] averages v[i - (w-1)/2 .. i + w/2], so odd widths are
/// symmetric and even widths take the extra element on the newer (higher-
/// index) side.  Near the edges the window clamps to the available range
/// (fewer than `w` elements).  (Pre-fix, an even `w` silently widened to the
/// next odd width: w=4 averaged 5 elements.)
std::vector<double> moving_average(const std::vector<double>& v, std::size_t w);

/// Histogram over [lo, hi) with `bins` equal-width buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(const std::vector<double>& v, double lo, double hi,
                                   std::size_t bins);

/// Lag-k autocorrelation; 0 when undefined.
double autocorrelation(const std::vector<double>& v, std::size_t lag);

}  // namespace ecthub::stats
