#include "common/exact_sum.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace ecthub {

namespace {

constexpr std::uint64_t kFracMask = (std::uint64_t{1} << 52) - 1;
constexpr std::uint64_t kImplicitBit = std::uint64_t{1} << 52;

}  // namespace

void ExactSum::add(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("ExactSum::add: non-finite addend");
  }
  if (v == 0.0) return;  // ±0 contributes nothing to the register
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const bool negative = (bits >> 63) != 0;
  const unsigned biased_exp = static_cast<unsigned>((bits >> 52) & 0x7ffu);
  std::uint64_t mantissa = bits & kFracMask;
  // Subnormal: v = frac * 2^-1074, so the mantissa lands at bit 0.  Normal:
  // v = (2^52 + frac) * 2^(e-1075) = mantissa * 2^(e-1) in 2^-1074 units.
  unsigned shift = 0;
  if (biased_exp != 0) {
    mantissa |= kImplicitBit;
    shift = biased_exp - 1;
  }
  if (negative) {
    sub_magnitude(mantissa, shift);
  } else {
    add_magnitude(mantissa, shift);
  }
}

void ExactSum::add_magnitude(std::uint64_t mantissa, unsigned shift) noexcept {
  const std::size_t base = shift / 64;
  const unsigned bit = shift % 64;
  // The mantissa straddles at most two limbs; after those, only a 0/1 carry
  // ripples.  `carry` never overflows: it is at most (53-bit value) + 1.
  std::uint64_t carry = mantissa << bit;
  std::uint64_t carry_hi = bit == 0 ? 0 : mantissa >> (64 - bit);
  for (std::size_t i = base; i < kLimbs; ++i) {
    const std::uint64_t addend = carry;
    carry = carry_hi;
    carry_hi = 0;
    if (addend == 0 && carry == 0) break;
    const std::uint64_t old = limbs_[i];
    limbs_[i] = old + addend;
    if (limbs_[i] < old) carry += 1;
  }
}

void ExactSum::sub_magnitude(std::uint64_t mantissa, unsigned shift) noexcept {
  const std::size_t base = shift / 64;
  const unsigned bit = shift % 64;
  std::uint64_t borrow = mantissa << bit;
  std::uint64_t borrow_hi = bit == 0 ? 0 : mantissa >> (64 - bit);
  for (std::size_t i = base; i < kLimbs; ++i) {
    const std::uint64_t sub = borrow;
    borrow = borrow_hi;
    borrow_hi = 0;
    if (sub == 0 && borrow == 0) break;
    const std::uint64_t old = limbs_[i];
    limbs_[i] = old - sub;
    if (old < sub) borrow += 1;
  }
  // A borrow running off the top limb is the intended two's-complement wrap:
  // transiently negative sums stay exact and cancel back on later adds.
}

void ExactSum::add(const ExactSum& other) noexcept {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const std::uint64_t a = limbs_[i];
    const std::uint64_t ab = a + other.limbs_[i];
    const std::uint64_t c1 = ab < a ? 1u : 0u;
    limbs_[i] = ab + carry;
    const std::uint64_t c2 = limbs_[i] < ab ? 1u : 0u;
    carry = c1 | c2;  // at most one of the two sub-adds can wrap
  }
}

double ExactSum::value() const noexcept {
  const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
  Limbs mag = limbs_;
  if (negative) {  // two's-complement negation: invert + 1
    std::uint64_t carry = 1;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      mag[i] = ~mag[i] + carry;
      carry = (carry != 0 && mag[i] == 0) ? 1u : 0u;
    }
  }
  int top = -1;  // index of the highest set magnitude bit
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (mag[i] != 0) {
      top = static_cast<int>(i) * 64 + (63 - std::countl_zero(mag[i]));
      break;
    }
  }
  if (top < 0) return 0.0;
  if (top <= 52) {
    // The whole magnitude fits a 53-bit significand: exact, no rounding.
    const double m = static_cast<double>(mag[0]);
    return std::ldexp(negative ? -m : m, -1074);
  }
  // Round to nearest, ties to even: keep bits [top-52, top], inspect the
  // guard bit below them and OR the rest into a sticky bit.
  const auto bit_at = [&mag](int idx) -> std::uint64_t {
    return (mag[static_cast<std::size_t>(idx) / 64] >> (static_cast<unsigned>(idx) % 64)) &
           1u;
  };
  std::uint64_t kept = 0;
  for (int j = 0; j < 53; ++j) kept |= bit_at(top - 52 + j) << j;
  const int guard_idx = top - 53;
  const std::size_t g_limb = static_cast<std::size_t>(guard_idx) / 64;
  const unsigned g_bit = static_cast<unsigned>(guard_idx) % 64;
  bool sticky = false;
  for (std::size_t i = 0; i < g_limb && !sticky; ++i) sticky = mag[i] != 0;
  if (!sticky && g_bit != 0) {
    sticky = (mag[g_limb] & ((std::uint64_t{1} << g_bit) - 1)) != 0;
  }
  int exp = top - 52 - 1074;
  if (bit_at(guard_idx) != 0 && (sticky || (kept & 1u) != 0)) {
    ++kept;
    if (kept == (std::uint64_t{1} << 53)) {  // rounded up to the next binade
      kept >>= 1;
      ++exp;
    }
  }
  const double m = static_cast<double>(kept);
  return std::ldexp(negative ? -m : m, exp);  // overflows to ±inf past the range
}

}  // namespace ecthub
