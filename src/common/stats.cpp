#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecthub::stats {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

double sorted_percentile(const std::vector<double>& v, double p) {
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void check_percentile_args(const std::vector<double>& v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty vector");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
}

}  // namespace

double percentile(std::vector<double> v, double p) {
  check_percentile_args(v, p);
  std::sort(v.begin(), v.end());
  return sorted_percentile(v, p);
}

double percentile(const std::vector<double>& v, double p, std::vector<double>& scratch) {
  check_percentile_args(v, p);
  scratch.assign(v.begin(), v.end());
  std::sort(scratch.begin(), scratch.end());
  return sorted_percentile(scratch, p);
}

double min(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min: empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max: empty vector");
  return *std::max_element(v.begin(), v.end());
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

std::vector<double> moving_average(const std::vector<double>& v, std::size_t w) {
  if (w == 0) throw std::invalid_argument("moving_average: window must be >= 1");
  std::vector<double> out(v.size(), 0.0);
  // Exactly w interior elements: (w-1)/2 older plus w/2 newer neighbours —
  // the symmetric [i-half, i+half] for odd w, one extra on the newer side
  // for even w ([i-half, i+half] with half = w/2 was 2*(w/2)+1 wide, so an
  // even request never got its own width).
  const auto half_older = static_cast<std::ptrdiff_t>((w - 1) / 2);
  const auto half_newer = static_cast<std::ptrdiff_t>(w / 2);
  const auto n = static_cast<std::ptrdiff_t>(v.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half_older);
    const std::ptrdiff_t hi = std::min(n - 1, i + half_newer);
    double acc = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) acc += v[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<std::size_t> histogram(const std::vector<double>& v, double lo, double hi,
                                   std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram: bins must be >= 1");
  if (hi <= lo) throw std::invalid_argument("histogram: hi must be > lo");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : v) {
    auto b = static_cast<std::ptrdiff_t>((x - lo) / width);
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(b)];
  }
  return counts;
}

double autocorrelation(const std::vector<double>& v, std::size_t lag) {
  if (v.size() <= lag + 1) return 0.0;
  const double m = mean(v);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    den += (v[i] - m) * (v[i] - m);
    if (i + lag < v.size()) num += (v[i] - m) * (v[i + lag] - m);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

}  // namespace ecthub::stats
