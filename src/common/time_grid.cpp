#include "common/time_grid.hpp"

#include <string>

namespace ecthub {

TimeGrid::TimeGrid(std::size_t num_days, std::size_t slots_per_day)
    : num_days_(num_days), slots_per_day_(slots_per_day) {
  if (num_days == 0) throw std::invalid_argument("TimeGrid: num_days must be >= 1");
  if (slots_per_day == 0) throw std::invalid_argument("TimeGrid: slots_per_day must be >= 1");
}

void TimeGrid::check_slot(std::size_t t) const {
  if (t >= size()) {
    throw std::out_of_range("TimeGrid: slot " + std::to_string(t) + " out of range [0, " +
                            std::to_string(size()) + ")");
  }
}

std::size_t TimeGrid::day_of(std::size_t t) const {
  check_slot(t);
  return t / slots_per_day_;
}

std::size_t TimeGrid::slot_of_day(std::size_t t) const {
  check_slot(t);
  return t % slots_per_day_;
}

double TimeGrid::hour_of_day(std::size_t t) const {
  return static_cast<double>(slot_of_day(t)) * slot_hours();
}

double TimeGrid::hours_from_start(std::size_t t) const {
  check_slot(t);
  return static_cast<double>(t) * slot_hours();
}

std::size_t TimeGrid::day_of_week(std::size_t t) const { return day_of(t) % 7; }

bool TimeGrid::is_weekend(std::size_t t) const {
  const std::size_t dow = day_of_week(t);
  return dow == 5 || dow == 6;
}

std::size_t TimeGrid::day_start(std::size_t d) const {
  if (d >= num_days_) throw std::out_of_range("TimeGrid: day out of range");
  return d * slots_per_day_;
}

}  // namespace ecthub
