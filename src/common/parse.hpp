// Shared case-insensitive enum parsing.
//
// Every user-facing enum (scheduler kinds, GEMM placements, ...) exposes a
// from_string parser with the same contract: lower-case the input, match it
// against the canonical to_string name of each value, and on failure throw
// std::invalid_argument naming the offending input and every valid name.
// This header is that contract, written once.
#pragma once

#include <cctype>
#include <stdexcept>
#include <string>

namespace ecthub {

/// ASCII lower-casing (locale-independent — enum names are plain ASCII).
[[nodiscard]] inline std::string ascii_lower(const std::string& s) {
  std::string out(s.size(), '\0');
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
  }
  return out;
}

/// Matches `name` (case-insensitively) against to_name(v) for each v in
/// `values` and returns the first hit.  Throws std::invalid_argument as
/// "<context> '<name>' (valid, case-insensitive: a|b|c)" otherwise — the
/// error always lists every valid name.
template <typename Range, typename ToName>
[[nodiscard]] auto parse_enum_ci(const std::string& name, const Range& values,
                                 ToName to_name, const std::string& context) {
  const std::string key = ascii_lower(name);
  std::string valid;
  for (const auto value : values) {
    if (key == to_name(value)) return value;
    if (!valid.empty()) valid += '|';
    valid += to_name(value);
  }
  throw std::invalid_argument(context + " '" + name +
                              "' (valid, case-insensitive: " + valid + ")");
}

}  // namespace ecthub
