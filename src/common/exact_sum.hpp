// ExactSum: an exactly associative accumulator for IEEE-754 doubles.
//
// Plain `double +=` is not associative — ((a+b)+c)+d and (a+b)+(c+d) can
// differ in the last ulp — so a sharded sweep that folds per-shard partial
// sums could never be bit-identical to the single-process left fold.
// ExactSum removes the problem at the root: it accumulates addends into a
// 2176-bit two's-complement fixed-point register (34 × 64-bit limbs, units
// of 2^-1074, the smallest subnormal), in which every finite double is
// representable exactly.  Integer addition is associative and commutative,
// so any grouping or ordering of add()/merge() calls yields the same limb
// state bit for bit; value() rounds that exact sum to the nearest double
// (ties to even) once, at read time.
//
// Capacity: the largest finite double occupies bit 2097 (2^1023 ≤ x <
// 2^1024 above the 2^-1074 origin), leaving 77 headroom bits below the
// sign bit — ~1.5e23 worst-case addends before the register can wrap, far
// beyond any fleet sweep.
//
// The limb state is the serialization format of the sharded-sweep report
// (sim/shard_io): shard files carry exact sums, so merging shards read
// from disk is as exact as merging in memory.
#pragma once

#include <array>
#include <cstdint>

namespace ecthub {

class ExactSum {
 public:
  /// 34 × 64 = 2176 bits: full double range (2098 bits) + 77-bit headroom
  /// + sign.
  static constexpr std::size_t kLimbs = 34;
  using Limbs = std::array<std::uint64_t, kLimbs>;

  constexpr ExactSum() = default;

  /// Folds one addend into the register, exactly.  Throws
  /// std::invalid_argument on NaN or infinity — a non-finite addend has no
  /// fixed-point representation and would silently poison the sum.
  void add(double v);

  /// Folds another register in (limb-wise two's-complement addition) —
  /// exactly equivalent to having applied all of `other`'s add() calls
  /// here, in any order.
  void add(const ExactSum& other) noexcept;

  ExactSum& operator+=(double v) {
    add(v);
    return *this;
  }
  ExactSum& operator+=(const ExactSum& other) noexcept {
    add(other);
    return *this;
  }

  /// The exact sum rounded to the nearest double, ties to even — the same
  /// rounding the hardware applies to a single arithmetic result.  ±0 sums
  /// report +0.0; magnitudes beyond the double range report ±infinity.
  [[nodiscard]] double value() const noexcept;

  /// Raw register state, little-endian limb order (serialization surface).
  [[nodiscard]] const Limbs& limbs() const noexcept { return limbs_; }

  /// Rebuilds an accumulator from serialized limb state.
  [[nodiscard]] static ExactSum from_limbs(const Limbs& limbs) noexcept {
    ExactSum s;
    s.limbs_ = limbs;
    return s;
  }

  friend bool operator==(const ExactSum&, const ExactSum&) = default;

 private:
  void add_magnitude(std::uint64_t mantissa, unsigned shift) noexcept;
  void sub_magnitude(std::uint64_t mantissa, unsigned shift) noexcept;

  Limbs limbs_{};  // two's complement, limbs_[0] holds bit 0 (2^-1074)
};

}  // namespace ecthub
