// Discrete time grid shared by every simulator in the ECT-Hub system.
//
// The paper (Sec. III) models operation over time slots t1..tT.  All our
// generators (traffic, weather, prices, EV arrivals) and the hub environment
// agree on one TimeGrid so that slot indices can be exchanged between modules
// without unit confusion.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace ecthub {

/// A uniform grid of time slots covering `num_days` days.
///
/// Slots are indexed 0..size()-1.  The grid knows its resolution
/// (slots per day) and converts between slot index, day index, hour of day
/// and hour offset from the start of the horizon.
class TimeGrid {
 public:
  /// @param num_days       length of the horizon in days (>= 1)
  /// @param slots_per_day  resolution; 24 means hourly slots (>= 1)
  TimeGrid(std::size_t num_days, std::size_t slots_per_day);

  /// Total number of slots on the grid.
  [[nodiscard]] std::size_t size() const noexcept { return num_days_ * slots_per_day_; }
  [[nodiscard]] std::size_t num_days() const noexcept { return num_days_; }
  [[nodiscard]] std::size_t slots_per_day() const noexcept { return slots_per_day_; }

  /// Duration of one slot in hours (e.g. 1.0 for hourly slots).
  [[nodiscard]] double slot_hours() const noexcept {
    return 24.0 / static_cast<double>(slots_per_day_);
  }

  /// Day index (0-based) containing slot `t`.
  [[nodiscard]] std::size_t day_of(std::size_t t) const;

  /// Slot index within its day, in [0, slots_per_day).
  [[nodiscard]] std::size_t slot_of_day(std::size_t t) const;

  /// Hour of day at the *start* of slot `t`, in [0, 24).
  [[nodiscard]] double hour_of_day(std::size_t t) const;

  /// Hours elapsed from the start of the horizon to the start of slot `t`.
  [[nodiscard]] double hours_from_start(std::size_t t) const;

  /// Day of week in [0, 7), assuming the horizon starts on day-of-week 0.
  [[nodiscard]] std::size_t day_of_week(std::size_t t) const;

  /// True for day-of-week 5 and 6.
  [[nodiscard]] bool is_weekend(std::size_t t) const;

  /// First slot of day `d`.
  [[nodiscard]] std::size_t day_start(std::size_t d) const;

  friend bool operator==(const TimeGrid& a, const TimeGrid& b) noexcept {
    return a.num_days_ == b.num_days_ && a.slots_per_day_ == b.slots_per_day_;
  }

 private:
  void check_slot(std::size_t t) const;

  std::size_t num_days_;
  std::size_t slots_per_day_;
};

}  // namespace ecthub
