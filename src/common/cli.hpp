// Minimal command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags raise an error so that typos in experiment scripts fail loud.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ecthub {

class CliFlags {
 public:
  /// Parses argv.  Throws std::invalid_argument on malformed input.
  CliFlags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors return the default when the flag is absent.
  [[nodiscard]] std::string get_string(const std::string& name, std::string def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ecthub
