// Minimal command-line flag parser for the bench/example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags raise an error so that typos in experiment scripts fail loud:
// every has()/get_*() call marks its flag as recognized, and check_unknown()
// — called by each binary once all flags have been read — throws listing any
// parsed flag nothing ever asked for (`--lockstep-treads 4` must not silently
// run defaults).  The numeric accessors are strict: the whole value must
// parse, so `--threads 4abc` fails instead of reading 4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ecthub {

class CliFlags {
 public:
  /// Parses argv.  Throws std::invalid_argument on malformed input.
  CliFlags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors return the default when the flag is absent.  get_int and
  /// get_double require the full value to parse — trailing garbage ("4abc")
  /// throws std::invalid_argument instead of truncating.
  [[nodiscard]] std::string get_string(const std::string& name, std::string def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const;

  /// Throws std::invalid_argument listing every parsed --flag that no
  /// has()/get_*() call ever consumed, and any positional arguments when the
  /// binary never read positional() (`stations=2500` without the `--` must
  /// not silently run defaults).  Binaries call this once after their last
  /// flag read, so experiment-script typos fail loud instead of silently
  /// running defaults.
  void check_unknown() const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    positional_read_ = true;
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  /// Flags a has()/get_*() call asked about — the parser's notion of "known".
  mutable std::set<std::string> consumed_;
  mutable bool positional_read_ = false;
};

}  // namespace ecthub
