// Barrier-synchronized worker crew: the reusable phase-parallel primitive
// behind the threaded lockstep fleet runner and the vectorized rollout
// collector.
//
// A crew of N spawns N - 1 worker threads; the coordinator opens a phase
// with run(task), executes the last partition itself between the two
// barriers (so N configured threads cost exactly N busy threads, never
// N + 1), and the call returns once every participant has finished.
// Exceptions are caught inside the phase (so a throwing participant still
// reaches the completion barrier — no deadlock) and the first one recorded
// is rethrown from run() on the coordinator.
#pragma once

#include <barrier>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecthub {

class BarrierCrew {
 public:
  /// A crew of `size` participants (size >= 1): size - 1 worker threads plus
  /// the coordinator, which runs partition index size - 1 inside run().
  explicit BarrierCrew(std::size_t size)
      : workers_(size - 1), sync_(static_cast<std::ptrdiff_t>(size)) {
    threads_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { work(w); });
    }
  }

  ~BarrierCrew() {
    stop_ = true;
    sync_.arrive_and_wait();  // release the crew; workers see stop_ and exit
    for (std::thread& t : threads_) t.join();
  }

  BarrierCrew(const BarrierCrew&) = delete;
  BarrierCrew& operator=(const BarrierCrew&) = delete;

  /// Total participants, including the coordinator.
  [[nodiscard]] std::size_t size() const noexcept { return workers_ + 1; }

  /// Runs task(index) once per participant (index in [0, size())) and
  /// returns when all are done; rethrows the first exception any raised.
  void run(const std::function<void(std::size_t)>& task) {
    task_ = &task;
    sync_.arrive_and_wait();  // open the phase
    invoke(task, workers_);   // the coordinator's own partition
    sync_.arrive_and_wait();  // wait until every worker finished too
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void invoke(const std::function<void(std::size_t)>& task, std::size_t index) {
    try {
      task(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  void work(std::size_t index) {
    for (;;) {
      sync_.arrive_and_wait();
      // stop_ and task_ are written by the coordinator before it arrives at
      // the opening barrier, which sequences them before this read.
      if (stop_) return;
      invoke(*task_, index);
      sync_.arrive_and_wait();
    }
  }

  std::size_t workers_;
  std::barrier<> sync_;
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::exception_ptr error_;
  std::mutex error_mutex_;
  bool stop_ = false;
};

}  // namespace ecthub
