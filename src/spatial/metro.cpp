#include "spatial/metro.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecthub::spatial {

namespace {
// Each generation stage owns an independent mix_seed stream, so adding a
// stage never perturbs the draws of another.
constexpr std::uint64_t kRoadsStream = 0x6d657472'6f726f61ULL;   // "metroroa"
constexpr std::uint64_t kSurveyStream = 0x6d657472'6f737572ULL;  // "metrosur"
constexpr std::uint64_t kSitesStream = 0x6d657472'6f736974ULL;   // "metrosit"
constexpr std::uint64_t kFrontStream = 0x6d657472'6f667274ULL;   // "metrofrt"
}  // namespace

MetroConfig MetroMap::validated(MetroConfig cfg) {
  if (cfg.num_hubs < 2) throw std::invalid_argument("MetroConfig: num_hubs < 2");
  if (cfg.neighbors_per_hub == 0 || cfg.neighbors_per_hub >= cfg.num_hubs) {
    throw std::invalid_argument("MetroConfig: neighbors_per_hub out of [1, num_hubs)");
  }
  if (cfg.survey_stations == 0) {
    throw std::invalid_argument("MetroConfig: survey_stations == 0");
  }
  if (cfg.density_radius_km <= 0.0) {
    throw std::invalid_argument("MetroConfig: density_radius_km <= 0");
  }
  if (cfg.urban_fraction < 0.0 || cfg.urban_fraction > 1.0) {
    throw std::invalid_argument("MetroConfig: urban_fraction out of [0, 1]");
  }
  if (cfg.detour_factor < 1.0) {
    throw std::invalid_argument("MetroConfig: detour_factor < 1");
  }
  return cfg;
}

MetroMap::MetroMap(MetroConfig cfg, std::uint64_t seed)
    : cfg_(validated(std::move(cfg))),
      seed_(seed),
      roads_(cfg_.roads, Rng(mix_seed(seed, kRoadsStream))) {
  // The density field: the Fig. 1 base-station deployment, surveyed once.
  PlacementConfig survey_cfg;
  survey_cfg.num_stations = cfg_.survey_stations;
  survey_cfg.road_biased_fraction = cfg_.road_biased_fraction;
  survey_cfg.road_jitter_km = cfg_.road_jitter_km;
  const BsPlacement survey(survey_cfg, roads_, Rng(mix_seed(seed, kSurveyStream)));

  // Hub sites follow the same road-biased deployment process as the BSs —
  // ECT-Hubs are co-located with base stations.
  PlacementConfig site_cfg;
  site_cfg.num_stations = cfg_.num_hubs;
  site_cfg.road_biased_fraction = cfg_.road_biased_fraction;
  site_cfg.road_jitter_km = cfg_.road_jitter_km;
  const BsPlacement sites(site_cfg, roads_, Rng(mix_seed(seed, kSitesStream)));

  hubs_.resize(cfg_.num_hubs);
  const double r2 = cfg_.density_radius_km * cfg_.density_radius_km;
  std::size_t max_count = 1;
  std::vector<std::size_t> counts(cfg_.num_hubs, 0);
  for (std::size_t i = 0; i < cfg_.num_hubs; ++i) {
    hubs_[i].site = sites.stations()[i];
    for (const Point& bs : survey.stations()) {
      const double dx = bs.x - hubs_[i].site.x, dy = bs.y - hubs_[i].site.y;
      if (dx * dx + dy * dy <= r2) ++counts[i];
    }
    max_count = std::max(max_count, counts[i]);
  }
  for (std::size_t i = 0; i < cfg_.num_hubs; ++i) {
    hubs_[i].density = static_cast<double>(counts[i]) / static_cast<double>(max_count);
  }

  // Urban classification: the densest urban_fraction of sites, ties broken
  // by index so the class assignment is deterministic.
  std::vector<std::size_t> order(cfg_.num_hubs);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (hubs_[a].density != hubs_[b].density) return hubs_[a].density > hubs_[b].density;
    return a < b;
  });
  const auto num_urban = static_cast<std::size_t>(
      std::llround(cfg_.urban_fraction * static_cast<double>(cfg_.num_hubs)));
  for (std::size_t rank = 0; rank < num_urban && rank < order.size(); ++rank) {
    hubs_[order[rank]].urban = true;
  }

  // Road-distance adjacency: reach the road, drive it (euclidean between the
  // snap points scaled by a detour factor), leave the road.
  std::vector<Point> snaps(cfg_.num_hubs);
  std::vector<double> off_road(cfg_.num_hubs);
  for (std::size_t i = 0; i < cfg_.num_hubs; ++i) {
    snaps[i] = roads_.closest_point_on_roads(hubs_[i].site);
    off_road[i] = roads_.distance_to_nearest_road(hubs_[i].site);
  }
  std::vector<std::pair<double, std::size_t>> nearest;
  nearest.reserve(cfg_.num_hubs - 1);
  for (std::size_t i = 0; i < cfg_.num_hubs; ++i) {
    nearest.clear();
    for (std::size_t j = 0; j < cfg_.num_hubs; ++j) {
      if (j == i) continue;
      const double drive = std::hypot(snaps[i].x - snaps[j].x, snaps[i].y - snaps[j].y);
      nearest.emplace_back(off_road[i] + cfg_.detour_factor * drive + off_road[j], j);
    }
    std::sort(nearest.begin(), nearest.end());
    hubs_[i].neighbors.reserve(cfg_.neighbors_per_hub);
    hubs_[i].road_km.reserve(cfg_.neighbors_per_hub);
    for (std::size_t k = 0; k < cfg_.neighbors_per_hub; ++k) {
      hubs_[i].neighbors.push_back(nearest[k].second);
      hubs_[i].road_km.push_back(nearest[k].first);
    }
  }
}

core::HubConfig MetroMap::hub_config(std::size_t i, std::string name,
                                     std::uint64_t seed) const {
  const MetroHub& h = hubs_.at(i);
  core::HubConfig cfg = h.urban ? core::HubConfig::urban(std::move(name), seed)
                                : core::HubConfig::rural(std::move(name), seed);
  apply_site(i, cfg);
  return cfg;
}

void MetroMap::apply_site(std::size_t i, core::HubConfig& hub) const {
  const MetroHub& h = hubs_.at(i);
  hub.station.station_id = i;
  // Dense urban sites install a second plug; sparse rural sites run one.
  hub.station.num_plugs = h.urban ? 2 : 1;
  // Demand intensity follows the density field: more base stations around a
  // site means more people, more network load and more EVs.
  hub.ev_popularity = std::clamp(hub.ev_popularity * (0.7 + 0.5 * h.density), 0.2, 0.95);
  hub.traffic.min_load = std::clamp(hub.traffic.min_load + 0.05 * h.density, 0.0, 0.5);
}

double MetroMap::through_rate(std::size_t i) const {
  const MetroHub& h = hubs_.at(i);
  // Passing EVs per slot at full network load: urban corridors see more
  // through-traffic, and density raises both classes.
  return (h.urban ? 0.9 : 0.4) * (0.4 + 0.8 * h.density);
}

std::uint64_t MetroMap::front_seed() const noexcept {
  return mix_seed(seed_, kFrontStream);
}

double MetroMap::checksum() const {
  double sum = 0.0;
  for (const MetroHub& h : hubs_) {
    sum += h.site.x + 2.0 * h.site.y + 3.0 * h.density + (h.urban ? 5.0 : 0.0);
    for (std::size_t k = 0; k < h.neighbors.size(); ++k) {
      sum += 0.001 * static_cast<double>(h.neighbors[k]) + h.road_km[k];
    }
  }
  return sum;
}

}  // namespace ecthub::spatial
