#include "spatial/placement.hpp"

#include "common/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::spatial {

BsPlacement::BsPlacement(PlacementConfig cfg, const RoadNetwork& roads, Rng rng) : cfg_(cfg) {
  if (cfg_.num_stations == 0) throw std::invalid_argument("PlacementConfig: num_stations == 0");
  if (cfg_.road_biased_fraction < 0.0 || cfg_.road_biased_fraction > 1.0) {
    throw std::invalid_argument("PlacementConfig: road_biased_fraction out of [0, 1]");
  }
  const double region = roads.config().region_km;
  const auto& segments = roads.segments();
  // Length-weighted segment sampling so long highways attract more sites.
  std::vector<double> weights;
  weights.reserve(segments.size());
  for (const auto& s : segments) weights.push_back(s.length());

  stations_.reserve(cfg_.num_stations);
  for (std::size_t i = 0; i < cfg_.num_stations; ++i) {
    if (rng.bernoulli(cfg_.road_biased_fraction) && !segments.empty()) {
      const Segment& s = segments[rng.categorical(weights)];
      const double t = rng.uniform();
      Point p{s.a.x + t * (s.b.x - s.a.x), s.a.y + t * (s.b.y - s.a.y)};
      p.x = std::clamp(p.x + rng.normal(0.0, cfg_.road_jitter_km), 0.0, region);
      p.y = std::clamp(p.y + rng.normal(0.0, cfg_.road_jitter_km), 0.0, region);
      stations_.push_back(p);
    } else {
      stations_.push_back({rng.uniform(0.0, region), rng.uniform(0.0, region)});
    }
  }
}

OverlapStats BsPlacement::overlap_stats(const RoadNetwork& roads,
                                        std::size_t reference_samples, Rng rng) const {
  if (reference_samples == 0) {
    throw std::invalid_argument("overlap_stats: reference_samples == 0");
  }
  OverlapStats st;
  std::vector<double> bs_dist;
  bs_dist.reserve(stations_.size());
  std::size_t within = 0;
  for (const auto& p : stations_) {
    const double d = roads.distance_to_nearest_road(p);
    bs_dist.push_back(d);
    if (d <= 1.0) ++within;
  }
  st.mean_distance_km = stats::mean(bs_dist);
  st.median_distance_km = stats::percentile(bs_dist, 50.0);
  st.within_1km_fraction = static_cast<double>(within) / static_cast<double>(stations_.size());

  const double region = roads.config().region_km;
  std::vector<double> ref_dist;
  ref_dist.reserve(reference_samples);
  std::size_t ref_within = 0;
  for (std::size_t i = 0; i < reference_samples; ++i) {
    const Point p{rng.uniform(0.0, region), rng.uniform(0.0, region)};
    const double d = roads.distance_to_nearest_road(p);
    ref_dist.push_back(d);
    if (d <= 1.0) ++ref_within;
  }
  st.uniform_mean_distance_km = stats::mean(ref_dist);
  st.uniform_within_1km_fraction =
      static_cast<double>(ref_within) / static_cast<double>(reference_samples);
  st.clustering_ratio = st.mean_distance_km > 0.0
                            ? st.uniform_mean_distance_km / st.mean_distance_km
                            : 0.0;
  return st;
}

}  // namespace ecthub::spatial
