#include "spatial/roads.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace ecthub::spatial {

double Segment::length() const {
  return std::hypot(b.x - a.x, b.y - a.y);
}

double distance_to_segment(const Point& p, const Segment& s) {
  const double dx = s.b.x - s.a.x, dy = s.b.y - s.a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq == 0.0) return std::hypot(p.x - s.a.x, p.y - s.a.y);
  double t = ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return std::hypot(p.x - (s.a.x + t * dx), p.y - (s.a.y + t * dy));
}

RoadNetwork::RoadNetwork(RoadNetworkConfig cfg, Rng rng) : cfg_(cfg) {
  if (cfg_.region_km <= 0.0) throw std::invalid_argument("RoadNetworkConfig: region_km <= 0");
  if (cfg_.num_cities < 2) throw std::invalid_argument("RoadNetworkConfig: need >= 2 cities");

  cities_.reserve(cfg_.num_cities);
  for (std::size_t i = 0; i < cfg_.num_cities; ++i) {
    cities_.push_back({rng.uniform(0.1, 0.9) * cfg_.region_km,
                       rng.uniform(0.1, 0.9) * cfg_.region_km});
  }
  // Highways: connect each city to its nearest not-yet-connected peer, then a
  // few extra long links for redundancy — a crude but road-like topology.
  for (std::size_t i = 1; i < cities_.size(); ++i) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < i; ++j) {
      const double d = std::hypot(cities_[i].x - cities_[j].x, cities_[i].y - cities_[j].y);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    segments_.push_back({cities_[i], cities_[best]});
  }
  const std::size_t extra_links = cfg_.num_cities / 2;
  for (std::size_t k = 0; k < extra_links; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cities_.size()) - 1));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cities_.size()) - 1));
    if (i != j) segments_.push_back({cities_[i], cities_[j]});
  }
  // Local roads radiating from each city.
  for (const auto& c : cities_) {
    for (std::size_t k = 0; k < cfg_.local_roads_per_city; ++k) {
      const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double len = rng.uniform(0.4, 1.0) * cfg_.local_road_km;
      Point end{std::clamp(c.x + len * std::cos(angle), 0.0, cfg_.region_km),
                std::clamp(c.y + len * std::sin(angle), 0.0, cfg_.region_km)};
      segments_.push_back({c, end});
    }
  }
}

Point closest_point_on_segment(const Point& p, const Segment& s) {
  const double dx = s.b.x - s.a.x, dy = s.b.y - s.a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq == 0.0) return s.a;
  double t = ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return {s.a.x + t * dx, s.a.y + t * dy};
}

double RoadNetwork::distance_to_nearest_road(const Point& p) const {
  double best = std::numeric_limits<double>::max();
  for (const auto& s : segments_) best = std::min(best, distance_to_segment(p, s));
  return best;
}

Point RoadNetwork::closest_point_on_roads(const Point& p) const {
  double best = std::numeric_limits<double>::max();
  Point snap = p;
  for (const auto& s : segments_) {
    const double d = distance_to_segment(p, s);
    if (d < best) {
      best = d;
      snap = closest_point_on_segment(p, s);
    }
  }
  return snap;
}

double RoadNetwork::total_length() const {
  double total = 0.0;
  for (const auto& s : segments_) total += s.length();
  return total;
}

}  // namespace ecthub::spatial
