// Synthetic road-network generator — substitute for the OpenStreetMap layer
// of the paper's Fig. 1 (main roads + base stations in Texas).
//
// Roads are polylines on a square region: a handful of long inter-city
// highways connecting random city anchors plus local segments around each
// city.  What Fig. 1 uses the map for is a single spatial statistic — base
// stations cluster near roads — so segment-level geometry is all we need.
#pragma once

#include "common/rng.hpp"

#include <vector>

namespace ecthub::spatial {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct Segment {
  Point a, b;

  [[nodiscard]] double length() const;
};

/// Distance from a point to a segment (closest-point projection).
[[nodiscard]] double distance_to_segment(const Point& p, const Segment& s);

/// The closest point on a segment to `p` — the same projection-and-clamp
/// arithmetic distance_to_segment measures, returning the point itself.
[[nodiscard]] Point closest_point_on_segment(const Point& p, const Segment& s);

struct RoadNetworkConfig {
  double region_km = 100.0;      ///< square side length
  std::size_t num_cities = 6;    ///< highway anchors
  std::size_t local_roads_per_city = 8;
  double local_road_km = 6.0;    ///< typical local segment length
};

class RoadNetwork {
 public:
  RoadNetwork(RoadNetworkConfig cfg, Rng rng);

  [[nodiscard]] const std::vector<Segment>& segments() const noexcept { return segments_; }
  [[nodiscard]] const std::vector<Point>& cities() const noexcept { return cities_; }

  /// Distance from `p` to the nearest road segment, km.
  [[nodiscard]] double distance_to_nearest_road(const Point& p) const;

  /// The snap of `p` onto the network: the closest point on any road
  /// segment.  Road-distance estimates (MetroMap adjacency) route through
  /// these snap points.
  [[nodiscard]] Point closest_point_on_roads(const Point& p) const;

  /// Total road length, km.
  [[nodiscard]] double total_length() const;

  [[nodiscard]] const RoadNetworkConfig& config() const noexcept { return cfg_; }

 private:
  RoadNetworkConfig cfg_;
  std::vector<Point> cities_;
  std::vector<Segment> segments_;
};

}  // namespace ecthub::spatial
