// MetroMap: a spatially generated metro of ECT-Hubs.
//
// The paper's hubs sit on a road network (Fig. 1: main roads + base stations
// in Texas); until now the spatial substrate only produced that one overlap
// statistic while every fleet the engine ran was an i.i.d. bag of hubs.
// MetroMap closes the loop: it derives N per-hub `HubConfig`s from
// BsPlacement density on a RoadNetwork — sites in dense base-station country
// become urban, high-traffic hubs; sparse sites become rural — plus a
// road-distance neighbor adjacency that the fleet runner's CouplingBus
// routes exported demand over.
//
// A MetroMap is a pure function of (MetroConfig, seed): every stochastic
// stage draws from its own mix_seed(seed, stage) stream, so the same inputs
// produce the same map bit-for-bit across processes — the same contract the
// ScenarioRegistry factories honour (tests/test_spatial.cpp pins a golden
// checksum).
#pragma once

#include "core/hub_config.hpp"
#include "spatial/placement.hpp"
#include "spatial/roads.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace ecthub::spatial {

struct MetroConfig {
  std::size_t num_hubs = 16;
  /// Road-graph out-degree: each hub exports to its k nearest neighbors by
  /// road distance.
  std::size_t neighbors_per_hub = 3;
  RoadNetworkConfig roads;
  /// Base-station survey used as the density field (the Fig. 1 deployment).
  std::size_t survey_stations = 600;
  double road_biased_fraction = 0.8;
  double road_jitter_km = 1.0;
  /// Survey stations within this radius of a site define its density.
  double density_radius_km = 8.0;
  /// Top fraction of hubs by density classified urban; the rest rural.
  double urban_fraction = 0.5;
  /// Road distance ~ snap + detour_factor * euclidean between snap points.
  double detour_factor = 1.2;
};

/// One generated hub site.
struct MetroHub {
  Point site;
  double density = 0.0;  ///< survey density, normalized to [0, 1] over the metro
  bool urban = false;
  std::vector<std::size_t> neighbors;  ///< k nearest hub ids by road distance
  std::vector<double> road_km;         ///< road distance to each neighbor
};

class MetroMap {
 public:
  /// Generates the metro deterministically from (cfg, seed).
  MetroMap(MetroConfig cfg, std::uint64_t seed);

  [[nodiscard]] const std::vector<MetroHub>& hubs() const noexcept { return hubs_; }
  [[nodiscard]] const RoadNetwork& roads() const noexcept { return roads_; }
  [[nodiscard]] const MetroConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// A full HubConfig for hub `i`: the urban()/rural() preset selected by the
  /// site's density class, with apply_site() modulation on top.
  [[nodiscard]] core::HubConfig hub_config(std::size_t i, std::string name,
                                           std::uint64_t seed) const;

  /// Overlays site `i` onto an existing HubConfig (e.g. a scenario-factory
  /// hub): plug count follows the density class and demand intensity scales
  /// with density, while the scenario's character (plant, prices, weather)
  /// is preserved.
  void apply_site(std::size_t i, core::HubConfig& hub) const;

  /// Through-traffic arrival rate for hub `i` (expected passing-EV arrivals
  /// per slot at full network load) — the exogenous demand stream the
  /// coupling layer exchanges between neighbors.
  [[nodiscard]] double through_rate(std::size_t i) const;

  /// The metro-wide front seed: hubs in one metro key their correlated
  /// weather/outage fronts off this stream (0 would mean "no front").
  [[nodiscard]] std::uint64_t front_seed() const noexcept;

  /// Deterministic digest over sites, densities, classes and adjacency in
  /// fixed order — the golden-checksum hook for reproducibility tests.
  [[nodiscard]] double checksum() const;

 private:
  [[nodiscard]] static MetroConfig validated(MetroConfig cfg);

  MetroConfig cfg_;
  std::uint64_t seed_;
  RoadNetwork roads_;
  std::vector<MetroHub> hubs_;
};

}  // namespace ecthub::spatial
