// Base-station placement and the road/BS overlap statistics of Fig. 1.
//
// Real deployments bias BS sites toward roads and population (the paper's
// observation: "the driving traces of EVs should highly overlap with the
// distribution of BSs").  We place a configurable fraction of stations by
// sampling a point on a road segment plus lateral jitter, the rest uniformly,
// then measure how much closer stations sit to roads than uniform chance.
#pragma once

#include "common/rng.hpp"
#include "spatial/roads.hpp"

#include <vector>

namespace ecthub::spatial {

struct PlacementConfig {
  std::size_t num_stations = 2500;
  double road_biased_fraction = 0.8;  ///< share of BSs deployed along roads
  double road_jitter_km = 1.0;        ///< lateral spread around the road
};

struct OverlapStats {
  double mean_distance_km = 0.0;          ///< BSs: mean distance to nearest road
  double median_distance_km = 0.0;
  double within_1km_fraction = 0.0;       ///< BSs within 1 km of a road
  double uniform_mean_distance_km = 0.0;  ///< same statistic for uniform points
  double uniform_within_1km_fraction = 0.0;
  /// mean uniform distance / mean BS distance; > 1 indicates road clustering.
  double clustering_ratio = 0.0;
};

class BsPlacement {
 public:
  BsPlacement(PlacementConfig cfg, const RoadNetwork& roads, Rng rng);

  [[nodiscard]] const std::vector<Point>& stations() const noexcept { return stations_; }

  /// Computes the overlap statistics against `roads` using `reference_samples`
  /// uniform points as the null model.
  [[nodiscard]] OverlapStats overlap_stats(const RoadNetwork& roads,
                                           std::size_t reference_samples, Rng rng) const;

  [[nodiscard]] const PlacementConfig& config() const noexcept { return cfg_; }

 private:
  PlacementConfig cfg_;
  std::vector<Point> stations_;
};

}  // namespace ecthub::spatial
