#include "power/balance.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::power {

double PowerFlow::grid_kw() const {
  return std::max(0.0, bs_kw + cs_kw + bp_kw - wt_kw - pv_kw);
}

double PowerFlow::curtailed_kw() const {
  return std::max(0.0, wt_kw + pv_kw - (bs_kw + cs_kw + bp_kw));
}

std::vector<double> grid_import_series(const std::vector<double>& bs_kw,
                                       const std::vector<double>& cs_kw,
                                       const std::vector<double>& bp_kw,
                                       const std::vector<double>& wt_kw,
                                       const std::vector<double>& pv_kw) {
  const std::size_t n = bs_kw.size();
  if (cs_kw.size() != n || bp_kw.size() != n || wt_kw.size() != n || pv_kw.size() != n) {
    throw std::invalid_argument("grid_import_series: length mismatch");
  }
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    PowerFlow f{bs_kw[t], cs_kw[t], bp_kw[t], wt_kw[t], pv_kw[t]};
    out[t] = f.grid_kw();
  }
  return out;
}

}  // namespace ecthub::power
