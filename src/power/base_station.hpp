// 5G base-station power model (paper Eq. 1).
//
// P_BS(t) = P_min + alpha_t (P_max - P_min): the BBU draws a constant floor
// while the AAU scales linearly with the load rate.  Typical 5G figures are
// 2-4 kW at full load (paper Sec. II-A).
#pragma once

#include <vector>

namespace ecthub::power {

struct BaseStationConfig {
  double idle_power_kw = 1.0;  ///< P_min: BBU + idle AAU
  double full_power_kw = 3.5;  ///< P_max at load rate 1.0
};

class BaseStation {
 public:
  explicit BaseStation(BaseStationConfig cfg);

  /// Power draw (kW) at a load rate clamped into [0, 1].
  [[nodiscard]] double power_kw(double load_rate) const;

  /// Whole-horizon series from a load-rate trace.
  [[nodiscard]] std::vector<double> series(const std::vector<double>& load_rate) const;

  [[nodiscard]] const BaseStationConfig& config() const noexcept { return cfg_; }

 private:
  BaseStationConfig cfg_;
};

}  // namespace ecthub::power
