// Hub power balance (paper Eq. 7) and per-slot power-flow accounting.
//
// P_grid(t) = max{0, P_BS + P_CS + P_BP - P_WT - P_PV}: demand not covered by
// the battery or renewables is imported from the grid; surplus renewable
// generation is curtailed rather than fed back (the paper argues grid
// feed-in is not viable, Sec. I).
#pragma once

#include <vector>

namespace ecthub::power {

/// All power terms for one slot, kW.  Sign conventions follow the paper:
/// bp_kw > 0 while charging (load), < 0 while discharging (source).
struct PowerFlow {
  double bs_kw = 0.0;
  double cs_kw = 0.0;
  double bp_kw = 0.0;
  double wt_kw = 0.0;
  double pv_kw = 0.0;

  /// Grid import per Eq. 7, never negative.
  [[nodiscard]] double grid_kw() const;

  /// Renewable power generated but not absorbed (curtailed), never negative.
  [[nodiscard]] double curtailed_kw() const;
};

/// Applies Eq. 7 across a horizon; all vectors must share one length.
[[nodiscard]] std::vector<double> grid_import_series(const std::vector<double>& bs_kw,
                                                     const std::vector<double>& cs_kw,
                                                     const std::vector<double>& bp_kw,
                                                     const std::vector<double>& wt_kw,
                                                     const std::vector<double>& pv_kw);

}  // namespace ecthub::power
