#include "power/base_station.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::power {

BaseStation::BaseStation(BaseStationConfig cfg) : cfg_(cfg) {
  if (cfg_.idle_power_kw < 0.0) {
    throw std::invalid_argument("BaseStationConfig: idle_power_kw < 0");
  }
  if (cfg_.full_power_kw <= cfg_.idle_power_kw) {
    throw std::invalid_argument("BaseStationConfig: full_power_kw must exceed idle_power_kw");
  }
}

double BaseStation::power_kw(double load_rate) const {
  const double alpha = std::clamp(load_rate, 0.0, 1.0);
  return cfg_.idle_power_kw + alpha * (cfg_.full_power_kw - cfg_.idle_power_kw);
}

std::vector<double> BaseStation::series(const std::vector<double>& load_rate) const {
  std::vector<double> out(load_rate.size());
  for (std::size_t t = 0; t < load_rate.size(); ++t) out[t] = power_kw(load_rate[t]);
  return out;
}

}  // namespace ecthub::power
