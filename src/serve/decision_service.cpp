#include "serve/decision_service.hpp"

#include "common/stats.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace ecthub::serve {

DecisionService::DecisionService(std::shared_ptr<const policy::Policy> policy,
                                 std::size_t state_dim, ServiceConfig cfg)
    : policy_(std::move(policy)), state_dim_(state_dim), cfg_(cfg) {
  if (!policy_) throw std::invalid_argument("DecisionService: null policy");
  if (state_dim_ == 0) throw std::invalid_argument("DecisionService: state_dim must be >= 1");
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("DecisionService: max_batch must be >= 1");
  }
  if (!policy_->stateless()) {
    // Mirrors the decide_rows contract: micro-batching interleaves requests
    // from arbitrary callers into one matrix, which only a pure function of
    // the observation can answer.  Stateful policies stay one-per-hub.
    throw std::invalid_argument("DecisionService: policy '" + policy_->name() +
                                "' is stateful — request micro-batching requires a "
                                "stateless policy (the decide_rows contract)");
  }
  batch_hist_.assign(cfg_.max_batch + 1, 0);
  latency_ring_.assign(std::max<std::size_t>(1, cfg_.latency_window), 0.0);
  flush_ws_.policy_ws = policy_->make_workspace();
  // Pre-size the admission matrix and scatter buffers to their largest shape
  // so flush-time resize_zeroed calls are capacity reuses, never growth.
  flush_ws_.obs.resize_zeroed(cfg_.max_batch, state_dim_);
  flush_ws_.actions.assign(cfg_.max_batch, 0);
  flush_ws_.batch.reserve(cfg_.max_batch);
  worker_ = std::thread([this] { worker_loop(); });
}

DecisionService::~DecisionService() { shutdown(); }

DecisionService::Ticket* DecisionService::acquire_ticket() {
  if (free_.empty()) {
    // Warm-up growth: the pool high-water mark is the maximum number of
    // concurrently blocked callers; after that every acquire is a reuse.
    tickets_.push_back(std::make_unique<Ticket>());
    tickets_.back()->obs.reserve(state_dim_);
    return tickets_.back().get();
  }
  Ticket* ticket = free_.back();
  free_.pop_back();
  return ticket;
}

std::size_t DecisionService::decide(std::span<const double> obs) {
  if (obs.size() != state_dim_) {
    throw std::invalid_argument("DecisionService::decide: observation has " +
                                std::to_string(obs.size()) + " features, expected " +
                                std::to_string(state_dim_));
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) {
    throw std::runtime_error("DecisionService::decide: service is shut down");
  }
  Ticket* ticket = acquire_ticket();
  ticket->obs.assign(obs.begin(), obs.end());
  ticket->done = false;
  ticket->enqueue_us = cfg_.now_us != nullptr ? cfg_.now_us() : 0;
  pending_.push_back(ticket);
  max_queue_depth_ = std::max(max_queue_depth_, pending_.size());
  // The worker may be idle (empty queue) or holding a partial batch open;
  // either way a new arrival can complete a batch, so always poke it.
  worker_cv_.notify_one();
  ticket->cv.wait(lock, [ticket] { return ticket->done; });
  const std::size_t action = ticket->action;
  free_.push_back(ticket);
  return action;
}

void DecisionService::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stop_) return;
      worker_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    if (pending_.size() < cfg_.max_batch && cfg_.max_wait_us > 0 && !stop_) {
      // The batching window: hold the partial batch open for peers until
      // either it fills or the window elapses.  (Timer flushes are what
      // bound a lone request's latency to ~max_wait_us.)
      worker_cv_.wait_for(lock, std::chrono::microseconds(cfg_.max_wait_us), [this] {
        return stop_ || pending_.size() >= cfg_.max_batch;
      });
    }
    flush_into(flush_ws_);
  }
}

void DecisionService::flush_into(FlushWorkspace& ws) {
  const std::size_t admitted = std::min(pending_.size(), cfg_.max_batch);
  ws.batch.assign(pending_.begin(),
                  pending_.begin() + static_cast<std::ptrdiff_t>(admitted));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(admitted));
  ws.obs.resize_zeroed(admitted, state_dim_);
  double* rows = ws.obs.data().data();
  for (std::size_t i = 0; i < admitted; ++i) {
    std::copy(ws.batch[i]->obs.begin(), ws.batch[i]->obs.end(), rows + i * state_dim_);
  }
  ws.actions.resize(admitted);
  policy_->decide_rows(ws.obs, 0, admitted,
                       std::span<std::size_t>(ws.actions.data(), admitted),
                       *ws.policy_ws);

  ++flushes_;
  ++batch_hist_[admitted];
  if (admitted == cfg_.max_batch) {
    ++full_batch_flushes_;
  } else {
    ++timer_flushes_;
  }
  completed_ += admitted;
  const std::uint64_t scatter_us = cfg_.now_us != nullptr ? cfg_.now_us() : 0;
  for (std::size_t i = 0; i < admitted; ++i) {
    Ticket* ticket = ws.batch[i];
    if (cfg_.now_us != nullptr) {
      const auto latency =
          static_cast<double>(scatter_us - ticket->enqueue_us);
      latency_ring_[latency_next_] = latency;
      latency_next_ = (latency_next_ + 1) % latency_ring_.size();
      ++latency_total_;
      latency_max_us_ = std::max(latency_max_us_, latency);
    }
    ticket->action = ws.actions[i];
    ticket->done = true;
    ticket->cv.notify_one();
  }
}

void DecisionService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stop_ = true;
  }
  worker_cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

ServiceStats DecisionService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.requests = completed_;
  s.flushes = flushes_;
  s.full_batch_flushes = full_batch_flushes_;
  s.timer_flushes = timer_flushes_;
  s.queue_depth = pending_.size();
  s.max_queue_depth = max_queue_depth_;
  s.mean_batch_size =
      flushes_ > 0 ? static_cast<double>(completed_) / static_cast<double>(flushes_) : 0.0;
  s.batch_size_hist = batch_hist_;
  s.latency_samples = latency_total_;
  if (latency_total_ > 0) {
    const std::size_t window =
        static_cast<std::size_t>(std::min<std::uint64_t>(latency_total_, latency_ring_.size()));
    const std::vector<double> samples(latency_ring_.begin(),
                                      latency_ring_.begin() +
                                          static_cast<std::ptrdiff_t>(window));
    s.latency_p50_us = stats::percentile(samples, 50.0);
    s.latency_p95_us = stats::percentile(samples, 95.0);
    s.latency_p99_us = stats::percentile(samples, 99.0);
    s.latency_max_us = latency_max_us_;
  }
  return s;
}

}  // namespace ecthub::serve
