// Decision service mode: request-level micro-batching on the lockstep GEMM
// path — the ROADMAP's "millions of users" north star taken literally.
//
// A DecisionService is a long-running in-process server around one shared
// stateless Policy.  Client threads call decide(obs) with a single
// observation vector and block; a worker thread admits pending requests into
// a reusable observation matrix under a configurable batching window
// (flush when max_batch requests are waiting, or after max_wait_us of
// waiting for peers), runs ONE decide_rows row-block forward per flush —
// the same const, workspace-confined kernel the lockstep fleet runner's
// worker-GEMM phase uses — and scatters the actions back to the blocked
// callers.  For a DrlPolicy that turns N concurrent matrix-vector requests
// into one N-row GEMM per flush.
//
// Contracts, pinned by tests/test_serve.cpp:
//  * bit-identity — every request's action is bit-identical to calling
//    decide_batch directly on the same observation, at ANY batching window:
//    the row kernels accumulate each output element in the same order
//    regardless of batch composition, so micro-batch grouping cannot change
//    a result.
//  * stateless only — stateful policies must stay one-instance-per-hub
//    (the decide_rows contract); the constructor rejects them.
//  * zero steady-state allocation — request admission, the flush forward
//    (per-worker Policy::Workspace + reused observation matrix) and the
//    action scatter are allocation-free once the ticket pool and workspace
//    have warmed up, in the same counting-operator-new sense as the episode
//    hot path (test_alloc style).
//  * clean shutdown — shutdown() stops admissions, drains every in-flight
//    request (each still receives its correct action), then joins the
//    worker.
//
// Determinism note: actions are pure functions of the observations.  The
// only nondeterministic observables are the latency/batch-size statistics,
// and those are fed by an *injected* clock (ServiceConfig::now_us) — src/
// code reads no clock itself, so the repo-wide determinism invariant
// (ecthub_lint) holds; benches and examples inject std::chrono, tests
// inject a fake counter.
#pragma once

#include "nn/matrix.hpp"
#include "policy/policy.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace ecthub::serve {

/// Monotonic-microsecond source for latency observability.  Injected so the
/// library itself stays clock-free (determinism invariant); nullptr disables
/// latency tracking (batch/queue statistics still accumulate).
using ClockFn = std::uint64_t (*)();

struct ServiceConfig {
  /// Flush as soon as this many requests are pending (the micro-batch cap
  /// and the row count of the reusable observation matrix).
  std::size_t max_batch = 32;
  /// How long a partial batch waits for peers before flushing anyway, in
  /// microseconds.  0 = never wait (every flush takes whatever is pending).
  std::uint64_t max_wait_us = 200;
  /// Ring capacity of retained per-request latency samples (the percentile
  /// window).  Fixed at construction — the steady state never grows it.
  std::size_t latency_window = 4096;
  /// Latency clock; see ClockFn.
  ClockFn now_us = nullptr;
};

/// One observability snapshot; all counters since construction.
struct ServiceStats {
  std::uint64_t requests = 0;           ///< completed requests
  std::uint64_t flushes = 0;            ///< decide_rows forwards run
  std::uint64_t full_batch_flushes = 0; ///< flushed at exactly max_batch
  std::uint64_t timer_flushes = 0;      ///< flushed below max_batch
  std::size_t queue_depth = 0;          ///< pending requests right now (gauge)
  std::size_t max_queue_depth = 0;      ///< high-water mark of the gauge
  double mean_batch_size = 0.0;         ///< requests / flushes
  /// batch_size_hist[k] = number of flushes that admitted exactly k rows
  /// (index 0 unused; size max_batch + 1).
  std::vector<std::uint64_t> batch_size_hist;
  /// Latency percentiles over the retained sample window (stats::percentile;
  /// all zero when no clock was injected).  Latency = enqueue -> scatter.
  std::uint64_t latency_samples = 0;    ///< total recorded (window may be smaller)
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
};

class DecisionService {
 public:
  /// Starts the worker.  `policy` must be stateless() (the decide_rows
  /// contract — micro-batching mixes requests from arbitrary callers into
  /// one matrix); throws std::invalid_argument otherwise, and on a null
  /// policy, state_dim == 0, or max_batch == 0.
  DecisionService(std::shared_ptr<const policy::Policy> policy, std::size_t state_dim,
                  ServiceConfig cfg = {});

  /// Drains in-flight requests and joins the worker (shutdown()).
  ~DecisionService();

  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Blocks until the worker has batched and answered this request; returns
  /// the action, bit-identical to decide_batch on the same observation.
  /// Safe to call from many threads concurrently.  Throws
  /// std::invalid_argument when obs.size() != state_dim() and
  /// std::runtime_error after shutdown().
  [[nodiscard]] std::size_t decide(std::span<const double> obs);

  /// Stops admitting new requests, flushes every in-flight one (each blocked
  /// caller still receives its action), then joins the worker.  Idempotent;
  /// called by the destructor.
  void shutdown();

  /// Observability snapshot (percentiles computed on the spot — not for the
  /// request hot path).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] std::size_t state_dim() const noexcept { return state_dim_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  /// One blocked request: the copied-in observation row, the scatter target,
  /// and the caller's wakeup channel.  Tickets are pooled — acquire/release
  /// reuse them, so the steady state allocates none.
  struct Ticket {
    std::vector<double> obs;
    std::size_t action = 0;
    bool done = false;
    std::uint64_t enqueue_us = 0;
    std::condition_variable cv;
  };

  /// The flush loop's caller-owned scratch, in the decide_rows workspace
  /// idiom: the admission matrix, the action buffer, the admitted-ticket
  /// list and the per-worker policy workspace all live here and are reused
  /// across flushes.
  struct FlushWorkspace {
    nn::Matrix obs;                    ///< admitted rows x state_dim
    std::vector<std::size_t> actions;  ///< one per admitted row
    std::vector<Ticket*> batch;        ///< admitted tickets, queue order
    std::unique_ptr<policy::Policy::Workspace> policy_ws;
  };

  void worker_loop();
  /// Admits up to max_batch pending tickets into ws.obs, runs one
  /// decide_rows forward, scatters actions back and wakes the callers.
  /// Called with mu_ held; allocation-free once ws has warmed up.
  void flush_into(FlushWorkspace& ws);
  [[nodiscard]] Ticket* acquire_ticket();

  std::shared_ptr<const policy::Policy> policy_;
  std::size_t state_dim_ = 0;
  ServiceConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable worker_cv_;
  std::vector<std::unique_ptr<Ticket>> tickets_;  ///< pool ownership
  std::vector<Ticket*> free_;                     ///< idle tickets
  std::vector<Ticket*> pending_;                  ///< submitted, not yet admitted
  bool accepting_ = true;
  bool stop_ = false;

  // Observability counters (all guarded by mu_).
  std::uint64_t completed_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t full_batch_flushes_ = 0;
  std::uint64_t timer_flushes_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<std::uint64_t> batch_hist_;  ///< size max_batch + 1, fixed
  std::vector<double> latency_ring_;       ///< size latency_window, fixed
  std::size_t latency_next_ = 0;
  std::uint64_t latency_total_ = 0;
  double latency_max_us_ = 0.0;

  FlushWorkspace flush_ws_;
  std::thread worker_;  ///< started last in the constructor
};

}  // namespace ecthub::serve
