// Neural-Collaborative-Filtering backbone and scalar regressor.
//
// Follows the paper's Fig. 9 tower: station and time embeddings are combined
// element-wise ("element-wise plus") and concatenated with the raw
// embeddings, then fed to an MLP head.  The same backbone serves as the base
// model for ECT-Price's two tasks and for all three uplift baselines (the
// paper: "All the baselines and the two tasks in ECT-Price use NCF as base
// models").
#pragma once

#include "causal/features.hpp"
#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

#include <string>
#include <vector>

namespace ecthub::causal {

struct NcfConfig {
  std::size_t num_stations = 12;
  std::size_t time_vocab = kTimeVocab;
  std::size_t embedding_dim = 16;
  std::vector<std::size_t> hidden_dims = {32};
};

/// Embedding towers producing the concatenated feature matrix
/// Z = [emb_s | emb_t | emb_s + emb_t] of width 3 * embedding_dim.
class NcfBackbone {
 public:
  NcfBackbone(NcfConfig cfg, nn::Rng& rng, const std::string& name);

  /// (batch) ids -> (batch x feature_dim) features; caches for backward.
  nn::Matrix forward(const std::vector<std::size_t>& station_ids,
                     const std::vector<std::size_t>& time_ids);
  /// Routes dL/dZ back into both embedding tables.
  void backward(const nn::Matrix& dz);

  void zero_grad();
  [[nodiscard]] std::vector<nn::Parameter> parameters();

  [[nodiscard]] std::size_t feature_dim() const noexcept { return 3 * dim_; }

 private:
  std::size_t dim_;
  nn::Embedding station_emb_;
  nn::Embedding time_emb_;
};

/// Backbone + MLP head emitting one scalar per item.  Output activation is
/// sigmoid for probability targets (Y, T) and identity for unbounded
/// pseudo-outcome regression (IPS / DR transformed outcomes).
class NcfRegressor {
 public:
  NcfRegressor(NcfConfig cfg, nn::Activation output_activation, nn::Rng& rng,
               const std::string& name);

  /// Predictions as a (batch x 1) matrix.
  nn::Matrix forward(const std::vector<std::size_t>& station_ids,
                     const std::vector<std::size_t>& time_ids);

  /// One optimizer step against MSE on `targets` with optional per-item
  /// `weights`; returns the (weighted) loss.
  double train_step(const Batch& batch, const std::vector<double>& targets,
                    const std::vector<double>& weights, nn::Adam& opt);

  /// Convenience scalar prediction.
  [[nodiscard]] double predict(std::size_t station_id, std::size_t time_id);

  [[nodiscard]] std::vector<nn::Parameter> parameters();
  void zero_grad();

 private:
  NcfBackbone backbone_;
  nn::Mlp head_;
};

}  // namespace ecthub::causal
