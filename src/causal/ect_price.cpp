#include "causal/ect_price.hpp"

#include <numeric>
#include <stdexcept>

namespace ecthub::causal {

ev::Stratum StrataPrediction::argmax() const {
  if (p_always >= p_incentive && p_always >= p_none) return ev::Stratum::kAlways;
  if (p_incentive >= p_none) return ev::Stratum::kIncentive;
  return ev::Stratum::kNone;
}

namespace {

nn::MlpConfig strat_head_config(const NcfConfig& ncf) {
  nn::MlpConfig mc;
  mc.layer_dims.push_back(3 * ncf.embedding_dim);
  for (std::size_t h : ncf.hidden_dims) mc.layer_dims.push_back(h);
  mc.layer_dims.push_back(3);  // f00, f01, f11 logits
  mc.output_activation = nn::Activation::kIdentity;
  return mc;
}

nn::MlpConfig prop_head_config(const NcfConfig& ncf) {
  nn::MlpConfig mc;
  mc.layer_dims.push_back(3 * ncf.embedding_dim);
  for (std::size_t h : ncf.hidden_dims) mc.layer_dims.push_back(h);
  mc.layer_dims.push_back(1);
  mc.output_activation = nn::Activation::kSigmoid;
  return mc;
}

}  // namespace

EctPriceModel::EctPriceModel(EctPriceConfig cfg, Rng rng)
    : cfg_(cfg),
      rng_(rng),
      strat_backbone_(cfg.ncf, rng_, "ect_price.strat"),
      strat_head_(strat_head_config(cfg.ncf), rng_, "ect_price.strat.head"),
      prop_backbone_(cfg.ncf, rng_, "ect_price.prop"),
      prop_head_(prop_head_config(cfg.ncf), rng_, "ect_price.prop.head"),
      opt_(cfg.adam) {
  if (cfg_.batch_size == 0) throw std::invalid_argument("EctPriceConfig: batch_size == 0");
}

EctPriceModel::LossParts EctPriceModel::process_batch(const Batch& batch, Mode mode) {
  const std::size_t n = batch.size();
  if (n == 0) throw std::invalid_argument("EctPriceModel: empty batch");
  const double dn = static_cast<double>(n);

  if (mode != Mode::kEval) {
    strat_backbone_.zero_grad();
    strat_head_.zero_grad();
    prop_backbone_.zero_grad();
    prop_head_.zero_grad();
  }

  const nn::Matrix logits =
      strat_head_.forward(strat_backbone_.forward(batch.station_ids, batch.time_ids));
  const nn::Matrix s = nn::softmax_rows(logits);  // cols: [f00, f01, f11]
  const nn::Matrix g =
      prop_head_.forward(prop_backbone_.forward(batch.station_ids, batch.time_ids));

  LossParts parts;
  nn::Matrix ds(n, 3);   // dL/dsoftmax
  nn::Matrix dg(n, 1);   // dL/dg
  for (std::size_t i = 0; i < n; ++i) {
    const double Y = batch.charged[i], T = batch.treated[i];
    const double y0t1 = (1.0 - Y) * T;
    const double y1t0 = Y * (1.0 - T);
    const double y1t1 = Y * T;
    const double y0t0 = (1.0 - Y) * (1.0 - T);
    const double f00 = s(i, 0), f01 = s(i, 1), f11 = s(i, 2);
    const double gi = g(i, 0);

    // L1 = (f00 * g - 1[Y=0,T=1])^2
    {
      const double e = f00 * gi - y0t1;
      parts.l1 += e * e;
      ds(i, 0) += 2.0 * e * gi / dn;
      dg(i, 0) += 2.0 * e * f00 / dn;
    }
    // L2 = (f11 * (1-g) - 1[Y=1,T=0])^2
    {
      const double e = f11 * (1.0 - gi) - y1t0;
      parts.l2 += e * e;
      ds(i, 2) += 2.0 * e * (1.0 - gi) / dn;
      dg(i, 0) -= 2.0 * e * f11 / dn;
    }
    // L3 = ((f01 + f11) * g - 1[Y=1,T=1])^2
    {
      const double a = f01 + f11;
      const double e = a * gi - y1t1;
      parts.l3 += e * e;
      ds(i, 1) += 2.0 * e * gi / dn;
      ds(i, 2) += 2.0 * e * gi / dn;
      dg(i, 0) += 2.0 * e * a / dn;
    }
    // L4 = ((f00 + f01) * (1-g) - 1[Y=0,T=0])^2.
    // Note: the paper's Eq. 16 prints "f00 + f11" here, but its own
    // counterfactual-identification text says (Y=0, T=0) arises from No
    // Charge and *Incentive* Charge (an untreated Incentive item does not
    // charge) — f00 + f01.  The printed form makes the four identities
    // inconsistent with the true strata (it couples f01 to f11 and the
    // optimizer provably stalls off-truth); we implement the correct one.
    {
      const double a = f00 + f01;
      const double e = a * (1.0 - gi) - y0t0;
      parts.l4 += e * e;
      ds(i, 0) += 2.0 * e * (1.0 - gi) / dn;
      ds(i, 1) += 2.0 * e * (1.0 - gi) / dn;
      dg(i, 0) -= 2.0 * e * a / dn;
    }
    // Lp = (g - T)^2
    {
      const double e = gi - T;
      parts.lp += e * e;
      dg(i, 0) += 2.0 * e / dn;
    }
  }
  parts.l1 /= dn;
  parts.l2 /= dn;
  parts.l3 /= dn;
  parts.l4 /= dn;
  parts.lp /= dn;

  if (mode != Mode::kEval) {
    strat_backbone_.backward(strat_head_.backward(nn::softmax_backward(s, ds)));
    prop_backbone_.backward(prop_head_.backward(dg));
    if (mode == Mode::kTrain) {
      auto params = parameters();
      opt_.step(params);
    }
  }
  return parts;
}

std::vector<nn::Parameter> EctPriceModel::parameters() {
  std::vector<nn::Parameter> params = strat_backbone_.parameters();
  for (auto& p : strat_head_.parameters()) params.push_back(p);
  for (auto& p : prop_backbone_.parameters()) params.push_back(p);
  for (auto& p : prop_head_.parameters()) params.push_back(p);
  return params;
}

TrainStats EctPriceModel::fit(const std::vector<Item>& train) {
  if (train.empty()) throw std::invalid_argument("EctPriceModel::fit: empty training set");
  TrainStats stats;
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng_.shuffle(order);
    double loss_acc = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(start + cfg_.batch_size, order.size());
      const std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                         order.begin() + static_cast<std::ptrdiff_t>(end));
      loss_acc += process_batch(make_batch(train, idx), Mode::kTrain).total();
      ++batches;
    }
    stats.epoch_loss.push_back(loss_acc / static_cast<double>(batches));
  }
  return stats;
}

EctPriceModel::LossParts EctPriceModel::evaluate_loss(const std::vector<Item>& items) {
  std::vector<std::size_t> idx(items.size());
  std::iota(idx.begin(), idx.end(), 0);
  return process_batch(make_batch(items, idx), Mode::kEval);
}

EctPriceModel::LossParts EctPriceModel::compute_gradients(const std::vector<Item>& items) {
  std::vector<std::size_t> idx(items.size());
  std::iota(idx.begin(), idx.end(), 0);
  return process_batch(make_batch(items, idx), Mode::kGrad);
}

std::vector<StrataPrediction> EctPriceModel::predict(const std::vector<Item>& items) {
  std::vector<std::size_t> idx(items.size());
  std::iota(idx.begin(), idx.end(), 0);
  const Batch batch = make_batch(items, idx);
  const nn::Matrix logits =
      strat_head_.forward(strat_backbone_.forward(batch.station_ids, batch.time_ids));
  const nn::Matrix s = nn::softmax_rows(logits);
  const nn::Matrix g =
      prop_head_.forward(prop_backbone_.forward(batch.station_ids, batch.time_ids));
  std::vector<StrataPrediction> out(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i].p_none = s(i, 0);
    out[i].p_incentive = s(i, 1);
    out[i].p_always = s(i, 2);
    out[i].propensity = g(i, 0);
  }
  return out;
}

StrataPrediction EctPriceModel::predict_one(std::size_t station_id, std::size_t time_id) {
  Item it;
  it.station_id = station_id;
  it.time_id = time_id;
  return predict({it}).front();
}

}  // namespace ecthub::causal
