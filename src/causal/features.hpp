// Feature encoding for the pricing models.
//
// ECT-Price's Fig. 9 architecture consumes two categorical features per item:
// a station feature and a time feature.  We encode the station as its index
// and the time as the hour-of-day slot — the granularity of the paper's
// Figs. 11-12 and of the discount decision itself.  (A composite
// day-of-week x hour id was measured to dilute each cell's sample count 7x
// without adding signal: the charging behaviour ground truth has no weekly
// structure.)
#pragma once

#include "ev/dataset.hpp"

#include <cstddef>
#include <vector>

namespace ecthub::causal {

/// One encoded training/evaluation item.
struct Item {
  std::size_t station_id = 0;
  std::size_t time_id = 0;  ///< hour of day, in [0, 24)
  bool treated = false;
  bool charged = false;
  ev::Stratum stratum = ev::Stratum::kNone;  ///< ground truth, evaluation only
  std::size_t hour = 0;                      ///< kept for reporting
};

constexpr std::size_t kTimeVocab = 24;

/// Hour-of-day encoding (identity with validation).
[[nodiscard]] std::size_t encode_time(std::size_t hour);

/// Converts dataset records into encoded items.
[[nodiscard]] std::vector<Item> encode(const std::vector<ev::ChargingRecord>& records);

/// A minibatch view: parallel id/target vectors ready for the models.
struct Batch {
  std::vector<std::size_t> station_ids;
  std::vector<std::size_t> time_ids;
  std::vector<double> treated;
  std::vector<double> charged;

  [[nodiscard]] std::size_t size() const noexcept { return station_ids.size(); }
};

/// Gathers `indices` out of `items` into a batch.
[[nodiscard]] Batch make_batch(const std::vector<Item>& items,
                               const std::vector<std::size_t>& indices);

}  // namespace ecthub::causal
