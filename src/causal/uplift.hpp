// Traditional uplift-modeling baselines (paper Sec. V-A): outcome regression
// (OR), inverse propensity scoring (IPS), and the doubly-robust (DR)
// estimator.  All use the NCF backbone as their base model, mirroring the
// paper's setup.  Each produces a per-item uplift score
//   tau(X) ~= P(Y=1 | T=1, X) - P(Y=1 | T=0, X),
// and the discount policy treats items with positive estimated uplift.
//
// Uplift models cannot distinguish the "Always Buyer": an always-charging
// item has tau ~= 0 but noisy estimates routinely push it above threshold,
// wasting discounts — the failure mode ECT-Price's stratification removes.
#pragma once

#include "causal/ncf.hpp"
#include "nn/optimizer.hpp"

#include <memory>
#include <string>
#include <vector>

namespace ecthub::causal {

struct UpliftConfig {
  NcfConfig ncf;
  nn::AdamConfig adam{.lr = 1e-2, .weight_decay = 1e-4, .grad_clip = 5.0};
  std::size_t batch_size = 64;
  std::size_t epochs = 3;
  /// Propensity clipping bounds for IPS/DR weight stability.
  double propensity_clip = 0.05;
};

/// Common interface for the three estimators.
class UpliftModel {
 public:
  virtual ~UpliftModel() = default;

  virtual void fit(const std::vector<Item>& train) = 0;

  /// Estimated treatment effect for each item.
  [[nodiscard]] virtual std::vector<double> uplift(const std::vector<Item>& items) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// T-learner: separate outcome models for treated and control arms.
class OutcomeRegression final : public UpliftModel {
 public:
  OutcomeRegression(UpliftConfig cfg, Rng rng);
  void fit(const std::vector<Item>& train) override;
  [[nodiscard]] std::vector<double> uplift(const std::vector<Item>& items) override;
  [[nodiscard]] std::string name() const override { return "OR"; }

 private:
  UpliftConfig cfg_;
  Rng rng_;
  NcfRegressor mu1_, mu0_;
};

/// Transformed-outcome regression with estimated propensities.
class InversePropensityScoring final : public UpliftModel {
 public:
  InversePropensityScoring(UpliftConfig cfg, Rng rng);
  void fit(const std::vector<Item>& train) override;
  [[nodiscard]] std::vector<double> uplift(const std::vector<Item>& items) override;
  [[nodiscard]] std::string name() const override { return "IPS"; }

  /// The fitted propensity for one item (exposed for tests).
  [[nodiscard]] double propensity(std::size_t station_id, std::size_t time_id);

 private:
  UpliftConfig cfg_;
  Rng rng_;
  NcfRegressor prop_;   ///< e(X), sigmoid
  NcfRegressor tau_;    ///< uplift regressor, identity output
};

/// Doubly-robust pseudo-outcome regression (consistent if either the outcome
/// models or the propensity model is correct).
class DoublyRobust final : public UpliftModel {
 public:
  DoublyRobust(UpliftConfig cfg, Rng rng);
  void fit(const std::vector<Item>& train) override;
  [[nodiscard]] std::vector<double> uplift(const std::vector<Item>& items) override;
  [[nodiscard]] std::string name() const override { return "DR"; }

 private:
  UpliftConfig cfg_;
  Rng rng_;
  NcfRegressor mu1_, mu0_, prop_, tau_;
};

/// Shared minibatch trainer: fits `model` to (items, targets) under MSE.
void train_regressor(NcfRegressor& model, const std::vector<Item>& items,
                     const std::vector<double>& targets, const UpliftConfig& cfg, Rng& rng,
                     nn::Adam& opt);

}  // namespace ecthub::causal
