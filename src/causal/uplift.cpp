#include "causal/uplift.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ecthub::causal {

namespace {

/// Gathers per-item scalar predictions in evaluation order.
std::vector<double> predict_all(NcfRegressor& model, const std::vector<Item>& items) {
  std::vector<std::size_t> idx(items.size());
  std::iota(idx.begin(), idx.end(), 0);
  const Batch b = make_batch(items, idx);
  const nn::Matrix pred = model.forward(b.station_ids, b.time_ids);
  std::vector<double> out(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) out[i] = pred(i, 0);
  return out;
}

}  // namespace

void train_regressor(NcfRegressor& model, const std::vector<Item>& items,
                     const std::vector<double>& targets, const UpliftConfig& cfg, Rng& rng,
                     nn::Adam& opt) {
  if (items.empty()) throw std::invalid_argument("train_regressor: empty training set");
  if (items.size() != targets.size()) {
    throw std::invalid_argument("train_regressor: target size mismatch");
  }
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, order.size());
      const std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                         order.begin() + static_cast<std::ptrdiff_t>(end));
      const Batch b = make_batch(items, idx);
      std::vector<double> batch_targets;
      batch_targets.reserve(idx.size());
      for (std::size_t j : idx) batch_targets.push_back(targets[j]);
      model.train_step(b, batch_targets, {}, opt);
    }
  }
}

// ---------------------------------------------------------------- OR

OutcomeRegression::OutcomeRegression(UpliftConfig cfg, Rng rng)
    : cfg_(cfg),
      rng_(rng),
      mu1_(cfg.ncf, nn::Activation::kSigmoid, rng_, "or.mu1"),
      mu0_(cfg.ncf, nn::Activation::kSigmoid, rng_, "or.mu0") {}

void OutcomeRegression::fit(const std::vector<Item>& train) {
  std::vector<Item> treated, control;
  std::vector<double> y1, y0;
  for (const auto& it : train) {
    if (it.treated) {
      treated.push_back(it);
      y1.push_back(it.charged ? 1.0 : 0.0);
    } else {
      control.push_back(it);
      y0.push_back(it.charged ? 1.0 : 0.0);
    }
  }
  if (treated.empty() || control.empty()) {
    throw std::invalid_argument("OutcomeRegression::fit: need both treated and control items");
  }
  nn::Adam opt1(cfg_.adam), opt0(cfg_.adam);
  train_regressor(mu1_, treated, y1, cfg_, rng_, opt1);
  train_regressor(mu0_, control, y0, cfg_, rng_, opt0);
}

std::vector<double> OutcomeRegression::uplift(const std::vector<Item>& items) {
  const std::vector<double> p1 = predict_all(mu1_, items);
  const std::vector<double> p0 = predict_all(mu0_, items);
  std::vector<double> tau(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) tau[i] = p1[i] - p0[i];
  return tau;
}

// ---------------------------------------------------------------- IPS

InversePropensityScoring::InversePropensityScoring(UpliftConfig cfg, Rng rng)
    : cfg_(cfg),
      rng_(rng),
      prop_(cfg.ncf, nn::Activation::kSigmoid, rng_, "ips.prop"),
      tau_(cfg.ncf, nn::Activation::kIdentity, rng_, "ips.tau") {}

void InversePropensityScoring::fit(const std::vector<Item>& train) {
  // Stage 1: propensity model e(X) <- T.
  std::vector<double> t_targets;
  t_targets.reserve(train.size());
  for (const auto& it : train) t_targets.push_back(it.treated ? 1.0 : 0.0);
  nn::Adam opt_p(cfg_.adam);
  train_regressor(prop_, train, t_targets, cfg_, rng_, opt_p);

  // Stage 2: transformed outcome Z = YT/e - Y(1-T)/(1-e); E[Z | X] = tau(X).
  const std::vector<double> e_hat = predict_all(prop_, train);
  std::vector<double> z(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    const double e = std::clamp(e_hat[i], cfg_.propensity_clip, 1.0 - cfg_.propensity_clip);
    const double y = train[i].charged ? 1.0 : 0.0;
    const double t = train[i].treated ? 1.0 : 0.0;
    z[i] = y * t / e - y * (1.0 - t) / (1.0 - e);
  }
  nn::Adam opt_t(cfg_.adam);
  train_regressor(tau_, train, z, cfg_, rng_, opt_t);
}

std::vector<double> InversePropensityScoring::uplift(const std::vector<Item>& items) {
  return predict_all(tau_, items);
}

double InversePropensityScoring::propensity(std::size_t station_id, std::size_t time_id) {
  return prop_.predict(station_id, time_id);
}

// ---------------------------------------------------------------- DR

DoublyRobust::DoublyRobust(UpliftConfig cfg, Rng rng)
    : cfg_(cfg),
      rng_(rng),
      mu1_(cfg.ncf, nn::Activation::kSigmoid, rng_, "dr.mu1"),
      mu0_(cfg.ncf, nn::Activation::kSigmoid, rng_, "dr.mu0"),
      prop_(cfg.ncf, nn::Activation::kSigmoid, rng_, "dr.prop"),
      tau_(cfg.ncf, nn::Activation::kIdentity, rng_, "dr.tau") {}

void DoublyRobust::fit(const std::vector<Item>& train) {
  // Nuisance models.
  std::vector<Item> treated, control;
  std::vector<double> y1, y0, t_targets;
  t_targets.reserve(train.size());
  for (const auto& it : train) {
    t_targets.push_back(it.treated ? 1.0 : 0.0);
    if (it.treated) {
      treated.push_back(it);
      y1.push_back(it.charged ? 1.0 : 0.0);
    } else {
      control.push_back(it);
      y0.push_back(it.charged ? 1.0 : 0.0);
    }
  }
  if (treated.empty() || control.empty()) {
    throw std::invalid_argument("DoublyRobust::fit: need both treated and control items");
  }
  nn::Adam o1(cfg_.adam), o0(cfg_.adam), op(cfg_.adam);
  train_regressor(mu1_, treated, y1, cfg_, rng_, o1);
  train_regressor(mu0_, control, y0, cfg_, rng_, o0);
  train_regressor(prop_, train, t_targets, cfg_, rng_, op);

  // AIPW pseudo-outcome.
  const std::vector<double> m1 = predict_all(mu1_, train);
  const std::vector<double> m0 = predict_all(mu0_, train);
  const std::vector<double> e_hat = predict_all(prop_, train);
  std::vector<double> gamma(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    const double e = std::clamp(e_hat[i], cfg_.propensity_clip, 1.0 - cfg_.propensity_clip);
    const double y = train[i].charged ? 1.0 : 0.0;
    const double t = train[i].treated ? 1.0 : 0.0;
    gamma[i] = m1[i] - m0[i] + t * (y - m1[i]) / e - (1.0 - t) * (y - m0[i]) / (1.0 - e);
  }
  nn::Adam ot(cfg_.adam);
  train_regressor(tau_, train, gamma, cfg_, rng_, ot);
}

std::vector<double> DoublyRobust::uplift(const std::vector<Item>& items) {
  return predict_all(tau_, items);
}

}  // namespace ecthub::causal
