// ECT-Price: counterfactual-stratification multi-task model (paper Sec. IV-A).
//
// Two NCF towers (Fig. 9):
//   Stratification task  -> softmax over {f00 = No Charge, f01 = Incentive,
//                            f11 = Always}
//   Propensity task      -> g(X) = P(T = 1 | X)
// trained jointly on the counterfactual-identification losses (Eq. 18-23):
//   L1 = MSE(f00 * g,            1[Y=0 & T=1])
//   L2 = MSE(f11 * (1 - g),      1[Y=1 & T=0])
//   L3 = MSE((f01 + f11) * g,    1[Y=1 & T=1])
//   L4 = MSE((f00 + f01)*(1-g),  1[Y=0 & T=0])
//   Lp = MSE(g,                  1[T=1])
// The identities Eq. 13-16 make each stratum identifiable from observational
// (Y, T) pairs; discounts then target predicted Incentive mass.
//
// Deviation from the paper: Eq. 16 as printed reads (f00 + f11)(1 - g), but
// the paper's own identification argument ("both Incentive Charge and No
// Charge can result in the observation (Y=0, T=0)") implies f00 + f01; the
// printed form is a typo that breaks identifiability (see ect_price.cpp).
#pragma once

#include "causal/ncf.hpp"
#include "nn/optimizer.hpp"

#include <array>
#include <vector>

namespace ecthub::causal {

/// Predicted strata probabilities plus the propensity score for one item.
struct StrataPrediction {
  double p_none = 0.0;       ///< f00
  double p_incentive = 0.0;  ///< f01
  double p_always = 0.0;     ///< f11
  double propensity = 0.0;   ///< g

  [[nodiscard]] ev::Stratum argmax() const;
};

struct EctPriceConfig {
  NcfConfig ncf;
  nn::AdamConfig adam{.lr = 1e-2, .weight_decay = 1e-4, .grad_clip = 5.0};
  std::size_t batch_size = 64;
  std::size_t epochs = 3;
};

struct TrainStats {
  std::vector<double> epoch_loss;  ///< mean total loss per epoch
};

class EctPriceModel {
 public:
  EctPriceModel(EctPriceConfig cfg, Rng rng);

  /// Jointly trains both tasks on encoded items.
  TrainStats fit(const std::vector<Item>& train);

  /// Loss components of one batch without updating (for tests/diagnostics).
  struct LossParts {
    double l1 = 0, l2 = 0, l3 = 0, l4 = 0, lp = 0;
    [[nodiscard]] double total() const { return l1 + l2 + l3 + l4 + lp; }
  };
  LossParts evaluate_loss(const std::vector<Item>& items);

  /// Accumulates gradients for one full-batch pass without stepping the
  /// optimizer (used by the finite-difference gradient tests).
  LossParts compute_gradients(const std::vector<Item>& items);

  /// All trainable parameters of both towers.
  [[nodiscard]] std::vector<nn::Parameter> parameters();

  /// Batch prediction.
  [[nodiscard]] std::vector<StrataPrediction> predict(const std::vector<Item>& items);
  [[nodiscard]] StrataPrediction predict_one(std::size_t station_id, std::size_t time_id);

  [[nodiscard]] const EctPriceConfig& config() const noexcept { return cfg_; }

 private:
  enum class Mode { kEval, kGrad, kTrain };
  /// Forward + loss; kGrad also backprops, kTrain backprops and steps Adam.
  LossParts process_batch(const Batch& batch, Mode mode);

  EctPriceConfig cfg_;
  Rng rng_;
  NcfBackbone strat_backbone_;
  nn::Mlp strat_head_;      ///< -> 3 logits (softmax applied externally)
  NcfBackbone prop_backbone_;
  nn::Mlp prop_head_;       ///< -> sigmoid propensity
  nn::Adam opt_;
};

}  // namespace ecthub::causal
