// Discount policies and the evaluation harness behind Table II and
// Figs. 11-12.
//
// Both policy families produce a boolean discount decision per test item:
//   - uplift baselines treat items with estimated uplift above a threshold;
//   - ECT-Price discounts an item when the expected gain is positive:
//       (1 - c) * P(Incentive) - c * P(Always) > 0,
//     the probabilistic generalization of "discount only Incentive Charge,
//     never Always Charge" — an Incentive item discounted at fraction c earns
//     1 - c of new revenue, an Always item discounted loses c.
// The evaluator then scores decisions against the simulator's ground-truth
// strata.  Reward convention (documented in EXPERIMENTS.md): a discounted
// item contributes (1 - c) if it is truly Incentive (new revenue at the
// discounted price), -c if truly Always (the EV would have paid full price),
// and 0 if truly None (the coupon is never redeemed).  This preserves the
// paper's qualitative structure — discounting Always items is pure loss, so
// better stratification means higher reward — without relying on the paper's
// unstated revenue normalization.
#pragma once

#include "causal/ect_price.hpp"
#include "causal/uplift.hpp"

#include <array>
#include <string>
#include <vector>

namespace ecthub::causal {

/// Discount decisions for a set of items.
[[nodiscard]] std::vector<bool> decide_by_uplift(const std::vector<double>& uplift,
                                                 double threshold = 0.0);

/// Expected-gain rule at discount fraction `discount` in (0, 1).
[[nodiscard]] std::vector<bool> decide_by_strata(const std::vector<StrataPrediction>& preds,
                                                 double discount);

/// Expected-gain score of each item: (1 - c) * P(Incentive) - c * P(Always).
[[nodiscard]] std::vector<double> strata_gain_scores(
    const std::vector<StrataPrediction>& preds, double discount);

/// Budget-matched selection: discounts the `k` items with the highest score
/// (ties broken by index).  Table II compares all methods at the same budget
/// so that reward differences isolate targeting quality — mirroring the
/// paper's equal per-method selection counts.
[[nodiscard]] std::vector<bool> decide_top_k(const std::vector<double>& scores, std::size_t k);

/// One Table II cell group: counts of true strata among discounted items and
/// the resulting reward at discount fraction c.
struct DiscountOutcome {
  std::string method;
  double discount = 0.0;
  std::size_t none = 0;
  std::size_t incentive = 0;
  std::size_t always = 0;
  double reward = 0.0;
};

[[nodiscard]] DiscountOutcome evaluate_decisions(const std::string& method, double discount,
                                                 const std::vector<Item>& items,
                                                 const std::vector<bool>& discounted);

/// Hour-of-day strata curves for one station (Fig. 11): average predicted
/// probability of each stratum at each hour, over the station's test items.
struct StationStrataCurves {
  std::vector<double> p_none;       ///< size 24
  std::vector<double> p_incentive;  ///< size 24
  std::vector<double> p_always;     ///< size 24
};

[[nodiscard]] StationStrataCurves strata_curves_for_station(
    const std::vector<Item>& items, const std::vector<StrataPrediction>& preds,
    std::size_t station_id);

/// Predicted strata probability mass over four six-hour periods (Fig. 12):
/// the mean predicted (None, Incentive, Always) distribution of the items in
/// each period.  Each period's shares sum to 1, like the paper's pie charts.
struct PeriodDistribution {
  // shares[period][stratum]: period 0 = 00-06h .. 3 = 18-24h;
  // stratum order: None, Incentive, Always.
  std::array<std::array<double, 3>, 4> shares{};
};

[[nodiscard]] PeriodDistribution period_distribution(const std::vector<Item>& items,
                                                     const std::vector<StrataPrediction>& preds);

/// Stratification accuracy against ground truth (argmax vs true stratum).
[[nodiscard]] double strata_accuracy(const std::vector<Item>& items,
                                     const std::vector<StrataPrediction>& preds);

}  // namespace ecthub::causal
