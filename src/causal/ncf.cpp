#include "causal/ncf.hpp"

#include <stdexcept>

namespace ecthub::causal {

NcfBackbone::NcfBackbone(NcfConfig cfg, nn::Rng& rng, const std::string& name)
    : dim_(cfg.embedding_dim),
      station_emb_(cfg.num_stations, cfg.embedding_dim, rng, name + ".station_emb"),
      time_emb_(cfg.time_vocab, cfg.embedding_dim, rng, name + ".time_emb") {
  if (cfg.embedding_dim == 0) throw std::invalid_argument("NcfConfig: embedding_dim == 0");
}

nn::Matrix NcfBackbone::forward(const std::vector<std::size_t>& station_ids,
                                const std::vector<std::size_t>& time_ids) {
  if (station_ids.size() != time_ids.size()) {
    throw std::invalid_argument("NcfBackbone::forward: id vector size mismatch");
  }
  const nn::Matrix es = station_emb_.forward(station_ids);
  const nn::Matrix et = time_emb_.forward(time_ids);
  nn::Matrix plus = es;
  plus.add_inplace(et);
  return es.hconcat(et).hconcat(plus);
}

void NcfBackbone::backward(const nn::Matrix& dz) {
  if (dz.cols() != feature_dim()) {
    throw std::invalid_argument("NcfBackbone::backward: dZ width mismatch");
  }
  const nn::Matrix d_es = dz.slice_cols(0, dim_);
  const nn::Matrix d_et = dz.slice_cols(dim_, 2 * dim_);
  const nn::Matrix d_plus = dz.slice_cols(2 * dim_, 3 * dim_);
  // The "plus" branch contributes to both embeddings.
  nn::Matrix ds = d_es;
  ds.add_inplace(d_plus);
  nn::Matrix dt = d_et;
  dt.add_inplace(d_plus);
  station_emb_.backward(ds);
  time_emb_.backward(dt);
}

void NcfBackbone::zero_grad() {
  station_emb_.zero_grad();
  time_emb_.zero_grad();
}

std::vector<nn::Parameter> NcfBackbone::parameters() {
  std::vector<nn::Parameter> out = station_emb_.parameters();
  for (auto& p : time_emb_.parameters()) out.push_back(p);
  return out;
}

namespace {
nn::MlpConfig head_config(const NcfConfig& cfg, nn::Activation output_activation) {
  nn::MlpConfig mc;
  mc.layer_dims.push_back(3 * cfg.embedding_dim);
  for (std::size_t h : cfg.hidden_dims) mc.layer_dims.push_back(h);
  mc.layer_dims.push_back(1);
  mc.output_activation = output_activation;
  return mc;
}
}  // namespace

NcfRegressor::NcfRegressor(NcfConfig cfg, nn::Activation output_activation, nn::Rng& rng,
                           const std::string& name)
    : backbone_(cfg, rng, name),
      head_(head_config(cfg, output_activation), rng, name + ".head") {}

nn::Matrix NcfRegressor::forward(const std::vector<std::size_t>& station_ids,
                                 const std::vector<std::size_t>& time_ids) {
  return head_.forward(backbone_.forward(station_ids, time_ids));
}

double NcfRegressor::train_step(const Batch& batch, const std::vector<double>& targets,
                                const std::vector<double>& weights, nn::Adam& opt) {
  if (targets.size() != batch.size()) {
    throw std::invalid_argument("NcfRegressor::train_step: target size mismatch");
  }
  if (!weights.empty() && weights.size() != batch.size()) {
    throw std::invalid_argument("NcfRegressor::train_step: weight size mismatch");
  }
  zero_grad();
  const nn::Matrix pred = forward(batch.station_ids, batch.time_ids);
  const double n = static_cast<double>(batch.size());
  double loss = 0.0;
  nn::Matrix dpred(pred.rows(), 1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    const double diff = pred(i, 0) - targets[i];
    loss += w * diff * diff;
    dpred(i, 0) = 2.0 * w * diff / n;
  }
  backbone_.backward(head_.backward(dpred));
  auto params = parameters();
  opt.step(params);
  return loss / n;
}

double NcfRegressor::predict(std::size_t station_id, std::size_t time_id) {
  return forward({station_id}, {time_id})(0, 0);
}

std::vector<nn::Parameter> NcfRegressor::parameters() {
  std::vector<nn::Parameter> out = backbone_.parameters();
  for (auto& p : head_.parameters()) out.push_back(p);
  return out;
}

void NcfRegressor::zero_grad() {
  backbone_.zero_grad();
  head_.zero_grad();
}

}  // namespace ecthub::causal
