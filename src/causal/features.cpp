#include "causal/features.hpp"

#include <stdexcept>

namespace ecthub::causal {

std::size_t encode_time(std::size_t hour) {
  if (hour >= kTimeVocab) throw std::invalid_argument("encode_time: hour out of range");
  return hour;
}

std::vector<Item> encode(const std::vector<ev::ChargingRecord>& records) {
  std::vector<Item> items;
  items.reserve(records.size());
  for (const auto& r : records) {
    Item it;
    it.station_id = r.station;
    it.time_id = encode_time(r.hour);
    it.treated = r.treated;
    it.charged = r.charged;
    it.stratum = r.stratum;
    it.hour = r.hour;
    items.push_back(it);
  }
  return items;
}

Batch make_batch(const std::vector<Item>& items, const std::vector<std::size_t>& indices) {
  Batch b;
  b.station_ids.reserve(indices.size());
  b.time_ids.reserve(indices.size());
  b.treated.reserve(indices.size());
  b.charged.reserve(indices.size());
  for (std::size_t idx : indices) {
    if (idx >= items.size()) throw std::out_of_range("make_batch: index out of range");
    const Item& it = items[idx];
    b.station_ids.push_back(it.station_id);
    b.time_ids.push_back(it.time_id);
    b.treated.push_back(it.treated ? 1.0 : 0.0);
    b.charged.push_back(it.charged ? 1.0 : 0.0);
  }
  return b;
}

}  // namespace ecthub::causal
