#include "causal/evaluate.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::causal {

std::vector<bool> decide_by_uplift(const std::vector<double>& uplift, double threshold) {
  std::vector<bool> out(uplift.size(), false);
  for (std::size_t i = 0; i < uplift.size(); ++i) out[i] = uplift[i] > threshold;
  return out;
}

std::vector<bool> decide_by_strata(const std::vector<StrataPrediction>& preds,
                                   double discount) {
  if (discount <= 0.0 || discount >= 1.0) {
    throw std::invalid_argument("decide_by_strata: discount must be in (0, 1)");
  }
  std::vector<bool> out(preds.size(), false);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    out[i] = (1.0 - discount) * preds[i].p_incentive - discount * preds[i].p_always > 0.0;
  }
  return out;
}

std::vector<double> strata_gain_scores(const std::vector<StrataPrediction>& preds,
                                       double discount) {
  if (discount <= 0.0 || discount >= 1.0) {
    throw std::invalid_argument("strata_gain_scores: discount must be in (0, 1)");
  }
  std::vector<double> scores(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    scores[i] = (1.0 - discount) * preds[i].p_incentive - discount * preds[i].p_always;
  }
  return scores;
}

std::vector<bool> decide_top_k(const std::vector<double>& scores, std::size_t k) {
  std::vector<bool> out(scores.size(), false);
  if (k == 0) return out;
  // No method is forced to discount items its own score marks unprofitable:
  // only positive-score items are eligible for the budget.
  std::vector<std::size_t> order;
  order.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] > 0.0) order.push_back(i);
  }
  k = std::min(k, order.size());
  if (k == 0) return out;
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  for (std::size_t i = 0; i < k; ++i) out[order[i]] = true;
  return out;
}

DiscountOutcome evaluate_decisions(const std::string& method, double discount,
                                   const std::vector<Item>& items,
                                   const std::vector<bool>& discounted) {
  if (items.size() != discounted.size()) {
    throw std::invalid_argument("evaluate_decisions: size mismatch");
  }
  if (discount <= 0.0 || discount >= 1.0) {
    throw std::invalid_argument("evaluate_decisions: discount must be in (0, 1)");
  }
  DiscountOutcome out;
  out.method = method;
  out.discount = discount;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!discounted[i]) continue;
    switch (items[i].stratum) {
      case ev::Stratum::kNone:
        ++out.none;
        break;
      case ev::Stratum::kIncentive:
        ++out.incentive;
        out.reward += 1.0 - discount;
        break;
      case ev::Stratum::kAlways:
        ++out.always;
        out.reward -= discount;
        break;
    }
  }
  return out;
}

StationStrataCurves strata_curves_for_station(const std::vector<Item>& items,
                                              const std::vector<StrataPrediction>& preds,
                                              std::size_t station_id) {
  if (items.size() != preds.size()) {
    throw std::invalid_argument("strata_curves_for_station: size mismatch");
  }
  StationStrataCurves curves;
  curves.p_none.assign(24, 0.0);
  curves.p_incentive.assign(24, 0.0);
  curves.p_always.assign(24, 0.0);
  std::vector<std::size_t> counts(24, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].station_id != station_id) continue;
    const std::size_t h = items[i].hour;
    if (h >= 24) throw std::out_of_range("strata_curves_for_station: bad hour");
    curves.p_none[h] += preds[i].p_none;
    curves.p_incentive[h] += preds[i].p_incentive;
    curves.p_always[h] += preds[i].p_always;
    ++counts[h];
  }
  for (std::size_t h = 0; h < 24; ++h) {
    if (counts[h] == 0) continue;
    const double n = static_cast<double>(counts[h]);
    curves.p_none[h] /= n;
    curves.p_incentive[h] /= n;
    curves.p_always[h] /= n;
  }
  return curves;
}

PeriodDistribution period_distribution(const std::vector<Item>& items,
                                       const std::vector<StrataPrediction>& preds) {
  if (items.size() != preds.size()) {
    throw std::invalid_argument("period_distribution: size mismatch");
  }
  PeriodDistribution dist;
  std::array<double, 4> totals{};
  std::array<std::array<double, 3>, 4> mass{};
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t period = items[i].hour / 6;
    if (period >= 4) throw std::out_of_range("period_distribution: bad hour");
    mass[period][0] += preds[i].p_none;
    mass[period][1] += preds[i].p_incentive;
    mass[period][2] += preds[i].p_always;
    totals[period] += 1.0;
  }
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t s = 0; s < 3; ++s) {
      dist.shares[p][s] = totals[p] == 0.0 ? 0.0 : mass[p][s] / totals[p];
    }
  }
  return dist;
}

double strata_accuracy(const std::vector<Item>& items,
                       const std::vector<StrataPrediction>& preds) {
  if (items.size() != preds.size()) throw std::invalid_argument("strata_accuracy: size mismatch");
  if (items.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (preds[i].argmax() == items[i].stratum) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(items.size());
}

}  // namespace ecthub::causal
