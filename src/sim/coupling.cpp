#include "sim/coupling.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace ecthub::sim {

CouplingBus::CouplingBus(std::vector<std::vector<std::size_t>> neighbors)
    : neighbors_(std::move(neighbors)),
      exported_(neighbors_.size(), 0.0),
      pending_(neighbors_.size(), 0.0) {
  for (std::size_t lane = 0; lane < neighbors_.size(); ++lane) {
    for (const std::size_t n : neighbors_[lane]) {
      if (n >= neighbors_.size()) {
        throw std::invalid_argument("CouplingBus: lane " + std::to_string(lane) +
                                    " names neighbor " + std::to_string(n) +
                                    " outside the fleet");
      }
      if (n == lane) {
        throw std::invalid_argument("CouplingBus: lane " + std::to_string(lane) +
                                    " names itself as a neighbor");
      }
    }
  }
}

void CouplingBus::exchange() {
  for (std::size_t lane = 0; lane < exported_.size(); ++lane) {
    const double kw = exported_[lane];
    exported_[lane] = 0.0;
    if (kw <= 0.0 || neighbors_[lane].empty()) continue;
    const double share = kw / static_cast<double>(neighbors_[lane].size());
    for (const std::size_t n : neighbors_[lane]) pending_[n] += share;
  }
}

}  // namespace ecthub::sim
