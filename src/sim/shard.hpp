// ShardPlan / shard_fleet_jobs: deterministic contiguous partitioning of a
// fleet job list for process-sharded sweeps.
//
// plan_shard(count, i, n) is a pure function: shard i of n owns the
// contiguous job range [begin, end), ranges over all i tile [0, count)
// exactly (every job in exactly one shard, sizes differing by at most one,
// larger shards first).  shard_fleet_jobs copies that range out of a
// make_fleet_jobs job list; the runner executes it with
// FleetRunnerConfig::hub_id_offset = begin, so every hub keeps its global
// mix_seed(base_seed, hub_id) stream — shard membership cannot change any
// hub's trajectory, which is what makes the merged report bit-identical to
// the single-process run (tests/test_shard.cpp pins it end to end).
//
// Coupled (metro) jobs are rejected for n > 1: the CouplingBus exchange is
// slot-synchronous across the whole fleet and FleetJob::neighbors index the
// global job list, so a coupled fleet cannot be split across processes
// without changing trajectories.  n == 1 passes any job list through.
#pragma once

#include "sim/fleet_runner.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace ecthub::sim {

/// One shard's slice of a job list: shard `shard_index` of `shard_count`
/// over `job_count` jobs owns global job (and hub) ids [begin, end).
struct ShardPlan {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t job_count = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

/// Contiguous balanced partition of [0, job_count) into shard_count ranges:
/// shard i gets job_count/shard_count jobs, the first job_count%shard_count
/// shards one extra.  Pure function of its arguments.  Throws
/// std::invalid_argument when shard_count == 0 or shard_index >= shard_count.
[[nodiscard]] ShardPlan plan_shard(std::size_t job_count, std::size_t shard_index,
                                   std::size_t shard_count);

/// Parses an "i/n" shard spec (e.g. "0/4") into {shard_index, shard_count}.
/// Strict: exactly one '/', both sides full-token decimal digit runs —
/// "1/4abc", "0x1/4", " 0/4" and "1//4" all throw std::invalid_argument
/// (std::stoull would silently stop at the first non-digit), as do
/// shard_count == 0 and shard_index >= shard_count.
[[nodiscard]] std::pair<std::size_t, std::size_t> parse_shard_spec(
    const std::string& spec);

/// Copies shard `shard_index` of `shard_count`'s job range out of `jobs`
/// (make_fleet_jobs / make_metro_fleet_jobs output).  Throws
/// std::invalid_argument on invalid shard coordinates, and on any coupled
/// job (FleetJob::coupled) when shard_count > 1 — coupled fleets exchange
/// demand fleet-wide at every slot and cannot be process-sharded.
[[nodiscard]] std::vector<FleetJob> shard_fleet_jobs(const std::vector<FleetJob>& jobs,
                                                     std::size_t shard_index,
                                                     std::size_t shard_count);

}  // namespace ecthub::sim
