// shard_io: versioned, endian-explicit binary serialization for shard
// artifacts — one shard's ShardPlan, its per-hub results, and its partial
// AggregateReport — following the fail-loudly-at-load conventions of
// nn/serialize and DrlCheckpoint.
//
// Format (version 1, every integer and double-bit-pattern little-endian,
// written byte by byte so the encoding is identical on any host):
//
//   magic   "ECSH"                       4 bytes
//   u32     format version (= 1)
//   u32     section count   (= 3)
//   3 ×   { u32 section id, u64 payload size, payload }
//           id 1  plan     shard_index/shard_count/job_count/begin/end (u64)
//           id 2  results  u64 count + HubRunResult records (strings as
//                          u64 length + bytes; doubles as u64 bit patterns;
//                          SchedulerKind by name)
//           id 3  report   GroupStats totals + keyed GroupStats maps; each
//                          ExactSum as its 34 raw limbs, so merging reports
//                          loaded from disk stays exact
//   u64     FNV-1a checksum over every preceding byte
//
// load_shard rejects malformed input with a typed error, checked in this
// order so each corruption class maps to a distinct type: magic →
// ShardMagicError, version → ShardVersionError, any size shortfall →
// ShardTruncatedError, checksum (a flipped payload byte) →
// ShardChecksumError, structural nonsense inside a checksummed payload →
// ShardFormatError.  No input bytes are trusted before these checks pass.
#pragma once

#include "sim/report.hpp"
#include "sim/shard.hpp"

#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ecthub::sim {

/// Base of every shard_io failure (also raised directly for file-system
/// errors: unreadable path, failed write).
class ShardIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The input ends before the bytes its own headers promise.
class ShardTruncatedError : public ShardIoError {
 public:
  using ShardIoError::ShardIoError;
};

/// The input does not start with the shard magic — not a shard file.
class ShardMagicError : public ShardIoError {
 public:
  using ShardIoError::ShardIoError;
};

/// The input's format version is not the one this build writes.
class ShardVersionError : public ShardIoError {
 public:
  using ShardIoError::ShardIoError;
};

/// The input is the right shape but its bytes fail the FNV-1a checksum.
class ShardChecksumError : public ShardIoError {
 public:
  using ShardIoError::ShardIoError;
};

/// The checksummed payload is structurally inconsistent (impossible counts,
/// unknown scheduler name, plan/results disagreement, trailing garbage).
class ShardFormatError : public ShardIoError {
 public:
  using ShardIoError::ShardIoError;
};

/// One shard artifact: which slice of the sweep this is, its per-hub
/// results (hub_id == plan.begin + k for record k), and the partial report
/// aggregated from exactly those results.
struct ShardData {
  ShardPlan plan;
  std::vector<HubRunResult> results;
  AggregateReport report;
};

/// Serializes to the format above.  Deterministic: equal ShardData values
/// produce byte-identical output (the identity tests compare these bytes).
[[nodiscard]] std::string serialize_shard(const ShardData& shard);

/// Serializes just an AggregateReport as a section-3 payload — the byte
/// string the merge-identity guarantee is stated over.
[[nodiscard]] std::string serialize_report(const AggregateReport& report);

/// Parses serialize_shard output; throws the typed errors above.
[[nodiscard]] ShardData parse_shard(std::string_view bytes);

void save_shard(const std::filesystem::path& path, const ShardData& shard);
[[nodiscard]] ShardData load_shard(const std::filesystem::path& path);

}  // namespace ecthub::sim
