#include "sim/metro.hpp"

#include "sim/scenario.hpp"

#include <stdexcept>
#include <utility>

namespace ecthub::sim {

std::vector<FleetJob> make_metro_fleet_jobs(
    const spatial::MetroMap& metro, const ScenarioRegistry& registry,
    const std::vector<std::string>& scenario_keys, std::size_t episode_days,
    SchedulerKind scheduler, std::shared_ptr<const policy::DrlCheckpoint> checkpoint) {
  if (scenario_keys.empty()) {
    throw std::invalid_argument("make_metro_fleet_jobs: no scenario keys");
  }
  const std::size_t count = metro.hubs().size();
  std::vector<FleetJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& key = scenario_keys[i % scenario_keys.size()];
    const Scenario& scenario = registry.at(key);
    FleetJob job;
    // The scenario preset gives the hub its character (plant, prices,
    // weather, EV behaviour); the metro site overlays density class, plug
    // count and demand intensity.  The seed is overridden by the runner.
    job.hub = scenario.make_hub(key + "-" + std::to_string(i), 0);
    metro.apply_site(i, job.hub);
    job.env = scenario.env;
    job.env.episode_days = episode_days;
    job.env.coupling.enabled = true;
    job.env.coupling.through_rate = metro.through_rate(i);
    job.env.coupling.front_seed = metro.front_seed();
    // A modest metro-wide outage front: about one event per month shared by
    // every hub (correlated grid stress is exactly what the coupling layer
    // exists to exercise).
    job.env.coupling.outage = core::OutageModel{1.0, 1.0, 6.0};
    job.scenario = key;
    job.scheduler = scheduler;
    job.checkpoint = checkpoint;
    job.neighbors = metro.hubs()[i].neighbors;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace ecthub::sim
