#include "sim/report.hpp"

#include <utility>

namespace ecthub::sim {

void GroupStats::absorb(const HubRunResult& r) {
  ++hubs;
  episodes += r.episodes;
  revenue += r.revenue;
  grid_cost += r.grid_cost;
  bp_cost += r.bp_cost;
  profit += r.profit;
  soc_mean_sum += r.soc.mean;
  through_kwh += r.through_kwh;
  spill_exported_kwh += r.spill_exported_kwh;
  spill_served_kwh += r.spill_served_kwh;
  spill_dropped_kwh += r.spill_dropped_kwh;
  outage_slots += r.outage_slots;
}

void GroupStats::merge(const GroupStats& other) noexcept {
  hubs += other.hubs;
  episodes += other.episodes;
  revenue += other.revenue;
  grid_cost += other.grid_cost;
  bp_cost += other.bp_cost;
  profit += other.profit;
  soc_mean_sum += other.soc_mean_sum;
  through_kwh += other.through_kwh;
  spill_exported_kwh += other.spill_exported_kwh;
  spill_served_kwh += other.spill_served_kwh;
  spill_dropped_kwh += other.spill_dropped_kwh;
  outage_slots += other.outage_slots;
}

AggregateReport::AggregateReport(const std::vector<HubRunResult>& results) {
  for (const HubRunResult& r : results) add(r);
}

void AggregateReport::add(const HubRunResult& r) {
  totals_.absorb(r);
  by_scenario_[r.scenario].absorb(r);
  by_scheduler_[to_string(r.scheduler)].absorb(r);
}

namespace {

void add_group_row(TextTable& table, const std::string& label, const GroupStats& g) {
  table.begin_row()
      .add(label)
      .add_int(static_cast<long long>(g.hubs))
      .add_int(static_cast<long long>(g.episodes))
      .add_double(g.revenue.value(), 2)
      .add_double(g.grid_cost.value(), 2)
      .add_double(g.bp_cost.value(), 2)
      .add_double(g.profit.value(), 2)
      .add_double(g.profit_per_hub(), 2)
      .add_double(g.mean_soc(), 3)
      .add_double(g.through_kwh.value(), 1)
      .add_double(g.spill_exported_kwh.value(), 1)
      .add_double(g.spill_served_kwh.value(), 1)
      .add_double(g.spill_dropped_kwh.value(), 1)
      .add_int(static_cast<long long>(g.outage_slots));
}

TextTable group_table(const std::string& key_header,
                      const std::map<std::string, GroupStats>& groups,
                      const GroupStats& totals) {
  TextTable table({key_header, "hubs", "episodes", "revenue($)", "grid($)", "wear($)",
                   "profit($)", "profit/hub($)", "mean SoC", "through(kWh)",
                   "spill-out(kWh)", "spill-in(kWh)", "spill-drop(kWh)", "outages"});
  for (const auto& [key, stats] : groups) add_group_row(table, key, stats);
  add_group_row(table, "TOTAL", totals);
  return table;
}

}  // namespace

void AggregateReport::merge(const AggregateReport& other) {
  totals_.merge(other.totals_);
  for (const auto& [key, stats] : other.by_scenario_) by_scenario_[key].merge(stats);
  for (const auto& [key, stats] : other.by_scheduler_) by_scheduler_[key].merge(stats);
}

AggregateReport AggregateReport::from_groups(GroupStats totals,
                                             std::map<std::string, GroupStats> by_scenario,
                                             std::map<std::string, GroupStats> by_scheduler) {
  AggregateReport report;
  report.totals_ = totals;
  report.by_scenario_ = std::move(by_scenario);
  report.by_scheduler_ = std::move(by_scheduler);
  return report;
}

TextTable AggregateReport::scenario_table() const {
  return group_table("scenario", by_scenario_, totals_);
}

TextTable AggregateReport::scheduler_table() const {
  return group_table("scheduler", by_scheduler_, totals_);
}

TextTable per_hub_table(const std::vector<HubRunResult>& results) {
  TextTable table({"hub", "scenario", "scheduler", "seed", "profit($)", "revenue($)",
                   "SoC first", "SoC last", "SoC mean"});
  for (const HubRunResult& r : results) {
    table.begin_row()
        .add(r.hub_name)
        .add(r.scenario)
        .add(to_string(r.scheduler))
        .add(std::to_string(r.seed))
        .add_double(r.profit, 2)
        .add_double(r.revenue, 2)
        .add_double(r.soc.first, 3)
        .add_double(r.soc.last, 3)
        .add_double(r.soc.mean, 3);
  }
  return table;
}

}  // namespace ecthub::sim
