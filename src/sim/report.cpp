#include "sim/report.hpp"

namespace ecthub::sim {

void GroupStats::absorb(const HubRunResult& r) {
  ++hubs;
  episodes += r.episodes;
  revenue += r.revenue;
  grid_cost += r.grid_cost;
  bp_cost += r.bp_cost;
  profit += r.profit;
  soc_mean_sum += r.soc.mean;
  spill_exported_kwh += r.spill_exported_kwh;
  spill_served_kwh += r.spill_served_kwh;
}

AggregateReport::AggregateReport(const std::vector<HubRunResult>& results) {
  for (const HubRunResult& r : results) add(r);
}

void AggregateReport::add(const HubRunResult& r) {
  totals_.absorb(r);
  by_scenario_[r.scenario].absorb(r);
  by_scheduler_[to_string(r.scheduler)].absorb(r);
}

namespace {

void merge_group(GroupStats& into, const GroupStats& from) {
  into.hubs += from.hubs;
  into.episodes += from.episodes;
  into.revenue += from.revenue;
  into.grid_cost += from.grid_cost;
  into.bp_cost += from.bp_cost;
  into.profit += from.profit;
  into.soc_mean_sum += from.soc_mean_sum;
  into.spill_exported_kwh += from.spill_exported_kwh;
  into.spill_served_kwh += from.spill_served_kwh;
}

void add_group_row(TextTable& table, const std::string& label, const GroupStats& g) {
  table.begin_row()
      .add(label)
      .add_int(static_cast<long long>(g.hubs))
      .add_int(static_cast<long long>(g.episodes))
      .add_double(g.revenue, 2)
      .add_double(g.grid_cost, 2)
      .add_double(g.bp_cost, 2)
      .add_double(g.profit, 2)
      .add_double(g.profit_per_hub(), 2)
      .add_double(g.mean_soc(), 3)
      .add_double(g.spill_exported_kwh, 1)
      .add_double(g.spill_served_kwh, 1);
}

TextTable group_table(const std::string& key_header,
                      const std::map<std::string, GroupStats>& groups,
                      const GroupStats& totals) {
  TextTable table({key_header, "hubs", "episodes", "revenue($)", "grid($)", "wear($)",
                   "profit($)", "profit/hub($)", "mean SoC", "spill-out(kWh)",
                   "spill-in(kWh)"});
  for (const auto& [key, stats] : groups) add_group_row(table, key, stats);
  add_group_row(table, "TOTAL", totals);
  return table;
}

}  // namespace

void AggregateReport::merge(const AggregateReport& other) {
  merge_group(totals_, other.totals_);
  for (const auto& [key, stats] : other.by_scenario_) merge_group(by_scenario_[key], stats);
  for (const auto& [key, stats] : other.by_scheduler_) {
    merge_group(by_scheduler_[key], stats);
  }
}

TextTable AggregateReport::scenario_table() const {
  return group_table("scenario", by_scenario_, totals_);
}

TextTable AggregateReport::scheduler_table() const {
  return group_table("scheduler", by_scheduler_, totals_);
}

TextTable per_hub_table(const std::vector<HubRunResult>& results) {
  TextTable table({"hub", "scenario", "scheduler", "seed", "profit($)", "revenue($)",
                   "SoC first", "SoC last", "SoC mean"});
  for (const HubRunResult& r : results) {
    table.begin_row()
        .add(r.hub_name)
        .add(r.scenario)
        .add(to_string(r.scheduler))
        .add(std::to_string(r.seed))
        .add_double(r.profit, 2)
        .add_double(r.revenue, 2)
        .add_double(r.soc.first, 3)
        .add_double(r.soc.last, 3)
        .add_double(r.soc.mean, 3);
  }
  return table;
}

}  // namespace ecthub::sim
