#include "sim/fleet_runner.hpp"

#include "common/crew.hpp"
#include "common/parse.hpp"
#include "common/time_grid.hpp"
#include "policy/rule_policies.hpp"
#include "sim/coupling.hpp"
#include "sim/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

namespace ecthub::sim {

namespace {
// The policy stream must be independent of the hub stream: xor with a fixed
// tag so a RandomPolicy never replays the env's own draws.
constexpr std::uint64_t kPolicySeedTag = 0xec7ec7ec7ec7ec7eULL;

// The barrier-synchronized worker crew of the threaded lockstep path lives
// in common/crew.hpp (it is shared with rl::VecRolloutCollector); the alias
// keeps the lockstep code reading in fleet terms.
using LockstepCrew = ecthub::BarrierCrew;
}  // namespace

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kNoBattery, SchedulerKind::kTou,    SchedulerKind::kGreedyPrice,
      SchedulerKind::kForecast,  SchedulerKind::kRandom, SchedulerKind::kDrl};
  return kinds;
}

SchedulerKind scheduler_kind_from_string(const std::string& name) {
  return parse_enum_ci(
      name, all_scheduler_kinds(), [](SchedulerKind kind) { return to_string(kind); },
      "scheduler_kind_from_string: unknown scheduler");
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoBattery: return "none";
    case SchedulerKind::kTou: return "tou";
    case SchedulerKind::kGreedyPrice: return "greedy";
    case SchedulerKind::kForecast: return "forecast";
    case SchedulerKind::kRandom: return "random";
    case SchedulerKind::kDrl: return "drl";
  }
  throw std::invalid_argument("to_string: bad SchedulerKind");
}

const std::vector<LockstepGemm>& all_lockstep_gemm_modes() {
  static const std::vector<LockstepGemm> modes = {LockstepGemm::kCoordinator,
                                                  LockstepGemm::kWorker};
  return modes;
}

LockstepGemm lockstep_gemm_from_string(const std::string& name) {
  return parse_enum_ci(
      name, all_lockstep_gemm_modes(), [](LockstepGemm mode) { return to_string(mode); },
      "lockstep_gemm_from_string: unknown mode");
}

std::string to_string(LockstepGemm mode) {
  switch (mode) {
    case LockstepGemm::kCoordinator: return "coordinator";
    case LockstepGemm::kWorker: return "worker";
  }
  throw std::invalid_argument("to_string: bad LockstepGemm");
}

std::unique_ptr<policy::Policy> make_policy(
    SchedulerKind kind, std::uint64_t seed, const policy::ObservationLayout& layout,
    const std::shared_ptr<const policy::DrlCheckpoint>& checkpoint) {
  switch (kind) {
    case SchedulerKind::kNoBattery: return std::make_unique<policy::NoBatteryPolicy>();
    case SchedulerKind::kTou: return std::make_unique<policy::TouPolicy>(layout);
    case SchedulerKind::kGreedyPrice:
      return std::make_unique<policy::GreedyPricePolicy>(layout);
    case SchedulerKind::kForecast: return std::make_unique<policy::ForecastPolicy>(layout);
    case SchedulerKind::kRandom: return std::make_unique<policy::RandomPolicy>(seed);
    case SchedulerKind::kDrl: {
      if (!checkpoint) {
        throw std::invalid_argument(
            "make_policy: SchedulerKind::kDrl needs a trained DrlCheckpoint "
            "(attach one to the FleetJob)");
      }
      if (checkpoint->config.state_dim != layout.dim()) {
        throw std::invalid_argument(
            "make_policy: DRL checkpoint was trained for state_dim " +
            std::to_string(checkpoint->config.state_dim) + " but the hub emits " +
            std::to_string(layout.dim()));
      }
      return std::make_unique<policy::DrlPolicy>(*checkpoint);
    }
  }
  throw std::invalid_argument("make_policy: bad SchedulerKind");
}

std::vector<FleetJob> make_fleet_jobs(const ScenarioRegistry& registry,
                                      const std::vector<std::string>& scenario_keys,
                                      std::size_t count, std::size_t episode_days,
                                      SchedulerKind scheduler,
                                      std::shared_ptr<const policy::DrlCheckpoint> checkpoint) {
  if (scenario_keys.empty()) {
    throw std::invalid_argument("make_fleet_jobs: no scenario keys");
  }
  std::vector<FleetJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& key = scenario_keys[i % scenario_keys.size()];
    const Scenario& scenario = registry.at(key);
    FleetJob job;
    job.hub = scenario.make_hub(key + "-" + std::to_string(i), 0);
    job.env = scenario.env;
    job.env.episode_days = episode_days;
    job.scenario = key;
    job.scheduler = scheduler;
    job.checkpoint = checkpoint;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

FleetRunner::FleetRunner(FleetRunnerConfig cfg) : cfg_(cfg) {
  if (cfg_.episodes_per_hub == 0) {
    throw std::invalid_argument("FleetRunnerConfig: episodes_per_hub == 0");
  }
}

HubRunResult FleetRunner::run_job(const FleetJob& job, std::size_t hub_id,
                                  const FleetRunnerConfig& cfg) {
  if (job.coupled()) {
    throw std::invalid_argument(
        "FleetRunner::run_job: job '" + job.hub.name +
        "' is coupled (env.coupling.enabled or neighbors set); per-hub "
        "execution cannot honor the slot-synchronous exchange — use "
        "run_lockstep");
  }
  const std::uint64_t hub_seed = mix_seed(cfg.base_seed, hub_id);

  core::HubConfig hub = job.hub;
  hub.seed = hub_seed;
  core::EctHubEnv env(std::move(hub), job.env);
  const auto pol = make_policy(job.scheduler, hub_seed ^ kPolicySeedTag,
                               env.observation_layout(), job.checkpoint);

  HubRunResult r;
  r.hub_id = hub_id;
  r.hub_name = job.hub.name;
  r.scenario = job.scenario;
  r.scheduler = job.scheduler;
  r.seed = hub_seed;
  r.episodes = cfg.episodes_per_hub;
  r.slots_per_episode = env.slots_per_episode();
  r.episode_profit.reserve(cfg.episodes_per_hub);

  // One persistent observation buffer drives the whole job: reset_into /
  // step_into regenerate and observe in place, so after the first episode's
  // warm-up an episode performs zero heap allocations.
  std::vector<double> state(env.state_dim());
  for (std::size_t ep = 0; ep < cfg.episodes_per_hub; ++ep) {
    env.reset_into(state);
    pol->begin_episode();
    const bool record_soc = ep + 1 == cfg.episodes_per_hub;
    SocDigest soc;
    if (record_soc) {
      soc.first = env.soc_frac();
      soc.min = std::numeric_limits<double>::infinity();
      soc.max = -std::numeric_limits<double>::infinity();
    }
    bool done = false;
    while (!done) {
      const core::StepOutcome sr = env.step_into(pol->decide(state), state);
      done = sr.done;
      if (record_soc) {
        const double s = env.soc_frac();
        soc.last = s;
        soc.min = std::min(soc.min, s);
        soc.max = std::max(soc.max, s);
        soc.checksum += s;
        ++soc.samples;
      }
    }
    if (record_soc) {
      soc.mean = soc.samples > 0 ? soc.checksum / static_cast<double>(soc.samples) : 0.0;
      r.soc = soc;
    }
    const core::ProfitLedger& ledger = env.ledger();
    r.revenue += ledger.total_revenue();
    r.grid_cost += ledger.total_grid_cost();
    r.bp_cost += ledger.total_bp_cost();
    r.profit += ledger.total_profit();
    r.episode_profit.push_back(ledger.total_profit());
  }
  return r;
}

std::vector<HubRunResult> FleetRunner::run(const std::vector<FleetJob>& jobs) const {
  for (const FleetJob& job : jobs) {
    if (job.coupled()) {
      throw std::invalid_argument(
          "FleetRunner::run: job '" + job.hub.name +
          "' is coupled (env.coupling.enabled or neighbors set); per-hub "
          "execution cannot honor the slot-synchronous exchange — use "
          "run_lockstep");
    }
  }
  std::vector<HubRunResult> results(jobs.size());
  if (jobs.empty()) return results;

  std::size_t threads = cfg_.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, jobs.size());

  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_job(jobs[i], cfg_.hub_id_offset + i, cfg_);
    }
    return results;
  }

  // Work-stealing by atomic index: each worker owns the result slot of the
  // job it claims, so no two threads ever touch the same element.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = run_job(jobs[i], cfg_.hub_id_offset + i, cfg_);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Drain the queue so the other workers stop claiming jobs and the
        // error surfaces immediately instead of after the full sweep.
        next.store(jobs.size(), std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<HubRunResult> FleetRunner::run_lockstep(const std::vector<FleetJob>& jobs) const {
  constexpr std::size_t kNoGroup = std::numeric_limits<std::size_t>::max();

  std::vector<HubRunResult> results(jobs.size());
  if (jobs.empty()) return results;

  // One lane per hub: its env, observation target and episode bookkeeping.
  // A lane's observation lives either in its fixed row of the group's
  // observation matrix (shared stateless policies) or in its own `state`
  // buffer (per-hub stateful policies); either way it is written in place by
  // reset_into/step_into, so the steady-state slot loop never allocates.
  struct Lane {
    std::unique_ptr<core::EctHubEnv> env;
    std::unique_ptr<policy::Policy> own_pol;  ///< stateful policies only
    std::size_t group = kNoGroup;             ///< shared-policy group index
    std::size_t row = 0;                      ///< fixed row in the group matrix
    std::vector<double> state;                ///< stateful lanes only
    std::size_t episodes_done = 0;
    std::size_t action = 0;
    double dt_hours = 1.0;  ///< slot duration, for kW -> kWh spill accounting
    bool active = true;
    bool needs_begin = true;  ///< episode reset pending (runs in phase A)
    bool record_soc = false;
    SocDigest soc;
    HubRunResult result;
  };
  // A shared stateless policy and its whole-fleet observation batch.  Rows
  // are assigned once at setup; a finished lane keeps its (stale, finite)
  // row, which is safe because decide_batch computes every row
  // independently — and means the batch needs no per-slot regrouping.
  struct Group {
    std::unique_ptr<policy::Policy> pol;
    std::size_t dim = 0;
    std::size_t rows = 0;
    bool any_active = false;
    nn::Matrix obs;
    std::vector<std::size_t> actions;
  };

  // The coupled-fleet exchange bus (absent on a fully uncoupled fleet, whose
  // slot loop then takes exactly the pre-coupling path).  Neighbor lists are
  // validated by the bus constructor before any thread spawns.
  std::optional<CouplingBus> bus;
  for (const FleetJob& job : jobs) {
    if (!job.coupled()) continue;
    std::vector<std::vector<std::size_t>> neighbors(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) neighbors[i] = jobs[i].neighbors;
    bus.emplace(std::move(neighbors));
    break;
  }

  std::vector<Lane> lanes(jobs.size());
  std::vector<Group> groups;
  // Lanes whose policy is a pure function of the observation share one
  // instance per (kind, checkpoint, layout); value -1 marks a stateful kind
  // that must stay one-instance-per-hub.
  using GroupKey = std::tuple<int, const void*, std::size_t>;
  std::map<GroupKey, std::ptrdiff_t> group_of;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const FleetJob& job = jobs[i];
    Lane& lane = lanes[i];
    const std::uint64_t hub_seed = mix_seed(cfg_.base_seed, cfg_.hub_id_offset + i);

    core::HubConfig hub = job.hub;
    hub.seed = hub_seed;
    lane.env = std::make_unique<core::EctHubEnv>(std::move(hub), job.env);
    const policy::ObservationLayout layout = lane.env->observation_layout();

    const GroupKey key{static_cast<int>(job.scheduler), job.checkpoint.get(),
                       layout.lookback};
    const auto it = group_of.find(key);
    if (it != group_of.end() && it->second >= 0) {
      lane.group = static_cast<std::size_t>(it->second);
    } else if (it != group_of.end()) {
      lane.own_pol =
          make_policy(job.scheduler, hub_seed ^ kPolicySeedTag, layout, job.checkpoint);
    } else {
      auto pol =
          make_policy(job.scheduler, hub_seed ^ kPolicySeedTag, layout, job.checkpoint);
      if (pol->stateless()) {
        lane.group = groups.size();
        group_of[key] = static_cast<std::ptrdiff_t>(groups.size());
        Group g;
        g.pol = std::move(pol);
        g.dim = layout.dim();
        groups.push_back(std::move(g));
      } else {
        group_of[key] = -1;
        lane.own_pol = std::move(pol);
      }
    }
    if (lane.group != kNoGroup) {
      lane.row = groups[lane.group].rows++;
    } else {
      lane.state.resize(lane.env->state_dim());
    }

    lane.dt_hours = TimeGrid(job.env.episode_days, job.env.slots_per_day).slot_hours();
    lane.result.hub_id = cfg_.hub_id_offset + i;
    lane.result.hub_name = job.hub.name;
    lane.result.scenario = job.scenario;
    lane.result.scheduler = job.scheduler;
    lane.result.seed = hub_seed;
    lane.result.episodes = cfg_.episodes_per_hub;
    lane.result.slots_per_episode = lane.env->slots_per_episode();
    lane.result.episode_profit.reserve(cfg_.episodes_per_hub);
  }
  for (Group& g : groups) {
    g.obs = nn::Matrix(g.rows, g.dim);
    g.actions.resize(g.rows);
  }

  // The lane's in-place observation target.
  const auto obs_of = [&](Lane& lane) -> std::span<double> {
    if (lane.group == kNoGroup) return std::span<double>(lane.state);
    Group& g = groups[lane.group];
    return std::span<double>(g.obs.data().data() + lane.row * g.dim, g.dim);
  };

  std::atomic<std::size_t> active_count{lanes.size()};

  // Phase A: turn over finished episodes (every lane starts with one
  // pending) and let per-hub stateful policies decide.  Shared stateless
  // policies have no per-episode state by contract, so no begin_episode()
  // call touches the shared instance from a worker thread.
  const auto phase_a = [&](Lane& lane) {
    if (!lane.active) return;
    if (lane.needs_begin) {
      lane.needs_begin = false;
      // A fresh episode starts clean: demand routed across the episode
      // boundary is dropped (lane-owned slot, so this is worker-safe).
      if (bus) bus->drop_pending(static_cast<std::size_t>(&lane - lanes.data()));
      lane.env->reset_into(obs_of(lane));
      if (lane.own_pol) lane.own_pol->begin_episode();
      lane.record_soc = lane.episodes_done + 1 == cfg_.episodes_per_hub;
      if (lane.record_soc) {
        lane.soc = SocDigest{};
        lane.soc.first = lane.env->soc_frac();
        lane.soc.min = std::numeric_limits<double>::infinity();
        lane.soc.max = -std::numeric_limits<double>::infinity();
      }
    }
    if (lane.own_pol) lane.action = lane.own_pol->decide(lane.state);
  };

  // Phase B, coordinator placement (LockstepGemm::kCoordinator): one batched
  // policy call per live group — the matrix-matrix fleet slot; for an
  // ECT-DRL fleet every hub's action comes out of a single forward pass —
  // then scatter the actions back.
  const auto phase_b = [&]() {
    for (Group& g : groups) g.any_active = false;
    for (const Lane& lane : lanes) {
      if (lane.active && lane.group != kNoGroup) groups[lane.group].any_active = true;
    }
    for (Group& g : groups) {
      if (g.any_active) g.pol->decide_batch(g.obs, std::span<std::size_t>(g.actions));
    }
    for (Lane& lane : lanes) {
      if (lane.active && lane.group != kNoGroup) {
        lane.action = groups[lane.group].actions[lane.row];
      }
    }
  };

  // Phase C: advance every active lane one slot, writing the next
  // observation straight into the lane's row/buffer, and close out finished
  // episodes.
  const auto phase_c = [&](Lane& lane) {
    if (!lane.active) return;
    core::StepOutcome sr;
    if (bus) {
      // Step with the imports routed here at the previous slot barrier and
      // deposit this slot's export for the coordinator to route at the next
      // one.  Only this worker touches the lane's bus slots this phase.
      const auto li = static_cast<std::size_t>(&lane - lanes.data());
      core::SlotCoupling sc;
      sc.import_kw = bus->take(li);
      sr = lane.env->step_into(lane.action, obs_of(lane), sc);
      bus->deposit(li, sc.export_kw);
      lane.result.through_kwh += sc.through_kw * lane.dt_hours;
      lane.result.spill_exported_kwh += sc.export_kw * lane.dt_hours;
      lane.result.spill_served_kwh += sc.served_import_kw * lane.dt_hours;
      lane.result.spill_dropped_kwh += sc.dropped_import_kw * lane.dt_hours;
      if (sc.outage) ++lane.result.outage_slots;
    } else {
      sr = lane.env->step_into(lane.action, obs_of(lane));
    }
    if (lane.record_soc) {
      const double s = lane.env->soc_frac();
      lane.soc.last = s;
      lane.soc.min = std::min(lane.soc.min, s);
      lane.soc.max = std::max(lane.soc.max, s);
      lane.soc.checksum += s;
      ++lane.soc.samples;
    }
    if (!sr.done) return;
    if (lane.record_soc) {
      lane.soc.mean = lane.soc.samples > 0
                          ? lane.soc.checksum / static_cast<double>(lane.soc.samples)
                          : 0.0;
      lane.result.soc = lane.soc;
    }
    const core::ProfitLedger& ledger = lane.env->ledger();
    lane.result.revenue += ledger.total_revenue();
    lane.result.grid_cost += ledger.total_grid_cost();
    lane.result.bp_cost += ledger.total_bp_cost();
    lane.result.profit += ledger.total_profit();
    lane.result.episode_profit.push_back(ledger.total_profit());
    ++lane.episodes_done;
    if (lane.episodes_done < cfg_.episodes_per_hub) {
      lane.needs_begin = true;
    } else {
      lane.active = false;
      active_count.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  // Phase B, worker placement (LockstepGemm::kWorker): group-matrix rows
  // were assigned in lane order, so a contiguous lane partition owns one
  // contiguous row block per group.  Each block carries its own policy
  // workspace, so concurrent decide_rows calls on the shared instance never
  // share scratch — and since a worker's GEMM reads and writes only rows its
  // own phases A and C produce and consume, the slot needs no barrier
  // between inference and env stepping.
  struct GroupBlock {
    std::size_t group = 0;
    std::size_t row_begin = 0;
    std::size_t row_end = 0;
    std::unique_ptr<policy::Policy::Workspace> ws;
    bool live = false;  ///< any active lane this slot (recomputed per slot)
  };
  struct WorkerPlan {
    std::size_t lane_begin = 0;
    std::size_t lane_end = 0;
    std::vector<GroupBlock> blocks;               ///< non-empty row blocks only
    std::vector<std::size_t> block_of_group;      ///< group -> block index
  };
  const auto make_plans = [&](std::size_t nthreads) {
    std::vector<WorkerPlan> plans(nthreads);
    std::vector<std::size_t> rows_before(groups.size(), 0);  // rows left of cursor
    for (std::size_t w = 0; w < nthreads; ++w) {
      WorkerPlan& plan = plans[w];
      plan.lane_begin = lanes.size() * w / nthreads;
      plan.lane_end = lanes.size() * (w + 1) / nthreads;
      plan.block_of_group.assign(groups.size(), kNoGroup);
      const std::vector<std::size_t> begin_rows = rows_before;
      for (std::size_t i = plan.lane_begin; i < plan.lane_end; ++i) {
        if (lanes[i].group != kNoGroup) ++rows_before[lanes[i].group];
      }
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (rows_before[g] == begin_rows[g]) continue;  // no rows here
        plan.block_of_group[g] = plan.blocks.size();
        GroupBlock block;
        block.group = g;
        block.row_begin = begin_rows[g];
        block.row_end = rows_before[g];
        block.ws = groups[g].pol->make_workspace();
        plan.blocks.push_back(std::move(block));
      }
    }
    return plans;
  };
  const auto infer_partition = [&](WorkerPlan& plan) {
    for (GroupBlock& block : plan.blocks) block.live = false;
    for (std::size_t i = plan.lane_begin; i < plan.lane_end; ++i) {
      const Lane& lane = lanes[i];
      if (lane.active && lane.group != kNoGroup) {
        plan.blocks[plan.block_of_group[lane.group]].live = true;
      }
    }
    for (GroupBlock& block : plan.blocks) {
      if (!block.live) continue;
      Group& g = groups[block.group];
      g.pol->decide_rows(g.obs, block.row_begin, block.row_end,
                         std::span<std::size_t>(g.actions), *block.ws);
    }
    for (std::size_t i = plan.lane_begin; i < plan.lane_end; ++i) {
      Lane& lane = lanes[i];
      if (lane.active && lane.group != kNoGroup) {
        lane.action = groups[lane.group].actions[lane.row];
      }
    }
  };

  std::size_t threads = cfg_.lockstep_threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, lanes.size());
  const bool worker_gemm = cfg_.lockstep_gemm == LockstepGemm::kWorker;

  // The coupled exchange runs after phase C of every slot, on the
  // coordinator alone in fixed lane order — between crew phases, never
  // concurrently with one — so routed totals are independent of the thread
  // count and the GEMM placement.
  const auto exchange = [&]() {
    if (bus) bus->exchange();
  };

  if (threads <= 1) {
    if (worker_gemm) {
      std::vector<WorkerPlan> plans = make_plans(1);
      while (active_count.load(std::memory_order_relaxed) > 0) {
        for (Lane& lane : lanes) phase_a(lane);
        infer_partition(plans[0]);
        for (Lane& lane : lanes) phase_c(lane);
        exchange();
      }
    } else {
      while (active_count.load(std::memory_order_relaxed) > 0) {
        for (Lane& lane : lanes) phase_a(lane);
        phase_b();
        for (Lane& lane : lanes) phase_c(lane);
        exchange();
      }
    }
  } else {
    // Fixed contiguous lane partitions: each lane is touched by exactly one
    // worker per phase and the crew's barriers order the phases, so the
    // per-lane operation sequence is identical to the single-threaded loop.
    const auto for_partition = [&](std::size_t w, const auto& body) {
      const std::size_t begin = lanes.size() * w / threads;
      const std::size_t end = lanes.size() * (w + 1) / threads;
      for (std::size_t i = begin; i < end; ++i) body(lanes[i]);
    };
    LockstepCrew crew(threads);
    if (worker_gemm) {
      // One fused phase per slot: a worker's A, row-block inference and C
      // touch only its own lanes and group-matrix rows, so the only barrier
      // needed is the slot boundary itself.
      std::vector<WorkerPlan> plans = make_plans(threads);
      const std::function<void(std::size_t)> run_slot = [&](std::size_t w) {
        for_partition(w, phase_a);
        infer_partition(plans[w]);
        for_partition(w, phase_c);
      };
      while (active_count.load(std::memory_order_relaxed) > 0) {
        crew.run(run_slot);
        exchange();
      }
    } else {
      const std::function<void(std::size_t)> run_a = [&](std::size_t w) {
        for_partition(w, phase_a);
      };
      const std::function<void(std::size_t)> run_c = [&](std::size_t w) {
        for_partition(w, phase_c);
      };
      while (active_count.load(std::memory_order_relaxed) > 0) {
        crew.run(run_a);
        phase_b();
        crew.run(run_c);
        exchange();
      }
    }
  }

  for (std::size_t i = 0; i < lanes.size(); ++i) results[i] = std::move(lanes[i].result);
  return results;
}

}  // namespace ecthub::sim
