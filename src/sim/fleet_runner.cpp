#include "sim/fleet_runner.hpp"

#include "sim/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace ecthub::sim {

std::uint64_t mix_seed(std::uint64_t base_seed, std::uint64_t hub_id) noexcept {
  // splitmix64 finalizer over a golden-ratio stride; (hub_id + 1) keeps
  // hub 0 from collapsing onto the raw base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (hub_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SchedulerKind scheduler_kind_from_string(const std::string& name) {
  if (name == "none") return SchedulerKind::kNoBattery;
  if (name == "tou") return SchedulerKind::kTou;
  if (name == "greedy") return SchedulerKind::kGreedyPrice;
  if (name == "forecast") return SchedulerKind::kForecast;
  if (name == "random") return SchedulerKind::kRandom;
  throw std::invalid_argument("scheduler_kind_from_string: unknown scheduler '" + name +
                              "' (want none|tou|greedy|forecast|random)");
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoBattery: return "none";
    case SchedulerKind::kTou: return "tou";
    case SchedulerKind::kGreedyPrice: return "greedy";
    case SchedulerKind::kForecast: return "forecast";
    case SchedulerKind::kRandom: return "random";
  }
  throw std::invalid_argument("to_string: bad SchedulerKind");
}

std::unique_ptr<core::Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kNoBattery: return std::make_unique<core::NoBatteryScheduler>();
    case SchedulerKind::kTou: return std::make_unique<core::TouScheduler>();
    case SchedulerKind::kGreedyPrice: return std::make_unique<core::GreedyPriceScheduler>();
    case SchedulerKind::kForecast: return std::make_unique<core::ForecastScheduler>();
    case SchedulerKind::kRandom: return std::make_unique<core::RandomScheduler>(seed);
  }
  throw std::invalid_argument("make_scheduler: bad SchedulerKind");
}

std::vector<FleetJob> make_fleet_jobs(const ScenarioRegistry& registry,
                                      const std::vector<std::string>& scenario_keys,
                                      std::size_t count, std::size_t episode_days,
                                      SchedulerKind scheduler) {
  if (scenario_keys.empty()) {
    throw std::invalid_argument("make_fleet_jobs: no scenario keys");
  }
  std::vector<FleetJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& key = scenario_keys[i % scenario_keys.size()];
    const Scenario& scenario = registry.at(key);
    FleetJob job;
    job.hub = scenario.make_hub(key + "-" + std::to_string(i), 0);
    job.env = scenario.env;
    job.env.episode_days = episode_days;
    job.scenario = key;
    job.scheduler = scheduler;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

FleetRunner::FleetRunner(FleetRunnerConfig cfg) : cfg_(cfg) {
  if (cfg_.episodes_per_hub == 0) {
    throw std::invalid_argument("FleetRunnerConfig: episodes_per_hub == 0");
  }
}

HubRunResult FleetRunner::run_job(const FleetJob& job, std::size_t hub_id,
                                  const FleetRunnerConfig& cfg) {
  const std::uint64_t hub_seed = mix_seed(cfg.base_seed, hub_id);

  core::HubConfig hub = job.hub;
  hub.seed = hub_seed;
  core::EctHubEnv env(std::move(hub), job.env);
  // The scheduler stream must be independent of the hub stream: xor with a
  // fixed tag so a RandomScheduler never replays the env's own draws.
  const auto sched = make_scheduler(job.scheduler, hub_seed ^ 0xec7ec7ec7ec7ec7eULL);

  HubRunResult r;
  r.hub_id = hub_id;
  r.hub_name = job.hub.name;
  r.scenario = job.scenario;
  r.scheduler = job.scheduler;
  r.seed = hub_seed;
  r.episodes = cfg.episodes_per_hub;
  r.slots_per_episode = env.slots_per_episode();
  r.episode_profit.reserve(cfg.episodes_per_hub);

  for (std::size_t ep = 0; ep < cfg.episodes_per_hub; ++ep) {
    env.reset();
    const bool record_soc = ep + 1 == cfg.episodes_per_hub;
    SocDigest soc;
    if (record_soc) {
      soc.first = env.soc_frac();
      soc.min = std::numeric_limits<double>::infinity();
      soc.max = -std::numeric_limits<double>::infinity();
    }
    bool done = false;
    while (!done) {
      done = env.step(sched->decide(env)).done;
      if (record_soc) {
        const double s = env.soc_frac();
        soc.last = s;
        soc.min = std::min(soc.min, s);
        soc.max = std::max(soc.max, s);
        soc.checksum += s;
        ++soc.samples;
      }
    }
    if (record_soc) {
      soc.mean = soc.samples > 0 ? soc.checksum / static_cast<double>(soc.samples) : 0.0;
      r.soc = soc;
    }
    const core::ProfitLedger& ledger = env.ledger();
    r.revenue += ledger.total_revenue();
    r.grid_cost += ledger.total_grid_cost();
    r.bp_cost += ledger.total_bp_cost();
    r.profit += ledger.total_profit();
    r.episode_profit.push_back(ledger.total_profit());
  }
  return r;
}

std::vector<HubRunResult> FleetRunner::run(const std::vector<FleetJob>& jobs) const {
  std::vector<HubRunResult> results(jobs.size());
  if (jobs.empty()) return results;

  std::size_t threads = cfg_.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, jobs.size());

  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = run_job(jobs[i], i, cfg_);
    return results;
  }

  // Work-stealing by atomic index: each worker owns the result slot of the
  // job it claims, so no two threads ever touch the same element.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = run_job(jobs[i], i, cfg_);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Drain the queue so the other workers stop claiming jobs and the
        // error surfaces immediately instead of after the full sweep.
        next.store(jobs.size(), std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace ecthub::sim
