// ShardDriver: executes a sharded city sweep — "fleet of fleets".
//
// Three entry points, all built on the same artifacts (sim/shard_io):
//
//   run_shard(jobs, i, n)      one shard, in this process (the worker body,
//                              and the `city_sweep --shard i/n` path)
//   run_forked(jobs, n, dir)   forks n worker processes, one shard file per
//                              child, waits, then merges the files
//   merge_shard_files(paths)   merges pre-existing shard files from disk
//                              (the `city_sweep --merge-shards` path — the
//                              shards may have run on other machines)
//
// Identity guarantee (pinned by tests/test_shard.cpp and bench_fleet part
// 7): because shard_fleet_jobs preserves every hub's global id/seed and the
// report sums are exact (ExactSum), the merged report is byte-identical in
// serialized form to the single-process FleetRunner run of the same jobs
// and config, for any shard count.
//
// Fork discipline: run_forked forks while the process is single-threaded —
// the driver spawns no threads itself, and each child builds its own
// FleetRunner thread pool only after the fork — so the fork is safe under
// the threaded runtime and the TSan CI job.  Children write their shard
// file and _exit without touching stdout; a child that exits non-zero or
// dies on a signal is surfaced as a ShardDriverError naming the shard.
#pragma once

#include "sim/fleet_runner.hpp"
#include "sim/report.hpp"
#include "sim/shard_io.hpp"

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ecthub::sim {

/// Orchestration failure: fork/wait plumbing, a failed worker, or an
/// inconsistent shard-file set.  (Per-file decode failures keep their
/// shard_io types.)
class ShardDriverError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Merged output of a sharded sweep: per-hub results concatenated in global
/// hub_id order and the report folded through AggregateReport::merge in
/// shard order.
struct ShardMerge {
  std::vector<HubRunResult> results;
  AggregateReport report;
};

class ShardDriver {
 public:
  explicit ShardDriver(FleetRunnerConfig cfg) : cfg_(std::move(cfg)) {}

  /// Runs shard `shard_index` of `shard_count` over `jobs` in this process
  /// and returns its artifact (plan, results with global hub ids, partial
  /// report).  Coupled job lists are accepted only at shard_count == 1
  /// (via run_lockstep); see shard_fleet_jobs.
  [[nodiscard]] ShardData run_shard(const std::vector<FleetJob>& jobs,
                                    std::size_t shard_index,
                                    std::size_t shard_count) const;

  /// Forks `shard_count` workers; child i runs run_shard(jobs, i, n) and
  /// saves dir/shard_file_name(i, n).  Waits for every child, throws
  /// ShardDriverError naming any shard whose worker exited non-zero or was
  /// killed by a signal, then merges the shard files.
  [[nodiscard]] ShardMerge run_forked(const std::vector<FleetJob>& jobs,
                                      std::size_t shard_count,
                                      const std::filesystem::path& dir) const;

  /// Loads every path (typed shard_io errors propagate), validates that the
  /// files form one complete, consistent shard set — identical shard_count
  /// and job_count, every shard_index 0..n-1 present exactly once — and
  /// folds them in shard order.
  [[nodiscard]] static ShardMerge merge_shard_files(
      std::vector<std::filesystem::path> paths);

  /// Canonical shard file name: "shard-<i>-of-<n>.ecsh".
  [[nodiscard]] static std::string shard_file_name(std::size_t shard_index,
                                                   std::size_t shard_count);

  [[nodiscard]] const FleetRunnerConfig& config() const noexcept { return cfg_; }

 private:
  FleetRunnerConfig cfg_;
};

}  // namespace ecthub::sim
