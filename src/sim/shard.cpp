#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ecthub::sim {

ShardPlan plan_shard(std::size_t job_count, std::size_t shard_index,
                     std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("plan_shard: shard_count must be >= 1");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument("plan_shard: shard_index " + std::to_string(shard_index) +
                                " out of range for shard_count " +
                                std::to_string(shard_count));
  }
  const std::size_t quot = job_count / shard_count;
  const std::size_t rem = job_count % shard_count;
  ShardPlan plan;
  plan.shard_index = shard_index;
  plan.shard_count = shard_count;
  plan.job_count = job_count;
  plan.begin = shard_index * quot + std::min(shard_index, rem);
  plan.end = plan.begin + quot + (shard_index < rem ? 1 : 0);
  return plan;
}

std::vector<FleetJob> shard_fleet_jobs(const std::vector<FleetJob>& jobs,
                                       std::size_t shard_index, std::size_t shard_count) {
  const ShardPlan plan = plan_shard(jobs.size(), shard_index, shard_count);
  if (shard_count > 1) {
    for (const FleetJob& job : jobs) {
      if (job.coupled()) {
        throw std::invalid_argument(
            "shard_fleet_jobs: job '" + job.hub.name +
            "' is coupled (metro fleet); the slot-synchronous CouplingBus "
            "exchange spans the whole fleet, so coupled job lists cannot be "
            "process-sharded (shard_count must be 1)");
      }
    }
  }
  return {jobs.begin() + static_cast<std::ptrdiff_t>(plan.begin),
          jobs.begin() + static_cast<std::ptrdiff_t>(plan.end)};
}

}  // namespace ecthub::sim
