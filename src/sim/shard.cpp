#include "sim/shard.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace ecthub::sim {

ShardPlan plan_shard(std::size_t job_count, std::size_t shard_index,
                     std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("plan_shard: shard_count must be >= 1");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument("plan_shard: shard_index " + std::to_string(shard_index) +
                                " out of range for shard_count " +
                                std::to_string(shard_count));
  }
  const std::size_t quot = job_count / shard_count;
  const std::size_t rem = job_count % shard_count;
  ShardPlan plan;
  plan.shard_index = shard_index;
  plan.shard_count = shard_count;
  plan.job_count = job_count;
  plan.begin = shard_index * quot + std::min(shard_index, rem);
  plan.end = plan.begin + quot + (shard_index < rem ? 1 : 0);
  return plan;
}

std::pair<std::size_t, std::size_t> parse_shard_spec(const std::string& spec) {
  const auto malformed = [&spec]() {
    return std::invalid_argument("parse_shard_spec: expected i/n (e.g. 0/4), got '" + spec +
                                 "'");
  };
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || spec.find('/', slash + 1) != std::string::npos) {
    throw malformed();
  }
  // Full-token digit runs on both sides: no signs, whitespace, hex prefixes
  // or trailing garbage — everything std::stoull silently tolerates.
  const auto parse_side = [&](std::size_t begin, std::size_t end) {
    if (begin == end) throw malformed();
    std::size_t value = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const char c = spec[i];
      if (c < '0' || c > '9') throw malformed();
      const auto digit = static_cast<std::size_t>(c - '0');
      if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) throw malformed();
      value = value * 10 + digit;
    }
    return value;
  };
  const std::size_t index = parse_side(0, slash);
  const std::size_t count = parse_side(slash + 1, spec.size());
  if (count == 0 || index >= count) {
    throw std::invalid_argument("parse_shard_spec: shard " + spec + " is out of range");
  }
  return {index, count};
}

std::vector<FleetJob> shard_fleet_jobs(const std::vector<FleetJob>& jobs,
                                       std::size_t shard_index, std::size_t shard_count) {
  const ShardPlan plan = plan_shard(jobs.size(), shard_index, shard_count);
  if (shard_count > 1) {
    for (const FleetJob& job : jobs) {
      if (job.coupled()) {
        throw std::invalid_argument(
            "shard_fleet_jobs: job '" + job.hub.name +
            "' is coupled (metro fleet); the slot-synchronous CouplingBus "
            "exchange spans the whole fleet, so coupled job lists cannot be "
            "process-sharded (shard_count must be 1)");
      }
    }
  }
  return {jobs.begin() + static_cast<std::ptrdiff_t>(plan.begin),
          jobs.begin() + static_cast<std::ptrdiff_t>(plan.end)};
}

}  // namespace ecthub::sim
