// Metro fleet construction: MetroMap sites -> coupled FleetJobs.
//
// Bridges the spatial layer and the fleet engine: every hub of a generated
// metro becomes one FleetJob whose character comes from a scenario preset
// (round-robin over the requested keys), modulated by its site's density
// class, with coupling enabled — through-traffic scaled by the site,
// weather/outage fronts keyed off the metro seed, and road-graph neighbor
// lists for the CouplingBus.  The result is lockstep-only by construction
// (FleetRunner::run rejects it).
#pragma once

#include "sim/fleet_runner.hpp"
#include "spatial/metro.hpp"

#include <memory>
#include <string>
#include <vector>

namespace ecthub::sim {

/// One coupled job per metro hub.  Hub i is named "<key>-<i>" after its
/// round-robin scenario and runs that scenario's episode shape with
/// `episode_days` days.  Deterministic: a pure function of (metro, registry,
/// keys, days, scheduler) like make_fleet_jobs.
[[nodiscard]] std::vector<FleetJob> make_metro_fleet_jobs(
    const spatial::MetroMap& metro, const ScenarioRegistry& registry,
    const std::vector<std::string>& scenario_keys, std::size_t episode_days,
    SchedulerKind scheduler,
    std::shared_ptr<const policy::DrlCheckpoint> checkpoint = nullptr);

}  // namespace ecthub::sim
