// Scenario registry: named, deterministic hub presets for fleet sweeps.
//
// A scenario bundles a HubConfig factory (composed purely from existing
// HubConfig knobs — site, plant, prices, weather, EV behaviour) with the
// episode shape it is evaluated under.  The registry ships six built-ins
// spanning the operating envelope the ROADMAP targets:
//
//   urban            dense-traffic rooftop-PV hub (paper Fig. 6 left)
//   rural            highway hub with PV + wind (paper Fig. 6 right)
//   high-renewables  oversized PV + WT with a large soak battery
//   blackout-prone   unreliable grid: long recovery window, cloudy skies
//   price-spike      volatile wholesale market with frequent spikes
//   heatwave         hot clear spell: PV thermal derating, high BS load
//
// Factories are pure functions of (hub_name, seed), so two registries — or
// two processes — produce bit-identical hub configurations for the same
// inputs.  This is the contract the FleetRunner determinism tests pin down.
#pragma once

#include "core/hub_config.hpp"
#include "core/hub_env.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ecthub::sim {

/// Builds the HubConfig of one hub instance belonging to the scenario.
using HubFactory =
    std::function<core::HubConfig(const std::string& hub_name, std::uint64_t seed)>;

struct Scenario {
  std::string key;      ///< registry lookup key, e.g. "urban"
  std::string summary;  ///< one-line description for listings
  HubFactory make_hub;
  /// Episode shape (horizon, discount schedule) the scenario is swept under.
  core::HubEnvConfig env;
};

/// Immutable-after-setup map of named scenarios.
class ScenarioRegistry {
 public:
  /// Empty registry; use with_builtins() for the standard six.
  ScenarioRegistry() = default;

  /// Registry preloaded with the six built-in presets.
  [[nodiscard]] static ScenarioRegistry with_builtins();

  /// Registers a scenario.  Throws std::invalid_argument on an empty key, a
  /// missing factory, or a duplicate key.
  void add(Scenario scenario);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Throws std::out_of_range (with the offending key) when absent.
  [[nodiscard]] const Scenario& at(const std::string& key) const;

  /// Convenience: look up `key` and build one hub from it.
  [[nodiscard]] core::HubConfig make_hub(const std::string& key,
                                         const std::string& hub_name,
                                         std::uint64_t seed) const;

  /// Keys in sorted order.
  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }

 private:
  std::map<std::string, Scenario> scenarios_;
};

/// Keys of the built-in presets, sorted (what with_builtins() registers).
[[nodiscard]] std::vector<std::string> builtin_scenario_keys();

}  // namespace ecthub::sim
