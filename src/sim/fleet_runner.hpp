// FleetRunner: N independent hub episodes across a thread pool.
//
// Each job (hub config + episode shape + scheduler kind) is fully
// self-contained: the worker constructs its own EctHubEnv and Scheduler, and
// every stochastic stream is seeded as seed = mix_seed(base_seed, hub_id) —
// RNG state is never shared between hubs.  Results are written into a
// per-job slot, so the output is bit-identical regardless of thread count or
// scheduling order: running 32 hubs on 1 thread or 8 threads produces the
// same ledgers to the last bit.  That property is the foundation every
// future sharding/batching layer builds on, and tests/test_sim.cpp pins it.
#pragma once

#include "core/hub_config.hpp"
#include "core/hub_env.hpp"
#include "core/schedulers.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ecthub::sim {

/// Deterministic per-hub seed: a splitmix64 finalizer over (base, hub_id).
/// Distinct hub ids map to well-separated seeds even for adjacent bases.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base_seed,
                                     std::uint64_t hub_id) noexcept;

/// Rule-based scheduler families the runner can instantiate per worker.
enum class SchedulerKind { kNoBattery, kTou, kGreedyPrice, kForecast, kRandom };

/// Parses "none" | "tou" | "greedy" | "forecast" | "random" (case-sensitive).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] SchedulerKind scheduler_kind_from_string(const std::string& name);
[[nodiscard]] std::string to_string(SchedulerKind kind);

/// Fresh scheduler instance; cheap enough to build once per worker.  `seed`
/// only matters for kRandom.
[[nodiscard]] std::unique_ptr<core::Scheduler> make_scheduler(SchedulerKind kind,
                                                              std::uint64_t seed);

/// One unit of fleet work: a hub evaluated under one scheduler.  The hub's
/// `seed` field is overridden by the runner with mix_seed(base_seed, hub_id).
struct FleetJob {
  core::HubConfig hub;
  core::HubEnvConfig env;
  std::string scenario = "custom";  ///< label carried into the report
  SchedulerKind scheduler = SchedulerKind::kTou;
};

/// Digest of the SoC trajectory over the job's last episode.
struct SocDigest {
  double first = 0.0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double checksum = 0.0;  ///< plain sum in slot order — drift detector
  std::size_t samples = 0;
};

struct HubRunResult {
  std::size_t hub_id = 0;
  std::string hub_name;
  std::string scenario;
  SchedulerKind scheduler = SchedulerKind::kTou;
  std::uint64_t seed = 0;  ///< the mixed per-hub seed actually used
  std::size_t episodes = 0;
  std::size_t slots_per_episode = 0;

  // Ledger totals accumulated across all episodes of the job.
  double revenue = 0.0;
  double grid_cost = 0.0;
  double bp_cost = 0.0;
  double profit = 0.0;

  std::vector<double> episode_profit;  ///< per-episode true profit
  SocDigest soc;                       ///< last episode's SoC trajectory
};

class ScenarioRegistry;  // scenario.hpp

/// Builds `count` jobs cycling round-robin through `scenario_keys` (each must
/// exist in `registry`).  Hub i is named "<key>-<i>" and runs the scenario's
/// episode shape with `episode_days` days.  The shared job-construction path
/// of the sweep driver, the fleet bench and the determinism tests.
[[nodiscard]] std::vector<FleetJob> make_fleet_jobs(
    const ScenarioRegistry& registry, const std::vector<std::string>& scenario_keys,
    std::size_t count, std::size_t episode_days, SchedulerKind scheduler);

struct FleetRunnerConfig {
  std::uint64_t base_seed = 7;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  std::size_t episodes_per_hub = 1;
};

class FleetRunner {
 public:
  explicit FleetRunner(FleetRunnerConfig cfg);

  /// Runs every job; results[i] corresponds to jobs[i] (hub_id == i).  The
  /// first exception thrown by any worker is rethrown after all workers have
  /// been joined.
  [[nodiscard]] std::vector<HubRunResult> run(const std::vector<FleetJob>& jobs) const;

  /// Executes one job synchronously — the exact function each worker runs.
  [[nodiscard]] static HubRunResult run_job(const FleetJob& job, std::size_t hub_id,
                                            const FleetRunnerConfig& cfg);

  [[nodiscard]] const FleetRunnerConfig& config() const noexcept { return cfg_; }

 private:
  FleetRunnerConfig cfg_;
};

}  // namespace ecthub::sim
