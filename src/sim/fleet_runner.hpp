// FleetRunner: N independent hub episodes, per-hub-threaded or
// lockstep-batched.
//
// Each job (hub config + episode shape + scheduler kind) is fully
// self-contained: the worker constructs its own EctHubEnv and Policy, and
// every stochastic stream is seeded as seed = mix_seed(base_seed, hub_id) —
// RNG state is never shared between hubs.  Results are written into a
// per-job slot, so the output is bit-identical regardless of thread count or
// scheduling order: running 32 hubs on 1 thread or 8 threads produces the
// same ledgers to the last bit.
//
// run() executes one hub per worker end to end.  run_lockstep() advances
// every hub slot-by-slot instead: it gathers the per-hub observations into
// one (hubs x state_dim) matrix, makes a single batched Policy call per
// fleet slot, and scatters the actions back — so a neural policy (ECT-DRL)
// replaces N matrix-vector products with one matrix-matrix forward pass.
//
// Determinism contract (the foundation every sharding/batching layer builds
// on — tests/test_sim.cpp pins all of it):
//
//  * Seed mixing.  Every stochastic stream of hub i derives from
//    mix_seed(base_seed, i); RNG state is never shared between hubs, so any
//    execution order — per-hub or lockstep, any thread count — replays the
//    identical per-hub streams.
//  * Barrier semantics.  Threaded lockstep (lockstep_threads > 1) splits the
//    lanes into fixed contiguous partitions, one per thread (the calling
//    thread itself steps the last partition, so N configured threads are
//    exactly N busy threads).  Where the slot's inference runs is selected
//    by FleetRunnerConfig::lockstep_gemm:
//
//    - LockstepGemm::kCoordinator (the PR 4 path) runs each slot as three
//      phases separated by barriers: (A) workers reset lanes whose episode
//      turned over and run per-hub stateful policies, (B) the coordinator
//      fires one decide_batch per shared stateless policy group, (C) workers
//      step their lanes, each writing the next observation into its fixed
//      row of the group's observation matrix.  A lane is touched by exactly
//      one thread per phase and the barriers order the phases, so the
//      per-lane operation sequence — and therefore every result bit — is
//      independent of lockstep_threads.
//
//    - LockstepGemm::kWorker (the default) removes the serial phase-B
//      bottleneck: lanes are assigned group-matrix rows in lane order, so a
//      worker's contiguous lane partition owns a contiguous row block of
//      every group's observation matrix, and each worker calls the shared
//      policy's const decide_rows() on exactly that block with its own
//      workspace.  Phase B then reads and writes only worker-owned rows —
//      the same data A wrote and C will consume on the same worker — so the
//      whole slot collapses into ONE crew phase (A, row-block GEMMs +
//      scatter, C in sequence per worker) with a single barrier pair,
//      halving barrier crossings while inference scales with the crew.
//
//    Either mode computes each observation row independently (row i of a
//    GEMM never reads row j), which is what lets finished lanes keep a
//    stale row without disturbing the live ones — and what makes the
//    row-block sharding bit-identical to the whole-matrix call.
//  * Worker exceptions are caught at the phase boundary, the crew drains,
//    and the first error is rethrown from run_lockstep — never a deadlock.
//
// run(), run_lockstep(1 thread) and run_lockstep(N threads) are all
// bit-identical on the same jobs and config, under either LockstepGemm mode.
#pragma once

#include "common/rng.hpp"
#include "core/hub_config.hpp"
#include "core/hub_env.hpp"
#include "policy/drl_policy.hpp"
#include "policy/policy.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ecthub::sim {

/// Deterministic per-hub seed: a splitmix64 finalizer over (base, hub_id).
/// Distinct hub ids map to well-separated seeds even for adjacent bases.
/// Forwards to ecthub::mix_seed (common/rng) — the same primitive that keys
/// the metro front streams in core.
[[nodiscard]] inline std::uint64_t mix_seed(std::uint64_t base_seed,
                                            std::uint64_t hub_id) noexcept {
  return ecthub::mix_seed(base_seed, hub_id);
}

/// Scheduler families the runner can instantiate per worker: the five
/// rule-based baselines plus the trained ECT-DRL actor.
enum class SchedulerKind { kNoBattery, kTou, kGreedyPrice, kForecast, kRandom, kDrl };

/// All kinds in declaration order — the sweep set of scheduler comparisons.
[[nodiscard]] const std::vector<SchedulerKind>& all_scheduler_kinds();

/// Parses "none" | "tou" | "greedy" | "forecast" | "random" | "drl",
/// case-insensitively.  Throws std::invalid_argument listing every valid
/// name on anything else.
[[nodiscard]] SchedulerKind scheduler_kind_from_string(const std::string& name);
[[nodiscard]] std::string to_string(SchedulerKind kind);

/// Where run_lockstep's per-slot batched inference executes: one coordinator
/// decide_batch per shared policy group (the PR 4 path, kept for comparison
/// benchmarks), or per-worker decide_rows row-blocks of the same matrices
/// (the default — inference scales with the worker crew).  Bit-identical
/// either way.
enum class LockstepGemm { kCoordinator, kWorker };

/// All modes in declaration order — the sweep set of the GEMM-placement bench.
[[nodiscard]] const std::vector<LockstepGemm>& all_lockstep_gemm_modes();

/// Parses "coordinator" | "worker", case-insensitively.  Throws
/// std::invalid_argument listing the valid names on anything else.
[[nodiscard]] LockstepGemm lockstep_gemm_from_string(const std::string& name);
[[nodiscard]] std::string to_string(LockstepGemm mode);

/// Fresh policy instance for `kind`; cheap enough to build once per worker.
/// `seed` only matters for kRandom; `layout` must describe the observations
/// the hub emits (EctHubEnv::observation_layout()).  kDrl requires a
/// checkpoint whose state_dim matches the layout and throws
/// std::invalid_argument without one.
[[nodiscard]] std::unique_ptr<policy::Policy> make_policy(
    SchedulerKind kind, std::uint64_t seed, const policy::ObservationLayout& layout,
    const std::shared_ptr<const policy::DrlCheckpoint>& checkpoint = nullptr);

/// One unit of fleet work: a hub evaluated under one scheduler.  The hub's
/// `seed` field is overridden by the runner with mix_seed(base_seed, hub_id).
struct FleetJob {
  core::HubConfig hub;
  core::HubEnvConfig env;
  std::string scenario = "custom";  ///< label carried into the report
  SchedulerKind scheduler = SchedulerKind::kTou;
  /// Trained actor weights; required when scheduler == kDrl.  Immutable and
  /// shared across jobs — each worker restores its own DrlPolicy from it.
  std::shared_ptr<const policy::DrlCheckpoint> checkpoint;
  /// Road-graph neighbors (job indices) this hub exports overflow to when
  /// env.coupling is enabled.  A job set with coupling anywhere is lockstep-
  /// only: run() rejects it, because per-hub execution cannot honor the
  /// slot-synchronous exchange.
  std::vector<std::size_t> neighbors;

  /// True when this job participates in the metro coupling layer.
  [[nodiscard]] bool coupled() const noexcept {
    return env.coupling.enabled || !neighbors.empty();
  }
};

/// Digest of the SoC trajectory over the job's last episode.
struct SocDigest {
  double first = 0.0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double checksum = 0.0;  ///< plain sum in slot order — drift detector
  std::size_t samples = 0;

  friend bool operator==(const SocDigest&, const SocDigest&) = default;
};

struct HubRunResult {
  std::size_t hub_id = 0;
  std::string hub_name;
  std::string scenario;
  SchedulerKind scheduler = SchedulerKind::kTou;
  std::uint64_t seed = 0;  ///< the mixed per-hub seed actually used
  std::size_t episodes = 0;
  std::size_t slots_per_episode = 0;

  // Ledger totals accumulated across all episodes of the job.
  double revenue = 0.0;
  double grid_cost = 0.0;
  double bp_cost = 0.0;
  double profit = 0.0;

  std::vector<double> episode_profit;  ///< per-episode true profit
  SocDigest soc;                       ///< last episode's SoC trajectory

  // Coupling totals across all episodes (all zero on an uncoupled job).
  double through_kwh = 0.0;         ///< through-traffic demand seen
  double spill_exported_kwh = 0.0;  ///< overflow routed to neighbors
  double spill_served_kwh = 0.0;    ///< neighbor imports absorbed here
  double spill_dropped_kwh = 0.0;   ///< neighbor imports lost (one-hop bound)
  std::size_t outage_slots = 0;     ///< front outage slots endured

  /// Field-exact equality — the bit-identity currency of the determinism
  /// tests and the shard save/load round-trip (sim/shard_io).
  friend bool operator==(const HubRunResult&, const HubRunResult&) = default;
};

class ScenarioRegistry;  // scenario.hpp

/// Builds `count` jobs cycling round-robin through `scenario_keys` (each must
/// exist in `registry`).  Hub i is named "<key>-<i>" and runs the scenario's
/// episode shape with `episode_days` days.  `checkpoint` is attached to every
/// job (needed when scheduler == kDrl).  The shared job-construction path of
/// the sweep driver, the fleet bench and the determinism tests.
[[nodiscard]] std::vector<FleetJob> make_fleet_jobs(
    const ScenarioRegistry& registry, const std::vector<std::string>& scenario_keys,
    std::size_t count, std::size_t episode_days, SchedulerKind scheduler,
    std::shared_ptr<const policy::DrlCheckpoint> checkpoint = nullptr);

struct FleetRunnerConfig {
  std::uint64_t base_seed = 7;
  /// Global hub id of jobs[0].  A sharded sweep (sim/shard) runs the job
  /// sub-range [begin, end) of the full list with hub_id_offset = begin, so
  /// every hub keeps the mix_seed(base_seed, global_id) stream — and the
  /// exact per-hub result bits — it would have had in the unsharded run.
  std::size_t hub_id_offset = 0;
  /// Worker threads for run(); 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Worker threads for run_lockstep()'s env-stepping phases; 0 means
  /// std::thread::hardware_concurrency(), 1 (the default) keeps lockstep
  /// single-threaded.  Any value produces bit-identical results — big
  /// fleets get thread parallelism (env stepping, and with
  /// LockstepGemm::kWorker the batched inference too) on top of batch
  /// parallelism.
  std::size_t lockstep_threads = 1;
  /// GEMM placement for run_lockstep's batched inference (see LockstepGemm).
  LockstepGemm lockstep_gemm = LockstepGemm::kWorker;
  std::size_t episodes_per_hub = 1;
};

class FleetRunner {
 public:
  explicit FleetRunner(FleetRunnerConfig cfg);

  /// Runs every job, one hub per worker; results[i] corresponds to jobs[i]
  /// (hub_id == cfg.hub_id_offset + i).  The first exception thrown by any worker is rethrown
  /// after all workers have been joined.  Throws std::invalid_argument on a
  /// coupled job set (see FleetJob::coupled) — only run_lockstep advances
  /// the fleet slot-synchronously, which the exchange requires.
  [[nodiscard]] std::vector<HubRunResult> run(const std::vector<FleetJob>& jobs) const;

  /// Lockstep execution: advances all hubs slot-by-slot and batches policy
  /// inference.  Stateless policies (TOU, no-battery, ECT-DRL) of the same
  /// kind and checkpoint share one instance fed a (hubs x state_dim)
  /// observation matrix per fleet slot; stateful policies keep an instance
  /// per hub.  With lockstep_threads > 1 the env-stepping phases — and,
  /// under LockstepGemm::kWorker, the batched inference itself, as per-lane-
  /// partition row-blocks — are sharded across a barrier-synchronized worker
  /// crew (see the file comment for the phase/barrier semantics).
  /// Bit-identical to run() on the same jobs and config, at any thread
  /// count and under either GEMM placement.
  ///
  /// Coupled fleets (FleetJob::coupled) add an exchange phase at the slot
  /// barrier: each lane steps with the imports routed to it at the previous
  /// barrier and deposits its exported overflow, then the coordinator —
  /// alone, in fixed lane order — routes every deposit over the road-graph
  /// neighbor lists (CouplingBus).  The exchange never runs concurrently
  /// with a worker phase, so coupled results stay bit-identical at any
  /// lockstep_threads and under either LockstepGemm mode; fleets with no
  /// coupled job take exactly the pre-coupling path.
  [[nodiscard]] std::vector<HubRunResult> run_lockstep(
      const std::vector<FleetJob>& jobs) const;

  /// Executes one job synchronously — the exact function each run() worker
  /// runs.
  [[nodiscard]] static HubRunResult run_job(const FleetJob& job, std::size_t hub_id,
                                            const FleetRunnerConfig& cfg);

  [[nodiscard]] const FleetRunnerConfig& config() const noexcept { return cfg_; }

 private:
  FleetRunnerConfig cfg_;
};

}  // namespace ecthub::sim
