#include "sim/shard_driver.hpp"

#include "sim/shard.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <iterator>

namespace ecthub::sim {

namespace {

/// waitpid with EINTR retry; returns the child's raw status word.
[[nodiscard]] int await_child(pid_t pid) {
  int status = 0;
  for (;;) {
    if (::waitpid(pid, &status, 0) >= 0) return status;
    if (errno != EINTR) {
      throw ShardDriverError(std::string("waitpid failed: ") + std::strerror(errno));
    }
  }
}

[[noreturn]] void child_main(const ShardDriver& driver, const std::vector<FleetJob>& jobs,
                             std::size_t shard_index, std::size_t shard_count,
                             const std::filesystem::path& path) {
  // Worker body.  No stdout writes (the parent owns the report stream) and
  // no normal exit (destructors/atexit of the forked image must not run
  // twice): save the shard file and _exit.
  try {
    save_shard(path, driver.run_shard(jobs, shard_index, shard_count));
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard %zu/%zu worker: %s\n", shard_index, shard_count,
                 e.what());
    ::_exit(1);
  } catch (...) {
    std::fprintf(stderr, "shard %zu/%zu worker: unknown exception\n", shard_index,
                 shard_count);
    ::_exit(1);
  }
}

}  // namespace

ShardData ShardDriver::run_shard(const std::vector<FleetJob>& jobs,
                                 std::size_t shard_index, std::size_t shard_count) const {
  ShardData shard;
  shard.plan = plan_shard(jobs.size(), shard_index, shard_count);
  const std::vector<FleetJob> sub = shard_fleet_jobs(jobs, shard_index, shard_count);
  FleetRunnerConfig cfg = cfg_;
  cfg.hub_id_offset = shard.plan.begin;  // global ids ⇒ global seeds
  const FleetRunner runner(cfg);
  const bool coupled = std::any_of(sub.begin(), sub.end(),
                                   [](const FleetJob& j) { return j.coupled(); });
  shard.results = coupled ? runner.run_lockstep(sub) : runner.run(sub);
  shard.report = AggregateReport(shard.results);
  return shard;
}

ShardMerge ShardDriver::run_forked(const std::vector<FleetJob>& jobs,
                                   std::size_t shard_count,
                                   const std::filesystem::path& dir) const {
  // Validate shard coordinates and shardability (coupled jobs) before any
  // fork, so misuse fails with the partitioner's error, not a worker exit.
  for (std::size_t i = 0; i < shard_count; ++i) {
    (void)shard_fleet_jobs(jobs, i, shard_count);
  }
  std::vector<std::filesystem::path> paths;
  paths.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    paths.push_back(dir / shard_file_name(i, shard_count));
  }
  // Flush everything buffered before forking: the children inherit the
  // stdio buffers, and anything pending would otherwise be written once
  // per process.
  std::cout.flush();
  std::cerr.flush();
  std::fflush(nullptr);

  std::vector<pid_t> pids;
  pids.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int fork_errno = errno;
      for (const pid_t spawned : pids) (void)await_child(spawned);  // no zombies
      throw ShardDriverError(std::string("fork failed: ") + std::strerror(fork_errno));
    }
    if (pid == 0) child_main(*this, jobs, i, shard_count, paths[i]);
    pids.push_back(pid);
  }

  std::string failures;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const int status = await_child(pids[i]);
    std::string failure;
    if (WIFEXITED(status)) {
      if (WEXITSTATUS(status) != 0) {
        failure = "exited with status " + std::to_string(WEXITSTATUS(status));
      }
    } else if (WIFSIGNALED(status)) {
      failure = "killed by signal " + std::to_string(WTERMSIG(status));
    } else {
      failure = "ended with unexpected status " + std::to_string(status);
    }
    if (!failure.empty()) {
      if (!failures.empty()) failures += "; ";
      failures += "shard " + std::to_string(i) + "/" + std::to_string(shard_count) +
                  " worker " + failure;
    }
  }
  if (!failures.empty()) {
    throw ShardDriverError("run_forked: " + failures + " (see stderr for details)");
  }
  return merge_shard_files(std::move(paths));
}

ShardMerge ShardDriver::merge_shard_files(std::vector<std::filesystem::path> paths) {
  if (paths.empty()) {
    throw ShardDriverError("merge_shard_files: no shard files to merge");
  }
  std::vector<ShardData> shards;
  shards.reserve(paths.size());
  for (const std::filesystem::path& path : paths) shards.push_back(load_shard(path));
  std::sort(shards.begin(), shards.end(), [](const ShardData& a, const ShardData& b) {
    return a.plan.shard_index < b.plan.shard_index;
  });

  const std::size_t shard_count = shards.front().plan.shard_count;
  const std::size_t job_count = shards.front().plan.job_count;
  if (shards.size() != shard_count) {
    throw ShardDriverError("merge_shard_files: " + std::to_string(shards.size()) +
                           " shard files for a " + std::to_string(shard_count) +
                           "-way sweep — the shard set is incomplete or overfull");
  }
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardPlan& plan = shards[i].plan;
    if (plan.shard_count != shard_count || plan.job_count != job_count) {
      throw ShardDriverError(
          "merge_shard_files: shard files from different sweeps (shard_count/"
          "job_count mismatch)");
    }
    if (plan.shard_index != i) {
      throw ShardDriverError("merge_shard_files: shard index " + std::to_string(i) +
                             " is missing or duplicated in the file set");
    }
  }

  ShardMerge merged;
  merged.results.reserve(job_count);
  for (ShardData& shard : shards) {
    merged.results.insert(merged.results.end(),
                          std::make_move_iterator(shard.results.begin()),
                          std::make_move_iterator(shard.results.end()));
    merged.report.merge(shard.report);
  }
  return merged;
}

std::string ShardDriver::shard_file_name(std::size_t shard_index,
                                         std::size_t shard_count) {
  return "shard-" + std::to_string(shard_index) + "-of-" + std::to_string(shard_count) +
         ".ecsh";
}

}  // namespace ecthub::sim
