#include "sim/drl_zoo.hpp"

#include "common/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::sim {

namespace {

/// Stream tags keeping specialist, generalist, and lane seeds disjoint.
constexpr std::uint64_t kSpecialistTag = 0x5bec1a11ULL;
constexpr std::uint64_t kGeneralistTag = 0x6e4e7a11ULL;

core::HubEnvConfig training_env(const Scenario& scenario, const ZooTrainConfig& cfg) {
  core::HubEnvConfig env = scenario.env;
  if (cfg.episode_days > 0) env.episode_days = cfg.episode_days;
  return env;
}

core::DrlTrainLane make_lane(const ScenarioRegistry& registry, const std::string& key,
                             std::size_t key_index, std::size_t replica,
                             const ZooTrainConfig& cfg) {
  const Scenario& scenario = registry.at(key);
  core::DrlTrainLane lane;
  lane.hub = scenario.make_hub(
      key + "-zoo-" + std::to_string(replica),
      mix_seed(mix_seed(cfg.seed, key_index), replica));
  lane.env = training_env(scenario, cfg);
  return lane;
}

void check_layout(const core::DrlTrainLane& lane, const core::HubEnvConfig& reference_env) {
  if (lane.env.slots_per_day != reference_env.slots_per_day ||
      lane.env.lookback != reference_env.lookback) {
    throw std::invalid_argument(
        "train_actor_zoo: presets disagree on the observation layout");
  }
}

}  // namespace

ActorZoo train_actor_zoo(const ScenarioRegistry& registry, std::vector<std::string> keys,
                         const ZooTrainConfig& cfg) {
  if (cfg.train_hubs == 0) throw std::invalid_argument("train_actor_zoo: train_hubs == 0");
  if (keys.empty()) keys = registry.keys();
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::string& key : keys) (void)registry.at(key);  // fail fast on unknowns

  ActorZoo zoo;
  zoo.keys = keys;

  core::DrlFleetTrainConfig fleet;
  fleet.ppo = cfg.ppo;
  fleet.iterations = cfg.iterations;
  fleet.collector_threads = cfg.collector_threads;

  const core::HubEnvConfig reference_env = training_env(registry.at(keys.front()), cfg);

  std::vector<core::DrlTrainLane> generalist_lanes;
  generalist_lanes.reserve(keys.size() * cfg.train_hubs);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::vector<core::DrlTrainLane> lanes;
    lanes.reserve(cfg.train_hubs);
    for (std::size_t r = 0; r < cfg.train_hubs; ++r) {
      core::DrlTrainLane lane = make_lane(registry, keys[i], i, r, cfg);
      check_layout(lane, reference_env);
      generalist_lanes.push_back(lane);
      lanes.push_back(std::move(lane));
    }
    fleet.seed = mix_seed(mix_seed(cfg.seed, kSpecialistTag), i);
    zoo.specialists.emplace(keys[i], core::train_drl_checkpoint(lanes, fleet));
  }

  // The generalist sees every preset each iteration: lanes are ordered
  // (key 0 replicas, key 1 replicas, ...) so the merged rollout interleaves
  // all operating regimes in one update batch.
  fleet.seed = mix_seed(cfg.seed, kGeneralistTag);
  zoo.generalist = core::train_drl_checkpoint(generalist_lanes, fleet);
  return zoo;
}

}  // namespace ecthub::sim
