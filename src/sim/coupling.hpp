// CouplingBus: the slot-barrier demand router of a coupled fleet.
//
// During a lockstep slot each lane steps with the imports its neighbors
// routed to it at the previous slot boundary and deposits its own exported
// overflow; at the barrier the coordinator — alone, in fixed lane order —
// routes every deposit to the depositor's road-graph neighbors (equal
// split).  Exports gathered at slot t are therefore delivered at slot t+1,
// and because the exchange is serial and order-fixed the routed totals are
// bit-identical at any lockstep_threads and under either LockstepGemm mode.
//
// Thread-safety contract: deposit/take/drop_pending touch only the given
// lane's slots and each lane is owned by exactly one worker per phase, so
// workers never race; exchange() must run with no worker phase in flight
// (the slot barrier).
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::sim {

class CouplingBus {
 public:
  /// One neighbor list per lane.  Throws std::invalid_argument on a neighbor
  /// index out of range or a self-loop.
  explicit CouplingBus(std::vector<std::vector<std::size_t>> neighbors);

  [[nodiscard]] std::size_t lanes() const noexcept { return exported_.size(); }

  /// Records `export_kw` as lane's outgoing overflow this slot (worker-side,
  /// phase C).
  void deposit(std::size_t lane, double export_kw) { exported_[lane] = export_kw; }

  /// Consumes and returns the demand routed to `lane` at the previous slot
  /// boundary (worker-side, phase C, before stepping).
  [[nodiscard]] double take(std::size_t lane) {
    const double kw = pending_[lane];
    pending_[lane] = 0.0;
    return kw;
  }

  /// Discards demand routed to `lane` across an episode boundary (worker-
  /// side, phase A, on episode turnover): a fresh episode starts clean.
  void drop_pending(std::size_t lane) { pending_[lane] = 0.0; }

  /// Routes every deposit to the depositor's neighbors, equal split, in
  /// fixed lane order.  Coordinator-only, at the slot barrier.
  void exchange();

 private:
  std::vector<std::vector<std::size_t>> neighbors_;
  std::vector<double> exported_;  ///< this slot's deposits, cleared by exchange
  std::vector<double> pending_;   ///< routed demand awaiting next slot's take
};

}  // namespace ecthub::sim
