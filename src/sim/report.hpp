// AggregateReport: merges per-hub FleetRunner results into fleet-level
// tables — per-hub detail, per-scenario aggregates, per-scheduler aggregates
// and a grand total.  Pure aggregation: all numbers come straight from the
// per-hub ProfitLedger totals and SoC digests, in deterministic (hub_id /
// key-sorted) order, so the report is as reproducible as the run itself.
#pragma once

#include "common/table.hpp"
#include "sim/fleet_runner.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ecthub::sim {

/// Totals over one group of hub results (a scenario, a scheduler, or all).
struct GroupStats {
  std::size_t hubs = 0;
  std::size_t episodes = 0;
  double revenue = 0.0;
  double grid_cost = 0.0;
  double bp_cost = 0.0;
  double profit = 0.0;
  double soc_mean_sum = 0.0;  ///< sum of per-hub mean SoC (for mean_soc())
  // Metro-coupling spillover (zero on uncoupled fleets): demand exported to
  // road-graph neighbors and neighbor demand absorbed here.
  double spill_exported_kwh = 0.0;
  double spill_served_kwh = 0.0;

  void absorb(const HubRunResult& r);

  [[nodiscard]] double profit_per_hub() const {
    return hubs > 0 ? profit / static_cast<double>(hubs) : 0.0;
  }
  [[nodiscard]] double mean_soc() const {
    return hubs > 0 ? soc_mean_sum / static_cast<double>(hubs) : 0.0;
  }
};

class AggregateReport {
 public:
  AggregateReport() = default;
  explicit AggregateReport(const std::vector<HubRunResult>& results);

  void add(const HubRunResult& r);

  /// Folds another report's groups into this one (for sharded runs).
  void merge(const AggregateReport& other);

  [[nodiscard]] const GroupStats& totals() const noexcept { return totals_; }
  [[nodiscard]] const std::map<std::string, GroupStats>& by_scenario() const noexcept {
    return by_scenario_;
  }
  [[nodiscard]] const std::map<std::string, GroupStats>& by_scheduler() const noexcept {
    return by_scheduler_;
  }

  /// Scenario rows plus a TOTAL row.
  [[nodiscard]] TextTable scenario_table() const;
  /// Scheduler rows plus a TOTAL row.
  [[nodiscard]] TextTable scheduler_table() const;

 private:
  GroupStats totals_;
  std::map<std::string, GroupStats> by_scenario_;
  std::map<std::string, GroupStats> by_scheduler_;
};

/// Per-hub detail table in hub_id order.
[[nodiscard]] TextTable per_hub_table(const std::vector<HubRunResult>& results);

}  // namespace ecthub::sim
