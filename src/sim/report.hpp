// AggregateReport: merges per-hub FleetRunner results into fleet-level
// tables — per-hub detail, per-scenario aggregates, per-scheduler aggregates
// and a grand total.  Pure aggregation: all numbers come straight from the
// per-hub ProfitLedger totals and SoC digests, in deterministic (hub_id /
// key-sorted) order, so the report is as reproducible as the run itself.
//
// Group sums accumulate in ExactSum registers, which are exactly
// associative — absorbing results one by one and merging per-shard partial
// reports in any grouping produce bit-identical state.  That is the
// property the sharded sweep driver (sim/shard_driver) is pinned on: a
// report merged from 1/2/4/8 shard files equals the single-process report
// byte for byte in serialized form (sim/shard_io).
#pragma once

#include "common/exact_sum.hpp"
#include "common/table.hpp"
#include "sim/fleet_runner.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ecthub::sim {

/// Totals over one group of hub results (a scenario, a scheduler, or all).
struct GroupStats {
  std::size_t hubs = 0;
  std::size_t episodes = 0;
  ExactSum revenue;
  ExactSum grid_cost;
  ExactSum bp_cost;
  ExactSum profit;
  ExactSum soc_mean_sum;  ///< sum of per-hub mean SoC (for mean_soc())
  // Metro-coupling traffic (zero on uncoupled fleets): through-traffic
  // demand seen, demand exported to road-graph neighbors, neighbor demand
  // absorbed here, and neighbor imports lost to the one-hop drop bound.
  ExactSum through_kwh;
  ExactSum spill_exported_kwh;
  ExactSum spill_served_kwh;
  ExactSum spill_dropped_kwh;
  std::size_t outage_slots = 0;  ///< front outage slots endured

  void absorb(const HubRunResult& r);

  /// Folds another group in — exact, so any merge order/grouping matches
  /// the sequential absorb of the same results bit for bit.
  void merge(const GroupStats& other) noexcept;

  [[nodiscard]] double profit_per_hub() const {
    return hubs > 0 ? profit.value() / static_cast<double>(hubs) : 0.0;
  }
  [[nodiscard]] double mean_soc() const {
    return hubs > 0 ? soc_mean_sum.value() / static_cast<double>(hubs) : 0.0;
  }

  friend bool operator==(const GroupStats&, const GroupStats&) = default;
};

class AggregateReport {
 public:
  AggregateReport() = default;
  explicit AggregateReport(const std::vector<HubRunResult>& results);

  void add(const HubRunResult& r);

  /// Folds another report's groups into this one (for sharded runs).
  /// Exact: any fold order over a partition of the same results reproduces
  /// the unsharded report's state bit for bit.
  void merge(const AggregateReport& other);

  /// Rebuilds a report from its group decomposition — the load-time
  /// counterpart of the accessors below (sim/shard_io deserialization).
  [[nodiscard]] static AggregateReport from_groups(
      GroupStats totals, std::map<std::string, GroupStats> by_scenario,
      std::map<std::string, GroupStats> by_scheduler);

  [[nodiscard]] const GroupStats& totals() const noexcept { return totals_; }
  [[nodiscard]] const std::map<std::string, GroupStats>& by_scenario() const noexcept {
    return by_scenario_;
  }
  [[nodiscard]] const std::map<std::string, GroupStats>& by_scheduler() const noexcept {
    return by_scheduler_;
  }

  /// Scenario rows plus a TOTAL row.
  [[nodiscard]] TextTable scenario_table() const;
  /// Scheduler rows plus a TOTAL row.
  [[nodiscard]] TextTable scheduler_table() const;

  friend bool operator==(const AggregateReport&, const AggregateReport&) = default;

 private:
  GroupStats totals_;
  std::map<std::string, GroupStats> by_scenario_;
  std::map<std::string, GroupStats> by_scheduler_;
};

/// Per-hub detail table in hub_id order.
[[nodiscard]] TextTable per_hub_table(const std::vector<HubRunResult>& results);

}  // namespace ecthub::sim
