// Actor zoo: a family of DRL checkpoints trained per scenario preset.
//
// Fleet sweeps so far deployed one checkpoint everywhere.  The zoo trains a
// *specialist* actor for each ScenarioRegistry preset (PPO on train_hubs
// lockstep replica lanes of that preset) plus one *generalist* trained on a
// mixed fleet with lanes drawn from every preset — the cross-scenario
// baseline a specialist has to beat to justify its storage.
//
// Everything is deterministic: lane hub seeds and PPO seeds are mixed from
// ZooTrainConfig::seed and the preset's index in the sorted key list, so the
// same (registry, keys, cfg) triple always yields bit-identical checkpoint
// blobs at any collector thread count.
#pragma once

#include "core/fleet.hpp"
#include "policy/drl_policy.hpp"
#include "sim/scenario.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ecthub::sim {

struct ZooTrainConfig {
  /// Training-episode length override; 0 keeps each scenario's own
  /// episode_days.  Training runs are shorter than evaluation sweeps.
  std::size_t episode_days = 7;
  std::size_t iterations = 4;        ///< PPO collect+update cycles per actor
  std::size_t train_hubs = 2;        ///< replica lanes per preset
  std::size_t collector_threads = 1; ///< 0 = hardware concurrency
  std::uint64_t seed = 2024;
  rl::PpoConfig ppo;
};

struct ActorZoo {
  std::vector<std::string> keys;  ///< presets covered, sorted
  std::map<std::string, policy::DrlCheckpoint> specialists;
  policy::DrlCheckpoint generalist;  ///< trained across every preset's lanes
};

/// Trains one specialist per key plus the generalist.  Keys are deduplicated
/// and sorted before seed derivation; empty `keys` means every key in the
/// registry.  Throws std::out_of_range on an unknown key and
/// std::invalid_argument when the presets disagree on the observation layout
/// (the generalist's lanes must share one actor architecture).
[[nodiscard]] ActorZoo train_actor_zoo(const ScenarioRegistry& registry,
                                       std::vector<std::string> keys,
                                       const ZooTrainConfig& cfg);

}  // namespace ecthub::sim
