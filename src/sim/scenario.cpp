#include "sim/scenario.hpp"

#include <stdexcept>
#include <utility>

namespace ecthub::sim {

namespace {

core::HubEnvConfig month_env(std::size_t discount_start = 0, std::size_t discount_end = 0) {
  core::HubEnvConfig env;
  env.episode_days = 30;
  if (discount_start != discount_end) {
    env.discount_by_hour.assign(24, false);
    for (std::size_t h = discount_start; h != discount_end; h = (h + 1) % 24) {
      env.discount_by_hour[h] = true;
    }
  }
  return env;
}

Scenario urban_scenario() {
  Scenario s;
  s.key = "urban";
  s.summary = "dense-traffic rooftop-PV hub with evening EV discounts";
  s.make_hub = [](const std::string& name, std::uint64_t seed) {
    return core::HubConfig::urban(name, seed);
  };
  s.env = month_env(18, 23);
  return s;
}

Scenario rural_scenario() {
  Scenario s;
  s.key = "rural";
  s.summary = "highway hub with PV + wind and sparse, price-elastic demand";
  s.make_hub = [](const std::string& name, std::uint64_t seed) {
    return core::HubConfig::rural(name, seed);
  };
  s.env = month_env();
  return s;
}

Scenario high_renewables_scenario() {
  Scenario s;
  s.key = "high-renewables";
  s.summary = "oversized PV + WT with a large soak battery (windy site)";
  s.make_hub = [](const std::string& name, std::uint64_t seed) {
    core::HubConfig cfg = core::HubConfig::rural(name, seed);
    // Double the plant and give the pack room to soak the surplus.
    if (cfg.plant.pv) {
      cfg.plant.pv->area_m2 = 80.0;
      cfg.plant.pv->rated_power_w = 16000.0;
    }
    if (cfg.plant.wt) cfg.plant.wt->rated_power_w = 20000.0;
    cfg.weather.wind.mean_speed_ms = 9.5;
    cfg.battery.capacity_kwh = 160.0;
    cfg.battery.charge_rate_kw = 30.0;
    cfg.battery.discharge_rate_kw = 30.0;
    return cfg;
  };
  s.env = month_env();
  return s;
}

Scenario blackout_prone_scenario() {
  Scenario s;
  s.key = "blackout-prone";
  s.summary = "unreliable grid: long recovery window, cloudy skies, big reserve";
  s.make_hub = [](const std::string& name, std::uint64_t seed) {
    core::HubConfig cfg = core::HubConfig::urban(name, seed);
    // Eq. 6 reserve must cover a much longer outage, and overcast weather
    // makes the PV contribution unreliable.
    cfg.recovery_hours = 10.0;
    cfg.battery.capacity_kwh = 140.0;
    cfg.weather.solar.cloud_switch_prob = 0.15;
    cfg.weather.solar.cloudy_transmittance = 0.25;
    return cfg;
  };
  s.env = month_env();
  return s;
}

Scenario price_spike_scenario() {
  Scenario s;
  s.key = "price-spike";
  s.summary = "volatile wholesale market: frequent spikes, strong arbitrage";
  s.make_hub = [](const std::string& name, std::uint64_t seed) {
    core::HubConfig cfg = core::HubConfig::urban(name, seed);
    cfg.rtp.spike_prob = 0.06;
    cfg.rtp.spike_scale = 150.0;
    cfg.rtp.noise_sigma = 8.0;
    cfg.battery.capacity_kwh = 120.0;
    return cfg;
  };
  // Midday discounts pull elastic EV demand away from the spiky evening.
  s.env = month_env(11, 15);
  return s;
}

Scenario heatwave_scenario() {
  Scenario s;
  s.key = "heatwave";
  s.summary = "hot clear spell: PV thermal derating, elevated BS load";
  s.make_hub = [](const std::string& name, std::uint64_t seed) {
    core::HubConfig cfg = core::HubConfig::urban(name, seed);
    cfg.weather.mean_temperature_c = 34.0;
    cfg.weather.diurnal_temp_swing_c = 10.0;
    cfg.weather.solar.cloud_switch_prob = 0.03;  // clear skies
    cfg.bs.full_power_kw = 4.5;                  // cooling overhead at full load
    cfg.traffic.min_load = 0.12;                 // always-on streaming indoors
    return cfg;
  };
  s.env = month_env(18, 23);
  return s;
}

}  // namespace

ScenarioRegistry ScenarioRegistry::with_builtins() {
  ScenarioRegistry reg;
  reg.add(urban_scenario());
  reg.add(rural_scenario());
  reg.add(high_renewables_scenario());
  reg.add(blackout_prone_scenario());
  reg.add(price_spike_scenario());
  reg.add(heatwave_scenario());
  return reg;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.key.empty()) throw std::invalid_argument("ScenarioRegistry: empty key");
  if (!scenario.make_hub) {
    throw std::invalid_argument("ScenarioRegistry: scenario '" + scenario.key +
                                "' has no hub factory");
  }
  const std::string key = scenario.key;
  if (!scenarios_.emplace(key, std::move(scenario)).second) {
    throw std::invalid_argument("ScenarioRegistry: duplicate key '" + key + "'");
  }
}

bool ScenarioRegistry::contains(const std::string& key) const {
  return scenarios_.count(key) > 0;
}

const Scenario& ScenarioRegistry::at(const std::string& key) const {
  const auto it = scenarios_.find(key);
  if (it == scenarios_.end()) {
    throw std::out_of_range("ScenarioRegistry: unknown scenario '" + key + "'");
  }
  return it->second;
}

core::HubConfig ScenarioRegistry::make_hub(const std::string& key,
                                           const std::string& hub_name,
                                           std::uint64_t seed) const {
  return at(key).make_hub(hub_name, seed);
}

std::vector<std::string> ScenarioRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [key, scenario] : scenarios_) out.push_back(key);
  return out;  // std::map iterates in sorted order
}

std::vector<std::string> builtin_scenario_keys() {
  return ScenarioRegistry::with_builtins().keys();
}

}  // namespace ecthub::sim
