#include "sim/shard_io.hpp"

#include <bit>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <utility>

namespace ecthub::sim {

namespace {

constexpr char kMagic[4] = {'E', 'C', 'S', 'H'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kSectionPlan = 1;
constexpr std::uint32_t kSectionResults = 2;
constexpr std::uint32_t kSectionReport = 3;
constexpr std::uint32_t kSectionCount = 3;
/// Implausible-size guard for embedded strings — no hub name, scenario key
/// or scheduler name approaches this; a longer length is corruption.
constexpr std::uint64_t kMaxStringLen = std::uint64_t{1} << 20;

[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ---- little-endian, byte-explicit writers --------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

void put_exact_sum(std::string& out, const ExactSum& sum) {
  for (const std::uint64_t limb : sum.limbs()) put_u64(out, limb);
}

void put_group(std::string& out, const GroupStats& g) {
  put_u64(out, g.hubs);
  put_u64(out, g.episodes);
  put_exact_sum(out, g.revenue);
  put_exact_sum(out, g.grid_cost);
  put_exact_sum(out, g.bp_cost);
  put_exact_sum(out, g.profit);
  put_exact_sum(out, g.soc_mean_sum);
  put_exact_sum(out, g.through_kwh);
  put_exact_sum(out, g.spill_exported_kwh);
  put_exact_sum(out, g.spill_served_kwh);
  put_exact_sum(out, g.spill_dropped_kwh);
  put_u64(out, g.outage_slots);
}

void put_result(std::string& out, const HubRunResult& r) {
  put_u64(out, r.hub_id);
  put_string(out, r.hub_name);
  put_string(out, r.scenario);
  put_string(out, to_string(r.scheduler));
  put_u64(out, r.seed);
  put_u64(out, r.episodes);
  put_u64(out, r.slots_per_episode);
  put_double(out, r.revenue);
  put_double(out, r.grid_cost);
  put_double(out, r.bp_cost);
  put_double(out, r.profit);
  put_u64(out, r.episode_profit.size());
  for (const double p : r.episode_profit) put_double(out, p);
  put_double(out, r.soc.first);
  put_double(out, r.soc.last);
  put_double(out, r.soc.min);
  put_double(out, r.soc.max);
  put_double(out, r.soc.mean);
  put_double(out, r.soc.checksum);
  put_u64(out, r.soc.samples);
  put_double(out, r.through_kwh);
  put_double(out, r.spill_exported_kwh);
  put_double(out, r.spill_served_kwh);
  put_double(out, r.spill_dropped_kwh);
  put_u64(out, r.outage_slots);
}

// ---- structurally checked payload reader (runs after the checksum) -------

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
      v |= std::uint64_t{static_cast<unsigned char>(bytes_[pos_ + i])} << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str() {
    const std::uint64_t len = u64();
    if (len > kMaxStringLen) {
      throw ShardFormatError("shard payload: implausible string length " +
                             std::to_string(len));
    }
    need(static_cast<std::size_t>(len));
    std::string s(bytes_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  [[nodiscard]] ExactSum exact_sum() {
    ExactSum::Limbs limbs{};
    for (std::uint64_t& limb : limbs) limb = u64();
    return ExactSum::from_limbs(limbs);
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  void expect_end(const char* what) const {
    if (pos_ != bytes_.size()) {
      throw ShardFormatError(std::string("shard payload: trailing bytes in ") + what +
                             " section");
    }
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw ShardFormatError("shard payload: section ends before its contents");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

[[nodiscard]] GroupStats read_group(PayloadReader& in) {
  GroupStats g;
  g.hubs = in.u64();
  g.episodes = in.u64();
  g.revenue = in.exact_sum();
  g.grid_cost = in.exact_sum();
  g.bp_cost = in.exact_sum();
  g.profit = in.exact_sum();
  g.soc_mean_sum = in.exact_sum();
  g.through_kwh = in.exact_sum();
  g.spill_exported_kwh = in.exact_sum();
  g.spill_served_kwh = in.exact_sum();
  g.spill_dropped_kwh = in.exact_sum();
  g.outage_slots = in.u64();
  return g;
}

[[nodiscard]] HubRunResult read_result(PayloadReader& in) {
  HubRunResult r;
  r.hub_id = in.u64();
  r.hub_name = in.str();
  r.scenario = in.str();
  const std::string scheduler_name = in.str();
  try {
    r.scheduler = scheduler_kind_from_string(scheduler_name);
  } catch (const std::invalid_argument& e) {
    throw ShardFormatError(std::string("shard payload: ") + e.what());
  }
  r.seed = in.u64();
  r.episodes = in.u64();
  r.slots_per_episode = in.u64();
  r.revenue = in.f64();
  r.grid_cost = in.f64();
  r.bp_cost = in.f64();
  r.profit = in.f64();
  const std::uint64_t profits = in.u64();
  if (profits > in.remaining() / 8) {
    throw ShardFormatError("shard payload: implausible episode_profit count " +
                           std::to_string(profits));
  }
  r.episode_profit.resize(static_cast<std::size_t>(profits));
  for (double& p : r.episode_profit) p = in.f64();
  r.soc.first = in.f64();
  r.soc.last = in.f64();
  r.soc.min = in.f64();
  r.soc.max = in.f64();
  r.soc.mean = in.f64();
  r.soc.checksum = in.f64();
  r.soc.samples = in.u64();
  r.through_kwh = in.f64();
  r.spill_exported_kwh = in.f64();
  r.spill_served_kwh = in.f64();
  r.spill_dropped_kwh = in.f64();
  r.outage_slots = in.u64();
  return r;
}

[[nodiscard]] std::string serialize_report_payload(const AggregateReport& report) {
  std::string out;
  put_group(out, report.totals());
  put_u64(out, report.by_scenario().size());
  for (const auto& [key, stats] : report.by_scenario()) {
    put_string(out, key);
    put_group(out, stats);
  }
  put_u64(out, report.by_scheduler().size());
  for (const auto& [key, stats] : report.by_scheduler()) {
    put_string(out, key);
    put_group(out, stats);
  }
  return out;
}

[[nodiscard]] AggregateReport read_report_payload(PayloadReader& in) {
  GroupStats totals = read_group(in);
  std::map<std::string, GroupStats> by_scenario;
  const std::uint64_t scenarios = in.u64();
  for (std::uint64_t i = 0; i < scenarios; ++i) {
    std::string key = in.str();
    if (by_scenario.contains(key)) {
      throw ShardFormatError("shard payload: duplicate scenario key '" + key + "'");
    }
    by_scenario.emplace(std::move(key), read_group(in));
  }
  std::map<std::string, GroupStats> by_scheduler;
  const std::uint64_t schedulers = in.u64();
  for (std::uint64_t i = 0; i < schedulers; ++i) {
    std::string key = in.str();
    if (by_scheduler.contains(key)) {
      throw ShardFormatError("shard payload: duplicate scheduler key '" + key + "'");
    }
    by_scheduler.emplace(std::move(key), read_group(in));
  }
  return AggregateReport::from_groups(std::move(totals), std::move(by_scenario),
                                      std::move(by_scheduler));
}

void put_section(std::string& out, std::uint32_t id, const std::string& payload) {
  put_u32(out, id);
  put_u64(out, payload.size());
  out.append(payload);
}

}  // namespace

std::string serialize_report(const AggregateReport& report) {
  return serialize_report_payload(report);
}

std::string serialize_shard(const ShardData& shard) {
  std::string plan_payload;
  put_u64(plan_payload, shard.plan.shard_index);
  put_u64(plan_payload, shard.plan.shard_count);
  put_u64(plan_payload, shard.plan.job_count);
  put_u64(plan_payload, shard.plan.begin);
  put_u64(plan_payload, shard.plan.end);

  std::string results_payload;
  put_u64(results_payload, shard.results.size());
  for (const HubRunResult& r : shard.results) put_result(results_payload, r);

  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, kSectionCount);
  put_section(out, kSectionPlan, plan_payload);
  put_section(out, kSectionResults, results_payload);
  put_section(out, kSectionReport, serialize_report_payload(shard.report));
  put_u64(out, fnv1a(out));
  return out;
}

ShardData parse_shard(std::string_view bytes) {
  // Check order is the error contract: magic, then version, then the size
  // walk (truncation), then the checksum, and only then is any payload
  // byte interpreted.
  if (bytes.size() < sizeof kMagic) {
    throw ShardTruncatedError("shard input shorter than the magic (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (bytes.substr(0, sizeof kMagic) != std::string_view(kMagic, sizeof kMagic)) {
    throw ShardMagicError("shard input does not start with the ECSH magic");
  }
  if (bytes.size() < 12) {
    throw ShardTruncatedError("shard input ends inside the header");
  }
  const auto u32_at = [&bytes](std::size_t pos) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i) {
      v |= std::uint32_t{static_cast<unsigned char>(bytes[pos + i])} << (8 * i);
    }
    return v;
  };
  const auto u64_at = [&bytes](std::size_t pos) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
      v |= std::uint64_t{static_cast<unsigned char>(bytes[pos + i])} << (8 * i);
    }
    return v;
  };
  const std::uint32_t version = u32_at(4);
  if (version != kVersion) {
    throw ShardVersionError("shard format version " + std::to_string(version) +
                            "; this build reads version " + std::to_string(kVersion));
  }
  const std::uint32_t section_count = u32_at(8);

  // Size walk: every section header and payload, plus the 8-byte checksum
  // trailer, must fit — anything short is truncation.
  std::size_t cursor = 12;
  struct SectionRef {
    std::uint32_t id;
    std::size_t begin;
    std::size_t size;
  };
  std::vector<SectionRef> sections;
  sections.reserve(section_count);
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (bytes.size() - cursor < 12 + 8) {
      throw ShardTruncatedError("shard input ends inside section header " +
                                std::to_string(s));
    }
    const std::uint32_t id = u32_at(cursor);
    const std::uint64_t payload_size = u64_at(cursor + 4);
    if (payload_size > bytes.size() - cursor - 12 - 8) {
      throw ShardTruncatedError("shard input ends inside section " + std::to_string(s) +
                                " payload (" + std::to_string(payload_size) +
                                " bytes promised)");
    }
    sections.push_back({id, cursor + 12, static_cast<std::size_t>(payload_size)});
    cursor += 12 + static_cast<std::size_t>(payload_size);
  }
  if (bytes.size() - cursor < 8) {
    throw ShardTruncatedError("shard input ends inside the checksum trailer");
  }
  if (bytes.size() - cursor > 8) {
    throw ShardFormatError("shard input has trailing bytes after the checksum");
  }
  const std::uint64_t stored = u64_at(cursor);
  const std::uint64_t computed = fnv1a(bytes.substr(0, cursor));
  if (stored != computed) {
    throw ShardChecksumError("shard checksum mismatch (corrupted payload)");
  }

  if (section_count != kSectionCount || sections[0].id != kSectionPlan ||
      sections[1].id != kSectionResults || sections[2].id != kSectionReport) {
    throw ShardFormatError("shard input does not carry the plan/results/report "
                           "section sequence of format version 1");
  }

  ShardData shard;
  {
    PayloadReader in(bytes.substr(sections[0].begin, sections[0].size));
    shard.plan.shard_index = static_cast<std::size_t>(in.u64());
    shard.plan.shard_count = static_cast<std::size_t>(in.u64());
    shard.plan.job_count = static_cast<std::size_t>(in.u64());
    shard.plan.begin = static_cast<std::size_t>(in.u64());
    shard.plan.end = static_cast<std::size_t>(in.u64());
    in.expect_end("plan");
  }
  try {
    if (shard.plan != plan_shard(shard.plan.job_count, shard.plan.shard_index,
                                 shard.plan.shard_count)) {
      throw ShardFormatError("shard plan is not the canonical partition of its "
                             "(job_count, shard_index, shard_count)");
    }
  } catch (const std::invalid_argument& e) {
    throw ShardFormatError(std::string("shard plan: ") + e.what());
  }
  {
    PayloadReader in(bytes.substr(sections[1].begin, sections[1].size));
    const std::uint64_t count = in.u64();
    if (count != shard.plan.size()) {
      throw ShardFormatError("shard carries " + std::to_string(count) +
                             " results but its plan owns " +
                             std::to_string(shard.plan.size()) + " jobs");
    }
    shard.results.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      HubRunResult r = read_result(in);
      if (r.hub_id != shard.plan.begin + k) {
        throw ShardFormatError("shard result " + std::to_string(k) +
                               " carries hub_id " + std::to_string(r.hub_id) +
                               "; its plan assigns " +
                               std::to_string(shard.plan.begin + k));
      }
      shard.results.push_back(std::move(r));
    }
    in.expect_end("results");
  }
  {
    PayloadReader in(bytes.substr(sections[2].begin, sections[2].size));
    shard.report = read_report_payload(in);
    in.expect_end("report");
  }
  if (!(AggregateReport(shard.results) == shard.report)) {
    throw ShardFormatError("shard report section does not aggregate the shard's own "
                           "results");
  }
  return shard;
}

void save_shard(const std::filesystem::path& path, const ShardData& shard) {
  const std::string bytes = serialize_shard(shard);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw ShardIoError("save_shard: cannot open '" + path.string() + "' for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    throw ShardIoError("save_shard: write to '" + path.string() + "' failed");
  }
}

ShardData load_shard(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ShardIoError("load_shard: cannot open '" + path.string() + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw ShardIoError("load_shard: read from '" + path.string() + "' failed");
  }
  return parse_shard(bytes);
}

}  // namespace ecthub::sim
