#include "traffic/profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::traffic {

std::string to_string(AreaType a) {
  switch (a) {
    case AreaType::kResidential: return "residential";
    case AreaType::kOffice: return "office";
    case AreaType::kHighway: return "highway";
    case AreaType::kMixed: return "mixed";
  }
  throw std::logic_error("to_string(AreaType): invalid value");
}

DiurnalProfile::DiurnalProfile(std::array<double, 24> hourly) : hourly_(hourly) {
  for (double& w : hourly_) w = std::clamp(w, 0.0, 1.0);
}

DiurnalProfile DiurnalProfile::for_area(AreaType area) {
  // Shapes digitized qualitatively from city-scale measurement literature:
  // normalized to peak 1.0; hour index = local hour.
  switch (area) {
    case AreaType::kResidential:
      return DiurnalProfile({0.30, 0.22, 0.16, 0.12, 0.10, 0.12, 0.20, 0.35,
                             0.45, 0.48, 0.50, 0.55, 0.58, 0.55, 0.52, 0.55,
                             0.60, 0.70, 0.85, 0.95, 1.00, 0.95, 0.75, 0.50});
    case AreaType::kOffice:
      return DiurnalProfile({0.10, 0.08, 0.07, 0.06, 0.06, 0.08, 0.18, 0.45,
                             0.75, 0.92, 1.00, 0.97, 0.85, 0.90, 0.98, 0.95,
                             0.88, 0.70, 0.45, 0.30, 0.22, 0.18, 0.14, 0.12});
    case AreaType::kHighway:
      return DiurnalProfile({0.12, 0.08, 0.06, 0.06, 0.10, 0.25, 0.60, 0.95,
                             1.00, 0.70, 0.55, 0.55, 0.60, 0.58, 0.55, 0.60,
                             0.80, 0.98, 0.95, 0.70, 0.45, 0.32, 0.22, 0.16});
    case AreaType::kMixed: {
      const auto r = for_area(AreaType::kResidential).hourly();
      const auto o = for_area(AreaType::kOffice).hourly();
      std::array<double, 24> m{};
      for (std::size_t h = 0; h < 24; ++h) m[h] = 0.5 * (r[h] + o[h]);
      return DiurnalProfile(m);
    }
  }
  throw std::logic_error("DiurnalProfile::for_area: invalid area");
}

double DiurnalProfile::at_hour(double hour_of_day) const {
  double h = std::fmod(hour_of_day, 24.0);
  if (h < 0.0) h += 24.0;
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = (lo + 1) % 24;
  const double frac = h - static_cast<double>(lo);
  return hourly_[lo] * (1.0 - frac) + hourly_[hi] * frac;
}

std::size_t DiurnalProfile::peak_hour() const {
  return static_cast<std::size_t>(
      std::max_element(hourly_.begin(), hourly_.end()) - hourly_.begin());
}

std::size_t DiurnalProfile::trough_hour() const {
  return static_cast<std::size_t>(
      std::min_element(hourly_.begin(), hourly_.end()) - hourly_.begin());
}

}  // namespace ecthub::traffic
