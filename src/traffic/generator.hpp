// Stochastic network-traffic (load-rate) generator.
//
// Produces the load rate alpha_t in [0, 1] that drives the BS power model
// P_BS(t) = Pmin + alpha_t (Pmax - Pmin) (paper Eq. 1), plus a traffic-volume
// series in GB mirroring the paper's Fig. 5 "Load" axis.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/time_grid.hpp"
#include "traffic/profile.hpp"

namespace ecthub::traffic {

struct TrafficConfig {
  AreaType area = AreaType::kMixed;
  /// Weekend traffic multiplier (offices quiet down, residential rises a bit).
  double weekend_factor = 0.85;
  /// AR(1) persistence of the multiplicative noise in (0, 1).
  double noise_persistence = 0.7;
  /// Standard deviation of the AR(1) innovation.
  double noise_sigma = 0.08;
  /// Peak traffic volume in GB per slot for the volume series.
  double peak_volume_gb = 160.0;
  /// Floor on the load rate (control-plane traffic never drops to zero).
  double min_load = 0.05;
};

/// One generated trace: per-slot load rate and traffic volume.
struct TrafficTrace {
  std::vector<double> load_rate;  ///< alpha_t in [0, 1]
  std::vector<double> volume_gb;  ///< traffic volume per slot
};

class TrafficGenerator {
 public:
  TrafficGenerator(TrafficConfig cfg, Rng rng);

  /// Generates a full trace over `grid`.  Deterministic given the Rng state
  /// at construction.
  [[nodiscard]] TrafficTrace generate(const TimeGrid& grid);

  /// Allocation-free variant: writes the trace into `trace` in place,
  /// reusing its buffers' capacity.  Draws the identical stochastic stream
  /// as generate() — EctHubEnv::reset uses this to regenerate episodes
  /// without touching the heap.
  void generate_into(const TimeGrid& grid, TrafficTrace& trace);

  [[nodiscard]] const TrafficConfig& config() const noexcept { return cfg_; }

 private:
  TrafficConfig cfg_;
  Rng rng_;
};

}  // namespace ecthub::traffic
