#include "traffic/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::traffic {

TrafficGenerator::TrafficGenerator(TrafficConfig cfg, Rng rng) : cfg_(cfg), rng_(rng) {
  if (cfg_.noise_persistence < 0.0 || cfg_.noise_persistence >= 1.0) {
    throw std::invalid_argument("TrafficConfig: noise_persistence must be in [0, 1)");
  }
  if (cfg_.noise_sigma < 0.0) throw std::invalid_argument("TrafficConfig: noise_sigma < 0");
  if (cfg_.min_load < 0.0 || cfg_.min_load > 1.0) {
    throw std::invalid_argument("TrafficConfig: min_load out of [0, 1]");
  }
}

TrafficTrace TrafficGenerator::generate(const TimeGrid& grid) {
  TrafficTrace trace;
  generate_into(grid, trace);
  return trace;
}

void TrafficGenerator::generate_into(const TimeGrid& grid, TrafficTrace& trace) {
  const DiurnalProfile profile = DiurnalProfile::for_area(cfg_.area);
  trace.load_rate.resize(grid.size());
  trace.volume_gb.resize(grid.size());

  double ar = 0.0;  // AR(1) log-multiplier state
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double envelope = profile.at_hour(grid.hour_of_day(t));
    const double weekend = grid.is_weekend(t) ? cfg_.weekend_factor : 1.0;
    ar = cfg_.noise_persistence * ar + rng_.normal(0.0, cfg_.noise_sigma);
    const double load = std::clamp(envelope * weekend * std::exp(ar), cfg_.min_load, 1.0);
    trace.load_rate[t] = load;
    trace.volume_gb[t] = load * cfg_.peak_volume_gb;
  }
}

}  // namespace ecthub::traffic
