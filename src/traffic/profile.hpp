// Diurnal traffic profiles for 5G base stations.
//
// The paper's measurement study (Fig. 5) shows the BS load rate follows a
// strong diurnal pattern that peaks in the evening and correlates with the
// real-time electricity price.  A DiurnalProfile captures the deterministic
// part of that pattern as 24 hourly weights in [0, 1]; the generator layers
// stochastic structure on top.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace ecthub::traffic {

/// Area archetype a base station serves.  Profiles follow the shapes reported
/// in city-scale cellular measurement studies (cf. paper ref [22]):
///   Residential — morning bump, deep night trough, strong evening peak.
///   Office      — business-hours plateau, quiet evenings and weekends.
///   Highway     — commute double peak, moderate midday.
///   Mixed       — blend of residential and office.
enum class AreaType { kResidential, kOffice, kHighway, kMixed };

[[nodiscard]] std::string to_string(AreaType a);

/// 24 hourly weights in [0, 1] giving the expected load-rate envelope.
class DiurnalProfile {
 public:
  /// Weights are clamped into [0, 1].
  explicit DiurnalProfile(std::array<double, 24> hourly);

  /// Canonical profile for an area archetype.
  static DiurnalProfile for_area(AreaType area);

  /// Envelope value at a fractional hour of day (piecewise-linear, wraps at
  /// midnight so hour 23.5 interpolates toward hour 0).
  [[nodiscard]] double at_hour(double hour_of_day) const;

  [[nodiscard]] const std::array<double, 24>& hourly() const noexcept { return hourly_; }

  /// Peak / trough hours of the envelope (first occurrence).
  [[nodiscard]] std::size_t peak_hour() const;
  [[nodiscard]] std::size_t trough_hour() const;

 private:
  std::array<double, 24> hourly_;
};

}  // namespace ecthub::traffic
