// Rule-based battery schedulers: ablation baselines against ECT-DRL.
//
// These implement the obvious operating strategies an operator would try
// before reaching for RL; the ablation bench (DESIGN.md Sec. 5) measures how
// much of ECT-DRL's profit each heuristic captures.
#pragma once

#include "core/hub_env.hpp"
#include "forecast/predictors.hpp"

#include <memory>
#include <string>

namespace ecthub::core {

/// A scheduler maps the environment's public slot context to a BP action
/// (0 = idle, 1 = charge, 2 = discharge — the EctHubEnv action encoding).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::size_t decide(const EctHubEnv& env) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Never uses the battery (the no-BESS operating point).
class NoBatteryScheduler final : public Scheduler {
 public:
  std::size_t decide(const EctHubEnv& env) override;
  [[nodiscard]] std::string name() const override { return "NoBattery"; }
};

/// Charges during a fixed off-peak window and discharges during the evening
/// peak — the classic time-of-use rule.
class TouScheduler final : public Scheduler {
 public:
  TouScheduler(double charge_start = 23.0, double charge_end = 7.0,
               double discharge_start = 17.0, double discharge_end = 22.0);
  std::size_t decide(const EctHubEnv& env) override;
  [[nodiscard]] std::string name() const override { return "TOU"; }

 private:
  double cs_, ce_, ds_, de_;
};

/// Price-threshold arbitrage: charge when the current RTP is below the
/// episode-so-far low quantile, discharge above the high quantile.
class GreedyPriceScheduler final : public Scheduler {
 public:
  GreedyPriceScheduler(double low_quantile = 30.0, double high_quantile = 70.0);
  std::size_t decide(const EctHubEnv& env) override;
  [[nodiscard]] std::string name() const override { return "GreedyPrice"; }

 private:
  double low_q_, high_q_;
};

/// Forecast-driven arbitrage: learns the diurnal price curve online with a
/// seasonal-naive forecaster and charges/discharges when the *forecast* for
/// the current hour sits in the low/high band of the predicted daily curve.
/// Unlike GreedyPriceScheduler it reacts to the expected price shape rather
/// than realized quantiles — the interpretable middle ground between the
/// TOU rule and ECT-DRL.
class ForecastScheduler final : public Scheduler {
 public:
  /// @param low_band / high_band fractions of the predicted daily range
  ForecastScheduler(double low_band = 0.3, double high_band = 0.7);
  std::size_t decide(const EctHubEnv& env) override;
  [[nodiscard]] std::string name() const override { return "Forecast"; }

 private:
  double low_band_, high_band_;
  forecast::SeasonalNaivePredictor price_forecast_;
  std::size_t last_observed_ = 0;
  bool any_observed_ = false;
};

/// Uniform random action — the sanity-check floor.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 1);
  std::size_t decide(const EctHubEnv& env) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

/// Runs `episodes` full episodes of `env` under `sched`; returns per-episode
/// total profit.
[[nodiscard]] std::vector<double> run_scheduler(EctHubEnv& env, Scheduler& sched,
                                                std::size_t episodes);

}  // namespace ecthub::core
