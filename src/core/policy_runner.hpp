// Drives one hub environment under any Policy through the shared
// observation contract (policy/observation.hpp).
//
// This is the scalar (single-hub) execution path; sim::FleetRunner scales
// the same Policy API across a fleet, per-hub-threaded or lockstep-batched.
#pragma once

#include "core/hub_env.hpp"
#include "policy/policy.hpp"

#include <vector>

namespace ecthub::core {

/// Runs `episodes` full episodes of `env` under `pol`; returns per-episode
/// total profit.  Profit comes from the ledger — env rewards may be shaped
/// for RL.  The policy sees each slot's observation exactly once, in order,
/// and gets begin_episode() after every reset.
[[nodiscard]] std::vector<double> run_policy(EctHubEnv& env, policy::Policy& pol,
                                             std::size_t episodes);

}  // namespace ecthub::core
