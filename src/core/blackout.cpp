#include "core/blackout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecthub::core {

std::vector<OutageEvent> draw_outages(const OutageModel& model, std::size_t num_slots,
                                      double dt_hours, Rng& rng) {
  if (num_slots == 0) throw std::invalid_argument("draw_outages: num_slots == 0");
  if (dt_hours <= 0.0) throw std::invalid_argument("draw_outages: dt_hours <= 0");
  if (model.rate_per_month < 0.0 || model.min_duration_h < 0.0 ||
      model.max_duration_h < model.min_duration_h) {
    throw std::invalid_argument("draw_outages: bad OutageModel");
  }
  const double horizon_months =
      static_cast<double>(num_slots) * dt_hours / (30.0 * 24.0);
  const std::uint64_t count = rng.poisson(model.rate_per_month * horizon_months);
  std::vector<OutageEvent> events;
  events.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    OutageEvent e;
    e.start_slot = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_slots) - 1));
    const double dur_h = rng.uniform(model.min_duration_h, model.max_duration_h);
    e.duration_slots = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(dur_h / dt_hours)));
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const OutageEvent& a, const OutageEvent& b) {
              return a.start_slot < b.start_slot;
            });
  return events;
}

RideThroughResult ride_through(const battery::BatteryConfig& pack, double soc_kwh,
                               const std::vector<double>& bs_kw, double dt_hours) {
  pack.validate();
  if (dt_hours <= 0.0) throw std::invalid_argument("ride_through: dt_hours <= 0");
  RideThroughResult r;
  // During a blackout the pack may drain to its hard minimum (soc_min_frac),
  // not the raised trading floor — that band exists exactly for this.
  const double hard_floor = pack.soc_min_frac * pack.capacity_kwh;
  double soc = std::max(soc_kwh, hard_floor);
  r.survived = true;
  for (double draw_kw : bs_kw) {
    if (draw_kw < 0.0) throw std::invalid_argument("ride_through: negative BS draw");
    const double delivered_want = std::min(draw_kw, pack.discharge_rate_kw) * dt_hours;
    const double depletable = (soc - hard_floor) * pack.discharge_efficiency;
    if (delivered_want > depletable + 1e-9 || draw_kw > pack.discharge_rate_kw) {
      r.survived = false;
      break;
    }
    soc -= delivered_want / pack.discharge_efficiency;
    r.energy_used_kwh += delivered_want;
    r.slots_survived += 1.0;
  }
  r.final_soc_kwh = soc;
  return r;
}

SurvivalStats outage_survival(const battery::BatteryConfig& pack, double floor_soc_kwh,
                              const std::vector<double>& bs_kw, const OutageModel& model,
                              double dt_hours, std::size_t trials, Rng rng) {
  if (trials == 0) throw std::invalid_argument("outage_survival: trials == 0");
  if (bs_kw.empty()) throw std::invalid_argument("outage_survival: empty BS trace");
  SurvivalStats stats;
  stats.trials = trials;
  for (std::size_t k = 0; k < trials; ++k) {
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bs_kw.size()) - 1));
    const double dur_h = rng.uniform(model.min_duration_h, model.max_duration_h);
    const auto dur_slots = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(dur_h / dt_hours)));
    std::vector<double> window;
    window.reserve(dur_slots);
    for (std::size_t i = 0; i < dur_slots; ++i) {
      window.push_back(bs_kw[(start + i) % bs_kw.size()]);
    }
    const RideThroughResult r = ride_through(pack, floor_soc_kwh, window, dt_hours);
    if (r.survived) stats.survival_rate += 1.0;
    stats.mean_slots_survived += r.slots_survived;
  }
  stats.survival_rate /= static_cast<double>(trials);
  stats.mean_slots_survived /= static_cast<double>(trials);
  return stats;
}

}  // namespace ecthub::core
