#include "core/hub_config.hpp"

namespace ecthub::core {

HubConfig HubConfig::urban(std::string name, std::uint64_t seed) {
  HubConfig cfg;
  cfg.name = std::move(name);
  cfg.site = HubSite::kUrban;
  cfg.seed = seed;
  cfg.plant = renewables::PlantConfig::urban();
  cfg.traffic.area = traffic::AreaType::kMixed;
  cfg.station.num_plugs = 2;
  cfg.ev_popularity = 0.9;
  cfg.ev_evening_sensitivity = 0.7;
  return cfg;
}

HubConfig HubConfig::rural(std::string name, std::uint64_t seed) {
  HubConfig cfg;
  cfg.name = std::move(name);
  cfg.site = HubSite::kRural;
  cfg.seed = seed;
  cfg.plant = renewables::PlantConfig::rural();
  cfg.traffic.area = traffic::AreaType::kHighway;
  cfg.station.num_plugs = 2;
  cfg.station.plug_rate_kw = 11.0;  // highway sites install faster chargers
  cfg.ev_popularity = 0.6;
  cfg.ev_evening_sensitivity = 0.5;
  // Rural sites see stronger and steadier wind.
  cfg.weather.wind.mean_speed_ms = 8.0;
  return cfg;
}

std::vector<HubConfig> default_fleet(std::uint64_t base_seed) {
  std::vector<HubConfig> fleet;
  fleet.reserve(12);
  for (std::size_t i = 0; i < 12; ++i) {
    const std::uint64_t seed = base_seed + 1000 * (i + 1);
    const std::string name = "Hub" + std::to_string(i + 1);
    HubConfig cfg = (i % 3 == 2) ? HubConfig::rural(name, seed) : HubConfig::urban(name, seed);
    cfg.station.station_id = i;
    // Heterogeneity across the fleet: demand scale, price sensitivity,
    // commuter share and battery size all vary.
    cfg.ev_popularity = 0.68 + 0.04 * static_cast<double>(i % 8);
    cfg.ev_evening_sensitivity = 0.50 + 0.05 * static_cast<double>(i % 7);
    cfg.ev_evening_commuter = 0.15 + 0.07 * static_cast<double>(i % 6);
    cfg.battery.capacity_kwh = 80.0 + 20.0 * static_cast<double>(i % 4);
    fleet.push_back(std::move(cfg));
  }
  return fleet;
}

}  // namespace ecthub::core
