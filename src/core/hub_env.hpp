// The ECT-Hub environment: one hub simulated as an episodic RL task.
//
// Each episode spans `episode_days` (paper: 30) of hourly slots.  On reset
// the environment draws a fresh stochastic scenario — network traffic,
// weather, renewable generation, real-time prices and EV behaviour — from the
// hub's generators, applies the discount schedule produced by the pricing
// stage, sizes the blackout reserve (Eq. 6), and starts the battery at a
// random SoC (matching the paper's evaluation protocol).
//
// State (Eq. 24): lookback windows of RTP, weather (GHI + wind), traffic and
// SRTP, the battery SoC, plus an hour-of-day phase encoding.  Action: the BP
// schedule {idle, charge, discharge}.  Reward: the slot profit Psi_t (Eq. 12).
#pragma once

#include "core/blackout.hpp"
#include "core/hub_config.hpp"
#include "core/profit.hpp"
#include "policy/observation.hpp"
#include "rl/env.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ecthub::core {

/// Metro-coupling knobs of one hub.  When enabled, the hub (a) draws an
/// exogenous through-traffic demand stream (passing EVs beyond the resident
/// population) that can overflow its plugs and be exported to road-graph
/// neighbors, (b) keys its weather draws off the shared metro front stream
/// instead of the i.i.d. per-hub stream, and (c) samples grid-outage windows
/// from the same front, during which the charging station shuts down (the
/// ride_through contract).  All of it is off by default — an uncoupled hub is
/// bit-identical to the pre-coupling environment.
struct HubCouplingConfig {
  bool enabled = false;
  /// Expected passing-EV arrivals per slot at full network load; scaled by
  /// the slot's load rate like every other demand stream.
  double through_rate = 0.0;
  /// Metro front stream (MetroMap::front_seed()).  Non-zero replaces the
  /// per-hub weather fork and activates the outage front, so hubs sharing a
  /// front_seed see correlated weather and simultaneous outages.
  std::uint64_t front_seed = 0;
  /// Outage front intensity; rate 0 disables outages even when coupled.
  OutageModel outage{0.0, 1.0, 8.0};
};

struct HubEnvConfig {
  std::size_t episode_days = 30;
  std::size_t slots_per_day = 24;
  std::size_t lookback = 6;  ///< slots of history per state channel

  /// Discount decisions by hour of day (24 entries) produced by ECT-Price or
  /// a baseline; empty means no discounts.
  std::vector<bool> discount_by_hour;
  double discount_fraction = 0.2;

  /// Initial SoC: uniform in [min, max] fraction at each reset.
  double init_soc_lo = 0.3;
  double init_soc_hi = 0.9;

  /// Counterfactual reward shaping for RL: reward_t = profit_t(action) -
  /// profit_t(idle).  The idle-profit series does not depend on past actions
  /// (EV revenue and BS load are exogenous), so the shaping subtracts a
  /// constant from every episode return — the optimal policy is unchanged —
  /// while removing the exogenous variance that otherwise buries the battery
  /// arbitrage signal.  The ledger always records the *true* profit.
  bool shaped_reward = true;

  /// Metro coupling (off by default; see HubCouplingConfig).
  HubCouplingConfig coupling;
};

/// Reward / termination of one allocation-free step (EctHubEnv::step_into).
/// Lives on the rl::Env interface now that the vectorized rollout collector
/// drives arbitrary envs through the into-path; the alias keeps core
/// spelling unchanged.  EctHubEnv episodes end only at the fixed horizon,
/// so `done` always comes with `truncated` — GAE bootstraps V(s_T) there.
using StepOutcome = rl::StepOutcome;

/// The coupling in/out view of one slot (EctHubEnv::step_into 3-arg
/// overload).  `import_kw` is the caller's input: demand arriving from
/// neighbor hubs this slot.  Everything else is written by the step:
/// `export_kw` is the overflow the CouplingBus routes onward, the served /
/// dropped split accounts for the imports, and `outage` flags a front slot.
/// On an uncoupled hub every output is zero and the input is ignored.
struct SlotCoupling {
  double import_kw = 0.0;          ///< in: demand routed here by neighbors
  double export_kw = 0.0;          ///< out: unserved through demand, exported
  double served_import_kw = 0.0;   ///< out: imports absorbed by free plugs
  double dropped_import_kw = 0.0;  ///< out: imports lost (one-hop bound)
  double through_kw = 0.0;         ///< out: this slot's through demand
  bool outage = false;             ///< out: front outage active this slot
};

class EctHubEnv final : public rl::Env {
 public:
  /// Validates both configurations eagerly (including the battery pack, so a
  /// zero-capacity pack fails here rather than at the first reset).
  /// Construction is cheap — all episode buffers are allocated lazily on the
  /// first reset() and reused across subsequent resets — so fleet workers can
  /// build an env per hub without paying a large up-front cost.
  EctHubEnv(HubConfig hub, HubEnvConfig env_cfg);

  std::vector<double> reset() override;
  rl::StepResult step(std::size_t action) override;

  // ---- Allocation-free fast path ----------------------------------------
  // reset() / step() are thin wrappers over these; fleet runners drive the
  // *_into overloads with one persistent state buffer per hub, so after the
  // first episode (warm-up) an episode costs zero heap allocations end to
  // end — generators regenerate in place, the observation is written in
  // place, and the battery/ledger live in place.

  /// Writes the current observation (exactly what reset()/step() return)
  /// into `out`; out.size() must equal state_dim().
  void observe_into(std::span<double> out) const;

  /// reset() without the return-value allocation: regenerates the episode
  /// and writes the initial observation into `state`.
  void reset_into(std::span<double> state) override;

  /// step() without the StepResult allocation: applies `action`, writes the
  /// next observation into `next_state` and returns the reward/done pair.
  /// Bit-identical to step().  When the episode ends (always a horizon
  /// truncation here, so done comes with truncated) the buffer holds the
  /// *final* observation — the lookback windows hold their last slot and
  /// the hour-of-day encoding wraps — so a critic can bootstrap V(s_T).
  StepOutcome step_into(std::size_t action, std::span<double> next_state) override;

  /// The coupling-aware step: reads `coupling.import_kw` (demand routed here
  /// by neighbor hubs), serves this slot's through demand and imports with
  /// whatever plug capacity the resident EVs leave free, and reports the
  /// unserved through demand as `coupling.export_kw` for the CouplingBus to
  /// route onward.  During a front outage the station shuts down: nothing is
  /// served, imports are dropped and the through demand is exported whole.
  /// On an uncoupled hub this is exactly the 2-arg step (outputs all zero).
  StepOutcome step_into(std::size_t action, std::span<double> next_state,
                        SlotCoupling& coupling);

  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t action_count() const override { return 3; }

  /// The layout of the observation vectors this environment emits — the
  /// contract every policy (rule-based or DRL) decodes its features through.
  [[nodiscard]] policy::ObservationLayout observation_layout() const noexcept {
    return policy::ObservationLayout{cfg_.lookback};
  }

  // ---- Introspection for rule-based schedulers, accounting and tests ----
  [[nodiscard]] std::size_t current_slot() const noexcept { return t_; }
  [[nodiscard]] std::size_t slots_per_episode() const noexcept {
    return cfg_.episode_days * cfg_.slots_per_day;
  }
  [[nodiscard]] double rtp_at(std::size_t t) const { return rtp_.at(t); }
  [[nodiscard]] double srtp_at(std::size_t t) const { return srtp_.at(t); }
  [[nodiscard]] double soc_frac() const { return pack_->soc_frac(); }
  [[nodiscard]] double hour_of_day(std::size_t t) const;
  [[nodiscard]] const battery::BatteryPack& pack() const { return *pack_; }
  [[nodiscard]] const ProfitLedger& ledger() const { return ledger_; }
  [[nodiscard]] const HubConfig& hub() const noexcept { return hub_; }
  [[nodiscard]] const HubEnvConfig& env_config() const noexcept { return cfg_; }

  /// Per-slot series of the current episode (valid after reset()).
  [[nodiscard]] const std::vector<double>& bs_power_series() const { return bs_kw_; }
  [[nodiscard]] const std::vector<double>& cs_power_series() const { return occ_.power_kw; }
  [[nodiscard]] const std::vector<double>& renewable_series() const { return renewable_kw_; }

  /// Coupled-mode series (empty on an uncoupled hub).
  [[nodiscard]] const std::vector<double>& through_series() const { return through_kw_; }
  [[nodiscard]] const std::vector<std::uint8_t>& outage_series() const { return outage_; }

 private:
  [[nodiscard]] static HubEnvConfig validated(HubEnvConfig cfg);
  void generate_episode();

  HubConfig hub_;
  HubEnvConfig cfg_;
  Rng rng_;

  // Episode series.  Regenerated at each reset *in place*: every buffer
  // keeps its capacity across episodes and every generator writes through
  // its generate_into()/simulate_into() overload, so after the first reset
  // an episode costs no heap allocation anywhere on the reset or step path
  // (tests/test_alloc.cpp pins this with an operator-new hook).
  std::vector<double> rtp_;
  std::vector<double> srtp_;
  traffic::TrafficTrace traffic_;      ///< load-rate + volume buffers, reused
  std::vector<double> bs_kw_;
  weather::WeatherSeries wx_;          ///< GHI / wind / temperature, reused
  renewables::GenerationSeries gen_;   ///< plant output in watts, reused
  ev::OccupancySeries occ_;            ///< EV occupancy + CS power, reused
  std::vector<double> pv_kw_;
  std::vector<double> wt_kw_;
  std::vector<double> renewable_kw_;
  std::vector<bool> discounted_;  ///< per-slot discount flags; built once
  std::vector<double> through_kw_;    ///< coupled: through-traffic demand
  std::vector<std::uint8_t> outage_;  ///< coupled: front outage flags

  std::optional<ev::ChargingStation> station_;         ///< built at construction
  std::optional<pricing::SellingPricePolicy> selling_; ///< built at first reset
  std::optional<battery::BatteryPack> pack_;  ///< in-place, re-emplaced per reset
  ProfitLedger ledger_;                       ///< reused via reset() per episode
  std::size_t t_ = 0;
  std::size_t episode_index_ = 0;  ///< episodes generated; keys the side streams
  bool episode_ready_ = false;
};

}  // namespace ecthub::core
