#include "core/profit.hpp"

#include <stdexcept>

namespace ecthub::core {

SlotEconomics slot_economics(double cs_kw, double grid_kw, double srtp, double rtp,
                             double bp_cost, double dt_hours) {
  if (dt_hours <= 0.0) throw std::invalid_argument("slot_economics: dt_hours <= 0");
  if (cs_kw < 0.0 || grid_kw < 0.0) {
    throw std::invalid_argument("slot_economics: negative power");
  }
  SlotEconomics e;
  e.revenue = cs_kw * dt_hours * srtp / 1000.0;
  e.grid_cost = grid_kw * dt_hours * rtp / 1000.0;
  e.bp_cost = bp_cost;
  return e;
}

ProfitLedger::ProfitLedger(std::size_t slots_per_day) : slots_per_day_(slots_per_day) {
  if (slots_per_day == 0) throw std::invalid_argument("ProfitLedger: slots_per_day == 0");
}

void ProfitLedger::reset() {
  slots_ = 0;
  revenue_ = 0.0;
  grid_cost_ = 0.0;
  bp_cost_ = 0.0;
  daily_.clear();
}

void ProfitLedger::record(const SlotEconomics& e) {
  if (slots_ % slots_per_day_ == 0) daily_.push_back(0.0);
  daily_.back() += e.profit();
  revenue_ += e.revenue;
  grid_cost_ += e.grid_cost;
  bp_cost_ += e.bp_cost;
  ++slots_;
}

}  // namespace ecthub::core
