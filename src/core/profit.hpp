// Profit accounting (paper Eqs. 8-12).
//
//   C_grid(t) = P_grid(t) * RTP(t)            (Eq. 9)
//   C_BP(t)   = |S_BP(t)| * c_BP              (Eq. 8)
//   CR        = sum_t P_CS(t) * SRTP(t)       (Eq. 11)
//   Psi       = CR - sum_t [C_grid + C_BP]    (Eq. 12)
// Prices are $/MWh and power is kW, so each slot's dollar value is
// energy_kWh * price / 1000.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::core {

/// Dollar economics of one slot.
struct SlotEconomics {
  double revenue = 0.0;    ///< P_CS * SRTP
  double grid_cost = 0.0;  ///< P_grid * RTP
  double bp_cost = 0.0;    ///< |S_BP| * c_BP

  [[nodiscard]] double profit() const { return revenue - grid_cost - bp_cost; }
};

/// Computes one slot's economics.
/// @param cs_kw     charging-station draw, kW
/// @param grid_kw   grid import, kW
/// @param srtp      selling price, $/MWh
/// @param rtp       grid price, $/MWh
/// @param bp_cost   battery wear cost already in dollars (Eq. 8)
/// @param dt_hours  slot length
[[nodiscard]] SlotEconomics slot_economics(double cs_kw, double grid_kw, double srtp,
                                           double rtp, double bp_cost, double dt_hours);

/// Running accumulator with per-day aggregation.
class ProfitLedger {
 public:
  explicit ProfitLedger(std::size_t slots_per_day);

  void record(const SlotEconomics& e);

  /// Clears all totals and the daily series, keeping the day length — lets
  /// one ledger instance be reused across episodes without reallocation.
  void reset();

  [[nodiscard]] double total_revenue() const noexcept { return revenue_; }
  [[nodiscard]] double total_grid_cost() const noexcept { return grid_cost_; }
  [[nodiscard]] double total_bp_cost() const noexcept { return bp_cost_; }
  [[nodiscard]] double total_profit() const noexcept {
    return revenue_ - grid_cost_ - bp_cost_;
  }

  /// Profit of each completed (or partially completed) day.
  [[nodiscard]] const std::vector<double>& daily_profit() const noexcept { return daily_; }

  [[nodiscard]] std::size_t slots_recorded() const noexcept { return slots_; }

 private:
  std::size_t slots_per_day_;
  std::size_t slots_ = 0;
  double revenue_ = 0.0;
  double grid_cost_ = 0.0;
  double bp_cost_ = 0.0;
  std::vector<double> daily_;
};

}  // namespace ecthub::core
