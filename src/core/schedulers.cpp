#include "core/schedulers.hpp"

#include "common/stats.hpp"

#include <stdexcept>

namespace ecthub::core {

namespace {
bool in_window(double hour, double start, double end) {
  return start <= end ? (hour >= start && hour < end) : (hour >= start || hour < end);
}
}  // namespace

std::size_t NoBatteryScheduler::decide(const EctHubEnv&) { return 0; }

TouScheduler::TouScheduler(double charge_start, double charge_end, double discharge_start,
                           double discharge_end)
    : cs_(charge_start), ce_(charge_end), ds_(discharge_start), de_(discharge_end) {}

std::size_t TouScheduler::decide(const EctHubEnv& env) {
  const double hour = env.hour_of_day(env.current_slot());
  if (in_window(hour, cs_, ce_)) return 1;  // charge off-peak
  if (in_window(hour, ds_, de_)) return 2;  // discharge at peak
  return 0;
}

GreedyPriceScheduler::GreedyPriceScheduler(double low_quantile, double high_quantile)
    : low_q_(low_quantile), high_q_(high_quantile) {
  if (!(0.0 <= low_quantile && low_quantile < high_quantile && high_quantile <= 100.0)) {
    throw std::invalid_argument("GreedyPriceScheduler: bad quantiles");
  }
}

std::size_t GreedyPriceScheduler::decide(const EctHubEnv& env) {
  const std::size_t t = env.current_slot();
  // Trailing window of prices seen so far this episode (min one day).
  const std::size_t window = std::max<std::size_t>(24, 1);
  const std::size_t lo = t >= window ? t - window : 0;
  std::vector<double> seen;
  seen.reserve(t - lo + 1);
  for (std::size_t k = lo; k <= t; ++k) seen.push_back(env.rtp_at(k));
  const double p_lo = stats::percentile(seen, low_q_);
  const double p_hi = stats::percentile(seen, high_q_);
  const double now = env.rtp_at(t);
  if (now <= p_lo) return 1;
  if (now >= p_hi) return 2;
  return 0;
}

ForecastScheduler::ForecastScheduler(double low_band, double high_band)
    : low_band_(low_band), high_band_(high_band), price_forecast_(24) {
  if (!(0.0 <= low_band && low_band < high_band && high_band <= 1.0)) {
    throw std::invalid_argument("ForecastScheduler: bad bands");
  }
}

std::size_t ForecastScheduler::decide(const EctHubEnv& env) {
  const std::size_t t = env.current_slot();
  // New episode (slot counter went backwards): keep the learned curve — the
  // diurnal structure persists across episodes.
  if (any_observed_ && t < last_observed_) last_observed_ = 0;
  // Feed all realized prices up to the current slot.
  const std::size_t from = any_observed_ ? last_observed_ : 0;
  for (std::size_t k = from; k <= t; ++k) price_forecast_.observe(k, env.rtp_at(k));
  last_observed_ = t;
  any_observed_ = true;

  // Predicted daily curve and its band edges.
  double lo = price_forecast_.predict(0), hi = lo;
  for (std::size_t h = 1; h < 24; ++h) {
    const double p = price_forecast_.predict(h);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  if (hi - lo < 1e-9) return 0;
  const double now = price_forecast_.predict(t);
  const double pos = (now - lo) / (hi - lo);
  if (pos <= low_band_) return 1;   // cheap part of the predicted day: charge
  if (pos >= high_band_) return 2;  // expensive part: discharge
  return 0;
}

RandomScheduler::RandomScheduler(std::uint64_t seed) : rng_(seed) {}

std::size_t RandomScheduler::decide(const EctHubEnv&) {
  return static_cast<std::size_t>(rng_.uniform_int(0, 2));
}

std::vector<double> run_scheduler(EctHubEnv& env, Scheduler& sched, std::size_t episodes) {
  std::vector<double> profits;
  profits.reserve(episodes);
  for (std::size_t e = 0; e < episodes; ++e) {
    env.reset();
    bool done = false;
    while (!done) {
      done = env.step(sched.decide(env)).done;
    }
    // True episode profit from the ledger (env rewards may be shaped for RL).
    profits.push_back(env.ledger().total_profit());
  }
  return profits;
}

}  // namespace ecthub::core
