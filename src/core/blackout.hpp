// Blackout (grid-outage) simulation — failure injection for the reserve
// design of Eq. 6.
//
// The whole point of the SoC floor is that the base station must ride
// through a grid outage on battery alone until the grid recovers.  This
// module injects outages into a hub's exogenous series and reports whether
// communication survived: the validation the paper's constraint implies but
// never exercises.
#pragma once

#include "battery/battery_pack.hpp"
#include "common/rng.hpp"

#include <cstddef>
#include <vector>

namespace ecthub::core {

struct OutageEvent {
  std::size_t start_slot = 0;
  std::size_t duration_slots = 0;
};

struct OutageModel {
  /// Expected outages per 30 days.
  double rate_per_month = 1.0;
  /// Outage duration, uniform in [min, max] hours.
  double min_duration_h = 1.0;
  double max_duration_h = 8.0;
};

/// Draws outage events over a horizon of `num_slots` slots of `dt_hours`.
[[nodiscard]] std::vector<OutageEvent> draw_outages(const OutageModel& model,
                                                    std::size_t num_slots, double dt_hours,
                                                    Rng& rng);

/// Result of riding one outage on battery.
struct RideThroughResult {
  bool survived = false;        ///< BS never lost power
  double slots_survived = 0;    ///< slots carried before depletion
  double energy_used_kwh = 0;   ///< battery energy consumed (bus side)
  double final_soc_kwh = 0;
};

/// Simulates a BS carried by the pack during an outage: every slot the pack
/// must deliver the BS draw (charging stations shut down during outages; the
/// full pack down to soc_min — not just the tradable band — is available,
/// which is exactly what the reserve floor protects).
/// @param bs_kw      BS power draw per slot across the outage window
/// @param soc_kwh    pack state of charge when the outage hits
[[nodiscard]] RideThroughResult ride_through(const battery::BatteryConfig& pack,
                                             double soc_kwh,
                                             const std::vector<double>& bs_kw,
                                             double dt_hours);

/// Fraction of `trials` random outages survived when the pack sits at its
/// reserve floor — the Eq. 6 guarantee check.  `bs_kw` is a representative
/// load trace the outages are drawn over.
struct SurvivalStats {
  double survival_rate = 0.0;
  double mean_slots_survived = 0.0;
  std::size_t trials = 0;
};

[[nodiscard]] SurvivalStats outage_survival(const battery::BatteryConfig& pack,
                                            double floor_soc_kwh,
                                            const std::vector<double>& bs_kw,
                                            const OutageModel& model, double dt_hours,
                                            std::size_t trials, Rng rng);

}  // namespace ecthub::core
