// Fleet experiment driver for Table III and Fig. 13.
//
// For each hub and each pricing method (ECT-Price / OR / IPS / DR), the
// driver wires the method's discount schedule into the hub environment,
// trains an ECT-DRL (PPO) scheduler on it, then evaluates the greedy policy:
//   - Table III: average daily reward over the test episodes;
//   - Fig. 13:  the per-day reward series of one test episode.
#pragma once

#include "core/hub_env.hpp"
#include "policy/drl_policy.hpp"
#include "rl/ppo.hpp"

#include <string>
#include <vector>

namespace ecthub::core {

struct DrlExperimentConfig {
  HubEnvConfig env;
  rl::PpoConfig ppo;
  std::size_t train_iterations = 10;  ///< PPO collect+update cycles
  std::size_t test_episodes = 5;
  std::uint64_t ppo_seed = 99;
};

struct HubMethodResult {
  std::string hub;
  std::string method;
  double avg_daily_reward = 0.0;        ///< Table III cell
  std::vector<double> daily_rewards;    ///< Fig. 13 series (one test episode)
  std::vector<double> train_curve;      ///< mean episode reward per iteration
};

/// Trains and evaluates ECT-DRL on one hub under one hourly discount schedule.
[[nodiscard]] HubMethodResult run_hub_experiment(const HubConfig& hub,
                                                 const std::vector<bool>& discount_by_hour,
                                                 const DrlExperimentConfig& cfg,
                                                 const std::string& method_name);

/// Average of the daily-profit means across test episodes.
[[nodiscard]] double average_daily_reward(const std::vector<std::vector<double>>& daily_per_ep);

/// Serializes the actor path (shared trunk + actor head) of a trained
/// actor-critic into a deployable DrlPolicy checkpoint.  The critic head is
/// training-time baggage and is dropped; parameter names carry over, so the
/// checkpoint loads straight into policy::DrlPolicy and any architecture
/// mismatch fails loudly at load time.  Const: a const trainer can be
/// checkpointed mid-training (e.g. from the rollout collector).
[[nodiscard]] policy::DrlCheckpoint export_actor_checkpoint(const rl::ActorCritic& ac);

/// In-process training recipe behind SchedulerKind::kDrl: PPO over a fleet
/// of env lanes collected in lockstep, actor exported for deployment.
struct DrlFleetTrainConfig {
  HubEnvConfig env;      ///< episode shape to train under
  rl::PpoConfig ppo;
  std::size_t iterations = 4;  ///< PPO collect+update cycles
  std::uint64_t seed = 99;
  /// Rollout lanes: replicas of the training hub (seeded mix_seed(hub.seed,
  /// lane)) stepped in lockstep, episodes_per_iteration episodes per lane.
  std::size_t train_hubs = 1;
  /// Crew size for the vectorized collection phase (0 = hardware
  /// concurrency).  Any value trains bit-identical weights.
  std::size_t collector_threads = 1;
};

/// One rollout lane of a multi-hub training run.
struct DrlTrainLane {
  HubConfig hub;
  HubEnvConfig env;
};

/// Trains a PPO policy on `cfg.train_hubs` lockstep replicas of `hub` and
/// returns the deployable actor checkpoint — what a fleet sweep loads when
/// no pre-trained checkpoint is on disk.
[[nodiscard]] policy::DrlCheckpoint train_drl_checkpoint(const HubConfig& hub,
                                                         const DrlFleetTrainConfig& cfg);

/// Heterogeneous-lane variant (the actor-zoo generalist trains across
/// scenario presets this way): one env lane per entry, exactly as given —
/// cfg.env and cfg.train_hubs are ignored, lane seeds are the callers'.
/// All lanes must agree on the observation layout.
[[nodiscard]] policy::DrlCheckpoint train_drl_checkpoint(
    const std::vector<DrlTrainLane>& lanes, const DrlFleetTrainConfig& cfg);

}  // namespace ecthub::core
