#include "core/fleet.hpp"

#include "common/stats.hpp"

#include <stdexcept>

namespace ecthub::core {

double average_daily_reward(const std::vector<std::vector<double>>& daily_per_ep) {
  if (daily_per_ep.empty()) throw std::invalid_argument("average_daily_reward: empty input");
  double acc = 0.0;
  std::size_t days = 0;
  for (const auto& ep : daily_per_ep) {
    for (double d : ep) {
      acc += d;
      ++days;
    }
  }
  if (days == 0) throw std::invalid_argument("average_daily_reward: no days");
  return acc / static_cast<double>(days);
}

HubMethodResult run_hub_experiment(const HubConfig& hub,
                                   const std::vector<bool>& discount_by_hour,
                                   const DrlExperimentConfig& cfg,
                                   const std::string& method_name) {
  HubEnvConfig env_cfg = cfg.env;
  env_cfg.discount_by_hour = discount_by_hour;
  EctHubEnv env(hub, env_cfg);

  rl::ActorCriticConfig ac_cfg;
  ac_cfg.state_dim = env.state_dim();
  ac_cfg.action_count = env.action_count();
  rl::PpoTrainer trainer(cfg.ppo, ac_cfg, nn::Rng(cfg.ppo_seed));

  HubMethodResult result;
  result.hub = hub.name;
  result.method = method_name;

  const auto history = trainer.train(env, cfg.train_iterations);
  result.train_curve.reserve(history.size());
  for (const auto& h : history) result.train_curve.push_back(h.mean_episode_reward);

  // Test episodes under the greedy policy; the ledger gives per-day profits.
  std::vector<std::vector<double>> daily_per_ep;
  daily_per_ep.reserve(cfg.test_episodes);
  for (std::size_t e = 0; e < cfg.test_episodes; ++e) {
    std::vector<double> state = env.reset();
    bool done = false;
    while (!done) {
      const rl::StepResult r = env.step(trainer.policy().act_greedy(state));
      state = r.next_state;
      done = r.done;
    }
    daily_per_ep.push_back(env.ledger().daily_profit());
  }
  result.avg_daily_reward = average_daily_reward(daily_per_ep);
  result.daily_rewards = daily_per_ep.front();
  return result;
}

}  // namespace ecthub::core
