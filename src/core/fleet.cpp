#include "core/fleet.hpp"

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/serialize.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ecthub::core {

double average_daily_reward(const std::vector<std::vector<double>>& daily_per_ep) {
  if (daily_per_ep.empty()) throw std::invalid_argument("average_daily_reward: empty input");
  double acc = 0.0;
  std::size_t days = 0;
  for (const auto& ep : daily_per_ep) {
    for (double d : ep) {
      acc += d;
      ++days;
    }
  }
  if (days == 0) throw std::invalid_argument("average_daily_reward: no days");
  return acc / static_cast<double>(days);
}

HubMethodResult run_hub_experiment(const HubConfig& hub,
                                   const std::vector<bool>& discount_by_hour,
                                   const DrlExperimentConfig& cfg,
                                   const std::string& method_name) {
  HubEnvConfig env_cfg = cfg.env;
  env_cfg.discount_by_hour = discount_by_hour;
  EctHubEnv env(hub, env_cfg);

  rl::ActorCriticConfig ac_cfg;
  ac_cfg.state_dim = env.state_dim();
  ac_cfg.action_count = env.action_count();
  rl::PpoTrainer trainer(cfg.ppo, ac_cfg, nn::Rng(cfg.ppo_seed));

  HubMethodResult result;
  result.hub = hub.name;
  result.method = method_name;

  const auto history = trainer.train(env, cfg.train_iterations);
  result.train_curve.reserve(history.size());
  for (const auto& h : history) result.train_curve.push_back(h.mean_episode_reward);

  // Test episodes under the *deployed* greedy policy — the exported actor a
  // fleet sweep loads — so Table III measures the serialization + Policy API
  // path end to end, not the training-time network.  The ledger gives the
  // per-day profits.
  policy::DrlPolicy deployed(export_actor_checkpoint(trainer.policy()));
  std::vector<std::vector<double>> daily_per_ep;
  daily_per_ep.reserve(cfg.test_episodes);
  for (std::size_t e = 0; e < cfg.test_episodes; ++e) {
    std::vector<double> state = env.reset();
    deployed.begin_episode();
    bool done = false;
    while (!done) {
      rl::StepResult r = env.step(deployed.decide(state));
      state = std::move(r.next_state);
      done = r.done;
    }
    daily_per_ep.push_back(env.ledger().daily_profit());
  }
  result.avg_daily_reward = average_daily_reward(daily_per_ep);
  result.daily_rewards = daily_per_ep.front();
  return result;
}

policy::DrlCheckpoint export_actor_checkpoint(const rl::ActorCritic& ac) {
  policy::DrlCheckpoint ckpt;
  ckpt.config.state_dim = ac.config().state_dim;
  ckpt.config.action_count = ac.config().action_count;
  ckpt.config.trunk_dim = ac.config().trunk_dim;
  ckpt.config.head_dim = ac.config().head_dim;
  std::vector<nn::ConstParameter> actor_params;
  for (const auto& p : ac.parameters()) {
    if (p.name.starts_with("ac.trunk") || p.name.starts_with("ac.actor")) {
      actor_params.push_back(p);
    }
  }
  std::ostringstream out;
  nn::save_parameters(out, actor_params);
  ckpt.blob = out.str();
  return ckpt;
}

namespace {

/// Stream tag separating the collector's per-lane sampling streams from the
/// trainer's init/shuffle stream, both derived from DrlFleetTrainConfig::seed.
constexpr std::uint64_t kCollectorSeedTag = 0xc011ec70ULL;

}  // namespace

policy::DrlCheckpoint train_drl_checkpoint(const std::vector<DrlTrainLane>& lanes,
                                           const DrlFleetTrainConfig& cfg) {
  if (lanes.empty()) throw std::invalid_argument("train_drl_checkpoint: no lanes");
  std::vector<std::unique_ptr<EctHubEnv>> envs;
  envs.reserve(lanes.size());
  for (const DrlTrainLane& lane : lanes) {
    envs.push_back(std::make_unique<EctHubEnv>(lane.hub, lane.env));
  }
  std::vector<rl::Env*> env_ptrs;
  env_ptrs.reserve(envs.size());
  for (auto& env : envs) env_ptrs.push_back(env.get());

  rl::ActorCriticConfig ac_cfg;
  ac_cfg.state_dim = env_ptrs.front()->state_dim();
  ac_cfg.action_count = env_ptrs.front()->action_count();
  rl::PpoTrainer trainer(cfg.ppo, ac_cfg, nn::Rng(cfg.seed));

  rl::VecCollectorConfig collector;
  collector.threads = cfg.collector_threads;
  collector.seed = mix_seed(cfg.seed, kCollectorSeedTag);
  trainer.train_fleet(env_ptrs, cfg.iterations, collector);
  return export_actor_checkpoint(trainer.policy());
}

policy::DrlCheckpoint train_drl_checkpoint(const HubConfig& hub,
                                           const DrlFleetTrainConfig& cfg) {
  if (cfg.train_hubs == 0) {
    throw std::invalid_argument("train_drl_checkpoint: train_hubs == 0");
  }
  std::vector<DrlTrainLane> lanes;
  lanes.reserve(cfg.train_hubs);
  for (std::size_t l = 0; l < cfg.train_hubs; ++l) {
    DrlTrainLane lane{hub, cfg.env};
    // Replica lanes explore distinct episode streams; lane 0 is mixed too so
    // the checkpoint depends only on (hub.seed, train_hubs), not on whether
    // the single- or multi-lane recipe produced it.
    lane.hub.seed = mix_seed(hub.seed, l);
    lanes.push_back(std::move(lane));
  }
  return train_drl_checkpoint(lanes, cfg);
}

}  // namespace ecthub::core
