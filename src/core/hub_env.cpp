#include "core/hub_env.hpp"

#include "battery/reserve.hpp"
#include "power/balance.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecthub::core {

// Normalization scales live on the shared ObservationLayout so the policies
// decode exactly what this file encodes.
using policy::ObservationLayout;

HubEnvConfig EctHubEnv::validated(HubEnvConfig cfg) {
  if (cfg.episode_days == 0) throw std::invalid_argument("HubEnvConfig: episode_days == 0");
  if (cfg.slots_per_day == 0) throw std::invalid_argument("HubEnvConfig: slots_per_day == 0");
  if (cfg.lookback == 0) throw std::invalid_argument("HubEnvConfig: lookback == 0");
  if (!cfg.discount_by_hour.empty() && cfg.discount_by_hour.size() != 24) {
    throw std::invalid_argument("HubEnvConfig: discount_by_hour must have 24 entries");
  }
  if (cfg.discount_fraction < 0.0 || cfg.discount_fraction >= 1.0) {
    throw std::invalid_argument("HubEnvConfig: discount_fraction out of [0, 1)");
  }
  if (!(0.0 <= cfg.init_soc_lo && cfg.init_soc_lo <= cfg.init_soc_hi &&
        cfg.init_soc_hi <= 1.0)) {
    throw std::invalid_argument("HubEnvConfig: bad init SoC range");
  }
  return cfg;
}

EctHubEnv::EctHubEnv(HubConfig hub, HubEnvConfig env_cfg)
    : hub_(std::move(hub)),
      cfg_(validated(std::move(env_cfg))),
      rng_(hub_.seed),
      ledger_(cfg_.slots_per_day) {
  // Fail on a bad battery (e.g. zero capacity) at construction, not at the
  // first reset deep inside a worker thread.
  hub_.battery.validate();
  if (hub_.recovery_hours < 0.0) {
    throw std::invalid_argument("HubConfig: recovery_hours < 0");
  }
}

std::size_t EctHubEnv::state_dim() const { return observation_layout().dim(); }

double EctHubEnv::hour_of_day(std::size_t t) const {
  const TimeGrid grid(cfg_.episode_days, cfg_.slots_per_day);
  return grid.hour_of_day(t);
}

void EctHubEnv::generate_episode() {
  const TimeGrid grid(cfg_.episode_days, cfg_.slots_per_day);

  // Traffic drives both BS power (Eq. 1) and the RTP load coupling (Fig. 5).
  // The generators write into the episode buffers in place, so the buffers'
  // capacity is reused across resets and regeneration is allocation-free.
  traffic::TrafficGenerator traffic_gen(hub_.traffic, rng_.fork());
  traffic_gen.generate_into(grid, traffic_);
  const std::vector<double>& load_rate = traffic_.load_rate;
  const power::BaseStation bs(hub_.bs);
  bs_kw_.resize(grid.size());
  for (std::size_t t = 0; t < grid.size(); ++t) bs_kw_[t] = bs.power_kw(load_rate[t]);

  // Weather -> renewables.
  weather::WeatherGenerator wx_gen(hub_.weather, rng_.fork());
  const weather::WeatherSeries wx = wx_gen.generate(grid);
  const renewables::RenewablePlant plant(hub_.plant);
  renewables::GenerationSeries gen = plant.generate(wx);
  ghi_ = wx.ghi_wm2;
  wind_ = wx.wind_speed_ms;
  pv_kw_ = std::move(gen.pv_w);
  wt_kw_ = std::move(gen.wt_w);
  // Plant model reports watts; the hub works in kW.
  for (double& p : pv_kw_) p /= 1000.0;
  for (double& p : wt_kw_) p /= 1000.0;
  renewable_kw_.assign(grid.size(), 0.0);
  for (std::size_t t = 0; t < grid.size(); ++t) {
    renewable_kw_[t] = pv_kw_[t] + wt_kw_[t];
  }

  // Prices (coupled to system load) and the discounted selling price.
  pricing::RtpGenerator rtp_gen(hub_.rtp, rng_.fork());
  rtp_gen.generate_into(grid, load_rate, rtp_);

  discounted_.assign(grid.size(), false);
  if (!cfg_.discount_by_hour.empty()) {
    for (std::size_t t = 0; t < grid.size(); ++t) {
      const auto hour = static_cast<std::size_t>(grid.hour_of_day(t));
      discounted_[t] = cfg_.discount_by_hour[hour % 24];
    }
  }
  const pricing::SellingPricePolicy selling(
      hub_.selling,
      pricing::DiscountSchedule::from_flags(discounted_, cfg_.discount_fraction));
  srtp_ = selling.series(rtp_);

  // EV occupancy under the discount schedule.
  const ev::StrataProfile profile(hub_.ev_popularity, hub_.ev_evening_sensitivity,
                                  hub_.ev_evening_commuter);
  const ev::ChargingStation station(hub_.station, profile);
  Rng ev_rng = rng_.fork();
  ev::OccupancySeries occ = station.simulate(grid, discounted_, ev_rng);
  cs_kw_ = std::move(occ.power_kw);

  // Battery with the Eq. 6 blackout reserve floor, re-emplaced in place (no
  // per-reset heap allocation).
  pack_.emplace(hub_.battery, rng_.uniform(cfg_.init_soc_lo, cfg_.init_soc_hi));
  const auto recovery_slots = static_cast<std::size_t>(
      std::ceil(hub_.recovery_hours / grid.slot_hours()));
  if (recovery_slots > 0) {
    const double reserve_kwh = battery::reserve_energy_worst_window(
        bs_kw_, std::min(recovery_slots, bs_kw_.size()), grid.slot_hours());
    const double floor_frac = battery::reserve_floor_fraction(
        reserve_kwh, hub_.battery.capacity_kwh, hub_.battery.discharge_efficiency);
    const double floor_kwh =
        std::clamp(floor_frac * hub_.battery.capacity_kwh, pack_->soc_min_kwh(),
                   pack_->soc_max_kwh());
    pack_->set_reserve_floor_kwh(floor_kwh);
  }

  ledger_.reset();
  t_ = 0;
  episode_ready_ = true;
}

std::vector<double> EctHubEnv::observe() const {
  // Channel order, window ordering (oldest -> newest) and scales are the
  // ObservationLayout contract; policies decode through the same struct.
  std::vector<double> state;
  state.reserve(state_dim());
  const auto window = [&](const std::vector<double>& series, double scale) {
    for (std::size_t k = cfg_.lookback; k-- > 0;) {
      // Slots t-k .. t; pad the episode start with the first value.
      const std::size_t idx = t_ >= k ? t_ - k : 0;
      state.push_back(series[idx] / scale);
    }
  };
  window(rtp_, ObservationLayout::kPriceScale);
  window(ghi_, ObservationLayout::kGhiScale);
  window(wind_, ObservationLayout::kWindScale);
  window(traffic_.load_rate, 1.0);
  window(srtp_, ObservationLayout::kPriceScale);
  state.push_back(pack_->soc_frac());
  const double hour = hour_of_day(t_);
  state.push_back(std::sin(2.0 * std::numbers::pi * hour / 24.0));
  state.push_back(std::cos(2.0 * std::numbers::pi * hour / 24.0));
  return state;
}

std::vector<double> EctHubEnv::reset() {
  generate_episode();
  return observe();
}

rl::StepResult EctHubEnv::step(std::size_t action) {
  if (!episode_ready_) throw std::logic_error("EctHubEnv::step before reset");
  if (action >= action_count()) throw std::invalid_argument("EctHubEnv::step: bad action");
  if (t_ >= slots_per_episode()) throw std::logic_error("EctHubEnv::step after episode end");

  const TimeGrid grid(cfg_.episode_days, cfg_.slots_per_day);
  const double dt = grid.slot_hours();

  auto bp_action = battery::BpAction::kIdle;
  if (action == 1) bp_action = battery::BpAction::kCharge;
  if (action == 2) bp_action = battery::BpAction::kDischarge;
  // Discharge is throttled to the hub's net load: the DC bus cannot absorb
  // more than BS + CS demand net of renewables, and there is no grid feed-in.
  const double net_load_kw =
      std::max(0.0, bs_kw_[t_] + cs_kw_[t_] - wt_kw_[t_] - pv_kw_[t_]);
  const battery::BpStepResult bp = pack_->step(bp_action, dt, net_load_kw);

  const power::PowerFlow flow{bs_kw_[t_], cs_kw_[t_], bp.bus_power_kw, wt_kw_[t_], pv_kw_[t_]};
  const SlotEconomics econ =
      slot_economics(flow.cs_kw, flow.grid_kw(), srtp_[t_], rtp_[t_], bp.op_cost, dt);
  ledger_.record(econ);

  double reward = econ.profit();
  if (cfg_.shaped_reward) {
    const power::PowerFlow idle_flow{bs_kw_[t_], cs_kw_[t_], 0.0, wt_kw_[t_], pv_kw_[t_]};
    const SlotEconomics idle_econ =
        slot_economics(idle_flow.cs_kw, idle_flow.grid_kw(), srtp_[t_], rtp_[t_], 0.0, dt);
    reward = econ.profit() - idle_econ.profit();
  }

  ++t_;
  rl::StepResult result;
  result.reward = reward;
  result.done = t_ >= slots_per_episode();
  if (!result.done) {
    result.next_state = observe();
  } else {
    result.next_state.assign(state_dim(), 0.0);
    episode_ready_ = false;
  }
  return result;
}

}  // namespace ecthub::core
