#include "core/hub_env.hpp"

#include "battery/reserve.hpp"
#include "power/balance.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecthub::core {

// Normalization scales live on the shared ObservationLayout so the policies
// decode exactly what this file encodes.
using policy::ObservationLayout;

namespace {
// Coupled-mode side streams are seeded from pure hashes — never from rng_ —
// so turning coupling on cannot perturb the uncoupled fork sequence
// (traffic -> weather -> rtp -> ev -> init SoC) that the golden-checksum
// tests pin.  Each stream mixes its tag with the episode index so every
// episode draws fresh, reproducible values.
constexpr std::uint64_t kWeatherFrontStream = 0x7778'66726f6e74ULL;  // "wxfront"
constexpr std::uint64_t kOutageFrontStream = 0x6f75'74667274ULL;     // "outfrt"
constexpr std::uint64_t kThroughStream = 0x7468'72753030ULL;         // "thru"
}  // namespace

HubEnvConfig EctHubEnv::validated(HubEnvConfig cfg) {
  if (cfg.episode_days == 0) throw std::invalid_argument("HubEnvConfig: episode_days == 0");
  if (cfg.slots_per_day == 0) throw std::invalid_argument("HubEnvConfig: slots_per_day == 0");
  if (cfg.lookback == 0) throw std::invalid_argument("HubEnvConfig: lookback == 0");
  if (!cfg.discount_by_hour.empty() && cfg.discount_by_hour.size() != 24) {
    throw std::invalid_argument("HubEnvConfig: discount_by_hour must have 24 entries");
  }
  if (cfg.discount_fraction < 0.0 || cfg.discount_fraction >= 1.0) {
    throw std::invalid_argument("HubEnvConfig: discount_fraction out of [0, 1)");
  }
  if (!(0.0 <= cfg.init_soc_lo && cfg.init_soc_lo <= cfg.init_soc_hi &&
        cfg.init_soc_hi <= 1.0)) {
    throw std::invalid_argument("HubEnvConfig: bad init SoC range");
  }
  if (cfg.coupling.enabled) {
    if (cfg.coupling.through_rate < 0.0) {
      throw std::invalid_argument("HubCouplingConfig: through_rate < 0");
    }
    if (cfg.coupling.outage.rate_per_month < 0.0 ||
        cfg.coupling.outage.min_duration_h < 0.0 ||
        cfg.coupling.outage.max_duration_h < cfg.coupling.outage.min_duration_h) {
      throw std::invalid_argument("HubCouplingConfig: bad OutageModel");
    }
  }
  return cfg;
}

EctHubEnv::EctHubEnv(HubConfig hub, HubEnvConfig env_cfg)
    : hub_(std::move(hub)),
      cfg_(validated(std::move(env_cfg))),
      rng_(hub_.seed),
      ledger_(cfg_.slots_per_day) {
  // Fail on a bad battery (e.g. zero capacity) at construction, not at the
  // first reset deep inside a worker thread.
  hub_.battery.validate();
  if (hub_.recovery_hours < 0.0) {
    throw std::invalid_argument("HubConfig: recovery_hours < 0");
  }
  // The station's behaviour profile is a pure function of the hub config, so
  // it is built once here (also validating it eagerly) rather than per reset.
  station_.emplace(hub_.station,
                   ev::StrataProfile(hub_.ev_popularity, hub_.ev_evening_sensitivity,
                                     hub_.ev_evening_commuter));
}

std::size_t EctHubEnv::state_dim() const { return observation_layout().dim(); }

double EctHubEnv::hour_of_day(std::size_t t) const {
  const TimeGrid grid(cfg_.episode_days, cfg_.slots_per_day);
  return grid.hour_of_day(t);
}

void EctHubEnv::generate_episode() {
  const TimeGrid grid(cfg_.episode_days, cfg_.slots_per_day);
  const std::size_t episode = episode_index_++;
  const HubCouplingConfig& coupling = cfg_.coupling;
  const bool fronted = coupling.enabled && coupling.front_seed != 0;

  // Traffic drives both BS power (Eq. 1) and the RTP load coupling (Fig. 5).
  // The generators write into the episode buffers in place, so the buffers'
  // capacity is reused across resets and regeneration is allocation-free.
  traffic::TrafficGenerator traffic_gen(hub_.traffic, rng_.fork());
  traffic_gen.generate_into(grid, traffic_);
  const std::vector<double>& load_rate = traffic_.load_rate;
  const power::BaseStation bs(hub_.bs);
  bs_kw_.resize(grid.size());
  for (std::size_t t = 0; t < grid.size(); ++t) bs_kw_[t] = bs.power_kw(load_rate[t]);

  // Weather -> renewables, regenerated into the reused episode buffers.
  // The fork is drawn unconditionally so the uncoupled stream sequence never
  // shifts; a metro front then *replaces* the forked stream with the shared
  // front stream, correlating weather across every hub of the metro.
  Rng wx_rng = rng_.fork();
  if (fronted) {
    wx_rng = Rng(mix_seed(mix_seed(coupling.front_seed, kWeatherFrontStream), episode));
  }
  weather::WeatherGenerator wx_gen(hub_.weather, wx_rng);
  wx_gen.generate_into(grid, wx_);
  const renewables::RenewablePlant plant(hub_.plant);
  plant.generate_into(wx_, gen_);
  pv_kw_.resize(grid.size());
  wt_kw_.resize(grid.size());
  renewable_kw_.resize(grid.size());
  for (std::size_t t = 0; t < grid.size(); ++t) {
    // Plant model reports watts; the hub works in kW.
    pv_kw_[t] = gen_.pv_w[t] / 1000.0;
    wt_kw_[t] = gen_.wt_w[t] / 1000.0;
    renewable_kw_[t] = pv_kw_[t] + wt_kw_[t];
  }

  // Prices (coupled to system load) and the discounted selling price.
  pricing::RtpGenerator rtp_gen(hub_.rtp, rng_.fork());
  rtp_gen.generate_into(grid, load_rate, rtp_);

  // The discount flags depend only on the grid and the (fixed) hour
  // schedule, so the flags and the selling-price policy are built once at
  // the first reset and reused for every later episode.
  if (!selling_) {
    discounted_.assign(grid.size(), false);
    if (!cfg_.discount_by_hour.empty()) {
      for (std::size_t t = 0; t < grid.size(); ++t) {
        const auto hour = static_cast<std::size_t>(grid.hour_of_day(t));
        discounted_[t] = cfg_.discount_by_hour[hour % 24];
      }
    }
    selling_.emplace(hub_.selling, pricing::DiscountSchedule::from_flags(
                                       discounted_, cfg_.discount_fraction));
  }
  selling_->series_into(rtp_, srtp_);

  // EV occupancy under the discount schedule.
  Rng ev_rng = rng_.fork();
  station_->simulate_into(grid, discounted_, ev_rng, occ_);

  // Coupled-mode side streams: through-traffic demand (passing EVs that can
  // overflow the plugs and be exported to neighbors) and the shared outage
  // front.  Both are seeded from pure hashes, so the uncoupled fork sequence
  // above is untouched, and both regenerate into reused buffers.
  if (coupling.enabled) {
    through_kw_.resize(grid.size());
    Rng through_rng(mix_seed(mix_seed(hub_.seed, kThroughStream), episode));
    const double plug_kw = hub_.station.plug_rate_kw;
    for (std::size_t t = 0; t < grid.size(); ++t) {
      through_kw_[t] = plug_kw * static_cast<double>(through_rng.poisson(
                                     coupling.through_rate * traffic_.load_rate[t]));
    }
    outage_.resize(grid.size());
    std::fill(outage_.begin(), outage_.end(), std::uint8_t{0});
    if (fronted && coupling.outage.rate_per_month > 0.0) {
      // The draw_outages sampling loop, inlined to write reused flags instead
      // of allocating an event vector (the zero-alloc episode contract).
      Rng outage_rng(
          mix_seed(mix_seed(coupling.front_seed, kOutageFrontStream), episode));
      const double dt = grid.slot_hours();
      const double horizon_months =
          static_cast<double>(grid.size()) * dt / (30.0 * 24.0);
      const std::uint64_t count =
          outage_rng.poisson(coupling.outage.rate_per_month * horizon_months);
      for (std::uint64_t k = 0; k < count; ++k) {
        const auto start = static_cast<std::size_t>(
            outage_rng.uniform_int(0, static_cast<std::int64_t>(grid.size()) - 1));
        const double dur_h = outage_rng.uniform(coupling.outage.min_duration_h,
                                                coupling.outage.max_duration_h);
        const auto dur =
            std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(dur_h / dt)));
        const std::size_t end = std::min(grid.size(), start + dur);
        for (std::size_t s = start; s < end; ++s) outage_[s] = 1;
      }
    }
  }

  // Battery with the Eq. 6 blackout reserve floor, re-emplaced in place (no
  // per-reset heap allocation).
  pack_.emplace(hub_.battery, rng_.uniform(cfg_.init_soc_lo, cfg_.init_soc_hi));
  const auto recovery_slots = static_cast<std::size_t>(
      std::ceil(hub_.recovery_hours / grid.slot_hours()));
  if (recovery_slots > 0) {
    const double reserve_kwh = battery::reserve_energy_worst_window(
        bs_kw_, std::min(recovery_slots, bs_kw_.size()), grid.slot_hours());
    const double floor_frac = battery::reserve_floor_fraction(
        reserve_kwh, hub_.battery.capacity_kwh, hub_.battery.discharge_efficiency);
    const double floor_kwh =
        std::clamp(floor_frac * hub_.battery.capacity_kwh, pack_->soc_min_kwh(),
                   pack_->soc_max_kwh());
    pack_->set_reserve_floor_kwh(floor_kwh);
  }

  ledger_.reset();
  t_ = 0;
  episode_ready_ = true;
}

void EctHubEnv::observe_into(std::span<double> out) const {
  // Channel order, window ordering (oldest -> newest) and scales are the
  // ObservationLayout contract; policies decode through the same struct.
  if (!episode_ready_) throw std::logic_error("EctHubEnv::observe_into before reset");
  if (out.size() != state_dim()) {
    throw std::invalid_argument("EctHubEnv::observe_into: buffer size != state_dim()");
  }
  std::size_t pos = 0;
  const auto window = [&](const std::vector<double>& series, double scale) {
    for (std::size_t k = cfg_.lookback; k-- > 0;) {
      // Slots t-k .. t; pad the episode start with the first value.  At the
      // horizon (t_ == size, the final observation emitted by the last
      // step) the window holds the last generated slot — a no-op clamp for
      // every in-episode slot.
      const std::size_t idx = std::min(t_ >= k ? t_ - k : 0, series.size() - 1);
      out[pos++] = series[idx] / scale;
    }
  };
  window(rtp_, ObservationLayout::kPriceScale);
  window(wx_.ghi_wm2, ObservationLayout::kGhiScale);
  window(wx_.wind_speed_ms, ObservationLayout::kWindScale);
  window(traffic_.load_rate, 1.0);
  window(srtp_, ObservationLayout::kPriceScale);
  out[pos++] = pack_->soc_frac();
  // Wrapping by hand keeps the final observation (t_ == size, where
  // TimeGrid::hour_of_day would range-check) on the same 24 h phase;
  // identical to hour_of_day(t_) for every in-episode slot.
  const double hour = static_cast<double>(t_ % cfg_.slots_per_day) *
                      (24.0 / static_cast<double>(cfg_.slots_per_day));
  out[pos++] = std::sin(2.0 * std::numbers::pi * hour / 24.0);
  out[pos] = std::cos(2.0 * std::numbers::pi * hour / 24.0);
}

std::vector<double> EctHubEnv::reset() {
  std::vector<double> state(state_dim());
  reset_into(state);
  return state;
}

void EctHubEnv::reset_into(std::span<double> state) {
  if (state.size() != state_dim()) {
    throw std::invalid_argument("EctHubEnv::reset_into: buffer size != state_dim()");
  }
  generate_episode();
  observe_into(state);
}

rl::StepResult EctHubEnv::step(std::size_t action) {
  rl::StepResult result;
  result.next_state.resize(state_dim());
  const StepOutcome outcome = step_into(action, result.next_state);
  result.reward = outcome.reward;
  result.done = outcome.done;
  result.truncated = outcome.truncated;
  return result;
}

StepOutcome EctHubEnv::step_into(std::size_t action, std::span<double> next_state) {
  SlotCoupling coupling;  // zero import, outputs discarded
  return step_into(action, next_state, coupling);
}

StepOutcome EctHubEnv::step_into(std::size_t action, std::span<double> next_state,
                                 SlotCoupling& coupling) {
  if (!episode_ready_) throw std::logic_error("EctHubEnv::step before reset");
  if (action >= action_count()) throw std::invalid_argument("EctHubEnv::step: bad action");
  if (t_ >= slots_per_episode()) throw std::logic_error("EctHubEnv::step after episode end");
  if (next_state.size() != state_dim()) {
    throw std::invalid_argument("EctHubEnv::step_into: buffer size != state_dim()");
  }

  const TimeGrid grid(cfg_.episode_days, cfg_.slots_per_day);
  const double dt = grid.slot_hours();

  auto bp_action = battery::BpAction::kIdle;
  if (action == 1) bp_action = battery::BpAction::kCharge;
  if (action == 2) bp_action = battery::BpAction::kDischarge;
  // Coupled demand resolution: resident EVs occupy their plugs first, then
  // the slot's through traffic, then imports routed here by neighbors; the
  // unserved through demand becomes the export the CouplingBus routes onward
  // (unserved imports are dropped — a one-hop bound, so demand cannot
  // ping-pong around the metro forever).  Uncoupled hubs skip all of it and
  // the slot is bit-identical to the pre-coupling step.
  double cs_kw = occ_.power_kw[t_];
  coupling.export_kw = 0.0;
  coupling.served_import_kw = 0.0;
  coupling.dropped_import_kw = 0.0;
  coupling.through_kw = 0.0;
  coupling.outage = false;
  if (cfg_.coupling.enabled) {
    const double through = through_kw_[t_];
    coupling.through_kw = through;
    if (outage_[t_] != 0) {
      // Front outage: the station shuts down (the ride_through contract) —
      // resident demand and imports are lost, through traffic drives on.
      coupling.outage = true;
      coupling.export_kw = through;
      coupling.dropped_import_kw = coupling.import_kw;
      cs_kw = 0.0;
    } else {
      const double cap_kw =
          static_cast<double>(hub_.station.num_plugs) * hub_.station.plug_rate_kw;
      const double free_kw = std::max(0.0, cap_kw - cs_kw);
      const double served_through = std::min(through, free_kw);
      const double served_import =
          std::min(coupling.import_kw, free_kw - served_through);
      cs_kw += served_through + served_import;
      coupling.served_import_kw = served_import;
      coupling.dropped_import_kw = coupling.import_kw - served_import;
      coupling.export_kw = through - served_through;
    }
  }
  // Discharge is throttled to the hub's net load: the DC bus cannot absorb
  // more than BS + CS demand net of renewables, and there is no grid feed-in.
  const double net_load_kw =
      std::max(0.0, bs_kw_[t_] + cs_kw - wt_kw_[t_] - pv_kw_[t_]);
  const battery::BpStepResult bp = pack_->step(bp_action, dt, net_load_kw);

  const power::PowerFlow flow{bs_kw_[t_], cs_kw, bp.bus_power_kw, wt_kw_[t_], pv_kw_[t_]};
  const SlotEconomics econ =
      slot_economics(flow.cs_kw, flow.grid_kw(), srtp_[t_], rtp_[t_], bp.op_cost, dt);
  ledger_.record(econ);

  double reward = econ.profit();
  if (cfg_.shaped_reward) {
    const power::PowerFlow idle_flow{bs_kw_[t_], cs_kw, 0.0, wt_kw_[t_], pv_kw_[t_]};
    const SlotEconomics idle_econ =
        slot_economics(idle_flow.cs_kw, idle_flow.grid_kw(), srtp_[t_], rtp_[t_], 0.0, dt);
    reward = econ.profit() - idle_econ.profit();
  }

  ++t_;
  StepOutcome outcome;
  outcome.reward = reward;
  outcome.done = t_ >= slots_per_episode();
  // The horizon is the env's only end condition — a time-limit truncation of
  // the paper's infinite-horizon MDP, not a terminal state — so the final
  // observation is emitted for critic bootstrapping before the episode
  // closes (observe_into clamps its windows at the horizon).
  outcome.truncated = outcome.done;
  observe_into(next_state);
  if (outcome.done) episode_ready_ = false;
  return outcome;
}

}  // namespace ecthub::core
