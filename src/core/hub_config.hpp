// Configuration of one ECT-Hub: the base station, its battery point, the
// charging station, renewable plant and the stochastic environment driving
// the episode generators.
#pragma once

#include "battery/battery_pack.hpp"
#include "ev/station.hpp"
#include "power/base_station.hpp"
#include "pricing/rtp.hpp"
#include "pricing/selling.hpp"
#include "renewables/plant.hpp"
#include "traffic/generator.hpp"
#include "weather/weather.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace ecthub::core {

/// Urban hubs carry rooftop PV and dense traffic; rural hubs carry PV + WT
/// with highway-style traffic (paper Fig. 6).
enum class HubSite { kUrban, kRural };

struct HubConfig {
  std::string name = "hub";
  HubSite site = HubSite::kUrban;
  std::uint64_t seed = 42;

  power::BaseStationConfig bs;
  battery::BatteryConfig battery;
  ev::StationConfig station;
  renewables::PlantConfig plant;
  traffic::TrafficConfig traffic;
  weather::WeatherConfig weather;
  pricing::RtpConfig rtp;
  pricing::SellingConfig selling;

  /// Behaviour profile of the co-located charging station.
  double ev_popularity = 0.8;
  double ev_evening_sensitivity = 0.7;
  /// Evening Always mass (commuters charging after work regardless of price);
  /// discounting those hours costs pure margin.
  double ev_evening_commuter = 0.3;

  /// Estimated grid recovery time T_r in hours (Eq. 6 reserve sizing).
  double recovery_hours = 4.0;

  /// Factory presets.
  static HubConfig urban(std::string name, std::uint64_t seed);
  static HubConfig rural(std::string name, std::uint64_t seed);
};

/// The 12-hub evaluation fleet (paper Table III): a mix of urban and rural
/// sites with heterogeneous demand profiles, deterministically seeded.
[[nodiscard]] std::vector<HubConfig> default_fleet(std::uint64_t base_seed = 7);

}  // namespace ecthub::core
