#include "core/policy_runner.hpp"

#include <utility>

namespace ecthub::core {

std::vector<double> run_policy(EctHubEnv& env, policy::Policy& pol, std::size_t episodes) {
  std::vector<double> profits;
  profits.reserve(episodes);
  for (std::size_t e = 0; e < episodes; ++e) {
    std::vector<double> state = env.reset();
    pol.begin_episode();
    bool done = false;
    while (!done) {
      rl::StepResult r = env.step(pol.decide(state));
      state = std::move(r.next_state);
      done = r.done;
    }
    profits.push_back(env.ledger().total_profit());
  }
  return profits;
}

}  // namespace ecthub::core
