#include "renewables/plant.hpp"

namespace ecthub::renewables {

PlantConfig PlantConfig::urban() {
  PlantConfig cfg;
  PvConfig pv;
  pv.area_m2 = 25.0;  // rooftop constraint
  pv.rated_power_w = 5000.0;
  cfg.pv = pv;
  return cfg;
}

PlantConfig PlantConfig::rural() {
  PlantConfig cfg;
  PvConfig pv;
  pv.area_m2 = 60.0;
  pv.rated_power_w = 12000.0;
  cfg.pv = pv;
  cfg.wt = WindTurbineConfig{};
  return cfg;
}

PlantConfig PlantConfig::none() { return PlantConfig{}; }

RenewablePlant::RenewablePlant(PlantConfig cfg) : cfg_(cfg) {}

GenerationSeries RenewablePlant::generate(const weather::WeatherSeries& wx) const {
  GenerationSeries out;
  generate_into(wx, out);
  return out;
}

void RenewablePlant::generate_into(const weather::WeatherSeries& wx,
                                   GenerationSeries& out) const {
  out.pv_w.assign(wx.size(), 0.0);
  out.wt_w.assign(wx.size(), 0.0);
  out.total_w.assign(wx.size(), 0.0);
  if (cfg_.pv) {
    const PvArray pv(*cfg_.pv);
    for (std::size_t t = 0; t < wx.size(); ++t) {
      out.pv_w[t] = pv.power_w(wx.ghi_wm2[t], wx.temperature_c[t]);
    }
  }
  if (cfg_.wt) {
    const WindTurbine wt(*cfg_.wt);
    for (std::size_t t = 0; t < wx.size(); ++t) {
      out.wt_w[t] = wt.power_w(wx.wind_speed_ms[t]);
    }
  }
  for (std::size_t t = 0; t < wx.size(); ++t) out.total_w[t] = out.pv_w[t] + out.wt_w[t];
}

}  // namespace ecthub::renewables
