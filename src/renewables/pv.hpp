// Photovoltaic array model (paper's P_PV(t)).
//
// Power = irradiance * area * efficiency, derated linearly with cell
// temperature above 25 C — the standard single-diode-free engineering
// approximation, adequate because the paper only consumes the plant's power
// series, not module-level electrical detail.
#pragma once

#include "weather/weather.hpp"

#include <vector>

namespace ecthub::renewables {

struct PvConfig {
  double area_m2 = 40.0;            ///< total panel area
  double efficiency = 0.21;         ///< STC conversion efficiency
  double temp_coeff_per_c = 0.004;  ///< fractional derating per deg C above 25
  double inverter_efficiency = 0.97;
  double rated_power_w = 8000.0;    ///< inverter clipping limit
};

class PvArray {
 public:
  explicit PvArray(PvConfig cfg);

  /// AC power (W) for one slot's weather.
  [[nodiscard]] double power_w(double ghi_wm2, double ambient_temp_c) const;

  /// Whole-horizon series from a weather series.
  [[nodiscard]] std::vector<double> series(const weather::WeatherSeries& wx) const;

  [[nodiscard]] const PvConfig& config() const noexcept { return cfg_; }

 private:
  PvConfig cfg_;
};

}  // namespace ecthub::renewables
