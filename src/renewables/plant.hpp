// Renewable plant: the PV + WT generation attached to one ECT-Hub.
//
// Urban hubs typically carry rooftop PV only; rural hubs carry both PV and a
// wind turbine (paper Fig. 6).  The plant produces the combined P_WT + P_PV
// series used in the grid balance (Eq. 7) and in Fig. 2.
#pragma once

#include "renewables/pv.hpp"
#include "renewables/wind_turbine.hpp"
#include "weather/weather.hpp"

#include <optional>
#include <vector>

namespace ecthub::renewables {

struct PlantConfig {
  std::optional<PvConfig> pv;           ///< absent = no PV installed
  std::optional<WindTurbineConfig> wt;  ///< absent = no turbine installed

  /// Rooftop-PV-only urban configuration.
  static PlantConfig urban();
  /// PV + wind rural configuration.
  static PlantConfig rural();
  /// No renewables (the prior-work baseline [7] setting).
  static PlantConfig none();
};

/// Per-slot generation split used by Fig. 2 and the hub environment.
struct GenerationSeries {
  std::vector<double> pv_w;
  std::vector<double> wt_w;
  std::vector<double> total_w;

  [[nodiscard]] std::size_t size() const noexcept { return total_w.size(); }
};

class RenewablePlant {
 public:
  explicit RenewablePlant(PlantConfig cfg);

  [[nodiscard]] GenerationSeries generate(const weather::WeatherSeries& wx) const;

  /// Allocation-free variant: regenerates `out` in place, reusing the
  /// capacity of its three channels.  Produces the identical values as
  /// generate().
  void generate_into(const weather::WeatherSeries& wx, GenerationSeries& out) const;

  [[nodiscard]] bool has_pv() const noexcept { return cfg_.pv.has_value(); }
  [[nodiscard]] bool has_wt() const noexcept { return cfg_.wt.has_value(); }
  [[nodiscard]] const PlantConfig& config() const noexcept { return cfg_; }

 private:
  PlantConfig cfg_;
};

}  // namespace ecthub::renewables
