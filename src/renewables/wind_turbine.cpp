#include "renewables/wind_turbine.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::renewables {

WindTurbine::WindTurbine(WindTurbineConfig cfg) : cfg_(cfg) {
  if (!(0.0 < cfg_.cut_in_ms && cfg_.cut_in_ms < cfg_.rated_speed_ms &&
        cfg_.rated_speed_ms < cfg_.cut_out_ms)) {
    throw std::invalid_argument(
        "WindTurbineConfig: need 0 < cut_in < rated_speed < cut_out");
  }
  if (cfg_.rated_power_w <= 0.0) {
    throw std::invalid_argument("WindTurbineConfig: rated_power_w must be > 0");
  }
}

double WindTurbine::power_w(double v) const {
  if (v < cfg_.cut_in_ms || v >= cfg_.cut_out_ms) return 0.0;
  if (v >= cfg_.rated_speed_ms) return cfg_.rated_power_w;
  // Cubic interpolation between cut-in and rated speed (P ~ v^3 physics).
  const double num = std::pow(v, 3.0) - std::pow(cfg_.cut_in_ms, 3.0);
  const double den = std::pow(cfg_.rated_speed_ms, 3.0) - std::pow(cfg_.cut_in_ms, 3.0);
  return cfg_.rated_power_w * num / den;
}

std::vector<double> WindTurbine::series(const weather::WeatherSeries& wx) const {
  std::vector<double> out(wx.size());
  for (std::size_t t = 0; t < wx.size(); ++t) out[t] = power_w(wx.wind_speed_ms[t]);
  return out;
}

}  // namespace ecthub::renewables
