// Small wind-turbine model (paper's P_WT(t)).
//
// Standard piecewise power curve: zero below cut-in, cubic ramp between
// cut-in and rated speed, flat at rated power, zero above cut-out.
#pragma once

#include "weather/weather.hpp"

#include <vector>

namespace ecthub::renewables {

struct WindTurbineConfig {
  double cut_in_ms = 3.0;
  double rated_speed_ms = 11.0;
  double cut_out_ms = 25.0;
  double rated_power_w = 10000.0;
};

class WindTurbine {
 public:
  explicit WindTurbine(WindTurbineConfig cfg);

  [[nodiscard]] double power_w(double wind_speed_ms) const;

  [[nodiscard]] std::vector<double> series(const weather::WeatherSeries& wx) const;

  [[nodiscard]] const WindTurbineConfig& config() const noexcept { return cfg_; }

 private:
  WindTurbineConfig cfg_;
};

}  // namespace ecthub::renewables
