#include "renewables/pv.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::renewables {

PvArray::PvArray(PvConfig cfg) : cfg_(cfg) {
  if (cfg_.area_m2 <= 0.0) throw std::invalid_argument("PvConfig: area_m2 must be > 0");
  if (cfg_.efficiency <= 0.0 || cfg_.efficiency > 1.0) {
    throw std::invalid_argument("PvConfig: efficiency out of (0, 1]");
  }
  if (cfg_.inverter_efficiency <= 0.0 || cfg_.inverter_efficiency > 1.0) {
    throw std::invalid_argument("PvConfig: inverter_efficiency out of (0, 1]");
  }
  if (cfg_.rated_power_w <= 0.0) throw std::invalid_argument("PvConfig: rated_power_w <= 0");
}

double PvArray::power_w(double ghi_wm2, double ambient_temp_c) const {
  if (ghi_wm2 <= 0.0) return 0.0;
  // NOCT-style cell-temperature estimate: cells run hotter than ambient in
  // proportion to irradiance.
  const double cell_temp_c = ambient_temp_c + 0.03 * ghi_wm2;
  const double derate = std::max(0.0, 1.0 - cfg_.temp_coeff_per_c *
                                            std::max(0.0, cell_temp_c - 25.0));
  const double dc = ghi_wm2 * cfg_.area_m2 * cfg_.efficiency * derate;
  return std::min(dc * cfg_.inverter_efficiency, cfg_.rated_power_w);
}

std::vector<double> PvArray::series(const weather::WeatherSeries& wx) const {
  std::vector<double> out(wx.size());
  for (std::size_t t = 0; t < wx.size(); ++t) {
    out[t] = power_w(wx.ghi_wm2[t], wx.temperature_c[t]);
  }
  return out;
}

}  // namespace ecthub::renewables
