// Blackout-reserve sizing (paper Eq. 6).
//
// The SoC floor must cover the base station's energy draw over the estimated
// grid-recovery time T_r:  sum_{t..t+Tr} P_BS(t) <= SoC_min.  We size the
// floor against the worst-case window of a representative load trace (or
// simply full load), which is the conservative reading operators use.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::battery {

/// Energy (kWh) needed to ride through `recovery_hours` at constant
/// `bs_power_kw` — the full-load conservative bound.
[[nodiscard]] double reserve_energy_full_load(double bs_power_kw, double recovery_hours);

/// Energy (kWh) of the worst contiguous window of `recovery_slots` slots in a
/// BS power trace sampled at `dt_hours` per slot.  Throws if the trace is
/// shorter than the window.
[[nodiscard]] double reserve_energy_worst_window(const std::vector<double>& bs_power_kw,
                                                 std::size_t recovery_slots, double dt_hours);

/// Converts a reserve energy into an SoC floor fraction for a pack of
/// `capacity_kwh`, accounting for discharge efficiency (stored energy must
/// exceed delivered energy).  Clamped to [0, 1].
[[nodiscard]] double reserve_floor_fraction(double reserve_kwh, double capacity_kwh,
                                            double discharge_efficiency);

}  // namespace ecthub::battery
