// Battery point (BP) model — the backup battery group of one or more nearby
// base stations, repurposed as the hub's energy-storage system.
//
// Implements the paper's Eqs. 3-5 and 8:
//   P_BP(t)   = S_BP(t) * eta_{ch|dch} * R_{ch|dch}         (Eq. 3)
//   SoC(t+1)  = SoC(t) + P_BP(t) * dt                        (Eq. 4)
//   SoC_min <= SoC(t) <= SoC_max                             (Eq. 5)
//   C_BP(t)   = |S_BP(t)| * c_BP                             (Eq. 8)
//
// Sign convention: from the hub's perspective P_BP > 0 means the pack draws
// power (charging, a load) and P_BP < 0 means it supplies power
// (discharging, a source) — matching Eq. 7 where P_BP adds to demand.
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>

namespace ecthub::battery {

/// The three scheduling actions for the pack (paper S_BP in {1, -1, 0}).
enum class BpAction { kIdle = 0, kCharge = 1, kDischarge = 2 };

struct BatteryConfig {
  double capacity_kwh = 100.0;      ///< nameplate energy capacity
  double charge_rate_kw = 20.0;     ///< R_ch, grid-side draw while charging
  double discharge_rate_kw = 20.0;  ///< R_dch, load-side supply while discharging
  double charge_efficiency = 0.95;     ///< eta_ch: fraction of drawn power stored
  double discharge_efficiency = 0.95;  ///< eta_dch: stored energy per delivered unit ratio^-1
  double soc_min_frac = 0.2;        ///< Eq. 5 lower bound as a capacity fraction
  double soc_max_frac = 0.95;       ///< Eq. 5 upper bound as a capacity fraction
  double op_cost_per_slot = 0.01;   ///< c_BP: wear cost per active slot, $

  void validate() const;
};

/// Result of stepping the pack one slot.
struct BpStepResult {
  /// Power at the hub bus, kW: positive = consumed (charging), negative =
  /// provided (discharging), zero when idle or when the action was infeasible.
  double bus_power_kw = 0.0;
  /// Wear cost incurred this slot (Eq. 8), $.
  double op_cost = 0.0;
  /// The action actually applied (infeasible requests degrade to kIdle).
  BpAction applied = BpAction::kIdle;
};

class BatteryPack {
 public:
  /// @param initial_soc_frac starting state of charge as a capacity fraction;
  ///        clamped into [soc_min_frac, soc_max_frac].
  BatteryPack(BatteryConfig cfg, double initial_soc_frac);

  /// Applies `action` for a slot of `dt_hours`.  Actions that would violate
  /// the SoC bounds are partially applied up to the bound; an action with no
  /// feasible headroom at all degrades to kIdle (and incurs no wear cost).
  ///
  /// `max_discharge_kw` throttles the delivered power below R_dch: the DC
  /// bus cannot absorb more than the hub's instantaneous net load, so the
  /// BMS limits discharge to it (surplus renewable power is curtailed, but
  /// battery energy is never dumped).  Ignored for charge/idle.
  BpStepResult step(BpAction action, double dt_hours,
                    double max_discharge_kw = std::numeric_limits<double>::infinity());

  /// True if `action` can move any energy this slot.
  [[nodiscard]] bool feasible(BpAction action) const;

  [[nodiscard]] double soc_kwh() const noexcept { return soc_kwh_; }
  [[nodiscard]] double soc_frac() const noexcept { return soc_kwh_ / cfg_.capacity_kwh; }
  [[nodiscard]] double soc_min_kwh() const noexcept {
    return cfg_.soc_min_frac * cfg_.capacity_kwh;
  }
  [[nodiscard]] double soc_max_kwh() const noexcept {
    return cfg_.soc_max_frac * cfg_.capacity_kwh;
  }

  /// Energy the pack can still absorb / deliver (bus side), kWh.
  [[nodiscard]] double headroom_kwh() const noexcept { return soc_max_kwh() - soc_kwh_; }
  [[nodiscard]] double available_kwh() const noexcept { return soc_kwh_ - soc_min_kwh(); }

  /// Raises the effective SoC floor (used by the blackout-reserve constraint,
  /// Eq. 6).  Must stay within [soc_min, soc_max].
  void set_reserve_floor_kwh(double floor_kwh);
  [[nodiscard]] double reserve_floor_kwh() const noexcept { return reserve_floor_kwh_; }

  /// Forces the SoC (clamped to bounds) — used at episode resets.
  void reset_soc_frac(double frac);

  [[nodiscard]] const BatteryConfig& config() const noexcept { return cfg_; }

  /// Lifetime counters, useful for degradation accounting.
  [[nodiscard]] double total_throughput_kwh() const noexcept { return throughput_kwh_; }
  [[nodiscard]] std::size_t active_slots() const noexcept { return active_slots_; }

 private:
  BatteryConfig cfg_;
  double soc_kwh_;
  double reserve_floor_kwh_;
  double throughput_kwh_ = 0.0;
  std::size_t active_slots_ = 0;
};

}  // namespace ecthub::battery
