#include "battery/battery_pack.hpp"

#include <algorithm>
#include <cmath>

namespace ecthub::battery {

namespace {
constexpr double kEps = 1e-9;
}

void BatteryConfig::validate() const {
  if (capacity_kwh <= 0.0) throw std::invalid_argument("BatteryConfig: capacity_kwh <= 0");
  if (charge_rate_kw <= 0.0) throw std::invalid_argument("BatteryConfig: charge_rate_kw <= 0");
  if (discharge_rate_kw <= 0.0) {
    throw std::invalid_argument("BatteryConfig: discharge_rate_kw <= 0");
  }
  if (charge_efficiency <= 0.0 || charge_efficiency > 1.0) {
    throw std::invalid_argument("BatteryConfig: charge_efficiency out of (0, 1]");
  }
  if (discharge_efficiency <= 0.0 || discharge_efficiency > 1.0) {
    throw std::invalid_argument("BatteryConfig: discharge_efficiency out of (0, 1]");
  }
  if (!(0.0 <= soc_min_frac && soc_min_frac < soc_max_frac && soc_max_frac <= 1.0)) {
    throw std::invalid_argument("BatteryConfig: need 0 <= soc_min < soc_max <= 1");
  }
  if (op_cost_per_slot < 0.0) throw std::invalid_argument("BatteryConfig: op_cost < 0");
}

BatteryPack::BatteryPack(BatteryConfig cfg, double initial_soc_frac) : cfg_(cfg), soc_kwh_(0.0) {
  cfg_.validate();
  reserve_floor_kwh_ = soc_min_kwh();
  reset_soc_frac(initial_soc_frac);
}

void BatteryPack::reset_soc_frac(double frac) {
  const double kwh = frac * cfg_.capacity_kwh;
  soc_kwh_ = std::clamp(kwh, reserve_floor_kwh_, soc_max_kwh());
}

void BatteryPack::set_reserve_floor_kwh(double floor_kwh) {
  if (floor_kwh < soc_min_kwh() - kEps || floor_kwh > soc_max_kwh() + kEps) {
    throw std::invalid_argument("BatteryPack: reserve floor outside [soc_min, soc_max]");
  }
  reserve_floor_kwh_ = std::clamp(floor_kwh, soc_min_kwh(), soc_max_kwh());
  soc_kwh_ = std::max(soc_kwh_, reserve_floor_kwh_);
}

bool BatteryPack::feasible(BpAction action) const {
  switch (action) {
    case BpAction::kIdle: return true;
    case BpAction::kCharge: return headroom_kwh() > kEps;
    case BpAction::kDischarge: return soc_kwh_ - reserve_floor_kwh_ > kEps;
  }
  return false;
}

BpStepResult BatteryPack::step(BpAction action, double dt_hours, double max_discharge_kw) {
  if (dt_hours <= 0.0) throw std::invalid_argument("BatteryPack::step: dt_hours <= 0");
  if (max_discharge_kw < 0.0) {
    throw std::invalid_argument("BatteryPack::step: max_discharge_kw < 0");
  }
  BpStepResult r;
  switch (action) {
    case BpAction::kIdle:
      return r;
    case BpAction::kCharge: {
      // Bus draws R_ch; only eta_ch of it is stored (Eq. 3 with S=+1).
      const double stored_want = cfg_.charge_rate_kw * cfg_.charge_efficiency * dt_hours;
      const double stored = std::min(stored_want, headroom_kwh());
      if (stored <= kEps) return r;  // full: degrade to idle, no wear
      soc_kwh_ += stored;
      throughput_kwh_ += stored;
      ++active_slots_;
      r.bus_power_kw = stored / (cfg_.charge_efficiency * dt_hours);
      r.op_cost = cfg_.op_cost_per_slot;
      r.applied = BpAction::kCharge;
      return r;
    }
    case BpAction::kDischarge: {
      // Bus receives up to min(R_dch, throttle); the pack depletes faster by
      // 1/eta_dch.
      const double delivered_want =
          std::min(cfg_.discharge_rate_kw, max_discharge_kw) * dt_hours;
      const double depletable = (soc_kwh_ - reserve_floor_kwh_) * cfg_.discharge_efficiency;
      const double delivered = std::min(delivered_want, depletable);
      if (delivered <= kEps) return r;  // at reserve floor: degrade to idle
      soc_kwh_ -= delivered / cfg_.discharge_efficiency;
      throughput_kwh_ += delivered;
      ++active_slots_;
      r.bus_power_kw = -delivered / dt_hours;
      r.op_cost = cfg_.op_cost_per_slot;
      r.applied = BpAction::kDischarge;
      return r;
    }
  }
  throw std::logic_error("BatteryPack::step: invalid action");
}

}  // namespace ecthub::battery
