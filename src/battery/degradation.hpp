// Battery degradation & terminal-voltage surrogate (paper Fig. 4).
//
// The paper uses long-horizon voltage telemetry to argue that backup
// batteries self-degrade even when unused; we reproduce that with a simple
// electro-chemical surrogate: an open-circuit-voltage (OCV) curve over SoC
// plus calendar fade (time) and cycle fade (energy throughput) acting on the
// usable capacity and on the per-cell voltage plateau.
#pragma once

#include <cstddef>
#include <vector>

namespace ecthub::battery {

struct DegradationConfig {
  double nominal_cell_voltage = 2.23;   ///< VRLA float voltage per cell, V
  double calendar_fade_per_day = 2e-4;  ///< fractional capacity loss per day
  double cycle_fade_per_kwh = 5e-5;     ///< fractional loss per kWh throughput
  double voltage_per_fade = 0.55;       ///< V dropped per unit capacity fade
  std::size_t cells_in_group = 24;      ///< cells in a series group (48 V class)
};

/// Tracks capacity fade and reports cell / group voltage.
class DegradationModel {
 public:
  explicit DegradationModel(DegradationConfig cfg);

  /// Advances calendar time by `days` and records `throughput_kwh` of cycling.
  void advance(double days, double throughput_kwh);

  /// Remaining capacity as a fraction of nameplate, in (0, 1].
  [[nodiscard]] double capacity_fraction() const noexcept;

  /// Per-cell float voltage after fade, V.
  [[nodiscard]] double cell_voltage() const noexcept;

  /// Series-group voltage, V.
  [[nodiscard]] double group_voltage() const noexcept;

  /// Simulates `days` of pure calendar ageing (plus optional daily cycling
  /// throughput) and returns the daily cell-voltage series — the Fig. 4 curve.
  [[nodiscard]] static std::vector<double> voltage_trajectory(
      const DegradationConfig& cfg, std::size_t days, double daily_throughput_kwh = 0.0);

  [[nodiscard]] const DegradationConfig& config() const noexcept { return cfg_; }

 private:
  DegradationConfig cfg_;
  double fade_ = 0.0;  // cumulative fractional capacity loss
};

/// Open-circuit voltage of a lead-acid cell as a function of SoC fraction —
/// an affine fit adequate over the 20-95% window the pack operates in.
[[nodiscard]] double lead_acid_ocv(double soc_frac);

}  // namespace ecthub::battery
