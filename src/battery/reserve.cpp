#include "battery/reserve.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::battery {

double reserve_energy_full_load(double bs_power_kw, double recovery_hours) {
  if (bs_power_kw < 0.0 || recovery_hours < 0.0) {
    throw std::invalid_argument("reserve_energy_full_load: negative input");
  }
  return bs_power_kw * recovery_hours;
}

double reserve_energy_worst_window(const std::vector<double>& bs_power_kw,
                                   std::size_t recovery_slots, double dt_hours) {
  if (recovery_slots == 0) throw std::invalid_argument("reserve window must be >= 1 slot");
  if (dt_hours <= 0.0) throw std::invalid_argument("dt_hours must be > 0");
  if (bs_power_kw.size() < recovery_slots) {
    throw std::invalid_argument("trace shorter than recovery window");
  }
  double window = 0.0;
  for (std::size_t t = 0; t < recovery_slots; ++t) window += bs_power_kw[t];
  double worst = window;
  for (std::size_t t = recovery_slots; t < bs_power_kw.size(); ++t) {
    window += bs_power_kw[t] - bs_power_kw[t - recovery_slots];
    worst = std::max(worst, window);
  }
  return worst * dt_hours;
}

double reserve_floor_fraction(double reserve_kwh, double capacity_kwh,
                              double discharge_efficiency) {
  if (capacity_kwh <= 0.0) throw std::invalid_argument("capacity_kwh must be > 0");
  if (discharge_efficiency <= 0.0 || discharge_efficiency > 1.0) {
    throw std::invalid_argument("discharge_efficiency out of (0, 1]");
  }
  const double stored_needed = reserve_kwh / discharge_efficiency;
  return std::clamp(stored_needed / capacity_kwh, 0.0, 1.0);
}

}  // namespace ecthub::battery
