#include "battery/degradation.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::battery {

DegradationModel::DegradationModel(DegradationConfig cfg) : cfg_(cfg) {
  if (cfg_.nominal_cell_voltage <= 0.0) {
    throw std::invalid_argument("DegradationConfig: nominal_cell_voltage <= 0");
  }
  if (cfg_.calendar_fade_per_day < 0.0 || cfg_.cycle_fade_per_kwh < 0.0) {
    throw std::invalid_argument("DegradationConfig: negative fade rate");
  }
  if (cfg_.cells_in_group == 0) {
    throw std::invalid_argument("DegradationConfig: cells_in_group == 0");
  }
}

void DegradationModel::advance(double days, double throughput_kwh) {
  if (days < 0.0 || throughput_kwh < 0.0) {
    throw std::invalid_argument("DegradationModel::advance: negative input");
  }
  fade_ += cfg_.calendar_fade_per_day * days + cfg_.cycle_fade_per_kwh * throughput_kwh;
  fade_ = std::min(fade_, 0.5);  // surrogate valid up to 50% fade
}

double DegradationModel::capacity_fraction() const noexcept { return 1.0 - fade_; }

double DegradationModel::cell_voltage() const noexcept {
  return cfg_.nominal_cell_voltage - cfg_.voltage_per_fade * fade_;
}

double DegradationModel::group_voltage() const noexcept {
  return cell_voltage() * static_cast<double>(cfg_.cells_in_group);
}

std::vector<double> DegradationModel::voltage_trajectory(const DegradationConfig& cfg,
                                                         std::size_t days,
                                                         double daily_throughput_kwh) {
  DegradationModel model(cfg);
  std::vector<double> v;
  v.reserve(days);
  for (std::size_t d = 0; d < days; ++d) {
    model.advance(1.0, daily_throughput_kwh);
    v.push_back(model.cell_voltage());
  }
  return v;
}

double lead_acid_ocv(double soc_frac) {
  const double s = std::clamp(soc_frac, 0.0, 1.0);
  // 2.05 V empty -> 2.23 V full, the usual VRLA open-circuit window.
  return 2.05 + 0.18 * s;
}

}  // namespace ecthub::battery
