// The unified decision interface: one Policy API for rule-based and DRL
// schedulers.
//
// A Policy maps the EctHubEnv observation vector (see observation.hpp) to a
// BP action (0 = idle, 1 = charge, 2 = discharge) and never sees the
// environment object itself.  That inversion is what lets one fleet engine
// drive every scheduler family the same way — and batch them: decide_batch()
// takes a (hubs x state_dim) matrix and fills one action per row, so a
// neural policy can replace per-hub matrix-vector products with a single
// matrix-matrix forward pass across the whole fleet slot.
//
// Stateless policies additionally expose decide_rows(): a const, thread-safe
// row-block form of decide_batch that several workers can call concurrently
// on disjoint row ranges of one shared observation matrix — the contract the
// lockstep fleet runner's worker-GEMM phase B builds on.  Per-call scratch
// lives in a caller-owned Workspace (one per calling thread, reused across
// slots) so the steady-state path stays allocation-free.
#pragma once

#include "nn/matrix.hpp"

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace ecthub::policy {

class Policy {
 public:
  /// Opaque per-caller scratch for decide_rows().  Callers create one per
  /// thread via make_workspace() and pass it to every call; a policy
  /// downcasts to its own derived workspace type.  Reusing one workspace
  /// across calls keeps the steady-state batched path allocation-free.
  class Workspace {
   public:
    virtual ~Workspace() = default;
  };

  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Decides the BP action for one observation.  Called exactly once per
  /// slot, in slot order — stateful policies (price trackers, RNG-driven
  /// exploration) advance their internal state on each call.
  virtual std::size_t decide(std::span<const double> obs) = 0;

  /// Batched decisions: `obs` is (batch x state_dim), `actions` receives one
  /// action per row.  The default decides row by row in order, advancing any
  /// internal state exactly as the equivalent sequence of decide() calls
  /// would.  Overrides (DrlPolicy) fuse the batch into one forward pass.
  ///
  /// Rows may come from *different* hubs only when stateless() is true;
  /// stateful policies must stay one-instance-per-hub.
  virtual void decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions);

  /// Fresh scratch for decide_rows(); one per calling thread.  The base
  /// workspace is empty — policies whose row kernel needs buffers (DrlPolicy)
  /// return their own derived type.
  [[nodiscard]] virtual std::unique_ptr<Workspace> make_workspace() const;

  /// Row-block batched decisions: computes actions[row_begin, row_end) from
  /// the same rows of `obs` (a full-batch matrix — `actions` spans all of
  /// it), bit-identical to what decide_batch would put there.  Only
  /// stateless() policies support it; the kernel is const and touches no
  /// member state, so disjoint row blocks may run concurrently on one shared
  /// instance as long as each caller passes its own workspace.  The default
  /// implementation throws std::logic_error (stateful policies must stay
  /// one-instance-per-hub and use decide/decide_batch).
  virtual void decide_rows(const nn::Matrix& obs, std::size_t row_begin,
                           std::size_t row_end, std::span<std::size_t> actions,
                           Workspace& ws) const;

  /// Resets per-episode state; called after every env reset.  Stateless
  /// policies ignore it.  Cross-episode knowledge (e.g. a learned diurnal
  /// price curve) deliberately survives — only within-episode trackers clear.
  virtual void begin_episode() {}

  /// True when decide() is a pure function of the observation, so a single
  /// instance may serve many hubs and decide_batch() may mix rows from
  /// different hubs in one call.
  [[nodiscard]] virtual bool stateless() const { return false; }

 protected:
  /// Shared argument validation for decide_rows overrides: the range must
  /// lie inside obs and actions must span the full batch.
  static void check_rows(const nn::Matrix& obs, std::size_t row_begin,
                         std::size_t row_end, std::span<const std::size_t> actions);
};

}  // namespace ecthub::policy
