// The unified decision interface: one Policy API for rule-based and DRL
// schedulers.
//
// A Policy maps the EctHubEnv observation vector (see observation.hpp) to a
// BP action (0 = idle, 1 = charge, 2 = discharge) and never sees the
// environment object itself.  That inversion is what lets one fleet engine
// drive every scheduler family the same way — and batch them: decide_batch()
// takes a (hubs x state_dim) matrix and fills one action per row, so a
// neural policy can replace per-hub matrix-vector products with a single
// matrix-matrix forward pass across the whole fleet slot.
#pragma once

#include "nn/matrix.hpp"

#include <cstddef>
#include <span>
#include <string>

namespace ecthub::policy {

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Decides the BP action for one observation.  Called exactly once per
  /// slot, in slot order — stateful policies (price trackers, RNG-driven
  /// exploration) advance their internal state on each call.
  virtual std::size_t decide(std::span<const double> obs) = 0;

  /// Batched decisions: `obs` is (batch x state_dim), `actions` receives one
  /// action per row.  The default decides row by row in order, advancing any
  /// internal state exactly as the equivalent sequence of decide() calls
  /// would.  Overrides (DrlPolicy) fuse the batch into one forward pass.
  ///
  /// Rows may come from *different* hubs only when stateless() is true;
  /// stateful policies must stay one-instance-per-hub.
  virtual void decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions);

  /// Resets per-episode state; called after every env reset.  Stateless
  /// policies ignore it.  Cross-episode knowledge (e.g. a learned diurnal
  /// price curve) deliberately survives — only within-episode trackers clear.
  virtual void begin_episode() {}

  /// True when decide() is a pure function of the observation, so a single
  /// instance may serve many hubs and decide_batch() may mix rows from
  /// different hubs in one call.
  [[nodiscard]] virtual bool stateless() const { return false; }
};

}  // namespace ecthub::policy
