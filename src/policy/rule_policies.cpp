#include "policy/rule_policies.hpp"

#include "common/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecthub::policy {

namespace {
bool in_window(double hour, double start, double end) {
  return start <= end ? (hour >= start && hour < end) : (hour >= start || hour < end);
}
}  // namespace

std::size_t NoBatteryPolicy::decide(std::span<const double>) { return 0; }

void NoBatteryPolicy::decide_rows(const nn::Matrix& obs, std::size_t row_begin,
                                  std::size_t row_end, std::span<std::size_t> actions,
                                  Workspace&) const {
  check_rows(obs, row_begin, row_end, actions);
  for (std::size_t i = row_begin; i < row_end; ++i) actions[i] = 0;
}

TouPolicy::TouPolicy(ObservationLayout layout, double charge_start, double charge_end,
                     double discharge_start, double discharge_end)
    : layout_(layout), cs_(charge_start), ce_(charge_end), ds_(discharge_start),
      de_(discharge_end) {}

std::size_t TouPolicy::decide_obs(std::span<const double> obs) const {
  const double hour = layout_.hour_of_day(obs);
  if (in_window(hour, cs_, ce_)) return 1;  // charge off-peak
  if (in_window(hour, ds_, de_)) return 2;  // discharge at peak
  return 0;
}

std::size_t TouPolicy::decide(std::span<const double> obs) { return decide_obs(obs); }

void TouPolicy::decide_rows(const nn::Matrix& obs, std::size_t row_begin,
                            std::size_t row_end, std::span<std::size_t> actions,
                            Workspace&) const {
  check_rows(obs, row_begin, row_end, actions);
  const double* data = obs.data().data();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    actions[i] = decide_obs(std::span<const double>(data + i * obs.cols(), obs.cols()));
  }
}

GreedyPricePolicy::GreedyPricePolicy(ObservationLayout layout, double low_quantile,
                                     double high_quantile)
    : layout_(layout), low_q_(low_quantile), high_q_(high_quantile) {
  if (!(0.0 <= low_quantile && low_quantile < high_quantile && high_quantile <= 100.0)) {
    throw std::invalid_argument("GreedyPricePolicy: bad quantiles");
  }
}

std::size_t GreedyPricePolicy::decide(std::span<const double> obs) {
  const double now = layout_.rtp(obs);
  // Trailing window of realized prices: the current slot plus the previous
  // day (24 slots), exactly the slots a per-slot decision has seen.
  constexpr std::size_t kWindow = 24;
  seen_.push_back(now);
  if (seen_.size() > kWindow + 1) seen_.erase(seen_.begin());
  const double p_lo = stats::percentile(seen_, low_q_, scratch_);
  const double p_hi = stats::percentile(seen_, high_q_, scratch_);
  if (now <= p_lo) return 1;
  if (now >= p_hi) return 2;
  return 0;
}

ForecastPolicy::ForecastPolicy(ObservationLayout layout, double low_band, double high_band)
    : layout_(layout), low_band_(low_band), high_band_(high_band), price_forecast_(24) {
  if (!(0.0 <= low_band && low_band < high_band && high_band <= 1.0)) {
    throw std::invalid_argument("ForecastPolicy: bad bands");
  }
}

std::size_t ForecastPolicy::decide(std::span<const double> obs) {
  // Feed the realized price for this slot, then act on the predicted curve.
  price_forecast_.observe(slot_, layout_.rtp(obs));

  // Predicted daily curve and its band edges.
  double lo = price_forecast_.predict(0), hi = lo;
  for (std::size_t h = 1; h < 24; ++h) {
    const double p = price_forecast_.predict(h);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double now = price_forecast_.predict(slot_);
  ++slot_;
  if (hi - lo < 1e-9) return 0;
  const double pos = (now - lo) / (hi - lo);
  if (pos <= low_band_) return 1;   // cheap part of the predicted day: charge
  if (pos >= high_band_) return 2;  // expensive part: discharge
  return 0;
}

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

std::size_t RandomPolicy::decide(std::span<const double>) {
  return static_cast<std::size_t>(rng_.uniform_int(0, 2));
}

}  // namespace ecthub::policy
