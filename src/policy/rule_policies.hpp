// Rule-based battery policies: ablation baselines against ECT-DRL.
//
// These implement the obvious operating strategies an operator would try
// before reaching for RL; the ablation bench (DESIGN.md Sec. 5) measures how
// much of ECT-DRL's profit each heuristic captures.  All of them read the
// shared observation vector (observation.hpp) — never the environment — so
// the fleet engine drives them through the same Policy API as the DRL actor.
#pragma once

#include "common/rng.hpp"
#include "forecast/predictors.hpp"
#include "policy/observation.hpp"
#include "policy/policy.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace ecthub::policy {

/// Never uses the battery (the no-BESS operating point).
class NoBatteryPolicy final : public Policy {
 public:
  std::size_t decide(std::span<const double> obs) override;
  void decide_rows(const nn::Matrix& obs, std::size_t row_begin, std::size_t row_end,
                   std::span<std::size_t> actions, Workspace& ws) const override;
  [[nodiscard]] std::string name() const override { return "NoBattery"; }
  [[nodiscard]] bool stateless() const override { return true; }
};

/// Charges during a fixed off-peak window and discharges during the evening
/// peak — the classic time-of-use rule.  Reads the hour of day back from the
/// observation's phase encoding.
class TouPolicy final : public Policy {
 public:
  explicit TouPolicy(ObservationLayout layout = {}, double charge_start = 23.0,
                     double charge_end = 7.0, double discharge_start = 17.0,
                     double discharge_end = 22.0);
  std::size_t decide(std::span<const double> obs) override;
  void decide_rows(const nn::Matrix& obs, std::size_t row_begin, std::size_t row_end,
                   std::span<std::size_t> actions, Workspace& ws) const override;
  [[nodiscard]] std::string name() const override { return "TOU"; }
  [[nodiscard]] bool stateless() const override { return true; }

 private:
  [[nodiscard]] std::size_t decide_obs(std::span<const double> obs) const;

  ObservationLayout layout_;
  double cs_, ce_, ds_, de_;
};

/// Price-threshold arbitrage: charge when the current RTP is below the
/// trailing-day low quantile, discharge above the high quantile.  Stateful:
/// it accumulates one realized price per decide() call and clears the window
/// at each episode start.
class GreedyPricePolicy final : public Policy {
 public:
  explicit GreedyPricePolicy(ObservationLayout layout = {}, double low_quantile = 30.0,
                             double high_quantile = 70.0);
  std::size_t decide(std::span<const double> obs) override;
  void begin_episode() override { seen_.clear(); }
  [[nodiscard]] std::string name() const override { return "GreedyPrice"; }

 private:
  ObservationLayout layout_;
  double low_q_, high_q_;
  std::vector<double> seen_;     ///< trailing window of realized prices, $/MWh
  std::vector<double> scratch_;  ///< percentile sort buffer (zero-alloc decide)
};

/// Forecast-driven arbitrage: learns the diurnal price curve online with a
/// seasonal-naive forecaster and charges/discharges when the *forecast* for
/// the current hour sits in the low/high band of the predicted daily curve.
/// Unlike GreedyPricePolicy it reacts to the expected price shape rather
/// than realized quantiles — the interpretable middle ground between the
/// TOU rule and ECT-DRL.  The learned curve survives across episodes (the
/// diurnal structure persists); only the slot counter resets.
class ForecastPolicy final : public Policy {
 public:
  /// @param low_band / high_band fractions of the predicted daily range
  explicit ForecastPolicy(ObservationLayout layout = {}, double low_band = 0.3,
                          double high_band = 0.7);
  std::size_t decide(std::span<const double> obs) override;
  void begin_episode() override { slot_ = 0; }
  [[nodiscard]] std::string name() const override { return "Forecast"; }

 private:
  ObservationLayout layout_;
  double low_band_, high_band_;
  forecast::SeasonalNaivePredictor price_forecast_;
  std::size_t slot_ = 0;
};

/// Uniform random action — the sanity-check floor.
class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 1);
  std::size_t decide(std::span<const double> obs) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

}  // namespace ecthub::policy
