#include "policy/drl_policy.hpp"

#include "nn/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ecthub::policy {

namespace {

constexpr std::uint64_t kCheckpointMagic = 0x4543545044524c31ULL;  // "ECTPDRL1"

nn::MlpConfig actor_head_config(const DrlPolicyConfig& cfg) {
  nn::MlpConfig mc;
  mc.layer_dims = {cfg.trunk_dim, cfg.head_dim, cfg.action_count};
  mc.output_activation = nn::Activation::kIdentity;
  return mc;
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("DrlCheckpoint::load: truncated stream");
  return v;
}

}  // namespace

void DrlCheckpoint::save(std::ostream& out) const {
  write_u64(out, kCheckpointMagic);
  write_u64(out, config.state_dim);
  write_u64(out, config.action_count);
  write_u64(out, config.trunk_dim);
  write_u64(out, config.head_dim);
  write_u64(out, blob.size());
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) throw std::runtime_error("DrlCheckpoint::save: write failed");
}

DrlCheckpoint DrlCheckpoint::load(std::istream& in) {
  if (read_u64(in) != kCheckpointMagic) {
    throw std::runtime_error("DrlCheckpoint::load: bad magic (not a DRL checkpoint)");
  }
  DrlCheckpoint ckpt;
  ckpt.config.state_dim = read_u64(in);
  ckpt.config.action_count = read_u64(in);
  ckpt.config.trunk_dim = read_u64(in);
  ckpt.config.head_dim = read_u64(in);
  const std::uint64_t blob_size = read_u64(in);
  // Guard against garbage sizes from corrupt files before allocating (the
  // largest plausible actor blob is a few MB).
  if (blob_size > (1ULL << 30)) {
    throw std::runtime_error("DrlCheckpoint::load: implausible blob size (corrupt file)");
  }
  ckpt.blob.resize(blob_size);
  in.read(ckpt.blob.data(), static_cast<std::streamsize>(blob_size));
  if (!in) throw std::runtime_error("DrlCheckpoint::load: truncated parameter blob");
  return ckpt;
}

DrlPolicyConfig DrlPolicy::validated(DrlPolicyConfig cfg) {
  if (cfg.state_dim == 0) throw std::invalid_argument("DrlPolicyConfig: state_dim == 0");
  if (cfg.action_count < 2) {
    throw std::invalid_argument("DrlPolicyConfig: need >= 2 actions");
  }
  if (cfg.trunk_dim == 0 || cfg.head_dim == 0) {
    throw std::invalid_argument("DrlPolicyConfig: zero layer width");
  }
  return cfg;
}

DrlPolicy::DrlPolicy(DrlPolicyConfig cfg, nn::Rng& rng)
    : cfg_(validated(cfg)),
      trunk_(cfg_.state_dim, cfg_.trunk_dim, rng, "ac.trunk"),
      trunk_act_(nn::Activation::kTanh),
      actor_(actor_head_config(cfg_), rng, "ac.actor") {}

DrlPolicy::DrlPolicy(DrlPolicyConfig cfg, nn::Rng&& scratch_rng)
    : DrlPolicy(cfg, scratch_rng) {}

DrlPolicy::DrlPolicy(const DrlCheckpoint& checkpoint)
    // Every checkpoint-restored policy owns its throwaway init RNG: the
    // draws are overwritten by the blob below, and no state is shared with
    // other policies loaded on the same thread (a fixed seed keeps even the
    // transient pre-load weights deterministic).
    : DrlPolicy(checkpoint.config, nn::Rng(0)) {
  std::istringstream in(checkpoint.blob);
  std::vector<nn::Parameter> params = parameters();
  nn::load_parameters(in, params);
}

std::unique_ptr<Policy::Workspace> DrlPolicy::make_workspace() const {
  return std::make_unique<BatchWorkspace>();
}

void DrlPolicy::decide_rows(const nn::Matrix& obs, std::size_t row_begin,
                            std::size_t row_end, std::span<std::size_t> actions,
                            Workspace& ws) const {
  check_rows(obs, row_begin, row_end, actions);
  if (obs.rows() == 0 || row_begin == row_end) return;
  if (obs.cols() != cfg_.state_dim) {
    throw std::invalid_argument("DrlPolicy::decide_rows: state dim mismatch");
  }
  auto* scratch = dynamic_cast<BatchWorkspace*>(&ws);
  if (scratch == nullptr) {
    throw std::invalid_argument(
        "DrlPolicy::decide_rows: workspace was not created by make_workspace()");
  }
  trunk_.forward_rows_into(obs, row_begin, row_end, scratch->trunk);
  trunk_act_.forward_inplace(scratch->trunk);
  const nn::Matrix& logits =
      actor_.forward_rows(scratch->trunk, 0, scratch->trunk.rows(), scratch->head);
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    std::size_t best = 0;
    for (std::size_t a = 1; a < cfg_.action_count; ++a) {
      if (logits(i, a) > logits(i, best)) best = a;
    }
    actions[row_begin + i] = best;
  }
}

std::size_t DrlPolicy::decide(std::span<const double> obs) {
  if (obs.size() != cfg_.state_dim) {
    throw std::invalid_argument("DrlPolicy::decide: state dim mismatch");
  }
  nn::Matrix s(1, cfg_.state_dim);
  for (std::size_t c = 0; c < cfg_.state_dim; ++c) s(0, c) = obs[c];
  std::size_t action = 0;
  decide_rows(s, 0, 1, std::span<std::size_t>(&action, 1), scratch_);
  return action;
}

void DrlPolicy::decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions) {
  if (actions.size() != obs.rows()) {
    throw std::invalid_argument("DrlPolicy::decide_batch: row/action count mismatch");
  }
  if (obs.rows() == 0) return;
  if (obs.cols() != cfg_.state_dim) {
    throw std::invalid_argument("DrlPolicy::decide_batch: state dim mismatch");
  }
  decide_rows(obs, 0, obs.rows(), actions, scratch_);
}

DrlCheckpoint DrlPolicy::checkpoint() {
  DrlCheckpoint ckpt;
  ckpt.config = cfg_;
  std::ostringstream out;
  nn::save_parameters(out, parameters());
  ckpt.blob = out.str();
  return ckpt;
}

std::vector<nn::Parameter> DrlPolicy::parameters() {
  std::vector<nn::Parameter> out = trunk_.parameters();
  for (auto& p : actor_.parameters()) out.push_back(p);
  return out;
}

}  // namespace ecthub::policy
