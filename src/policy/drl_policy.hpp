// ECT-DRL deployment policy: the trained PPO actor behind the Policy API.
//
// DrlPolicy wraps the actor path of the actor-critic network (shared trunk +
// actor head, paper Fig. 10) and acts greedily (argmax over action logits).
// Its decide_batch() override is the payoff of the unified API: one forward
// pass over a (hubs x state_dim) matrix turns per-hub matrix-vector products
// into matrix-matrix GEMMs across the whole fleet slot.
//
// Weights travel as a DrlCheckpoint — the network shape plus an nn/serialize
// parameter blob.  The parameter names mirror rl::ActorCritic ("ac.trunk",
// "ac.actor.*"), so a checkpoint exported from a trained PPO policy loads
// straight into a DrlPolicy (core::export_actor_checkpoint does exactly
// that) and any architecture mismatch fails loudly at load time.
#pragma once

#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "policy/policy.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ecthub::policy {

/// Actor network shape; must match the rl::ActorCriticConfig it was trained
/// under for a checkpoint to load.
struct DrlPolicyConfig {
  std::size_t state_dim = 0;
  std::size_t action_count = 3;
  std::size_t trunk_dim = 64;  ///< shared fully connected layer width
  std::size_t head_dim = 32;   ///< hidden width of the actor head
};

/// A serialized actor: shape + nn::save_parameters blob (trunk and actor
/// tensors only — the critic head is training-time baggage).
struct DrlCheckpoint {
  DrlPolicyConfig config;
  std::string blob;

  /// Binary round trip; throws std::runtime_error on I/O or format errors.
  void save(std::ostream& out) const;
  [[nodiscard]] static DrlCheckpoint load(std::istream& in);
};

class DrlPolicy final : public Policy {
 public:
  /// Fresh (randomly initialized) actor — the pre-training starting point.
  DrlPolicy(DrlPolicyConfig cfg, nn::Rng& rng);

  /// Restores a serialized actor; throws std::runtime_error when the blob
  /// does not match the checkpoint's own shape.
  explicit DrlPolicy(const DrlCheckpoint& checkpoint);

  std::size_t decide(std::span<const double> obs) override;
  /// One batched forward pass: (batch x state_dim) -> argmax logits per row.
  /// Bit-identical per row to decide() on that row (the GEMM accumulates
  /// each output element in the same order regardless of batch size).
  void decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions) override;

  [[nodiscard]] std::string name() const override { return "ECT-DRL"; }
  [[nodiscard]] bool stateless() const override { return true; }

  /// Serializes the current weights.
  [[nodiscard]] DrlCheckpoint checkpoint();

  [[nodiscard]] std::vector<nn::Parameter> parameters();
  [[nodiscard]] const DrlPolicyConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] static DrlPolicyConfig validated(DrlPolicyConfig cfg);
  [[nodiscard]] static nn::Rng& init_scratch_rng();
  [[nodiscard]] nn::Matrix forward_logits(const nn::Matrix& states);

  DrlPolicyConfig cfg_;
  nn::Dense trunk_;
  nn::ActivationLayer trunk_act_;
  nn::Mlp actor_;  ///< -> logits
};

}  // namespace ecthub::policy
