// ECT-DRL deployment policy: the trained PPO actor behind the Policy API.
//
// DrlPolicy wraps the actor path of the actor-critic network (shared trunk +
// actor head, paper Fig. 10) and acts greedily (argmax over action logits).
// Its decide_batch() override is the payoff of the unified API: one forward
// pass over a (hubs x state_dim) matrix turns per-hub matrix-vector products
// into matrix-matrix GEMMs across the whole fleet slot.
//
// Every decision path funnels through decide_rows(): a const row-block
// forward whose scratch lives entirely in the caller's workspace (the
// nn layers' inference-only forward_rows paths cache nothing), so several
// worker threads can shard one observation matrix across one shared actor —
// each with its own workspace — and reproduce the full-batch GEMM bit for
// bit.  decide() and decide_batch() are thin wrappers over the same kernel
// using a member workspace.
//
// Weights travel as a DrlCheckpoint — the network shape plus an nn/serialize
// parameter blob.  The parameter names mirror rl::ActorCritic ("ac.trunk",
// "ac.actor.*"), so a checkpoint exported from a trained PPO policy loads
// straight into a DrlPolicy (core::export_actor_checkpoint does exactly
// that) and any architecture mismatch fails loudly at load time.
#pragma once

#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "policy/policy.hpp"

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace ecthub::policy {

/// Actor network shape; must match the rl::ActorCriticConfig it was trained
/// under for a checkpoint to load.
struct DrlPolicyConfig {
  std::size_t state_dim = 0;
  std::size_t action_count = 3;
  std::size_t trunk_dim = 64;  ///< shared fully connected layer width
  std::size_t head_dim = 32;   ///< hidden width of the actor head
};

/// A serialized actor: shape + nn::save_parameters blob (trunk and actor
/// tensors only — the critic head is training-time baggage).
struct DrlCheckpoint {
  DrlPolicyConfig config;
  std::string blob;

  /// Binary round trip; throws std::runtime_error on I/O or format errors.
  void save(std::ostream& out) const;
  [[nodiscard]] static DrlCheckpoint load(std::istream& in);
};

class DrlPolicy final : public Policy {
 public:
  /// Fresh (randomly initialized) actor — the pre-training starting point.
  DrlPolicy(DrlPolicyConfig cfg, nn::Rng& rng);

  /// Restores a serialized actor; throws std::runtime_error when the blob
  /// does not match the checkpoint's own shape.
  explicit DrlPolicy(const DrlCheckpoint& checkpoint);

  std::size_t decide(std::span<const double> obs) override;
  /// One batched forward pass: (batch x state_dim) -> argmax logits per row.
  /// Bit-identical per row to decide() on that row (the GEMM accumulates
  /// each output element in the same order regardless of batch size).
  void decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions) override;
  /// Row-block forward: actions[row_begin, row_end) from the same rows of
  /// `obs`, bit-identical to decide_batch on the whole matrix.  Const and
  /// workspace-confined — disjoint row blocks may run concurrently on one
  /// shared instance (`ws` must come from make_workspace()).
  void decide_rows(const nn::Matrix& obs, std::size_t row_begin, std::size_t row_end,
                   std::span<std::size_t> actions, Workspace& ws) const override;
  [[nodiscard]] std::unique_ptr<Workspace> make_workspace() const override;

  [[nodiscard]] std::string name() const override { return "ECT-DRL"; }
  [[nodiscard]] bool stateless() const override { return true; }

  /// Serializes the current weights.
  [[nodiscard]] DrlCheckpoint checkpoint();

  [[nodiscard]] std::vector<nn::Parameter> parameters();
  [[nodiscard]] const DrlPolicyConfig& config() const noexcept { return cfg_; }

 private:
  /// Reusable forward scratch: the trunk activation block plus one buffer
  /// per actor-head layer.  All call-local state lives here, never in the
  /// layers, which is what makes decide_rows const and thread-safe.
  struct BatchWorkspace final : Workspace {
    nn::Matrix trunk;               ///< row-block x trunk_dim (tanh in place)
    std::vector<nn::Matrix> head;   ///< actor MLP layer outputs
  };

  /// Layer construction needs an RNG even when every weight is about to be
  /// overwritten from a checkpoint blob; this overload lets the restoring
  /// constructor delegate with a policy-local throwaway Rng instead of any
  /// shared scratch state.
  DrlPolicy(DrlPolicyConfig cfg, nn::Rng&& scratch_rng);

  [[nodiscard]] static DrlPolicyConfig validated(DrlPolicyConfig cfg);

  DrlPolicyConfig cfg_;
  nn::Dense trunk_;
  nn::ActivationLayer trunk_act_;
  nn::Mlp actor_;  ///< -> logits
  BatchWorkspace scratch_;  ///< backs the non-const decide/decide_batch wrappers
};

}  // namespace ecthub::policy
