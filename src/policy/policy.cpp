#include "policy/policy.hpp"

#include <stdexcept>
#include <string>

namespace ecthub::policy {

void Policy::decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions) {
  if (actions.size() != obs.rows()) {
    throw std::invalid_argument("Policy::decide_batch: " + std::to_string(obs.rows()) +
                                " observation rows but " + std::to_string(actions.size()) +
                                " action slots");
  }
  const double* data = obs.data().data();
  for (std::size_t i = 0; i < obs.rows(); ++i) {
    actions[i] = decide(std::span<const double>(data + i * obs.cols(), obs.cols()));
  }
}

}  // namespace ecthub::policy
