#include "policy/policy.hpp"

#include <stdexcept>
#include <string>

namespace ecthub::policy {

void Policy::decide_batch(const nn::Matrix& obs, std::span<std::size_t> actions) {
  if (actions.size() != obs.rows()) {
    throw std::invalid_argument("Policy::decide_batch: " + std::to_string(obs.rows()) +
                                " observation rows but " + std::to_string(actions.size()) +
                                " action slots");
  }
  const double* data = obs.data().data();
  for (std::size_t i = 0; i < obs.rows(); ++i) {
    actions[i] = decide(std::span<const double>(data + i * obs.cols(), obs.cols()));
  }
}

std::unique_ptr<Policy::Workspace> Policy::make_workspace() const {
  return std::make_unique<Workspace>();
}

void Policy::decide_rows(const nn::Matrix&, std::size_t, std::size_t,
                         std::span<std::size_t>, Workspace&) const {
  throw std::logic_error("Policy::decide_rows: " + name() +
                         " is stateful (or lacks an override) — row-block batching "
                         "requires a stateless policy");
}

void Policy::check_rows(const nn::Matrix& obs, std::size_t row_begin, std::size_t row_end,
                        std::span<const std::size_t> actions) {
  if (row_begin > row_end || row_end > obs.rows()) {
    throw std::invalid_argument("Policy::decide_rows: bad row range [" +
                                std::to_string(row_begin) + ", " + std::to_string(row_end) +
                                ") for " + std::to_string(obs.rows()) + " rows");
  }
  if (actions.size() != obs.rows()) {
    throw std::invalid_argument("Policy::decide_rows: " + std::to_string(obs.rows()) +
                                " observation rows but " + std::to_string(actions.size()) +
                                " action slots");
  }
}

}  // namespace ecthub::policy
