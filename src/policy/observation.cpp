#include "policy/observation.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace ecthub::policy {

ObservationLayout ObservationLayout::from_dim(std::size_t state_dim) {
  if (state_dim < kChannels + 3 || (state_dim - 3) % kChannels != 0) {
    throw std::invalid_argument("ObservationLayout: no lookback yields state_dim " +
                                std::to_string(state_dim));
  }
  ObservationLayout layout;
  layout.lookback = (state_dim - 3) / kChannels;
  return layout;
}

void ObservationLayout::check(std::span<const double> obs) const {
  if (obs.size() != dim()) {
    throw std::invalid_argument("ObservationLayout: observation has " +
                                std::to_string(obs.size()) + " features, layout expects " +
                                std::to_string(dim()));
  }
}

double ObservationLayout::rtp(std::span<const double> obs) const {
  check(obs);
  return obs[rtp_begin() + lookback - 1] * kPriceScale;
}

double ObservationLayout::srtp(std::span<const double> obs) const {
  check(obs);
  return obs[srtp_begin() + lookback - 1] * kPriceScale;
}

double ObservationLayout::soc(std::span<const double> obs) const {
  check(obs);
  return obs[soc_index()];
}

double ObservationLayout::hour_of_day(std::span<const double> obs) const {
  check(obs);
  const double phase = std::atan2(obs[hour_sin_index()], obs[hour_cos_index()]);
  double hour = phase * 24.0 / (2.0 * std::numbers::pi);
  if (hour < 0.0) hour += 24.0;
  // Snap so hour values that were exact on the grid survive the sin/cos
  // round trip exactly (atan2 is accurate to ~1 ulp, far inside 1e-7 h).
  hour = std::round(hour * 1e7) / 1e7;
  return hour >= 24.0 ? hour - 24.0 : hour;
}

}  // namespace ecthub::policy
