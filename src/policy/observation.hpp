// The observation contract between EctHubEnv and the Policy layer.
//
// Every decision interface in the system — rule-based heuristics, the
// ECT-DRL actor, and the lockstep fleet batcher — consumes the same flat
// feature vector the RL environment emits (paper Eq. 24):
//
//   [ RTP window | GHI window | wind window | traffic window | SRTP window |
//     SoC | sin(hour) | cos(hour) ]
//
// Each window holds `lookback` slots ordered oldest -> newest, normalized by
// the channel scale below; the battery SoC is a fraction and the hour of day
// is phase-encoded.  ObservationLayout is the single source of truth for
// that encoding: EctHubEnv::observe() writes through it and the policies
// read through it, so the two sides cannot drift apart silently.
#pragma once

#include <cstddef>
#include <span>

namespace ecthub::policy {

struct ObservationLayout {
  /// Slots of history per feature channel (HubEnvConfig::lookback).
  std::size_t lookback = 6;

  /// Feature channels carrying a lookback window, in vector order.
  static constexpr std::size_t kChannels = 5;  // RTP, GHI, wind, traffic, SRTP

  // Normalization scales: keep every channel roughly in [0, 2].
  static constexpr double kPriceScale = 100.0;  ///< $/MWh (RTP and SRTP)
  static constexpr double kGhiScale = 1000.0;   ///< W/m^2
  static constexpr double kWindScale = 25.0;    ///< m/s

  [[nodiscard]] std::size_t dim() const noexcept { return kChannels * lookback + 3; }

  /// Inverts dim(): the layout whose dim() equals `state_dim`.  Throws
  /// std::invalid_argument when no lookback produces that dimension.
  [[nodiscard]] static ObservationLayout from_dim(std::size_t state_dim);

  // ---- channel offsets (each window spans [offset, offset + lookback)) ----
  [[nodiscard]] std::size_t rtp_begin() const noexcept { return 0; }
  [[nodiscard]] std::size_t ghi_begin() const noexcept { return lookback; }
  [[nodiscard]] std::size_t wind_begin() const noexcept { return 2 * lookback; }
  [[nodiscard]] std::size_t traffic_begin() const noexcept { return 3 * lookback; }
  [[nodiscard]] std::size_t srtp_begin() const noexcept { return 4 * lookback; }
  [[nodiscard]] std::size_t soc_index() const noexcept { return kChannels * lookback; }
  [[nodiscard]] std::size_t hour_sin_index() const noexcept { return soc_index() + 1; }
  [[nodiscard]] std::size_t hour_cos_index() const noexcept { return soc_index() + 2; }

  // ---- decoded accessors (validate the observation size) -----------------

  /// Current (newest-slot) real-time price in $/MWh.
  [[nodiscard]] double rtp(std::span<const double> obs) const;
  /// Current selling price in $/MWh.
  [[nodiscard]] double srtp(std::span<const double> obs) const;
  /// Battery state of charge as a fraction in [0, 1].
  [[nodiscard]] double soc(std::span<const double> obs) const;
  /// Hour of day in [0, 24) recovered from the phase encoding; snapped to
  /// 1e-7 h so slot-aligned hours come back exact despite the trig round
  /// trip.
  [[nodiscard]] double hour_of_day(std::span<const double> obs) const;

  /// Throws std::invalid_argument when obs.size() != dim().
  void check(std::span<const double> obs) const;
};

}  // namespace ecthub::policy
