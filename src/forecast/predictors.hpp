// Lightweight online forecasters for prices, traffic and generation.
//
// The paper notes network traffic is "a good indicator for predicting
// electricity costs" and that renewable output is "hard to predict in
// advance"; these predictors quantify both claims and power the
// forecast-based policy (policy/rule_policies.hpp), an interpretable
// middle ground between the TOU rule and ECT-DRL.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace ecthub::forecast {

/// Exponential moving average: level-only smoothing.
class EmaPredictor {
 public:
  explicit EmaPredictor(double alpha);

  void observe(double value);
  [[nodiscard]] double predict() const noexcept { return level_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

 private:
  double alpha_;
  double level_ = 0.0;
  bool primed_ = false;
};

/// Seasonal-naive with EMA-smoothed seasonal slots: the forecast for hour h
/// is the smoothed history of past values at hour h.  The right baseline for
/// strongly diurnal series (prices, traffic, PV).
class SeasonalNaivePredictor {
 public:
  /// @param period number of slots per season (24 for hourly/diurnal)
  /// @param alpha  smoothing factor per seasonal slot
  SeasonalNaivePredictor(std::size_t period, double alpha = 0.3);

  /// Feeds the value observed at slot index `t` (slot-of-season = t % period).
  void observe(std::size_t t, double value);

  /// Forecast for slot index `t`; falls back to the global mean until the
  /// seasonal slot has been seen.
  [[nodiscard]] double predict(std::size_t t) const;

  [[nodiscard]] std::size_t period() const noexcept { return period_; }

 private:
  std::size_t period_;
  double alpha_;
  std::vector<double> seasonal_;
  std::vector<bool> seen_;
  double global_mean_ = 0.0;
  std::size_t count_ = 0;
};

/// AR(1) fit by online least squares: x_{t+1} ~ c + phi x_t.
class Ar1Predictor {
 public:
  void observe(double value);
  [[nodiscard]] double predict() const;
  /// k-step-ahead forecast (geometric reversion to the implied mean).
  [[nodiscard]] double predict_ahead(std::size_t k) const;
  [[nodiscard]] double phi() const;

 private:
  double prev_ = 0.0;
  bool has_prev_ = false;
  // Online sums for least squares over (x_t, x_{t+1}) pairs.
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0;
  std::size_t n_ = 0;
};

/// Mean absolute error of a forecaster replayed over a series (utility for
/// the volatility analysis and tests).
template <typename Predictor>
double replay_mae_seasonal(Predictor& p, const std::vector<double>& series) {
  double abs_err = 0.0;
  std::size_t scored = 0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    if (t >= p.period()) {
      abs_err += std::abs(p.predict(t) - series[t]);
      ++scored;
    }
    p.observe(t, series[t]);
  }
  return scored == 0 ? 0.0 : abs_err / static_cast<double>(scored);
}

}  // namespace ecthub::forecast
