#include "forecast/predictors.hpp"

#include <cmath>
#include <stdexcept>

namespace ecthub::forecast {

EmaPredictor::EmaPredictor(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("EmaPredictor: alpha out of (0, 1]");
}

void EmaPredictor::observe(double value) {
  if (!primed_) {
    level_ = value;
    primed_ = true;
    return;
  }
  level_ += alpha_ * (value - level_);
}

SeasonalNaivePredictor::SeasonalNaivePredictor(std::size_t period, double alpha)
    : period_(period), alpha_(alpha), seasonal_(period, 0.0), seen_(period, false) {
  if (period == 0) throw std::invalid_argument("SeasonalNaivePredictor: period == 0");
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("SeasonalNaivePredictor: alpha out of (0, 1]");
  }
}

void SeasonalNaivePredictor::observe(std::size_t t, double value) {
  const std::size_t slot = t % period_;
  if (!seen_[slot]) {
    seasonal_[slot] = value;
    seen_[slot] = true;
  } else {
    seasonal_[slot] += alpha_ * (value - seasonal_[slot]);
  }
  global_mean_ += (value - global_mean_) / static_cast<double>(++count_);
}

double SeasonalNaivePredictor::predict(std::size_t t) const {
  const std::size_t slot = t % period_;
  return seen_[slot] ? seasonal_[slot] : global_mean_;
}

void Ar1Predictor::observe(double value) {
  if (has_prev_) {
    sx_ += prev_;
    sy_ += value;
    sxx_ += prev_ * prev_;
    sxy_ += prev_ * value;
    ++n_;
  }
  prev_ = value;
  has_prev_ = true;
}

double Ar1Predictor::phi() const {
  if (n_ < 2) return 0.0;
  const double dn = static_cast<double>(n_);
  const double denom = sxx_ - sx_ * sx_ / dn;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (sxy_ - sx_ * sy_ / dn) / denom;
}

double Ar1Predictor::predict() const { return predict_ahead(1); }

double Ar1Predictor::predict_ahead(std::size_t k) const {
  if (!has_prev_ || n_ < 2) return prev_;
  const double dn = static_cast<double>(n_);
  const double p = phi();
  const double c = (sy_ - p * sx_) / dn;
  const double mean = std::abs(1.0 - p) < 1e-9 ? prev_ : c / (1.0 - p);
  double x = prev_;
  for (std::size_t i = 0; i < k; ++i) x = c + p * x;
  (void)mean;
  return x;
}

}  // namespace ecthub::forecast
