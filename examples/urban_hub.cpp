// Urban scenario: rooftop-PV hub with dense EV demand.  Trains a small
// ECT-DRL (PPO) scheduler and compares it against the rule-based baselines —
// the workload the paper's urban deployment (Fig. 6, left) motivates.
//
//   $ ./urban_hub [--train-iters 8] [--episodes 4]
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "core/policy_runner.hpp"
#include "policy/rule_policies.hpp"

#include <iostream>
#include <memory>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto train_iters = static_cast<std::size_t>(flags.get_int("train-iters", 60));
  const auto episodes = static_cast<std::size_t>(flags.get_int("episodes", 4));
  flags.check_unknown();

  core::HubConfig hub = core::HubConfig::urban("UrbanHub", 11);
  hub.ev_popularity = 0.95;  // busy downtown station

  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 14;
  env_cfg.discount_by_hour.assign(24, false);
  for (std::size_t h = 18; h < 24; ++h) env_cfg.discount_by_hour[h] = true;

  std::cout << "=== Urban hub: PPO vs rule-based schedulers ===\n";
  TextTable table({"Scheduler", "mean episode profit ($)"});

  std::vector<std::unique_ptr<policy::Policy>> rule_based;
  rule_based.push_back(std::make_unique<policy::NoBatteryPolicy>());
  rule_based.push_back(std::make_unique<policy::TouPolicy>());
  rule_based.push_back(std::make_unique<policy::GreedyPricePolicy>());
  for (auto& s : rule_based) {
    core::EctHubEnv env(hub, env_cfg);
    table.begin_row().add(s->name()).add_double(
        stats::mean(core::run_policy(env, *s, episodes)), 2);
  }

  core::DrlExperimentConfig drl;
  drl.env = env_cfg;
  drl.train_iterations = train_iters;
  drl.test_episodes = episodes;
  std::cout << "training PPO for " << train_iters << " iterations...\n";
  const auto result =
      core::run_hub_experiment(hub, env_cfg.discount_by_hour, drl, "ECT-DRL");
  table.begin_row().add("ECT-DRL (PPO)").add_double(
      result.avg_daily_reward * static_cast<double>(env_cfg.episode_days), 2);

  table.print(std::cout);
  std::cout << "\nPPO training curve (mean episode reward per iteration):";
  for (double r : result.train_curve) std::cout << " " << r;
  std::cout << "\n";
  return 0;
}
