// Quickstart: build one ECT-Hub, run a 7-day episode with a simple
// price-arbitrage policy, and print the profit breakdown.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: configure a hub,
// construct its environment, drive it with a policy through the shared
// observation vector, read the ledger.
#include "core/hub_config.hpp"
#include "core/hub_env.hpp"
#include "policy/rule_policies.hpp"

#include <iostream>
#include <utility>
#include <vector>

int main() {
  using namespace ecthub;

  // 1. Configure a hub: an urban base station with rooftop PV, a backup
  //    battery pack, and a 2-plug charging station.
  core::HubConfig hub = core::HubConfig::urban("DemoHub", /*seed=*/2024);

  // 2. Build the episodic environment.  Give evening discounts (the pattern
  //    ECT-Price discovers) so the charging station attracts EVs.
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 7;
  env_cfg.discount_by_hour.assign(24, false);
  for (std::size_t h = 19; h < 23; ++h) env_cfg.discount_by_hour[h] = true;
  core::EctHubEnv env(hub, env_cfg);

  // 3. Run one week under the greedy price-arbitrage policy.  Policies never
  //    see the environment — they read the observation vector each step.
  policy::GreedyPricePolicy scheduler(env.observation_layout());
  std::vector<double> state = env.reset();
  scheduler.begin_episode();
  bool done = false;
  while (!done) {
    rl::StepResult r = env.step(scheduler.decide(state));
    state = std::move(r.next_state);
    done = r.done;
  }

  // 4. Read the books.
  const core::ProfitLedger& ledger = env.ledger();
  std::cout << "=== DemoHub, one week ===\n";
  std::cout << "EV charging revenue : $" << ledger.total_revenue() << "\n";
  std::cout << "Grid energy cost    : $" << ledger.total_grid_cost() << "\n";
  std::cout << "Battery wear cost   : $" << ledger.total_bp_cost() << "\n";
  std::cout << "Total profit        : $" << ledger.total_profit() << "\n\n";
  std::cout << "Daily profit:";
  for (double d : ledger.daily_profit()) std::cout << " " << d;
  std::cout << "\nBattery SoC at end  : " << env.soc_frac() * 100.0 << "%\n";
  return 0;
}
