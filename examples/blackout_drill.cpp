// Blackout drill: validates the Eq. 6 reserve sizing by failure injection.
// Sizes the SoC floor for a target recovery time, then bombards the hub with
// random grid outages and reports the survival rate at different floors —
// the resilience/profit tradeoff an ECT-Hub operator has to pick.
//
//   $ ./blackout_drill [--trials 500] [--recovery-hours 4]
#include "battery/reserve.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/blackout.hpp"
#include "core/hub_config.hpp"
#include "power/base_station.hpp"
#include "traffic/generator.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto trials = static_cast<std::size_t>(flags.get_int("trials", 500));
  const double recovery_h = flags.get_double("recovery-hours", 4.0);
  flags.check_unknown();

  // A representative two-week BS load trace.
  const core::HubConfig hub = core::HubConfig::urban("DrillHub", 99);
  const TimeGrid grid(14, 24);
  traffic::TrafficGenerator tgen(hub.traffic, Rng(100));
  const power::BaseStation bs(hub.bs);
  const auto bs_kw = bs.series(tgen.generate(grid).load_rate);

  // Outages of 1-8 hours, about twice a month.
  core::OutageModel outages;
  outages.rate_per_month = 2.0;
  outages.min_duration_h = 1.0;
  outages.max_duration_h = 8.0;

  std::cout << "=== Blackout drill: reserve sizing vs outage survival ===\n";
  const auto recovery_slots = static_cast<std::size_t>(recovery_h);
  const double sized_reserve =
      battery::reserve_energy_worst_window(bs_kw, recovery_slots, grid.slot_hours());
  std::cout << "Eq. 6 reserve for T_r = " << recovery_h << " h: " << sized_reserve
            << " kWh (worst BS window)\n\n";

  TextTable table({"SoC floor (kWh)", "survival rate", "mean hours carried"});
  const double hard_min = hub.battery.soc_min_frac * hub.battery.capacity_kwh;
  for (const double floor_kwh :
       {hard_min + 2.0, hard_min + 8.0,
        sized_reserve / hub.battery.discharge_efficiency + hard_min,
        0.5 * hub.battery.capacity_kwh}) {
    const auto stats = core::outage_survival(hub.battery, floor_kwh, bs_kw, outages,
                                             grid.slot_hours(), trials, Rng(101));
    table.begin_row()
        .add_double(floor_kwh, 1)
        .add_double(stats.survival_rate * 100.0, 1)
        .add_double(stats.mean_slots_survived * grid.slot_hours(), 1);
  }
  table.print(std::cout);
  std::cout << "\nThe floor sized by Eq. 6 for " << recovery_h
            << " h covers all outages up to that length; longer storms need a\n"
               "deeper (and less profitable) reserve — the tradeoff the ablation\n"
               "bench quantifies on the profit side.\n";
  return 0;
}
