// City sweep: the multi-hub simulation engine end to end.
//
// Instantiates a fleet of hubs across the registered scenarios (all six
// built-ins by default), runs every hub's episodes across a thread pool with
// per-hub deterministic seeding, and prints the per-hub detail plus the
// per-scenario and per-scheduler aggregate tables.
//
//   $ ./city_sweep                                  # 6 scenarios x 2 hubs
//   $ ./city_sweep --hubs-per-scenario 8 --threads 8 --scheduler forecast
//   $ ./city_sweep --scenarios urban,price-spike --days 7 --episodes 2
//   $ ./city_sweep --list                           # show the registry
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();

  if (flags.get_bool("list")) {
    TextTable table({"scenario", "summary"});
    for (const std::string& key : registry.keys()) {
      table.begin_row().add(key).add(registry.at(key).summary);
    }
    table.print(std::cout);
    return 0;
  }

  const auto require_positive = [&](const char* name, std::int64_t def) {
    const std::int64_t v = flags.get_int(name, def);
    if (v <= 0) {
      std::cerr << "city_sweep: --" << name << " must be >= 1\n";
      std::exit(1);
    }
    return static_cast<std::size_t>(v);
  };
  const std::size_t hubs_per_scenario = require_positive("hubs-per-scenario", 2);
  const std::size_t days = require_positive("days", 7);
  const std::size_t episodes = require_positive("episodes", 1);
  const auto threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, flags.get_int("threads", 0)));  // 0 = hardware concurrency
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 7));
  const sim::SchedulerKind scheduler =
      sim::scheduler_kind_from_string(flags.get_string("scheduler", "tou"));

  std::vector<std::string> scenario_keys = registry.keys();
  if (flags.has("scenarios")) scenario_keys = split_csv(flags.get_string("scenarios", ""));
  if (scenario_keys.empty()) {
    std::cerr << "city_sweep: --scenarios selected no scenarios\n";
    return 1;
  }

  // One job per (scenario, replica), grouped by scenario: hub ids are
  // assigned by job order, and the runner derives every hub's seed from
  // (base_seed, hub_id).
  std::vector<std::string> expanded;
  expanded.reserve(scenario_keys.size() * hubs_per_scenario);
  for (const std::string& key : scenario_keys) {
    expanded.insert(expanded.end(), hubs_per_scenario, key);
  }
  const std::vector<sim::FleetJob> jobs =
      sim::make_fleet_jobs(registry, expanded, expanded.size(), days, scheduler);

  sim::FleetRunnerConfig runner_cfg;
  runner_cfg.base_seed = base_seed;
  runner_cfg.threads = threads;
  runner_cfg.episodes_per_hub = episodes;
  const sim::FleetRunner runner(runner_cfg);

  std::cout << "=== City sweep: " << jobs.size() << " hubs, " << scenario_keys.size()
            << " scenarios, " << episodes << " episode(s) x " << days
            << " day(s), scheduler=" << sim::to_string(scheduler) << " ===\n\n";
  const std::vector<sim::HubRunResult> results = runner.run(jobs);

  sim::per_hub_table(results).print(std::cout);
  std::cout << "\n--- Aggregate by scenario ---\n";
  const sim::AggregateReport report(results);
  report.scenario_table().print(std::cout);
  std::cout << "\n--- Aggregate by scheduler ---\n";
  report.scheduler_table().print(std::cout);
  return 0;
}
