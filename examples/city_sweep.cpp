// City sweep: the multi-hub simulation engine end to end.
//
// Instantiates a fleet of hubs across the registered scenarios (all six
// built-ins by default), runs every hub's episodes with per-hub
// deterministic seeding, and prints the per-hub detail plus the
// per-scenario and per-scheduler aggregate tables.
//
// Any scheduler kind can drive the fleet, including the trained ECT-DRL
// actor: with --scheduler drl (or all) a small PPO run trains in process —
// or a checkpoint loads from disk — and the fleet deploys that one actor
// across every hub.  --scheduler all sweeps every kind over the *same*
// hubs and seeds, so the per-scheduler table is a fair Table III-style
// comparison; --lockstep switches to slot-synchronous execution with one
// batched policy call per fleet slot.
//
//   $ ./city_sweep                                  # 6 scenarios x 2 hubs
//   $ ./city_sweep --hubs-per-scenario 8 --threads 8 --scheduler forecast
//   $ ./city_sweep --scenarios urban,price-spike --days 7 --episodes 2
//   $ ./city_sweep --scheduler all --lockstep       # 5 heuristics + ECT-DRL
//   $ ./city_sweep --scheduler drl --lockstep --lockstep-threads 8
//   $ ./city_sweep --scheduler drl --lockstep-threads 8 --lockstep-gemm coordinator
//   $ ./city_sweep --scheduler drl --drl-checkpoint actor.ckpt --drl-iters 8
//   $ ./city_sweep --scheduler drl --drl-hubs 8 --drl-threads 4
//   $ ./city_sweep --drl-zoo --drl-hubs 2           # specialist vs generalist
//   $ ./city_sweep --metro 16 --scheduler all       # coupled metro fleet
//   $ ./city_sweep --shard 0/4 --shard-out s0.ecsh  # worker: run shard 0 of 4
//   $ ./city_sweep --merge-shards 's*.ecsh'         # merge shard files
//   $ ./city_sweep --shard-fork 4 --shard-verify    # fork 4 workers + check
//   $ ./city_sweep --list                           # show the registry
//
// --drl-hubs N trains on N lockstep replica lanes of the training hub (the
// vectorized PPO collector) and --drl-threads T shards collection across T
// crew members (0 = hardware concurrency).  The trained weights are
// bit-identical at any T, so the flag is purely a throughput choice.
//
// --drl-zoo trains the per-scenario actor zoo instead of sweeping: one PPO
// specialist per selected scenario plus one generalist trained across all of
// them, then deploys both on a fresh evaluation fleet per scenario and
// prints the specialist-vs-generalist profit table.
//
// --lockstep-threads N shards the lockstep env-stepping phases across N
// workers (0 = hardware concurrency) and implies --lockstep; results are
// bit-identical at any thread count.  --lockstep-gemm worker|coordinator
// (default worker) picks where the per-slot batched inference runs: sharded
// across the worker crew as row-block GEMMs, or as the single coordinator
// GEMM — also bit-identical, so the flag is purely a performance choice.
//
// Sharded sweeps ("fleet of fleets"): --shard i/n runs only the contiguous
// job range shard i of n owns — with the hubs' *global* ids and seeds, so
// shard membership cannot change any trajectory — and writes one shard file
// (--shard-out).  --merge-shards <glob> folds shard files back into the
// aggregate tables; --shard-fork N does both in one invocation through N
// forked worker processes.  The merged report is byte-identical in
// serialized form to the single-process run of the same seed
// (--shard-verify pins it on the spot; exits non-zero on violation).
// Sharding needs a single --scheduler (not 'all') and an uncoupled fleet
// (no --metro): the CouplingBus exchange spans the whole fleet every slot.
//
// --metro N replaces the i.i.d. hub bag with a spatially generated metro of
// N hubs (MetroMap seeded from --base-seed): sites derive from base-station
// density on a synthetic road network, demand spills between road-graph
// neighbors at every slot barrier, and weather/outage fronts are correlated
// across the metro.  Coupled fleets are lockstep-only, so --metro implies
// --lockstep; results stay bit-identical at any --lockstep-threads.
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "sim/drl_zoo.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/metro.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "sim/shard.hpp"
#include "sim/shard_driver.hpp"
#include "sim/shard_io.hpp"
#include "spatial/metro.hpp"

#include <glob.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Loads the checkpoint from `path` when it exists; otherwise trains a fresh
// actor on the first scenario's hub and (when a path was given) saves it.
std::shared_ptr<const ecthub::policy::DrlCheckpoint> obtain_drl_checkpoint(
    const ecthub::sim::ScenarioRegistry& registry, const std::string& scenario_key,
    std::size_t days, std::size_t iterations, std::size_t train_hubs,
    std::size_t collector_threads, std::uint64_t base_seed, const std::string& path) {
  using namespace ecthub;
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::cout << "loading ECT-DRL checkpoint from " << path << "\n";
      return std::make_shared<policy::DrlCheckpoint>(policy::DrlCheckpoint::load(in));
    }
  }
  const sim::Scenario& scenario = registry.at(scenario_key);
  core::DrlFleetTrainConfig train_cfg;
  train_cfg.env = scenario.env;
  train_cfg.env.episode_days = days;
  train_cfg.iterations = iterations;
  train_cfg.train_hubs = train_hubs;
  train_cfg.collector_threads = collector_threads;
  train_cfg.seed = sim::mix_seed(base_seed, 0x5eedULL);
  const core::HubConfig train_hub =
      scenario.make_hub(scenario_key + "-drl-train", train_cfg.seed);
  std::cout << "training ECT-DRL in process: " << iterations << " PPO iteration(s) on '"
            << scenario_key << "' (" << train_hubs << " lockstep lane(s), " << days
            << " day episodes)...\n";
  auto ckpt = std::make_shared<policy::DrlCheckpoint>(
      core::train_drl_checkpoint(train_hub, train_cfg));
  if (!path.empty()) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "city_sweep: cannot write --drl-checkpoint '" << path
                << "'; continuing without saving\n";
    } else {
      ckpt->save(out);
      std::cout << "saved checkpoint to " << path << "\n";
    }
  }
  return ckpt;
}

// Parses "i/n" (e.g. "0/4") into shard coordinates via the strict
// sim::parse_shard_spec (full-token digits, exactly one '/'); exits on
// nonsense like "1/4abc" or "0x1/4" instead of silently truncating.
std::pair<std::size_t, std::size_t> parse_shard_spec(const std::string& spec) {
  try {
    return ecthub::sim::parse_shard_spec(spec);
  } catch (const std::invalid_argument& e) {
    std::cerr << "city_sweep: --shard " << e.what() << "\n";
    std::exit(1);
  }
}

std::vector<std::filesystem::path> expand_glob(const std::string& pattern) {
  ::glob_t matches{};
  const int rc = ::glob(pattern.c_str(), 0, nullptr, &matches);
  std::vector<std::filesystem::path> paths;
  if (rc == 0) {
    paths.assign(matches.gl_pathv, matches.gl_pathv + matches.gl_pathc);
  }
  ::globfree(&matches);
  if (rc != 0 && rc != GLOB_NOMATCH) {
    std::cerr << "city_sweep: glob('" << pattern << "') failed\n";
    std::exit(1);
  }
  return paths;
}

void print_fleet_report(const std::vector<ecthub::sim::HubRunResult>& results,
                        const ecthub::sim::AggregateReport& report) {
  ecthub::sim::per_hub_table(results).print(std::cout);
  std::cout << "\n--- Aggregate by scenario ---\n";
  report.scenario_table().print(std::cout);
  std::cout << "\n--- Aggregate by scheduler ---\n";
  report.scheduler_table().print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();
  const bool list_mode = flags.get_bool("list");

  const auto require_positive = [&](const char* name, std::int64_t def) {
    const std::int64_t v = flags.get_int(name, def);
    if (v <= 0) {
      std::cerr << "city_sweep: --" << name << " must be >= 1\n";
      std::exit(1);
    }
    return static_cast<std::size_t>(v);
  };
  const std::size_t hubs_per_scenario = require_positive("hubs-per-scenario", 2);
  const std::size_t days = require_positive("days", 7);
  const std::size_t episodes = require_positive("episodes", 1);
  const std::size_t drl_iters = require_positive("drl-iters", 4);
  const std::size_t drl_hubs = require_positive("drl-hubs", 1);
  const auto drl_threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, flags.get_int("drl-threads", 1)));  // 0 = hardware concurrency
  const auto threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, flags.get_int("threads", 0)));  // 0 = hardware concurrency
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 7));
  const bool metro_mode = flags.has("metro");
  const std::size_t metro_hubs = metro_mode ? require_positive("metro", 0) : 0;
  if (metro_mode && metro_hubs < 2) {
    std::cerr << "city_sweep: --metro needs at least 2 hubs\n";
    return 1;
  }
  // An explicit --lockstep-threads would be silently ignored by the per-hub
  // path, so it implies --lockstep; a coupled metro *requires* lockstep.
  const bool lockstep = flags.get_bool("lockstep") || flags.has("lockstep-threads") ||
                        flags.has("lockstep-gemm") || metro_mode;
  const auto lockstep_threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, flags.get_int("lockstep-threads", 1)));  // 0 = hardware concurrency
  sim::LockstepGemm lockstep_gemm = sim::LockstepGemm::kWorker;
  try {
    lockstep_gemm =
        sim::lockstep_gemm_from_string(flags.get_string("lockstep-gemm", "worker"));
  } catch (const std::invalid_argument& e) {
    std::cerr << "city_sweep: " << e.what() << "\n";
    return 1;
  }

  const std::string scheduler_arg = flags.get_string("scheduler", "tou");
  std::vector<sim::SchedulerKind> kinds;
  if (scheduler_arg == "all") {
    kinds = sim::all_scheduler_kinds();
  } else {
    kinds.push_back(sim::scheduler_kind_from_string(scheduler_arg));
  }

  std::vector<std::string> scenario_keys = registry.keys();
  if (flags.has("scenarios")) scenario_keys = split_csv(flags.get_string("scenarios", ""));
  if (scenario_keys.empty()) {
    std::cerr << "city_sweep: --scenarios selected no scenarios\n";
    return 1;
  }

  // The late paths' flags, hoisted so every read precedes check_unknown():
  // a typo'd flag fails loudly up front instead of silently running defaults.
  const bool merge_mode = flags.has("merge-shards");
  const std::string merge_pattern = flags.get_string("merge-shards", "");
  const bool zoo_mode = flags.get_bool("drl-zoo");
  const std::string checkpoint_path = flags.get_string("drl-checkpoint", "");
  const bool shard_run = flags.has("shard");
  const std::string shard_spec_arg = flags.get_string("shard", "");
  const std::string shard_out = flags.get_string("shard-out", "");
  const bool shard_fork = flags.has("shard-fork");
  const std::size_t shard_fork_count = require_positive("shard-fork", 2);
  const std::string shard_dir_arg = flags.get_string("shard-dir", "");
  const bool shard_verify = flags.get_bool("shard-verify");
  flags.check_unknown();

  if (list_mode) {
    TextTable table({"scenario", "summary"});
    for (const std::string& key : registry.keys()) {
      table.begin_row().add(key).add(registry.at(key).summary);
    }
    table.print(std::cout);
    return 0;
  }

  // Merge pre-existing shard files (possibly produced on other machines):
  // pure aggregation, no simulation runs here.
  if (merge_mode) {
    const std::string& pattern = merge_pattern;
    const std::vector<std::filesystem::path> paths = expand_glob(pattern);
    if (paths.empty()) {
      std::cerr << "city_sweep: --merge-shards '" << pattern
                << "' matched no shard files\n";
      return 1;
    }
    try {
      const sim::ShardMerge merged = sim::ShardDriver::merge_shard_files(paths);
      std::cout << "=== Merged " << paths.size() << " shard file(s): "
                << merged.results.size() << " hubs ===\n\n";
      print_fleet_report(merged.results, merged.report);
    } catch (const std::exception& e) {
      std::cerr << "city_sweep: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (zoo_mode) {
    sim::ZooTrainConfig zoo_cfg;
    zoo_cfg.episode_days = days;
    zoo_cfg.iterations = drl_iters;
    zoo_cfg.train_hubs = drl_hubs;
    zoo_cfg.collector_threads = drl_threads;
    zoo_cfg.seed = sim::mix_seed(base_seed, 0x5eedULL);
    std::cout << "=== Actor zoo: " << scenario_keys.size() << " scenario(s), "
              << drl_iters << " PPO iteration(s), " << drl_hubs
              << " lane(s) per specialist ===\n";
    const sim::ActorZoo zoo = sim::train_actor_zoo(registry, scenario_keys, zoo_cfg);

    sim::FleetRunnerConfig eval_cfg;
    eval_cfg.base_seed = base_seed;
    eval_cfg.threads = threads;
    eval_cfg.episodes_per_hub = episodes;
    const sim::FleetRunner eval_runner(eval_cfg);

    // Deploy both actors on the *same* fresh evaluation fleet per scenario
    // (identical hubs, seeds and episodes) so the edge column is fair.
    const auto profit_per_hub_day =
        [&](const std::string& key, const policy::DrlCheckpoint& ckpt) {
          const std::vector<std::string> expanded(hubs_per_scenario, key);
          const auto ckpt_ptr = std::make_shared<policy::DrlCheckpoint>(ckpt);
          const std::vector<sim::FleetJob> jobs =
              sim::make_fleet_jobs(registry, expanded, expanded.size(), days,
                                   sim::SchedulerKind::kDrl, ckpt_ptr);
          double profit = 0.0;
          for (const sim::HubRunResult& r : eval_runner.run(jobs)) profit += r.profit;
          return profit / static_cast<double>(hubs_per_scenario * episodes * days);
        };

    TextTable table({"scenario", "specialist $/hub-day", "generalist $/hub-day",
                     "specialist edge"});
    for (const std::string& key : zoo.keys) {
      const double spec = profit_per_hub_day(key, zoo.specialists.at(key));
      const double gen = profit_per_hub_day(key, zoo.generalist);
      const double denom = std::abs(gen) > 1e-9 ? std::abs(gen) : 1.0;
      std::ostringstream edge;
      edge.setf(std::ios::fixed);
      edge.precision(1);
      edge << ((spec - gen) / denom * 100.0) << " %";
      table.begin_row().add(key).add_double(spec).add_double(gen).add(edge.str());
    }
    std::cout << "\n--- Specialist vs generalist ("
              << hubs_per_scenario << " eval hub(s)/scenario, " << episodes
              << " episode(s) x " << days << " day(s)) ---\n";
    table.print(std::cout);
    return 0;
  }

  // The trained actor deployed fleet-wide whenever a kDrl sweep runs.
  std::shared_ptr<const policy::DrlCheckpoint> checkpoint;
  if (std::find(kinds.begin(), kinds.end(), sim::SchedulerKind::kDrl) != kinds.end()) {
    checkpoint = obtain_drl_checkpoint(registry, scenario_keys.front(), days, drl_iters,
                                       drl_hubs, drl_threads, base_seed,
                                       checkpoint_path);
  }

  // One job per (scenario, replica), grouped by scenario: hub ids are
  // assigned by job order, and the runner derives every hub's seed from
  // (base_seed, hub_id).  Each scheduler kind sweeps the *same* job list —
  // identical hubs, seeds and episodes — so kinds are directly comparable.
  std::vector<std::string> expanded;
  expanded.reserve(scenario_keys.size() * hubs_per_scenario);
  for (const std::string& key : scenario_keys) {
    expanded.insert(expanded.end(), hubs_per_scenario, key);
  }

  // Metro mode: a spatially generated coupled fleet instead of the i.i.d.
  // bag.  The map is a pure function of (config, base_seed), so reruns are
  // bit-reproducible, and every scheduler kind sweeps the same metro.
  std::optional<spatial::MetroMap> metro;
  if (metro_mode) {
    spatial::MetroConfig metro_cfg;
    metro_cfg.num_hubs = metro_hubs;
    metro_cfg.neighbors_per_hub = std::min<std::size_t>(3, metro_hubs - 1);
    metro.emplace(metro_cfg, base_seed);
  }

  sim::FleetRunnerConfig runner_cfg;
  runner_cfg.base_seed = base_seed;
  runner_cfg.threads = threads;
  runner_cfg.lockstep_threads = lockstep_threads;
  runner_cfg.lockstep_gemm = lockstep_gemm;
  runner_cfg.episodes_per_hub = episodes;
  const sim::FleetRunner runner(runner_cfg);

  // ---- sharded execution ("fleet of fleets") ------------------------------
  if (shard_run || shard_fork) {
    if (metro_mode) {
      std::cerr << "city_sweep: --shard/--shard-fork cannot split a coupled metro "
                   "fleet (the CouplingBus exchange spans every hub each slot)\n";
      return 1;
    }
    if (kinds.size() != 1) {
      std::cerr << "city_sweep: --shard/--shard-fork need a single --scheduler, "
                   "not 'all'\n";
      return 1;
    }
    const std::vector<sim::FleetJob> jobs = sim::make_fleet_jobs(
        registry, expanded, expanded.size(), days, kinds.front(), checkpoint);
    const sim::ShardDriver driver(runner_cfg);
    try {
      if (shard_run) {
        const auto [shard_index, shard_count] = parse_shard_spec(shard_spec_arg);
        const std::string& out_path = shard_out;
        if (out_path.empty()) {
          std::cerr << "city_sweep: --shard requires --shard-out <path>\n";
          return 1;
        }
        const sim::ShardData shard = driver.run_shard(jobs, shard_index, shard_count);
        sim::save_shard(out_path, shard);
        std::cout << "shard " << shard_index << "/" << shard_count << ": hubs ["
                  << shard.plan.begin << ", " << shard.plan.end << ") of "
                  << shard.plan.job_count << " -> " << out_path << "\n";
        return 0;
      }
      // --shard-fork N: the whole sweep through N forked workers, one shard
      // file per child under --shard-dir (a fresh temp directory without it).
      const std::size_t shard_count = shard_fork_count;
      std::filesystem::path dir = shard_dir_arg;
      if (dir.empty()) {
        std::string tmpl =
            (std::filesystem::temp_directory_path() / "city_sweep_shards.XXXXXX")
                .string();
        if (::mkdtemp(tmpl.data()) == nullptr) {
          std::cerr << "city_sweep: cannot create a shard directory\n";
          return 1;
        }
        dir = tmpl;
      } else {
        std::filesystem::create_directories(dir);
      }
      std::cout << "=== City sweep: " << jobs.size() << " hubs sharded "
                << shard_count << "-way across forked workers (shard files in "
                << dir.string() << ") ===\n\n";
      const sim::ShardMerge merged = driver.run_forked(jobs, shard_count, dir);
      print_fleet_report(merged.results, merged.report);
      if (shard_verify) {
        // The guarantee, checked on the spot: the merged report (and every
        // per-hub result) is bit-identical to the single-process run.
        const std::vector<sim::HubRunResult> baseline = runner.run(jobs);
        const sim::AggregateReport baseline_report(baseline);
        if (merged.results != baseline ||
            sim::serialize_report(merged.report) !=
                sim::serialize_report(baseline_report)) {
          std::cerr << "city_sweep: SHARD IDENTITY VIOLATION — merged report "
                       "differs from the single-process run\n";
          return 1;
        }
        std::cout << "\nshard-verify: " << shard_count
                  << "-way merged report byte-identical to the single-process "
                     "run\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "city_sweep: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  const std::size_t fleet_size = metro ? metro->hubs().size() : expanded.size();
  std::cout << "=== City sweep: " << fleet_size << " hubs, " << scenario_keys.size()
            << " scenarios, " << episodes << " episode(s) x " << days
            << " day(s), scheduler=" << scheduler_arg;
  if (metro) std::cout << ", metro-coupled";
  if (lockstep) {
    std::cout << ", lockstep-batched ("
              << (lockstep_threads == 0 ? std::string("hw")
                                        : std::to_string(lockstep_threads))
              << " thread(s), " << sim::to_string(lockstep_gemm) << " GEMMs)";
  }
  std::cout << " ===\n\n";

  if (metro) {
    std::size_t urban = 0;
    for (const spatial::MetroHub& h : metro->hubs()) urban += h.urban ? 1 : 0;
    std::cout << "metro: " << metro->hubs().size() << " hubs (" << urban << " urban, "
              << (metro->hubs().size() - urban) << " rural), "
              << metro->config().neighbors_per_hub << " neighbors/hub over "
              << metro->roads().total_length() << " km of roads, seed " << base_seed
              << ", checksum " << metro->checksum() << "\n\n";
  }

  std::vector<sim::HubRunResult> results;
  for (const sim::SchedulerKind kind : kinds) {
    const std::shared_ptr<const policy::DrlCheckpoint> kind_ckpt =
        kind == sim::SchedulerKind::kDrl ? checkpoint : nullptr;
    const std::vector<sim::FleetJob> jobs =
        metro ? sim::make_metro_fleet_jobs(*metro, registry, scenario_keys, days, kind,
                                           kind_ckpt)
              : sim::make_fleet_jobs(registry, expanded, expanded.size(), days, kind,
                                     kind_ckpt);
    std::vector<sim::HubRunResult> batch =
        lockstep ? runner.run_lockstep(jobs) : runner.run(jobs);
    results.insert(results.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }

  sim::per_hub_table(results).print(std::cout);
  std::cout << "\n--- Aggregate by scenario ---\n";
  const sim::AggregateReport report(results);
  report.scenario_table().print(std::cout);
  std::cout << "\n--- Aggregate by scheduler ---\n";
  report.scheduler_table().print(std::cout);

  if (metro) {
    double through = 0.0, exported = 0.0, served = 0.0, dropped = 0.0;
    std::size_t outage_slots = 0;
    for (const sim::HubRunResult& r : results) {
      through += r.through_kwh;
      exported += r.spill_exported_kwh;
      served += r.spill_served_kwh;
      dropped += r.spill_dropped_kwh;
      outage_slots += r.outage_slots;
    }
    std::cout << "\n--- Metro coupling ---\n"
              << "through-traffic demand: " << through << " kWh\n"
              << "spillover routed to neighbors: " << exported << " kWh\n"
              << "spillover served by neighbors: " << served << " kWh\n"
              << "spillover dropped (one-hop bound): " << dropped << " kWh\n"
              << "front outage slots endured: " << outage_slots << "\n";
  }
  return 0;
}
