// Decision-service demo: the ROADMAP's "decision service mode" in ~100
// lines.  An ECT-DRL actor (fresh weights — a real deployment would load a
// DrlCheckpoint) is wrapped in a DecisionService; concurrent client threads
// each call decide(obs) with single observations, the service micro-batches
// them into one GEMM per flush, and every answer is cross-checked against
// calling decide_batch directly — bit-identity is the whole point.  Ends
// with the service's own observability snapshot.
//
//   $ ./decision_server [--clients 4] [--requests 64] [--max-batch 8]
//                       [--wait-us 200]
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "policy/drl_policy.hpp"
#include "policy/observation.hpp"
#include "serve/decision_service.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <numbers>
#include <span>
#include <thread>
#include <vector>

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto clients = static_cast<std::size_t>(flags.get_int("clients", 4));
  const auto requests = static_cast<std::size_t>(flags.get_int("requests", 64));
  const auto max_batch = static_cast<std::size_t>(flags.get_int("max-batch", 8));
  const auto wait_us = static_cast<std::uint64_t>(flags.get_int("wait-us", 200));
  flags.check_unknown();

  // The policy under service: one shared stateless ECT-DRL actor.
  const policy::ObservationLayout layout;
  nn::Rng rng(7);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  auto actor = std::make_shared<policy::DrlPolicy>(cfg, rng);

  // A pool of layout-valid observations standing in for live hub states.
  Rng obs_rng(11);
  nn::Matrix obs(64, layout.dim());
  for (std::size_t r = 0; r < obs.rows(); ++r) {
    for (std::size_t i = 0; i < layout.soc_index(); ++i)
      obs(r, i) = obs_rng.uniform(0.0, 1.5);
    obs(r, layout.soc_index()) = obs_rng.uniform(0.0, 1.0);
    const double hour = static_cast<double>(r % 24);
    obs(r, layout.hour_sin_index()) = std::sin(2.0 * std::numbers::pi * hour / 24.0);
    obs(r, layout.hour_cos_index()) = std::cos(2.0 * std::numbers::pi * hour / 24.0);
  }
  std::vector<std::size_t> expected(obs.rows(), 0);
  actor->decide_batch(obs, std::span<std::size_t>(expected));

  serve::ServiceConfig service_cfg;
  service_cfg.max_batch = max_batch;
  service_cfg.max_wait_us = wait_us;
  service_cfg.now_us = &steady_now_us;
  serve::DecisionService service(actor, layout.dim(), service_cfg);
  std::cout << "decision_server: " << actor->name() << " behind a DecisionService "
            << "(max_batch " << max_batch << ", window " << wait_us << " us), "
            << clients << " clients x " << requests << " requests\n";

  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < requests; ++i) {
        const std::size_t r = (t * requests + i) % obs.rows();
        const std::size_t action = service.decide(
            std::span<const double>(obs.data().data() + r * obs.cols(), obs.cols()));
        if (action != expected[r]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  service.shutdown();

  const serve::ServiceStats stats = service.stats();
  std::cout << "\n  requests        " << stats.requests << "\n"
            << "  flushes         " << stats.flushes << " (mean batch "
            << stats.mean_batch_size << ", " << stats.full_batch_flushes
            << " full, " << stats.timer_flushes << " timer)\n"
            << "  max queue depth " << stats.max_queue_depth << "\n"
            << "  latency us      p50 " << stats.latency_p50_us << ", p95 "
            << stats.latency_p95_us << ", p99 " << stats.latency_p99_us << ", max "
            << stats.latency_max_us << "\n";

  if (mismatches.load() != 0) {
    std::cerr << "\ndecision_server: " << mismatches.load()
              << " action(s) diverged from decide_batch — bit-identity broken\n";
    return 1;
  }
  std::cout << "\nAll " << stats.requests
            << " served actions bit-identical to decide_batch.\n";
  return 0;
}
