// Rural scenario: PV + wind-turbine hub along a highway (Fig. 6, right).
// Shows how renewable generation reshapes the hub economics: the same
// scheduler earns more when wind/solar displace grid imports, and surplus
// energy makes EV charging nearly free to serve.
//
//   $ ./rural_hub [--episodes 5]
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/hub_env.hpp"
#include "core/policy_runner.hpp"
#include "policy/rule_policies.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto episodes = static_cast<std::size_t>(flags.get_int("episodes", 5));
  flags.check_unknown();

  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 14;
  env_cfg.discount_by_hour.assign(24, false);
  for (std::size_t h = 17; h < 23; ++h) env_cfg.discount_by_hour[h] = true;

  std::cout << "=== Rural hub: renewable-generation economics ===\n\n";
  TextTable table({"Configuration", "profit ($)", "grid cost ($)", "EV revenue ($)"});
  for (const auto& [label, plant] :
       std::vector<std::pair<std::string, renewables::PlantConfig>>{
           {"PV + WT", renewables::PlantConfig::rural()},
           {"PV only", renewables::PlantConfig::urban()},
           {"no renewables", renewables::PlantConfig::none()}}) {
    core::HubConfig hub = core::HubConfig::rural("RuralHub", 17);
    hub.plant = plant;
    core::EctHubEnv env(hub, env_cfg);
    policy::GreedyPricePolicy sched(env.observation_layout());
    double profit = 0, grid = 0, revenue = 0;
    for (std::size_t e = 0; e < episodes; ++e) {
      (void)core::run_policy(env, sched, 1);
      profit += env.ledger().total_profit();
      grid += env.ledger().total_grid_cost();
      revenue += env.ledger().total_revenue();
    }
    const double n = static_cast<double>(episodes);
    table.begin_row()
        .add(label)
        .add_double(profit / n, 2)
        .add_double(grid / n, 2)
        .add_double(revenue / n, 2);
  }
  table.print(std::cout);
  std::cout << "\nWind + PV cut the grid bill and lift profit — the rural deployment\n"
               "case the paper highlights (abundant renewables, highway EV traffic).\n";
  return 0;
}
