// Pricing campaign: train ECT-Price on a synthetic charging history and print
// the weekly discount schedule it recommends for one station — the workflow
// an ECT-Hub operator would run before enabling dynamic pricing.
//
//   $ ./pricing_campaign [--days 120] [--epochs 2] [--station 0]
#include "causal/ect_price.hpp"
#include "causal/evaluate.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "ev/dataset.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto station = static_cast<std::size_t>(flags.get_int("station", 0));

  ev::DatasetConfig dcfg;
  dcfg.num_days = static_cast<std::size_t>(flags.get_int("days", 120));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 2));
  const double discount_fraction = flags.get_double("discount", 0.2);
  flags.check_unknown();
  std::cout << "generating charging history (" << dcfg.num_stations << " stations x "
            << dcfg.num_days << " days)...\n";
  const ev::ChargingDataset dataset(dcfg, Rng(404));
  const auto split = dataset.split(0.8);
  const auto train = causal::encode(split.train);
  const auto test = causal::encode(split.test);

  causal::EctPriceConfig cfg;
  cfg.ncf.num_stations = dcfg.num_stations;
  cfg.epochs = epochs;
  causal::EctPriceModel model(cfg, Rng(405));
  std::cout << "training ECT-Price (" << cfg.epochs << " epochs over " << train.size()
            << " items)...\n";
  const auto stats = model.fit(train);
  std::cout << "final epoch loss: " << stats.epoch_loss.back() << "\n";

  const auto preds = model.predict(test);
  std::cout << "stratification accuracy on held-out items: "
            << causal::strata_accuracy(test, preds) * 100.0 << "%\n\n";

  std::cout << "=== Recommended weekday discount schedule for station " << station
            << " (discount " << discount_fraction * 100 << "%) ===\n";
  TextTable table({"hour", "P(Incentive)", "P(Always)", "decision"});
  for (std::size_t h = 0; h < 24; ++h) {
    const auto p = model.predict_one(station, causal::encode_time(h));
    // Expected-gain rule: discount when (1-c) P(Incentive) > c P(Always).
    const bool discount =
        (1.0 - discount_fraction) * p.p_incentive > discount_fraction * p.p_always;
    table.begin_row()
        .add_int(static_cast<long long>(h))
        .add_double(p.p_incentive, 3)
        .add_double(p.p_always, 3)
        .add(discount ? "DISCOUNT" : "full price");
  }
  table.print(std::cout);
  std::cout << "\nDiscounts land on price-sensitive evening hours; busy daytime hours\n"
               "(Always Charge) keep full price — no revenue is given away.\n";
  return 0;
}
