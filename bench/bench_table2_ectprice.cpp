// Table II — ECT-Price vs OR / IPS / DR at discounts 10%..60%.
//
// For each method: train on the historical (confounded) log, decide which
// test items to discount, then score the decisions against the simulator's
// ground-truth strata.  Columns mirror the paper: counts of true None /
// Incentive / Always items among those given discounts, plus the reward
// (see causal/evaluate.hpp for the reward convention).
#include "ectprice_common.hpp"

#include "common/table.hpp"

#include <algorithm>
#include <iostream>
#include <memory>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  std::cout << "=== Table II: performance evaluation of ECT-Price ===\n";
  benchx::EctPriceSetup setup = benchx::make_setup(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 101));

  // Train each method once; the discount fraction only affects scoring.
  const auto ensemble = static_cast<std::size_t>(flags.get_int("ensemble", 3));
  const double budget_frac = flags.get_double("budget-frac", 0.10);
  flags.check_unknown();
  std::cout << "training ECT-Price (ensemble of " << ensemble << ")...\n";
  const auto our_preds = benchx::train_ectprice_ensemble(setup, seed, ensemble);
  std::cout << "stratification accuracy vs ground truth: "
            << causal::strata_accuracy(setup.test, our_preds) << "\n";

  std::vector<std::unique_ptr<causal::UpliftModel>> baselines;
  baselines.push_back(
      std::make_unique<causal::OutcomeRegression>(setup.uplift_cfg, Rng(seed + 20)));
  baselines.push_back(
      std::make_unique<causal::InversePropensityScoring>(setup.uplift_cfg, Rng(seed + 30)));
  baselines.push_back(std::make_unique<causal::DoublyRobust>(setup.uplift_cfg, Rng(seed + 40)));

  std::vector<std::vector<double>> baseline_scores;
  for (auto& b : baselines) {
    std::cout << "training " << b->name() << "...\n";
    b->fit(setup.train);
    baseline_scores.push_back(b->uplift(setup.test));
  }

  // Budget-matched comparison (the paper's per-method selection counts are
  // equal): every method discounts the same number of items, each ranked by
  // its own score; reward differences then isolate targeting quality.
  const auto budget =
      static_cast<std::size_t>(static_cast<double>(setup.test.size()) * budget_frac);
  for (const double discount : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    std::cout << "\n--- " << static_cast<int>(discount * 100) << "% discount (budget "
              << budget << " items) ---\n";
    TextTable table({"Method", "None", "Incentive", "Always", "Reward"});
    auto add_row = [&](const causal::DiscountOutcome& out) {
      table.begin_row()
          .add(out.method)
          .add_int(static_cast<long long>(out.none))
          .add_int(static_cast<long long>(out.incentive))
          .add_int(static_cast<long long>(out.always))
          .add_double(out.reward, 1);
    };
    for (std::size_t i = 0; i < baselines.size(); ++i) {
      add_row(causal::evaluate_decisions(baselines[i]->name(), discount, setup.test,
                                         causal::decide_top_k(baseline_scores[i], budget)));
    }
    add_row(causal::evaluate_decisions(
        "Ours", discount, setup.test,
        causal::decide_top_k(causal::strata_gain_scores(our_preds, discount), budget)));
    table.print(std::cout);
  }
  std::cout << "\nPaper shape: Ours consistently achieves the highest reward and the\n"
               "smallest Always count (it avoids discounting items that would charge\n"
               "anyway), across all discount levels.\n";
  return 0;
}
