// Fig. 4 — voltage of two batteries and a battery group over ~350 days.
//
// Reproduces the slow self-degradation the paper uses to argue that idle
// backup batteries waste value: per-cell float voltage declines over a year
// even without cycling, and cycling accelerates the decline.
#include "battery/degradation.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto days = static_cast<std::size_t>(flags.get_int("days", 350));
  const std::string csv_dir = flags.get_string("csv", "");
  flags.check_unknown();

  std::cout << "=== Fig. 4: voltage of two batteries and a battery group ===\n\n";

  battery::DegradationConfig cell1;                 // healthy cell
  battery::DegradationConfig cell2 = cell1;         // weaker cell: ages faster
  cell2.calendar_fade_per_day = 3.2e-4;
  battery::DegradationConfig group = cell1;         // 24-cell series group

  const auto v1 = battery::DegradationModel::voltage_trajectory(cell1, days);
  const auto v2 = battery::DegradationModel::voltage_trajectory(cell2, days);
  const auto vg_cell = battery::DegradationModel::voltage_trajectory(group, days, 1.0);

  TextTable table({"day", "battery1 (V)", "battery2 (V)", "group (V)"});
  for (std::size_t d = 0; d < days; d += 25) {
    table.begin_row()
        .add_int(static_cast<long long>(d))
        .add_double(v1[d], 3)
        .add_double(v2[d], 3)
        .add_double(vg_cell[d] * static_cast<double>(group.cells_in_group), 2);
  }
  table.print(std::cout);

  std::cout << "\nVoltage drop over " << days << " days: battery1 "
            << (v1.front() - v1.back()) * 1000.0 << " mV, battery2 "
            << (v2.front() - v2.back()) * 1000.0 << " mV (cycled group cell "
            << (vg_cell.front() - vg_cell.back()) * 1000.0 << " mV)\n";
  std::cout << "Paper shape: gradual monotone voltage decline (~2.30 -> ~2.10 V class\n"
               "cells over a year), reflecting the slow self-degradation process.\n";

  if (!csv_dir.empty()) {
    std::vector<double> day_axis(days), g(days);
    for (std::size_t d = 0; d < days; ++d) {
      day_axis[d] = static_cast<double>(d);
      g[d] = vg_cell[d] * static_cast<double>(group.cells_in_group);
    }
    write_csv(csv_dir + "/fig04_degradation.csv", {"day", "battery1_v", "battery2_v", "group_v"},
              {day_axis, v1, v2, g});
  }
  return 0;
}
