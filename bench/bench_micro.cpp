// Micro-benchmarks (google-benchmark) of the hot kernels: NN forward /
// backward, environment stepping and PPO updates.
#include "core/hub_env.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/ppo.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace ecthub;

void BM_MatrixMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const nn::Matrix a = nn::Matrix::randn(n, n, rng);
  const nn::Matrix b = nn::Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMatmul)->Arg(16)->Arg(64)->Arg(128);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::MlpConfig cfg;
  cfg.layer_dims = {33, 64, 32, 3};
  nn::Mlp mlp(cfg, rng, "bench");
  const nn::Matrix x = nn::Matrix::randn(64, 33, rng);
  for (auto _ : state) {
    nn::Matrix y = mlp.forward(x);
    benchmark::DoNotOptimize(mlp.backward(y));
    mlp.zero_grad();
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_HubEnvStep(benchmark::State& state) {
  core::HubConfig hub = core::HubConfig::urban("bench", 5);
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 30;
  core::EctHubEnv env(hub, env_cfg);
  env.reset();
  std::size_t a = 0;
  for (auto _ : state) {
    const rl::StepResult r = env.step(a % 3);
    ++a;
    if (r.done) env.reset();
  }
}
BENCHMARK(BM_HubEnvStep);

void BM_HubEnvReset(benchmark::State& state) {
  core::HubConfig hub = core::HubConfig::rural("bench", 6);
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 30;
  core::EctHubEnv env(hub, env_cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.reset());
  }
}
BENCHMARK(BM_HubEnvReset);

void BM_PpoUpdate(benchmark::State& state) {
  Rng rng(7);
  rl::ActorCriticConfig ac_cfg;
  ac_cfg.state_dim = 33;
  rl::PpoConfig ppo_cfg;
  rl::PpoTrainer trainer(ppo_cfg, ac_cfg, rng);
  rl::RolloutBuffer buffer;
  Rng data_rng(8);
  for (std::size_t i = 0; i < 256; ++i) {
    rl::Transition t;
    t.state.resize(33);
    for (double& s : t.state) s = data_rng.uniform();
    t.action = static_cast<std::size_t>(data_rng.uniform_int(0, 2));
    t.log_prob = std::log(1.0 / 3.0);
    t.reward = data_rng.normal();
    t.value = 0.0;
    t.done = (i + 1) % 64 == 0;
    buffer.add(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.update(buffer));
  }
}
BENCHMARK(BM_PpoUpdate);

}  // namespace
