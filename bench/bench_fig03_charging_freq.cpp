// Fig. 3 — charging frequencies of electric vehicles by hour of day.
//
// The paper shows a histogram over ~70k charging records from 12 stations /
// 3 years; we regenerate it from the synthetic charging-history dataset.
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "ev/dataset.hpp"

#include <algorithm>
#include <iostream>
#include <string>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 33));
  ev::DatasetConfig cfg;
  cfg.num_days = static_cast<std::size_t>(flags.get_int("days", 1095));
  const std::string csv_dir = flags.get_string("csv", "");
  flags.check_unknown();

  std::cout << "=== Fig. 3: charging frequencies of electric vehicles ===\n";
  const ev::ChargingDataset dataset(cfg, Rng(seed));
  std::cout << "Synthetic dataset: " << cfg.num_stations << " stations x " << cfg.num_days
            << " days, " << dataset.num_charges()
            << " charge events (paper: 12 stations x 3 years, 70k records)\n\n";

  const std::vector<std::size_t> freq = dataset.charge_frequency_by_hour();
  const std::size_t peak = *std::max_element(freq.begin(), freq.end());

  TextTable table({"hour", "frequency", "profile"});
  for (std::size_t h = 0; h < 24; ++h) {
    const auto bar_len = static_cast<std::size_t>(40.0 * static_cast<double>(freq[h]) /
                                                  static_cast<double>(std::max<std::size_t>(peak, 1)));
    table.begin_row()
        .add_int(static_cast<long long>(h))
        .add_int(static_cast<long long>(freq[h]))
        .add(std::string(bar_len, '#'));
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: quiet overnight, broad daytime bulk, evening tail —\n"
               "significant usage variation across the day motivating dynamic pricing.\n";

  if (!csv_dir.empty()) {
    std::vector<double> hours(24), counts(24);
    for (std::size_t h = 0; h < 24; ++h) {
      hours[h] = static_cast<double>(h);
      counts[h] = static_cast<double>(freq[h]);
    }
    write_csv(csv_dir + "/fig03_charging_freq.csv", {"hour", "frequency"}, {hours, counts});
  }
  return 0;
}
