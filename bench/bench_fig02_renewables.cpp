// Fig. 2 — active power of renewable generation (WT, PV, total) over 2 days.
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "renewables/plant.hpp"
#include "weather/weather.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  const std::string csv_dir = flags.get_string("csv", "");
  flags.check_unknown();

  std::cout << "=== Fig. 2: active power of renewable power generation (2 days) ===\n\n";

  const TimeGrid grid(2, 24);
  weather::WeatherConfig wx_cfg;
  weather::WeatherGenerator wx_gen(wx_cfg, Rng(seed));
  const weather::WeatherSeries wx = wx_gen.generate(grid);

  const renewables::RenewablePlant plant(renewables::PlantConfig::rural());
  const renewables::GenerationSeries gen = plant.generate(wx);

  TextTable table({"hour", "WT (W)", "PV (W)", "Total (W)"});
  for (std::size_t t = 0; t < grid.size(); ++t) {
    table.begin_row()
        .add_int(static_cast<long long>(t))
        .add_double(gen.wt_w[t], 0)
        .add_double(gen.pv_w[t], 0)
        .add_double(gen.total_w[t], 0);
  }
  table.print(std::cout);

  // Shape checks mirrored from the paper's figure: PV is zero at night and
  // peaks near noon; wind is volatile around its mean; the total tracks both.
  std::vector<double> pv_night, pv_noon;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double h = grid.hour_of_day(t);
    if (h < 5.0 || h > 21.0) pv_night.push_back(gen.pv_w[t]);
    if (h >= 11.0 && h <= 13.0) pv_noon.push_back(gen.pv_w[t]);
  }
  std::cout << "\nPV night mean: " << stats::mean(pv_night)
            << " W, PV noon mean: " << stats::mean(pv_noon) << " W\n";
  std::cout << "WT mean: " << stats::mean(gen.wt_w)
            << " W, WT stddev: " << stats::stddev(gen.wt_w)
            << " W (volatility, cf. paper: 'great volatility and hard to predict')\n";

  if (!csv_dir.empty()) {
    std::vector<double> hours(grid.size());
    for (std::size_t t = 0; t < grid.size(); ++t) hours[t] = static_cast<double>(t);
    write_csv(csv_dir + "/fig02_renewables.csv", {"hour", "wt_w", "pv_w", "total_w"},
              {hours, gen.wt_w, gen.pv_w, gen.total_w});
    std::cout << "CSV written to " << csv_dir << "/fig02_renewables.csv\n";
  }
  return 0;
}
