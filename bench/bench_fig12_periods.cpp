// Fig. 12 — predicted strata distribution over four six-hour periods.
#include "ectprice_common.hpp"

#include "common/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  std::cout << "=== Fig. 12: strata distribution of four periods ===\n";
  benchx::EctPriceSetup setup = benchx::make_setup(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 101));
  flags.check_unknown();

  causal::EctPriceModel model(setup.price_cfg, Rng(seed + 10));
  model.fit(setup.train);
  const auto preds = model.predict(setup.test);
  const auto dist = causal::period_distribution(setup.test, preds);

  const char* period_names[4] = {"00:00-06:00", "06:00-12:00", "12:00-18:00", "18:00-24:00"};
  TextTable table({"Period", "Incentive %", "Always %", "None %"});
  for (std::size_t p = 0; p < 4; ++p) {
    table.begin_row()
        .add(period_names[p])
        .add_double(dist.shares[p][1] * 100.0, 1)
        .add_double(dist.shares[p][2] * 100.0, 1)
        .add_double(dist.shares[p][0] * 100.0, 1);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape (Fig. 12): Incentive share jumps in 18:00-24:00 (paper:\n"
               "41.4% vs 2.7-7.2% in other periods) — the hub should discount evenings.\n";
  return 0;
}
