// Fig. 1 — spatial overlap between main roads and base stations.
//
// The paper motivates the ECT-Hub design with a Texas map showing BS sites
// clustering along roads.  We regenerate the statistic behind the picture:
// base stations placed with road bias sit far closer to roads than uniform
// chance, so EV traffic naturally passes them.
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "spatial/placement.hpp"
#include "spatial/roads.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto stations = static_cast<std::size_t>(flags.get_int("stations", 2500));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  flags.check_unknown();

  std::cout << "=== Fig. 1: road / base-station spatial overlap ===\n";
  std::cout << "Synthetic 100x100 km region (OpenStreetMap/OpenCellID substitute)\n\n";

  spatial::RoadNetworkConfig road_cfg;
  const spatial::RoadNetwork roads(road_cfg, Rng(seed));

  TextTable table({"BS placement", "mean dist (km)", "median (km)", "within 1 km",
                   "uniform mean (km)", "clustering ratio"});
  for (const double bias : {0.8, 0.5, 0.0}) {
    spatial::PlacementConfig cfg;
    cfg.num_stations = stations;
    cfg.road_biased_fraction = bias;
    const spatial::BsPlacement placement(cfg, roads, Rng(seed + 1));
    const spatial::OverlapStats st = placement.overlap_stats(roads, 20000, Rng(seed + 2));
    table.begin_row()
        .add(std::to_string(static_cast<int>(bias * 100)) + "% road-biased")
        .add_double(st.mean_distance_km)
        .add_double(st.median_distance_km)
        .add_double(st.within_1km_fraction * 100.0, 1)
        .add_double(st.uniform_mean_distance_km)
        .add_double(st.clustering_ratio);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: deployed BSs visually coincide with main roads; here the\n"
               "road-biased placement sits several times closer to roads than uniform\n"
               "(clustering ratio >> 1), reproducing the Fig. 1 observation.\n";
  return 0;
}
