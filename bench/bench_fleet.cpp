// Fleet-engine benchmark: multi-hub throughput vs thread count.
//
// Runs the same N-hub fleet (cycling through the built-in scenarios) at each
// requested thread count, reports wall time / throughput / speedup, and
// cross-checks that every thread count reproduces the 1-thread per-hub
// profits bit for bit — the determinism contract of the FleetRunner.
//
//   $ ./bench_fleet [--hubs 32] [--days 4] [--episodes 1]
//                   [--threads-list 1,2,4,8] [--base-seed 7]
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/scenario.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<std::size_t> parse_thread_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto require_positive = [&](const char* name, std::int64_t def) {
    const std::int64_t v = flags.get_int(name, def);
    if (v <= 0) {
      std::cerr << "bench_fleet: --" << name << " must be >= 1\n";
      std::exit(1);
    }
    return static_cast<std::size_t>(v);
  };
  const std::size_t hubs = require_positive("hubs", 32);
  const std::size_t days = require_positive("days", 4);
  const std::size_t episodes = require_positive("episodes", 1);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 7));
  const std::vector<std::size_t> thread_list =
      parse_thread_list(flags.get_string("threads-list", "1,2,4,8"));

  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();
  const std::vector<sim::FleetJob> jobs = sim::make_fleet_jobs(
      registry, registry.keys(), hubs, days, sim::SchedulerKind::kGreedyPrice);

  const std::size_t slots = episodes * days * jobs.front().env.slots_per_day;
  std::cout << "=== Fleet throughput: " << hubs << " hubs x " << slots
            << " slots, base seed " << base_seed << " ===\n";

  const auto timed_run = [&](std::size_t threads, std::vector<sim::HubRunResult>& out) {
    sim::FleetRunnerConfig cfg;
    cfg.base_seed = base_seed;
    cfg.threads = threads;
    cfg.episodes_per_hub = episodes;
    const sim::FleetRunner runner(cfg);
    const auto start = std::chrono::steady_clock::now();
    out = runner.run(jobs);
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start).count();
  };

  // The reference is always an explicit 1-thread run — every entry of
  // --threads-list is checked against it, whatever order it lists.
  std::vector<sim::HubRunResult> reference;
  const double serial_ms = timed_run(1, reference);

  TextTable table({"threads", "wall ms", "hubs/s", "kslots/s", "speedup", "bit-identical"});
  for (const std::size_t threads : thread_list) {
    std::vector<sim::HubRunResult> results;
    const double ms = timed_run(threads, results);

    bool identical = results.size() == reference.size();
    for (std::size_t i = 0; identical && i < results.size(); ++i) {
      identical = results[i].profit == reference[i].profit &&
                  results[i].revenue == reference[i].revenue &&
                  results[i].soc.checksum == reference[i].soc.checksum;
    }
    table.begin_row()
        .add_int(static_cast<long long>(threads))
        .add_double(ms, 1)
        .add_double(static_cast<double>(hubs) * 1000.0 / ms, 1)
        .add_double(static_cast<double>(hubs * slots) / ms, 1)
        .add_double(serial_ms / ms, 2)
        .add(identical ? "yes" : "NO");
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION at " << threads << " threads\n";
      table.print(std::cout);
      return 1;
    }
  }
  table.print(std::cout);
  return 0;
}
