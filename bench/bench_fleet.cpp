// Fleet-engine benchmark: multi-hub throughput vs thread count, plus the
// batched-inference payoff of the unified Policy API.
//
// Part 1 runs the same N-hub fleet (cycling through the built-in scenarios)
// at each requested thread count, reports wall time / throughput / speedup,
// and cross-checks that every thread count reproduces the 1-thread per-hub
// profits bit for bit — the determinism contract of the FleetRunner.
//
// Part 2 measures ECT-DRL fleet inference two ways: per-hub execution (one
// matrix-vector actor forward per hub per slot) against lockstep execution
// (one matrix-matrix forward across all hubs per slot), both end-to-end and
// as a pure-inference microbenchmark, again cross-checking bit-identity.
//
// Part 3 sweeps --threads-list over run_lockstep's worker crew
// (lockstep_threads): env stepping shards across the barrier-synchronized
// workers while inference stays one GEMM per slot — thread x batch
// parallelism on one fleet, still bit-identical to the per-hub reference.
// The sweep runs the rule-policy fleet, where stepping is the entire slot
// cost.  Wall-clock scaling needs real cores — the table prints
// hardware_concurrency so a flat curve on a 1-core box reads as the
// environment, not a regression.
//
// Part 4 is the GEMM-placement sweep on the ECT-DRL fleet: at each worker
// count, the PR 4 coordinator path (one decide_batch on the coordinator
// while the crew idles at the barrier) races the worker path (each worker
// runs decide_rows on its lane partition's row-block of the shared
// observation matrix).  The coordinator GEMM is the Amdahl bottleneck the
// worker placement removes; with >= 4 real cores the worker column should
// pull ahead, and every cell is cross-checked bit-identical to the per-hub
// reference.
//
// Part 5 prices the metro coupling layer: the same spatially generated
// fleet runs uncoupled and coupled (per-slot CouplingBus exchange plus the
// correlated weather/outage fronts), reporting the throughput cost and the
// routed spillover, with the coupled run cross-checked bit-identical across
// thread counts and both GEMM placements.
//
// Part 6 measures training-side throughput: PPO rollout collection over 8
// urban replica lanes, serial per-lane act() against the vectorized lockstep
// collector (one 8-row stochastic GEMM per slot, env stepping sharded across
// the BarrierCrew) at 1/4/8 collector threads.  Per-lane RNG streams make
// every cell's collected buffers bit-comparable to the serial reference.
//
//   $ ./bench_fleet [--hubs 64] [--days 4] [--episodes 1]
//                   [--threads-list 1,2,4,8] [--base-seed 7]
//                   [--drl-iters 3] [--inference-reps 200]
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "core/hub_env.hpp"
#include "policy/drl_policy.hpp"
#include "rl/vec_collector.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/metro.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "sim/shard_driver.hpp"
#include "sim/shard_io.hpp"
#include "spatial/metro.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::vector<std::size_t> parse_thread_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return out;
}

double now_ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

bool results_identical(const std::vector<ecthub::sim::HubRunResult>& a,
                       const std::vector<ecthub::sim::HubRunResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].profit != b[i].profit || a[i].revenue != b[i].revenue ||
        a[i].soc.checksum != b[i].soc.checksum ||
        a[i].spill_exported_kwh != b[i].spill_exported_kwh ||
        a[i].spill_served_kwh != b[i].spill_served_kwh) {
      return false;
    }
  }
  return true;
}

bool buffers_identical(const std::vector<ecthub::rl::RolloutBuffer>& a,
                       const std::vector<ecthub::rl::RolloutBuffer>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ta = a[i].transitions();
    const auto& tb = b[i].transitions();
    if (ta.size() != tb.size()) return false;
    for (std::size_t k = 0; k < ta.size(); ++k) {
      if (ta[k].state != tb[k].state || ta[k].action != tb[k].action ||
          ta[k].log_prob != tb[k].log_prob || ta[k].reward != tb[k].reward ||
          ta[k].value != tb[k].value || ta[k].done != tb[k].done ||
          ta[k].truncated != tb[k].truncated ||
          ta[k].bootstrap_value != tb[k].bootstrap_value) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto require_positive = [&](const char* name, std::int64_t def) {
    const std::int64_t v = flags.get_int(name, def);
    if (v <= 0) {
      std::cerr << "bench_fleet: --" << name << " must be >= 1\n";
      std::exit(1);
    }
    return static_cast<std::size_t>(v);
  };
  const std::size_t hubs = require_positive("hubs", 64);
  const std::size_t days = require_positive("days", 4);
  const std::size_t episodes = require_positive("episodes", 1);
  const std::size_t drl_iters = require_positive("drl-iters", 3);
  const std::size_t inference_reps = require_positive("inference-reps", 200);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("base-seed", 7));
  const std::vector<std::size_t> thread_list =
      parse_thread_list(flags.get_string("threads-list", "1,2,4,8"));
  flags.check_unknown();

  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();
  const std::vector<sim::FleetJob> jobs = sim::make_fleet_jobs(
      registry, registry.keys(), hubs, days, sim::SchedulerKind::kGreedyPrice);

  const std::size_t slots = episodes * days * jobs.front().env.slots_per_day;
  std::cout << "=== Fleet throughput: " << hubs << " hubs x " << slots
            << " slots, base seed " << base_seed << " ===\n";

  const auto timed_run_gemm = [&](const std::vector<sim::FleetJob>& fleet_jobs,
                                  std::size_t threads, bool lockstep,
                                  sim::LockstepGemm gemm,
                                  std::vector<sim::HubRunResult>& out) {
    sim::FleetRunnerConfig cfg;
    cfg.base_seed = base_seed;
    cfg.threads = threads;
    cfg.lockstep_threads = lockstep ? threads : 1;
    cfg.lockstep_gemm = gemm;
    cfg.episodes_per_hub = episodes;
    const sim::FleetRunner runner(cfg);
    const auto start = std::chrono::steady_clock::now();
    out = lockstep ? runner.run_lockstep(fleet_jobs) : runner.run(fleet_jobs);
    return now_ms_since(start);
  };
  const auto timed_run = [&](const std::vector<sim::FleetJob>& fleet_jobs,
                             std::size_t threads, bool lockstep,
                             std::vector<sim::HubRunResult>& out) {
    return timed_run_gemm(fleet_jobs, threads, lockstep, sim::LockstepGemm::kWorker, out);
  };

  // The reference is always an explicit 1-thread run — every entry of
  // --threads-list is checked against it, whatever order it lists.
  std::vector<sim::HubRunResult> reference;
  const double serial_ms = timed_run(jobs, 1, false, reference);

  TextTable table({"threads", "wall ms", "hubs/s", "kslots/s", "speedup", "bit-identical"});
  for (const std::size_t threads : thread_list) {
    std::vector<sim::HubRunResult> results;
    const double ms = timed_run(jobs, threads, false, results);
    const bool identical = results_identical(results, reference);
    table.begin_row()
        .add_int(static_cast<long long>(threads))
        .add_double(ms, 1)
        .add_double(static_cast<double>(hubs) * 1000.0 / ms, 1)
        .add_double(static_cast<double>(hubs * slots) / ms, 1)
        .add_double(serial_ms / ms, 2)
        .add(identical ? "yes" : "NO");
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION at " << threads << " threads\n";
      table.print(std::cout);
      return 1;
    }
  }
  table.print(std::cout);

  // --- Part 2: ECT-DRL fleet — per-hub matrix-vector vs lockstep GEMM -----
  std::cout << "\n=== ECT-DRL inference: per-hub (matrix-vector) vs lockstep "
               "(matrix-matrix) ===\n";
  std::cout << "training actor: " << drl_iters << " PPO iteration(s)...\n";
  core::DrlFleetTrainConfig train_cfg;
  train_cfg.env = registry.at("urban").env;
  train_cfg.env.episode_days = days;
  train_cfg.iterations = drl_iters;
  train_cfg.seed = sim::mix_seed(base_seed, 0x5eedULL);
  const auto checkpoint = std::make_shared<policy::DrlCheckpoint>(core::train_drl_checkpoint(
      registry.make_hub("urban", "drl-train", train_cfg.seed), train_cfg));

  const std::vector<sim::FleetJob> drl_jobs = sim::make_fleet_jobs(
      registry, registry.keys(), hubs, days, sim::SchedulerKind::kDrl, checkpoint);

  std::vector<sim::HubRunResult> per_hub, lockstep;
  const double per_hub_ms = timed_run(drl_jobs, 1, false, per_hub);
  const double lockstep_ms = timed_run(drl_jobs, 1, true, lockstep);
  const bool drl_identical = results_identical(per_hub, lockstep);

  TextTable drl_table({"mode", "wall ms", "kslots/s", "speedup", "bit-identical"});
  drl_table.begin_row()
      .add("per-hub serial")
      .add_double(per_hub_ms, 1)
      .add_double(static_cast<double>(hubs * slots) / per_hub_ms, 1)
      .add_double(1.0, 2)
      .add("reference");
  drl_table.begin_row()
      .add("lockstep batched")
      .add_double(lockstep_ms, 1)
      .add_double(static_cast<double>(hubs * slots) / lockstep_ms, 1)
      .add_double(per_hub_ms / lockstep_ms, 2)
      .add(drl_identical ? "yes" : "NO");
  drl_table.print(std::cout);
  if (!drl_identical) {
    std::cerr << "DETERMINISM VIOLATION: lockstep DRL differs from per-hub\n";
    return 1;
  }

  // Pure-inference microbenchmark: the same decisions with the env stepping
  // cost stripped away — the raw matrix-vector vs matrix-matrix gap.
  {
    policy::DrlPolicy actor(*checkpoint);
    const std::size_t dim = checkpoint->config.state_dim;
    nn::Matrix obs(hubs, dim);
    Rng rng(base_seed);
    for (double& x : obs.data()) x = rng.uniform(0.0, 1.5);
    std::vector<std::size_t> scalar_actions(hubs), batch_actions(hubs);

    const auto scalar_start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < inference_reps; ++rep) {
      const double* data = obs.data().data();
      for (std::size_t i = 0; i < hubs; ++i) {
        scalar_actions[i] = actor.decide(std::span<const double>(data + i * dim, dim));
      }
    }
    const double scalar_ms = now_ms_since(scalar_start);

    const auto batch_start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < inference_reps; ++rep) {
      actor.decide_batch(obs, std::span<std::size_t>(batch_actions));
    }
    const double batch_ms = now_ms_since(batch_start);

    if (scalar_actions != batch_actions) {
      std::cerr << "DETERMINISM VIOLATION: decide_batch differs from decide\n";
      return 1;
    }
    const double decisions = static_cast<double>(hubs * inference_reps);
    TextTable micro({"forward", "wall ms", "Mdecisions/s", "speedup"});
    micro.begin_row()
        .add("matrix-vector x hubs")
        .add_double(scalar_ms, 1)
        .add_double(decisions / scalar_ms / 1000.0, 3)
        .add_double(1.0, 2);
    micro.begin_row()
        .add("matrix-matrix batch")
        .add_double(batch_ms, 1)
        .add_double(decisions / batch_ms / 1000.0, 3)
        .add_double(scalar_ms / batch_ms, 2);
    std::cout << "\n--- Pure inference, " << hubs << " hubs x " << inference_reps
              << " reps ---\n";
    micro.print(std::cout);
  }

  // --- Part 3: threaded lockstep — env stepping sharded across the crew ---
  // The heuristic fleet from part 1 in lockstep at each worker count: env
  // stepping (the entire slot cost for rule policies) shards across the
  // barrier-synchronized workers.  Every row must reproduce the per-hub
  // reference bit for bit.
  std::cout << "\n=== Threaded lockstep scaling: " << hubs << " hubs, "
            << to_string(jobs.front().scheduler) << " fleet, "
            << std::thread::hardware_concurrency() << " hardware core(s) ===\n";
  std::vector<sim::HubRunResult> lockstep_serial;
  const double lockstep_serial_ms = timed_run(jobs, 1, true, lockstep_serial);
  if (!results_identical(lockstep_serial, reference)) {
    std::cerr << "DETERMINISM VIOLATION: lockstep differs from per-hub\n";
    return 1;
  }
  TextTable scaling({"lockstep threads", "wall ms", "kslots/s", "speedup", "bit-identical"});
  for (const std::size_t threads : thread_list) {
    std::vector<sim::HubRunResult> results;
    const double ms = timed_run(jobs, threads, true, results);
    const bool identical = results_identical(results, reference);
    scaling.begin_row()
        .add_int(static_cast<long long>(threads))
        .add_double(ms, 1)
        .add_double(static_cast<double>(hubs * slots) / ms, 1)
        .add_double(lockstep_serial_ms / ms, 2)
        .add(identical ? "yes" : "NO");
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION at " << threads << " lockstep threads\n";
      scaling.print(std::cout);
      return 1;
    }
  }
  scaling.print(std::cout);

  // --- Part 4: GEMM placement — coordinator vs worker row-block GEMMs -----
  // The ECT-DRL fleet again, where inference is a real share of the slot:
  // each worker count races the serial coordinator decide_batch against
  // per-worker decide_rows row-blocks of the same observation matrices.
  std::cout << "\n=== Lockstep GEMM placement: " << hubs << " hubs, drl fleet, "
            << std::thread::hardware_concurrency() << " hardware core(s) ===\n";
  std::vector<sim::HubRunResult> drl_reference;
  const double drl_serial_ms =
      timed_run_gemm(drl_jobs, 1, true, sim::LockstepGemm::kCoordinator, drl_reference);
  if (!results_identical(drl_reference, per_hub)) {
    std::cerr << "DETERMINISM VIOLATION: lockstep DRL differs from per-hub\n";
    return 1;
  }
  TextTable gemm_table({"lockstep threads", "coordinator ms", "worker ms",
                        "worker speedup", "bit-identical"});
  for (const std::size_t threads : thread_list) {
    std::vector<sim::HubRunResult> coord_results, worker_results;
    const double coord_ms = timed_run_gemm(drl_jobs, threads, true,
                                           sim::LockstepGemm::kCoordinator, coord_results);
    const double worker_ms = timed_run_gemm(drl_jobs, threads, true,
                                            sim::LockstepGemm::kWorker, worker_results);
    const bool identical = results_identical(coord_results, drl_reference) &&
                           results_identical(worker_results, drl_reference);
    gemm_table.begin_row()
        .add_int(static_cast<long long>(threads))
        .add_double(coord_ms, 1)
        .add_double(worker_ms, 1)
        .add_double(coord_ms / worker_ms, 2)
        .add(identical ? "yes" : "NO");
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION at " << threads
                << " lockstep threads (gemm placement)\n";
      gemm_table.print(std::cout);
      return 1;
    }
  }
  gemm_table.print(std::cout);
  std::cout << "(serial coordinator reference: " << drl_serial_ms << " ms; worker "
            << "speedup > 1 needs real cores — see hardware core count above)\n";

  // --- Part 6: vectorized PPO rollout collection — training throughput ----
  // (Runs before the metro part so a --hubs 1 invocation still reaches it.)
  // Fresh envs per cell: lane episode sequences depend on env-internal RNG
  // state, so every collector gets its own replica fleet and the same
  // collector seed — the buffers must then match the serial run bit for bit.
  {
    constexpr std::size_t kLanes = 8;
    const std::size_t train_eps = std::max<std::size_t>(4, episodes);
    core::HubEnvConfig lane_env = registry.at("urban").env;
    lane_env.episode_days = days;
    const auto make_lane_envs = [&]() {
      std::vector<std::unique_ptr<core::EctHubEnv>> envs;
      envs.reserve(kLanes);
      for (std::size_t l = 0; l < kLanes; ++l) {
        envs.push_back(std::make_unique<core::EctHubEnv>(
            registry.make_hub("urban", "train-" + std::to_string(l),
                              sim::mix_seed(base_seed, l)),
            lane_env));
      }
      return envs;
    };
    const auto as_ptrs = [](const std::vector<std::unique_ptr<core::EctHubEnv>>& envs) {
      std::vector<rl::Env*> out;
      out.reserve(envs.size());
      for (const auto& e : envs) out.push_back(e.get());
      return out;
    };

    std::cout << "\n=== Vectorized rollout collection: " << kLanes << " urban lanes x "
              << train_eps << " episode(s), " << std::thread::hardware_concurrency()
              << " hardware core(s) ===\n";

    const auto probe = make_lane_envs();
    rl::ActorCriticConfig ac_cfg;
    ac_cfg.state_dim = probe.front()->state_dim();
    ac_cfg.action_count = probe.front()->action_count();
    nn::Rng ac_rng(sim::mix_seed(base_seed, 0xac7ULL));
    rl::ActorCritic actor(ac_cfg, ac_rng);
    rl::VecCollectorConfig vec_cfg;
    vec_cfg.seed = sim::mix_seed(base_seed, 0xc011ULL);

    auto serial_envs = make_lane_envs();
    rl::VecRolloutCollector serial_collector(as_ptrs(serial_envs), vec_cfg);
    const auto serial_start = std::chrono::steady_clock::now();
    const rl::VecRolloutCollector::Stats serial_stats =
        serial_collector.collect_serial(actor, train_eps);
    const double serial_collect_ms = now_ms_since(serial_start);

    TextTable train_table(
        {"collector", "wall ms", "ktransitions/s", "speedup", "bit-identical"});
    train_table.begin_row()
        .add("serial per-lane act")
        .add_double(serial_collect_ms, 1)
        .add_double(static_cast<double>(serial_stats.transitions) / serial_collect_ms, 1)
        .add_double(1.0, 2)
        .add("reference");
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      auto lane_envs = make_lane_envs();
      rl::VecCollectorConfig cell_cfg = vec_cfg;
      cell_cfg.threads = threads;
      rl::VecRolloutCollector collector(as_ptrs(lane_envs), cell_cfg);
      const auto start = std::chrono::steady_clock::now();
      const rl::VecRolloutCollector::Stats stats = collector.collect(actor, train_eps);
      const double ms = now_ms_since(start);
      const bool identical =
          stats.transitions == serial_stats.transitions &&
          stats.total_reward == serial_stats.total_reward &&
          buffers_identical(collector.buffers(), serial_collector.buffers());
      train_table.begin_row()
          .add("vectorized x" + std::to_string(threads))
          .add_double(ms, 1)
          .add_double(static_cast<double>(stats.transitions) / ms, 1)
          .add_double(serial_collect_ms / ms, 2)
          .add(identical ? "yes" : "NO");
      if (!identical) {
        std::cerr << "DETERMINISM VIOLATION: vectorized collection at " << threads
                  << " collector thread(s) differs from the serial reference\n";
        train_table.print(std::cout);
        return 1;
      }
    }
    train_table.print(std::cout);
    std::cout << "(env stepping dominates the slot and shards across the crew, so "
                 "speedup > 1.5 at 8 lanes needs real cores — see hardware core "
                 "count above)\n";
  }

  // --- Part 7: process sharding — forked "fleet of fleets" vs one process --
  // The part-1 fleet again, split 1/2/4/8 ways across forked worker
  // processes (one shard file per child, each worker single-threaded so the
  // speedup column shows pure process-level scaling), then merged from the
  // shard files.  The merged report must be BYTE-identical in serialized
  // form to the single-process report, and every per-hub result field-
  // identical — the whole-sweep determinism contract the shard layer rides
  // on.  Runs before the metro part so a --hubs 1 invocation reaches it.
  {
    std::cout << "\n=== Process sharding: forked workers + shard-file merge vs "
                 "single process ===\n";
    const sim::AggregateReport whole_report(reference);
    const std::string whole_bytes = sim::serialize_report(whole_report);
    sim::FleetRunnerConfig shard_cfg;
    shard_cfg.base_seed = base_seed;
    shard_cfg.threads = 1;
    shard_cfg.episodes_per_hub = episodes;
    const sim::ShardDriver driver(shard_cfg);
    TextTable shard_table(
        {"shards", "wall ms", "hubs/s", "speedup", "bit-identical"});
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      std::string tmpl =
          (std::filesystem::temp_directory_path() / "bench_fleet_shards.XXXXXX")
              .string();
      if (::mkdtemp(tmpl.data()) == nullptr) {
        std::cerr << "bench_fleet: cannot create a shard directory\n";
        return 1;
      }
      const std::filesystem::path dir(tmpl);
      const auto start = std::chrono::steady_clock::now();
      const sim::ShardMerge merged = driver.run_forked(jobs, shards, dir);
      const double ms = now_ms_since(start);
      const bool identical =
          results_identical(merged.results, reference) &&
          sim::serialize_report(merged.report) == whole_bytes;
      shard_table.begin_row()
          .add_int(static_cast<long long>(shards))
          .add_double(ms, 1)
          .add_double(static_cast<double>(hubs) * 1000.0 / ms, 1)
          .add_double(serial_ms / ms, 2)
          .add(identical ? "yes" : "NO");
      std::filesystem::remove_all(dir);
      if (!identical) {
        std::cerr << "SHARD IDENTITY VIOLATION at " << shards << " shards\n";
        shard_table.print(std::cout);
        return 1;
      }
    }
    shard_table.print(std::cout);
    std::cout << "(merged AggregateReport compared byte-for-byte in serialized "
                 "form against the single-process run)\n";
  }

  // --- Part 5: metro coupling — coupled vs uncoupled throughput/spillover --
  // The same spatially generated fleet twice: once uncoupled (coupling
  // stripped, the pre-metro hot path) and once coupled (through-traffic,
  // CouplingBus exchange at every slot barrier, correlated fronts).  The
  // delta is the price of the coupling layer; the spillover columns are what
  // it buys.  The coupled run must be bit-identical across thread counts and
  // both GEMM placements.
  if (hubs < 2) {
    std::cout << "\n(skipping metro coupling part: needs --hubs >= 2)\n";
    return 0;
  }
  std::cout << "\n=== Metro coupling: " << hubs << " hubs, greedy fleet ===\n";
  spatial::MetroConfig metro_cfg;
  metro_cfg.num_hubs = hubs;
  metro_cfg.neighbors_per_hub = std::min<std::size_t>(3, hubs - 1);
  const spatial::MetroMap metro(metro_cfg, base_seed);
  const std::vector<sim::FleetJob> coupled_jobs = sim::make_metro_fleet_jobs(
      metro, registry, registry.keys(), days, sim::SchedulerKind::kGreedyPrice);
  std::vector<sim::FleetJob> uncoupled_jobs = coupled_jobs;
  for (sim::FleetJob& job : uncoupled_jobs) {
    job.env.coupling = core::HubCouplingConfig{};
    job.neighbors.clear();
  }

  std::vector<sim::HubRunResult> coupled_ref, uncoupled_results;
  const double coupled_ms = timed_run(coupled_jobs, 1, true, coupled_ref);
  const double uncoupled_ms = timed_run(uncoupled_jobs, 1, true, uncoupled_results);

  const std::size_t crew = thread_list.empty()
                               ? 1
                               : *std::max_element(thread_list.begin(), thread_list.end());
  std::vector<sim::HubRunResult> coupled_worker, coupled_coord;
  const double coupled_worker_ms =
      timed_run_gemm(coupled_jobs, crew, true, sim::LockstepGemm::kWorker, coupled_worker);
  const double coupled_coord_ms = timed_run_gemm(coupled_jobs, crew, true,
                                                 sim::LockstepGemm::kCoordinator,
                                                 coupled_coord);
  if (!results_identical(coupled_worker, coupled_ref) ||
      !results_identical(coupled_coord, coupled_ref)) {
    std::cerr << "DETERMINISM VIOLATION: coupled fleet differs across threads/GEMM\n";
    return 1;
  }

  const auto spill_totals = [](const std::vector<sim::HubRunResult>& results) {
    double exported = 0.0, served = 0.0;
    std::size_t outages = 0;
    for (const sim::HubRunResult& r : results) {
      exported += r.spill_exported_kwh;
      served += r.spill_served_kwh;
      outages += r.outage_slots;
    }
    return std::tuple<double, double, std::size_t>{exported, served, outages};
  };
  const auto [coupled_out, coupled_in, coupled_outages] = spill_totals(coupled_ref);

  TextTable metro_table({"mode", "wall ms", "kslots/s", "spill-out(kWh)", "spill-in(kWh)",
                         "outage slots", "bit-identical"});
  metro_table.begin_row()
      .add("uncoupled x1")
      .add_double(uncoupled_ms, 1)
      .add_double(static_cast<double>(hubs * slots) / uncoupled_ms, 1)
      .add_double(0.0, 1)
      .add_double(0.0, 1)
      .add_int(0)
      .add("reference");
  metro_table.begin_row()
      .add("coupled x1")
      .add_double(coupled_ms, 1)
      .add_double(static_cast<double>(hubs * slots) / coupled_ms, 1)
      .add_double(coupled_out, 1)
      .add_double(coupled_in, 1)
      .add_int(static_cast<long long>(coupled_outages))
      .add("reference");
  metro_table.begin_row()
      .add("coupled x" + std::to_string(crew) + " worker")
      .add_double(coupled_worker_ms, 1)
      .add_double(static_cast<double>(hubs * slots) / coupled_worker_ms, 1)
      .add_double(coupled_out, 1)
      .add_double(coupled_in, 1)
      .add_int(static_cast<long long>(coupled_outages))
      .add("yes");
  metro_table.begin_row()
      .add("coupled x" + std::to_string(crew) + " coordinator")
      .add_double(coupled_coord_ms, 1)
      .add_double(static_cast<double>(hubs * slots) / coupled_coord_ms, 1)
      .add_double(coupled_out, 1)
      .add_double(coupled_in, 1)
      .add_int(static_cast<long long>(coupled_outages))
      .add("yes");
  metro_table.print(std::cout);
  std::cout << "(coupling overhead: " << (coupled_ms / uncoupled_ms - 1.0) * 100.0
            << "% on the serial slot loop)\n";
  return 0;
}
