// Ablation — design-choice benchmarks from DESIGN.md Sec. 5:
//   1. ECT-DRL (PPO) vs rule-based schedulers (TOU / greedy price / random /
//      no battery) on one hub.
//   2. Renewables ablation: hub profit with and without the PV+WT plant.
//   3. Blackout-reserve ablation: profit cost of the Eq. 6 SoC floor.
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "core/policy_runner.hpp"
#include "policy/rule_policies.hpp"

#include <iostream>
#include <memory>

namespace {

double mean_profit(ecthub::core::EctHubEnv& env, ecthub::policy::Policy& pol,
                   std::size_t episodes) {
  return ecthub::stats::mean(ecthub::core::run_policy(env, pol, episodes));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto episodes = static_cast<std::size_t>(flags.get_int("episodes", 5));

  std::cout << "=== Ablation: scheduler, renewables and reserve choices ===\n\n";

  core::HubConfig hub = core::HubConfig::rural("AblationHub", 4242);
  // Small pack so the blackout-reserve floor actually constrains cycling.
  hub.battery.capacity_kwh = 50.0;
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = static_cast<std::size_t>(flags.get_int("episode-days", 30));
  const auto train_iters = static_cast<std::size_t>(flags.get_int("train-iters", 120));
  flags.check_unknown();
  // A mild always-evening discount schedule so the charging station is active.
  env_cfg.discount_by_hour.assign(24, false);
  for (std::size_t h = 18; h < 24; ++h) env_cfg.discount_by_hour[h] = true;

  // --- 1. Scheduler comparison -------------------------------------------
  std::cout << "--- Scheduler comparison (mean episode profit, $/episode) ---\n";
  TextTable sched_table({"Scheduler", "mean profit", "stddev"});
  std::vector<std::unique_ptr<policy::Policy>> policies;
  policies.push_back(std::make_unique<policy::NoBatteryPolicy>());
  policies.push_back(std::make_unique<policy::TouPolicy>());
  policies.push_back(std::make_unique<policy::GreedyPricePolicy>());
  policies.push_back(std::make_unique<policy::ForecastPolicy>());
  policies.push_back(std::make_unique<policy::RandomPolicy>(3));
  for (auto& s : policies) {
    core::EctHubEnv env(hub, env_cfg);
    const auto profits = core::run_policy(env, *s, episodes);
    sched_table.begin_row()
        .add(s->name())
        .add_double(stats::mean(profits), 2)
        .add_double(stats::stddev(profits), 2);
  }
  {
    core::DrlExperimentConfig drl;
    drl.env = env_cfg;
    drl.train_iterations = train_iters;
    drl.test_episodes = episodes;
    const auto result = core::run_hub_experiment(hub, env_cfg.discount_by_hour, drl,
                                                 "ECT-DRL");
    sched_table.begin_row()
        .add("ECT-DRL (PPO)")
        .add_double(result.avg_daily_reward * static_cast<double>(drl.env.episode_days), 2)
        .add("-");
  }
  sched_table.print(std::cout);

  // --- 2. Renewables ablation --------------------------------------------
  std::cout << "\n--- Renewables ablation (greedy scheduler) ---\n";
  TextTable ren_table({"Plant", "mean profit"});
  for (const auto& [label, plant] :
       std::vector<std::pair<std::string, renewables::PlantConfig>>{
           {"PV + WT (rural)", renewables::PlantConfig::rural()},
           {"PV only (urban)", renewables::PlantConfig::urban()},
           {"none (prior work [7])", renewables::PlantConfig::none()}}) {
    core::HubConfig h = hub;
    h.plant = plant;
    core::EctHubEnv env(h, env_cfg);
    policy::GreedyPricePolicy greedy;
    ren_table.begin_row().add(label).add_double(mean_profit(env, greedy, episodes), 2);
  }
  ren_table.print(std::cout);

  // --- 3. Reserve ablation -------------------------------------------------
  std::cout << "\n--- Blackout-reserve ablation (greedy scheduler) ---\n";
  TextTable res_table({"Recovery time T_r", "mean profit"});
  for (const double tr : {0.0, 4.0, 12.0}) {
    core::HubConfig h = hub;
    h.recovery_hours = tr;
    core::EctHubEnv env(h, env_cfg);
    policy::GreedyPricePolicy greedy;
    res_table.begin_row()
        .add(std::to_string(static_cast<int>(tr)) + " h")
        .add_double(mean_profit(env, greedy, episodes), 2);
  }
  res_table.print(std::cout);
  std::cout << "\nLarger reserves shrink the tradable SoC window, trading profit for\n"
               "blackout resilience (Eq. 6); renewables raise profit by displacing\n"
               "grid imports — the design points DESIGN.md Sec. 5 calls out.\n";
  return 0;
}
