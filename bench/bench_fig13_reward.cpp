// Fig. 13 — per-day reward of four example hubs over a 30-day test episode,
// one ECT-DRL model per pricing method.
#include "drl_common.hpp"

#include "common/csv.hpp"
#include "common/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  std::cout << "=== Fig. 13: total reward of four example hubs ===\n";
  benchx::EctPriceSetup setup = benchx::make_setup(flags, 0.3);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 101));

  std::vector<core::HubConfig> fleet = core::default_fleet();
  benchx::align_fleet_with_stations(fleet, setup);
  const benchx::MethodSchedules schedules =
      benchx::train_pricing_stage(setup, fleet.size(), seed);
  const core::DrlExperimentConfig drl_cfg = benchx::make_drl_config(flags);
  const std::string csv_dir = flags.get_string("csv", "");
  flags.check_unknown();

  for (std::size_t h = 0; h < 4; ++h) {
    std::cout << "\n--- " << fleet[h].name << " ---\n";
    std::map<std::string, core::HubMethodResult> results;
    for (const auto& method : benchx::method_order()) {
      results.emplace(method, core::run_hub_experiment(fleet[h], schedules.at(method).at(h),
                                                       drl_cfg, method));
    }
    TextTable table({"day", "Ours", "OR", "IPS", "DR"});
    const std::size_t days = results.at("Ours").daily_rewards.size();
    for (std::size_t d = 0; d < days; d += 3) {
      table.begin_row().add_int(static_cast<long long>(d));
      for (const auto& method : benchx::method_order()) {
        table.add_double(results.at(method).daily_rewards[d], 2);
      }
    }
    table.print(std::cout);
    double mean_ours = 0, mean_best_baseline = 0;
    for (const auto& method : benchx::method_order()) {
      const auto& r = results.at(method);
      double mean = 0;
      for (double x : r.daily_rewards) mean += x;
      mean /= static_cast<double>(r.daily_rewards.size());
      if (method == "Ours") {
        mean_ours = mean;
      } else {
        mean_best_baseline = std::max(mean_best_baseline, mean);
      }
      std::cout << method << " mean daily reward: " << mean << "\n";
    }
    std::cout << (mean_ours >= mean_best_baseline ? "[shape OK] " : "[shape MISS] ")
              << "Ours vs best baseline: " << mean_ours << " vs " << mean_best_baseline << "\n";

    if (!csv_dir.empty()) {
      std::vector<double> day_axis(days);
      for (std::size_t d = 0; d < days; ++d) day_axis[d] = static_cast<double>(d);
      write_csv(csv_dir + "/fig13_" + fleet[h].name + ".csv",
                {"day", "ours", "or", "ips", "dr"},
                {day_axis, results.at("Ours").daily_rewards, results.at("OR").daily_rewards,
                 results.at("IPS").daily_rewards, results.at("DR").daily_rewards});
    }
  }
  std::cout << "\nPaper shape: the Ours curve sits above the baselines for most days and\n"
               "has the best average reward on each example hub.\n";
  return 0;
}
