// Shared setup for the ECT-DRL experiment benches (Table III, Fig. 13):
// trains the pricing stage (ECT-Price + the three baselines), converts each
// method's per-item discount decisions into per-hub weekly discount
// schedules, and provides the PPO experiment configuration.
#pragma once

#include "ectprice_common.hpp"

#include "core/fleet.hpp"
#include "core/hub_config.hpp"

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ecthub::benchx {

/// Majority vote of per-item discount decisions into an hourly schedule for
/// one station — each method's own decision rule (expected gain for
/// ECT-Price, positive-uplift threshold for the baselines) decides every
/// hour, exactly how the method would be deployed.
inline std::vector<bool> flags_by_hour(const std::vector<causal::Item>& items,
                                       const std::vector<bool>& decisions,
                                       std::size_t station_id) {
  std::vector<std::size_t> yes(24, 0), total(24, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].station_id != station_id) continue;
    ++total[items[i].hour];
    if (decisions[i]) ++yes[items[i].hour];
  }
  std::vector<bool> flags(24, false);
  for (std::size_t h = 0; h < 24; ++h) {
    flags[h] = total[h] > 0 && 2 * yes[h] > total[h];
  }
  return flags;
}

/// Discount schedules per method per station: schedules["Ours"][station].
using MethodSchedules = std::map<std::string, std::vector<std::vector<bool>>>;

/// Trains all four pricing methods and derives the per-station schedules.
/// `discount` is the fraction the hub will apply (drives ECT-Price's
/// expected-gain decision rule).
inline MethodSchedules train_pricing_stage(const EctPriceSetup& setup, std::size_t num_stations,
                                           std::uint64_t seed, double discount = 0.2) {
  MethodSchedules schedules;

  std::cout << "training ECT-Price...\n";
  const auto preds = train_ectprice_ensemble(setup, seed, 3);
  const auto our_decisions = causal::decide_by_strata(preds, discount);
  for (std::size_t s = 0; s < num_stations; ++s) {
    schedules["Ours"].push_back(flags_by_hour(setup.test, our_decisions, s));
  }

  std::vector<std::unique_ptr<causal::UpliftModel>> baselines;
  baselines.push_back(
      std::make_unique<causal::OutcomeRegression>(setup.uplift_cfg, Rng(seed + 20)));
  baselines.push_back(
      std::make_unique<causal::InversePropensityScoring>(setup.uplift_cfg, Rng(seed + 30)));
  baselines.push_back(std::make_unique<causal::DoublyRobust>(setup.uplift_cfg, Rng(seed + 40)));
  for (auto& b : baselines) {
    std::cout << "training " << b->name() << "...\n";
    b->fit(setup.train);
    const auto decisions = causal::decide_by_uplift(b->uplift(setup.test));
    for (std::size_t s = 0; s < num_stations; ++s) {
      schedules[b->name()].push_back(flags_by_hour(setup.test, decisions, s));
    }
  }
  return schedules;
}

/// PPO experiment config from bench flags:
///   --episode-days (30), --train-iters (12), --test-episodes (3),
///   --ppo-episodes (6 per iteration)
inline core::DrlExperimentConfig make_drl_config(const CliFlags& flags) {
  core::DrlExperimentConfig cfg;
  cfg.env.episode_days = static_cast<std::size_t>(flags.get_int("episode-days", 30));
  cfg.env.discount_fraction = flags.get_double("discount", 0.2);
  cfg.ppo.episodes_per_iteration =
      static_cast<std::size_t>(flags.get_int("ppo-episodes", 6));
  cfg.train_iterations = static_cast<std::size_t>(flags.get_int("train-iters", 12));
  cfg.test_episodes = static_cast<std::size_t>(flags.get_int("test-episodes", 3));
  return cfg;
}

/// Aligns each fleet hub's EV behaviour with the dataset station whose
/// charging history trained the pricing stage — the schedules then face the
/// same demand structure they were optimized for.
inline void align_fleet_with_stations(std::vector<core::HubConfig>& fleet,
                                      const EctPriceSetup& setup) {
  for (std::size_t i = 0; i < fleet.size() && i < setup.station_profiles.size(); ++i) {
    const auto& p = setup.station_profiles[i];
    fleet[i].ev_popularity = p.popularity();
    fleet[i].ev_evening_sensitivity = p.evening_sensitivity();
    fleet[i].ev_evening_commuter = p.evening_commuter();
  }
}

inline const std::vector<std::string>& method_order() {
  static const std::vector<std::string> order = {"Ours", "OR", "IPS", "DR"};
  return order;
}

}  // namespace ecthub::benchx
