// Table III — average daily rewards for the 12-hub fleet under the four
// pricing methods, each driving its own ECT-DRL scheduler.
#include "drl_common.hpp"

#include "common/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  std::cout << "=== Table III: average daily rewards for 12 ECT-Hubs ===\n";
  benchx::EctPriceSetup setup = benchx::make_setup(flags, 0.3);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 101));
  const auto num_hubs = static_cast<std::size_t>(flags.get_int("hubs", 12));

  std::vector<core::HubConfig> fleet = core::default_fleet();
  benchx::align_fleet_with_stations(fleet, setup);
  const benchx::MethodSchedules schedules =
      benchx::train_pricing_stage(setup, fleet.size(), seed);
  const core::DrlExperimentConfig drl_cfg = benchx::make_drl_config(flags);
  flags.check_unknown();

  // rewards[method][hub]
  std::map<std::string, std::vector<double>> rewards;
  for (std::size_t h = 0; h < std::min(num_hubs, fleet.size()); ++h) {
    std::cout << "\ntraining ECT-DRL on " << fleet[h].name << " (4 price inputs)...\n";
    for (const auto& method : benchx::method_order()) {
      const auto result =
          core::run_hub_experiment(fleet[h], schedules.at(method).at(h), drl_cfg, method);
      rewards[method].push_back(result.avg_daily_reward);
      std::cout << "  " << method << ": avg daily reward " << result.avg_daily_reward << "\n";
    }
  }

  std::vector<std::string> header = {"Methods"};
  for (std::size_t h = 0; h < rewards.begin()->second.size(); ++h) {
    header.push_back("Hub" + std::to_string(h + 1));
  }
  header.push_back("Mean");
  TextTable table(header);
  for (const auto& method : benchx::method_order()) {
    table.begin_row().add(method);
    double acc = 0.0;
    for (double r : rewards.at(method)) {
      table.add_double(r, 2);
      acc += r;
    }
    table.add_double(acc / static_cast<double>(rewards.at(method).size()), 2);
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: Ours achieves the highest average daily reward on every\n"
               "hub (paper Table III: e.g. Hub1 565.19 vs 529.57/498.63/535.58).\n"
               "Absolute magnitudes differ (synthetic substrate, $ per day).\n";
  return 0;
}
