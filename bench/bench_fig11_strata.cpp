// Fig. 11 — strata probability over the day for four example stations.
#include "ectprice_common.hpp"

#include "common/csv.hpp"
#include "common/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  std::cout << "=== Fig. 11: strata prediction of four example stations ===\n";
  benchx::EctPriceSetup setup = benchx::make_setup(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 101));
  const std::string csv_dir = flags.get_string("csv", "");
  flags.check_unknown();

  causal::EctPriceModel model(setup.price_cfg, Rng(seed + 10));
  model.fit(setup.train);
  const auto preds = model.predict(setup.test);

  for (std::size_t station = 0; station < 4; ++station) {
    const auto curves = causal::strata_curves_for_station(setup.test, preds, station);
    std::cout << "\n--- Station " << (station + 1) << " ---\n";
    TextTable table({"hour", "P(Incentive)", "P(Always)", "P(None)"});
    for (std::size_t h = 0; h < 24; h += 2) {
      table.begin_row()
          .add_int(static_cast<long long>(h))
          .add_double(curves.p_incentive[h], 3)
          .add_double(curves.p_always[h], 3)
          .add_double(curves.p_none[h], 3);
    }
    table.print(std::cout);
    if (!csv_dir.empty()) {
      std::vector<double> hours(24);
      for (std::size_t h = 0; h < 24; ++h) hours[h] = static_cast<double>(h);
      write_csv(csv_dir + "/fig11_station" + std::to_string(station + 1) + ".csv",
                {"hour", "p_incentive", "p_always", "p_none"},
                {hours, curves.p_incentive, curves.p_always, curves.p_none});
    }
  }
  std::cout << "\nPaper shape: Incentive probability concentrates at night (esp. the\n"
               "evening), Always dominates daytime slots, None is largest overall.\n";
  return 0;
}
