// Decision-service benchmark: request latency percentiles and throughput of
// the micro-batched DecisionService versus offered load and batching window.
//
// A closed-loop load generator drives the service: each client thread
// submits one observation, blocks for its action, checks it against the
// decide_batch oracle, and immediately submits the next — so offered load
// scales with the client count.  The sweep crosses --clients-list with
// --wait-list (the max_wait_us batching window) on one shared ECT-DRL actor
// and reports, per cell, the flush batch shape (mean batch size, share of
// full-batch flushes) next to the enqueue->scatter latency percentiles the
// service itself recorded through its injected clock.
//
// Reading the table: at 1 client every flush is a batch of one, so the
// latency column is the pure single-row forward cost plus wakeup overhead —
// the floor.  More clients raise the mean batch size (one GEMM amortized
// over more requests, higher throughput) while the batching window bounds
// how long a lone request waits for peers: window 0 never waits, larger
// windows trade tail latency for fuller batches.
//
//   $ ./bench_serve [--requests 2000] [--clients-list 1,4,16]
//                   [--wait-list 0,100,400] [--max-batch 32] [--seed 7]
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "policy/drl_policy.hpp"
#include "policy/observation.hpp"
#include "serve/decision_service.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <numbers>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace ecthub;

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::size_t> parse_size_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::stoul(tok));
  if (out.empty()) throw std::invalid_argument("empty list: " + csv);
  return out;
}

nn::Matrix fake_obs_pool(const policy::ObservationLayout& layout, Rng& rng,
                         std::size_t rows) {
  nn::Matrix m(rows, layout.dim());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < layout.soc_index(); ++i) m(r, i) = rng.uniform(0.0, 1.5);
    m(r, layout.soc_index()) = rng.uniform(0.0, 1.0);
    const double hour = static_cast<double>(r % 24);
    m(r, layout.hour_sin_index()) = std::sin(2.0 * std::numbers::pi * hour / 24.0);
    m(r, layout.hour_cos_index()) = std::cos(2.0 * std::numbers::pi * hour / 24.0);
  }
  return m;
}

struct CellResult {
  double wall_s = 0.0;
  std::uint64_t mismatches = 0;
  serve::ServiceStats stats;
};

// One sweep cell: `clients` closed-loop threads push `requests` total
// requests through a fresh service and every answer is checked against the
// decide_batch oracle on the spot.
CellResult run_cell(const std::shared_ptr<policy::Policy>& policy,
                    const nn::Matrix& obs, const std::vector<std::size_t>& expected,
                    std::size_t clients, std::size_t requests,
                    const serve::ServiceConfig& cfg) {
  serve::DecisionService service(policy, obs.cols(), cfg);
  std::atomic<std::uint64_t> mismatches{0};

  // Warm-up outside the timed window: ticket pool, workspace, matmul scratch.
  for (std::size_t r = 0; r < std::min<std::size_t>(obs.rows(), 2 * cfg.max_batch); ++r) {
    (void)service.decide({obs.data().data() + r * obs.cols(), obs.cols()});
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t share = requests / clients;
      for (std::size_t i = 0; i < share; ++i) {
        const std::size_t r = (t * share + i * 13) % obs.rows();
        const std::size_t action =
            service.decide({obs.data().data() + r * obs.cols(), obs.cols()});
        if (action != expected[r]) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  CellResult cell;
  cell.wall_s = std::chrono::duration<double>(t1 - t0).count();
  cell.mismatches = mismatches.load();
  cell.stats = service.stats();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto requests = static_cast<std::size_t>(flags.get_int("requests", 2000));
  const auto max_batch = static_cast<std::size_t>(flags.get_int("max-batch", 32));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::vector<std::size_t> clients_list =
      parse_size_list(flags.get_string("clients-list", "1,4,16"));
  const std::vector<std::size_t> wait_list =
      parse_size_list(flags.get_string("wait-list", "0,100,400"));
  flags.check_unknown();

  const policy::ObservationLayout layout;
  nn::Rng drl_rng(seed);
  policy::DrlPolicyConfig drl_cfg;
  drl_cfg.state_dim = layout.dim();
  auto policy = std::make_shared<policy::DrlPolicy>(drl_cfg, drl_rng);

  Rng obs_rng(seed + 1);
  const nn::Matrix obs = fake_obs_pool(layout, obs_rng, 256);
  std::vector<std::size_t> expected(obs.rows(), 0);
  policy->decide_batch(obs, std::span<std::size_t>(expected));

  std::cout << "bench_serve: ECT-DRL decision service, micro-batched decide(obs)\n"
            << "  requests/cell " << requests << ", max_batch " << max_batch
            << ", hardware_concurrency " << std::thread::hardware_concurrency()
            << "\n\n";

  TextTable table({"clients", "wait_us", "req/s", "mean_batch", "full%",
                   "p50_us", "p95_us", "p99_us", "max_us", "bitident"});
  std::uint64_t total_mismatches = 0;
  for (const std::size_t clients : clients_list) {
    for (const std::size_t wait_us : wait_list) {
      serve::ServiceConfig cfg;
      cfg.max_batch = max_batch;
      cfg.max_wait_us = wait_us;
      cfg.now_us = &steady_now_us;
      const CellResult cell = run_cell(policy, obs, expected, clients, requests, cfg);
      total_mismatches += cell.mismatches;
      const auto& s = cell.stats;
      const double full_pct =
          s.flushes > 0 ? 100.0 * static_cast<double>(s.full_batch_flushes) /
                              static_cast<double>(s.flushes)
                        : 0.0;
      table.begin_row()
          .add_int(static_cast<long long>(clients))
          .add_int(static_cast<long long>(wait_us))
          .add_double(static_cast<double>(requests) / cell.wall_s, 0)
          .add_double(s.mean_batch_size, 2)
          .add_double(full_pct, 1)
          .add_double(s.latency_p50_us, 1)
          .add_double(s.latency_p95_us, 1)
          .add_double(s.latency_p99_us, 1)
          .add_double(s.latency_max_us, 1)
          .add(cell.mismatches == 0 ? "ok" : "FAIL");
    }
  }
  table.print(std::cout);

  if (total_mismatches != 0) {
    std::cerr << "\nbench_serve: " << total_mismatches
              << " request(s) diverged from the decide_batch oracle\n";
    return 1;
  }
  std::cout << "\nAll " << (clients_list.size() * wait_list.size())
            << " cells bit-identical to decide_batch.\n";
  return 0;
}
