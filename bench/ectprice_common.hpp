// Shared setup for the ECT-Price experiment benches (Table II, Figs. 11-12):
// generates the charging dataset, splits it, and trains ECT-Price.
#pragma once

#include "causal/ect_price.hpp"
#include "causal/evaluate.hpp"
#include "causal/uplift.hpp"
#include "common/cli.hpp"
#include "ev/dataset.hpp"

#include <iostream>

namespace ecthub::benchx {

struct EctPriceSetup {
  std::vector<causal::Item> train;
  std::vector<causal::Item> test;
  causal::EctPriceConfig price_cfg;
  causal::UpliftConfig uplift_cfg;
  /// The dataset's per-station behaviour profiles; the DRL benches give each
  /// hub the profile its schedule was learned on (pipeline coherence).
  std::vector<ev::StrataProfile> station_profiles;
};

/// Builds the dataset and configs from bench flags:
///   --days (default 200), --epochs (10), --seed (101), --stations (12),
///   --confounder (unmeasured demand sigma; default_confounder if absent).
///
/// Two evaluation regimes share this setup (see EXPERIMENTS.md):
///   - Table II stresses pricing robustness under strong unmeasured
///     confounding (sigma = 0.5, the library default);
///   - the DRL pipeline benches (Table III / Fig. 13) use moderate
///     confounding (sigma = 0.3), where each method's own threshold rule
///     produces its deployable schedule.
inline EctPriceSetup make_setup(const CliFlags& flags,
                                double default_confounder = ev::DatasetConfig{}.demand_sigma) {
  EctPriceSetup s;
  ev::DatasetConfig dcfg;
  dcfg.num_stations = static_cast<std::size_t>(flags.get_int("stations", 12));
  dcfg.num_days = static_cast<std::size_t>(flags.get_int("days", 200));
  dcfg.demand_sigma = flags.get_double("confounder", default_confounder);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 101));
  const ev::ChargingDataset dataset(dcfg, Rng(seed));
  const auto split = dataset.split(0.8);
  s.train = causal::encode(split.train);
  s.test = causal::encode(split.test);
  s.station_profiles = dataset.profiles();

  causal::NcfConfig ncf;
  ncf.num_stations = dcfg.num_stations;
  ncf.embedding_dim = static_cast<std::size_t>(flags.get_int("embedding", 16));
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 10));
  s.price_cfg.ncf = ncf;
  // The multi-task stratification objective (products of heads under MSE)
  // converges more slowly than the baselines' direct regressions, so
  // ECT-Price trains longer by default (override with --price-epochs).
  s.price_cfg.epochs =
      static_cast<std::size_t>(flags.get_int("price-epochs", static_cast<int>(epochs * 3)));
  s.uplift_cfg.ncf = ncf;
  s.uplift_cfg.epochs = epochs;

  std::cout << "dataset: " << dcfg.num_stations << " stations x " << dcfg.num_days
            << " days -> train " << s.train.size() << ", test " << s.test.size()
            << " items\n";
  return s;
}

/// Trains a small ensemble of ECT-Price models (different seeds) and averages
/// their predicted strata distributions — variance reduction for the
/// higher-variance multi-task estimator.  Size via --ensemble (default 3).
inline std::vector<causal::StrataPrediction> train_ectprice_ensemble(
    const EctPriceSetup& setup, std::uint64_t seed, std::size_t ensemble_size) {
  std::vector<causal::StrataPrediction> mean;
  for (std::size_t e = 0; e < ensemble_size; ++e) {
    causal::EctPriceModel model(setup.price_cfg, Rng(seed + 10 + 1000 * e));
    model.fit(setup.train);
    const auto preds = model.predict(setup.test);
    if (mean.empty()) {
      mean = preds;
    } else {
      for (std::size_t i = 0; i < preds.size(); ++i) {
        mean[i].p_none += preds[i].p_none;
        mean[i].p_incentive += preds[i].p_incentive;
        mean[i].p_always += preds[i].p_always;
        mean[i].propensity += preds[i].propensity;
      }
    }
  }
  const double n = static_cast<double>(ensemble_size);
  for (auto& p : mean) {
    p.p_none /= n;
    p.p_incentive /= n;
    p.p_always /= n;
    p.propensity /= n;
  }
  return mean;
}

}  // namespace ecthub::benchx
