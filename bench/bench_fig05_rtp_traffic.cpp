// Fig. 5 — real-time electricity price and network traffic over 96 hours.
//
// The paper's measurement shows BS load positively correlated with RTP, with
// both peaking in the evening.  We regenerate the two series and report the
// correlation that motivates battery arbitrage.
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pricing/rtp.hpp"
#include "traffic/generator.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace ecthub;
  const CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 55));
  const std::string csv_dir = flags.get_string("csv", "");
  flags.check_unknown();

  std::cout << "=== Fig. 5: real-time pricing and network traffic (4 days) ===\n\n";

  const TimeGrid grid(4, 24);
  traffic::TrafficConfig tcfg;
  tcfg.area = traffic::AreaType::kResidential;
  traffic::TrafficGenerator tgen(tcfg, Rng(seed));
  const traffic::TrafficTrace trace = tgen.generate(grid);

  pricing::RtpConfig pcfg;
  pricing::RtpGenerator pgen(pcfg, Rng(seed + 1));
  const std::vector<double> rtp = pgen.generate(grid, trace.load_rate);

  TextTable table({"hour", "RTP ($/MWh)", "traffic (GB)"});
  for (std::size_t t = 0; t < grid.size(); t += 2) {
    table.begin_row()
        .add_int(static_cast<long long>(t))
        .add_double(rtp[t], 1)
        .add_double(trace.volume_gb[t], 1);
  }
  table.print(std::cout);

  const double corr = stats::pearson(rtp, trace.volume_gb);
  std::cout << "\nPearson(RTP, traffic) = " << corr << "\n";
  std::cout << "RTP range: [" << stats::min(rtp) << ", " << stats::max(rtp)
            << "] $/MWh; traffic range: [" << stats::min(trace.volume_gb) << ", "
            << stats::max(trace.volume_gb) << "] GB\n";
  std::cout << "Paper shape: load and price positively correlated, both peaking at\n"
               "night/evening (paper reports RTP ~50-130 $/MWh, traffic 20-160 GB).\n";

  if (!csv_dir.empty()) {
    std::vector<double> hours(grid.size());
    for (std::size_t t = 0; t < grid.size(); ++t) hours[t] = static_cast<double>(t);
    write_csv(csv_dir + "/fig05_rtp_traffic.csv", {"hour", "rtp", "traffic_gb"},
              {hours, rtp, trace.volume_gb});
  }
  return 0;
}
