#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecthub::lint {

namespace {

// ---------------------------------------------------------------------------
// Lexical preprocessing
// ---------------------------------------------------------------------------

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string strip_comments_and_literals(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::string out(content);
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" that terminates the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && i > 0 && content[i - 1] == 'R') {
          // Raw string: R"delim( ... )delim".  Capture the close sequence.
          std::size_t paren = content.find('(', i + 1);
          if (paren == std::string::npos) {
            out[i] = ' ';  // malformed; degrade to stripping the rest
            state = State::kString;
          } else {
            raw_close = ")" + content.substr(i + 1, paren - i - 1) + "\"";
            state = State::kRawString;
            out[i] = ' ';
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && i > 0 && is_ident(content[i - 1])) {
          // Digit separator (1'000'000) or suffix position — not a literal.
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (c == raw_close.front() && content.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) out[i + k] = ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Brace-context tracking
//
// One linear pass over the stripped text classifies every '{' by the
// statement text that precedes it (namespace / type / function / plain
// block) and records, for every character position, whether it sits inside a
// function body and whether that function is on the hot path.  Rule matching
// then reads those per-position flags, so a one-line hot function is handled
// exactly like a multi-line one.
// ---------------------------------------------------------------------------

struct CharFlags {
  bool in_function = false;
  bool in_hot = false;
};

struct Ctx {
  bool in_function = false;
  bool in_hot = false;
};

const std::vector<std::string> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "do", "else", "return", "try"};
const std::vector<std::string> kTypeKeywords = {"namespace", "class", "struct",
                                                "union", "enum", "concept", "requires"};

bool first_token_is(const std::string& stmt, const std::vector<std::string>& words) {
  const std::string t = trim(stmt);
  for (const std::string& w : words) {
    if (t.compare(0, w.size(), w) == 0 &&
        (t.size() == w.size() || !is_ident(t[w.size()]))) {
      return true;
    }
  }
  return false;
}

/// The identifier immediately before the first '(' of `stmt`; empty when the
/// brace does not open a function body (initializer list, lambda, control).
std::string function_name_of(const std::string& stmt) {
  std::string t = trim(stmt);
  if (t.empty()) return {};
  if (t.back() == '=' || t.back() == ',') return {};       // brace initializer
  if (t.find("](") != std::string::npos) return {};        // lambda introducer
  if (first_token_is(t, kControlKeywords)) return {};
  // Skip a leading template parameter list so `template <...> T f(...)` is
  // classified by what follows it.
  if (first_token_is(t, {"template"})) {
    std::size_t lt = t.find('<');
    if (lt != std::string::npos) {
      int depth = 0;
      std::size_t k = lt;
      for (; k < t.size(); ++k) {
        if (t[k] == '<') ++depth;
        if (t[k] == '>' && --depth == 0) break;
      }
      t = k < t.size() ? trim(t.substr(k + 1)) : std::string();
    }
  }
  if (first_token_is(t, kTypeKeywords)) return {};
  const std::size_t paren = t.find('(');
  if (paren == std::string::npos) return {};
  std::size_t e = paren;
  while (e > 0 && std::isspace(static_cast<unsigned char>(t[e - 1])) != 0) --e;
  std::size_t b = e;
  while (b > 0 && is_ident(t[b - 1])) --b;
  if (b == e) return {};
  std::string name = t.substr(b, e - b);
  if (first_token_is(name, kControlKeywords) || first_token_is(name, kTypeKeywords)) {
    return {};
  }
  return name;
}

bool is_hot_name(const std::string& name) {
  if (name == "decide_rows" || name == "act_rows") return true;
  static const std::string kSuffix = "_into";
  return name.size() > kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0;
}

/// Non-const `static` / `thread_local` statement check (function-locals only;
/// the caller guarantees function context).  Returns true when the statement
/// declares mutable static-duration state.
bool is_mutable_static_local(const std::string& stmt) {
  std::string t = trim(stmt);
  bool saw_static = false;
  for (;;) {
    if (first_token_is(t, {"static"})) {
      saw_static = true;
      t = trim(t.substr(6));
    } else if (first_token_is(t, {"thread_local"})) {
      saw_static = true;
      t = trim(t.substr(12));
    } else {
      break;
    }
  }
  if (!saw_static) return false;
  // `static_assert`, member-function-like uses, etc. never reach here: the
  // loop above only strips whole keywords.
  if (first_token_is(t, {"const", "constexpr", "constinit"})) return false;
  // `static const`-qualified pointers (`static X* const p`) stay rare enough
  // to go through the allowlist instead of complicating the grammar.
  return true;
}

struct ScanResult {
  std::vector<CharFlags> flags;          // per character of the stripped text
  std::vector<std::pair<std::size_t, std::size_t>> static_locals;  // (pos, unused)
};

ScanResult scan_contexts(const std::string& stripped) {
  ScanResult r;
  r.flags.resize(stripped.size());
  std::vector<Ctx> stack;
  std::string stmt;
  std::size_t stmt_start = 0;  // position of the first meaningful char
  bool stmt_has_content = false;

  auto current = [&]() -> Ctx {
    return stack.empty() ? Ctx{} : stack.back();
  };
  auto flush_statement = [&](bool opening_brace) {
    (void)opening_brace;
    if (stmt_has_content && current().in_function && is_mutable_static_local(stmt)) {
      r.static_locals.emplace_back(stmt_start, 0);
    }
  };

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '{') {
      flush_statement(true);
      const std::string name = function_name_of(stmt);
      Ctx next = current();
      if (!name.empty() && !next.in_function) {
        // A parenthesized signature at namespace/class scope opens a
        // function body.  Nested braces (blocks, lambdas, local types)
        // inherit the enclosing function's flags.
        next.in_function = true;
        next.in_hot = is_hot_name(name);
      }
      stack.push_back(next);
      stmt.clear();
      stmt_has_content = false;
    } else if (c == '}') {
      flush_statement(false);
      if (!stack.empty()) stack.pop_back();
      stmt.clear();
      stmt_has_content = false;
    } else if (c == ';') {
      flush_statement(false);
      stmt.clear();
      stmt_has_content = false;
    } else {
      if (!stmt_has_content && std::isspace(static_cast<unsigned char>(c)) == 0) {
        stmt_has_content = true;
        stmt_start = i;
      }
      if (stmt_has_content) stmt += c;
    }
    r.flags[i] = CharFlags{current().in_function, current().in_hot};
  }
  return r;
}

// ---------------------------------------------------------------------------
// Token search helpers
// ---------------------------------------------------------------------------

/// All positions where `token` occurs as a whole word in `text`.
std::vector<std::size_t> word_occurrences(const std::string& text, const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// Positions of `token(` as a whole word (whitespace allowed before '(').
std::vector<std::size_t> call_occurrences(const std::string& text, const std::string& token) {
  std::vector<std::size_t> hits;
  for (std::size_t pos : word_occurrences(text, token)) {
    std::size_t k = pos + token.size();
    while (k < text.size() && std::isspace(static_cast<unsigned char>(text[k])) != 0) ++k;
    if (k < text.size() && text[k] == '(') hits.push_back(pos);
  }
  return hits;
}

/// The member-access receiver chain ending just before position `pos` (which
/// points at the method name, i.e. after '.' or '->').  "ws.probs" for
/// "ws.probs.resize", "scratch->trunk" for "scratch->trunk.resize_zeroed".
std::string receiver_chain(const std::string& text, std::size_t pos) {
  if (pos == 0) return {};
  std::size_t e = pos;
  // Step over the '.' or '->' that separates receiver from method.
  if (text[e - 1] == '.') {
    --e;
  } else if (e >= 2 && text[e - 1] == '>' && text[e - 2] == '-') {
    e -= 2;
  } else {
    return {};  // unqualified call — no receiver to inspect
  }
  std::size_t b = e;
  while (b > 0) {
    const char p = text[b - 1];
    if (is_ident(p) || p == '.' || p == ')' || p == ']') {
      --b;
    } else if (p == '>' && b >= 2 && text[b - 2] == '-') {
      b -= 2;
    } else {
      break;
    }
  }
  return text.substr(b, e - b);
}

/// Workspace / output-buffer receivers are the sanctioned warm-up-growth
/// targets of the `*_into` contract: caller-owned scratch reused across
/// calls, where a steady-state resize is a no-op.  Matching works on the
/// identifier components of the chain ("ws", "scratch->trunk", "out_ghi"),
/// never raw substrings — "rows" must not pass as "ws".
bool is_workspace_receiver(std::string chain) {
  std::transform(chain.begin(), chain.end(), chain.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  std::vector<std::string> parts;
  std::string cur;
  for (char ch : chain) {
    if (is_ident(ch)) {
      cur += ch;
    } else if (!cur.empty()) {
      parts.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  auto starts = [](const std::string& s, const char* p) {
    return s.rfind(p, 0) == 0;
  };
  auto ends = [](const std::string& s, const char* p) {
    const std::string suf(p);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
  };
  for (const std::string& c : parts) {
    if (c == "ws" || starts(c, "ws_") || ends(c, "_ws")) return true;
    if (c.find("workspace") != std::string::npos) return true;
    if (c.find("scratch") != std::string::npos) return true;
    if (c.find("buf") != std::string::npos) return true;
    if (c == "out" || starts(c, "out_") || starts(c, "output") || ends(c, "_out")) {
      return true;
    }
  }
  return false;
}

bool is_header_path(const std::string& path) {
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
    const std::string e(ext);
    if (path.size() > e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

std::size_t line_of(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  // line_starts[k] is the offset of line k+1; binary search for pos.
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::string excerpt_of(const std::string& content,
                       const std::vector<std::size_t>& line_starts, std::size_t line) {
  const std::size_t b = line_starts[line - 1];
  std::size_t e = content.find('\n', b);
  if (e == std::string::npos) e = content.size();
  return trim(content.substr(b, e - b));
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path, const std::string& content) {
  const std::string stripped = strip_comments_and_literals(content);
  const ScanResult scan = scan_contexts(stripped);

  std::vector<std::size_t> line_starts;
  line_starts.push_back(0);
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') line_starts.push_back(i + 1);
  }

  std::vector<Finding> findings;
  auto add = [&](std::size_t pos, const std::string& rule, const std::string& message) {
    const std::size_t line = line_of(line_starts, pos);
    findings.push_back(Finding{path, line, rule, message,
                               excerpt_of(content, line_starts, line)});
  };

  // --- determinism: hidden entropy sources, anywhere -----------------------
  struct TokenRule {
    const char* token;
    bool call_only;  // must be followed by '('
    const char* rule;
    const char* message;
  };
  const TokenRule kEntropy[] = {
      {"rand", true, "determinism/rand",
       "std::rand draws from hidden global state; use an ecthub::Rng seeded via mix_seed"},
      {"srand", true, "determinism/rand",
       "srand mutates hidden global state; use an ecthub::Rng seeded via mix_seed"},
      {"random_device", false, "determinism/random-device",
       "std::random_device is nondeterministic entropy; seed Rng streams via mix_seed"},
      {"time", true, "determinism/wall-clock",
       "wall-clock time makes results irreproducible; derive all variation from config seeds"},
      {"getenv", false, "determinism/getenv",
       "environment lookups make results host-dependent; thread configuration explicitly"},
  };
  for (const TokenRule& tr : kEntropy) {
    const auto hits = tr.call_only ? call_occurrences(stripped, tr.token)
                                   : word_occurrences(stripped, tr.token);
    for (std::size_t pos : hits) add(pos, tr.rule, tr.message);
  }
  {
    // Any `..._clock::now` (steady_clock, system_clock, high_resolution_clock).
    std::size_t pos = 0;
    const std::string needle = "_clock::now";
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      add(pos, "determinism/wall-clock",
          "clock reads make results irreproducible; benchmarks live in bench/, not src/");
      pos += needle.size();
    }
  }

  // --- determinism: mutable static-duration function-locals ----------------
  for (const auto& [pos, unused] : scan.static_locals) {
    (void)unused;
    add(pos, "determinism/static-local",
        "non-const static/thread_local function-local is hidden mutable state; "
        "hoist it into a member or pass it explicitly (PR 5's checkpoint-load bug)");
  }

  // --- hot-path allocation hygiene -----------------------------------------
  auto hot_at = [&](std::size_t pos) {
    return pos < scan.flags.size() && scan.flags[pos].in_hot;
  };
  for (std::size_t pos : word_occurrences(stripped, "new")) {
    if (hot_at(pos)) {
      add(pos, "hotpath/new",
          "operator new inside a *_into/decide_rows/act_rows body; allocate in the "
          "constructor or workspace instead");
    }
  }
  for (const char* maker : {"make_unique", "make_shared"}) {
    for (std::size_t pos : word_occurrences(stripped, maker)) {
      if (hot_at(pos)) {
        add(pos, "hotpath/make-owning",
            "owning allocation inside a hot-path body; construct it outside the "
            "steady-state loop");
      }
    }
  }
  for (std::size_t pos : word_occurrences(stripped, "string")) {
    // `std::string` as a token — construction or declaration.  Signatures are
    // scanned before their '{', so a (cold-path legal) const-ref parameter in
    // a hot function's signature never reaches here.
    const bool qualified = pos >= 5 && stripped.compare(pos - 5, 5, "std::") == 0;
    if (qualified && hot_at(pos)) {
      add(pos, "hotpath/string-construction",
          "std::string inside a hot-path body allocates; format outside the loop or "
          "use a preallocated buffer");
    }
  }
  for (const char* grower :
       {"push_back", "emplace_back", "resize", "resize_zeroed", "reserve"}) {
    for (std::size_t pos : call_occurrences(stripped, grower)) {
      if (!hot_at(pos)) continue;
      if (is_workspace_receiver(receiver_chain(stripped, pos))) continue;
      add(pos, "hotpath/container-growth",
          std::string(grower) +
              " on a non-workspace receiver inside a hot-path body; grow only "
              "caller-owned workspace/output buffers (warm-up idiom)");
    }
  }

  // --- header hygiene ------------------------------------------------------
  if (is_header_path(path)) {
    // First meaningful line must be `#pragma once` or open an include guard.
    std::istringstream lines(stripped);
    std::string raw;
    std::size_t lineno = 0;
    bool guarded = false;
    bool saw_code = false;
    std::size_t first_code_line = 1;
    while (std::getline(lines, raw)) {
      ++lineno;
      const std::string t = trim(raw);
      if (t.empty()) continue;
      if (t.compare(0, 12, "#pragma once") == 0 || t.compare(0, 7, "#ifndef") == 0 ||
          t.compare(0, 9, "#if !defi") == 0) {
        guarded = true;
      } else {
        saw_code = true;
        first_code_line = lineno;
      }
      break;
    }
    if (!guarded) {
      findings.push_back(Finding{
          path, saw_code ? first_code_line : 1, "header/missing-guard",
          "header must start with #pragma once (or an include guard) before any code",
          saw_code ? excerpt_of(content, line_starts, first_code_line) : std::string()});
    }
    for (std::size_t pos : word_occurrences(stripped, "using")) {
      std::size_t k = pos + 5;
      while (k < stripped.size() && std::isspace(static_cast<unsigned char>(stripped[k])) != 0) {
        ++k;
      }
      if (stripped.compare(k, 9, "namespace") != 0) continue;
      const bool in_function = pos < scan.flags.size() && scan.flags[pos].in_function;
      if (!in_function) {
        add(pos, "header/using-namespace",
            "using-namespace at namespace scope in a header leaks into every includer");
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

namespace {

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

bool skip_directory(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return (!name.empty() && name.front() == '.') || name.rfind("build", 0) == 0 ||
         name == "CMakeFiles";
}

std::vector<std::string> collect_files(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root);
    return files;
  }
  if (!fs::is_directory(root)) {
    throw std::runtime_error("ecthub_lint: no such file or directory: " + root);
  }
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ecthub_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<Finding> all;
  for (const std::string& file : collect_files(root)) {
    std::vector<Finding> fs = lint_source(file, read_file(file));
    all.insert(all.end(), fs.begin(), fs.end());
  }
  return all;
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

namespace {

/// True when `path` ends with repo-relative `suffix` on a path-component
/// boundary ("src/sim/fleet_runner.cpp" matches "/root/repo/src/sim/…").
bool path_matches(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  return path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/';
}

}  // namespace

bool Allowlist::parse(std::istream& in, Allowlist& out, std::string& error) {
  out.entries_.clear();
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const std::size_t p1 = t.find('|');
    const std::size_t p2 = p1 == std::string::npos ? std::string::npos : t.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      error = "allowlist line " + std::to_string(lineno) +
              ": expected `path | needle | justification`";
      return false;
    }
    AllowEntry e;
    e.file = trim(t.substr(0, p1));
    e.needle = trim(t.substr(p1 + 1, p2 - p1 - 1));
    e.reason = trim(t.substr(p2 + 1));
    e.ordinal = lineno;
    if (e.file.empty() || e.needle.empty() || e.reason.empty()) {
      error = "allowlist line " + std::to_string(lineno) +
              ": every entry needs a path, a needle and a written justification";
      return false;
    }
    out.entries_.push_back(std::move(e));
  }
  return true;
}

bool Allowlist::load(const std::string& path, Allowlist& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open allowlist: " + path;
    return false;
  }
  return parse(in, out, error);
}

bool Allowlist::suppresses(const Finding& f) const {
  for (const AllowEntry& e : entries_) {
    if (path_matches(f.file, e.file) && f.excerpt.find(e.needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> apply_allowlist(std::vector<Finding> findings, const Allowlist& allow,
                                     std::vector<bool>* used) {
  if (used != nullptr) used->assign(allow.entries().size(), false);
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (std::size_t i = 0; i < allow.entries().size(); ++i) {
      const AllowEntry& e = allow.entries()[i];
      if (path_matches(f.file, e.file) && f.excerpt.find(e.needle) != std::string::npos) {
        suppressed = true;
        if (used != nullptr) (*used)[i] = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  return kept;
}

std::vector<AllowEntry> stale_entries(const Allowlist& allow, const std::string& root) {
  const std::vector<std::string> files = collect_files(root);
  std::vector<AllowEntry> stale;
  for (const AllowEntry& e : allow.entries()) {
    bool matched = false;
    for (const std::string& file : files) {
      if (!path_matches(file, e.file)) continue;
      const std::string content = read_file(file);
      if (content.find(e.needle) != std::string::npos) {
        matched = true;
        break;
      }
    }
    if (!matched) stale.push_back(e);
  }
  return stale;
}

}  // namespace ecthub::lint
