// ecthub_lint CLI: scan source trees for repo-invariant violations.
//
//   ecthub_lint [--allowlist FILE] [--check-allowlist] PATH...
//
// Exit status: 0 clean, 1 findings (or stale allowlist entries under
// --check-allowlist), 2 usage or I/O error.  Output is one line per finding,
// `file:line: [rule] message`, grep- and editor-friendly.
#include "lint.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ecthub_lint [--allowlist FILE] [--check-allowlist] PATH...\n"
               "  --allowlist FILE   suppress findings matching FILE's entries\n"
               "                     (`path | needle | justification` per line)\n"
               "  --check-allowlist  additionally fail if any allowlist entry no\n"
               "                     longer matches a real source line (stale)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string allowlist_path;
  bool check_allowlist = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--check-allowlist") {
      check_allowlist = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "ecthub_lint: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  ecthub::lint::Allowlist allow;
  if (!allowlist_path.empty()) {
    std::string error;
    if (!ecthub::lint::Allowlist::load(allowlist_path, allow, error)) {
      std::fprintf(stderr, "ecthub_lint: %s\n", error.c_str());
      return 2;
    }
  }

  std::size_t total = 0;
  std::size_t suppressed = 0;
  std::size_t stale = 0;
  try {
    for (const std::string& root : roots) {
      std::vector<ecthub::lint::Finding> findings = ecthub::lint::lint_tree(root);
      const std::size_t before = findings.size();
      findings = ecthub::lint::apply_allowlist(std::move(findings), allow);
      suppressed += before - findings.size();
      for (const ecthub::lint::Finding& f : findings) {
        std::printf("%s:%zu: [%s] %s\n      > %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str(), f.excerpt.c_str());
      }
      total += findings.size();
      if (check_allowlist) {
        for (const ecthub::lint::AllowEntry& e :
             ecthub::lint::stale_entries(allow, root)) {
          std::printf("%s (allowlist line %zu): stale entry — needle `%s` matches no "
                      "source line; delete or update it\n",
                      e.file.c_str(), e.ordinal, e.needle.c_str());
          ++stale;
        }
      }
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "ecthub_lint: %s\n", ex.what());
    return 2;
  }

  std::printf("ecthub_lint: %zu finding(s), %zu suppressed by allowlist%s\n", total,
              suppressed,
              check_allowlist ? (", " + std::to_string(stale) + " stale allowlist entr" +
                                 (stale == 1 ? "y" : "ies"))
                                    .c_str()
                              : "");
  return (total > 0 || stale > 0) ? 1 : 0;
}
