// ecthub_lint: repo-specific invariant linter.
//
// Every parallel path in this engine is pinned bit-identical to its serial
// reference, and the zero-allocation episode loop is what makes fleet-scale
// batching affordable.  Those guarantees rest on source-level invariants the
// type system cannot express:
//
//  * determinism — no hidden entropy sources (std::rand, std::random_device,
//    wall clocks, environment variables) and no mutable static state inside
//    functions.  Every stochastic stream must be an Rng seeded via mix_seed
//    from the experiment configuration; a single `static thread_local`
//    scratch RNG (the PR 5 checkpoint-load bug) silently makes results
//    history-dependent.
//  * hot-path allocation hygiene — functions on the steady-state episode
//    path (the `*_into` family, `decide_rows`, `act_rows`) must not allocate:
//    no `new`, no make_unique/make_shared, no std::string construction, and
//    no push_back/emplace_back/reserve/resize on anything that is not a
//    caller-owned workspace or output buffer (warm-up growth of reused
//    scratch is the sanctioned idiom).
//  * header hygiene — every header declares `#pragma once` (or a classic
//    include guard) before any code, and never opens `using namespace` at
//    namespace scope.
//
// The linter is deliberately a lexical scanner, not a compiler frontend: it
// strips comments and string literals, tracks brace contexts well enough to
// know "inside a function body" and "inside a hot-path function", and pattern
// matches the stripped text.  That is exactly the right power level for CI on
// an image with no clang tooling — fast, dependency-free, and every rule is
// fixture-tested against the repo's real idioms (tests/test_lint.cpp).
// Justified exceptions live in tools/lint_allowlist.txt, one line each, and a
// stale-entry detector keeps that file honest.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ecthub::lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string file;     ///< path as passed to the scanner
  std::size_t line = 0; ///< 1-based line number
  std::string rule;     ///< stable rule id, e.g. "determinism/static-local"
  std::string message;  ///< human-readable explanation
  std::string excerpt;  ///< the offending source line, whitespace-trimmed
};

/// One justified exception: suppresses findings in `file` whose source line
/// contains `needle`.  Every entry must carry a non-empty justification.
struct AllowEntry {
  std::string file;    ///< repo-relative path (suffix match on Finding::file)
  std::string needle;  ///< literal substring of the allowlisted source line
  std::string reason;  ///< why this site is exempt
  std::size_t ordinal = 0; ///< 1-based line number inside the allowlist file
};

/// Parsed allowlist: `path | needle | justification` per line, `#` comments.
class Allowlist {
 public:
  /// Parses from a stream.  Malformed lines (wrong field count, empty
  /// justification) are reported through `error` and make parsing fail.
  static bool parse(std::istream& in, Allowlist& out, std::string& error);

  /// Convenience: parse from a file path.  Missing file is an error.
  static bool load(const std::string& path, Allowlist& out, std::string& error);

  [[nodiscard]] bool suppresses(const Finding& f) const;

  [[nodiscard]] const std::vector<AllowEntry>& entries() const { return entries_; }

 private:
  std::vector<AllowEntry> entries_;
};

/// Lints one file's content.  `path` selects the rule set (header rules for
/// .hpp/.h/.hh, source rules for everything else; determinism and hot-path
/// rules apply to both).  Findings come back in line order.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& content);

/// Recursively lints every .hpp/.h/.hh/.cpp/.cc under `root` (sorted paths,
/// so output order is stable).  Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root);

/// Drops findings the allowlist covers.  When `used` is non-null it receives
/// one flag per allowlist entry telling whether that entry suppressed
/// anything — the input to stale-entry detection on a lint run.
[[nodiscard]] std::vector<Finding> apply_allowlist(std::vector<Finding> findings,
                                                   const Allowlist& allow,
                                                   std::vector<bool>* used = nullptr);

/// Stale-allowlist detector: returns the entries whose (file, needle) no
/// longer matches any line of any linted file under `root`.  An entry that
/// matches a line which no rule flags anymore is *not* stale — it is merely
/// dormant; staleness means the referenced source line is gone entirely, so
/// the justification no longer documents anything real.
[[nodiscard]] std::vector<AllowEntry> stale_entries(const Allowlist& allow,
                                                    const std::string& root);

/// Strips //, /* */ comments and the contents of string/char literals
/// (including raw strings) while preserving line structure, so lexical rules
/// never fire on prose or literal text.  Exposed for tests.
[[nodiscard]] std::string strip_comments_and_literals(const std::string& content);

}  // namespace ecthub::lint
