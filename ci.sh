#!/usr/bin/env sh
# CI entry point: tier-1 verify plus a bench-compile-only job.
# Usage: ./ci.sh [build-dir-prefix]   (default: build-ci)
set -eu

PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> Job 1: configure + build + ctest (-Werror + extra warning wall)"
cmake -B "${PREFIX}" -S . -DECTHUB_WERROR=ON -DECTHUB_EXTRA_WARNINGS=ON \
  -DECTHUB_BUILD_BENCH=OFF
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure --no-tests=error -j "${JOBS}"

# Job 2 flips the bench gate on in the same tree, so the module libraries
# from job 1 are reused and only the bench binaries compile fresh (under the
# same -Werror + extra-warnings wall).
echo "==> Job 2: bench compile-only (-Werror + extra warning wall)"
cmake -B "${PREFIX}" -S . -DECTHUB_WERROR=ON -DECTHUB_EXTRA_WARNINGS=ON \
  -DECTHUB_BUILD_BENCH=ON
cmake --build "${PREFIX}" -j "${JOBS}"

# Job 3 runs the tier-1 suite under ASan + UBSan in a separate tree: the
# fleet runner executes hubs across a thread pool, so every push exercises
# the threaded code under the sanitizers.
echo "==> Job 3: ASan+UBSan tier-1"
cmake -B "${PREFIX}-asan" -S . -DECTHUB_SANITIZE=ON -DECTHUB_BUILD_BENCH=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}-asan" -j "${JOBS}"
UBSAN_OPTIONS=halt_on_error=1 ctest --test-dir "${PREFIX}-asan" \
  --output-on-failure --no-tests=error -j "${JOBS}"

# Job 4 rebuilds under ThreadSanitizer and runs the sim-engine suite (the
# threaded per-hub runner, the barrier-synchronized lockstep crew, the
# four-way run/lockstep×1/coordinator-GEMM/worker-GEMM identity harness and
# the coupled-metro identity harness — LockstepDeterminism.* and
# CouplingBus.* match the filter below), the vectorized rollout collector's
# bit-identity suite (VecCollector*, whose crew shards env stepping and
# row-block act_rows GEMMs across threads), the process-sharding suite
# (Shard*, whose driver forks worker processes that spawn their own thread
# pools, plus the ExactSum register the merged reports ride on) and the
# decision-service suite (Serve*, whose worker micro-batches concurrent
# decide(obs) callers into one decide_rows forward) and the
# DRL/metro/sharding/serving smokes, so every push exercises the lockstep
# barriers, the concurrent row-block decide_rows/act_rows paths, the
# slot-barrier CouplingBus exchange, the fork/merge shard path and the
# request-batching queue under TSan as well as ASan (the ASan job above runs
# the full suite including the smokes).
echo "==> Job 4: TSan lockstep (test_sim + collector + DRL/metro smokes)"
cmake -B "${PREFIX}-tsan" -S . -DECTHUB_SANITIZE=thread -DECTHUB_BUILD_BENCH=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
TSAN_OPTIONS=halt_on_error=1 ctest --test-dir "${PREFIX}-tsan" \
  -R 'Scenario|MixSeed|PolicyFactory|FleetJobs|FleetRunner|Lockstep|CouplingBus|AggregateReport|VecCollector|DrlZoo|Shard|ExactSum|Serve|city_sweep_drl|city_sweep_metro|city_sweep_shard|decision_server' \
  --output-on-failure --no-tests=error -j "${JOBS}"

# Job 5 is the static-analysis gate:
#  (a) ecthub_lint — the in-repo invariant linter (determinism / hot-path
#      allocation hygiene / header hygiene) over src/, failing on any finding
#      not excused by tools/lint_allowlist.txt, and failing on allowlist
#      entries that no longer match real source lines (stale entries);
#  (b) header self-containment — every src/**/*.hpp compiled standalone
#      (twice, for guard idempotency) via the generated-TU object target;
#  (c) GCC -fanalyzer compile-only over the leaf modules (common, nn,
#      battery, weather).  GCC 12's analyzer does not model std::allocator,
#      so three libstdc++-internal false-positive classes are suppressed with
#      justification (see tools/lint_allowlist.txt header and README "Static
#      analysis"); every other -Wanalyzer-* check is a hard error.
echo "==> Job 5: invariant lint + header self-containment + GCC analyzer"
cmake --build "${PREFIX}" -j "${JOBS}" --target ecthub_lint ecthub_header_check
"${PREFIX}/tools/ecthub_lint" --allowlist tools/lint_allowlist.txt \
  --check-allowlist src

for f in src/common/*.cpp src/nn/*.cpp src/battery/*.cpp src/weather/*.cpp; do
  g++ -std=c++20 -Isrc -O1 -c "$f" -o /dev/null \
    -fanalyzer -Werror \
    -Wno-analyzer-use-of-uninitialized-value \
    -Wno-analyzer-null-dereference \
    -Wno-analyzer-possible-null-dereference
done
echo "    analyzer pass clean over common/nn/battery/weather"

echo "==> CI green"
