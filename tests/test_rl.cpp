// Tests for the RL substrate: actor-critic, GAE, and PPO — including an
// end-to-end learning check on a toy bandit-style MDP — plus the vectorized
// rollout collector's bit-identity contract.
#include "rl/actor_critic.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"
#include "rl/vec_collector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <span>
#include <utility>

namespace ecthub::rl {
namespace {

// A 2-step toy environment: action 1 yields +1 reward, others 0.  PPO must
// drive the policy toward always picking action 1.
class ToyEnv : public Env {
 public:
  std::vector<double> reset() override {
    t_ = 0;
    return state();
  }
  StepResult step(std::size_t action) override {
    StepResult r;
    r.reward = action == 1 ? 1.0 : 0.0;
    ++t_;
    r.done = t_ >= 8;
    r.next_state = state();
    return r;
  }
  std::size_t state_dim() const override { return 3; }
  std::size_t action_count() const override { return 3; }

 private:
  std::vector<double> state() const {
    return {static_cast<double>(t_) / 8.0, 1.0, 0.5};
  }
  std::size_t t_ = 0;
};

ActorCriticConfig small_ac() {
  ActorCriticConfig cfg;
  cfg.state_dim = 3;
  cfg.action_count = 3;
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  return cfg;
}

// ---------------------------------------------------------------- ActorCritic

TEST(ActorCritic, ProbabilitiesFormDistribution) {
  nn::Rng rng(1);
  ActorCritic ac(small_ac(), rng);
  const nn::Matrix states = nn::Matrix::randn(4, 3, rng);
  const PolicyOutput out = ac.forward(states);
  EXPECT_EQ(out.probs.rows(), 4u);
  EXPECT_EQ(out.values.cols(), 1u);
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_GE(out.probs(r, a), 0.0);
      sum += out.probs(r, a);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ActorCritic, ActReturnsConsistentSample) {
  nn::Rng rng(2);
  ActorCritic ac(small_ac(), rng);
  nn::Rng act_rng(3);
  const auto sample = ac.act({0.1, 0.2, 0.3}, act_rng);
  EXPECT_LT(sample.action, 3u);
  EXPECT_LE(sample.log_prob, 0.0);
  EXPECT_TRUE(std::isfinite(sample.value));
}

TEST(ActorCritic, GreedyPicksArgmax) {
  nn::Rng rng(4);
  ActorCritic ac(small_ac(), rng);
  const std::vector<double> s = {0.5, -0.5, 1.0};
  const std::size_t greedy = ac.act_greedy(s);
  const PolicyOutput out = ac.forward(nn::Matrix::from_rows({s}));
  for (std::size_t a = 0; a < 3; ++a) EXPECT_GE(out.probs(0, greedy), out.probs(0, a));
}

TEST(ActorCritic, StateDimMismatchThrows) {
  nn::Rng rng(5);
  ActorCritic ac(small_ac(), rng);
  nn::Rng act_rng(6);
  EXPECT_THROW(ac.act({0.1}, act_rng), std::invalid_argument);
  EXPECT_THROW(ac.act_greedy({0.1, 0.2}), std::invalid_argument);
}

TEST(ActorCritic, RejectsBadConfig) {
  nn::Rng rng(7);
  ActorCriticConfig bad = small_ac();
  bad.state_dim = 0;
  EXPECT_THROW(ActorCritic(bad, rng), std::invalid_argument);
  ActorCriticConfig bad2 = small_ac();
  bad2.action_count = 1;
  EXPECT_THROW(ActorCritic(bad2, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- GAE

TEST(RolloutBuffer, GaeSingleStepIsTdError) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 1.0;
  t.value = 0.5;
  t.done = true;
  buf.add(t);
  const auto targets = buf.compute_gae(0.99, 0.95, /*last_value=*/123.0);
  // Terminal step: bootstrap masked out, advantage = r - V = 0.5.
  EXPECT_NEAR(targets.advantages[0], 0.5, 1e-12);
  EXPECT_NEAR(targets.returns[0], 1.0, 1e-12);
}

TEST(RolloutBuffer, GaeDiscountsFutureRewards) {
  RolloutBuffer buf;
  for (int i = 0; i < 3; ++i) {
    Transition t;
    t.reward = i == 2 ? 1.0 : 0.0;
    t.value = 0.0;
    t.done = i == 2;
    buf.add(t);
  }
  const auto targets = buf.compute_gae(0.5, 1.0, 0.0);
  // With gamma=0.5, lambda=1: returns are 0.25, 0.5, 1.0.
  EXPECT_NEAR(targets.returns[0], 0.25, 1e-12);
  EXPECT_NEAR(targets.returns[1], 0.5, 1e-12);
  EXPECT_NEAR(targets.returns[2], 1.0, 1e-12);
}

TEST(RolloutBuffer, GaeRespectsEpisodeBoundaries) {
  // Two one-step episodes; the second's reward must not leak into the first.
  RolloutBuffer buf;
  Transition a;
  a.reward = 0.0;
  a.value = 0.0;
  a.done = true;
  buf.add(a);
  Transition b;
  b.reward = 100.0;
  b.value = 0.0;
  b.done = true;
  buf.add(b);
  const auto targets = buf.compute_gae(0.99, 0.95, 0.0);
  EXPECT_NEAR(targets.advantages[0], 0.0, 1e-12);
  EXPECT_NEAR(targets.advantages[1], 100.0, 1e-12);
}

TEST(RolloutBuffer, GaeValidation) {
  RolloutBuffer buf;
  EXPECT_THROW(buf.compute_gae(0.9, 0.9, 0.0), std::logic_error);
  Transition t;
  buf.add(t);
  EXPECT_THROW(buf.compute_gae(1.5, 0.9, 0.0), std::invalid_argument);
}

TEST(RolloutBuffer, NormalizeZeroMeanUnitVar) {
  std::vector<double> adv = {1.0, 2.0, 3.0, 4.0, 5.0};
  RolloutBuffer::normalize(adv);
  double mean = 0.0, var = 0.0;
  for (double a : adv) mean += a;
  mean /= 5.0;
  for (double a : adv) var += (a - mean) * (a - mean);
  var /= 5.0;
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-6);
}

TEST(RolloutBuffer, ClearEmpties) {
  RolloutBuffer buf;
  buf.add(Transition{});
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
}

// ---------------------------------------------------------------- PPO

TEST(Ppo, RejectsBadConfig) {
  PpoConfig bad;
  bad.clip_epsilon = 0.0;
  EXPECT_THROW(PpoTrainer(bad, small_ac(), nn::Rng(1)), std::invalid_argument);
  PpoConfig bad2;
  bad2.minibatch_size = 0;
  EXPECT_THROW(PpoTrainer(bad2, small_ac(), nn::Rng(1)), std::invalid_argument);
}

TEST(Ppo, UpdateReportsFiniteStats) {
  PpoConfig cfg;
  cfg.update_epochs = 2;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(8));
  ToyEnv env;
  const auto history = trainer.train(env, 2);
  ASSERT_EQ(history.size(), 2u);
  for (const auto& h : history) {
    EXPECT_TRUE(std::isfinite(h.update.policy_loss));
    EXPECT_TRUE(std::isfinite(h.update.value_loss));
    EXPECT_GE(h.update.entropy, 0.0);
    EXPECT_GT(h.update.mean_ratio, 0.0);
    EXPECT_GE(h.update.clip_fraction, 0.0);
    EXPECT_LE(h.update.clip_fraction, 1.0);
  }
}

TEST(Ppo, LearnsToyBandit) {
  PpoConfig cfg;
  cfg.episodes_per_iteration = 8;
  cfg.entropy_coeff = 0.005;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(9));
  ToyEnv env;
  trainer.train(env, 25);
  // Greedy policy should now collect near-maximal reward (8 per episode).
  const double reward = trainer.evaluate(env, 5);
  EXPECT_GT(reward, 7.0);
}

TEST(Ppo, EvaluateEpisodesReturnsPerEpisode) {
  PpoTrainer trainer(PpoConfig{}, small_ac(), nn::Rng(10));
  ToyEnv env;
  const auto rewards = trainer.evaluate_episodes(env, 3);
  EXPECT_EQ(rewards.size(), 3u);
}

TEST(Ppo, EmptyBufferUpdateThrows) {
  PpoTrainer trainer(PpoConfig{}, small_ac(), nn::Rng(11));
  RolloutBuffer empty;
  EXPECT_THROW(trainer.update(empty), std::invalid_argument);
}

// Property sweep: across clip settings, one update keeps the realized
// probability ratios near 1 (the stability property the clip exists for).
class ClipSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ClipSweepTest, MeanRatioStaysNearOne) {
  PpoConfig cfg;
  cfg.clip_epsilon = GetParam();
  cfg.update_epochs = 3;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(21));
  ToyEnv env;
  const auto history = trainer.train(env, 2);
  for (const auto& h : history) {
    EXPECT_GT(h.update.mean_ratio, 1.0 - 3.0 * GetParam());
    EXPECT_LT(h.update.mean_ratio, 1.0 + 3.0 * GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Clips, ClipSweepTest, ::testing::Values(0.1, 0.2, 0.3));

// Property sweep: GAE returns equal discounted reward sums when lambda = 1.
class GammaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweepTest, LambdaOneReturnsAreDiscountedSums) {
  const double gamma = GetParam();
  RolloutBuffer buf;
  const std::vector<double> rewards = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    Transition t;
    t.reward = rewards[i];
    t.value = 0.0;
    t.done = i + 1 == rewards.size();
    buf.add(t);
  }
  const auto targets = buf.compute_gae(gamma, 1.0, 0.0);
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    double expected = 0.0, g = 1.0;
    for (std::size_t k = i; k < rewards.size(); ++k) {
      expected += g * rewards[k];
      g *= gamma;
    }
    EXPECT_NEAR(targets.returns[i], expected, 1e-12) << "gamma " << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweepTest, ::testing::Values(0.0, 0.5, 0.9, 1.0));

TEST(Ppo, RatioNearOneOnFirstUpdate) {
  // On the first update over freshly collected data the new/old ratio starts
  // at 1 and stays near it thanks to clipping.
  PpoConfig cfg;
  cfg.update_epochs = 1;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(12));
  ToyEnv env;
  const auto history = trainer.train(env, 1);
  EXPECT_NEAR(history[0].update.mean_ratio, 1.0, 0.3);
}

// ------------------------------------------------- forward/backward cache

TEST(ActorCritic, BackwardRejectsMismatchedGradShapes) {
  nn::Rng rng(30);
  ActorCritic ac(small_ac(), rng);
  const nn::Matrix states = nn::Matrix::randn(4, 3, rng);
  (void)ac.forward(states);
  // Wrong batch size and wrong column counts must all be rejected.
  EXPECT_THROW(ac.backward(nn::Matrix(3, 3, 0.0), nn::Matrix(3, 1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(ac.backward(nn::Matrix(4, 2, 0.0), nn::Matrix(4, 1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(ac.backward(nn::Matrix(4, 3, 0.0), nn::Matrix(4, 2, 0.0)),
               std::invalid_argument);
}

TEST(ActorCritic, ActBetweenForwardAndBackwardKeepsGradients) {
  // Regression: act()/act_greedy() used to run through forward() and clobber
  // the cached softmax batch, silently pairing backward()'s gradients with a
  // 1-row cache.  The act paths now use their own scratch, so interleaving
  // them must leave the training gradients bit-identical.
  nn::Rng init_a(31), init_b(31);
  ActorCritic clean(small_ac(), init_a);
  ActorCritic interleaved(small_ac(), init_b);

  nn::Rng data_rng(32);
  const nn::Matrix states = nn::Matrix::randn(5, 3, data_rng);
  nn::Matrix dprobs = nn::Matrix::randn(5, 3, data_rng);
  nn::Matrix dvalues = nn::Matrix::randn(5, 1, data_rng);

  clean.zero_grad();
  (void)clean.forward(states);
  clean.backward(dprobs, dvalues);

  interleaved.zero_grad();
  (void)interleaved.forward(states);
  nn::Rng act_rng(33);
  (void)interleaved.act({0.1, 0.2, 0.3}, act_rng);
  (void)interleaved.act_greedy({-0.4, 0.0, 0.8});
  interleaved.backward(dprobs, dvalues);  // would throw (or corrupt) before

  const auto pa = clean.parameters();
  const auto pb = interleaved.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].grad->data().size(), pb[i].grad->data().size());
    for (std::size_t k = 0; k < pa[i].grad->data().size(); ++k) {
      EXPECT_EQ(pa[i].grad->data()[k], pb[i].grad->data()[k]) << pa[i].name;
    }
  }
}

// ------------------------------------------------- batched stochastic forward

TEST(VecCollectorActRows, MatchesPerRowActAcrossRaggedSplits) {
  nn::Rng rng(40);
  ActorCritic ac(small_ac(), rng);
  const std::size_t n = 7;
  const nn::Matrix states = nn::Matrix::randn(n, 3, rng);

  // Per-row reference: each row samples from its own stream via act().
  std::vector<ActorCritic::Sample> expected(n);
  {
    std::vector<nn::Rng> rngs;
    for (std::size_t r = 0; r < n; ++r) rngs.emplace_back(1000 + r);
    for (std::size_t r = 0; r < n; ++r) {
      std::vector<double> state(3);
      for (std::size_t c = 0; c < 3; ++c) state[c] = states(r, c);
      expected[r] = ac.act(state, rngs[r]);
    }
  }

  // Ragged block splits of the same rows must reproduce the samples bitwise.
  for (const std::vector<std::size_t>& bounds :
       {std::vector<std::size_t>{0, n}, std::vector<std::size_t>{0, 1, n},
        std::vector<std::size_t>{0, 3, 5, n}, std::vector<std::size_t>{0, 2, 3, 4, n}}) {
    std::vector<nn::Rng> rngs;
    for (std::size_t r = 0; r < n; ++r) rngs.emplace_back(1000 + r);
    std::vector<ActorCritic::Sample> got(n);
    for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
      ActorCritic::RowsWorkspace ws;  // fresh per block, like a crew member's
      ac.act_rows(states, bounds[b], bounds[b + 1], std::span<nn::Rng>(rngs),
                  std::span<ActorCritic::Sample>(got), ws);
    }
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(got[r].action, expected[r].action) << "row " << r;
      EXPECT_EQ(got[r].log_prob, expected[r].log_prob) << "row " << r;
      EXPECT_EQ(got[r].value, expected[r].value) << "row " << r;
    }
  }
}

TEST(VecCollectorActRows, ActiveMaskSkipsRowsWithoutConsumingStreams) {
  nn::Rng rng(41);
  ActorCritic ac(small_ac(), rng);
  const nn::Matrix states = nn::Matrix::randn(4, 3, rng);
  std::vector<nn::Rng> rngs{nn::Rng(1), nn::Rng(2), nn::Rng(3), nn::Rng(4)};
  std::vector<nn::Rng> rngs_ref{nn::Rng(1), nn::Rng(2), nn::Rng(3), nn::Rng(4)};
  std::vector<ActorCritic::Sample> got(4), expected(4);
  const std::vector<std::uint8_t> active = {1, 0, 1, 0};

  ActorCritic::RowsWorkspace ws;
  ac.act_rows(states, 0, 4, std::span<nn::Rng>(rngs),
              std::span<ActorCritic::Sample>(got), ws,
              std::span<const std::uint8_t>(active));
  ActorCritic::RowsWorkspace ws_ref;
  ac.act_rows(states, 0, 4, std::span<nn::Rng>(rngs_ref),
              std::span<ActorCritic::Sample>(expected), ws_ref);

  // Live rows match the unmasked run; masked rows left their streams intact.
  EXPECT_EQ(got[0].action, expected[0].action);
  EXPECT_EQ(got[2].action, expected[2].action);
  EXPECT_EQ(rngs[1].uniform(), nn::Rng(2).uniform());
  EXPECT_EQ(rngs[3].uniform(), nn::Rng(4).uniform());
}

TEST(VecCollectorActRows, ValueOfMatchesForward) {
  nn::Rng rng(42);
  ActorCritic ac(small_ac(), rng);
  const std::vector<double> state = {0.3, -0.7, 1.1};
  ActorCritic::RowsWorkspace ws;
  const double v = ac.value_of(std::span<const double>(state), ws);
  const PolicyOutput out = ac.forward(nn::Matrix::from_rows({state}));
  EXPECT_EQ(v, out.values(0, 0));
}

// ------------------------------------------------- truncation-aware GAE

TEST(RolloutBuffer, TruncatedTailBootstrapsCriticValue) {
  // Hand-computed: gamma=0.5, lambda=1, a 2-step episode cut by a time limit.
  //   t1: delta = 2 + 0.5*3.0 - 0.4 = 3.1  -> adv1 = 3.1, ret1 = 3.5
  //   t0: delta = 1 + 0.5*0.4 - 0.2 = 1.0  -> adv0 = 1.0 + 0.5*3.1 = 2.55
  RolloutBuffer buf;
  Transition t0;
  t0.reward = 1.0;
  t0.value = 0.2;
  buf.add(t0);
  Transition t1;
  t1.reward = 2.0;
  t1.value = 0.4;
  t1.done = true;
  t1.truncated = true;
  t1.bootstrap_value = 3.0;
  buf.add(t1);
  const auto targets = buf.compute_gae(0.5, 1.0, 0.0);
  EXPECT_NEAR(targets.advantages[1], 3.1, 1e-12);
  EXPECT_NEAR(targets.returns[1], 3.5, 1e-12);
  EXPECT_NEAR(targets.advantages[0], 2.55, 1e-12);
  EXPECT_NEAR(targets.returns[0], 2.75, 1e-12);
}

TEST(RolloutBuffer, TruncationDoesNotLeakAcrossEpisodes) {
  // A truncated episode followed by a terminal one: the bootstrap feeds only
  // its own episode's advantages; the chain still cuts at the boundary.
  RolloutBuffer buf;
  Transition a;
  a.reward = 0.0;
  a.value = 0.0;
  a.done = true;
  a.truncated = true;
  a.bootstrap_value = 10.0;
  buf.add(a);
  Transition b;
  b.reward = 1.0;
  b.value = 0.0;
  b.done = true;
  buf.add(b);
  const auto targets = buf.compute_gae(0.5, 0.9, 0.0);
  EXPECT_NEAR(targets.advantages[0], 5.0, 1e-12);  // 0 + 0.5*10 - 0
  EXPECT_NEAR(targets.advantages[1], 1.0, 1e-12);  // untouched by the 10.0
}

TEST(RolloutBuffer, TruncatedVersusTerminalDiffer) {
  const auto make = [](bool truncated) {
    RolloutBuffer buf;
    Transition t;
    t.reward = 1.0;
    t.value = 0.5;
    t.done = true;
    t.truncated = truncated;
    t.bootstrap_value = 2.0;
    buf.add(t);
    return buf.compute_gae(0.9, 0.95, 0.0);
  };
  EXPECT_NEAR(make(false).advantages[0], 0.5, 1e-12);          // 1 - 0.5
  EXPECT_NEAR(make(true).advantages[0], 0.5 + 0.9 * 2.0, 1e-12);
}

// ------------------------------------------------- vectorized collection

// Episodes in these tests end by time limit, which EctHubEnv reports as
// truncated; ToyTruncEnv mirrors that so the bootstrap path is exercised.
class ToyTruncEnv final : public ToyEnv {
 public:
  StepResult step(std::size_t action) override {
    StepResult r = ToyEnv::step(action);
    r.truncated = r.done;
    return r;
  }
};

std::vector<std::unique_ptr<Env>> make_lanes(std::size_t n) {
  std::vector<std::unique_ptr<Env>> lanes;
  for (std::size_t i = 0; i < n; ++i) lanes.push_back(std::make_unique<ToyTruncEnv>());
  return lanes;
}

std::vector<Env*> as_ptrs(const std::vector<std::unique_ptr<Env>>& lanes) {
  std::vector<Env*> out;
  for (const auto& l : lanes) out.push_back(l.get());
  return out;
}

void expect_buffers_equal(const std::vector<RolloutBuffer>& a,
                          const std::vector<RolloutBuffer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ta = a[i].transitions();
    const auto& tb = b[i].transitions();
    ASSERT_EQ(ta.size(), tb.size()) << "lane " << i;
    for (std::size_t k = 0; k < ta.size(); ++k) {
      EXPECT_EQ(ta[k].state, tb[k].state) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].action, tb[k].action) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].log_prob, tb[k].log_prob) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].reward, tb[k].reward) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].value, tb[k].value) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].done, tb[k].done) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].truncated, tb[k].truncated) << "lane " << i << " step " << k;
      EXPECT_EQ(ta[k].bootstrap_value, tb[k].bootstrap_value)
          << "lane " << i << " step " << k;
    }
  }
}

TEST(VecCollector, RejectsInvalidLaneSets) {
  VecCollectorConfig cfg;
  EXPECT_THROW(VecRolloutCollector({}, cfg), std::invalid_argument);
  ToyTruncEnv env;
  EXPECT_THROW(VecRolloutCollector({&env, nullptr}, cfg), std::invalid_argument);
  EXPECT_THROW(VecRolloutCollector({&env, &env}, cfg), std::invalid_argument);
}

TEST(VecCollector, RejectsActorMismatchAndZeroEpisodes) {
  auto lanes = make_lanes(2);
  VecRolloutCollector collector(as_ptrs(lanes), VecCollectorConfig{});
  nn::Rng rng(50);
  ActorCritic ac(small_ac(), rng);
  EXPECT_THROW(collector.collect(ac, 0), std::invalid_argument);
  ActorCriticConfig wide = small_ac();
  wide.state_dim = 5;
  ActorCritic mismatched(wide, rng);
  EXPECT_THROW(collector.collect(mismatched, 1), std::invalid_argument);
}

TEST(VecCollector, BitIdenticalAcrossThreadCounts) {
  // The contract the whole tentpole rests on: every crew size collects the
  // same transitions, bit for bit, as the serial per-lane reference.
  const std::size_t n = 5;
  const std::size_t eps = 3;
  nn::Rng rng(51);
  ActorCritic ac(small_ac(), rng);

  auto ref_lanes = make_lanes(n);
  VecRolloutCollector reference(as_ptrs(ref_lanes), VecCollectorConfig{});
  const auto ref_stats = reference.collect_serial(ac, eps);
  EXPECT_EQ(ref_stats.episodes, n * eps);
  EXPECT_EQ(ref_stats.transitions, n * eps * 8);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto lanes = make_lanes(n);
    VecCollectorConfig cfg;
    cfg.threads = threads;
    VecRolloutCollector collector(as_ptrs(lanes), cfg);
    const auto stats = collector.collect(ac, eps);
    EXPECT_EQ(stats.episodes, ref_stats.episodes) << threads << " threads";
    EXPECT_EQ(stats.transitions, ref_stats.transitions) << threads << " threads";
    EXPECT_EQ(stats.total_reward, ref_stats.total_reward) << threads << " threads";
    expect_buffers_equal(collector.buffers(), reference.buffers());
  }
}

TEST(VecCollector, RecordsTruncationBootstrapOnEpisodeTails) {
  auto lanes = make_lanes(2);
  VecRolloutCollector collector(as_ptrs(lanes), VecCollectorConfig{});
  nn::Rng rng(52);
  ActorCritic ac(small_ac(), rng);
  collector.collect(ac, 2);

  // ToyEnv's terminal observation is {1, 1, 0.5} regardless of actions.
  ActorCritic::RowsWorkspace ws;
  const std::vector<double> terminal = {1.0, 1.0, 0.5};
  const double v_terminal = ac.value_of(std::span<const double>(terminal), ws);
  for (const RolloutBuffer& buf : collector.buffers()) {
    for (const Transition& t : buf.transitions()) {
      if (t.done) {
        EXPECT_TRUE(t.truncated);
        EXPECT_EQ(t.bootstrap_value, v_terminal);
      } else {
        EXPECT_EQ(t.bootstrap_value, 0.0);
      }
    }
  }
}

TEST(VecCollector, MergedGaeMatchesPerLaneGae) {
  // Lanes hold whole episodes, so GAE over the lane-merged buffer must equal
  // each lane's GAE concatenated — the property train_fleet's update relies
  // on when it merges the per-lane buffers.
  auto lanes = make_lanes(3);
  VecRolloutCollector collector(as_ptrs(lanes), VecCollectorConfig{});
  nn::Rng rng(53);
  ActorCritic ac(small_ac(), rng);
  collector.collect(ac, 2);

  RolloutBuffer merged;
  for (const RolloutBuffer& lane : collector.buffers()) merged.append(lane);
  const auto merged_targets = merged.compute_gae(0.97, 0.95, 0.0);

  std::size_t offset = 0;
  for (const RolloutBuffer& lane : collector.buffers()) {
    const auto lane_targets = lane.compute_gae(0.97, 0.95, 0.0);
    for (std::size_t k = 0; k < lane.size(); ++k) {
      EXPECT_EQ(merged_targets.advantages[offset + k], lane_targets.advantages[k]);
      EXPECT_EQ(merged_targets.returns[offset + k], lane_targets.returns[k]);
    }
    offset += lane.size();
  }
  EXPECT_EQ(offset, merged.size());
}

TEST(VecCollector, TrainFleetWeightsIdenticalAcrossThreadCounts) {
  // End to end: K train_fleet iterations at different collector crew sizes
  // leave the trainer with bit-identical weights.
  const auto train = [](std::size_t threads) {
    PpoConfig cfg;
    cfg.episodes_per_iteration = 2;
    cfg.update_epochs = 2;
    PpoTrainer trainer(cfg, small_ac(), nn::Rng(54));
    auto lanes = make_lanes(4);
    VecCollectorConfig collector;
    collector.threads = threads;
    collector.seed = 77;
    trainer.train_fleet(as_ptrs(lanes), 3, collector);
    std::vector<std::vector<double>> weights;
    for (const auto& p : std::as_const(trainer).policy().parameters()) {
      weights.push_back(p.value->data());
    }
    return weights;
  };
  const auto w1 = train(1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const auto wk = train(threads);
    ASSERT_EQ(w1.size(), wk.size());
    for (std::size_t i = 0; i < w1.size(); ++i) {
      EXPECT_EQ(w1[i], wk[i]) << "parameter " << i << " at " << threads << " threads";
    }
  }
}

TEST(VecCollector, TrainFleetLearnsToyBandit) {
  PpoConfig cfg;
  cfg.episodes_per_iteration = 4;
  cfg.entropy_coeff = 0.005;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(9));
  auto lanes = make_lanes(4);
  VecCollectorConfig collector;
  collector.threads = 2;
  trainer.train_fleet(as_ptrs(lanes), 15, collector);
  ToyEnv env;
  EXPECT_GT(trainer.evaluate(env, 5), 7.0);
}

}  // namespace
}  // namespace ecthub::rl
