// Tests for the RL substrate: actor-critic, GAE, and PPO — including an
// end-to-end learning check on a toy bandit-style MDP.
#include "rl/actor_critic.hpp"
#include "rl/env.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ecthub::rl {
namespace {

// A 2-step toy environment: action 1 yields +1 reward, others 0.  PPO must
// drive the policy toward always picking action 1.
class ToyEnv final : public Env {
 public:
  std::vector<double> reset() override {
    t_ = 0;
    return state();
  }
  StepResult step(std::size_t action) override {
    StepResult r;
    r.reward = action == 1 ? 1.0 : 0.0;
    ++t_;
    r.done = t_ >= 8;
    r.next_state = state();
    return r;
  }
  std::size_t state_dim() const override { return 3; }
  std::size_t action_count() const override { return 3; }

 private:
  std::vector<double> state() const {
    return {static_cast<double>(t_) / 8.0, 1.0, 0.5};
  }
  std::size_t t_ = 0;
};

ActorCriticConfig small_ac() {
  ActorCriticConfig cfg;
  cfg.state_dim = 3;
  cfg.action_count = 3;
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  return cfg;
}

// ---------------------------------------------------------------- ActorCritic

TEST(ActorCritic, ProbabilitiesFormDistribution) {
  nn::Rng rng(1);
  ActorCritic ac(small_ac(), rng);
  const nn::Matrix states = nn::Matrix::randn(4, 3, rng);
  const PolicyOutput out = ac.forward(states);
  EXPECT_EQ(out.probs.rows(), 4u);
  EXPECT_EQ(out.values.cols(), 1u);
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_GE(out.probs(r, a), 0.0);
      sum += out.probs(r, a);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ActorCritic, ActReturnsConsistentSample) {
  nn::Rng rng(2);
  ActorCritic ac(small_ac(), rng);
  nn::Rng act_rng(3);
  const auto sample = ac.act({0.1, 0.2, 0.3}, act_rng);
  EXPECT_LT(sample.action, 3u);
  EXPECT_LE(sample.log_prob, 0.0);
  EXPECT_TRUE(std::isfinite(sample.value));
}

TEST(ActorCritic, GreedyPicksArgmax) {
  nn::Rng rng(4);
  ActorCritic ac(small_ac(), rng);
  const std::vector<double> s = {0.5, -0.5, 1.0};
  const std::size_t greedy = ac.act_greedy(s);
  const PolicyOutput out = ac.forward(nn::Matrix::from_rows({s}));
  for (std::size_t a = 0; a < 3; ++a) EXPECT_GE(out.probs(0, greedy), out.probs(0, a));
}

TEST(ActorCritic, StateDimMismatchThrows) {
  nn::Rng rng(5);
  ActorCritic ac(small_ac(), rng);
  nn::Rng act_rng(6);
  EXPECT_THROW(ac.act({0.1}, act_rng), std::invalid_argument);
  EXPECT_THROW(ac.act_greedy({0.1, 0.2}), std::invalid_argument);
}

TEST(ActorCritic, RejectsBadConfig) {
  nn::Rng rng(7);
  ActorCriticConfig bad = small_ac();
  bad.state_dim = 0;
  EXPECT_THROW(ActorCritic(bad, rng), std::invalid_argument);
  ActorCriticConfig bad2 = small_ac();
  bad2.action_count = 1;
  EXPECT_THROW(ActorCritic(bad2, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- GAE

TEST(RolloutBuffer, GaeSingleStepIsTdError) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 1.0;
  t.value = 0.5;
  t.done = true;
  buf.add(t);
  const auto targets = buf.compute_gae(0.99, 0.95, /*last_value=*/123.0);
  // Terminal step: bootstrap masked out, advantage = r - V = 0.5.
  EXPECT_NEAR(targets.advantages[0], 0.5, 1e-12);
  EXPECT_NEAR(targets.returns[0], 1.0, 1e-12);
}

TEST(RolloutBuffer, GaeDiscountsFutureRewards) {
  RolloutBuffer buf;
  for (int i = 0; i < 3; ++i) {
    Transition t;
    t.reward = i == 2 ? 1.0 : 0.0;
    t.value = 0.0;
    t.done = i == 2;
    buf.add(t);
  }
  const auto targets = buf.compute_gae(0.5, 1.0, 0.0);
  // With gamma=0.5, lambda=1: returns are 0.25, 0.5, 1.0.
  EXPECT_NEAR(targets.returns[0], 0.25, 1e-12);
  EXPECT_NEAR(targets.returns[1], 0.5, 1e-12);
  EXPECT_NEAR(targets.returns[2], 1.0, 1e-12);
}

TEST(RolloutBuffer, GaeRespectsEpisodeBoundaries) {
  // Two one-step episodes; the second's reward must not leak into the first.
  RolloutBuffer buf;
  Transition a;
  a.reward = 0.0;
  a.value = 0.0;
  a.done = true;
  buf.add(a);
  Transition b;
  b.reward = 100.0;
  b.value = 0.0;
  b.done = true;
  buf.add(b);
  const auto targets = buf.compute_gae(0.99, 0.95, 0.0);
  EXPECT_NEAR(targets.advantages[0], 0.0, 1e-12);
  EXPECT_NEAR(targets.advantages[1], 100.0, 1e-12);
}

TEST(RolloutBuffer, GaeValidation) {
  RolloutBuffer buf;
  EXPECT_THROW(buf.compute_gae(0.9, 0.9, 0.0), std::logic_error);
  Transition t;
  buf.add(t);
  EXPECT_THROW(buf.compute_gae(1.5, 0.9, 0.0), std::invalid_argument);
}

TEST(RolloutBuffer, NormalizeZeroMeanUnitVar) {
  std::vector<double> adv = {1.0, 2.0, 3.0, 4.0, 5.0};
  RolloutBuffer::normalize(adv);
  double mean = 0.0, var = 0.0;
  for (double a : adv) mean += a;
  mean /= 5.0;
  for (double a : adv) var += (a - mean) * (a - mean);
  var /= 5.0;
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-6);
}

TEST(RolloutBuffer, ClearEmpties) {
  RolloutBuffer buf;
  buf.add(Transition{});
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
}

// ---------------------------------------------------------------- PPO

TEST(Ppo, RejectsBadConfig) {
  PpoConfig bad;
  bad.clip_epsilon = 0.0;
  EXPECT_THROW(PpoTrainer(bad, small_ac(), nn::Rng(1)), std::invalid_argument);
  PpoConfig bad2;
  bad2.minibatch_size = 0;
  EXPECT_THROW(PpoTrainer(bad2, small_ac(), nn::Rng(1)), std::invalid_argument);
}

TEST(Ppo, UpdateReportsFiniteStats) {
  PpoConfig cfg;
  cfg.update_epochs = 2;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(8));
  ToyEnv env;
  const auto history = trainer.train(env, 2);
  ASSERT_EQ(history.size(), 2u);
  for (const auto& h : history) {
    EXPECT_TRUE(std::isfinite(h.update.policy_loss));
    EXPECT_TRUE(std::isfinite(h.update.value_loss));
    EXPECT_GE(h.update.entropy, 0.0);
    EXPECT_GT(h.update.mean_ratio, 0.0);
    EXPECT_GE(h.update.clip_fraction, 0.0);
    EXPECT_LE(h.update.clip_fraction, 1.0);
  }
}

TEST(Ppo, LearnsToyBandit) {
  PpoConfig cfg;
  cfg.episodes_per_iteration = 8;
  cfg.entropy_coeff = 0.005;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(9));
  ToyEnv env;
  trainer.train(env, 25);
  // Greedy policy should now collect near-maximal reward (8 per episode).
  const double reward = trainer.evaluate(env, 5);
  EXPECT_GT(reward, 7.0);
}

TEST(Ppo, EvaluateEpisodesReturnsPerEpisode) {
  PpoTrainer trainer(PpoConfig{}, small_ac(), nn::Rng(10));
  ToyEnv env;
  const auto rewards = trainer.evaluate_episodes(env, 3);
  EXPECT_EQ(rewards.size(), 3u);
}

TEST(Ppo, EmptyBufferUpdateThrows) {
  PpoTrainer trainer(PpoConfig{}, small_ac(), nn::Rng(11));
  RolloutBuffer empty;
  EXPECT_THROW(trainer.update(empty), std::invalid_argument);
}

// Property sweep: across clip settings, one update keeps the realized
// probability ratios near 1 (the stability property the clip exists for).
class ClipSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ClipSweepTest, MeanRatioStaysNearOne) {
  PpoConfig cfg;
  cfg.clip_epsilon = GetParam();
  cfg.update_epochs = 3;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(21));
  ToyEnv env;
  const auto history = trainer.train(env, 2);
  for (const auto& h : history) {
    EXPECT_GT(h.update.mean_ratio, 1.0 - 3.0 * GetParam());
    EXPECT_LT(h.update.mean_ratio, 1.0 + 3.0 * GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Clips, ClipSweepTest, ::testing::Values(0.1, 0.2, 0.3));

// Property sweep: GAE returns equal discounted reward sums when lambda = 1.
class GammaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweepTest, LambdaOneReturnsAreDiscountedSums) {
  const double gamma = GetParam();
  RolloutBuffer buf;
  const std::vector<double> rewards = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    Transition t;
    t.reward = rewards[i];
    t.value = 0.0;
    t.done = i + 1 == rewards.size();
    buf.add(t);
  }
  const auto targets = buf.compute_gae(gamma, 1.0, 0.0);
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    double expected = 0.0, g = 1.0;
    for (std::size_t k = i; k < rewards.size(); ++k) {
      expected += g * rewards[k];
      g *= gamma;
    }
    EXPECT_NEAR(targets.returns[i], expected, 1e-12) << "gamma " << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweepTest, ::testing::Values(0.0, 0.5, 0.9, 1.0));

TEST(Ppo, RatioNearOneOnFirstUpdate) {
  // On the first update over freshly collected data the new/old ratio starts
  // at 1 and stays near it thanks to clipping.
  PpoConfig cfg;
  cfg.update_epochs = 1;
  PpoTrainer trainer(cfg, small_ac(), nn::Rng(12));
  ToyEnv env;
  const auto history = trainer.train(env, 1);
  EXPECT_NEAR(history[0].update.mean_ratio, 1.0, 0.3);
}

}  // namespace
}  // namespace ecthub::rl
