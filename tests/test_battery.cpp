// Tests for the battery point: SoC dynamics (Eqs. 3-5), wear cost (Eq. 8),
// degradation surrogate (Fig. 4) and reserve sizing (Eq. 6).
#include "battery/battery_pack.hpp"
#include "battery/degradation.hpp"
#include "battery/reserve.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace ecthub::battery {
namespace {

BatteryConfig small_pack() {
  BatteryConfig cfg;
  cfg.capacity_kwh = 10.0;
  cfg.charge_rate_kw = 2.0;
  cfg.discharge_rate_kw = 2.0;
  cfg.charge_efficiency = 0.9;
  cfg.discharge_efficiency = 0.9;
  cfg.soc_min_frac = 0.2;
  cfg.soc_max_frac = 0.9;
  cfg.op_cost_per_slot = 0.01;
  return cfg;
}

// ---------------------------------------------------------------- pack

TEST(BatteryPack, InitialSocClampedToBounds) {
  BatteryPack p(small_pack(), 0.05);
  EXPECT_DOUBLE_EQ(p.soc_frac(), 0.2);
  BatteryPack q(small_pack(), 0.99);
  EXPECT_DOUBLE_EQ(q.soc_frac(), 0.9);
}

TEST(BatteryPack, IdleChangesNothing) {
  BatteryPack p(small_pack(), 0.5);
  const auto r = p.step(BpAction::kIdle, 1.0);
  EXPECT_DOUBLE_EQ(r.bus_power_kw, 0.0);
  EXPECT_DOUBLE_EQ(r.op_cost, 0.0);
  EXPECT_DOUBLE_EQ(p.soc_frac(), 0.5);
  EXPECT_EQ(r.applied, BpAction::kIdle);
}

TEST(BatteryPack, ChargeStoresEtaFractionOfDraw) {
  BatteryPack p(small_pack(), 0.5);
  const auto r = p.step(BpAction::kCharge, 1.0);
  // Bus draws the full rate; eta_ch of it lands in the pack (Eq. 3).
  EXPECT_NEAR(r.bus_power_kw, 2.0, 1e-9);
  EXPECT_NEAR(p.soc_kwh(), 5.0 + 2.0 * 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(r.op_cost, 0.01);
  EXPECT_EQ(r.applied, BpAction::kCharge);
}

TEST(BatteryPack, DischargeDepletesFasterThanDelivered) {
  BatteryPack p(small_pack(), 0.5);
  const auto r = p.step(BpAction::kDischarge, 1.0);
  EXPECT_NEAR(r.bus_power_kw, -2.0, 1e-9);  // negative = provides power
  EXPECT_NEAR(p.soc_kwh(), 5.0 - 2.0 / 0.9, 1e-9);
  EXPECT_EQ(r.applied, BpAction::kDischarge);
}

TEST(BatteryPack, ChargeStopsAtUpperBound) {
  BatteryPack p(small_pack(), 0.9);
  const auto r = p.step(BpAction::kCharge, 1.0);
  // Full: the action degrades to idle with no wear cost.
  EXPECT_DOUBLE_EQ(r.bus_power_kw, 0.0);
  EXPECT_DOUBLE_EQ(r.op_cost, 0.0);
  EXPECT_EQ(r.applied, BpAction::kIdle);
  EXPECT_DOUBLE_EQ(p.soc_frac(), 0.9);
}

TEST(BatteryPack, PartialChargeUpToBound) {
  BatteryPack p(small_pack(), 0.85);  // headroom 0.5 kWh < eta*rate = 1.8 kWh
  const auto r = p.step(BpAction::kCharge, 1.0);
  EXPECT_NEAR(p.soc_frac(), 0.9, 1e-9);
  EXPECT_GT(r.bus_power_kw, 0.0);
  EXPECT_LT(r.bus_power_kw, 2.0);  // only drew what fit
}

TEST(BatteryPack, DischargeStopsAtReserveFloor) {
  BatteryPack p(small_pack(), 0.2);
  const auto r = p.step(BpAction::kDischarge, 1.0);
  EXPECT_DOUBLE_EQ(r.bus_power_kw, 0.0);
  EXPECT_EQ(r.applied, BpAction::kIdle);
  EXPECT_DOUBLE_EQ(p.soc_frac(), 0.2);
}

TEST(BatteryPack, SocNeverLeavesBounds) {
  BatteryPack p(small_pack(), 0.5);
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<BpAction>(rng.uniform_int(0, 2));
    p.step(a, 1.0);
    EXPECT_GE(p.soc_frac(), 0.2 - 1e-9);
    EXPECT_LE(p.soc_frac(), 0.9 + 1e-9);
  }
}

TEST(BatteryPack, RoundTripLosesEnergy) {
  // Charge then discharge the same bus energy: SoC must end lower than it
  // started (eta_ch * eta_dch < 1).
  BatteryPack p(small_pack(), 0.5);
  const double initial = p.soc_kwh();
  p.step(BpAction::kCharge, 1.0);
  p.step(BpAction::kDischarge, 1.0);
  EXPECT_LT(p.soc_kwh(), initial + 1e-12);
}

TEST(BatteryPack, ReserveFloorRaisesEffectiveMinimum) {
  BatteryPack p(small_pack(), 0.5);
  p.set_reserve_floor_kwh(4.0);  // 40% of 10 kWh
  // Available energy above the floor is 1 kWh stored -> 0.9 deliverable.
  const auto r = p.step(BpAction::kDischarge, 1.0);
  EXPECT_NEAR(-r.bus_power_kw, 0.9, 1e-9);
  EXPECT_NEAR(p.soc_kwh(), 4.0, 1e-9);
}

TEST(BatteryPack, ReserveFloorOutOfRangeThrows) {
  BatteryPack p(small_pack(), 0.5);
  EXPECT_THROW(p.set_reserve_floor_kwh(0.5), std::invalid_argument);   // below soc_min
  EXPECT_THROW(p.set_reserve_floor_kwh(9.5), std::invalid_argument);   // above soc_max
}

TEST(BatteryPack, FeasibilityChecks) {
  BatteryPack full(small_pack(), 0.9);
  EXPECT_FALSE(full.feasible(BpAction::kCharge));
  EXPECT_TRUE(full.feasible(BpAction::kDischarge));
  BatteryPack empty(small_pack(), 0.2);
  EXPECT_TRUE(empty.feasible(BpAction::kCharge));
  EXPECT_FALSE(empty.feasible(BpAction::kDischarge));
  EXPECT_TRUE(empty.feasible(BpAction::kIdle));
}

TEST(BatteryPack, ThroughputAndActiveSlotCounters) {
  BatteryPack p(small_pack(), 0.5);
  p.step(BpAction::kCharge, 1.0);
  p.step(BpAction::kIdle, 1.0);
  p.step(BpAction::kDischarge, 1.0);
  EXPECT_EQ(p.active_slots(), 2u);
  EXPECT_GT(p.total_throughput_kwh(), 0.0);
}

TEST(BatteryPack, BadStepArgumentsThrow) {
  BatteryPack p(small_pack(), 0.5);
  EXPECT_THROW(p.step(BpAction::kIdle, 0.0), std::invalid_argument);
  EXPECT_THROW(p.step(BpAction::kIdle, -1.0), std::invalid_argument);
}

TEST(BatteryConfig, ValidationCatchesEveryField) {
  auto check_throws = [](auto mutate) {
    BatteryConfig cfg = small_pack();
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  check_throws([](BatteryConfig& c) { c.capacity_kwh = 0.0; });
  check_throws([](BatteryConfig& c) { c.charge_rate_kw = -1.0; });
  check_throws([](BatteryConfig& c) { c.discharge_rate_kw = 0.0; });
  check_throws([](BatteryConfig& c) { c.charge_efficiency = 1.2; });
  check_throws([](BatteryConfig& c) { c.discharge_efficiency = 0.0; });
  check_throws([](BatteryConfig& c) { c.soc_min_frac = 0.95; });
  check_throws([](BatteryConfig& c) { c.op_cost_per_slot = -0.1; });
}

// Property sweep: round-trip efficiency across the configuration space.
class EfficiencySweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EfficiencySweepTest, RoundTripLossMatchesEtaProduct) {
  const auto [eta_ch, eta_dch] = GetParam();
  BatteryConfig cfg = small_pack();
  cfg.capacity_kwh = 100.0;
  cfg.charge_rate_kw = 10.0;
  cfg.discharge_rate_kw = 10.0;
  cfg.charge_efficiency = eta_ch;
  cfg.discharge_efficiency = eta_dch;
  BatteryPack p(cfg, 0.5);
  // Charge one slot: bus pays 10 kWh, pack stores 10 * eta_ch.
  const auto c = p.step(BpAction::kCharge, 1.0);
  EXPECT_NEAR(c.bus_power_kw, 10.0, 1e-9);
  // Discharge everything stored back out.
  double delivered = 0.0;
  while (p.feasible(BpAction::kDischarge)) {
    const auto d = p.step(BpAction::kDischarge, 1.0);
    if (d.applied != BpAction::kDischarge) break;
    delivered += -d.bus_power_kw;
  }
  // Delivered energy relative to purchased: eta_ch * eta_dch plus the
  // initially stored band (5 kWh wiggle from starting at 0.5 -> exact value
  // checked as energy conservation instead).
  const double stored_gain = 10.0 * eta_ch;
  const double deliverable = (50.0 + stored_gain - p.soc_min_kwh()) * eta_dch;
  EXPECT_NEAR(delivered, deliverable, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Efficiencies, EfficiencySweepTest,
    ::testing::Values(std::make_tuple(1.0, 1.0), std::make_tuple(0.95, 0.95),
                      std::make_tuple(0.9, 0.85), std::make_tuple(0.8, 0.9)));

// Property sweep: the reserve floor monotonically tightens with T_r.
class ReserveSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReserveSweepTest, ReserveGrowsWithWindow) {
  const std::size_t window = GetParam();
  std::vector<double> trace;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) trace.push_back(rng.uniform(1.0, 4.0));
  const double r1 = reserve_energy_worst_window(trace, window, 1.0);
  const double r2 = reserve_energy_worst_window(trace, window + 1, 1.0);
  EXPECT_LE(r1, r2);  // longer outage window never needs less energy
  EXPECT_GE(r1, static_cast<double>(window) * 1.0);
  EXPECT_LE(r1, static_cast<double>(window) * 4.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, ReserveSweepTest, ::testing::Values(1u, 2u, 4u, 8u, 24u));

// ---------------------------------------------------------------- degradation

TEST(Degradation, VoltageDeclinesMonotonically) {
  const auto v = DegradationModel::voltage_trajectory(DegradationConfig{}, 350);
  ASSERT_EQ(v.size(), 350u);
  for (std::size_t d = 1; d < v.size(); ++d) EXPECT_LE(v[d], v[d - 1]);
  EXPECT_LT(v.back(), v.front());
}

TEST(Degradation, CyclingAcceleratesFade) {
  const auto idle = DegradationModel::voltage_trajectory(DegradationConfig{}, 200, 0.0);
  const auto cycled = DegradationModel::voltage_trajectory(DegradationConfig{}, 200, 5.0);
  EXPECT_LT(cycled.back(), idle.back());
}

TEST(Degradation, GroupVoltageIsCellTimesCount) {
  DegradationConfig cfg;
  cfg.cells_in_group = 24;
  DegradationModel m(cfg);
  EXPECT_NEAR(m.group_voltage(), m.cell_voltage() * 24.0, 1e-9);
}

TEST(Degradation, CapacityFractionDecreases) {
  DegradationModel m(DegradationConfig{});
  const double before = m.capacity_fraction();
  m.advance(100.0, 50.0);
  EXPECT_LT(m.capacity_fraction(), before);
  EXPECT_GT(m.capacity_fraction(), 0.5);  // surrogate clamps at 50% fade
}

TEST(Degradation, FadeSaturatesAtHalf) {
  DegradationModel m(DegradationConfig{});
  m.advance(1e7, 0.0);
  EXPECT_DOUBLE_EQ(m.capacity_fraction(), 0.5);
}

TEST(Degradation, NegativeInputsThrow) {
  DegradationModel m(DegradationConfig{});
  EXPECT_THROW(m.advance(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.advance(0.0, -1.0), std::invalid_argument);
}

TEST(Degradation, OcvIncreasesWithSoc) {
  EXPECT_LT(lead_acid_ocv(0.2), lead_acid_ocv(0.8));
  EXPECT_DOUBLE_EQ(lead_acid_ocv(-1.0), lead_acid_ocv(0.0));  // clamped
  EXPECT_DOUBLE_EQ(lead_acid_ocv(2.0), lead_acid_ocv(1.0));
}

// ---------------------------------------------------------------- reserve

TEST(Reserve, FullLoadBound) {
  EXPECT_DOUBLE_EQ(reserve_energy_full_load(3.5, 4.0), 14.0);
  EXPECT_THROW((void)reserve_energy_full_load(-1.0, 4.0), std::invalid_argument);
}

TEST(Reserve, WorstWindowFindsPeak) {
  // Trace with a 2-slot peak of 5+6 = 11 kWh at dt=1.
  const std::vector<double> trace = {1, 2, 5, 6, 1, 1};
  EXPECT_DOUBLE_EQ(reserve_energy_worst_window(trace, 2, 1.0), 11.0);
}

TEST(Reserve, WorstWindowWholeTrace) {
  const std::vector<double> trace = {1, 2, 3};
  EXPECT_DOUBLE_EQ(reserve_energy_worst_window(trace, 3, 1.0), 6.0);
}

TEST(Reserve, WorstWindowValidation) {
  EXPECT_THROW((void)reserve_energy_worst_window({1.0}, 2, 1.0), std::invalid_argument);
  EXPECT_THROW((void)reserve_energy_worst_window({1.0, 2.0}, 0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)reserve_energy_worst_window({1.0, 2.0}, 1, 0.0), std::invalid_argument);
}

TEST(Reserve, FloorFractionAccountsForEfficiency) {
  // 9 kWh delivered at 90% efficiency needs 10 kWh stored -> 0.5 of 20 kWh.
  EXPECT_NEAR(reserve_floor_fraction(9.0, 20.0, 0.9), 0.5, 1e-9);
}

TEST(Reserve, FloorFractionClampsAtOne) {
  EXPECT_DOUBLE_EQ(reserve_floor_fraction(100.0, 10.0, 1.0), 1.0);
}

TEST(Reserve, Eq6Invariant) {
  // The paper's Eq. 6: BS energy over the recovery window must fit under the
  // SoC floor.  Verify the floor sized from a trace indeed covers that trace.
  const std::vector<double> bs = {2.0, 3.0, 3.5, 2.5, 2.0, 1.5, 3.0, 3.2};
  const std::size_t recovery_slots = 4;
  const double reserve = reserve_energy_worst_window(bs, recovery_slots, 1.0);
  double worst = 0.0;
  for (std::size_t t = 0; t + recovery_slots <= bs.size(); ++t) {
    double acc = 0.0;
    for (std::size_t k = 0; k < recovery_slots; ++k) acc += bs[t + k];
    worst = std::max(worst, acc);
  }
  EXPECT_GE(reserve + 1e-9, worst);
}

}  // namespace
}  // namespace ecthub::battery
