// Tests for the multi-hub simulation engine: the scenario registry, the
// per-scenario golden corpus, the deterministic per-hub seeding, the policy
// factory, the parallel fleet runner and its lockstep-batched twin (the
// bit-identity contract every future sharding/batching PR depends on), and
// the aggregate report arithmetic.
#include "policy/drl_policy.hpp"
#include "sim/coupling.hpp"
#include "sim/drl_zoo.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/metro.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "spatial/metro.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecthub::sim {
namespace {

// Builds `n` small jobs cycling through the built-in scenarios.
std::vector<FleetJob> make_jobs(std::size_t n, std::size_t days = 2,
                                SchedulerKind sched = SchedulerKind::kGreedyPrice) {
  const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
  return make_fleet_jobs(registry, registry.keys(), n, days, sched);
}

// A small randomly-initialized actor checkpoint matching the default hub
// observation layout — training is irrelevant for execution-path identity.
std::shared_ptr<const policy::DrlCheckpoint> tiny_checkpoint(std::size_t state_dim = 0) {
  nn::Rng rng(123);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = state_dim == 0 ? policy::ObservationLayout{}.dim() : state_dim;
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  policy::DrlPolicy actor(cfg, rng);
  return std::make_shared<policy::DrlCheckpoint>(actor.checkpoint());
}

std::vector<HubRunResult> run_fleet(const std::vector<FleetJob>& jobs, std::size_t threads,
                                    std::uint64_t base_seed = 7,
                                    std::size_t episodes = 1) {
  FleetRunnerConfig cfg;
  cfg.base_seed = base_seed;
  cfg.threads = threads;
  cfg.episodes_per_hub = episodes;
  return FleetRunner(cfg).run(jobs);
}

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, HasAllSixBuiltins) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  EXPECT_EQ(reg.size(), 6u);
  for (const char* key : {"urban", "rural", "high-renewables", "blackout-prone",
                          "price-spike", "heatwave"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
    EXPECT_FALSE(reg.at(key).summary.empty());
  }
  EXPECT_EQ(reg.keys(), builtin_scenario_keys());
}

TEST(ScenarioRegistry, UnknownKeyThrows) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  EXPECT_FALSE(reg.contains("atlantis"));
  EXPECT_THROW((void)reg.at("atlantis"), std::out_of_range);
  EXPECT_THROW((void)reg.make_hub("atlantis", "h", 1), std::out_of_range);
}

TEST(ScenarioRegistry, RejectsDuplicatesAndBadScenarios) {
  ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  Scenario dup;
  dup.key = "urban";
  dup.make_hub = [](const std::string& name, std::uint64_t seed) {
    return core::HubConfig::urban(name, seed);
  };
  EXPECT_THROW(reg.add(dup), std::invalid_argument);
  Scenario unnamed;
  unnamed.make_hub = dup.make_hub;
  EXPECT_THROW(reg.add(unnamed), std::invalid_argument);
  Scenario no_factory;
  no_factory.key = "ghost";
  EXPECT_THROW(reg.add(no_factory), std::invalid_argument);
}

TEST(ScenarioRegistry, FactoriesAreDeterministic) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  for (const std::string& key : reg.keys()) {
    const core::HubConfig a = reg.make_hub(key, "h", 123);
    const core::HubConfig b = reg.make_hub(key, "h", 123);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.battery.capacity_kwh, b.battery.capacity_kwh);
    EXPECT_EQ(a.rtp.spike_prob, b.rtp.spike_prob);
    EXPECT_EQ(a.recovery_hours, b.recovery_hours);
  }
}

TEST(ScenarioRegistry, PresetsDifferWhereItMatters) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  EXPECT_GT(reg.make_hub("price-spike", "h", 1).rtp.spike_prob,
            reg.make_hub("urban", "h", 1).rtp.spike_prob);
  EXPECT_GT(reg.make_hub("blackout-prone", "h", 1).recovery_hours,
            reg.make_hub("urban", "h", 1).recovery_hours);
  EXPECT_GT(reg.make_hub("heatwave", "h", 1).weather.mean_temperature_c,
            reg.make_hub("urban", "h", 1).weather.mean_temperature_c);
  EXPECT_GT(reg.make_hub("high-renewables", "h", 1).battery.capacity_kwh,
            reg.make_hub("rural", "h", 1).battery.capacity_kwh);
}

// ------------------------------------------------------------ golden corpus

// Golden checksums for every built-in scenario preset: hub "golden", seed
// 4242, one 2-day episode under the scenario's own discount schedule.  If
// any value changes, the preset or the episode generators drifted — every
// stored sweep comparison and figure changes with it.  Regenerate
// deliberately (print the sums at %.17g) or fix the drift.
struct GoldenScenario {
  const char* key;
  double rtp_sum;
  double srtp_sum;
  double renewable_sum;
  double bs_sum;
  double cs_sum;
  double soc0;
};

TEST(ScenarioGolden, FixedSeedPinsEveryPreset) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const GoldenScenario golden[] = {
      {"blackout-prone", 4422.8543568678506, 8182.2805602055214, 43.887883932540582,
       107.9055819122873, 129.60000000000002, 0.61776257063720164},
      {"heatwave", 4428.2849770388948, 7767.0694802434637, 51.094910293962094,
       132.62810150114856, 144.0, 0.61776257063720164},
      {"high-renewables", 4424.9477848423494, 8186.1534019583432, 624.53472962883586,
       108.11492470973729, 143.0, 0.61776257063720164},
      {"price-spike", 4975.0754927678645, 8924.0408095788644, 30.985610570435121,
       107.9055819122873, 129.60000000000002, 0.61776257063720164},
      {"rural", 4424.9477848423494, 8186.1534019583432, 247.04302255018914,
       108.11492470973729, 143.0, 0.61776257063720164},
      {"urban", 4422.8543568678506, 7757.0228329270312, 30.985610570435121,
       107.9055819122873, 144.0, 0.61776257063720164},
  };
  const auto sum = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return s;
  };
  ASSERT_EQ(std::size(golden), reg.size());
  for (const GoldenScenario& g : golden) {
    const Scenario& scenario = reg.at(g.key);
    core::HubEnvConfig env_cfg = scenario.env;
    env_cfg.episode_days = 2;
    core::EctHubEnv env(reg.make_hub(g.key, "golden", 4242), env_cfg);
    env.reset();
    ASSERT_EQ(env.slots_per_episode(), 48u) << g.key;
    double rtp = 0.0, srtp = 0.0;
    for (std::size_t t = 0; t < 48; ++t) {
      rtp += env.rtp_at(t);
      srtp += env.srtp_at(t);
    }
    EXPECT_DOUBLE_EQ(rtp, g.rtp_sum) << g.key;
    EXPECT_DOUBLE_EQ(srtp, g.srtp_sum) << g.key;
    EXPECT_DOUBLE_EQ(sum(env.renewable_series()), g.renewable_sum) << g.key;
    EXPECT_DOUBLE_EQ(sum(env.bs_power_series()), g.bs_sum) << g.key;
    EXPECT_DOUBLE_EQ(sum(env.cs_power_series()), g.cs_sum) << g.key;
    EXPECT_DOUBLE_EQ(env.soc_frac(), g.soc0) << g.key;
  }
}

// ------------------------------------------------------------ seeding

TEST(MixSeed, DistinctAcrossHubsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 1000; ++id) seen.insert(mix_seed(7, id));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across the fleet
  EXPECT_NE(mix_seed(7, 0), mix_seed(8, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));
}

// ------------------------------------------------------------ policy factory

TEST(PolicyFactory, NamesRoundTripForEveryKind) {
  const auto ckpt = tiny_checkpoint();
  EXPECT_EQ(all_scheduler_kinds().size(), 6u);
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
    const auto pol = make_policy(kind, 42, policy::ObservationLayout{},
                                 kind == SchedulerKind::kDrl ? ckpt : nullptr);
    ASSERT_NE(pol, nullptr);
    EXPECT_FALSE(pol->name().empty());
  }
  EXPECT_THROW((void)scheduler_kind_from_string("ppo2"), std::invalid_argument);
}

TEST(PolicyFactory, ParseIsCaseInsensitive) {
  EXPECT_EQ(scheduler_kind_from_string("TOU"), SchedulerKind::kTou);
  EXPECT_EQ(scheduler_kind_from_string("Drl"), SchedulerKind::kDrl);
  EXPECT_EQ(scheduler_kind_from_string("GREEDY"), SchedulerKind::kGreedyPrice);
  EXPECT_EQ(scheduler_kind_from_string("ForeCast"), SchedulerKind::kForecast);
  EXPECT_EQ(scheduler_kind_from_string("NONE"), SchedulerKind::kNoBattery);
  EXPECT_EQ(scheduler_kind_from_string("Random"), SchedulerKind::kRandom);
}

TEST(PolicyFactory, ParseErrorListsEveryValidName) {
  try {
    (void)scheduler_kind_from_string("atlantis");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("atlantis"), std::string::npos);
    for (const SchedulerKind kind : all_scheduler_kinds()) {
      EXPECT_NE(msg.find(to_string(kind)), std::string::npos) << to_string(kind);
    }
  }
}

TEST(PolicyFactory, DrlRequiresMatchingCheckpoint) {
  const policy::ObservationLayout layout;  // dim 33
  EXPECT_THROW((void)make_policy(SchedulerKind::kDrl, 1, layout, nullptr),
               std::invalid_argument);
  // A checkpoint trained for a different observation shape must be rejected.
  const auto mismatched = tiny_checkpoint(policy::ObservationLayout{3}.dim());
  EXPECT_THROW((void)make_policy(SchedulerKind::kDrl, 1, layout, mismatched),
               std::invalid_argument);
  EXPECT_NE(make_policy(SchedulerKind::kDrl, 1, layout, tiny_checkpoint()), nullptr);
}

TEST(FleetJobs, MakeFleetJobsCyclesScenarios) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto jobs = make_fleet_jobs(reg, {"urban", "rural"}, 5, 3, SchedulerKind::kTou);
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].scenario, "urban");
  EXPECT_EQ(jobs[1].scenario, "rural");
  EXPECT_EQ(jobs[4].scenario, "urban");
  EXPECT_EQ(jobs[2].env.episode_days, 3u);
  EXPECT_EQ(jobs[3].hub.name, "rural-3");
  EXPECT_EQ(jobs[3].scheduler, SchedulerKind::kTou);
  EXPECT_THROW((void)make_fleet_jobs(reg, {}, 2, 3, SchedulerKind::kTou),
               std::invalid_argument);
  EXPECT_THROW((void)make_fleet_jobs(reg, {"atlantis"}, 1, 3, SchedulerKind::kTou),
               std::out_of_range);
}

TEST(FleetJobs, CheckpointIsAttachedToEveryJob) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto ckpt = tiny_checkpoint();
  const auto jobs = make_fleet_jobs(reg, {"urban"}, 3, 2, SchedulerKind::kDrl, ckpt);
  for (const FleetJob& job : jobs) {
    EXPECT_EQ(job.scheduler, SchedulerKind::kDrl);
    EXPECT_EQ(job.checkpoint.get(), ckpt.get());
  }
}

// ------------------------------------------------------------ fleet runner

TEST(FleetRunner, ParallelRunIsBitIdenticalToSerial) {
  // The acceptance criterion: 32 hubs, 8 threads vs 1 thread, every per-hub
  // ledger total equal to the last bit.
  const std::vector<FleetJob> jobs = make_jobs(32);
  const auto serial = run_fleet(jobs, 1);
  const auto parallel = run_fleet(jobs, 8);
  ASSERT_EQ(serial.size(), 32u);
  ASSERT_EQ(parallel.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(serial[i].hub_id, i);
    EXPECT_EQ(parallel[i].seed, serial[i].seed);
    EXPECT_EQ(parallel[i].profit, serial[i].profit) << "hub " << i;
    EXPECT_EQ(parallel[i].revenue, serial[i].revenue) << "hub " << i;
    EXPECT_EQ(parallel[i].grid_cost, serial[i].grid_cost) << "hub " << i;
    EXPECT_EQ(parallel[i].bp_cost, serial[i].bp_cost) << "hub " << i;
    EXPECT_EQ(parallel[i].soc.checksum, serial[i].soc.checksum) << "hub " << i;
    EXPECT_EQ(parallel[i].episode_profit, serial[i].episode_profit) << "hub " << i;
  }
}

TEST(FleetRunner, RerunWithSameBaseSeedReproducesExactly) {
  // Same base seed, different thread counts, repeated runs: identical.
  const std::vector<FleetJob> jobs = make_jobs(32);
  const auto first = run_fleet(jobs, 8);
  const auto again = run_fleet(jobs, 8);
  const auto odd_threads = run_fleet(jobs, 3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(first[i].profit, again[i].profit) << "hub " << i;
    EXPECT_EQ(first[i].profit, odd_threads[i].profit) << "hub " << i;
    EXPECT_EQ(first[i].soc.checksum, again[i].soc.checksum) << "hub " << i;
    EXPECT_EQ(first[i].soc.checksum, odd_threads[i].soc.checksum) << "hub " << i;
  }
}

TEST(FleetRunner, BaseSeedChangesResults) {
  const std::vector<FleetJob> jobs = make_jobs(4);
  const auto a = run_fleet(jobs, 2, 7);
  const auto b = run_fleet(jobs, 2, 8);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NE(a[i].seed, b[i].seed);
    if (a[i].profit != b[i].profit) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FleetRunner, HubsHaveIndependentStreams) {
  // Two replicas of the same scenario must see different stochastic draws
  // (distinct mixed seeds), not a shared or duplicated stream.
  std::vector<FleetJob> jobs = make_jobs(2);
  jobs[1] = jobs[0];
  const auto results = run_fleet(jobs, 2);
  EXPECT_NE(results[0].seed, results[1].seed);
  EXPECT_NE(results[0].profit, results[1].profit);
}

TEST(FleetRunner, MultiEpisodeAccounting) {
  const std::vector<FleetJob> jobs = make_jobs(2);
  const auto results = run_fleet(jobs, 2, 7, 3);
  for (const HubRunResult& r : results) {
    EXPECT_EQ(r.episodes, 3u);
    ASSERT_EQ(r.episode_profit.size(), 3u);
    double sum = 0.0;
    for (const double p : r.episode_profit) sum += p;
    EXPECT_DOUBLE_EQ(sum, r.profit);
    EXPECT_EQ(r.soc.samples, r.slots_per_episode);
    EXPECT_GE(r.soc.min, 0.0);
    EXPECT_LE(r.soc.max, 1.0);
    EXPECT_GE(r.soc.mean, r.soc.min);
    EXPECT_LE(r.soc.mean, r.soc.max);
  }
}

TEST(FleetRunner, EmptyJobListAndBadConfig) {
  FleetRunnerConfig cfg;
  EXPECT_TRUE(FleetRunner(cfg).run({}).empty());
  cfg.episodes_per_hub = 0;
  EXPECT_THROW(FleetRunner{cfg}, std::invalid_argument);
}

// ------------------------------------------------------------ lockstep

void expect_results_bit_identical(const std::vector<HubRunResult>& a,
                                  const std::vector<HubRunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].hub_id, b[i].hub_id);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].scheduler, b[i].scheduler);
    EXPECT_EQ(a[i].profit, b[i].profit) << "hub " << i;
    EXPECT_EQ(a[i].revenue, b[i].revenue) << "hub " << i;
    EXPECT_EQ(a[i].grid_cost, b[i].grid_cost) << "hub " << i;
    EXPECT_EQ(a[i].bp_cost, b[i].bp_cost) << "hub " << i;
    EXPECT_EQ(a[i].episode_profit, b[i].episode_profit) << "hub " << i;
    EXPECT_EQ(a[i].soc.first, b[i].soc.first) << "hub " << i;
    EXPECT_EQ(a[i].soc.last, b[i].soc.last) << "hub " << i;
    EXPECT_EQ(a[i].soc.checksum, b[i].soc.checksum) << "hub " << i;
    EXPECT_EQ(a[i].soc.samples, b[i].soc.samples) << "hub " << i;
    EXPECT_EQ(a[i].through_kwh, b[i].through_kwh) << "hub " << i;
    EXPECT_EQ(a[i].spill_exported_kwh, b[i].spill_exported_kwh) << "hub " << i;
    EXPECT_EQ(a[i].spill_served_kwh, b[i].spill_served_kwh) << "hub " << i;
    EXPECT_EQ(a[i].spill_dropped_kwh, b[i].spill_dropped_kwh) << "hub " << i;
    EXPECT_EQ(a[i].outage_slots, b[i].outage_slots) << "hub " << i;
  }
}

TEST(FleetRunnerLockstep, BitIdenticalToPerHubAcrossAllKinds) {
  // The acceptance criterion of the lockstep engine: every scheduler kind —
  // shared-batched stateless policies (none/tou/drl) and per-hub stateful
  // ones (greedy/forecast/random) side by side in one fleet — produces the
  // same ledgers to the last bit as the per-hub threaded path.
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto ckpt = tiny_checkpoint();
  std::vector<FleetJob> jobs;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto batch =
        make_fleet_jobs(reg, reg.keys(), 3, 2, kind,
                        kind == SchedulerKind::kDrl ? ckpt : nullptr);
    jobs.insert(jobs.end(), batch.begin(), batch.end());
  }
  FleetRunnerConfig cfg;
  cfg.threads = 4;
  cfg.episodes_per_hub = 2;  // exercise mid-lockstep episode turnover
  const FleetRunner runner(cfg);
  const auto per_hub = runner.run(jobs);
  const auto lockstep = runner.run_lockstep(jobs);
  expect_results_bit_identical(per_hub, lockstep);
}

TEST(FleetRunnerLockstep, DrlFleetRunsOneSharedActor) {
  // A pure ECT-DRL fleet: all hubs batch through one policy instance, and
  // the run matches the per-hub path exactly.
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto ckpt = tiny_checkpoint();
  const auto jobs =
      make_fleet_jobs(reg, reg.keys(), 8, 2, SchedulerKind::kDrl, ckpt);
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  const FleetRunner runner(cfg);
  const auto per_hub = runner.run(jobs);
  const auto lockstep = runner.run_lockstep(jobs);
  expect_results_bit_identical(per_hub, lockstep);
  for (const HubRunResult& r : lockstep) {
    EXPECT_EQ(r.scheduler, SchedulerKind::kDrl);
    ASSERT_EQ(r.episode_profit.size(), 1u);
    EXPECT_TRUE(std::isfinite(r.profit));
  }
}

TEST(FleetRunnerLockstep, EmptyJobList) {
  EXPECT_TRUE(FleetRunner(FleetRunnerConfig{}).run_lockstep({}).empty());
}

// ------------------------------------------------------------ threaded lockstep

std::vector<HubRunResult> run_lockstep_fleet(const std::vector<FleetJob>& jobs,
                                             std::size_t lockstep_threads,
                                             std::size_t episodes = 1) {
  FleetRunnerConfig cfg;
  cfg.lockstep_threads = lockstep_threads;
  cfg.episodes_per_hub = episodes;
  return FleetRunner(cfg).run_lockstep(jobs);
}

TEST(LockstepDeterminism, FourWayBitIdentity64HubsAllScenariosAllSchedulers) {
  // The determinism harness of the threaded engine: a 64-hub fleet covering
  // every built-in scenario and every scheduler kind, executed four ways —
  // per-hub run(), single-threaded lockstep, 8-thread lockstep with the
  // coordinator GEMM and 8-thread lockstep with worker row-block GEMMs —
  // must produce bit-identical per-hub episode checksums across all paths.
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto ckpt = tiny_checkpoint();
  const std::vector<std::string>& keys = reg.keys();
  const std::vector<SchedulerKind>& kinds = all_scheduler_kinds();
  std::vector<FleetJob> jobs;
  jobs.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const std::string& key = keys[i % keys.size()];
    const SchedulerKind kind = kinds[(i / keys.size()) % kinds.size()];
    FleetJob job;
    job.hub = reg.at(key).make_hub(key + "-" + std::to_string(i), 0);
    job.env = reg.at(key).env;
    job.env.episode_days = 2;
    job.scenario = key;
    job.scheduler = kind;
    if (kind == SchedulerKind::kDrl) job.checkpoint = ckpt;
    jobs.push_back(std::move(job));
  }
  // Every scheduler kind must actually be in the fleet.
  std::set<SchedulerKind> covered;
  for (const FleetJob& job : jobs) covered.insert(job.scheduler);
  ASSERT_EQ(covered.size(), kinds.size());

  FleetRunnerConfig cfg;
  cfg.threads = 8;
  cfg.episodes_per_hub = 2;  // exercise mid-lockstep episode turnover
  cfg.lockstep_threads = 1;
  const auto per_hub = FleetRunner(cfg).run(jobs);
  const auto lockstep_1 = FleetRunner(cfg).run_lockstep(jobs);
  cfg.lockstep_threads = 8;
  cfg.lockstep_gemm = LockstepGemm::kCoordinator;
  const auto lockstep_8_coord = FleetRunner(cfg).run_lockstep(jobs);
  cfg.lockstep_gemm = LockstepGemm::kWorker;
  const auto lockstep_8_worker = FleetRunner(cfg).run_lockstep(jobs);

  expect_results_bit_identical(per_hub, lockstep_1);
  expect_results_bit_identical(lockstep_1, lockstep_8_coord);
  expect_results_bit_identical(lockstep_8_coord, lockstep_8_worker);
}

TEST(LockstepDeterminism, GemmPlacementIsBitIdenticalAtEveryThreadCount) {
  // The two phase-B placements across 1/2/5 workers on a mixed fleet: every
  // combination must reproduce the same ledgers — worker row-block GEMMs are
  // an execution detail, never a numerics change.
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto ckpt = tiny_checkpoint();
  std::vector<FleetJob> jobs;
  for (const SchedulerKind kind :
       {SchedulerKind::kDrl, SchedulerKind::kTou, SchedulerKind::kGreedyPrice}) {
    const auto batch = make_fleet_jobs(reg, reg.keys(), 5, 2, kind,
                                       kind == SchedulerKind::kDrl ? ckpt : nullptr);
    jobs.insert(jobs.end(), batch.begin(), batch.end());
  }
  FleetRunnerConfig cfg;
  cfg.episodes_per_hub = 2;
  cfg.lockstep_threads = 1;
  cfg.lockstep_gemm = LockstepGemm::kCoordinator;
  const auto reference = FleetRunner(cfg).run_lockstep(jobs);
  for (const std::size_t threads : {1u, 2u, 5u}) {
    for (const LockstepGemm mode : all_lockstep_gemm_modes()) {
      cfg.lockstep_threads = threads;
      cfg.lockstep_gemm = mode;
      const auto got = FleetRunner(cfg).run_lockstep(jobs);
      expect_results_bit_identical(reference, got);
    }
  }
}

TEST(LockstepDeterminism, GemmModeNamesRoundTrip) {
  EXPECT_EQ(all_lockstep_gemm_modes().size(), 2u);
  for (const LockstepGemm mode : all_lockstep_gemm_modes()) {
    EXPECT_EQ(lockstep_gemm_from_string(to_string(mode)), mode);
  }
  EXPECT_EQ(lockstep_gemm_from_string("Coordinator"), LockstepGemm::kCoordinator);
  EXPECT_EQ(lockstep_gemm_from_string("WORKER"), LockstepGemm::kWorker);
  EXPECT_THROW((void)lockstep_gemm_from_string("gpu"), std::invalid_argument);
}

// ------------------------------------------------------------ metro coupling

// A 64-hub spatially generated metro fleet with coupling enabled on every
// hub.  Half the fleet runs the batched DRL path (so phase B GEMMs and the
// exchange interleave), half runs a stateful per-hub scheduler.
std::vector<FleetJob> make_coupled_metro_jobs(std::size_t hubs) {
  spatial::MetroConfig metro_cfg;
  metro_cfg.num_hubs = hubs;
  const spatial::MetroMap metro(metro_cfg, 42);
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  auto jobs = make_metro_fleet_jobs(metro, reg, reg.keys(), 2, SchedulerKind::kDrl,
                                    tiny_checkpoint());
  for (std::size_t i = 0; i < jobs.size(); i += 2) {
    jobs[i].scheduler = SchedulerKind::kGreedyPrice;
    jobs[i].checkpoint = nullptr;
  }
  return jobs;
}

TEST(LockstepDeterminism, CoupledMetroFleetBitIdenticalAcrossThreadsAndGemm) {
  // The acceptance criterion of the coupling layer: a 64-hub coupled metro
  // fleet — CouplingBus exchange at every slot barrier, correlated fronts,
  // through-traffic, episode turnover mid-run — is bit-identical between
  // lockstep x1 and lockstep x8 under both GEMM placements, spill ledgers
  // included.
  const std::vector<FleetJob> jobs = make_coupled_metro_jobs(64);
  FleetRunnerConfig cfg;
  cfg.episodes_per_hub = 2;  // exercise pending-import drop at turnover
  cfg.lockstep_threads = 1;
  const auto reference = FleetRunner(cfg).run_lockstep(jobs);
  cfg.lockstep_threads = 8;
  cfg.lockstep_gemm = LockstepGemm::kCoordinator;
  const auto coord_8 = FleetRunner(cfg).run_lockstep(jobs);
  cfg.lockstep_gemm = LockstepGemm::kWorker;
  const auto worker_8 = FleetRunner(cfg).run_lockstep(jobs);
  expect_results_bit_identical(reference, coord_8);
  expect_results_bit_identical(coord_8, worker_8);

  // The coupling must actually be live: demand flowed over the bus and some
  // of it was absorbed by neighbors.
  double exported = 0.0, served = 0.0, through = 0.0;
  for (const HubRunResult& r : reference) {
    exported += r.spill_exported_kwh;
    served += r.spill_served_kwh;
    through += r.through_kwh;
  }
  EXPECT_GT(through, 0.0);
  EXPECT_GT(exported, 0.0);
  EXPECT_GT(served, 0.0);
}

TEST(FleetRunner, RunRejectsCoupledJobs) {
  // Per-hub execution cannot honor the slot-synchronous exchange; both the
  // coupling flag and a bare neighbor list must route callers to
  // run_lockstep with a clear error.
  std::vector<FleetJob> jobs = make_jobs(2);
  jobs[0].env.coupling.enabled = true;
  EXPECT_THROW((void)FleetRunner(FleetRunnerConfig{}).run(jobs), std::invalid_argument);

  std::vector<FleetJob> neighbor_jobs = make_jobs(2);
  neighbor_jobs[1].neighbors = {0};
  EXPECT_THROW((void)FleetRunner(FleetRunnerConfig{}).run(neighbor_jobs),
               std::invalid_argument);
  // run_lockstep accepts the same job set.
  EXPECT_EQ(FleetRunner(FleetRunnerConfig{}).run_lockstep(neighbor_jobs).size(), 2u);
}

TEST(CouplingBus, RoutesEqualSharesAndDeliversNextTake) {
  // Hub 0 exports to {1, 2}; hub 1 exports to {0}; hub 2 has no neighbors.
  CouplingBus bus({{1, 2}, {0}, {}});
  ASSERT_EQ(bus.lanes(), 3u);
  bus.deposit(0, 10.0);
  bus.deposit(1, 4.0);
  // Nothing is visible until the barrier exchange.
  EXPECT_DOUBLE_EQ(bus.take(1), 0.0);
  bus.exchange();
  EXPECT_DOUBLE_EQ(bus.take(0), 4.0);  // all of hub 1's export
  EXPECT_DOUBLE_EQ(bus.take(1), 5.0);  // half of hub 0's export
  EXPECT_DOUBLE_EQ(bus.take(2), 5.0);
  // take() drains: a second read in the same slot sees nothing.
  EXPECT_DOUBLE_EQ(bus.take(1), 0.0);
  // Exports without neighbors vanish (hub 2 has nowhere to route).
  bus.deposit(2, 7.0);
  bus.exchange();
  EXPECT_DOUBLE_EQ(bus.take(0), 0.0);
  EXPECT_DOUBLE_EQ(bus.take(1), 0.0);
  EXPECT_DOUBLE_EQ(bus.take(2), 0.0);
  // drop_pending clears a lane's queued imports at episode turnover.
  bus.deposit(0, 6.0);
  bus.exchange();
  bus.drop_pending(1);
  EXPECT_DOUBLE_EQ(bus.take(1), 0.0);
  EXPECT_DOUBLE_EQ(bus.take(2), 3.0);
}

TEST(CouplingBus, RejectsBadNeighborLists) {
  EXPECT_THROW(CouplingBus({{1}, {5}}), std::invalid_argument);  // out of range
  EXPECT_THROW(CouplingBus({{0}, {0}}), std::invalid_argument);  // self-loop
}

TEST(FleetRunnerLockstep, OversubscribedThreadsMatchSerial) {
  // More workers than hubs: partitions clamp to the fleet size and the
  // result stays bit-identical.
  const std::vector<FleetJob> jobs = make_jobs(3);
  expect_results_bit_identical(run_lockstep_fleet(jobs, 1),
                               run_lockstep_fleet(jobs, 16));
}

TEST(FleetRunnerLockstep, SingleHubFleetRunsThreaded) {
  const std::vector<FleetJob> jobs = make_jobs(1);
  const auto serial = run_lockstep_fleet(jobs, 1);
  const auto threaded = run_lockstep_fleet(jobs, 4);
  ASSERT_EQ(threaded.size(), 1u);
  expect_results_bit_identical(serial, threaded);
  EXPECT_TRUE(std::isfinite(threaded[0].profit));
}

TEST(FleetRunnerLockstep, HardwareConcurrencyDefaultMatchesSerial) {
  // lockstep_threads == 0 resolves to hardware_concurrency.
  const std::vector<FleetJob> jobs = make_jobs(6);
  expect_results_bit_identical(run_lockstep_fleet(jobs, 1),
                               run_lockstep_fleet(jobs, 0));
}

TEST(FleetRunnerLockstep, BarrierStressManySlotsManyEpisodes) {
  // Thousands of barrier crossings on a tiny fleet: 2 hubs x 10 days x 3
  // episodes with 2 workers is ~1440 slots -> ~2880 barrier phases.  Any
  // lost-wakeup or ordering bug shows up as a hang (ctest timeout) or a
  // checksum mismatch.
  const std::vector<FleetJob> jobs = make_jobs(2, 10);
  expect_results_bit_identical(run_lockstep_fleet(jobs, 1, 3),
                               run_lockstep_fleet(jobs, 2, 3));
}

TEST(FleetRunnerLockstep, WorkerExceptionPropagatesWithoutDeadlock) {
  // A negative traffic noise sigma makes TrafficGenerator's constructor
  // throw at the first reset — which threaded lockstep performs on a worker
  // thread.  The crew must surface the exception, not deadlock or crash.
  std::vector<FleetJob> jobs = make_jobs(8);
  jobs[5].hub.traffic.noise_sigma = -1.0;
  FleetRunnerConfig cfg;
  cfg.lockstep_threads = 4;
  const FleetRunner runner(cfg);
  EXPECT_THROW((void)runner.run_lockstep(jobs), std::invalid_argument);
  // The runner stays usable after a failed fleet.
  jobs[5].hub.traffic.noise_sigma = 0.08;
  const auto results = runner.run_lockstep(jobs);
  ASSERT_EQ(results.size(), 8u);
  EXPECT_TRUE(std::isfinite(results[5].profit));
}

TEST(FleetRunnerLockstep, SerialWorkerExceptionAlsoPropagates) {
  std::vector<FleetJob> jobs = make_jobs(4);
  jobs[0].hub.traffic.noise_sigma = -1.0;
  EXPECT_THROW((void)run_lockstep_fleet(jobs, 1), std::invalid_argument);
}

TEST(FleetRunner, WorkerExceptionsPropagate) {
  // A zero-capacity battery makes EctHubEnv construction throw inside the
  // worker; the runner must surface it, not deadlock or crash.
  std::vector<FleetJob> jobs = make_jobs(4);
  jobs[2].hub.battery.capacity_kwh = 0.0;
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  EXPECT_THROW((void)FleetRunner(cfg).run(jobs), std::invalid_argument);
}

// ------------------------------------------------------------ report

HubRunResult fake_result(std::size_t id, const std::string& scenario, double profit,
                         SchedulerKind sched = SchedulerKind::kTou) {
  HubRunResult r;
  r.hub_id = id;
  r.hub_name = scenario + "-" + std::to_string(id);
  r.scenario = scenario;
  r.scheduler = sched;
  r.episodes = 1;
  r.revenue = profit + 10.0;
  r.grid_cost = 8.0;
  r.bp_cost = 2.0;
  r.profit = profit;
  r.soc.mean = 0.5;
  return r;
}

TEST(AggregateReport, GroupsByScenarioAndScheduler) {
  const std::vector<HubRunResult> results = {
      fake_result(0, "urban", 4.0, SchedulerKind::kTou),
      fake_result(1, "urban", 6.0, SchedulerKind::kForecast),
      fake_result(2, "rural", 1.0, SchedulerKind::kTou),
  };
  const AggregateReport report(results);
  EXPECT_EQ(report.totals().hubs, 3u);
  EXPECT_DOUBLE_EQ(report.totals().profit.value(), 11.0);
  ASSERT_EQ(report.by_scenario().size(), 2u);
  EXPECT_DOUBLE_EQ(report.by_scenario().at("urban").profit.value(), 10.0);
  EXPECT_DOUBLE_EQ(report.by_scenario().at("urban").profit_per_hub(), 5.0);
  EXPECT_DOUBLE_EQ(report.by_scenario().at("rural").profit.value(), 1.0);
  ASSERT_EQ(report.by_scheduler().size(), 2u);
  EXPECT_EQ(report.by_scheduler().at("tou").hubs, 2u);
  EXPECT_DOUBLE_EQ(report.totals().mean_soc(), 0.5);
}

TEST(AggregateReport, MergeFoldsShards) {
  AggregateReport a({fake_result(0, "urban", 4.0)});
  const AggregateReport b({fake_result(1, "urban", 6.0), fake_result(2, "rural", 1.0)});
  a.merge(b);
  EXPECT_EQ(a.totals().hubs, 3u);
  EXPECT_DOUBLE_EQ(a.totals().profit.value(), 11.0);
  EXPECT_DOUBLE_EQ(a.by_scenario().at("urban").profit.value(), 10.0);
  EXPECT_EQ(a.by_scenario().at("rural").hubs, 1u);
}

TEST(AggregateReport, TablesRenderOneRowPerGroupPlusTotal) {
  const std::vector<HubRunResult> results = {
      fake_result(0, "urban", 4.0),
      fake_result(1, "rural", 1.0),
  };
  const AggregateReport report(results);
  EXPECT_EQ(report.scenario_table().num_rows(), 3u);   // 2 scenarios + TOTAL
  EXPECT_EQ(report.scheduler_table().num_rows(), 2u);  // 1 scheduler + TOTAL
  EXPECT_EQ(per_hub_table(results).num_rows(), 2u);
  EXPECT_FALSE(report.scenario_table().str().empty());
}

// ---------------------------------------------------------------- actor zoo

ZooTrainConfig tiny_zoo_cfg() {
  ZooTrainConfig cfg;
  cfg.episode_days = 1;
  cfg.iterations = 1;
  cfg.train_hubs = 1;
  cfg.ppo.episodes_per_iteration = 1;
  return cfg;
}

TEST(DrlZoo, TrainsSpecialistPerKeyPlusGeneralist) {
  const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
  const ActorZoo zoo =
      train_actor_zoo(registry, {"urban", "rural"}, tiny_zoo_cfg());
  EXPECT_EQ(zoo.keys, (std::vector<std::string>{"rural", "urban"}));  // sorted
  ASSERT_EQ(zoo.specialists.size(), 2u);
  EXPECT_FALSE(zoo.specialists.at("urban").blob.empty());
  EXPECT_FALSE(zoo.specialists.at("rural").blob.empty());
  EXPECT_FALSE(zoo.generalist.blob.empty());
  // Different training fleets and seed streams: the actors must differ.
  EXPECT_NE(zoo.specialists.at("urban").blob, zoo.specialists.at("rural").blob);
  EXPECT_NE(zoo.generalist.blob, zoo.specialists.at("urban").blob);
  // Every checkpoint deploys through the Policy API.
  policy::DrlPolicy deployed(zoo.generalist);
  EXPECT_LT(deployed.decide(std::vector<double>(
                zoo.generalist.config.state_dim, 0.1)),
            3u);
}

TEST(DrlZoo, DeterministicAcrossRunsAndCollectorThreads) {
  const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
  ZooTrainConfig cfg = tiny_zoo_cfg();
  const ActorZoo a = train_actor_zoo(registry, {"urban"}, cfg);
  cfg.collector_threads = 4;
  const ActorZoo b = train_actor_zoo(registry, {"urban"}, cfg);
  EXPECT_EQ(a.specialists.at("urban").blob, b.specialists.at("urban").blob);
  EXPECT_EQ(a.generalist.blob, b.generalist.blob);
}

TEST(DrlZoo, ValidatesInputs) {
  const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
  ZooTrainConfig cfg = tiny_zoo_cfg();
  EXPECT_THROW((void)train_actor_zoo(registry, {"nope"}, cfg), std::out_of_range);
  cfg.train_hubs = 0;
  EXPECT_THROW((void)train_actor_zoo(registry, {"urban"}, cfg),
               std::invalid_argument);
}

TEST(DrlZoo, EmptyKeySelectionCoversWholeRegistry) {
  // Dedup + default-to-all behaviour, without paying for six trainings: a
  // two-scenario registry built from the urban/rural presets.
  const ScenarioRegistry builtins = ScenarioRegistry::with_builtins();
  ScenarioRegistry registry;
  registry.add(builtins.at("urban"));
  registry.add(builtins.at("rural"));
  const ActorZoo zoo = train_actor_zoo(registry, {}, tiny_zoo_cfg());
  EXPECT_EQ(zoo.keys, registry.keys());
  EXPECT_EQ(zoo.specialists.size(), 2u);
}

}  // namespace
}  // namespace ecthub::sim
