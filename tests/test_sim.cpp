// Tests for the multi-hub simulation engine: the scenario registry, the
// deterministic per-hub seeding, the parallel fleet runner (the bit-identity
// contract every future sharding/batching PR depends on), and the aggregate
// report arithmetic.
#include "sim/fleet_runner.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecthub::sim {
namespace {

// Builds `n` small jobs cycling through the built-in scenarios.
std::vector<FleetJob> make_jobs(std::size_t n, std::size_t days = 2,
                                SchedulerKind sched = SchedulerKind::kGreedyPrice) {
  const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
  return make_fleet_jobs(registry, registry.keys(), n, days, sched);
}

std::vector<HubRunResult> run_fleet(const std::vector<FleetJob>& jobs, std::size_t threads,
                                    std::uint64_t base_seed = 7,
                                    std::size_t episodes = 1) {
  FleetRunnerConfig cfg;
  cfg.base_seed = base_seed;
  cfg.threads = threads;
  cfg.episodes_per_hub = episodes;
  return FleetRunner(cfg).run(jobs);
}

// ------------------------------------------------------------ registry

TEST(ScenarioRegistry, HasAllSixBuiltins) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  EXPECT_EQ(reg.size(), 6u);
  for (const char* key : {"urban", "rural", "high-renewables", "blackout-prone",
                          "price-spike", "heatwave"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
    EXPECT_FALSE(reg.at(key).summary.empty());
  }
  EXPECT_EQ(reg.keys(), builtin_scenario_keys());
}

TEST(ScenarioRegistry, UnknownKeyThrows) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  EXPECT_FALSE(reg.contains("atlantis"));
  EXPECT_THROW((void)reg.at("atlantis"), std::out_of_range);
  EXPECT_THROW((void)reg.make_hub("atlantis", "h", 1), std::out_of_range);
}

TEST(ScenarioRegistry, RejectsDuplicatesAndBadScenarios) {
  ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  Scenario dup;
  dup.key = "urban";
  dup.make_hub = [](const std::string& name, std::uint64_t seed) {
    return core::HubConfig::urban(name, seed);
  };
  EXPECT_THROW(reg.add(dup), std::invalid_argument);
  Scenario unnamed;
  unnamed.make_hub = dup.make_hub;
  EXPECT_THROW(reg.add(unnamed), std::invalid_argument);
  Scenario no_factory;
  no_factory.key = "ghost";
  EXPECT_THROW(reg.add(no_factory), std::invalid_argument);
}

TEST(ScenarioRegistry, FactoriesAreDeterministic) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  for (const std::string& key : reg.keys()) {
    const core::HubConfig a = reg.make_hub(key, "h", 123);
    const core::HubConfig b = reg.make_hub(key, "h", 123);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.battery.capacity_kwh, b.battery.capacity_kwh);
    EXPECT_EQ(a.rtp.spike_prob, b.rtp.spike_prob);
    EXPECT_EQ(a.recovery_hours, b.recovery_hours);
  }
}

TEST(ScenarioRegistry, PresetsDifferWhereItMatters) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  EXPECT_GT(reg.make_hub("price-spike", "h", 1).rtp.spike_prob,
            reg.make_hub("urban", "h", 1).rtp.spike_prob);
  EXPECT_GT(reg.make_hub("blackout-prone", "h", 1).recovery_hours,
            reg.make_hub("urban", "h", 1).recovery_hours);
  EXPECT_GT(reg.make_hub("heatwave", "h", 1).weather.mean_temperature_c,
            reg.make_hub("urban", "h", 1).weather.mean_temperature_c);
  EXPECT_GT(reg.make_hub("high-renewables", "h", 1).battery.capacity_kwh,
            reg.make_hub("rural", "h", 1).battery.capacity_kwh);
}

// ------------------------------------------------------------ seeding

TEST(MixSeed, DistinctAcrossHubsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 1000; ++id) seen.insert(mix_seed(7, id));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across the fleet
  EXPECT_NE(mix_seed(7, 0), mix_seed(8, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));
}

// ------------------------------------------------------------ schedulers

TEST(SchedulerFactory, NamesRoundTrip) {
  for (const auto kind :
       {SchedulerKind::kNoBattery, SchedulerKind::kTou, SchedulerKind::kGreedyPrice,
        SchedulerKind::kForecast, SchedulerKind::kRandom}) {
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
    const auto sched = make_scheduler(kind, 42);
    ASSERT_NE(sched, nullptr);
    EXPECT_FALSE(sched->name().empty());
  }
  EXPECT_THROW((void)scheduler_kind_from_string("ppo2"), std::invalid_argument);
}

TEST(FleetJobs, MakeFleetJobsCyclesScenarios) {
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const auto jobs = make_fleet_jobs(reg, {"urban", "rural"}, 5, 3, SchedulerKind::kTou);
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].scenario, "urban");
  EXPECT_EQ(jobs[1].scenario, "rural");
  EXPECT_EQ(jobs[4].scenario, "urban");
  EXPECT_EQ(jobs[2].env.episode_days, 3u);
  EXPECT_EQ(jobs[3].hub.name, "rural-3");
  EXPECT_EQ(jobs[3].scheduler, SchedulerKind::kTou);
  EXPECT_THROW((void)make_fleet_jobs(reg, {}, 2, 3, SchedulerKind::kTou),
               std::invalid_argument);
  EXPECT_THROW((void)make_fleet_jobs(reg, {"atlantis"}, 1, 3, SchedulerKind::kTou),
               std::out_of_range);
}

// ------------------------------------------------------------ fleet runner

TEST(FleetRunner, ParallelRunIsBitIdenticalToSerial) {
  // The acceptance criterion: 32 hubs, 8 threads vs 1 thread, every per-hub
  // ledger total equal to the last bit.
  const std::vector<FleetJob> jobs = make_jobs(32);
  const auto serial = run_fleet(jobs, 1);
  const auto parallel = run_fleet(jobs, 8);
  ASSERT_EQ(serial.size(), 32u);
  ASSERT_EQ(parallel.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(serial[i].hub_id, i);
    EXPECT_EQ(parallel[i].seed, serial[i].seed);
    EXPECT_EQ(parallel[i].profit, serial[i].profit) << "hub " << i;
    EXPECT_EQ(parallel[i].revenue, serial[i].revenue) << "hub " << i;
    EXPECT_EQ(parallel[i].grid_cost, serial[i].grid_cost) << "hub " << i;
    EXPECT_EQ(parallel[i].bp_cost, serial[i].bp_cost) << "hub " << i;
    EXPECT_EQ(parallel[i].soc.checksum, serial[i].soc.checksum) << "hub " << i;
    EXPECT_EQ(parallel[i].episode_profit, serial[i].episode_profit) << "hub " << i;
  }
}

TEST(FleetRunner, RerunWithSameBaseSeedReproducesExactly) {
  // Same base seed, different thread counts, repeated runs: identical.
  const std::vector<FleetJob> jobs = make_jobs(32);
  const auto first = run_fleet(jobs, 8);
  const auto again = run_fleet(jobs, 8);
  const auto odd_threads = run_fleet(jobs, 3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(first[i].profit, again[i].profit) << "hub " << i;
    EXPECT_EQ(first[i].profit, odd_threads[i].profit) << "hub " << i;
    EXPECT_EQ(first[i].soc.checksum, again[i].soc.checksum) << "hub " << i;
    EXPECT_EQ(first[i].soc.checksum, odd_threads[i].soc.checksum) << "hub " << i;
  }
}

TEST(FleetRunner, BaseSeedChangesResults) {
  const std::vector<FleetJob> jobs = make_jobs(4);
  const auto a = run_fleet(jobs, 2, 7);
  const auto b = run_fleet(jobs, 2, 8);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NE(a[i].seed, b[i].seed);
    if (a[i].profit != b[i].profit) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FleetRunner, HubsHaveIndependentStreams) {
  // Two replicas of the same scenario must see different stochastic draws
  // (distinct mixed seeds), not a shared or duplicated stream.
  std::vector<FleetJob> jobs = make_jobs(2);
  jobs[1] = jobs[0];
  const auto results = run_fleet(jobs, 2);
  EXPECT_NE(results[0].seed, results[1].seed);
  EXPECT_NE(results[0].profit, results[1].profit);
}

TEST(FleetRunner, MultiEpisodeAccounting) {
  const std::vector<FleetJob> jobs = make_jobs(2);
  const auto results = run_fleet(jobs, 2, 7, 3);
  for (const HubRunResult& r : results) {
    EXPECT_EQ(r.episodes, 3u);
    ASSERT_EQ(r.episode_profit.size(), 3u);
    double sum = 0.0;
    for (const double p : r.episode_profit) sum += p;
    EXPECT_DOUBLE_EQ(sum, r.profit);
    EXPECT_EQ(r.soc.samples, r.slots_per_episode);
    EXPECT_GE(r.soc.min, 0.0);
    EXPECT_LE(r.soc.max, 1.0);
    EXPECT_GE(r.soc.mean, r.soc.min);
    EXPECT_LE(r.soc.mean, r.soc.max);
  }
}

TEST(FleetRunner, EmptyJobListAndBadConfig) {
  FleetRunnerConfig cfg;
  EXPECT_TRUE(FleetRunner(cfg).run({}).empty());
  cfg.episodes_per_hub = 0;
  EXPECT_THROW(FleetRunner{cfg}, std::invalid_argument);
}

TEST(FleetRunner, WorkerExceptionsPropagate) {
  // A zero-capacity battery makes EctHubEnv construction throw inside the
  // worker; the runner must surface it, not deadlock or crash.
  std::vector<FleetJob> jobs = make_jobs(4);
  jobs[2].hub.battery.capacity_kwh = 0.0;
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  EXPECT_THROW((void)FleetRunner(cfg).run(jobs), std::invalid_argument);
}

// ------------------------------------------------------------ report

HubRunResult fake_result(std::size_t id, const std::string& scenario, double profit,
                         SchedulerKind sched = SchedulerKind::kTou) {
  HubRunResult r;
  r.hub_id = id;
  r.hub_name = scenario + "-" + std::to_string(id);
  r.scenario = scenario;
  r.scheduler = sched;
  r.episodes = 1;
  r.revenue = profit + 10.0;
  r.grid_cost = 8.0;
  r.bp_cost = 2.0;
  r.profit = profit;
  r.soc.mean = 0.5;
  return r;
}

TEST(AggregateReport, GroupsByScenarioAndScheduler) {
  const std::vector<HubRunResult> results = {
      fake_result(0, "urban", 4.0, SchedulerKind::kTou),
      fake_result(1, "urban", 6.0, SchedulerKind::kForecast),
      fake_result(2, "rural", 1.0, SchedulerKind::kTou),
  };
  const AggregateReport report(results);
  EXPECT_EQ(report.totals().hubs, 3u);
  EXPECT_DOUBLE_EQ(report.totals().profit, 11.0);
  ASSERT_EQ(report.by_scenario().size(), 2u);
  EXPECT_DOUBLE_EQ(report.by_scenario().at("urban").profit, 10.0);
  EXPECT_DOUBLE_EQ(report.by_scenario().at("urban").profit_per_hub(), 5.0);
  EXPECT_DOUBLE_EQ(report.by_scenario().at("rural").profit, 1.0);
  ASSERT_EQ(report.by_scheduler().size(), 2u);
  EXPECT_EQ(report.by_scheduler().at("tou").hubs, 2u);
  EXPECT_DOUBLE_EQ(report.totals().mean_soc(), 0.5);
}

TEST(AggregateReport, MergeFoldsShards) {
  AggregateReport a({fake_result(0, "urban", 4.0)});
  const AggregateReport b({fake_result(1, "urban", 6.0), fake_result(2, "rural", 1.0)});
  a.merge(b);
  EXPECT_EQ(a.totals().hubs, 3u);
  EXPECT_DOUBLE_EQ(a.totals().profit, 11.0);
  EXPECT_DOUBLE_EQ(a.by_scenario().at("urban").profit, 10.0);
  EXPECT_EQ(a.by_scenario().at("rural").hubs, 1u);
}

TEST(AggregateReport, TablesRenderOneRowPerGroupPlusTotal) {
  const std::vector<HubRunResult> results = {
      fake_result(0, "urban", 4.0),
      fake_result(1, "rural", 1.0),
  };
  const AggregateReport report(results);
  EXPECT_EQ(report.scenario_table().num_rows(), 3u);   // 2 scenarios + TOTAL
  EXPECT_EQ(report.scheduler_table().num_rows(), 2u);  // 1 scheduler + TOTAL
  EXPECT_EQ(per_hub_table(results).num_rows(), 2u);
  EXPECT_FALSE(report.scenario_table().str().empty());
}

}  // namespace
}  // namespace ecthub::sim
