// Tests for the M/M/s charging-station queue: Erlang-C closed forms,
// simulator cross-validation against theory, and station sizing.
#include "ev/queue.hpp"

#include <gtest/gtest.h>

namespace ecthub::ev {
namespace {

TEST(MmsMetrics, MM1KnownValues) {
  // M/M/1 with rho = 0.5: P(wait) = rho, Lq = rho^2/(1-rho) = 0.5.
  MmsConfig cfg;
  cfg.arrival_rate = 1.0;
  cfg.service_rate = 2.0;
  cfg.servers = 1;
  const auto m = mms_metrics(cfg);
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
  EXPECT_NEAR(m.p_wait, 0.5, 1e-12);
  EXPECT_NEAR(m.mean_queue_len, 0.5, 1e-12);
  EXPECT_NEAR(m.mean_wait_h, 0.5, 1e-12);
  EXPECT_NEAR(m.mean_in_system, 1.0, 1e-12);
}

TEST(MmsMetrics, ErlangCTwoServers) {
  // M/M/2, lambda = 2, mu = 1.5 -> a = 4/3, rho = 2/3.
  // Erlang-C = (a^2/2) / ((1-rho)(1 + a) + a^2/2) = 0.5333...
  MmsConfig cfg;
  cfg.arrival_rate = 2.0;
  cfg.service_rate = 1.5;
  cfg.servers = 2;
  const auto m = mms_metrics(cfg);
  const double a = 4.0 / 3.0;
  const double expected_c =
      (a * a / 2.0) / ((1.0 - 2.0 / 3.0) * (1.0 + a) + a * a / 2.0);
  EXPECT_NEAR(m.p_wait, expected_c, 1e-12);
  EXPECT_NEAR(m.mean_queue_len, expected_c * (2.0 / 3.0) / (1.0 / 3.0), 1e-12);
}

TEST(MmsMetrics, MoreServersReduceWaiting) {
  MmsConfig two;
  two.arrival_rate = 2.0;
  two.service_rate = 1.5;
  two.servers = 2;
  MmsConfig four = two;
  four.servers = 4;
  EXPECT_GT(mms_metrics(two).mean_wait_h, mms_metrics(four).mean_wait_h);
  EXPECT_GT(mms_metrics(two).p_wait, mms_metrics(four).p_wait);
}

TEST(MmsMetrics, UnstableQueueThrows) {
  MmsConfig cfg;
  cfg.arrival_rate = 3.0;
  cfg.service_rate = 1.0;
  cfg.servers = 3;  // rho = 1
  EXPECT_THROW((void)mms_metrics(cfg), std::invalid_argument);
  cfg.arrival_rate = 0.0;
  EXPECT_THROW((void)mms_metrics(cfg), std::invalid_argument);
}

TEST(MmsSimulation, MatchesErlangCTheory) {
  // Property test: long simulation statistics converge to the closed form.
  MmsConfig cfg;
  cfg.arrival_rate = 2.0;
  cfg.service_rate = 1.5;
  cfg.servers = 2;
  const auto theory = mms_metrics(cfg);
  const auto sim = simulate_mms(cfg, 40000.0, Rng(7));
  EXPECT_GT(sim.arrivals, 50000u);
  EXPECT_NEAR(sim.mean_wait_h, theory.mean_wait_h, 0.08 * theory.mean_wait_h + 0.02);
  EXPECT_NEAR(sim.fraction_waited, theory.p_wait, 0.05);
}

TEST(MmsSimulation, MM1MatchesTheoryToo) {
  MmsConfig cfg;
  cfg.arrival_rate = 0.8;
  cfg.service_rate = 1.0;
  cfg.servers = 1;
  const auto theory = mms_metrics(cfg);
  const auto sim = simulate_mms(cfg, 40000.0, Rng(8));
  EXPECT_NEAR(sim.mean_wait_h, theory.mean_wait_h, 0.12 * theory.mean_wait_h);
}

TEST(MmsSimulation, LightLoadRarelyWaits) {
  MmsConfig cfg;
  cfg.arrival_rate = 0.2;
  cfg.service_rate = 2.0;
  cfg.servers = 3;
  const auto sim = simulate_mms(cfg, 5000.0, Rng(9));
  EXPECT_LT(sim.fraction_waited, 0.02);
}

TEST(MmsSimulation, Validation) {
  MmsConfig cfg;
  EXPECT_THROW((void)simulate_mms(cfg, 0.0, Rng(10)), std::invalid_argument);
  EXPECT_THROW((void)simulate_mms(cfg, 10.0, Rng(10), 1.0), std::invalid_argument);
}

TEST(SizeStation, FindsMinimalPlugCount) {
  // lambda = 2/h, mu = 1.5/h: 2 plugs give Wq ~= 0.53 h, 3 plugs ~= 0.1 h.
  EXPECT_EQ(size_station(2.0, 1.5, 1.0), 2u);
  EXPECT_EQ(size_station(2.0, 1.5, 0.2), 3u);
}

TEST(SizeStation, ThrowsWhenImpossible) {
  EXPECT_THROW((void)size_station(100.0, 1.0, 0.001, 4), std::invalid_argument);
  EXPECT_THROW((void)size_station(1.0, 1.0, 0.0), std::invalid_argument);
}

class LoadSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweepTest, SimTracksTheoryAcrossUtilizations) {
  const double rho = GetParam();
  MmsConfig cfg;
  cfg.servers = 2;
  cfg.service_rate = 1.0;
  cfg.arrival_rate = rho * 2.0;
  const auto theory = mms_metrics(cfg);
  const auto sim = simulate_mms(cfg, 30000.0, Rng(42 + static_cast<std::uint64_t>(rho * 100)));
  EXPECT_NEAR(sim.fraction_waited, theory.p_wait, 0.05) << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, LoadSweepTest, ::testing::Values(0.3, 0.5, 0.7, 0.85));

}  // namespace
}  // namespace ecthub::ev
