// Tests for the weather substrate (NSRDB substitute).
#include "common/stats.hpp"
#include "weather/solar.hpp"
#include "weather/weather.hpp"
#include "weather/wind.hpp"

#include <gtest/gtest.h>

namespace ecthub::weather {
namespace {

// ---------------------------------------------------------------- solar

TEST(ClearSky, ZeroAtNight) {
  SolarConfig cfg;
  EXPECT_DOUBLE_EQ(clear_sky_ghi(cfg, 172, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_ghi(cfg, 172, 23.0), 0.0);
}

TEST(ClearSky, PeaksAtNoon) {
  SolarConfig cfg;
  const double noon = clear_sky_ghi(cfg, 172, 12.0);
  EXPECT_GT(noon, clear_sky_ghi(cfg, 172, 9.0));
  EXPECT_GT(noon, clear_sky_ghi(cfg, 172, 15.0));
  EXPECT_GT(noon, 0.8 * cfg.peak_ghi);
}

TEST(ClearSky, SummerBrighterThanWinter) {
  SolarConfig cfg;
  // Day 172 = summer solstice, day 355 = winter solstice.
  EXPECT_GT(clear_sky_ghi(cfg, 172, 12.0), clear_sky_ghi(cfg, 355, 12.0));
}

TEST(ClearSky, WinterDaysAreShorter) {
  SolarConfig cfg;
  cfg.season_daylength_swing_h = 4.0;
  // 6 am is daylight in summer but dark in winter at this swing
  // (summer sunrise = 5h, winter sunrise = ~7h).
  EXPECT_GT(clear_sky_ghi(cfg, 172, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_ghi(cfg, 355, 6.0), 0.0);
}

TEST(SolarModel, SeriesNonNegativeAndBounded) {
  SolarModel model(SolarConfig{}, Rng(1));
  const TimeGrid grid(10, 24);
  const auto ghi = model.generate(grid);
  ASSERT_EQ(ghi.size(), grid.size());
  for (double g : ghi) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1200.0);
  }
}

TEST(SolarModel, NightSlotsAreZero) {
  SolarModel model(SolarConfig{}, Rng(2));
  const TimeGrid grid(5, 24);
  const auto ghi = model.generate(grid);
  for (std::size_t t = 0; t < grid.size(); ++t) {
    if (grid.hour_of_day(t) < 4.0 || grid.hour_of_day(t) > 21.0) {
      EXPECT_DOUBLE_EQ(ghi[t], 0.0) << "slot " << t;
    }
  }
}

TEST(SolarModel, CloudsReduceEnergyVsClearSky) {
  SolarConfig cloudy_cfg;
  cloudy_cfg.cloud_switch_prob = 0.0;  // never leaves its initial state...
  // Start states are random; instead compare a heavy-cloud config's mean
  // against the clear-sky integral.
  SolarConfig cfg;
  cfg.cloudy_transmittance = 0.2;
  cfg.cloud_switch_prob = 0.05;
  SolarModel model(cfg, Rng(3));
  const TimeGrid grid(30, 24);
  const auto ghi = model.generate(grid);
  double clear_total = 0.0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    clear_total += clear_sky_ghi(cfg, (cfg.start_day_of_year + grid.day_of(t)) % 365,
                                 grid.hour_of_day(t));
  }
  EXPECT_LT(stats::sum(ghi), clear_total);
}

TEST(SolarModel, RejectsBadConfig) {
  SolarConfig bad;
  bad.peak_ghi = 0.0;
  EXPECT_THROW(SolarModel(bad, Rng(1)), std::invalid_argument);
  SolarConfig bad2;
  bad2.cloud_switch_prob = 1.5;
  EXPECT_THROW(SolarModel(bad2, Rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------- wind

TEST(WindModel, SpeedsWithinPhysicalBounds) {
  WindModel model(WindConfig{}, Rng(4));
  const TimeGrid grid(30, 24);
  const auto speed = model.generate(grid);
  for (double v : speed) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, WindConfig{}.max_speed_ms);
  }
}

TEST(WindModel, MeanRevertsToConfiguredSpeed) {
  WindConfig cfg;
  cfg.mean_speed_ms = 7.0;
  WindModel model(cfg, Rng(5));
  const TimeGrid grid(120, 24);
  const auto speed = model.generate(grid);
  EXPECT_NEAR(stats::mean(speed), 7.0, 1.2);
}

TEST(WindModel, IsVolatile) {
  // The paper stresses renewable volatility; wind stddev must be material.
  WindModel model(WindConfig{}, Rng(6));
  const TimeGrid grid(60, 24);
  const auto speed = model.generate(grid);
  EXPECT_GT(stats::stddev(speed), 1.0);
}

TEST(WindModel, PersistentAcrossSlots) {
  WindModel model(WindConfig{}, Rng(7));
  const TimeGrid grid(60, 24);
  const auto speed = model.generate(grid);
  EXPECT_GT(stats::autocorrelation(speed, 1), 0.5);
}

TEST(WindModel, RejectsBadConfig) {
  WindConfig bad;
  bad.reversion_rate = 0.0;
  EXPECT_THROW(WindModel(bad, Rng(1)), std::invalid_argument);
  WindConfig bad2;
  bad2.volatility = -1.0;
  EXPECT_THROW(WindModel(bad2, Rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------- combined

TEST(WeatherGenerator, AllChannelsShareGridLength) {
  WeatherGenerator gen(WeatherConfig{}, Rng(8));
  const TimeGrid grid(14, 24);
  const WeatherSeries wx = gen.generate(grid);
  EXPECT_EQ(wx.ghi_wm2.size(), grid.size());
  EXPECT_EQ(wx.wind_speed_ms.size(), grid.size());
  EXPECT_EQ(wx.temperature_c.size(), grid.size());
  EXPECT_EQ(wx.size(), grid.size());
}

TEST(WeatherGenerator, DeterministicGivenSeed) {
  const TimeGrid grid(7, 24);
  const WeatherSeries a = WeatherGenerator(WeatherConfig{}, Rng(9)).generate(grid);
  const WeatherSeries b = WeatherGenerator(WeatherConfig{}, Rng(9)).generate(grid);
  EXPECT_EQ(a.ghi_wm2, b.ghi_wm2);
  EXPECT_EQ(a.wind_speed_ms, b.wind_speed_ms);
  EXPECT_EQ(a.temperature_c, b.temperature_c);
}

TEST(WeatherGenerator, TemperatureOscillatesAroundMean) {
  WeatherConfig cfg;
  cfg.mean_temperature_c = 20.0;
  WeatherGenerator gen(cfg, Rng(10));
  const TimeGrid grid(60, 24);
  const WeatherSeries wx = gen.generate(grid);
  EXPECT_NEAR(stats::mean(wx.temperature_c), 20.0, 1.0);
  EXPECT_GT(stats::stddev(wx.temperature_c), 1.0);
}

TEST(WeatherGenerator, AfternoonWarmerThanNight) {
  WeatherConfig cfg;
  cfg.temp_noise_sigma = 0.0;
  WeatherGenerator gen(cfg, Rng(11));
  const TimeGrid grid(10, 24);
  const WeatherSeries wx = gen.generate(grid);
  double afternoon = 0, night = 0;
  std::size_t na = 0, nn = 0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double h = grid.hour_of_day(t);
    if (h >= 13 && h <= 16) {
      afternoon += wx.temperature_c[t];
      ++na;
    }
    if (h >= 1 && h <= 4) {
      night += wx.temperature_c[t];
      ++nn;
    }
  }
  EXPECT_GT(afternoon / static_cast<double>(na), night / static_cast<double>(nn));
}

// ------------------------------------------------- allocation-free variants

TEST(SolarModel, GenerateIntoMatchesGenerateAndReusesBuffers) {
  const TimeGrid grid(3, 24);
  const auto fresh = SolarModel(SolarConfig{}, Rng(51)).generate(grid);

  SolarModel model(SolarConfig{}, Rng(51));
  std::vector<double> reused;
  model.generate_into(grid, reused);
  EXPECT_EQ(reused, fresh);

  // A second pass must reuse the buffer (no realloc) and draw a fresh
  // stochastic stream, not replay the first.
  const double* buf = reused.data();
  const double first_sum = stats::sum(reused);
  model.generate_into(grid, reused);
  EXPECT_EQ(reused.data(), buf);
  EXPECT_EQ(reused.size(), grid.size());
  EXPECT_NE(stats::sum(reused), first_sum);
}

TEST(WindModel, GenerateIntoMatchesGenerateAndReusesBuffers) {
  const TimeGrid grid(3, 24);
  const auto fresh = WindModel(WindConfig{}, Rng(52)).generate(grid);

  WindModel model(WindConfig{}, Rng(52));
  std::vector<double> reused;
  model.generate_into(grid, reused);
  EXPECT_EQ(reused, fresh);

  const double* buf = reused.data();
  const double first_sum = stats::sum(reused);
  model.generate_into(grid, reused);
  EXPECT_EQ(reused.data(), buf);
  EXPECT_NE(stats::sum(reused), first_sum);
}

TEST(WeatherGenerator, GenerateIntoMatchesGenerateAndReusesBuffers) {
  const TimeGrid grid(3, 24);
  const WeatherSeries fresh = WeatherGenerator(WeatherConfig{}, Rng(53)).generate(grid);

  WeatherGenerator gen(WeatherConfig{}, Rng(53));
  WeatherSeries reused;
  gen.generate_into(grid, reused);
  EXPECT_EQ(reused.ghi_wm2, fresh.ghi_wm2);
  EXPECT_EQ(reused.wind_speed_ms, fresh.wind_speed_ms);
  EXPECT_EQ(reused.temperature_c, fresh.temperature_c);

  const double* ghi_buf = reused.ghi_wm2.data();
  const double* wind_buf = reused.wind_speed_ms.data();
  const double* temp_buf = reused.temperature_c.data();
  gen.generate_into(grid, reused);
  EXPECT_EQ(reused.ghi_wm2.data(), ghi_buf);
  EXPECT_EQ(reused.wind_speed_ms.data(), wind_buf);
  EXPECT_EQ(reused.temperature_c.data(), temp_buf);
  EXPECT_EQ(reused.size(), grid.size());
  EXPECT_NE(reused.wind_speed_ms, fresh.wind_speed_ms);
}

}  // namespace
}  // namespace ecthub::weather
