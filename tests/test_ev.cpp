// Tests for the EV behaviour substrate: strata ground truth, arrivals,
// charging stations and the synthetic charging-history dataset.
#include "common/stats.hpp"
#include "ev/arrival.hpp"
#include "ev/behavior.hpp"
#include "ev/dataset.hpp"
#include "ev/station.hpp"

#include <gtest/gtest.h>

namespace ecthub::ev {
namespace {

// ---------------------------------------------------------------- behavior

TEST(StrataProbs, NormalizeSumsToOne) {
  StrataProbs p{0.5, 0.3, 0.4};
  p.normalize();
  EXPECT_NEAR(p.p_none + p.p_incentive + p.p_always, 1.0, 1e-12);
}

TEST(StrataProbs, NormalizeHandlesDegenerateInput) {
  StrataProbs p{-1.0, -2.0, -3.0};
  p.normalize();
  EXPECT_DOUBLE_EQ(p.p_none, 1.0);
}

TEST(StrataProfile, ProbabilitiesValidEveryHour) {
  const StrataProfile profile(0.8, 0.7);
  for (std::size_t h = 0; h < 24; ++h) {
    const StrataProbs& p = profile.at_hour(h);
    EXPECT_GE(p.p_none, 0.0);
    EXPECT_GE(p.p_incentive, 0.0);
    EXPECT_GE(p.p_always, 0.0);
    EXPECT_NEAR(p.p_none + p.p_incentive + p.p_always, 1.0, 1e-9);
  }
}

TEST(StrataProfile, IncentiveConcentratesInEvening) {
  // The Fig. 12 observation: Incentive mass peaks in the 18-24h period.
  const StrataProfile profile(0.8, 0.7);
  double evening = 0.0, daytime = 0.0;
  for (std::size_t h = 18; h < 24; ++h) evening += profile.at_hour(h).p_incentive;
  for (std::size_t h = 6; h < 12; ++h) daytime += profile.at_hour(h).p_incentive;
  EXPECT_GT(evening, 2.0 * daytime);
}

TEST(StrataProfile, AlwaysDominatesDaytime) {
  const StrataProfile profile(0.9, 0.6);
  double day_always = 0.0, night_always = 0.0;
  for (std::size_t h = 10; h < 16; ++h) day_always += profile.at_hour(h).p_always;
  for (std::size_t h = 0; h < 6; ++h) night_always += profile.at_hour(h).p_always;
  EXPECT_GT(day_always, night_always);
}

TEST(StrataProfile, PopularityScalesChargeMass) {
  const StrataProfile busy(1.0, 0.7);
  const StrataProfile quiet(0.5, 0.7);
  double busy_mass = 0.0, quiet_mass = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    busy_mass += busy.at_hour(h).p_always + busy.at_hour(h).p_incentive;
    quiet_mass += quiet.at_hour(h).p_always + quiet.at_hour(h).p_incentive;
  }
  EXPECT_GT(busy_mass, quiet_mass);
}

TEST(StrataProfile, SampleMatchesDistribution) {
  const StrataProfile profile(0.8, 0.7);
  Rng rng(1);
  const std::size_t hour = 21;
  std::size_t incentive = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    if (profile.sample(hour, rng) == Stratum::kIncentive) ++incentive;
  }
  EXPECT_NEAR(static_cast<double>(incentive) / n, profile.at_hour(hour).p_incentive, 0.02);
}

TEST(StrataProfile, RejectsBadParameters) {
  EXPECT_THROW(StrataProfile(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(StrataProfile(1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(StrataProfile(0.5, -0.1), std::invalid_argument);
}

TEST(Charges, DeterministicWithoutNoise) {
  Rng rng(2);
  EXPECT_TRUE(charges(Stratum::kAlways, false, rng, 0.0));
  EXPECT_TRUE(charges(Stratum::kAlways, true, rng, 0.0));
  EXPECT_TRUE(charges(Stratum::kIncentive, true, rng, 0.0));
  EXPECT_FALSE(charges(Stratum::kIncentive, false, rng, 0.0));
  EXPECT_FALSE(charges(Stratum::kNone, true, rng, 0.0));
  EXPECT_FALSE(charges(Stratum::kNone, false, rng, 0.0));
}

TEST(Charges, NoiseFlipsOutcomeOccasionally) {
  Rng rng(3);
  std::size_t flips = 0;
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) {
    if (!charges(Stratum::kAlways, false, rng, 0.1)) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / n, 0.1, 0.02);
}

TEST(Charges, RejectsBadNoise) {
  Rng rng(4);
  EXPECT_THROW((void)charges(Stratum::kAlways, true, rng, 0.6), std::invalid_argument);
}

TEST(Stratum, ToStringCoversAll) {
  EXPECT_EQ(to_string(Stratum::kNone), "None");
  EXPECT_EQ(to_string(Stratum::kIncentive), "Incentive");
  EXPECT_EQ(to_string(Stratum::kAlways), "Always");
}

// ---------------------------------------------------------------- arrival

TEST(ArrivalProcess, ProfileShapeMatchesFig3) {
  const auto p = default_arrival_profile();
  // Quiet night, busy midday, evening in between.
  EXPECT_LT(p[3], 0.1);
  EXPECT_GT(p[11], 0.9);
  EXPECT_GT(p[19], p[3]);
  EXPECT_LT(p[19], p[11]);
}

TEST(ArrivalProcess, IntensityScalesWithDiscount) {
  ArrivalConfig cfg;
  cfg.discount_uplift = 2.0;
  ArrivalProcess proc(cfg, Rng(5));
  const TimeGrid grid(1, 24);
  EXPECT_NEAR(proc.intensity(grid, 12, true), 2.0 * proc.intensity(grid, 12, false), 1e-9);
}

TEST(ArrivalProcess, MoreArrivalsAtMiddayThanNight) {
  ArrivalProcess proc(ArrivalConfig{}, Rng(6));
  const TimeGrid grid(200, 24);
  const auto counts = proc.generate(grid);
  double midday = 0, night = 0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double h = grid.hour_of_day(t);
    if (h >= 10 && h <= 14) midday += static_cast<double>(counts[t]);
    if (h >= 1 && h <= 4) night += static_cast<double>(counts[t]);
  }
  EXPECT_GT(midday, 3.0 * night);
}

TEST(ArrivalProcess, DiscountFlagsLengthChecked) {
  ArrivalProcess proc(ArrivalConfig{}, Rng(7));
  const TimeGrid grid(1, 24);
  EXPECT_THROW(proc.generate(grid, std::vector<bool>(5, true)), std::invalid_argument);
}

TEST(ArrivalProcess, RejectsBadConfig) {
  ArrivalConfig bad;
  bad.discount_uplift = 0.5;
  EXPECT_THROW(ArrivalProcess(bad, Rng(1)), std::invalid_argument);
  ArrivalConfig bad2;
  bad2.peak_rate_per_hour = -1.0;
  EXPECT_THROW(ArrivalProcess(bad2, Rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------- station

TEST(ChargingStation, PowerClampsToPlugCount) {
  StationConfig cfg;
  cfg.plug_rate_kw = 7.2;
  cfg.num_plugs = 2;
  const ChargingStation station(cfg, StrataProfile(0.8, 0.7));
  EXPECT_DOUBLE_EQ(station.power_kw(0), 0.0);
  EXPECT_DOUBLE_EQ(station.power_kw(1), 7.2);
  EXPECT_DOUBLE_EQ(station.power_kw(2), 14.4);
  EXPECT_DOUBLE_EQ(station.power_kw(5), 14.4);  // clamped
}

TEST(ChargingStation, SimulateProducesConsistentSeries) {
  const ChargingStation station(StationConfig{}, StrataProfile(0.8, 0.7));
  const TimeGrid grid(7, 24);
  Rng rng(8);
  const auto occ = station.simulate(grid, std::vector<bool>(grid.size(), false), rng);
  ASSERT_EQ(occ.size(), grid.size());
  for (std::size_t t = 0; t < grid.size(); ++t) {
    EXPECT_DOUBLE_EQ(occ.power_kw[t], station.power_kw(occ.vehicles[t]));
  }
}

TEST(ChargingStation, DiscountsIncreaseEveningOccupancy) {
  const ChargingStation station(StationConfig{}, StrataProfile(0.9, 0.9));
  const TimeGrid grid(100, 24);
  std::vector<bool> all_discount(grid.size(), true);
  std::vector<bool> no_discount(grid.size(), false);
  Rng rng_a(9), rng_b(9);
  const auto with = station.simulate(grid, all_discount, rng_a);
  const auto without = station.simulate(grid, no_discount, rng_b);
  double evening_with = 0, evening_without = 0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    if (grid.hour_of_day(t) >= 18) {
      evening_with += static_cast<double>(with.vehicles[t]);
      evening_without += static_cast<double>(without.vehicles[t]);
    }
  }
  EXPECT_GT(evening_with, 1.5 * evening_without);
}

TEST(ChargingStation, FlagLengthValidated) {
  const ChargingStation station(StationConfig{}, StrataProfile(0.8, 0.7));
  const TimeGrid grid(1, 24);
  Rng rng(10);
  EXPECT_THROW(station.simulate(grid, std::vector<bool>(3, false), rng),
               std::invalid_argument);
}

TEST(ChargingStation, RejectsBadConfig) {
  StationConfig bad;
  bad.plug_rate_kw = 0.0;
  EXPECT_THROW(ChargingStation(bad, StrataProfile(0.8, 0.7)), std::invalid_argument);
  StationConfig bad2;
  bad2.num_plugs = 0;
  EXPECT_THROW(ChargingStation(bad2, StrataProfile(0.8, 0.7)), std::invalid_argument);
}

// ---------------------------------------------------------------- dataset

TEST(ChargingDataset, RecordCountMatchesConfig) {
  DatasetConfig cfg;
  cfg.num_stations = 3;
  cfg.num_days = 10;
  const ChargingDataset ds(cfg, Rng(11));
  EXPECT_EQ(ds.records().size(), 3u * 10u * 24u);
  EXPECT_EQ(ds.profiles().size(), 3u);
}

TEST(ChargingDataset, ChronologicalSplitHasNoLeakage) {
  DatasetConfig cfg;
  cfg.num_stations = 2;
  cfg.num_days = 20;
  const ChargingDataset ds(cfg, Rng(12));
  const auto split = ds.split(0.8);
  for (const auto& r : split.train) EXPECT_LT(r.day, 16u);
  for (const auto& r : split.test) EXPECT_GE(r.day, 16u);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.records().size());
}

TEST(ChargingDataset, SplitValidation) {
  DatasetConfig cfg;
  cfg.num_stations = 1;
  cfg.num_days = 5;
  const ChargingDataset ds(cfg, Rng(13));
  EXPECT_THROW(ds.split(0.0), std::invalid_argument);
  EXPECT_THROW(ds.split(1.0), std::invalid_argument);
}

TEST(ChargingDataset, PropensityIsConfounded) {
  // The logging policy must give more discounts at night — the confounder the
  // causal methods have to handle.
  DatasetConfig cfg;
  cfg.num_stations = 2;
  cfg.num_days = 5;
  const ChargingDataset ds(cfg, Rng(14));
  EXPECT_GT(ds.true_propensity(0, 20), ds.true_propensity(0, 10));
}

TEST(ChargingDataset, TreatmentRateTracksPropensity) {
  DatasetConfig cfg;
  cfg.num_stations = 4;
  cfg.num_days = 200;
  const ChargingDataset ds(cfg, Rng(15));
  std::size_t treated_night = 0, total_night = 0, treated_day = 0, total_day = 0;
  for (const auto& r : ds.records()) {
    if (r.hour >= 18 || r.hour < 2) {
      ++total_night;
      if (r.treated) ++treated_night;
    } else if (r.hour >= 8 && r.hour < 16) {
      ++total_day;
      if (r.treated) ++treated_day;
    }
  }
  const double night_rate = static_cast<double>(treated_night) / total_night;
  const double day_rate = static_cast<double>(treated_day) / total_day;
  EXPECT_GT(night_rate, day_rate + 0.1);
}

TEST(ChargingDataset, OutcomesRespectStrata) {
  DatasetConfig cfg;
  cfg.num_stations = 3;
  cfg.num_days = 100;
  cfg.outcome_noise = 0.0;
  const ChargingDataset ds(cfg, Rng(16));
  for (const auto& r : ds.records()) {
    switch (r.stratum) {
      case Stratum::kAlways: EXPECT_TRUE(r.charged); break;
      case Stratum::kIncentive: EXPECT_EQ(r.charged, r.treated); break;
      case Stratum::kNone: EXPECT_FALSE(r.charged); break;
    }
  }
}

TEST(ChargingDataset, ChargeFrequencyHistogramSums) {
  DatasetConfig cfg;
  cfg.num_stations = 2;
  cfg.num_days = 50;
  const ChargingDataset ds(cfg, Rng(17));
  const auto freq = ds.charge_frequency_by_hour();
  std::size_t total = 0;
  for (std::size_t c : freq) total += c;
  EXPECT_EQ(total, ds.num_charges());
}

TEST(ChargingDataset, FrequencyShapeMatchesFig3) {
  // Daytime charging dominates deep night, evening sits between.
  DatasetConfig cfg;
  cfg.num_stations = 6;
  cfg.num_days = 200;
  const ChargingDataset ds(cfg, Rng(18));
  const auto freq = ds.charge_frequency_by_hour();
  EXPECT_GT(freq[13], freq[3]);
  EXPECT_GT(freq[20], freq[3]);
}

TEST(ChargingDataset, DeterministicGivenSeed) {
  DatasetConfig cfg;
  cfg.num_stations = 2;
  cfg.num_days = 10;
  const ChargingDataset a(cfg, Rng(19));
  const ChargingDataset b(cfg, Rng(19));
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].charged, b.records()[i].charged);
    EXPECT_EQ(a.records()[i].treated, b.records()[i].treated);
  }
}

TEST(ChargingDataset, DemandFactorsHaveUnitMean) {
  DatasetConfig cfg;
  cfg.num_stations = 1;
  cfg.num_days = 2000;
  cfg.demand_sigma = 0.4;
  const ChargingDataset ds(cfg, Rng(20));
  ASSERT_EQ(ds.demand_factors().size(), 2000u);
  double mean = 0.0;
  for (double u : ds.demand_factors()) {
    EXPECT_GT(u, 0.0);
    mean += u;
  }
  EXPECT_NEAR(mean / 2000.0, 1.0, 0.05);
}

TEST(ChargingDataset, ZeroSigmaDisablesConfounder) {
  DatasetConfig cfg;
  cfg.num_stations = 1;
  cfg.num_days = 10;
  cfg.demand_sigma = 0.0;
  const ChargingDataset ds(cfg, Rng(21));
  for (double u : ds.demand_factors()) EXPECT_DOUBLE_EQ(u, 1.0);
}

TEST(ChargingDataset, BusyDaysGetMoreDiscounts) {
  // The unmeasured confounder: on high-demand days the logging policy gives
  // more discounts than on low-demand days.
  DatasetConfig cfg;
  cfg.num_stations = 6;
  cfg.num_days = 400;
  cfg.demand_sigma = 0.5;
  const ChargingDataset ds(cfg, Rng(22));
  const auto& u = ds.demand_factors();
  double treated_hi = 0, total_hi = 0, treated_lo = 0, total_lo = 0;
  for (const auto& r : ds.records()) {
    if (u[r.day] > 1.2) {
      total_hi += 1;
      treated_hi += r.treated ? 1 : 0;
    } else if (u[r.day] < 0.8) {
      total_lo += 1;
      treated_lo += r.treated ? 1 : 0;
    }
  }
  ASSERT_GT(total_hi, 0);
  ASSERT_GT(total_lo, 0);
  EXPECT_GT(treated_hi / total_hi, treated_lo / total_lo + 0.05);
}

TEST(ChargingDataset, BusyDaysSeeMoreCharging) {
  DatasetConfig cfg;
  cfg.num_stations = 6;
  cfg.num_days = 400;
  cfg.demand_sigma = 0.5;
  const ChargingDataset ds(cfg, Rng(23));
  const auto& u = ds.demand_factors();
  double charged_hi = 0, total_hi = 0, charged_lo = 0, total_lo = 0;
  for (const auto& r : ds.records()) {
    if (u[r.day] > 1.2) {
      total_hi += 1;
      charged_hi += r.charged ? 1 : 0;
    } else if (u[r.day] < 0.8) {
      total_lo += 1;
      charged_lo += r.charged ? 1 : 0;
    }
  }
  EXPECT_GT(charged_hi / total_hi, charged_lo / total_lo);
}

TEST(ChargingDataset, ConfoundedPropensityShiftsWithDemand) {
  DatasetConfig cfg;
  cfg.num_stations = 2;
  cfg.num_days = 5;
  const ChargingDataset ds(cfg, Rng(24));
  EXPECT_GT(ds.true_propensity(0, 12, 1.5), ds.true_propensity(0, 12, 1.0));
  EXPECT_LT(ds.true_propensity(0, 12, 0.5), ds.true_propensity(0, 12, 1.0));
  EXPECT_GE(ds.true_propensity(0, 12, -10.0), 0.02);  // clamped
  EXPECT_LE(ds.true_propensity(0, 12, 100.0), 0.98);
}

TEST(StrataProfile, EveningCommuterAddsAlwaysMassInEvening) {
  const StrataProfile plain(0.8, 0.6, 0.0);
  const StrataProfile commuter(0.8, 0.6, 0.8);
  EXPECT_GT(commuter.at_hour(21).p_always, plain.at_hour(21).p_always + 0.05);
  // Daytime Always mass is essentially unchanged.
  EXPECT_NEAR(commuter.at_hour(12).p_always, plain.at_hour(12).p_always, 0.03);
  EXPECT_THROW(StrataProfile(0.8, 0.6, 1.5), std::invalid_argument);
}

TEST(ChargingStation, SimulateIntoMatchesSimulateAndReusesBuffers) {
  const ChargingStation station(StationConfig{}, StrataProfile(0.8, 0.7, 0.3));
  const TimeGrid grid(3, 24);
  const std::vector<bool> discounted(grid.size(), false);
  Rng fresh_rng(61);
  const OccupancySeries fresh = station.simulate(grid, discounted, fresh_rng);

  Rng rng(61);
  OccupancySeries reused;
  station.simulate_into(grid, discounted, rng, reused);
  EXPECT_EQ(reused.vehicles, fresh.vehicles);
  EXPECT_EQ(reused.power_kw, fresh.power_kw);
  EXPECT_EQ(reused.stratum, fresh.stratum);

  // A second pass must reuse the channel buffers (no realloc) and draw a
  // fresh stochastic stream, not replay the first.
  const std::uint64_t* veh_buf = reused.vehicles.data();
  const double* power_buf = reused.power_kw.data();
  station.simulate_into(grid, discounted, rng, reused);
  EXPECT_EQ(reused.vehicles.data(), veh_buf);
  EXPECT_EQ(reused.power_kw.data(), power_buf);
  EXPECT_EQ(reused.size(), grid.size());
  EXPECT_NE(reused.stratum, fresh.stratum);
}

TEST(ChargingDataset, RejectsBadConfig) {
  DatasetConfig bad;
  bad.num_stations = 0;
  EXPECT_THROW(ChargingDataset(bad, Rng(1)), std::invalid_argument);
  DatasetConfig bad2;
  bad2.base_propensity = 1.5;
  EXPECT_THROW(ChargingDataset(bad2, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::ev
