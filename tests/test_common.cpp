// Unit tests for the common substrate: time grid, RNG, statistics, tables.
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/exact_sum.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>
#include <fstream>

namespace ecthub {
namespace {

// ---------------------------------------------------------------- TimeGrid

TEST(TimeGrid, SizeAndSlotHours) {
  const TimeGrid grid(30, 24);
  EXPECT_EQ(grid.size(), 720u);
  EXPECT_DOUBLE_EQ(grid.slot_hours(), 1.0);
  const TimeGrid half(2, 48);
  EXPECT_DOUBLE_EQ(half.slot_hours(), 0.5);
}

TEST(TimeGrid, RejectsZeroDays) {
  EXPECT_THROW(TimeGrid(0, 24), std::invalid_argument);
  EXPECT_THROW(TimeGrid(1, 0), std::invalid_argument);
}

TEST(TimeGrid, DayAndSlotDecomposition) {
  const TimeGrid grid(3, 24);
  EXPECT_EQ(grid.day_of(0), 0u);
  EXPECT_EQ(grid.day_of(23), 0u);
  EXPECT_EQ(grid.day_of(24), 1u);
  EXPECT_EQ(grid.slot_of_day(24), 0u);
  EXPECT_EQ(grid.slot_of_day(47), 23u);
}

TEST(TimeGrid, HourOfDay) {
  const TimeGrid grid(2, 48);
  EXPECT_DOUBLE_EQ(grid.hour_of_day(0), 0.0);
  EXPECT_DOUBLE_EQ(grid.hour_of_day(1), 0.5);
  EXPECT_DOUBLE_EQ(grid.hour_of_day(49), 0.5);
}

TEST(TimeGrid, HoursFromStartAccumulates) {
  const TimeGrid grid(2, 24);
  EXPECT_DOUBLE_EQ(grid.hours_from_start(25), 25.0);
}

TEST(TimeGrid, DayOfWeekWrapsAtSeven) {
  const TimeGrid grid(15, 24);
  EXPECT_EQ(grid.day_of_week(0), 0u);
  EXPECT_EQ(grid.day_of_week(7 * 24), 0u);
  EXPECT_EQ(grid.day_of_week(8 * 24), 1u);
}

TEST(TimeGrid, WeekendDetection) {
  const TimeGrid grid(7, 24);
  EXPECT_FALSE(grid.is_weekend(0));
  EXPECT_TRUE(grid.is_weekend(5 * 24));
  EXPECT_TRUE(grid.is_weekend(6 * 24));
}

TEST(TimeGrid, OutOfRangeSlotThrows) {
  const TimeGrid grid(1, 24);
  EXPECT_THROW((void)grid.day_of(24), std::out_of_range);
  EXPECT_THROW((void)grid.day_start(1), std::out_of_range);
}

TEST(TimeGrid, DayStart) {
  const TimeGrid grid(3, 24);
  EXPECT_EQ(grid.day_start(2), 48u);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats::mean(xs), 5.0, 0.1);
  EXPECT_NEAR(stats::stddev(xs), 2.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, PoissonMean) {
  Rng rng(5);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(acc / n, 3.0, 0.1);
}

TEST(Rng, PoissonZeroMeanYieldsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Rng rng(5);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // The fork advanced the parent, so both streams differ from a fresh Rng(42).
  Rng fresh(42);
  EXPECT_NE(child.uniform(), fresh.uniform());
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(13);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<std::size_t> idx = {0, 1, 2, 3, 4, 5, 6, 7};
  auto copy = idx;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, idx);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndVariance) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::mean(v), 2.5);
  EXPECT_DOUBLE_EQ(stats::variance(v), 1.25);
}

TEST(Stats, EmptyMeanIsZero) { EXPECT_DOUBLE_EQ(stats::mean({}), 0.0); }

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::pearson(x, c), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  EXPECT_THROW(stats::pearson({1, 2}, {1}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 50), 20.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 25), 10.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(stats::percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(stats::percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, MovingAverageSmoothes) {
  const std::vector<double> v = {0, 10, 0, 10, 0, 10};
  const auto ma = stats::moving_average(v, 3);
  EXPECT_EQ(ma.size(), v.size());
  // Interior points average their neighbourhood.
  EXPECT_NEAR(ma[2], (10.0 + 0.0 + 10.0) / 3.0, 1e-12);
}

TEST(Stats, MovingAverageEvenWindowIsExactlyThatWide) {
  // Regression: w=4 used to average 2*(4/2)+1 = 5 elements, so no even
  // request ever got its own width.  The contract is exactly w interior
  // elements, the extra one on the newer side: out[i] = mean(v[i-1..i+2]).
  const std::vector<double> v = {1, 2, 4, 8, 16, 32};
  const auto ma = stats::moving_average(v, 4);
  ASSERT_EQ(ma.size(), v.size());
  EXPECT_NEAR(ma[2], (2.0 + 4.0 + 8.0 + 16.0) / 4.0, 1e-12);
  EXPECT_NEAR(ma[3], (4.0 + 8.0 + 16.0 + 32.0) / 4.0, 1e-12);
  // Edges clamp to what exists: out[0] spans v[0..2], out[5] spans v[4..5].
  EXPECT_NEAR(ma[0], (1.0 + 2.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(ma[5], (16.0 + 32.0) / 2.0, 1e-12);
}

TEST(Stats, MovingAverageWidthOneIsIdentityAndOddStaysSymmetric) {
  const std::vector<double> v = {3, 1, 4, 1, 5};
  EXPECT_EQ(stats::moving_average(v, 1), v);
  const auto ma2 = stats::moving_average(v, 2);  // out[i] = mean(v[i..i+1])
  EXPECT_NEAR(ma2[0], 2.0, 1e-12);
  EXPECT_NEAR(ma2[3], 3.0, 1e-12);
  EXPECT_NEAR(ma2[4], 5.0, 1e-12);  // clamped: only v[4] remains
  EXPECT_THROW((void)stats::moving_average(v, 0), std::invalid_argument);
}

TEST(Stats, HistogramCountsAndClamps) {
  const std::vector<double> v = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = stats::histogram(v, 0.0, 1.0, 2);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0] + h[1], v.size());
  EXPECT_EQ(h[0], 2u);  // -1 clamped into bin 0, plus 0.1; 0.5/0.9/2.0 land in bin 1
}

TEST(Stats, AutocorrelationOfPeriodicSignal) {
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(stats::autocorrelation(v, 2), 0.9);
  EXPECT_LT(stats::autocorrelation(v, 1), -0.9);
}

// ---------------------------------------------------------------- TextTable

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"Method", "Reward"});
  t.begin_row().add("Ours").add_double(12.345, 2);
  t.begin_row().add("OR").add_int(7);
  const std::string s = t.str();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("12.35"), std::string::npos);
  EXPECT_NE(s.find("OR"), std::string::npos);
}

TEST(TextTable, IncompleteRowThrowsOnRender) {
  TextTable t({"a", "b"});
  t.begin_row().add("only-one");
  EXPECT_THROW(t.str(), std::logic_error);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"a"});
  t.begin_row().add("x");
  EXPECT_THROW(t.add("y"), std::logic_error);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.begin_row().add("1").add("2");
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

// ---------------------------------------------------------------- CliFlags

TEST(CliFlags, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hello", "--flag"};
  const CliFlags flags(5, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_string("beta", ""), "hello");
  EXPECT_TRUE(flags.get_bool("flag"));
}

TEST(CliFlags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliFlags flags(1, argv);
  EXPECT_EQ(flags.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("missing"));
}

TEST(CliFlags, BadIntegerThrows) {
  const char* argv[] = {"prog", "--n", "abc"};
  const CliFlags flags(3, argv);
  EXPECT_THROW((void)flags.get_int("n", 0), std::invalid_argument);
}

TEST(CliFlags, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--k", "v", "pos2"};
  const CliFlags flags(5, argv);
  // "pos2" follows a consumed flag value, so only pos1 is positional... or
  // both: --k consumes "v", then pos2 is positional.
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

// ---------------------------------------------------------------- ExactSum

TEST(ExactSum, SumsExactlyAndRoundsOnce) {
  ExactSum s;
  s += 0.1;
  s += 0.2;
  // 0.1 + 0.2 in exact arithmetic rounds to the double nearest the true
  // sum — the same 0x3FD3333333333334 the hardware add produces.
  EXPECT_EQ(s.value(), 0.1 + 0.2);
  ExactSum t;
  t += 1.0;
  t += 2.0;
  t += 3.0;
  EXPECT_EQ(t.value(), 6.0);
  EXPECT_EQ(ExactSum{}.value(), 0.0);
}

TEST(ExactSum, OrderAndGroupingIndependent) {
  // The addends are chosen so plain double folds disagree between orders
  // (1e16 + 1 + ... loses the 1s); the exact register cannot.
  const std::vector<double> xs = {1e16, 1.0, -1e16, 1.0, 3.5e-10, -7.25, 1e16, 1.0};
  ExactSum forward;
  for (const double x : xs) forward += x;
  ExactSum backward;
  for (std::size_t i = xs.size(); i-- > 0;) backward += xs[i];
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.value(), backward.value());
  // Any binary partition merged limb-wise equals the sequential fold.
  for (std::size_t cut = 0; cut <= xs.size(); ++cut) {
    ExactSum left;
    ExactSum right;
    for (std::size_t i = 0; i < cut; ++i) left += xs[i];
    for (std::size_t i = cut; i < xs.size(); ++i) right += xs[i];
    left += right;
    EXPECT_EQ(left, forward) << "cut " << cut;
  }
}

TEST(ExactSum, ExactCancellationAndNegatives) {
  ExactSum s;
  s += 1e308;
  s += -1e308;
  EXPECT_EQ(s, ExactSum{});
  EXPECT_EQ(s.value(), 0.0);
  ExactSum neg;
  neg += -2.5;
  neg += -0.25;
  EXPECT_EQ(neg.value(), -2.75);
  // A transiently negative register recovers exactly.
  ExactSum swing;
  swing += -1e20;
  swing += 1e20;
  swing += 0.5;
  EXPECT_EQ(swing.value(), 0.5);
}

TEST(ExactSum, RoundsTiesToEven) {
  const double big = 9007199254740992.0;  // 2^53
  ExactSum tie_down;                      // 2^53 + 1 is a tie -> stays 2^53 (even)
  tie_down += big;
  tie_down += 1.0;
  EXPECT_EQ(tie_down.value(), big);
  ExactSum tie_up;  // 2^53 + 2 + 1 is a tie -> rounds to 2^53 + 4 (even)
  tie_up += big;
  tie_up += 2.0;
  tie_up += 1.0;
  EXPECT_EQ(tie_up.value(), big + 4.0);
  ExactSum above;  // 2^53 + 1 + tiny is above the tie -> rounds up
  above += big;
  above += 1.0;
  above += 1e-30;
  EXPECT_EQ(above.value(), big + 2.0);
}

TEST(ExactSum, HandlesSubnormalsAndZeroes) {
  const double denorm_min = 4.9406564584124654e-324;  // 2^-1074
  ExactSum s;
  s += denorm_min;
  s += denorm_min;
  EXPECT_EQ(s.value(), 2.0 * denorm_min);
  s += -denorm_min;
  s += -denorm_min;
  EXPECT_EQ(s.value(), 0.0);
  s += 0.0;
  s += -0.0;
  EXPECT_EQ(s, ExactSum{});
  EXPECT_FALSE(std::signbit(s.value()));
}

TEST(ExactSum, RejectsNonFiniteAddends) {
  ExactSum s;
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()), std::invalid_argument);
  EXPECT_THROW(s.add(-std::numeric_limits<double>::infinity()), std::invalid_argument);
  EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_EQ(s, ExactSum{});  // failed adds leave the register untouched
}

TEST(ExactSum, LimbsRoundTrip) {
  ExactSum s;
  s += 123.456;
  s += -0.001;
  s += 9.875e12;
  const ExactSum restored = ExactSum::from_limbs(s.limbs());
  EXPECT_EQ(restored, s);
  EXPECT_EQ(restored.value(), s.value());
}

// ---------------------------------------------------------------- write_csv

TEST(WriteCsv, RoundTripsColumns) {
  const std::string path = testing::TempDir() + "/ecthub_test.csv";
  write_csv(path, {"x", "y"}, {{1.0, 2.0}, {3.0, 4.0}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,3");
  std::remove(path.c_str());
}

TEST(WriteCsv, RejectsRaggedColumns) {
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a", "b"}, {{1.0}, {1.0, 2.0}}), std::runtime_error);
}

}  // namespace
}  // namespace ecthub
