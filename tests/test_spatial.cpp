// Tests for the spatial substrate (Fig. 1: road/BS overlap) and the
// MetroMap generator layered on top of it.
#include "spatial/metro.hpp"
#include "spatial/placement.hpp"
#include "spatial/roads.hpp"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

namespace ecthub::spatial {
namespace {

TEST(Segment, Length) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
}

TEST(DistanceToSegment, PerpendicularProjection) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 3}, s), 3.0);
}

TEST(DistanceToSegment, ClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distance_to_segment({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({13, 4}, s), 5.0);
}

TEST(DistanceToSegment, DegenerateSegmentIsPointDistance) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(distance_to_segment({4, 5}, s), 5.0);
}

TEST(RoadNetwork, GeneratesConnectedTopology) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(1));
  EXPECT_EQ(net.cities().size(), RoadNetworkConfig{}.num_cities);
  // At least a spanning tree of highways plus local roads.
  EXPECT_GE(net.segments().size(),
            RoadNetworkConfig{}.num_cities - 1 +
                RoadNetworkConfig{}.num_cities * RoadNetworkConfig{}.local_roads_per_city);
  EXPECT_GT(net.total_length(), 0.0);
}

TEST(RoadNetwork, PointsStayInRegion) {
  RoadNetworkConfig cfg;
  cfg.region_km = 50.0;
  const RoadNetwork net(cfg, Rng(2));
  for (const auto& s : net.segments()) {
    for (const Point& p : {s.a, s.b}) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 50.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 50.0);
    }
  }
}

TEST(RoadNetwork, DistanceToNearestRoadIsZeroOnRoad) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(3));
  const Segment& s = net.segments().front();
  EXPECT_NEAR(net.distance_to_nearest_road(s.a), 0.0, 1e-9);
}

TEST(RoadNetwork, RejectsBadConfig) {
  RoadNetworkConfig bad;
  bad.region_km = 0.0;
  EXPECT_THROW(RoadNetwork(bad, Rng(1)), std::invalid_argument);
  RoadNetworkConfig bad2;
  bad2.num_cities = 1;
  EXPECT_THROW(RoadNetwork(bad2, Rng(1)), std::invalid_argument);
}

TEST(BsPlacement, GeneratesRequestedCount) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(4));
  PlacementConfig cfg;
  cfg.num_stations = 500;
  const BsPlacement placement(cfg, net, Rng(5));
  EXPECT_EQ(placement.stations().size(), 500u);
}

TEST(BsPlacement, RoadBiasedStationsSitCloserThanUniform) {
  // The Fig. 1 statistic: road-biased deployment clusters near roads.
  const RoadNetwork net(RoadNetworkConfig{}, Rng(6));
  PlacementConfig cfg;
  cfg.num_stations = 1000;
  cfg.road_biased_fraction = 0.9;
  const BsPlacement placement(cfg, net, Rng(7));
  const OverlapStats st = placement.overlap_stats(net, 5000, Rng(8));
  EXPECT_LT(st.mean_distance_km, st.uniform_mean_distance_km);
  EXPECT_GT(st.within_1km_fraction, st.uniform_within_1km_fraction);
  EXPECT_GT(st.clustering_ratio, 1.5);
}

TEST(BsPlacement, UnbiasedPlacementMatchesUniform) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(9));
  PlacementConfig cfg;
  cfg.num_stations = 2000;
  cfg.road_biased_fraction = 0.0;
  const BsPlacement placement(cfg, net, Rng(10));
  const OverlapStats st = placement.overlap_stats(net, 5000, Rng(11));
  EXPECT_NEAR(st.clustering_ratio, 1.0, 0.25);
}

TEST(BsPlacement, MoreBiasMeansMoreClustering) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(12));
  auto ratio_at = [&](double bias) {
    PlacementConfig cfg;
    cfg.num_stations = 1500;
    cfg.road_biased_fraction = bias;
    const BsPlacement placement(cfg, net, Rng(13));
    return placement.overlap_stats(net, 4000, Rng(14)).clustering_ratio;
  };
  EXPECT_GT(ratio_at(0.9), ratio_at(0.3));
}

TEST(BsPlacement, Validation) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(15));
  PlacementConfig bad;
  bad.num_stations = 0;
  EXPECT_THROW(BsPlacement(bad, net, Rng(16)), std::invalid_argument);
  PlacementConfig bad2;
  bad2.road_biased_fraction = 1.5;
  EXPECT_THROW(BsPlacement(bad2, net, Rng(17)), std::invalid_argument);
  PlacementConfig ok;
  const BsPlacement placement(ok, net, Rng(18));
  EXPECT_THROW((void)placement.overlap_stats(net, 0, Rng(19)), std::invalid_argument);
}

TEST(ClosestPointOnSegment, ProjectsAndClamps) {
  const Segment s{{0, 0}, {10, 0}};
  const Point mid = closest_point_on_segment({5, 3}, s);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
  const Point clamped = closest_point_on_segment({-3, 4}, s);
  EXPECT_DOUBLE_EQ(clamped.x, 0.0);
  EXPECT_DOUBLE_EQ(clamped.y, 0.0);
  const Segment degenerate{{1, 1}, {1, 1}};
  const Point snap = closest_point_on_segment({4, 5}, degenerate);
  EXPECT_DOUBLE_EQ(snap.x, 1.0);
  EXPECT_DOUBLE_EQ(snap.y, 1.0);
}

TEST(MetroMap, SeedReproducible) {
  const MetroConfig cfg;
  const MetroMap a(cfg, 42);
  const MetroMap b(cfg, 42);
  ASSERT_EQ(a.hubs().size(), b.hubs().size());
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
  for (std::size_t i = 0; i < a.hubs().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.hubs()[i].site.x, b.hubs()[i].site.x);
    EXPECT_EQ(a.hubs()[i].neighbors, b.hubs()[i].neighbors);
    EXPECT_DOUBLE_EQ(a.through_rate(i), b.through_rate(i));
  }
  EXPECT_EQ(a.front_seed(), b.front_seed());

  const MetroMap c(cfg, 43);
  EXPECT_NE(a.checksum(), c.checksum());
}

// Golden checksum: pins the full generation pipeline (roads, survey, sites,
// density, classification, adjacency) bit-for-bit.  If this moves, every
// downstream metro fleet moves with it — bump deliberately, never silently.
TEST(MetroMap, GoldenChecksum) {
  const MetroMap map(MetroConfig{}, 42);
  EXPECT_DOUBLE_EQ(map.checksum(), 3178.4502317864349);
}

TEST(MetroMap, ClassificationAndAdjacency) {
  MetroConfig cfg;
  cfg.num_hubs = 12;
  cfg.neighbors_per_hub = 3;
  cfg.urban_fraction = 0.5;
  const MetroMap map(cfg, 7);
  ASSERT_EQ(map.hubs().size(), 12u);

  std::size_t urban = 0;
  double min_urban_density = 1.0;
  double max_rural_density = 0.0;
  for (std::size_t i = 0; i < map.hubs().size(); ++i) {
    const MetroHub& h = map.hubs()[i];
    EXPECT_GE(h.density, 0.0);
    EXPECT_LE(h.density, 1.0);
    ASSERT_EQ(h.neighbors.size(), 3u);
    ASSERT_EQ(h.road_km.size(), 3u);
    for (std::size_t k = 0; k < h.neighbors.size(); ++k) {
      EXPECT_NE(h.neighbors[k], i);
      EXPECT_LT(h.neighbors[k], map.hubs().size());
      EXPECT_GT(h.road_km[k], 0.0);
    }
    // k-nearest lists are sorted by road distance.
    EXPECT_TRUE(std::is_sorted(h.road_km.begin(), h.road_km.end()));
    EXPECT_GT(map.through_rate(i), 0.0);
    if (h.urban) {
      ++urban;
      min_urban_density = std::min(min_urban_density, h.density);
    } else {
      max_rural_density = std::max(max_rural_density, h.density);
    }
  }
  // Top half by density is urban, so every urban hub is at least as dense as
  // every rural one.
  EXPECT_EQ(urban, 6u);
  EXPECT_GE(min_urban_density, max_rural_density);
}

TEST(MetroMap, ApplySiteModulatesDemandKeepsCharacter) {
  const MetroMap map(MetroConfig{}, 42);
  // Find one urban and one rural hub.
  std::size_t urban_i = 0, rural_i = 0;
  for (std::size_t i = 0; i < map.hubs().size(); ++i) {
    (map.hubs()[i].urban ? urban_i : rural_i) = i;
  }
  const core::HubConfig urban_hub = map.hub_config(urban_i, "u", 1);
  const core::HubConfig rural_hub = map.hub_config(rural_i, "r", 1);
  EXPECT_EQ(urban_hub.station.num_plugs, 2u);
  EXPECT_EQ(rural_hub.station.num_plugs, 1u);
  EXPECT_GT(map.through_rate(urban_i), map.through_rate(rural_i));

  core::HubConfig overlay = core::HubConfig::urban("x", 5);
  const bool had_wt = overlay.plant.wt.has_value();
  map.apply_site(rural_i, overlay);
  EXPECT_EQ(overlay.station.station_id, rural_i);
  EXPECT_EQ(overlay.site, core::HubSite::kUrban);          // character preserved
  EXPECT_EQ(overlay.plant.wt.has_value(), had_wt);         // plant untouched
  EXPECT_GE(overlay.ev_popularity, 0.2);
  EXPECT_LE(overlay.ev_popularity, 0.95);
}

TEST(MetroMap, Validation) {
  MetroConfig bad;
  bad.num_hubs = 1;
  EXPECT_THROW(MetroMap(bad, 1), std::invalid_argument);
  MetroConfig bad2;
  bad2.neighbors_per_hub = bad2.num_hubs;  // k must be < num_hubs
  EXPECT_THROW(MetroMap(bad2, 1), std::invalid_argument);
  MetroConfig bad3;
  bad3.urban_fraction = 1.5;
  EXPECT_THROW(MetroMap(bad3, 1), std::invalid_argument);
  MetroConfig bad4;
  bad4.detour_factor = 0.5;
  EXPECT_THROW(MetroMap(bad4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::spatial
