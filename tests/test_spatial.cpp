// Tests for the spatial substrate (Fig. 1: road/BS overlap).
#include "spatial/placement.hpp"
#include "spatial/roads.hpp"

#include <gtest/gtest.h>

namespace ecthub::spatial {
namespace {

TEST(Segment, Length) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
}

TEST(DistanceToSegment, PerpendicularProjection) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 3}, s), 3.0);
}

TEST(DistanceToSegment, ClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distance_to_segment({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({13, 4}, s), 5.0);
}

TEST(DistanceToSegment, DegenerateSegmentIsPointDistance) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(distance_to_segment({4, 5}, s), 5.0);
}

TEST(RoadNetwork, GeneratesConnectedTopology) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(1));
  EXPECT_EQ(net.cities().size(), RoadNetworkConfig{}.num_cities);
  // At least a spanning tree of highways plus local roads.
  EXPECT_GE(net.segments().size(),
            RoadNetworkConfig{}.num_cities - 1 +
                RoadNetworkConfig{}.num_cities * RoadNetworkConfig{}.local_roads_per_city);
  EXPECT_GT(net.total_length(), 0.0);
}

TEST(RoadNetwork, PointsStayInRegion) {
  RoadNetworkConfig cfg;
  cfg.region_km = 50.0;
  const RoadNetwork net(cfg, Rng(2));
  for (const auto& s : net.segments()) {
    for (const Point& p : {s.a, s.b}) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 50.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 50.0);
    }
  }
}

TEST(RoadNetwork, DistanceToNearestRoadIsZeroOnRoad) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(3));
  const Segment& s = net.segments().front();
  EXPECT_NEAR(net.distance_to_nearest_road(s.a), 0.0, 1e-9);
}

TEST(RoadNetwork, RejectsBadConfig) {
  RoadNetworkConfig bad;
  bad.region_km = 0.0;
  EXPECT_THROW(RoadNetwork(bad, Rng(1)), std::invalid_argument);
  RoadNetworkConfig bad2;
  bad2.num_cities = 1;
  EXPECT_THROW(RoadNetwork(bad2, Rng(1)), std::invalid_argument);
}

TEST(BsPlacement, GeneratesRequestedCount) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(4));
  PlacementConfig cfg;
  cfg.num_stations = 500;
  const BsPlacement placement(cfg, net, Rng(5));
  EXPECT_EQ(placement.stations().size(), 500u);
}

TEST(BsPlacement, RoadBiasedStationsSitCloserThanUniform) {
  // The Fig. 1 statistic: road-biased deployment clusters near roads.
  const RoadNetwork net(RoadNetworkConfig{}, Rng(6));
  PlacementConfig cfg;
  cfg.num_stations = 1000;
  cfg.road_biased_fraction = 0.9;
  const BsPlacement placement(cfg, net, Rng(7));
  const OverlapStats st = placement.overlap_stats(net, 5000, Rng(8));
  EXPECT_LT(st.mean_distance_km, st.uniform_mean_distance_km);
  EXPECT_GT(st.within_1km_fraction, st.uniform_within_1km_fraction);
  EXPECT_GT(st.clustering_ratio, 1.5);
}

TEST(BsPlacement, UnbiasedPlacementMatchesUniform) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(9));
  PlacementConfig cfg;
  cfg.num_stations = 2000;
  cfg.road_biased_fraction = 0.0;
  const BsPlacement placement(cfg, net, Rng(10));
  const OverlapStats st = placement.overlap_stats(net, 5000, Rng(11));
  EXPECT_NEAR(st.clustering_ratio, 1.0, 0.25);
}

TEST(BsPlacement, MoreBiasMeansMoreClustering) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(12));
  auto ratio_at = [&](double bias) {
    PlacementConfig cfg;
    cfg.num_stations = 1500;
    cfg.road_biased_fraction = bias;
    const BsPlacement placement(cfg, net, Rng(13));
    return placement.overlap_stats(net, 4000, Rng(14)).clustering_ratio;
  };
  EXPECT_GT(ratio_at(0.9), ratio_at(0.3));
}

TEST(BsPlacement, Validation) {
  const RoadNetwork net(RoadNetworkConfig{}, Rng(15));
  PlacementConfig bad;
  bad.num_stations = 0;
  EXPECT_THROW(BsPlacement(bad, net, Rng(16)), std::invalid_argument);
  PlacementConfig bad2;
  bad2.road_biased_fraction = 1.5;
  EXPECT_THROW(BsPlacement(bad2, net, Rng(17)), std::invalid_argument);
  PlacementConfig ok;
  const BsPlacement placement(ok, net, Rng(18));
  EXPECT_THROW((void)placement.overlap_stats(net, 0, Rng(19)), std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::spatial
