// Tests for the causal module: feature encoding, NCF backbone, the ECT-Price
// multi-task model (loss identities Eq. 13-23) and the uplift baselines.
#include "causal/ect_price.hpp"
#include "causal/evaluate.hpp"
#include "causal/ncf.hpp"
#include "causal/uplift.hpp"
#include "ev/dataset.hpp"

#include <gtest/gtest.h>

namespace ecthub::causal {
namespace {

std::vector<Item> small_dataset(std::size_t days = 60, std::uint64_t seed = 21) {
  ev::DatasetConfig cfg;
  cfg.num_stations = 4;
  cfg.num_days = days;
  const ev::ChargingDataset ds(cfg, Rng(seed));
  return encode(ds.records());
}

NcfConfig small_ncf() {
  NcfConfig cfg;
  cfg.num_stations = 4;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  return cfg;
}

// ---------------------------------------------------------------- features

TEST(Features, EncodeTimeValidatesHour) {
  EXPECT_EQ(encode_time(0), 0u);
  EXPECT_EQ(encode_time(23), 23u);
  EXPECT_THROW((void)encode_time(24), std::invalid_argument);
}

TEST(Features, EncodePreservesFields) {
  ev::ChargingRecord rec;
  rec.station = 2;
  rec.day = 5;
  rec.hour = 13;
  rec.day_of_week = 5;
  rec.treated = true;
  rec.charged = true;
  rec.stratum = ev::Stratum::kAlways;
  const auto items = encode({rec});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].station_id, 2u);
  EXPECT_EQ(items[0].time_id, encode_time(13));
  EXPECT_TRUE(items[0].treated);
  EXPECT_TRUE(items[0].charged);
  EXPECT_EQ(items[0].stratum, ev::Stratum::kAlways);
  EXPECT_EQ(items[0].hour, 13u);
}

TEST(Features, MakeBatchGathers) {
  const auto items = small_dataset(5);
  const Batch b = make_batch(items, {0, 2, 4});
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.station_ids[1], items[2].station_id);
  EXPECT_THROW(make_batch(items, {items.size()}), std::out_of_range);
}

// ---------------------------------------------------------------- NCF

TEST(NcfBackbone, FeatureDimIsThreeTimesEmbedding) {
  Rng rng(1);
  NcfBackbone backbone(small_ncf(), rng, "t");
  EXPECT_EQ(backbone.feature_dim(), 24u);
  const nn::Matrix z = backbone.forward({0, 1}, {3, 20});
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 24u);
}

TEST(NcfBackbone, PlusBranchIsSumOfEmbeddings) {
  Rng rng(2);
  NcfBackbone backbone(small_ncf(), rng, "t");
  const nn::Matrix z = backbone.forward({1}, {5});
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(z(0, 16 + c), z(0, c) + z(0, 8 + c), 1e-12);
  }
}

TEST(NcfBackbone, IdSizeMismatchThrows) {
  Rng rng(3);
  NcfBackbone backbone(small_ncf(), rng, "t");
  EXPECT_THROW(backbone.forward({0, 1}, {0}), std::invalid_argument);
}

TEST(NcfRegressor, LearnsSimpleSignal) {
  // Target depends only on the station id: the regressor must separate them.
  Rng rng(4);
  NcfRegressor reg(small_ncf(), nn::Activation::kSigmoid, rng, "t");
  nn::Adam opt(nn::AdamConfig{.lr = 0.05});
  std::vector<Item> items;
  std::vector<double> targets;
  for (std::size_t rep = 0; rep < 50; ++rep) {
    for (std::size_t s = 0; s < 4; ++s) {
      Item it;
      it.station_id = s;
      it.time_id = rep % kTimeVocab;
      items.push_back(it);
      targets.push_back(s < 2 ? 1.0 : 0.0);
    }
  }
  std::vector<std::size_t> idx(items.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (int epoch = 0; epoch < 30; ++epoch) {
    reg.train_step(make_batch(items, idx), targets, {}, opt);
  }
  EXPECT_GT(reg.predict(0, 3), 0.7);
  EXPECT_LT(reg.predict(3, 3), 0.3);
}

// ---------------------------------------------------------------- ECT-Price

TEST(EctPrice, PredictionsFormDistribution) {
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  cfg.epochs = 1;
  EctPriceModel model(cfg, Rng(5));
  const auto items = small_dataset(10);
  model.fit(items);
  const auto preds = model.predict(items);
  ASSERT_EQ(preds.size(), items.size());
  for (const auto& p : preds) {
    EXPECT_NEAR(p.p_none + p.p_incentive + p.p_always, 1.0, 1e-9);
    EXPECT_GE(p.propensity, 0.0);
    EXPECT_LE(p.propensity, 1.0);
  }
}

TEST(EctPrice, LossDecreasesOverEpochs) {
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  cfg.epochs = 4;
  EctPriceModel model(cfg, Rng(6));
  const auto stats = model.fit(small_dataset(30));
  ASSERT_EQ(stats.epoch_loss.size(), 4u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST(EctPrice, RecoversEveningIncentiveStructure) {
  // After training on the confounded log, the predicted Incentive probability
  // mass must concentrate in the evening (the ground-truth structure,
  // Fig. 11-12).
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  cfg.epochs = 3;
  EctPriceModel model(cfg, Rng(7));
  const auto items = small_dataset(120);
  model.fit(items);
  const auto preds = model.predict(items);
  const auto dist = period_distribution(items, preds);
  // Period 3 (18-24h) carries the largest predicted-Incentive mass.
  EXPECT_GT(dist.shares[3][1], dist.shares[1][1]);
  EXPECT_GT(dist.shares[3][1], dist.shares[2][1]);
}

TEST(EctPrice, PropensityTracksLoggingPolicy) {
  // g(X) should learn that nights were discounted more often.
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  cfg.epochs = 3;
  EctPriceModel model(cfg, Rng(8));
  model.fit(small_dataset(120));
  const auto night = model.predict_one(0, encode_time(21));
  const auto day = model.predict_one(0, encode_time(10));
  EXPECT_GT(night.propensity, day.propensity);
}

TEST(EctPrice, LossIdentityStructure) {
  // Eq. 13-16 at the optimum: f00*g targets exactly the (Y=0, T=1) share.
  // Structural check on LossParts: all components non-negative and finite.
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  cfg.epochs = 1;
  EctPriceModel model(cfg, Rng(9));
  const auto items = small_dataset(10);
  model.fit(items);
  const auto parts = model.evaluate_loss(items);
  for (double l : {parts.l1, parts.l2, parts.l3, parts.l4, parts.lp}) {
    EXPECT_GE(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_NEAR(parts.total(), parts.l1 + parts.l2 + parts.l3 + parts.l4 + parts.lp, 1e-12);
}

TEST(EctPrice, ArgmaxMapping) {
  StrataPrediction p;
  p.p_none = 0.2;
  p.p_incentive = 0.5;
  p.p_always = 0.3;
  EXPECT_EQ(p.argmax(), ev::Stratum::kIncentive);
  p.p_always = 0.6;
  EXPECT_EQ(p.argmax(), ev::Stratum::kAlways);
  p.p_none = 0.9;
  EXPECT_EQ(p.argmax(), ev::Stratum::kNone);
}

TEST(EctPrice, EmptyTrainingThrows) {
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  EctPriceModel model(cfg, Rng(10));
  EXPECT_THROW(model.fit({}), std::invalid_argument);
}

// ---------------------------------------------------------------- baselines

UpliftConfig small_uplift() {
  UpliftConfig cfg;
  cfg.ncf = small_ncf();
  cfg.epochs = 2;
  return cfg;
}

TEST(UpliftBaselines, AllProduceFiniteScores) {
  const auto items = small_dataset(40);
  OutcomeRegression orm(small_uplift(), Rng(11));
  InversePropensityScoring ips(small_uplift(), Rng(12));
  DoublyRobust dr(small_uplift(), Rng(13));
  for (UpliftModel* m : std::vector<UpliftModel*>{&orm, &ips, &dr}) {
    m->fit(items);
    const auto tau = m->uplift(items);
    ASSERT_EQ(tau.size(), items.size());
    for (double t : tau) EXPECT_TRUE(std::isfinite(t));
  }
}

TEST(UpliftBaselines, OrDetectsEveningUplift) {
  // Mean estimated uplift in the evening must exceed the daytime mean: the
  // Incentive stratum lives in the evening.
  const auto items = small_dataset(120);
  OutcomeRegression orm(small_uplift(), Rng(14));
  orm.fit(items);
  const auto tau = orm.uplift(items);
  double evening = 0, day = 0;
  std::size_t ne = 0, nd = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].hour >= 19 && items[i].hour <= 22) {
      evening += tau[i];
      ++ne;
    }
    if (items[i].hour >= 9 && items[i].hour <= 14) {
      day += tau[i];
      ++nd;
    }
  }
  EXPECT_GT(evening / static_cast<double>(ne), day / static_cast<double>(nd));
}

TEST(UpliftBaselines, IpsPropensityLearnsNightBias)  {
  const auto items = small_dataset(120);
  InversePropensityScoring ips(small_uplift(), Rng(15));
  ips.fit(items);
  EXPECT_GT(ips.propensity(0, encode_time(21)), ips.propensity(0, encode_time(10)));
}

TEST(UpliftBaselines, NamesAreStable) {
  EXPECT_EQ(OutcomeRegression(small_uplift(), Rng(1)).name(), "OR");
  EXPECT_EQ(InversePropensityScoring(small_uplift(), Rng(1)).name(), "IPS");
  EXPECT_EQ(DoublyRobust(small_uplift(), Rng(1)).name(), "DR");
}

TEST(UpliftBaselines, OrRequiresBothArms) {
  auto items = small_dataset(5);
  for (auto& it : items) it.treated = true;  // no control arm
  OutcomeRegression orm(small_uplift(), Rng(16));
  EXPECT_THROW(orm.fit(items), std::invalid_argument);
}

// ---------------------------------------------------------------- evaluate

TEST(Evaluate, DecideByUpliftThreshold) {
  const auto decisions = decide_by_uplift({-0.5, 0.0, 0.1, 0.6}, 0.05);
  EXPECT_EQ(decisions, (std::vector<bool>{false, false, true, true}));
}

TEST(Evaluate, DecideByStrataExpectedGainRule) {
  // Discount iff (1 - c) * p_incentive > c * p_always.
  StrataPrediction inc{0.1, 0.8, 0.1, 0.5};   // strong incentive mass
  StrataPrediction alw{0.1, 0.05, 0.85, 0.5};  // strong always mass
  const auto decisions = decide_by_strata({inc, alw}, 0.3);
  EXPECT_TRUE(decisions[0]);
  EXPECT_FALSE(decisions[1]);
}

TEST(Evaluate, DecideByStrataDependsOnDiscountDepth) {
  // A borderline cell: discounted at 10% but not at 60%.
  StrataPrediction p{0.6, 0.15, 0.25, 0.5};
  EXPECT_TRUE(decide_by_strata({p}, 0.1)[0]);   // 0.9*0.15 > 0.1*0.25
  EXPECT_FALSE(decide_by_strata({p}, 0.6)[0]);  // 0.4*0.15 < 0.6*0.25
}

TEST(Evaluate, DecideByStrataValidation) {
  StrataPrediction p{0.4, 0.3, 0.3, 0.5};
  EXPECT_THROW(decide_by_strata({p}, 0.0), std::invalid_argument);
  EXPECT_THROW(decide_by_strata({p}, 1.0), std::invalid_argument);
}

TEST(Evaluate, RewardConvention) {
  // One of each true stratum, all discounted at c = 0.2:
  // reward = (1 - 0.2) [Incentive] - 0.2 [Always] + 0 [None] = 0.6.
  std::vector<Item> items(3);
  items[0].stratum = ev::Stratum::kIncentive;
  items[1].stratum = ev::Stratum::kAlways;
  items[2].stratum = ev::Stratum::kNone;
  const auto out = evaluate_decisions("x", 0.2, items, {true, true, true});
  EXPECT_EQ(out.incentive, 1u);
  EXPECT_EQ(out.always, 1u);
  EXPECT_EQ(out.none, 1u);
  EXPECT_NEAR(out.reward, 0.6, 1e-12);
}

TEST(Evaluate, UndiscountedItemsNotCounted) {
  std::vector<Item> items(2);
  items[0].stratum = ev::Stratum::kIncentive;
  items[1].stratum = ev::Stratum::kAlways;
  const auto out = evaluate_decisions("x", 0.3, items, {false, false});
  EXPECT_EQ(out.incentive + out.always + out.none, 0u);
  EXPECT_DOUBLE_EQ(out.reward, 0.0);
}

TEST(Evaluate, RewardDecreasesWithDiscountDepth) {
  std::vector<Item> items(10);
  for (auto& it : items) it.stratum = ev::Stratum::kIncentive;
  const std::vector<bool> all(10, true);
  const double r10 = evaluate_decisions("x", 0.1, items, all).reward;
  const double r50 = evaluate_decisions("x", 0.5, items, all).reward;
  EXPECT_GT(r10, r50);
}

TEST(Evaluate, Validation) {
  std::vector<Item> items(2);
  EXPECT_THROW(evaluate_decisions("x", 0.2, items, {true}), std::invalid_argument);
  EXPECT_THROW(evaluate_decisions("x", 0.0, items, {true, true}), std::invalid_argument);
  EXPECT_THROW(evaluate_decisions("x", 1.0, items, {true, true}), std::invalid_argument);
}

TEST(Evaluate, StrataAccuracyPerfectAndZero) {
  std::vector<Item> items(2);
  items[0].stratum = ev::Stratum::kIncentive;
  items[1].stratum = ev::Stratum::kNone;
  StrataPrediction inc{0.0, 1.0, 0.0, 0.5};
  StrataPrediction none{1.0, 0.0, 0.0, 0.5};
  EXPECT_DOUBLE_EQ(strata_accuracy(items, {inc, none}), 1.0);
  EXPECT_DOUBLE_EQ(strata_accuracy(items, {none, inc}), 0.0);
}

TEST(Evaluate, PeriodDistributionSharesSumToOne) {
  const auto items = small_dataset(20);
  std::vector<StrataPrediction> preds(items.size(), StrataPrediction{0.3, 0.4, 0.3, 0.5});
  const auto dist = period_distribution(items, preds);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_NEAR(dist.shares[p][0] + dist.shares[p][1] + dist.shares[p][2], 1.0, 1e-9);
  }
}

TEST(EctPrice, GradientsMatchFiniteDifference) {
  // The hand-derived gradients of the five-loss objective (Eq. 18-23, with
  // the corrected L4) against central finite differences.
  const auto items = small_dataset(2, 77);
  EctPriceConfig cfg;
  cfg.ncf = small_ncf();
  cfg.ncf.embedding_dim = 4;
  cfg.ncf.hidden_dims = {8};
  EctPriceModel model(cfg, Rng(78));
  model.compute_gradients(items);
  auto params = model.parameters();
  const double eps = 1e-6;
  for (auto& p : params) {
    for (std::size_t k = 0; k < std::min<std::size_t>(2, p.value->data().size()); ++k) {
      const double analytic = p.grad->data()[k];
      const double orig = p.value->data()[k];
      p.value->data()[k] = orig + eps;
      const double lp = model.evaluate_loss(items).total();
      p.value->data()[k] = orig - eps;
      const double lm = model.evaluate_loss(items).total();
      p.value->data()[k] = orig;
      EXPECT_NEAR(analytic, (lp - lm) / (2.0 * eps), 1e-5) << p.name;
    }
  }
}

TEST(EctPrice, ConvergesToTrueStrataOnSingleCell) {
  // End-to-end identifiability: one cell with known strata and propensity;
  // the model must recover them from observational (Y, T) pairs.
  Rng rng(79);
  std::vector<Item> items;
  const double true_i = 0.3, true_a = 0.2, true_e = 0.4;
  for (int k = 0; k < 6000; ++k) {
    Item it;
    it.station_id = 0;
    it.time_id = 0;
    const double u = rng.uniform();
    const ev::Stratum s = u < true_a ? ev::Stratum::kAlways
                                     : (u < true_a + true_i ? ev::Stratum::kIncentive
                                                            : ev::Stratum::kNone);
    it.treated = rng.bernoulli(true_e);
    it.charged = (s == ev::Stratum::kAlways) || (s == ev::Stratum::kIncentive && it.treated);
    items.push_back(it);
  }
  EctPriceConfig cfg;
  cfg.ncf.num_stations = 1;
  cfg.ncf.embedding_dim = 8;
  cfg.ncf.hidden_dims = {16};
  cfg.epochs = 15;
  EctPriceModel model(cfg, Rng(80));
  model.fit(items);
  const auto p = model.predict_one(0, 0);
  EXPECT_NEAR(p.p_incentive, true_i, 0.05);
  EXPECT_NEAR(p.p_always, true_a, 0.05);
  EXPECT_NEAR(p.propensity, true_e, 0.05);
}

TEST(Evaluate, StrataGainScores) {
  StrataPrediction p{0.5, 0.3, 0.2, 0.5};
  const auto scores = strata_gain_scores({p}, 0.25);
  EXPECT_NEAR(scores[0], 0.75 * 0.3 - 0.25 * 0.2, 1e-12);
  EXPECT_THROW(strata_gain_scores({p}, 0.0), std::invalid_argument);
}

TEST(Evaluate, TopKSelectsHighestScores) {
  const std::vector<double> scores = {0.1, 0.5, 0.3, 0.9, 0.2};
  const auto sel = decide_top_k(scores, 2);
  EXPECT_EQ(sel, (std::vector<bool>{false, true, false, true, false}));
}

TEST(Evaluate, TopKSkipsNonPositiveScores) {
  // Items a method scores as unprofitable are never forced into the budget.
  const std::vector<double> scores = {-0.1, 0.5, 0.0, -0.9};
  const auto sel = decide_top_k(scores, 4);
  EXPECT_EQ(sel, (std::vector<bool>{false, true, false, false}));
}

TEST(Evaluate, TopKZeroBudgetSelectsNothing) {
  const auto sel = decide_top_k({1.0, 2.0}, 0);
  EXPECT_EQ(sel, (std::vector<bool>{false, false}));
}

TEST(Evaluate, TopKBudgetLargerThanPositives) {
  const auto sel = decide_top_k({1.0, -1.0}, 10);
  EXPECT_EQ(sel, (std::vector<bool>{true, false}));
}

TEST(Evaluate, StationCurvesAveragePredictions) {
  std::vector<Item> items(2);
  items[0].station_id = 1;
  items[0].hour = 5;
  items[1].station_id = 1;
  items[1].hour = 5;
  std::vector<StrataPrediction> preds = {{0.2, 0.6, 0.2, 0.5}, {0.4, 0.2, 0.4, 0.5}};
  const auto curves = strata_curves_for_station(items, preds, 1);
  EXPECT_NEAR(curves.p_incentive[5], 0.4, 1e-12);
  EXPECT_NEAR(curves.p_none[5], 0.3, 1e-12);
}

}  // namespace
}  // namespace ecthub::causal
