// ecthub_lint rule engine tests: every rule fires on its seeded fixture,
// stays silent on clean fixtures mirroring the repo's real idioms, honors the
// allowlist, and detects stale allowlist entries.  The Repo* tests at the
// bottom run the shipped configuration over the real tree, so `ctest` itself
// enforces "src/ is lint-clean and the allowlist is honest" — CI Job 5 then
// re-checks the same invariant from the command line.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using ecthub::lint::Allowlist;
using ecthub::lint::Finding;

const std::string kFixtureDir = ECTHUB_LINT_FIXTURE_DIR;
const std::string kRepoRoot = ECTHUB_REPO_ROOT;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string path = kFixtureDir + "/" + name;
  return ecthub::lint::lint_source(path, read_file(path));
}

std::map<std::string, int> rule_counts(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[f.rule];
  return counts;
}

// ---------------------------------------------------------------------------
// Lexical preprocessing
// ---------------------------------------------------------------------------

TEST(LintStrip, RemovesCommentsAndLiteralContentsPreservingLines) {
  const std::string src =
      "int a; // std::rand() in a comment\n"
      "/* std::random_device\n"
      "   spans lines */ int b;\n"
      "const char* s = \"std::rand()\";\n";
  const std::string stripped = ecthub::lint::strip_comments_and_literals(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("random_device"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, HandlesRawStringsAndDigitSeparators) {
  const std::string src =
      "const char* r = R\"(getenv inside raw)\";\n"
      "long big = 1'000'000;\n";
  const std::string stripped = ecthub::lint::strip_comments_and_literals(src);
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_NE(stripped.find("1'000'000"), std::string::npos);
}

TEST(LintStrip, CommentedCodeNeverFires) {
  const auto findings = ecthub::lint::lint_source(
      "x.cpp", "// static int calls = 0; std::rand();\nint f() { return 0; }\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

TEST(LintDeterminism, RandFixtureFiresPerSite) {
  const auto counts = rule_counts(lint_fixture("determinism_rand.cpp"));
  EXPECT_EQ(counts.at("determinism/rand"), 2);            // srand + rand
  EXPECT_EQ(counts.at("determinism/random-device"), 1);
}

TEST(LintDeterminism, WallClockAndGetenvFixture) {
  const auto findings = lint_fixture("determinism_time.cpp");
  const auto counts = rule_counts(findings);
  EXPECT_EQ(counts.at("determinism/wall-clock"), 2);      // time() + _clock::now
  EXPECT_EQ(counts.at("determinism/getenv"), 1);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintDeterminism, StaticLocalsFlaggedConstTableAllowed) {
  const auto findings = lint_fixture("determinism_static_local.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "determinism/static-local");
  EXPECT_EQ(findings[1].rule, "determinism/static-local");
  // The `static thread_local` scratch-RNG shape (PR 5's bug) is one of them.
  EXPECT_NE(findings[1].excerpt.find("thread_local"), std::string::npos);
  // `static const int kinds[4]` at the bottom of the fixture did not fire.
  for (const Finding& f : findings) {
    EXPECT_EQ(f.excerpt.find("kinds"), std::string::npos);
  }
}

TEST(LintDeterminism, NamespaceScopeStaticIsNotAFunctionLocal) {
  const auto findings = ecthub::lint::lint_source(
      "x.cpp",
      "static int file_scope_helper(int x) { return x; }\n"
      "namespace { static double weight = 0.5; }\n");
  // File-scope internal-linkage declarations are a different concern — the
  // function-local rule must not fire on them.
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// Hot-path allocation rules
// ---------------------------------------------------------------------------

TEST(LintHotpath, AllocFixtureFiresPerClassAndColdPathIsSilent) {
  const auto findings = lint_fixture("hotpath_alloc.cpp");
  const auto counts = rule_counts(findings);
  EXPECT_EQ(counts.at("hotpath/new"), 1);
  EXPECT_EQ(counts.at("hotpath/make-owning"), 1);
  EXPECT_EQ(counts.at("hotpath/string-construction"), 1);
  EXPECT_EQ(counts.at("hotpath/container-growth"), 3);  // push_back, reserve, resize
  // Nothing fired inside cold_path (the last function of the fixture).
  for (const Finding& f : findings) {
    EXPECT_EQ(f.excerpt.find("cold"), std::string::npos) << f.excerpt;
  }
}

TEST(LintHotpath, DecideRowsAndActRowsAreHotByName) {
  const auto src =
      "#include <vector>\n"
      "void act_rows(std::vector<int>& plan) { plan.push_back(1); }\n"
      "void decide(std::vector<int>& plan) { plan.push_back(1); }\n";
  const auto findings = ecthub::lint::lint_source("x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);  // decide() without _rows is cold
  EXPECT_EQ(findings[0].rule, "hotpath/container-growth");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintHotpath, WorkspaceAndOutputReceiversAreSanctioned) {
  const auto src =
      "#include <vector>\n"
      "struct W { std::vector<double> trunk; };\n"
      "void f_into(W& ws, std::vector<double>& out, std::vector<double>& rows) {\n"
      "  ws.trunk.resize(4);\n"
      "  out.resize(4);\n"
      "  rows.resize(4);\n"  // only this one fires: "rows" is not "ws"
      "}\n";
  const auto findings = ecthub::lint::lint_source("x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 6u);
}

// ---------------------------------------------------------------------------
// Header hygiene rules
// ---------------------------------------------------------------------------

TEST(LintHeader, MissingGuardFires) {
  const auto counts = rule_counts(lint_fixture("header_no_guard.hpp"));
  EXPECT_EQ(counts.at("header/missing-guard"), 1);
}

TEST(LintHeader, UsingNamespaceAtScopeFiresButFunctionLocalIsLegal) {
  const auto findings = lint_fixture("header_using_namespace.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header/using-namespace");
  EXPECT_EQ(findings[0].line, 10u);
}

TEST(LintHeader, DocCommentBeforeGuardIsHouseStyle) {
  // The repo's headers open with a doc comment, then the guard — that must
  // not read as "code before the guard".
  const auto findings =
      ecthub::lint::lint_source("x.hpp", "// doc\n// more doc\n#pragma once\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintHeader, SourceFilesAreExemptFromHeaderRules) {
  const auto findings =
      ecthub::lint::lint_source("x.cpp", "namespace a { using namespace std; }\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// Clean fixtures: the repo's real idioms are false-positive-free
// ---------------------------------------------------------------------------

TEST(LintClean, CleanModuleMirroringRepoIdiomsIsSilent) {
  const auto findings = lint_fixture("clean_module.cpp");
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s); first: "
      << (findings.empty() ? "" : findings[0].rule + " @ " + findings[0].excerpt);
}

TEST(LintClean, CleanHeaderIsSilent) {
  EXPECT_TRUE(lint_fixture("clean_header.hpp").empty());
}

TEST(LintClean, FlushLoopIdiomIsSilent) {
  // The decision-service micro-batching idiom (see
  // serve::DecisionService::flush_into): a hot-path-named flush that grows
  // only ws-named receivers, writes a fixed latency ring by index, and reads
  // time solely through an injected clock pointer.
  const auto findings = lint_fixture("clean_flush_loop.cpp");
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s); first: "
      << (findings.empty() ? "" : findings[0].rule + " @ " + findings[0].excerpt);
}

TEST(LintClean, SerializerIdiomIsSilent) {
  // The shard-file serializer idiom (byte-explicit writers, bounds-checked
  // reader, FNV-1a trailer — see src/sim/shard_io.cpp) is all cold path; the
  // linter must not mistake its buffer growth or throwing reader for hot-path
  // or determinism violations.
  const auto findings = lint_fixture("clean_serializer.cpp");
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s); first: "
      << (findings.empty() ? "" : findings[0].rule + " @ " + findings[0].excerpt);
}

// ---------------------------------------------------------------------------
// Allowlist mechanics
// ---------------------------------------------------------------------------

TEST(LintAllowlist, SuppressesMatchingFindingsAndMarksEntriesUsed) {
  Allowlist allow;
  std::string error;
  ASSERT_TRUE(Allowlist::load(kFixtureDir + "/fixture_allowlist.txt", allow, error))
      << error;
  auto findings = lint_fixture("allowlisted.cpp");
  ASSERT_EQ(findings.size(), 1u);
  std::vector<bool> used;
  findings = ecthub::lint::apply_allowlist(std::move(findings), allow, &used);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(used.size(), 1u);
  EXPECT_TRUE(used[0]);
}

TEST(LintAllowlist, EntryWithoutJustificationIsRejected) {
  Allowlist allow;
  std::string error;
  std::istringstream missing("a.cpp | static int x |   \n");
  EXPECT_FALSE(Allowlist::parse(missing, allow, error));
  std::istringstream two_fields("a.cpp | static int x\n");
  EXPECT_FALSE(Allowlist::parse(two_fields, allow, error));
}

TEST(LintAllowlist, PathMatchRequiresComponentBoundary) {
  Allowlist allow;
  std::string error;
  std::istringstream in("ed.cpp | static int calls | bogus suffix entry\n");
  ASSERT_TRUE(Allowlist::parse(in, allow, error));
  // "allowlisted.cpp" must NOT match the entry for "ed.cpp".
  auto findings = lint_fixture("allowlisted.cpp");
  ASSERT_EQ(findings.size(), 1u);
  findings = ecthub::lint::apply_allowlist(std::move(findings), allow);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintAllowlist, StaleEntriesDetected) {
  Allowlist allow;
  std::string error;
  std::istringstream in(
      "allowlisted.cpp | static int calls = 0; | still real\n"
      "allowlisted.cpp | this line was deleted long ago | stale\n"
      "no_such_file.cpp | anything | stale: file is gone\n");
  ASSERT_TRUE(Allowlist::parse(in, allow, error));
  const auto stale = ecthub::lint::stale_entries(allow, kFixtureDir);
  ASSERT_EQ(stale.size(), 2u);
  EXPECT_EQ(stale[0].needle, "this line was deleted long ago");
  EXPECT_EQ(stale[1].file, "no_such_file.cpp");
}

// ---------------------------------------------------------------------------
// The shipped configuration over the real tree
// ---------------------------------------------------------------------------

TEST(LintRepo, SrcIsLintCleanUnderShippedAllowlist) {
  Allowlist allow;
  std::string error;
  ASSERT_TRUE(Allowlist::load(kRepoRoot + "/tools/lint_allowlist.txt", allow, error))
      << error;
  auto findings = ecthub::lint::lint_tree(kRepoRoot + "/src");
  findings = ecthub::lint::apply_allowlist(std::move(findings), allow);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] " << f.excerpt;
  }
}

TEST(LintRepo, ShippedAllowlistIsNotStale) {
  Allowlist allow;
  std::string error;
  ASSERT_TRUE(Allowlist::load(kRepoRoot + "/tools/lint_allowlist.txt", allow, error))
      << error;
  EXPECT_FALSE(allow.entries().empty())
      << "shipped allowlist parsed to zero entries — format drift?";
  for (const auto& e : ecthub::lint::stale_entries(allow, kRepoRoot + "/src")) {
    ADD_FAILURE() << "stale allowlist entry (line " << e.ordinal << "): " << e.file
                  << " | " << e.needle;
  }
}

}  // namespace
