// Tests for the pricing substrate: RTP generator, TOU tariff, selling policy.
#include "common/stats.hpp"
#include "pricing/rtp.hpp"
#include "pricing/selling.hpp"
#include "pricing/tariff.hpp"

#include <gtest/gtest.h>

namespace ecthub::pricing {
namespace {

// ---------------------------------------------------------------- RTP

TEST(RtpGenerator, PricesAboveFloor) {
  RtpGenerator gen(RtpConfig{}, Rng(1));
  const TimeGrid grid(30, 24);
  const auto price = gen.generate(grid);
  ASSERT_EQ(price.size(), grid.size());
  for (double p : price) EXPECT_GE(p, RtpConfig{}.floor_price);
}

TEST(RtpGenerator, EveningPeakExceedsNightTrough) {
  RtpConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.spike_prob = 0.0;
  RtpGenerator gen(cfg, Rng(2));
  const TimeGrid grid(1, 24);
  const auto price = gen.generate(grid);
  EXPECT_GT(price[20], price[4]);
  EXPECT_GT(price[20], cfg.base_price);
  EXPECT_LT(price[4], cfg.base_price);
}

TEST(RtpGenerator, DiurnalComponentShape) {
  RtpGenerator gen(RtpConfig{}, Rng(3));
  EXPECT_GT(gen.diurnal_component(20.0), gen.diurnal_component(12.0));
  EXPECT_LT(gen.diurnal_component(4.0), 0.0);
}

TEST(RtpGenerator, LoadCouplingRaisesPrices) {
  RtpConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.spike_prob = 0.0;
  cfg.load_coupling = 50.0;
  const TimeGrid grid(2, 24);
  const std::vector<double> full_load(grid.size(), 1.0);
  const std::vector<double> no_load(grid.size(), 0.0);
  const auto hi = RtpGenerator(cfg, Rng(4)).generate(grid, full_load);
  const auto lo = RtpGenerator(cfg, Rng(4)).generate(grid, no_load);
  for (std::size_t t = 0; t < grid.size(); ++t) EXPECT_NEAR(hi[t] - lo[t], 50.0, 1e-9);
}

TEST(RtpGenerator, CorrelatesWithCoupledLoad) {
  // The Fig. 5 observation: price and load positively correlated.
  RtpConfig cfg;
  const TimeGrid grid(30, 24);
  std::vector<double> load(grid.size());
  for (std::size_t t = 0; t < grid.size(); ++t) {
    // Evening-peaking load, in phase with the paper's Fig. 5 measurement.
    load[t] = 0.5 + 0.5 * std::sin(2.0 * 3.14159 * (grid.hour_of_day(t) - 14.0) / 24.0);
  }
  const auto price = RtpGenerator(cfg, Rng(5)).generate(grid, load);
  EXPECT_GT(stats::pearson(price, load), 0.2);
}

TEST(RtpGenerator, SpikesRaiseExtremes) {
  RtpConfig no_spike;
  no_spike.spike_prob = 0.0;
  RtpConfig spiky;
  spiky.spike_prob = 0.2;
  spiky.spike_scale = 100.0;
  const TimeGrid grid(60, 24);
  const auto calm = RtpGenerator(no_spike, Rng(6)).generate(grid);
  const auto wild = RtpGenerator(spiky, Rng(6)).generate(grid);
  EXPECT_GT(stats::max(wild), stats::max(calm));
}

TEST(RtpGenerator, GenerateIntoMatchesGenerateAndReusesBuffers) {
  const TimeGrid grid(3, 24);
  const auto fresh = RtpGenerator(RtpConfig{}, Rng(41)).generate(grid);

  RtpGenerator gen(RtpConfig{}, Rng(41));
  std::vector<double> reused;
  gen.generate_into(grid, {}, reused);
  EXPECT_EQ(reused, fresh);

  // A second pass must reuse the buffer (no realloc) and draw a fresh
  // stochastic stream, not replay the first.
  const double* buf = reused.data();
  const double first_p0 = reused[0];
  gen.generate_into(grid, {}, reused);
  EXPECT_EQ(reused.data(), buf);
  EXPECT_EQ(reused.size(), grid.size());
  EXPECT_NE(reused[0], first_p0);
}

TEST(RtpGenerator, LoadLengthMismatchThrows) {
  RtpGenerator gen(RtpConfig{}, Rng(7));
  const TimeGrid grid(2, 24);
  EXPECT_THROW(gen.generate(grid, std::vector<double>(5, 0.5)), std::invalid_argument);
}

TEST(RtpGenerator, RejectsBadConfig) {
  RtpConfig bad;
  bad.base_price = 0.0;
  EXPECT_THROW(RtpGenerator(bad, Rng(1)), std::invalid_argument);
  RtpConfig bad2;
  bad2.spike_prob = 2.0;
  EXPECT_THROW(RtpGenerator(bad2, Rng(1)), std::invalid_argument);
}

// Property sweep: determinism and floor invariants across seeds.
class RtpSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtpSeedSweep, DeterministicAndFloored) {
  const std::uint64_t seed = GetParam();
  const TimeGrid grid(10, 24);
  const auto a = RtpGenerator(RtpConfig{}, Rng(seed)).generate(grid);
  const auto b = RtpGenerator(RtpConfig{}, Rng(seed)).generate(grid);
  EXPECT_EQ(a, b);
  for (double p : a) EXPECT_GE(p, RtpConfig{}.floor_price);
  // Diurnal structure survives every seed: evening mean above night mean.
  double evening = 0, night = 0;
  std::size_t ne = 0, nn = 0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double h = grid.hour_of_day(t);
    if (h >= 19 && h <= 21) {
      evening += a[t];
      ++ne;
    }
    if (h >= 3 && h <= 5) {
      night += a[t];
      ++nn;
    }
  }
  EXPECT_GT(evening / static_cast<double>(ne), night / static_cast<double>(nn));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpSeedSweep, ::testing::Values(1u, 17u, 123u, 9999u));

// ---------------------------------------------------------------- TOU

TEST(TouTariff, TypicalTariffWindows) {
  const TouTariff t = TouTariff::typical();
  EXPECT_DOUBLE_EQ(t.price_at_hour(3.0), 45.0);    // off-peak (wraps midnight)
  EXPECT_DOUBLE_EQ(t.price_at_hour(23.5), 45.0);   // off-peak
  EXPECT_DOUBLE_EQ(t.price_at_hour(18.0), 110.0);  // peak
  EXPECT_DOUBLE_EQ(t.price_at_hour(12.0), 75.0);   // shoulder
}

TEST(TouTariff, NegativeHourWraps) {
  const TouTariff t = TouTariff::typical();
  EXPECT_DOUBLE_EQ(t.price_at_hour(-1.0), t.price_at_hour(23.0));
}

TEST(TouTariff, RejectsInvalidPeriods) {
  EXPECT_THROW(TouTariff({{25.0, 3.0, 10.0}}, 5.0), std::invalid_argument);
  EXPECT_THROW(TouTariff({{1.0, 3.0, -10.0}}, 5.0), std::invalid_argument);
  EXPECT_THROW(TouTariff({}, -5.0), std::invalid_argument);
}

// ---------------------------------------------------------------- selling

TEST(DiscountSchedule, DefaultsToZero) {
  const DiscountSchedule s(10);
  for (std::size_t t = 0; t < 10; ++t) EXPECT_DOUBLE_EQ(s.at(t), 0.0);
  EXPECT_EQ(s.num_discounted(), 0u);
}

TEST(DiscountSchedule, FromFlags) {
  const std::vector<bool> flags = {true, false, true};
  const auto s = DiscountSchedule::from_flags(flags, 0.25);
  EXPECT_DOUBLE_EQ(s.at(0), 0.25);
  EXPECT_DOUBLE_EQ(s.at(1), 0.0);
  EXPECT_EQ(s.num_discounted(), 2u);
}

TEST(DiscountSchedule, RejectsBadFraction) {
  EXPECT_THROW(DiscountSchedule::from_flags({true}, 1.0), std::invalid_argument);
  DiscountSchedule s(3);
  EXPECT_THROW(s.set(0, -0.1), std::invalid_argument);
  EXPECT_THROW(s.set(5, 0.1), std::out_of_range);
}

TEST(SellingPricePolicy, AppliesMarkupAndDiscount) {
  DiscountSchedule sched(2);
  sched.set(1, 0.5);
  SellingConfig cfg;
  cfg.markup = 2.0;
  cfg.floor = 0.0;
  const SellingPricePolicy policy(cfg, sched);
  EXPECT_DOUBLE_EQ(policy.srtp(0, 100.0), 200.0);
  EXPECT_DOUBLE_EQ(policy.srtp(1, 100.0), 100.0);
}

TEST(SellingPricePolicy, EnforcesFloor) {
  DiscountSchedule sched(1);
  SellingConfig cfg;
  cfg.markup = 1.0;
  cfg.floor = 30.0;
  const SellingPricePolicy policy(cfg, sched);
  EXPECT_DOUBLE_EQ(policy.srtp(0, 10.0), 30.0);
}

TEST(SellingPricePolicy, SeriesMatchesPerSlot) {
  DiscountSchedule sched(3);
  sched.set(2, 0.2);
  const SellingPricePolicy policy(SellingConfig{}, sched);
  const std::vector<double> rtp = {50.0, 60.0, 70.0};
  const auto series = policy.series(rtp);
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(series[t], policy.srtp(t, rtp[t]));
}

TEST(SellingPricePolicy, SeriesLengthMismatchThrows) {
  const SellingPricePolicy policy(SellingConfig{}, DiscountSchedule(3));
  EXPECT_THROW(policy.series({1.0}), std::invalid_argument);
}

TEST(SellingPricePolicy, SeriesIntoMatchesSeriesAndReusesBuffers) {
  DiscountSchedule schedule(4);
  schedule.set(2, 0.2);
  const SellingPricePolicy policy(SellingConfig{}, schedule);
  const std::vector<double> rtp = {40.0, 80.0, 120.0, 60.0};
  const std::vector<double> fresh = policy.series(rtp);

  std::vector<double> reused;
  policy.series_into(rtp, reused);
  EXPECT_EQ(reused, fresh);

  const double* buf = reused.data();
  policy.series_into(rtp, reused);
  EXPECT_EQ(reused.data(), buf);
  EXPECT_EQ(reused, fresh);
  EXPECT_THROW(policy.series_into({1.0}, reused), std::invalid_argument);
}

TEST(SellingPricePolicy, UndiscountedSellAboveBuy) {
  // Economic sanity: with the default markup, selling undiscounted energy is
  // profitable per-unit at any grid price.
  const SellingPricePolicy policy(SellingConfig{}, DiscountSchedule(1));
  for (double rtp : {20.0, 60.0, 140.0}) EXPECT_GT(policy.srtp(0, rtp), rtp);
}

}  // namespace
}  // namespace ecthub::pricing
