// Lint fixture (never compiled): using-namespace at namespace scope in a
// header.  Expected: header/using-namespace x1 — the function-local using
// directive further down is legal and must stay silent.
#pragma once

#include <vector>

namespace fixture {

using namespace std;

inline int total(const vector<int>& v) { return static_cast<int>(v.size()); }

inline int scoped() {
  using namespace std;
  return 0;
}

}  // namespace fixture
