// Lint fixture (never compiled): a clean module mirroring the repo's real
// idioms.  Every construct here is sanctioned; the linter must report zero
// findings — this file is the false-positive regression net.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct Workspace {
  std::vector<double> trunk;
  std::vector<double> probs;
};

// splitmix64-style finalizer: the repo's deterministic stream-seeding
// primitive (common/rng.hpp mix_seed).
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

struct Rng {
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
};

// mix_seed-derived RNG construction — the sanctioned seeding idiom
// (per-hub / per-lane streams are pure functions of the config seed).
inline Rng lane_rng(std::uint64_t seed, std::uint64_t lane) {
  return Rng(mix_seed(seed, lane));
}

// `encode_time(...)` must not trip the wall-clock rule: `time(` only matches
// as a whole word.
inline std::size_t encode_time(std::size_t hour) { return hour % 24; }

inline std::size_t time_id_of(std::size_t hour) { return encode_time(hour); }

// Warm-up growth of caller-owned workspace and output buffers inside a
// hot-path body — the `*_into` contract's sanctioned idiom (a steady-state
// resize to the same size is a no-op).
inline void forward_rows_into(const std::vector<double>& x, Workspace& ws,
                              std::vector<double>& out) {
  ws.trunk.resize(x.size());
  ws.probs.reserve(x.size());
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + ws.trunk[i];
}

// Cold-path allocation is unrestricted.
inline std::vector<double> build_table(std::size_t n) {
  std::vector<double> table;
  table.reserve(n);
  for (std::size_t i = 0; i < n; ++i) table.push_back(static_cast<double>(i));
  return table;
}

// Cold-path std::string formatting is unrestricted.
inline std::string label_of(std::size_t hub) {
  return "hub-" + std::to_string(hub);
}

// Immutable function-local lookup tables are legal (const static duration).
inline int kind_count() {
  static const int kinds[4] = {0, 1, 2, 3};
  return kinds[3];
}

}  // namespace fixture
