// Lint fixture (never compiled): one genuine violation that
// fixture_allowlist.txt excuses — proves suppression plus the used-entry
// bookkeeping that feeds stale detection.
int call_count() {
  static int calls = 0;
  return ++calls;
}
