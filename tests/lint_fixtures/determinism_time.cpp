// Lint fixture (never compiled): wall clocks and environment lookups.
// Expected: determinism/wall-clock x2, determinism/getenv x1.
#include <chrono>
#include <cstdlib>
#include <ctime>

long long stamps() {
  const std::time_t wall = std::time(nullptr);
  const auto tick = std::chrono::steady_clock::now().time_since_epoch().count();
  const char* home = std::getenv("HOME");
  return static_cast<long long>(wall) + tick + (home != nullptr ? 1 : 0);
}
