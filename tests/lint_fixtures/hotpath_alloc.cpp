// Lint fixture (never compiled): allocation inside hot-path bodies.
// Expected: hotpath/container-growth x3, hotpath/new x1,
// hotpath/make-owning x1, hotpath/string-construction x1.
// The cold_path function at the bottom must stay silent.
#include <memory>
#include <string>
#include <vector>

struct Sink {
  std::vector<double> rows;
};

void gather_into(const std::vector<double>& src, Sink& sink) {
  for (double v : src) sink.rows.push_back(v);
  double* raw = new double[src.size()];
  delete[] raw;
  auto owned = std::make_unique<Sink>();
  (void)owned;
  std::string label("hot");
  (void)label;
  sink.rows.reserve(src.size() * 2);
}

void decide_rows(std::vector<int>& plan) {
  plan.resize(9);
}

void cold_path(Sink& sink) {
  sink.rows.push_back(1.0);
  std::string name("cold");
  (void)name;
}
