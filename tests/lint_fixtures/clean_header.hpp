// Lint fixture (never compiled): a clean header in the repo's house style —
// doc comment first, then the guard, self-contained includes, no
// using-namespace at namespace scope.  Expected findings: zero.
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {

/// Rolling mean over a fixed window; the kind of small header-only helper
/// the real tree keeps in common/.
class Meter {
 public:
  explicit Meter(std::size_t window) : window_(window) {}

  void add(double v) {
    if (values_.size() < window_) values_.push_back(v);
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }

 private:
  std::size_t window_;
  std::vector<double> values_;
};

}  // namespace fixture
