// Lint fixture (never compiled): the decision-service flush idiom — a
// hot-path-named (`*_into`) micro-batching loop in the style of
// serve::DecisionService::flush_into.  Everything here is sanctioned: all
// buffer growth targets workspace-named receivers, the latency ring is
// fixed-size index writes, condition-variable wakeups are allocation-free,
// and no clock is read (timing comes through an injected function pointer).
// The linter must report zero findings.
#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

using ClockFn = std::uint64_t (*)();

struct Ticket {
  std::vector<double> obs;
  std::size_t action = 0;
  bool done = false;
  std::uint64_t enqueue_us = 0;
  std::condition_variable cv;
};

struct FlushWorkspace {
  std::vector<double> obs;            // admitted rows x state_dim, reused
  std::vector<std::size_t> actions;   // one per admitted row
  std::vector<Ticket*> batch;         // admitted tickets, queue order
};

struct ServeState {
  std::vector<Ticket*> pending;
  std::size_t max_batch = 32;
  std::size_t state_dim = 33;
  std::vector<double> latency_ring;   // fixed capacity, index writes only
  std::size_t latency_next = 0;
  ClockFn now_us = nullptr;           // injected clock: src/ reads no clock
};

// The flush loop: admit pending tickets into the workspace matrix, scatter
// the actions back, wake the callers.  Hot-path named, so growth is legal
// only on the ws-named receivers — which is exactly where it all lands.
inline void flush_into(ServeState& st, FlushWorkspace& ws) {
  const std::size_t admitted = std::min(st.pending.size(), st.max_batch);
  ws.batch.assign(st.pending.begin(),
                  st.pending.begin() + static_cast<std::ptrdiff_t>(admitted));
  st.pending.erase(st.pending.begin(),
                   st.pending.begin() + static_cast<std::ptrdiff_t>(admitted));
  ws.obs.resize(admitted * st.state_dim);
  for (std::size_t i = 0; i < admitted; ++i) {
    std::copy(ws.batch[i]->obs.begin(), ws.batch[i]->obs.end(),
              ws.obs.begin() + static_cast<std::ptrdiff_t>(i * st.state_dim));
  }
  ws.actions.resize(admitted);
  const std::uint64_t scatter_us = st.now_us != nullptr ? st.now_us() : 0;
  for (std::size_t i = 0; i < admitted; ++i) {
    Ticket* ticket = ws.batch[i];
    if (st.now_us != nullptr) {
      st.latency_ring[st.latency_next] =
          static_cast<double>(scatter_us - ticket->enqueue_us);
      st.latency_next = (st.latency_next + 1) % st.latency_ring.size();
    }
    ticket->action = ws.actions[i];
    ticket->done = true;
    ticket->cv.notify_one();
  }
}

}  // namespace fixture
