// Lint fixture (never compiled): mutable static-duration function-locals —
// the exact shape of the PR 5 checkpoint-load bug (a static thread_local
// scratch RNG made results history-dependent).
// Expected: determinism/static-local x2 (the `static const` table is legal).
#include <cstdint>

int call_counter() {
  static int calls = 0;
  return ++calls;
}

double scratch_rng(std::uint64_t seed) {
  static thread_local std::uint64_t state = seed;
  state ^= state << 13;
  return static_cast<double>(state);
}

int lookup(int i) {
  static const int kinds[4] = {1, 2, 3, 4};
  return kinds[i & 3];
}
