// Lint fixture (never compiled): header without #pragma once or an include
// guard.  Expected: header/missing-guard x1.
namespace fixture {

inline int identity(int x) { return x; }

}  // namespace fixture
