// Lint fixture (never compiled): forbidden entropy sources.
// Expected: determinism/rand x2, determinism/random-device x1.
#include <cstdlib>
#include <random>

int noisy() {
  std::srand(42);
  int a = std::rand();
  std::random_device rd;
  return a + static_cast<int>(rd());
}
