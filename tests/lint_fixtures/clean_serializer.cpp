// Lint fixture (never compiled): the shard serializer idiom from
// src/sim/shard_io.cpp — byte-explicit little-endian writers, a bounds-checked
// payload reader, and an FNV-1a trailer, all cold-path.  None of it may trip
// the hot-path, determinism, or header rules; this file is the serializer
// false-positive regression net.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fixture {

// Byte-explicit little-endian emission: shifts and masks, never memcpy of a
// host-endian struct.  Cold-path growth of the output buffer is sanctioned.
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

// Length-prefixed strings: u64 byte count, then the raw bytes.
inline void put_string(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s.data(), s.size());
}

// FNV-1a over the serialized payload — a pure function of the bytes, so the
// determinism rules stay silent.
inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Bounds-checked cursor over an untrusted payload.  Throwing on truncation is
// the sanctioned typed-error idiom (cold path; exceptions are fine here).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(payload_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(payload_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return payload_.size() - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > remaining()) throw std::runtime_error("payload truncated");
  }

  std::string_view payload_;
  std::size_t pos_ = 0;
};

// Round-trip of a record through the writers and the reader: cold-path
// std::string construction and vector growth are both unrestricted.
inline std::vector<std::string> round_trip_labels(
    const std::vector<std::string>& labels) {
  std::string blob;
  put_u32(blob, 1u);
  put_u64(blob, labels.size());
  for (const std::string& label : labels) put_string(blob, label);
  put_u64(blob, fnv1a(blob));

  PayloadReader reader(std::string_view(blob).substr(4));
  const std::uint64_t count = reader.u64();
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(reader.str());
  return out;
}

}  // namespace fixture
