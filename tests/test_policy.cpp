// Tests for the unified Policy API: the observation layout contract, the
// batched-vs-scalar equivalence of decide_batch() for every policy kind,
// and the DrlPolicy checkpoint round trip.
#include "common/rng.hpp"
#include "policy/drl_policy.hpp"
#include "policy/observation.hpp"
#include "policy/rule_policies.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <numbers>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ecthub::policy {
namespace {

// Synthetic but layout-valid observation: random channel windows, random
// SoC, exact phase encoding of `hour`.
std::vector<double> fake_obs(const ObservationLayout& layout, Rng& rng, double hour) {
  std::vector<double> obs(layout.dim());
  for (std::size_t i = 0; i < layout.soc_index(); ++i) obs[i] = rng.uniform(0.0, 1.5);
  obs[layout.soc_index()] = rng.uniform(0.0, 1.0);
  obs[layout.hour_sin_index()] = std::sin(2.0 * std::numbers::pi * hour / 24.0);
  obs[layout.hour_cos_index()] = std::cos(2.0 * std::numbers::pi * hour / 24.0);
  return obs;
}

nn::Matrix fake_obs_batch(const ObservationLayout& layout, Rng& rng, std::size_t rows) {
  nn::Matrix m(rows, layout.dim());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<double> obs = fake_obs(layout, rng, static_cast<double>(r % 24));
    for (std::size_t c = 0; c < obs.size(); ++c) m(r, c) = obs[c];
  }
  return m;
}

// ------------------------------------------------------------------ layout

TEST(ObservationLayout, DimRoundTripsThroughFromDim) {
  for (const std::size_t lookback : {1u, 3u, 6u, 12u}) {
    const ObservationLayout layout{lookback};
    EXPECT_EQ(ObservationLayout::from_dim(layout.dim()).lookback, lookback);
  }
  EXPECT_THROW((void)ObservationLayout::from_dim(0), std::invalid_argument);
  EXPECT_THROW((void)ObservationLayout::from_dim(7), std::invalid_argument);
  EXPECT_THROW((void)ObservationLayout::from_dim(34), std::invalid_argument);
}

TEST(ObservationLayout, DefaultMatchesHubEnvStateDim) {
  // 5 channels x 6 lookback + SoC + hour phase — the EctHubEnv default.
  EXPECT_EQ(ObservationLayout{}.dim(), 33u);
}

TEST(ObservationLayout, AccessorsDecodeTheEncodedFeatures) {
  const ObservationLayout layout{2};
  // [rtp0 rtp1 | ghi0 ghi1 | wind0 wind1 | traf0 traf1 | srtp0 srtp1 |
  //  soc sin cos], newest value last within each window.
  std::vector<double> obs = {0.5, 0.8, 0.1, 0.2, 0.3, 0.4, 0.6,
                             0.7, 0.4, 0.9, 0.55, 0.0, 1.0};
  ASSERT_EQ(obs.size(), layout.dim());
  EXPECT_DOUBLE_EQ(layout.rtp(obs), 0.8 * ObservationLayout::kPriceScale);
  EXPECT_DOUBLE_EQ(layout.srtp(obs), 0.9 * ObservationLayout::kPriceScale);
  EXPECT_DOUBLE_EQ(layout.soc(obs), 0.55);
  EXPECT_DOUBLE_EQ(layout.hour_of_day(obs), 0.0);
}

TEST(ObservationLayout, HourOfDaySurvivesThePhaseRoundTripExactly) {
  const ObservationLayout layout;
  Rng rng(7);
  for (std::size_t h = 0; h < 24; ++h) {
    const auto obs = fake_obs(layout, rng, static_cast<double>(h));
    EXPECT_DOUBLE_EQ(layout.hour_of_day(obs), static_cast<double>(h)) << h;
  }
  // Sub-hour slots (e.g. 48 slots/day) decode too.
  const auto obs = fake_obs(layout, rng, 13.5);
  EXPECT_DOUBLE_EQ(layout.hour_of_day(obs), 13.5);
}

TEST(ObservationLayout, WrongSizeIsRejected) {
  const ObservationLayout layout;
  const std::vector<double> too_short(5, 0.0);
  EXPECT_THROW((void)layout.soc(too_short), std::invalid_argument);
}

// -------------------------------------------------- batched-vs-scalar parity

// For every policy kind, decide_batch(M) must equal the row-by-row decide()
// sequence — the contract that makes lockstep fleets interchangeable with
// per-hub execution.
TEST(PolicyBatching, DecideBatchMatchesScalarForEveryKind) {
  const ObservationLayout layout;
  using Factory = std::function<std::unique_ptr<Policy>()>;
  nn::Rng drl_rng(99);
  DrlPolicyConfig drl_cfg;
  drl_cfg.state_dim = layout.dim();
  drl_cfg.trunk_dim = 16;
  drl_cfg.head_dim = 8;
  const DrlCheckpoint ckpt = DrlPolicy(drl_cfg, drl_rng).checkpoint();

  const std::vector<Factory> factories = {
      [&] { return std::make_unique<NoBatteryPolicy>(); },
      [&] { return std::make_unique<TouPolicy>(layout); },
      [&] { return std::make_unique<GreedyPricePolicy>(layout); },
      [&] { return std::make_unique<ForecastPolicy>(layout); },
      [&] { return std::make_unique<RandomPolicy>(42); },
      [&] { return std::make_unique<DrlPolicy>(ckpt); },
  };
  for (const Factory& make : factories) {
    Rng obs_rng(11);
    const nn::Matrix obs = fake_obs_batch(layout, obs_rng, 40);
    const auto scalar_pol = make();
    const auto batch_pol = make();
    std::vector<std::size_t> scalar_actions(obs.rows()), batch_actions(obs.rows());
    const double* data = obs.data().data();
    for (std::size_t i = 0; i < obs.rows(); ++i) {
      scalar_actions[i] =
          scalar_pol->decide(std::span<const double>(data + i * obs.cols(), obs.cols()));
    }
    batch_pol->decide_batch(obs, std::span<std::size_t>(batch_actions));
    EXPECT_EQ(scalar_actions, batch_actions) << scalar_pol->name();
    for (const std::size_t a : batch_actions) EXPECT_LT(a, 3u) << scalar_pol->name();
  }
}

// ----------------------------------------------- row-block decide parity

// Every stateless policy must reproduce its full-batch decide_batch output
// bit-exactly when the batch is split into arbitrary row-blocks — including
// 1-row and ragged splits — each computed through its own workspace.  This
// is the contract that lets the lockstep fleet shard one observation matrix
// across a worker crew.
TEST(PolicyRowBlocks, ArbitrarySplitsMatchFullBatchForEveryStatelessKind) {
  const ObservationLayout layout;
  nn::Rng drl_rng(99);
  DrlPolicyConfig drl_cfg;
  drl_cfg.state_dim = layout.dim();
  drl_cfg.trunk_dim = 16;
  drl_cfg.head_dim = 8;
  const DrlCheckpoint ckpt = DrlPolicy(drl_cfg, drl_rng).checkpoint();

  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(std::make_unique<NoBatteryPolicy>());
  policies.push_back(std::make_unique<TouPolicy>(layout));
  policies.push_back(std::make_unique<DrlPolicy>(ckpt));

  constexpr std::size_t kRows = 41;  // odd on purpose: ragged split fodder
  Rng obs_rng(13);
  const nn::Matrix obs = fake_obs_batch(layout, obs_rng, kRows);
  const std::vector<std::vector<std::size_t>> split_sets = {
      {0, kRows},                          // the full batch as one block
      {0, 1, 2, 3, kRows},                 // 1-row blocks up front
      {0, 7, 7, 19, 40, kRows},            // ragged, including an empty block
      {0, 40, kRows},                      // a 1-row tail
  };
  for (const auto& pol : policies) {
    ASSERT_TRUE(pol->stateless()) << pol->name();
    std::vector<std::size_t> full(kRows, 99), blocked(kRows, 99);
    pol->decide_batch(obs, std::span<std::size_t>(full));
    for (const std::vector<std::size_t>& splits : split_sets) {
      std::fill(blocked.begin(), blocked.end(), 99);
      const auto ws = pol->make_workspace();
      ASSERT_NE(ws, nullptr) << pol->name();
      for (std::size_t s = 0; s + 1 < splits.size(); ++s) {
        pol->decide_rows(obs, splits[s], splits[s + 1], std::span<std::size_t>(blocked),
                         *ws);
      }
      EXPECT_EQ(blocked, full) << pol->name();
    }
  }
}

TEST(PolicyRowBlocks, ConcurrentDisjointBlocksOnOneSharedInstanceMatch) {
  // The threaded contract itself: several threads calling decide_rows on
  // disjoint row-blocks of one shared instance — each with its own
  // workspace — must reproduce the single-threaded full batch bit for bit.
  const ObservationLayout layout;
  nn::Rng drl_rng(7);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  const DrlCheckpoint ckpt = DrlPolicy(cfg, drl_rng).checkpoint();
  DrlPolicy shared(ckpt);

  constexpr std::size_t kRows = 67;
  constexpr std::size_t kThreads = 4;
  Rng obs_rng(29);
  const nn::Matrix obs = fake_obs_batch(layout, obs_rng, kRows);
  std::vector<std::size_t> full(kRows), threaded(kRows, 99);
  shared.decide_batch(obs, std::span<std::size_t>(full));

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const std::size_t begin = kRows * t / kThreads;
      const std::size_t end = kRows * (t + 1) / kThreads;
      const auto ws = shared.make_workspace();
      // Two passes through the same workspace: reuse must not perturb bits.
      shared.decide_rows(obs, begin, end, std::span<std::size_t>(threaded), *ws);
      shared.decide_rows(obs, begin, end, std::span<std::size_t>(threaded), *ws);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(threaded, full);
}

TEST(PolicyRowBlocks, StatefulPoliciesRejectRowBlockCalls) {
  const ObservationLayout layout;
  Rng rng(3);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 4);
  std::vector<std::size_t> actions(4);
  GreedyPricePolicy greedy(layout);
  const auto ws = greedy.make_workspace();
  ASSERT_NE(ws, nullptr);
  EXPECT_THROW(
      greedy.decide_rows(obs, 0, 4, std::span<std::size_t>(actions), *ws),
      std::logic_error);
  RandomPolicy random(1);
  const auto rws = random.make_workspace();
  EXPECT_THROW(
      random.decide_rows(obs, 0, 4, std::span<std::size_t>(actions), *rws),
      std::logic_error);
}

TEST(PolicyRowBlocks, BadRangesAndForeignWorkspacesAreRejected) {
  const ObservationLayout layout;
  Rng rng(5);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 6);
  std::vector<std::size_t> actions(6);
  TouPolicy tou(layout);
  const auto tou_ws = tou.make_workspace();
  EXPECT_THROW(tou.decide_rows(obs, 4, 2, std::span<std::size_t>(actions), *tou_ws),
               std::invalid_argument);
  EXPECT_THROW(tou.decide_rows(obs, 0, 7, std::span<std::size_t>(actions), *tou_ws),
               std::invalid_argument);
  std::vector<std::size_t> too_few(3);
  EXPECT_THROW(tou.decide_rows(obs, 0, 3, std::span<std::size_t>(too_few), *tou_ws),
               std::invalid_argument);

  nn::Rng drl_rng(11);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  DrlPolicy drl(cfg, drl_rng);
  // A base (TOU) workspace is not a DRL forward scratch.
  EXPECT_THROW(drl.decide_rows(obs, 0, 6, std::span<std::size_t>(actions), *tou_ws),
               std::invalid_argument);
}

TEST(PolicyBatching, ActionSpanSizeMismatchThrows) {
  const ObservationLayout layout;
  Rng rng(3);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 4);
  std::vector<std::size_t> too_few(3);
  TouPolicy tou(layout);
  EXPECT_THROW(tou.decide_batch(obs, std::span<std::size_t>(too_few)),
               std::invalid_argument);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  nn::Rng drl_rng(5);
  DrlPolicy drl(cfg, drl_rng);
  EXPECT_THROW(drl.decide_batch(obs, std::span<std::size_t>(too_few)),
               std::invalid_argument);
}

TEST(PolicyStatefulness, StatelessFlagsMatchTheImplementations) {
  const ObservationLayout layout;
  EXPECT_TRUE(NoBatteryPolicy().stateless());
  EXPECT_TRUE(TouPolicy(layout).stateless());
  EXPECT_FALSE(GreedyPricePolicy(layout).stateless());
  EXPECT_FALSE(ForecastPolicy(layout).stateless());
  EXPECT_FALSE(RandomPolicy(1).stateless());
  nn::Rng rng(1);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  EXPECT_TRUE(DrlPolicy(cfg, rng).stateless());
}

TEST(PolicyStatefulness, GreedyWindowClearsAtEpisodeStart) {
  const ObservationLayout layout;
  Rng rng(17);
  GreedyPricePolicy a(layout), b(layout);
  // Feed `a` a first episode, then reset both and replay the same second
  // episode: a's decisions must match the never-polluted b's exactly.
  for (std::size_t t = 0; t < 30; ++t) {
    (void)a.decide(fake_obs(layout, rng, static_cast<double>(t % 24)));
  }
  a.begin_episode();
  b.begin_episode();
  Rng replay(23);
  for (std::size_t t = 0; t < 30; ++t) {
    const auto obs = fake_obs(layout, replay, static_cast<double>(t % 24));
    EXPECT_EQ(a.decide(obs), b.decide(obs)) << "slot " << t;
  }
}

// ------------------------------------------------------------- DRL policy

TEST(DrlPolicy, CheckpointRoundTripsThroughAStream) {
  const ObservationLayout layout;
  nn::Rng rng(321);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  cfg.trunk_dim = 24;
  cfg.head_dim = 12;
  DrlPolicy original(cfg, rng);

  std::stringstream stream;
  original.checkpoint().save(stream);
  const DrlCheckpoint restored_ckpt = DrlCheckpoint::load(stream);
  EXPECT_EQ(restored_ckpt.config.state_dim, cfg.state_dim);
  EXPECT_EQ(restored_ckpt.config.trunk_dim, cfg.trunk_dim);
  EXPECT_EQ(restored_ckpt.config.head_dim, cfg.head_dim);
  DrlPolicy restored(restored_ckpt);

  Rng obs_rng(55);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto obs = fake_obs(layout, obs_rng, static_cast<double>(i % 24));
    EXPECT_EQ(original.decide(obs), restored.decide(obs)) << "obs " << i;
  }
}

TEST(DrlPolicy, CheckpointLoadsAreIndependentOfThreadLoadHistory) {
  // Regression test: checkpoint restoration used to draw its throwaway init
  // weights from one `static thread_local` RNG shared by every policy loaded
  // on that thread, so a restored policy's construction consumed state that
  // other loads depended on.  Each load now owns a fixed-seed RNG, so a
  // restored policy is a pure function of its checkpoint: every load — first
  // or hundredth on a thread, interleaved with other shapes, or on a fresh
  // thread — must reproduce the source weights bit for bit.
  const ObservationLayout layout;
  nn::Rng rng(2718);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  DrlPolicy source(cfg, rng);
  const DrlCheckpoint ckpt = source.checkpoint();

  const auto expect_matches_source = [&](DrlPolicy& restored, const char* what) {
    auto got = restored.parameters();
    auto want = source.parameters();
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t p = 0; p < want.size(); ++p) {
      ASSERT_EQ(got[p].name, want[p].name) << what;
      ASSERT_EQ(got[p].value->data().size(), want[p].value->data().size()) << what;
      for (std::size_t i = 0; i < want[p].value->data().size(); ++i) {
        EXPECT_EQ(got[p].value->data()[i], want[p].value->data()[i])
            << what << ": " << want[p].name << "[" << i << "]";
      }
    }
  };

  // Interleave loads of a different architecture so any shared RNG state
  // would be advanced by a different number of draws between loads.
  DrlPolicyConfig other_cfg = cfg;
  other_cfg.trunk_dim = 24;
  other_cfg.head_dim = 4;
  nn::Rng other_rng(4);
  const DrlCheckpoint other_ckpt = DrlPolicy(other_cfg, other_rng).checkpoint();

  DrlPolicy first(ckpt);
  DrlPolicy interloper(other_ckpt);
  DrlPolicy second(ckpt);
  expect_matches_source(first, "first load");
  expect_matches_source(second, "load after an interleaved different shape");

  std::unique_ptr<DrlPolicy> threaded;
  std::thread loader([&] { threaded = std::make_unique<DrlPolicy>(ckpt); });
  loader.join();
  expect_matches_source(*threaded, "load on a fresh thread");
}

TEST(DrlPolicy, LoadRejectsGarbageAndMismatchedBlobs) {
  std::istringstream garbage("not a checkpoint at all, sorry");
  EXPECT_THROW((void)DrlCheckpoint::load(garbage), std::runtime_error);

  // A blob serialized for one architecture must not load into another.
  nn::Rng rng(9);
  DrlPolicyConfig small;
  small.state_dim = 33;
  small.trunk_dim = 8;
  small.head_dim = 4;
  DrlCheckpoint ckpt = DrlPolicy(small, rng).checkpoint();
  ckpt.config.trunk_dim = 16;  // lie about the shape
  EXPECT_THROW((void)DrlPolicy{ckpt}, std::runtime_error);
}

TEST(DrlPolicy, ValidatesItsConfig) {
  nn::Rng rng(1);
  DrlPolicyConfig bad;
  bad.state_dim = 0;
  EXPECT_THROW((void)DrlPolicy(bad, rng), std::invalid_argument);
  bad.state_dim = 10;
  bad.action_count = 1;
  EXPECT_THROW((void)DrlPolicy(bad, rng), std::invalid_argument);
  bad.action_count = 3;
  bad.trunk_dim = 0;
  EXPECT_THROW((void)DrlPolicy(bad, rng), std::invalid_argument);
}

TEST(DrlPolicy, DecideRejectsWrongStateDim) {
  nn::Rng rng(2);
  DrlPolicyConfig cfg;
  cfg.state_dim = 33;
  DrlPolicy pol(cfg, rng);
  const std::vector<double> wrong(12, 0.0);
  EXPECT_THROW((void)pol.decide(wrong), std::invalid_argument);
  const nn::Matrix wrong_batch(2, 12);
  std::vector<std::size_t> actions(2);
  EXPECT_THROW(pol.decide_batch(wrong_batch, std::span<std::size_t>(actions)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::policy
