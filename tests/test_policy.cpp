// Tests for the unified Policy API: the observation layout contract, the
// batched-vs-scalar equivalence of decide_batch() for every policy kind,
// and the DrlPolicy checkpoint round trip.
#include "common/rng.hpp"
#include "policy/drl_policy.hpp"
#include "policy/observation.hpp"
#include "policy/rule_policies.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <numbers>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecthub::policy {
namespace {

// Synthetic but layout-valid observation: random channel windows, random
// SoC, exact phase encoding of `hour`.
std::vector<double> fake_obs(const ObservationLayout& layout, Rng& rng, double hour) {
  std::vector<double> obs(layout.dim());
  for (std::size_t i = 0; i < layout.soc_index(); ++i) obs[i] = rng.uniform(0.0, 1.5);
  obs[layout.soc_index()] = rng.uniform(0.0, 1.0);
  obs[layout.hour_sin_index()] = std::sin(2.0 * std::numbers::pi * hour / 24.0);
  obs[layout.hour_cos_index()] = std::cos(2.0 * std::numbers::pi * hour / 24.0);
  return obs;
}

nn::Matrix fake_obs_batch(const ObservationLayout& layout, Rng& rng, std::size_t rows) {
  nn::Matrix m(rows, layout.dim());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<double> obs = fake_obs(layout, rng, static_cast<double>(r % 24));
    for (std::size_t c = 0; c < obs.size(); ++c) m(r, c) = obs[c];
  }
  return m;
}

// ------------------------------------------------------------------ layout

TEST(ObservationLayout, DimRoundTripsThroughFromDim) {
  for (const std::size_t lookback : {1u, 3u, 6u, 12u}) {
    const ObservationLayout layout{lookback};
    EXPECT_EQ(ObservationLayout::from_dim(layout.dim()).lookback, lookback);
  }
  EXPECT_THROW((void)ObservationLayout::from_dim(0), std::invalid_argument);
  EXPECT_THROW((void)ObservationLayout::from_dim(7), std::invalid_argument);
  EXPECT_THROW((void)ObservationLayout::from_dim(34), std::invalid_argument);
}

TEST(ObservationLayout, DefaultMatchesHubEnvStateDim) {
  // 5 channels x 6 lookback + SoC + hour phase — the EctHubEnv default.
  EXPECT_EQ(ObservationLayout{}.dim(), 33u);
}

TEST(ObservationLayout, AccessorsDecodeTheEncodedFeatures) {
  const ObservationLayout layout{2};
  // [rtp0 rtp1 | ghi0 ghi1 | wind0 wind1 | traf0 traf1 | srtp0 srtp1 |
  //  soc sin cos], newest value last within each window.
  std::vector<double> obs = {0.5, 0.8, 0.1, 0.2, 0.3, 0.4, 0.6,
                             0.7, 0.4, 0.9, 0.55, 0.0, 1.0};
  ASSERT_EQ(obs.size(), layout.dim());
  EXPECT_DOUBLE_EQ(layout.rtp(obs), 0.8 * ObservationLayout::kPriceScale);
  EXPECT_DOUBLE_EQ(layout.srtp(obs), 0.9 * ObservationLayout::kPriceScale);
  EXPECT_DOUBLE_EQ(layout.soc(obs), 0.55);
  EXPECT_DOUBLE_EQ(layout.hour_of_day(obs), 0.0);
}

TEST(ObservationLayout, HourOfDaySurvivesThePhaseRoundTripExactly) {
  const ObservationLayout layout;
  Rng rng(7);
  for (std::size_t h = 0; h < 24; ++h) {
    const auto obs = fake_obs(layout, rng, static_cast<double>(h));
    EXPECT_DOUBLE_EQ(layout.hour_of_day(obs), static_cast<double>(h)) << h;
  }
  // Sub-hour slots (e.g. 48 slots/day) decode too.
  const auto obs = fake_obs(layout, rng, 13.5);
  EXPECT_DOUBLE_EQ(layout.hour_of_day(obs), 13.5);
}

TEST(ObservationLayout, WrongSizeIsRejected) {
  const ObservationLayout layout;
  const std::vector<double> too_short(5, 0.0);
  EXPECT_THROW((void)layout.soc(too_short), std::invalid_argument);
}

// -------------------------------------------------- batched-vs-scalar parity

// For every policy kind, decide_batch(M) must equal the row-by-row decide()
// sequence — the contract that makes lockstep fleets interchangeable with
// per-hub execution.
TEST(PolicyBatching, DecideBatchMatchesScalarForEveryKind) {
  const ObservationLayout layout;
  using Factory = std::function<std::unique_ptr<Policy>()>;
  nn::Rng drl_rng(99);
  DrlPolicyConfig drl_cfg;
  drl_cfg.state_dim = layout.dim();
  drl_cfg.trunk_dim = 16;
  drl_cfg.head_dim = 8;
  const DrlCheckpoint ckpt = DrlPolicy(drl_cfg, drl_rng).checkpoint();

  const std::vector<Factory> factories = {
      [&] { return std::make_unique<NoBatteryPolicy>(); },
      [&] { return std::make_unique<TouPolicy>(layout); },
      [&] { return std::make_unique<GreedyPricePolicy>(layout); },
      [&] { return std::make_unique<ForecastPolicy>(layout); },
      [&] { return std::make_unique<RandomPolicy>(42); },
      [&] { return std::make_unique<DrlPolicy>(ckpt); },
  };
  for (const Factory& make : factories) {
    Rng obs_rng(11);
    const nn::Matrix obs = fake_obs_batch(layout, obs_rng, 40);
    const auto scalar_pol = make();
    const auto batch_pol = make();
    std::vector<std::size_t> scalar_actions(obs.rows()), batch_actions(obs.rows());
    const double* data = obs.data().data();
    for (std::size_t i = 0; i < obs.rows(); ++i) {
      scalar_actions[i] =
          scalar_pol->decide(std::span<const double>(data + i * obs.cols(), obs.cols()));
    }
    batch_pol->decide_batch(obs, std::span<std::size_t>(batch_actions));
    EXPECT_EQ(scalar_actions, batch_actions) << scalar_pol->name();
    for (const std::size_t a : batch_actions) EXPECT_LT(a, 3u) << scalar_pol->name();
  }
}

TEST(PolicyBatching, ActionSpanSizeMismatchThrows) {
  const ObservationLayout layout;
  Rng rng(3);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 4);
  std::vector<std::size_t> too_few(3);
  TouPolicy tou(layout);
  EXPECT_THROW(tou.decide_batch(obs, std::span<std::size_t>(too_few)),
               std::invalid_argument);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  nn::Rng drl_rng(5);
  DrlPolicy drl(cfg, drl_rng);
  EXPECT_THROW(drl.decide_batch(obs, std::span<std::size_t>(too_few)),
               std::invalid_argument);
}

TEST(PolicyStatefulness, StatelessFlagsMatchTheImplementations) {
  const ObservationLayout layout;
  EXPECT_TRUE(NoBatteryPolicy().stateless());
  EXPECT_TRUE(TouPolicy(layout).stateless());
  EXPECT_FALSE(GreedyPricePolicy(layout).stateless());
  EXPECT_FALSE(ForecastPolicy(layout).stateless());
  EXPECT_FALSE(RandomPolicy(1).stateless());
  nn::Rng rng(1);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  EXPECT_TRUE(DrlPolicy(cfg, rng).stateless());
}

TEST(PolicyStatefulness, GreedyWindowClearsAtEpisodeStart) {
  const ObservationLayout layout;
  Rng rng(17);
  GreedyPricePolicy a(layout), b(layout);
  // Feed `a` a first episode, then reset both and replay the same second
  // episode: a's decisions must match the never-polluted b's exactly.
  for (std::size_t t = 0; t < 30; ++t) {
    (void)a.decide(fake_obs(layout, rng, static_cast<double>(t % 24)));
  }
  a.begin_episode();
  b.begin_episode();
  Rng replay(23);
  for (std::size_t t = 0; t < 30; ++t) {
    const auto obs = fake_obs(layout, replay, static_cast<double>(t % 24));
    EXPECT_EQ(a.decide(obs), b.decide(obs)) << "slot " << t;
  }
}

// ------------------------------------------------------------- DRL policy

TEST(DrlPolicy, CheckpointRoundTripsThroughAStream) {
  const ObservationLayout layout;
  nn::Rng rng(321);
  DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  cfg.trunk_dim = 24;
  cfg.head_dim = 12;
  DrlPolicy original(cfg, rng);

  std::stringstream stream;
  original.checkpoint().save(stream);
  const DrlCheckpoint restored_ckpt = DrlCheckpoint::load(stream);
  EXPECT_EQ(restored_ckpt.config.state_dim, cfg.state_dim);
  EXPECT_EQ(restored_ckpt.config.trunk_dim, cfg.trunk_dim);
  EXPECT_EQ(restored_ckpt.config.head_dim, cfg.head_dim);
  DrlPolicy restored(restored_ckpt);

  Rng obs_rng(55);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto obs = fake_obs(layout, obs_rng, static_cast<double>(i % 24));
    EXPECT_EQ(original.decide(obs), restored.decide(obs)) << "obs " << i;
  }
}

TEST(DrlPolicy, LoadRejectsGarbageAndMismatchedBlobs) {
  std::istringstream garbage("not a checkpoint at all, sorry");
  EXPECT_THROW((void)DrlCheckpoint::load(garbage), std::runtime_error);

  // A blob serialized for one architecture must not load into another.
  nn::Rng rng(9);
  DrlPolicyConfig small;
  small.state_dim = 33;
  small.trunk_dim = 8;
  small.head_dim = 4;
  DrlCheckpoint ckpt = DrlPolicy(small, rng).checkpoint();
  ckpt.config.trunk_dim = 16;  // lie about the shape
  EXPECT_THROW((void)DrlPolicy{ckpt}, std::runtime_error);
}

TEST(DrlPolicy, ValidatesItsConfig) {
  nn::Rng rng(1);
  DrlPolicyConfig bad;
  bad.state_dim = 0;
  EXPECT_THROW((void)DrlPolicy(bad, rng), std::invalid_argument);
  bad.state_dim = 10;
  bad.action_count = 1;
  EXPECT_THROW((void)DrlPolicy(bad, rng), std::invalid_argument);
  bad.action_count = 3;
  bad.trunk_dim = 0;
  EXPECT_THROW((void)DrlPolicy(bad, rng), std::invalid_argument);
}

TEST(DrlPolicy, DecideRejectsWrongStateDim) {
  nn::Rng rng(2);
  DrlPolicyConfig cfg;
  cfg.state_dim = 33;
  DrlPolicy pol(cfg, rng);
  const std::vector<double> wrong(12, 0.0);
  EXPECT_THROW((void)pol.decide(wrong), std::invalid_argument);
  const nn::Matrix wrong_batch(2, 12);
  std::vector<std::size_t> actions(2);
  EXPECT_THROW(pol.decide_batch(wrong_batch, std::span<std::size_t>(actions)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::policy
