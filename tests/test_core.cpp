// Tests for the core hub: configuration, environment (Eqs. 1-12 wired
// together), profit ledger, and the policy execution path.
#include "common/stats.hpp"
#include "core/fleet.hpp"
#include "core/hub_config.hpp"
#include "core/hub_env.hpp"
#include "core/policy_runner.hpp"
#include "core/profit.hpp"
#include "policy/rule_policies.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

namespace ecthub::core {
namespace {

HubEnvConfig small_env(std::size_t days = 3) {
  HubEnvConfig cfg;
  cfg.episode_days = days;
  return cfg;
}

// ---------------------------------------------------------------- config

TEST(HubConfig, UrbanPresetHasPvOnly) {
  const HubConfig cfg = HubConfig::urban("u", 1);
  EXPECT_TRUE(cfg.plant.pv.has_value());
  EXPECT_FALSE(cfg.plant.wt.has_value());
  EXPECT_EQ(cfg.site, HubSite::kUrban);
}

TEST(HubConfig, RuralPresetHasWind) {
  const HubConfig cfg = HubConfig::rural("r", 2);
  EXPECT_TRUE(cfg.plant.wt.has_value());
  EXPECT_EQ(cfg.site, HubSite::kRural);
}

TEST(DefaultFleet, TwelveHeterogeneousHubs) {
  const auto fleet = default_fleet();
  ASSERT_EQ(fleet.size(), 12u);
  std::size_t rural = 0;
  for (const auto& hub : fleet) {
    if (hub.site == HubSite::kRural) ++rural;
  }
  EXPECT_GT(rural, 0u);
  EXPECT_LT(rural, 12u);
  // Seeds and names unique.
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      EXPECT_NE(fleet[i].seed, fleet[j].seed);
      EXPECT_NE(fleet[i].name, fleet[j].name);
    }
  }
}

// ---------------------------------------------------------------- profit

TEST(Profit, SlotEconomicsDollarConversion) {
  // 10 kW for 1 h at 100 $/MWh = 1 $.
  const SlotEconomics e = slot_economics(10.0, 10.0, 100.0, 100.0, 0.05, 1.0);
  EXPECT_NEAR(e.revenue, 1.0, 1e-12);
  EXPECT_NEAR(e.grid_cost, 1.0, 1e-12);
  EXPECT_NEAR(e.profit(), -0.05, 1e-12);
}

TEST(Profit, SlotEconomicsValidation) {
  EXPECT_THROW((void)slot_economics(1.0, 1.0, 10.0, 10.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)slot_economics(-1.0, 1.0, 10.0, 10.0, 0.0, 1.0), std::invalid_argument);
}

TEST(Profit, LedgerAggregatesByDay) {
  ProfitLedger ledger(2);  // 2 slots per day
  SlotEconomics e;
  e.revenue = 1.0;
  ledger.record(e);
  ledger.record(e);
  ledger.record(e);
  ASSERT_EQ(ledger.daily_profit().size(), 2u);
  EXPECT_NEAR(ledger.daily_profit()[0], 2.0, 1e-12);
  EXPECT_NEAR(ledger.daily_profit()[1], 1.0, 1e-12);
  EXPECT_NEAR(ledger.total_profit(), 3.0, 1e-12);
  EXPECT_EQ(ledger.slots_recorded(), 3u);
}

TEST(Profit, LedgerTracksComponents) {
  ProfitLedger ledger(24);
  SlotEconomics e;
  e.revenue = 5.0;
  e.grid_cost = 2.0;
  e.bp_cost = 0.5;
  ledger.record(e);
  EXPECT_DOUBLE_EQ(ledger.total_revenue(), 5.0);
  EXPECT_DOUBLE_EQ(ledger.total_grid_cost(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.total_bp_cost(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.total_profit(), 2.5);
}

// ---------------------------------------------------------------- env

TEST(EctHubEnv, ResetProducesStateOfDeclaredDim) {
  EctHubEnv env(HubConfig::urban("t", 3), small_env());
  const auto state = env.reset();
  EXPECT_EQ(state.size(), env.state_dim());
  EXPECT_EQ(env.action_count(), 3u);
}

TEST(EctHubEnv, EpisodeTerminatesAtHorizon) {
  EctHubEnv env(HubConfig::urban("t", 4), small_env(2));
  env.reset();
  std::size_t steps = 0;
  bool done = false;
  while (!done) {
    done = env.step(0).done;
    ++steps;
  }
  EXPECT_EQ(steps, 48u);
}

TEST(EctHubEnv, StepBeforeResetThrows) {
  EctHubEnv env(HubConfig::urban("t", 5), small_env());
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(EctHubEnv, BadActionThrows) {
  EctHubEnv env(HubConfig::urban("t", 6), small_env());
  env.reset();
  EXPECT_THROW(env.step(3), std::invalid_argument);
}

TEST(EctHubEnv, SocStaysWithinBoundsUnderRandomActions) {
  EctHubEnv env(HubConfig::rural("t", 7), small_env(5));
  env.reset();
  Rng rng(8);
  bool done = false;
  while (!done) {
    done = env.step(static_cast<std::size_t>(rng.uniform_int(0, 2))).done;
    if (!done) {
      EXPECT_GE(env.soc_frac(), env.hub().battery.soc_min_frac - 1e-9);
      EXPECT_LE(env.soc_frac(), env.hub().battery.soc_max_frac + 1e-9);
    }
  }
}

TEST(EctHubEnv, ReserveFloorCoversBlackoutWindow) {
  // Eq. 6: stored reserve energy (discounted by efficiency) must cover the
  // worst BS draw over the recovery window.
  HubConfig hub = HubConfig::urban("t", 9);
  hub.recovery_hours = 6.0;
  EctHubEnv env(hub, small_env(4));
  env.reset();
  const auto& bs = env.bs_power_series();
  double worst = 0.0;
  for (std::size_t t = 0; t + 6 <= bs.size(); ++t) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 6; ++k) acc += bs[t + k];
    worst = std::max(worst, acc);
  }
  const double deliverable =
      env.pack().reserve_floor_kwh() * hub.battery.discharge_efficiency;
  EXPECT_GE(deliverable + 1e-6, std::min(worst, deliverable));  // floor clamped to soc_max
  EXPECT_GE(env.pack().reserve_floor_kwh(), env.pack().soc_min_kwh() - 1e-9);
}

TEST(EctHubEnv, UnshapedRewardMatchesLedger) {
  HubEnvConfig cfg = small_env(2);
  cfg.shaped_reward = false;
  EctHubEnv env(HubConfig::urban("t", 10), cfg);
  env.reset();
  double acc = 0.0;
  bool done = false;
  while (!done) {
    const auto r = env.step(1);
    acc += r.reward;
    done = r.done;
  }
  EXPECT_NEAR(acc, env.ledger().total_profit(), 1e-9);
}

TEST(EctHubEnv, ShapedRewardIsProfitDeltaVsIdle) {
  // Shaped episode return == true profit minus the profit an idle policy
  // would have earned on the same exogenous series.  Run the same seed twice.
  const HubConfig hub = HubConfig::urban("t", 1010);
  HubEnvConfig cfg = small_env(2);
  EctHubEnv env_active(hub, cfg);
  EctHubEnv env_idle(hub, cfg);
  env_active.reset();
  env_idle.reset();
  double shaped_acc = 0.0;
  bool done = false;
  while (!done) {
    const auto r = env_active.step(2);  // discharge whenever possible
    shaped_acc += r.reward;
    done = env_idle.step(0).done && r.done;
  }
  const double true_delta =
      env_active.ledger().total_profit() - env_idle.ledger().total_profit();
  EXPECT_NEAR(shaped_acc, true_delta, 1e-9);
}

TEST(EctHubEnv, IdleShapedRewardIsZero) {
  EctHubEnv env(HubConfig::rural("t", 1011), small_env(1));
  env.reset();
  bool done = false;
  while (!done) {
    const auto r = env.step(0);
    EXPECT_DOUBLE_EQ(r.reward, 0.0);
    done = r.done;
  }
}

TEST(EctHubEnv, DiscountsIncreaseChargingRevenue) {
  // Same hub/seed: an evening-discount schedule must attract more EV revenue
  // than no discounts (Incentive stratum only charges when discounted).
  HubConfig hub = HubConfig::urban("t", 11);
  hub.ev_evening_sensitivity = 0.9;

  HubEnvConfig no_disc = small_env(20);
  EctHubEnv env_a(hub, no_disc);
  env_a.reset();
  bool done = false;
  while (!done) done = env_a.step(0).done;
  const double revenue_no = env_a.ledger().total_revenue();

  HubEnvConfig with_disc = small_env(20);
  with_disc.discount_by_hour.assign(24, false);
  for (std::size_t h = 18; h < 24; ++h) with_disc.discount_by_hour[h] = true;
  EctHubEnv env_b(hub, with_disc);
  env_b.reset();
  done = false;
  while (!done) done = env_b.step(0).done;
  const double revenue_disc = env_b.ledger().total_revenue();

  EXPECT_GT(revenue_disc, revenue_no);
}

TEST(EctHubEnv, StateChannelsAreNormalized) {
  EctHubEnv env(HubConfig::rural("t", 12), small_env());
  const auto state = env.reset();
  for (double s : state) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, -2.0);
    EXPECT_LE(s, 3.0);
  }
}

TEST(EctHubEnv, ConfigValidation) {
  HubEnvConfig bad = small_env();
  bad.discount_by_hour.assign(100, true);  // wrong length
  EXPECT_THROW(EctHubEnv(HubConfig::urban("t", 13), bad), std::invalid_argument);
  HubEnvConfig bad2 = small_env();
  bad2.discount_fraction = 1.0;
  EXPECT_THROW(EctHubEnv(HubConfig::urban("t", 13), bad2), std::invalid_argument);
  HubEnvConfig bad3 = small_env();
  bad3.episode_days = 0;
  EXPECT_THROW(EctHubEnv(HubConfig::urban("t", 13), bad3), std::invalid_argument);
  HubEnvConfig bad4 = small_env();
  bad4.init_soc_lo = 0.9;
  bad4.init_soc_hi = 0.3;
  EXPECT_THROW(EctHubEnv(HubConfig::urban("t", 13), bad4), std::invalid_argument);
}

// ------------------------------------------------------- determinism (golden)

// Golden values generated from the pinned episode generator (urban hub,
// seed 4242, 3-day episode).  If any of these change, episode generation has
// drifted: every stored scenario, fleet comparison and figure changes with
// it.  Regenerate deliberately (print the series at %.17g) or fix the drift.
TEST(EctHubEnvGolden, FixedSeedPinsEpisodeSeries) {
  HubEnvConfig cfg;
  cfg.episode_days = 3;
  EctHubEnv env(HubConfig::urban("golden", 4242), cfg);
  env.reset();
  ASSERT_EQ(env.slots_per_episode(), 72u);

  double rtp_sum = 0.0;
  for (std::size_t t = 0; t < 72; ++t) rtp_sum += env.rtp_at(t);
  EXPECT_DOUBLE_EQ(env.rtp_at(0), 73.523843581901588);
  EXPECT_DOUBLE_EQ(env.rtp_at(71), 92.379437347852715);
  EXPECT_DOUBLE_EQ(rtp_sum, 6490.3151203255802);

  const auto& renew = env.renewable_series();
  ASSERT_EQ(renew.size(), 72u);
  double renew_sum = 0.0;
  for (const double r : renew) renew_sum += r;
  EXPECT_DOUBLE_EQ(renew.front(), 0.0);  // midnight: no PV
  EXPECT_DOUBLE_EQ(renew[12], 2.1879144406926456);
  EXPECT_DOUBLE_EQ(renew_sum, 52.532058697937451);

  const auto& bs = env.bs_power_series();
  ASSERT_EQ(bs.size(), 72u);
  double bs_sum = 0.0;
  for (const double b : bs) bs_sum += b;
  EXPECT_DOUBLE_EQ(bs.front(), 1.5191806369449494);
  EXPECT_DOUBLE_EQ(bs.back(), 1.6696044809281072);
  EXPECT_DOUBLE_EQ(bs_sum, 157.96698188832352);

  EXPECT_DOUBLE_EQ(env.soc_frac(), 0.61776257063720164);
}

TEST(EctHubEnvGolden, TwoEnvsSameSeedProduceIdenticalEpisodes) {
  HubEnvConfig cfg;
  cfg.episode_days = 2;
  const HubConfig hub = HubConfig::rural("twin", 777);
  EctHubEnv a(hub, cfg);
  EctHubEnv b(hub, cfg);
  const auto sa = a.reset();
  const auto sb = b.reset();
  EXPECT_EQ(sa, sb);
  for (std::size_t t = 0; t < a.slots_per_episode(); ++t) {
    ASSERT_EQ(a.rtp_at(t), b.rtp_at(t)) << "slot " << t;
    ASSERT_EQ(a.srtp_at(t), b.srtp_at(t)) << "slot " << t;
  }
  EXPECT_EQ(a.renewable_series(), b.renewable_series());
  EXPECT_EQ(a.bs_power_series(), b.bs_power_series());
  EXPECT_EQ(a.cs_power_series(), b.cs_power_series());
  EXPECT_EQ(a.soc_frac(), b.soc_frac());
}

TEST(EctHubEnvGolden, SuccessiveResetsDrawFreshEpisodes) {
  // Buffer reuse across resets must not replay the previous episode.
  HubEnvConfig cfg;
  cfg.episode_days = 2;
  EctHubEnv env(HubConfig::urban("fresh", 31), cfg);
  env.reset();
  const double first_rtp0 = env.rtp_at(0);
  env.reset();
  EXPECT_NE(env.rtp_at(0), first_rtp0);
}

// ---------------------------------------------------------------- edge cases

TEST(EctHubEnv, EmptyDiscountScheduleMatchesAllFalse) {
  // An empty discount_by_hour means "no discounts" and must behave exactly
  // like an explicit all-false 24-entry schedule.
  const HubConfig hub = HubConfig::urban("nodisc", 55);
  HubEnvConfig empty_cfg = small_env(2);
  HubEnvConfig false_cfg = small_env(2);
  false_cfg.discount_by_hour.assign(24, false);
  EctHubEnv env_empty(hub, empty_cfg);
  EctHubEnv env_false(hub, false_cfg);
  env_empty.reset();
  env_false.reset();
  for (std::size_t t = 0; t < env_empty.slots_per_episode(); ++t) {
    ASSERT_EQ(env_empty.srtp_at(t), env_false.srtp_at(t)) << "slot " << t;
  }
  EXPECT_EQ(env_empty.cs_power_series(), env_false.cs_power_series());
  EXPECT_NO_THROW(env_empty.step(1));
}

TEST(EctHubEnv, PoliciesRunOnEmptyDiscountEnv) {
  EctHubEnv env(HubConfig::rural("nodisc", 56), small_env(2));
  policy::TouPolicy tou;
  policy::GreedyPricePolicy greedy;
  policy::ForecastPolicy forecast;
  for (policy::Policy* pol :
       {static_cast<policy::Policy*>(&tou), static_cast<policy::Policy*>(&greedy),
        static_cast<policy::Policy*>(&forecast)}) {
    const auto profits = run_policy(env, *pol, 1);
    ASSERT_EQ(profits.size(), 1u);
    EXPECT_TRUE(std::isfinite(profits[0])) << pol->name();
  }
}

TEST(EctHubEnv, ZeroCapacityBatteryThrowsAtConstruction) {
  HubConfig hub = HubConfig::urban("dead-batt", 57);
  hub.battery.capacity_kwh = 0.0;
  EXPECT_THROW(EctHubEnv(hub, small_env()), std::invalid_argument);
  hub.battery.capacity_kwh = -5.0;
  EXPECT_THROW(EctHubEnv(hub, small_env()), std::invalid_argument);
}

TEST(EctHubEnv, NegativeRecoveryHoursThrowsAtConstruction) {
  HubConfig hub = HubConfig::urban("bad-recovery", 58);
  hub.recovery_hours = -1.0;
  EXPECT_THROW(EctHubEnv(hub, small_env()), std::invalid_argument);
}

TEST(EctHubEnv, StepPastEpisodeEndThrows) {
  EctHubEnv env(HubConfig::urban("overrun", 59), small_env(1));
  env.reset();
  bool done = false;
  while (!done) done = env.step(0).done;
  EXPECT_THROW(env.step(0), std::logic_error);
  // A reset re-arms the episode.
  env.reset();
  EXPECT_NO_THROW(env.step(0));
}

TEST(EctHubEnv, IntoOverloadsAreBitIdenticalToAllocatingPath) {
  // Two identically-seeded envs: one driven through reset()/step(), the
  // other through the allocation-free reset_into()/step_into() fast path.
  // Observations, rewards and ledger totals must match to the last bit.
  EctHubEnv alloc_env(HubConfig::urban("into-a", 61), small_env(2));
  EctHubEnv into_env(HubConfig::urban("into-a", 61), small_env(2));

  std::vector<double> alloc_state = alloc_env.reset();
  std::vector<double> into_state(into_env.state_dim());
  into_env.reset_into(into_state);
  ASSERT_EQ(into_state, alloc_state);

  bool done = false;
  std::size_t t = 0;
  while (!done) {
    const std::size_t action = t++ % 3;
    rl::StepResult sr = alloc_env.step(action);
    const StepOutcome out = into_env.step_into(action, into_state);
    EXPECT_EQ(out.reward, sr.reward);
    EXPECT_EQ(out.done, sr.done);
    EXPECT_EQ(into_state, sr.next_state);
    done = sr.done;
  }
  EXPECT_EQ(into_env.ledger().total_profit(), alloc_env.ledger().total_profit());
  EXPECT_EQ(into_env.ledger().total_revenue(), alloc_env.ledger().total_revenue());
}

TEST(EctHubEnv, IntoOverloadsValidateBufferSize) {
  EctHubEnv env(HubConfig::urban("into-b", 62), small_env(1));
  std::vector<double> wrong(env.state_dim() + 1);
  std::vector<double> right(env.state_dim());
  EXPECT_THROW(env.reset_into(wrong), std::invalid_argument);
  EXPECT_THROW(env.observe_into(right), std::logic_error);  // before reset
  env.reset_into(right);
  EXPECT_THROW(env.observe_into(wrong), std::invalid_argument);
  EXPECT_THROW(env.step_into(0, wrong), std::invalid_argument);
  EXPECT_NO_THROW(env.step_into(0, right));
}

TEST(EctHubEnv, ObserveIntoMatchesResetObservation) {
  EctHubEnv env(HubConfig::urban("into-c", 63), small_env(1));
  const std::vector<double> from_reset = env.reset();
  std::vector<double> observed(env.state_dim());
  env.observe_into(observed);
  EXPECT_EQ(observed, from_reset);
}

TEST(Profit, LedgerResetClearsTotalsAndDays) {
  ProfitLedger ledger(2);
  SlotEconomics e;
  e.revenue = 3.0;
  ledger.record(e);
  ledger.record(e);
  ledger.reset();
  EXPECT_EQ(ledger.slots_recorded(), 0u);
  EXPECT_DOUBLE_EQ(ledger.total_profit(), 0.0);
  EXPECT_TRUE(ledger.daily_profit().empty());
  // Still aggregates with the original day length after reset.
  ledger.record(e);
  ledger.record(e);
  ledger.record(e);
  EXPECT_EQ(ledger.daily_profit().size(), 2u);
}

// ------------------------------------------------------------------ policies
//
// The rule-based policies read the shared observation vector, never the env:
// these tests drive them exactly the way run_policy / the fleet engine does,
// tracking the state returned by reset()/step().

TEST(Policies, NoBatteryAlwaysIdles) {
  EctHubEnv env(HubConfig::urban("t", 14), small_env());
  const std::vector<double> state = env.reset();
  policy::NoBatteryPolicy pol;
  EXPECT_EQ(pol.decide(state), 0u);
}

TEST(Policies, TouChargesOffPeakDischargesPeak) {
  EctHubEnv env(HubConfig::urban("t", 15), small_env());
  std::vector<double> state = env.reset();
  policy::TouPolicy pol(env.observation_layout());
  // Walk the first day and collect decisions by hour.
  std::vector<std::size_t> by_hour(24, 99);
  bool done = false;
  while (!done && env.current_slot() < 24) {
    const auto hour = static_cast<std::size_t>(env.hour_of_day(env.current_slot()));
    by_hour[hour] = pol.decide(state);
    rl::StepResult r = env.step(0);
    state = std::move(r.next_state);
    done = r.done;
  }
  EXPECT_EQ(by_hour[2], 1u);   // off-peak charge
  EXPECT_EQ(by_hour[18], 2u);  // peak discharge
  EXPECT_EQ(by_hour[12], 0u);  // shoulder idle
}

TEST(Policies, GreedyArbitrageBeatsNoBatteryOnAverage) {
  HubConfig hub = HubConfig::urban("t", 16);
  EctHubEnv env_a(hub, small_env(10));
  EctHubEnv env_b(hub, small_env(10));
  policy::GreedyPricePolicy greedy;
  policy::NoBatteryPolicy none;
  const auto greedy_profit = run_policy(env_a, greedy, 5);
  const auto none_profit = run_policy(env_b, none, 5);
  double mg = 0, mn = 0;
  for (double p : greedy_profit) mg += p;
  for (double p : none_profit) mn += p;
  // Arbitrage should not be catastrophically worse; typically better.
  EXPECT_GT(mg, mn - 1.0);
}

TEST(Policies, ForecastChargesCheapHoursDischargesExpensive) {
  EctHubEnv env(HubConfig::urban("t", 21), small_env(10));
  policy::ForecastPolicy pol(env.observation_layout());
  // Walk several days so the seasonal price curve is learned, then check the
  // decisions: early-morning trough hours should charge, evening peak hours
  // should discharge.
  std::vector<double> state = env.reset();
  pol.begin_episode();
  std::vector<std::size_t> last_day_decision(24, 99);
  bool done = false;
  while (!done) {
    const std::size_t t = env.current_slot();
    const auto hour = static_cast<std::size_t>(env.hour_of_day(t));
    const std::size_t a = pol.decide(state);
    if (t >= 9 * 24) last_day_decision[hour] = a;
    rl::StepResult r = env.step(a);
    state = std::move(r.next_state);
    done = r.done;
  }
  EXPECT_EQ(last_day_decision[3], 1u);   // night trough: charge
  EXPECT_EQ(last_day_decision[20], 2u);  // evening peak: discharge
}

TEST(Policies, ForecastBeatsNoBattery) {
  HubConfig hub = HubConfig::rural("t", 22);
  EctHubEnv env_a(hub, small_env(15));
  EctHubEnv env_b(hub, small_env(15));
  policy::ForecastPolicy fc;
  policy::NoBatteryPolicy none;
  const double fc_profit = stats::mean(run_policy(env_a, fc, 4));
  const double none_profit = stats::mean(run_policy(env_b, none, 4));
  EXPECT_GT(fc_profit, none_profit);
}

TEST(Policies, ForecastRejectsBadBands) {
  EXPECT_THROW(policy::ForecastPolicy({}, 0.8, 0.2), std::invalid_argument);
}

TEST(Policies, RandomIsDeterministicPerSeed) {
  EctHubEnv env(HubConfig::urban("t", 17), small_env());
  const std::vector<double> state = env.reset();
  policy::RandomPolicy a(5), b(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.decide(state), b.decide(state));
}

TEST(Policies, RunPolicyReturnsPerEpisodeProfits) {
  EctHubEnv env(HubConfig::urban("t", 18), small_env(2));
  policy::TouPolicy pol;
  const auto profits = run_policy(env, pol, 3);
  EXPECT_EQ(profits.size(), 3u);
  for (double p : profits) EXPECT_TRUE(std::isfinite(p));
}

// ---------------------------------------------------------------- fleet

TEST(Fleet, ExportedActorMatchesTrainingPolicyDecisions) {
  // DrlPolicy mirrors the actor path of rl::ActorCritic (same layer shapes,
  // names *and* activations).  The two definitions live in different modules,
  // so pin their functional parity: if either side's architecture drifts,
  // the deployed greedy decisions stop matching the training-time ones here
  // instead of silently skewing every fleet sweep.
  rl::ActorCriticConfig ac_cfg;
  ac_cfg.state_dim = 33;
  ac_cfg.trunk_dim = 16;
  ac_cfg.head_dim = 8;
  nn::Rng init_rng(77);
  rl::ActorCritic trained(ac_cfg, init_rng);
  policy::DrlPolicy deployed(export_actor_checkpoint(trained));
  Rng obs_rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> state(ac_cfg.state_dim);
    for (double& x : state) x = obs_rng.uniform(0.0, 1.5);
    EXPECT_EQ(deployed.decide(state), trained.act_greedy(state)) << "state " << i;
  }
}

TEST(Fleet, AverageDailyReward) {
  EXPECT_NEAR(average_daily_reward({{1.0, 2.0}, {3.0}}), 2.0, 1e-12);
  EXPECT_THROW((void)average_daily_reward({}), std::invalid_argument);
}

TEST(Fleet, RunHubExperimentSmoke) {
  core::DrlExperimentConfig cfg;
  cfg.env.episode_days = 2;
  cfg.ppo.episodes_per_iteration = 1;
  cfg.train_iterations = 1;
  cfg.test_episodes = 1;
  const auto result = run_hub_experiment(HubConfig::urban("smoke", 19),
                                         std::vector<bool>(24, false), cfg, "Test");
  EXPECT_EQ(result.method, "Test");
  EXPECT_EQ(result.daily_rewards.size(), 2u);
  EXPECT_EQ(result.train_curve.size(), 1u);
  EXPECT_TRUE(std::isfinite(result.avg_daily_reward));
}

TEST(EctHubEnv, HorizonEndIsTruncatedWithRealObservation) {
  // The horizon is a time limit, not a terminal state: the last step must
  // flag truncated alongside done and hand back a real (finite, in-range)
  // final observation for the critic bootstrap — not a zeroed buffer.
  EctHubEnv env(HubConfig::urban("trunc", 64), small_env(1));
  env.reset();
  rl::StepResult last;
  bool done = false;
  while (!done) {
    last = env.step(1);
    done = last.done;
  }
  EXPECT_TRUE(last.truncated);
  ASSERT_EQ(last.next_state.size(), env.state_dim());
  double magnitude = 0.0;
  for (const double x : last.next_state) {
    EXPECT_TRUE(std::isfinite(x));
    magnitude += std::abs(x);
  }
  EXPECT_GT(magnitude, 0.0);
}

TEST(EctHubEnv, MidEpisodeStepsAreNotTruncated) {
  EctHubEnv env(HubConfig::urban("trunc2", 65), small_env(1));
  env.reset();
  const rl::StepResult first = env.step(0);
  EXPECT_FALSE(first.done);
  EXPECT_FALSE(first.truncated);
}

TEST(VecCollectorFleet, CheckpointBlobIdenticalAcrossCollectorThreads) {
  // train_drl_checkpoint routes through the vectorized collector; the crew
  // size must not leak into the trained weights.
  const auto train = [](std::size_t collector_threads) {
    DrlFleetTrainConfig cfg;
    cfg.env.episode_days = 1;
    cfg.ppo.episodes_per_iteration = 2;
    cfg.iterations = 2;
    cfg.train_hubs = 3;
    cfg.collector_threads = collector_threads;
    return train_drl_checkpoint(HubConfig::urban("vec", 21), cfg);
  };
  const policy::DrlCheckpoint one = train(1);
  const policy::DrlCheckpoint four = train(4);
  EXPECT_EQ(one.blob, four.blob);
  EXPECT_FALSE(one.blob.empty());
}

TEST(VecCollectorFleet, MultiLaneTrainingValidates) {
  DrlFleetTrainConfig cfg;
  EXPECT_THROW((void)train_drl_checkpoint(std::vector<DrlTrainLane>{}, cfg),
               std::invalid_argument);
  cfg.train_hubs = 0;
  EXPECT_THROW((void)train_drl_checkpoint(HubConfig::urban("bad", 22), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::core
