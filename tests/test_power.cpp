// Tests for the BS power model (Eq. 1) and the grid balance (Eq. 7).
#include "common/rng.hpp"
#include "power/balance.hpp"
#include "power/base_station.hpp"

#include <gtest/gtest.h>

namespace ecthub::power {
namespace {

TEST(BaseStation, LinearInLoadRate) {
  BaseStationConfig cfg;
  cfg.idle_power_kw = 1.0;
  cfg.full_power_kw = 3.0;
  const BaseStation bs(cfg);
  EXPECT_DOUBLE_EQ(bs.power_kw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(bs.power_kw(0.5), 2.0);
  EXPECT_DOUBLE_EQ(bs.power_kw(1.0), 3.0);
}

TEST(BaseStation, ClampsLoadRate) {
  const BaseStation bs(BaseStationConfig{});
  EXPECT_DOUBLE_EQ(bs.power_kw(-0.5), bs.power_kw(0.0));
  EXPECT_DOUBLE_EQ(bs.power_kw(1.5), bs.power_kw(1.0));
}

TEST(BaseStation, SeriesMatchesScalar) {
  const BaseStation bs(BaseStationConfig{});
  const std::vector<double> load = {0.0, 0.3, 0.7, 1.0};
  const auto series = bs.series(load);
  ASSERT_EQ(series.size(), load.size());
  for (std::size_t t = 0; t < load.size(); ++t) {
    EXPECT_DOUBLE_EQ(series[t], bs.power_kw(load[t]));
  }
}

TEST(BaseStation, TypicalPowerIn5GRange) {
  // Sanity vs the paper: 5G BS draws 2-4 kW at full load.
  const BaseStation bs(BaseStationConfig{});
  EXPECT_GE(bs.power_kw(1.0), 2.0);
  EXPECT_LE(bs.power_kw(1.0), 4.0);
}

TEST(BaseStation, RejectsBadConfig) {
  BaseStationConfig bad;
  bad.idle_power_kw = -0.5;
  EXPECT_THROW(BaseStation{bad}, std::invalid_argument);
  BaseStationConfig bad2;
  bad2.full_power_kw = bad2.idle_power_kw;
  EXPECT_THROW(BaseStation{bad2}, std::invalid_argument);
}

// ---------------------------------------------------------------- balance

TEST(PowerFlow, GridImportCoversDeficit) {
  // BS 2 + CS 7 + BP charging 3 - renewables 4 = 8 kW imported.
  const PowerFlow f{2.0, 7.0, 3.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(f.grid_kw(), 8.0);
  EXPECT_DOUBLE_EQ(f.curtailed_kw(), 0.0);
}

TEST(PowerFlow, SurplusIsCurtailedNotExported) {
  // Renewables exceed demand: grid import is zero (Eq. 7's max{0, .}) and the
  // surplus is curtailed — the paper's no-feed-in assumption.
  const PowerFlow f{2.0, 0.0, 0.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(f.grid_kw(), 0.0);
  EXPECT_DOUBLE_EQ(f.curtailed_kw(), 6.0);
}

TEST(PowerFlow, DischargingBatteryReducesImport) {
  const PowerFlow idle{3.0, 7.0, 0.0, 0.0, 0.0};
  const PowerFlow discharging{3.0, 7.0, -5.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(idle.grid_kw(), 10.0);
  EXPECT_DOUBLE_EQ(discharging.grid_kw(), 5.0);
}

TEST(PowerFlow, ChargingBatteryIncreasesImport) {
  const PowerFlow charging{3.0, 0.0, 4.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(charging.grid_kw(), 7.0);
}

TEST(GridImportSeries, MatchesPerSlotFlows) {
  const std::vector<double> bs = {2.0, 2.0};
  const std::vector<double> cs = {0.0, 7.0};
  const std::vector<double> bp = {1.0, -1.0};
  const std::vector<double> wt = {0.0, 3.0};
  const std::vector<double> pv = {5.0, 0.0};
  const auto grid = grid_import_series(bs, cs, bp, wt, pv);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid[0], 0.0);  // 2 + 0 + 1 - 5 < 0
  EXPECT_DOUBLE_EQ(grid[1], 5.0);  // 2 + 7 - 1 - 3
}

TEST(GridImportSeries, LengthMismatchThrows) {
  EXPECT_THROW(grid_import_series({1.0}, {1.0, 2.0}, {0.0}, {0.0}, {0.0}),
               std::invalid_argument);
}

TEST(GridImportSeries, NeverNegative) {
  Rng rng(33);
  std::vector<double> bs(100), cs(100), bp(100), wt(100), pv(100);
  for (std::size_t t = 0; t < 100; ++t) {
    bs[t] = rng.uniform(0, 4);
    cs[t] = rng.uniform(0, 15);
    bp[t] = rng.uniform(-20, 20);
    wt[t] = rng.uniform(0, 10);
    pv[t] = rng.uniform(0, 8);
  }
  for (double g : grid_import_series(bs, cs, bp, wt, pv)) EXPECT_GE(g, 0.0);
}

}  // namespace
}  // namespace ecthub::power
