// Tests for the network-traffic substrate (Eq. 1 driver).
#include "common/stats.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

#include <gtest/gtest.h>

namespace ecthub::traffic {
namespace {

TEST(DiurnalProfile, ClampsWeightsIntoUnitInterval) {
  std::array<double, 24> w{};
  w[0] = -0.5;
  w[1] = 1.5;
  const DiurnalProfile p(w);
  EXPECT_DOUBLE_EQ(p.hourly()[0], 0.0);
  EXPECT_DOUBLE_EQ(p.hourly()[1], 1.0);
}

TEST(DiurnalProfile, InterpolatesBetweenHours) {
  std::array<double, 24> w{};
  w[0] = 0.0;
  w[1] = 1.0;
  const DiurnalProfile p(w);
  EXPECT_NEAR(p.at_hour(0.5), 0.5, 1e-12);
}

TEST(DiurnalProfile, WrapsAtMidnight) {
  std::array<double, 24> w{};
  w[23] = 1.0;
  w[0] = 0.0;
  const DiurnalProfile p(w);
  EXPECT_NEAR(p.at_hour(23.5), 0.5, 1e-12);
}

TEST(DiurnalProfile, ResidentialPeaksInEvening) {
  const auto p = DiurnalProfile::for_area(AreaType::kResidential);
  EXPECT_GE(p.peak_hour(), 18u);
  EXPECT_LE(p.trough_hour(), 5u);
}

TEST(DiurnalProfile, OfficePeaksInBusinessHours) {
  const auto p = DiurnalProfile::for_area(AreaType::kOffice);
  EXPECT_GE(p.peak_hour(), 8u);
  EXPECT_LE(p.peak_hour(), 17u);
}

TEST(DiurnalProfile, HighwayHasCommutePeaks) {
  const auto p = DiurnalProfile::for_area(AreaType::kHighway);
  const auto& h = p.hourly();
  // Morning commute bump around 7-8h exceeds midday.
  EXPECT_GT(h[8], h[12]);
  // Evening commute bump around 17h exceeds midday.
  EXPECT_GT(h[17], h[12]);
}

TEST(DiurnalProfile, MixedIsAverageOfResidentialAndOffice) {
  const auto r = DiurnalProfile::for_area(AreaType::kResidential).hourly();
  const auto o = DiurnalProfile::for_area(AreaType::kOffice).hourly();
  const auto m = DiurnalProfile::for_area(AreaType::kMixed).hourly();
  for (std::size_t h = 0; h < 24; ++h) EXPECT_NEAR(m[h], 0.5 * (r[h] + o[h]), 1e-12);
}

TEST(AreaType, ToStringCoversAll) {
  EXPECT_EQ(to_string(AreaType::kResidential), "residential");
  EXPECT_EQ(to_string(AreaType::kOffice), "office");
  EXPECT_EQ(to_string(AreaType::kHighway), "highway");
  EXPECT_EQ(to_string(AreaType::kMixed), "mixed");
}

TEST(TrafficGenerator, LoadRateStaysInBounds) {
  TrafficConfig cfg;
  TrafficGenerator gen(cfg, Rng(1));
  const TimeGrid grid(30, 24);
  const TrafficTrace trace = gen.generate(grid);
  ASSERT_EQ(trace.load_rate.size(), grid.size());
  for (double a : trace.load_rate) {
    EXPECT_GE(a, cfg.min_load);
    EXPECT_LE(a, 1.0);
  }
}

TEST(TrafficGenerator, VolumeProportionalToLoad) {
  TrafficConfig cfg;
  cfg.peak_volume_gb = 200.0;
  TrafficGenerator gen(cfg, Rng(2));
  const TimeGrid grid(2, 24);
  const TrafficTrace trace = gen.generate(grid);
  for (std::size_t t = 0; t < grid.size(); ++t) {
    EXPECT_NEAR(trace.volume_gb[t], trace.load_rate[t] * 200.0, 1e-9);
  }
}

TEST(TrafficGenerator, DeterministicGivenSeed) {
  TrafficConfig cfg;
  const TimeGrid grid(7, 24);
  const TrafficTrace a = TrafficGenerator(cfg, Rng(9)).generate(grid);
  const TrafficTrace b = TrafficGenerator(cfg, Rng(9)).generate(grid);
  EXPECT_EQ(a.load_rate, b.load_rate);
}

TEST(TrafficGenerator, DiurnalShapeSurvivesNoise) {
  // Average over many days: evening load must exceed the small-hours load for
  // the residential profile, as in the paper's Fig. 5.
  TrafficConfig cfg;
  cfg.area = AreaType::kResidential;
  TrafficGenerator gen(cfg, Rng(3));
  const TimeGrid grid(60, 24);
  const TrafficTrace trace = gen.generate(grid);
  double evening = 0.0, night = 0.0;
  std::size_t ne = 0, nn = 0;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double h = grid.hour_of_day(t);
    if (h >= 19 && h <= 21) {
      evening += trace.load_rate[t];
      ++ne;
    }
    if (h >= 2 && h <= 4) {
      night += trace.load_rate[t];
      ++nn;
    }
  }
  EXPECT_GT(evening / static_cast<double>(ne), 2.0 * night / static_cast<double>(nn));
}

TEST(TrafficGenerator, WeekendFactorReducesOfficeLoad) {
  TrafficConfig cfg;
  cfg.area = AreaType::kOffice;
  cfg.weekend_factor = 0.5;
  cfg.noise_sigma = 0.0;  // isolate the deterministic effect
  TrafficGenerator gen(cfg, Rng(4));
  const TimeGrid grid(7, 24);
  const TrafficTrace trace = gen.generate(grid);
  // Compare the same hour (10am) on a weekday vs Saturday.
  const double weekday = trace.load_rate[10];
  const double saturday = trace.load_rate[5 * 24 + 10];
  EXPECT_NEAR(saturday, weekday * 0.5, 1e-9);
}

TEST(TrafficGenerator, NoiseCreatesAutocorrelatedDeviations) {
  TrafficConfig cfg;
  cfg.noise_persistence = 0.9;
  cfg.noise_sigma = 0.2;
  TrafficGenerator gen(cfg, Rng(5));
  const TimeGrid grid(90, 24);
  const TrafficTrace trace = gen.generate(grid);
  EXPECT_GT(stats::autocorrelation(trace.load_rate, 1), 0.3);
}

TEST(TrafficGenerator, RejectsBadConfig) {
  TrafficConfig bad;
  bad.noise_persistence = 1.0;
  EXPECT_THROW(TrafficGenerator(bad, Rng(1)), std::invalid_argument);
  TrafficConfig bad2;
  bad2.min_load = 1.5;
  EXPECT_THROW(TrafficGenerator(bad2, Rng(1)), std::invalid_argument);
  TrafficConfig bad3;
  bad3.noise_sigma = -0.1;
  EXPECT_THROW(TrafficGenerator(bad3, Rng(1)), std::invalid_argument);
}

TEST(TrafficGenerator, GenerateIntoMatchesGenerateAndReusesBuffers) {
  const TimeGrid grid(3, 24);
  const TrafficTrace fresh = TrafficGenerator(TrafficConfig{}, Rng(31)).generate(grid);

  TrafficGenerator gen(TrafficConfig{}, Rng(31));
  TrafficTrace reused;
  gen.generate_into(grid, reused);
  EXPECT_EQ(reused.load_rate, fresh.load_rate);
  EXPECT_EQ(reused.volume_gb, fresh.volume_gb);

  // A second pass into the same trace must reuse the buffers (no realloc)
  // and draw a fresh stochastic stream, not replay the first.
  const double* load_buf = reused.load_rate.data();
  const double first_load0 = reused.load_rate[0];
  gen.generate_into(grid, reused);
  EXPECT_EQ(reused.load_rate.data(), load_buf);
  EXPECT_EQ(reused.load_rate.size(), grid.size());
  EXPECT_NE(reused.load_rate[0], first_load0);
}

class AllAreasTest : public ::testing::TestWithParam<AreaType> {};

TEST_P(AllAreasTest, GeneratesValidTraceForEveryArchetype) {
  TrafficConfig cfg;
  cfg.area = GetParam();
  TrafficGenerator gen(cfg, Rng(6));
  const TimeGrid grid(14, 24);
  const TrafficTrace trace = gen.generate(grid);
  EXPECT_EQ(trace.load_rate.size(), grid.size());
  EXPECT_GT(stats::mean(trace.load_rate), 0.05);
  EXPECT_LT(stats::mean(trace.load_rate), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Areas, AllAreasTest,
                         ::testing::Values(AreaType::kResidential, AreaType::kOffice,
                                           AreaType::kHighway, AreaType::kMixed));

}  // namespace
}  // namespace ecthub::traffic
