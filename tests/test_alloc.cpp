// Allocation-audit regression tests.
//
// The fleet engine's hot path — EctHubEnv::reset_into + a full episode of
// step_into — is required to perform ZERO heap allocations after warm-up:
// every episode buffer is regenerated in place through the generate_into /
// simulate_into / series_into overloads and the observation is written in
// place through observe_into.  This binary replaces the global operator
// new/delete pair with a counting hook so any allocation that sneaks back
// onto the step or reset path fails a test here instead of silently eroding
// fleet throughput.
#include "common/rng.hpp"
#include "common/time_grid.hpp"
#include "core/hub_config.hpp"
#include "core/hub_env.hpp"
#include "ev/station.hpp"
#include "policy/drl_policy.hpp"
#include "pricing/rtp.hpp"
#include "pricing/selling.hpp"
#include "renewables/plant.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/metro.hpp"
#include "sim/scenario.hpp"
#include "spatial/metro.hpp"
#include "traffic/generator.hpp"
#include "weather/weather.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <vector>

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting operator-new hook: every heap allocation in this binary bumps the
// counter.  The sized/array/aligned forms are all provided so the
// replacement set is complete and no allocation (including a future
// over-aligned SIMD buffer) escapes the counter through a default form.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t alignment =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ecthub {
namespace {

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

TEST(AllocationAudit, HookObservesVectorAllocations) {
  // Sanity-check the hook itself: a vector allocation must be visible,
  // otherwise the zero-allocation assertions below would be vacuous.
  const std::uint64_t before = allocations();
  std::vector<double> v(257);
  v[0] = 1.0;
  EXPECT_GT(allocations(), before);
  EXPECT_EQ(v.size(), 257u);
}

TEST(AllocationAudit, HubResetAndFullEpisodeAllocationFreeAfterWarmup) {
  core::HubConfig hub = core::HubConfig::urban("alloc-hub", 991);
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 2;
  // Exercise the discount/selling path too, not just full-price episodes.
  env_cfg.discount_by_hour.assign(24, false);
  for (std::size_t h = 18; h < 24; ++h) env_cfg.discount_by_hour[h] = true;
  core::EctHubEnv env(std::move(hub), env_cfg);

  std::vector<double> state(env.state_dim());
  const auto run_episode = [&] {
    env.reset_into(state);
    bool done = false;
    std::size_t t = 0;
    while (!done) done = env.step_into(t++ % 3, state).done;
  };

  run_episode();  // warm-up: buffers and capacities settle
  run_episode();
  const std::uint64_t before = allocations();
  run_episode();
  EXPECT_EQ(allocations() - before, 0u)
      << "reset_into/step_into allocated on the steady-state episode path";
}

TEST(AllocationAudit, RuralHubEpisodeAlsoAllocationFree) {
  // The rural preset runs the full renewable plant (PV + wind turbine).
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 2;
  core::EctHubEnv env(core::HubConfig::rural("alloc-rural", 992), env_cfg);
  std::vector<double> state(env.state_dim());
  const auto run_episode = [&] {
    env.reset_into(state);
    bool done = false;
    std::size_t t = 0;
    while (!done) done = env.step_into((t++ / 4) % 3, state).done;
  };
  run_episode();
  run_episode();
  const std::uint64_t before = allocations();
  run_episode();
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(AllocationAudit, WeatherGenerateIntoAllocationFreeAfterWarmup) {
  const TimeGrid grid(2, 24);
  weather::SolarModel solar(weather::SolarConfig{}, Rng(31));
  weather::WindModel wind(weather::WindConfig{}, Rng(32));
  weather::WeatherGenerator wx_gen(weather::WeatherConfig{}, Rng(33));
  std::vector<double> ghi, speed;
  weather::WeatherSeries wx;
  solar.generate_into(grid, ghi);  // warm-up
  wind.generate_into(grid, speed);
  wx_gen.generate_into(grid, wx);

  const std::uint64_t before = allocations();
  solar.generate_into(grid, ghi);
  wind.generate_into(grid, speed);
  wx_gen.generate_into(grid, wx);
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(AllocationAudit, PlantAndStationRegenerateAllocationFreeAfterWarmup) {
  const TimeGrid grid(2, 24);
  weather::WeatherGenerator wx_gen(weather::WeatherConfig{}, Rng(34));
  weather::WeatherSeries wx;
  wx_gen.generate_into(grid, wx);

  const renewables::RenewablePlant plant(renewables::PlantConfig::rural());
  renewables::GenerationSeries gen;
  plant.generate_into(wx, gen);  // warm-up

  const ev::ChargingStation station(ev::StationConfig{}, ev::StrataProfile(0.8, 0.7, 0.3));
  const std::vector<bool> discounted(grid.size(), false);
  ev::OccupancySeries occ;
  Rng ev_rng(35);
  station.simulate_into(grid, discounted, ev_rng, occ);  // warm-up

  const std::uint64_t before = allocations();
  plant.generate_into(wx, gen);
  station.simulate_into(grid, discounted, ev_rng, occ);
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(AllocationAudit, DrlDecideRowsReusesItsWorkspaceAllocationFree) {
  // The worker-GEMM inference kernel: after the first call has sized the
  // workspace buffers (and the internal matmul scratch has seen its largest
  // shape), repeated row-block forwards — full batch, ragged blocks, 1-row
  // blocks — must perform zero heap allocations.
  const policy::ObservationLayout layout;
  nn::Rng rng(41);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  policy::DrlPolicy actor(cfg, rng);

  nn::Matrix obs(64, layout.dim());
  Rng obs_rng(42);
  for (double& x : obs.data()) x = obs_rng.uniform(0.0, 1.5);
  std::vector<std::size_t> actions(obs.rows());
  const auto ws = actor.make_workspace();

  actor.decide_rows(obs, 0, obs.rows(), std::span<std::size_t>(actions), *ws);  // warm-up
  const std::uint64_t before = allocations();
  actor.decide_rows(obs, 0, obs.rows(), std::span<std::size_t>(actions), *ws);
  actor.decide_rows(obs, 0, 17, std::span<std::size_t>(actions), *ws);
  actor.decide_rows(obs, 17, 64, std::span<std::size_t>(actions), *ws);
  actor.decide_rows(obs, 5, 6, std::span<std::size_t>(actions), *ws);
  EXPECT_EQ(allocations() - before, 0u)
      << "decide_rows allocated on a warmed workspace";
}

TEST(AllocationAudit, WorkerGemmLockstepSlotLoopAllocationFreeAfterWarmup) {
  // The steady-state slot loop of the worker-GEMM lockstep path must not
  // allocate: running the same DRL fleet for more episodes may not cost a
  // single extra allocation — every allocation belongs to setup or the
  // first-episode warm-up, none to the per-slot path (workspace reuse, no
  // per-slot scratch growth).
  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();
  nn::Rng rng(123);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = policy::ObservationLayout{}.dim();
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  policy::DrlPolicy actor(cfg, rng);
  const auto ckpt = std::make_shared<policy::DrlCheckpoint>(actor.checkpoint());
  const std::vector<sim::FleetJob> jobs = sim::make_fleet_jobs(
      registry, registry.keys(), 12, 2, sim::SchedulerKind::kDrl, ckpt);

  const auto run_with_episodes = [&](std::size_t episodes) {
    sim::FleetRunnerConfig runner_cfg;
    runner_cfg.lockstep_threads = 1;
    runner_cfg.lockstep_gemm = sim::LockstepGemm::kWorker;
    runner_cfg.episodes_per_hub = episodes;
    const std::uint64_t before = allocations();
    const auto results = sim::FleetRunner(runner_cfg).run_lockstep(jobs);
    EXPECT_EQ(results.size(), jobs.size());
    return allocations() - before;
  };

  (void)run_with_episodes(2);  // settle any process-wide one-time buffers
  const std::uint64_t short_run = run_with_episodes(2);
  const std::uint64_t long_run = run_with_episodes(6);
  EXPECT_EQ(long_run, short_run)
      << "extra lockstep episodes allocated: the slot loop is not allocation-free";
}


TEST(AllocationAudit, GreedyFleetSlotLoopAllocationFreeAfterWarmup) {
  // The stateful rule-policy path: GreedyPricePolicy computes two trailing
  // percentiles every slot and must do so through its reused scratch buffer
  // (stats::percentile's by-value overload copies — the hot path takes the
  // scratch overload instead).
  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();
  const std::vector<sim::FleetJob> jobs = sim::make_fleet_jobs(
      registry, registry.keys(), 8, 2, sim::SchedulerKind::kGreedyPrice);
  const auto run_with_episodes = [&](std::size_t episodes) {
    sim::FleetRunnerConfig runner_cfg;
    runner_cfg.lockstep_threads = 1;
    runner_cfg.episodes_per_hub = episodes;
    const std::uint64_t before = allocations();
    const auto results = sim::FleetRunner(runner_cfg).run_lockstep(jobs);
    EXPECT_EQ(results.size(), jobs.size());
    return allocations() - before;
  };
  (void)run_with_episodes(2);  // settle any process-wide one-time buffers
  const std::uint64_t short_run = run_with_episodes(2);
  const std::uint64_t long_run = run_with_episodes(6);
  EXPECT_EQ(long_run, short_run)
      << "extra greedy episodes allocated: the percentile scratch is not reused";
}

TEST(AllocationAudit, CoupledMetroSlotLoopAllocationFreeAfterWarmup) {
  // The metro coupling layer rides the same zero-alloc contract: the
  // per-slot CouplingBus exchange (deposit/take/exchange), the 3-arg
  // step_into with its through/outage series, and pending-import drops at
  // episode turnover must all reuse buffers sized at setup — extra coupled
  // episodes may not cost a single allocation.
  const sim::ScenarioRegistry registry = sim::ScenarioRegistry::with_builtins();
  spatial::MetroConfig metro_cfg;
  metro_cfg.num_hubs = 8;
  const spatial::MetroMap metro(metro_cfg, 42);
  const std::vector<sim::FleetJob> jobs = sim::make_metro_fleet_jobs(
      metro, registry, registry.keys(), 2, sim::SchedulerKind::kGreedyPrice);

  const auto run_with_episodes = [&](std::size_t episodes) {
    sim::FleetRunnerConfig runner_cfg;
    runner_cfg.lockstep_threads = 1;
    runner_cfg.episodes_per_hub = episodes;
    const std::uint64_t before = allocations();
    const auto results = sim::FleetRunner(runner_cfg).run_lockstep(jobs);
    EXPECT_EQ(results.size(), jobs.size());
    return allocations() - before;
  };

  (void)run_with_episodes(2);  // settle any process-wide one-time buffers
  const std::uint64_t short_run = run_with_episodes(2);
  const std::uint64_t long_run = run_with_episodes(6);
  EXPECT_EQ(long_run, short_run)
      << "extra coupled episodes allocated: the exchange path is not allocation-free";
}

TEST(AllocationAudit, PricingAndTrafficRegenerateAllocationFreeAfterWarmup) {
  const TimeGrid grid(2, 24);
  traffic::TrafficGenerator traffic_gen(traffic::TrafficConfig{}, Rng(36));
  traffic::TrafficTrace trace;
  traffic_gen.generate_into(grid, trace);  // warm-up

  pricing::RtpGenerator rtp_gen(pricing::RtpConfig{}, Rng(37));
  std::vector<double> rtp;
  rtp_gen.generate_into(grid, trace.load_rate, rtp);  // warm-up

  const pricing::SellingPricePolicy selling(
      pricing::SellingConfig{}, pricing::DiscountSchedule(grid.size()));
  std::vector<double> srtp;
  selling.series_into(rtp, srtp);  // warm-up

  const std::uint64_t before = allocations();
  traffic_gen.generate_into(grid, trace);
  rtp_gen.generate_into(grid, trace.load_rate, rtp);
  selling.series_into(rtp, srtp);
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
}  // namespace ecthub
