// Integration tests: the full pipeline wired end-to-end — dataset -> pricing
// models -> discount schedules -> hub environment -> policies/PPO.
#include "causal/ect_price.hpp"
#include "causal/evaluate.hpp"
#include "causal/uplift.hpp"
#include "core/fleet.hpp"
#include "core/policy_runner.hpp"
#include "policy/rule_policies.hpp"
#include "ev/dataset.hpp"

#include <gtest/gtest.h>

namespace ecthub {
namespace {

/// Majority-vote conversion of per-item decisions into a weekly schedule
/// (mirrors the bench helper; duplicated here deliberately to keep the test
/// independent of bench code).
std::vector<bool> to_schedule(const std::vector<causal::Item>& items,
                              const std::vector<bool>& decisions, std::size_t station) {
  std::vector<std::size_t> yes(24, 0), total(24, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].station_id != station) continue;
    ++total[items[i].hour];
    if (decisions[i]) ++yes[items[i].hour];
  }
  std::vector<bool> out(24, false);
  for (std::size_t h = 0; h < 24; ++h) {
    out[h] = total[h] > 0 && 2 * yes[h] > total[h];
  }
  return out;
}

struct PipelineFixture : public ::testing::Test {
  void SetUp() override {
    ev::DatasetConfig dcfg;
    dcfg.num_stations = 4;
    dcfg.num_days = 90;
    const ev::ChargingDataset dataset(dcfg, Rng(777));
    const auto split = dataset.split(0.8);
    train = causal::encode(split.train);
    test = causal::encode(split.test);

    causal::EctPriceConfig pcfg;
    pcfg.ncf.num_stations = 4;
    pcfg.ncf.embedding_dim = 8;
    pcfg.epochs = 3;
    model = std::make_unique<causal::EctPriceModel>(pcfg, Rng(778));
    model->fit(train);
  }

  std::vector<causal::Item> train, test;
  std::unique_ptr<causal::EctPriceModel> model;
};

TEST_F(PipelineFixture, EctPriceBeatsRandomStratification) {
  const auto preds = model->predict(test);
  const double acc = causal::strata_accuracy(test, preds);
  EXPECT_GT(acc, 0.40);  // 3-class; random-guess is ~1/3 even before priors
}

TEST_F(PipelineFixture, EctPriceRewardBeatsDiscountingEverything) {
  const auto preds = model->predict(test);
  const auto smart = causal::decide_by_strata(preds, 0.3);
  const std::vector<bool> all(test.size(), true);
  const auto smart_out = causal::evaluate_decisions("smart", 0.3, test, smart);
  const auto blanket_out = causal::evaluate_decisions("blanket", 0.3, test, all);
  // Targeted discounting earns positive reward and avoids most Always items;
  // the blanket policy pays the discount to every Always item.
  EXPECT_GT(smart_out.reward, 0.0);
  EXPECT_GE(smart_out.reward, blanket_out.reward);
  EXPECT_LT(smart_out.always, blanket_out.always);
}

TEST_F(PipelineFixture, ScheduleFeedsHubEnvironment) {
  const auto preds = model->predict(test);
  const auto decisions = causal::decide_by_strata(preds, 0.2);
  const auto schedule = to_schedule(test, decisions, 0);

  core::HubConfig hub = core::HubConfig::urban("pipeline", 779);
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 5;
  env_cfg.discount_by_hour = schedule;
  core::EctHubEnv env(hub, env_cfg);
  policy::GreedyPricePolicy sched;
  const auto profits = core::run_policy(env, sched, 2);
  EXPECT_EQ(profits.size(), 2u);
  for (double p : profits) EXPECT_TRUE(std::isfinite(p));
}

TEST_F(PipelineFixture, DiscountsAvoidBusyDaytime) {
  // The end-to-end property the paper's Fig. 12 implies: discounts
  // concentrate off the busy daytime (Always Charge) hours.  Evening hours
  // (18-24h) must receive a higher discount rate than midday (10-16h).
  const auto preds = model->predict(test);
  const auto decisions = causal::decide_by_strata(preds, 0.25);
  std::size_t evening_disc = 0, evening_total = 0, midday_disc = 0, midday_total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const auto schedule = to_schedule(test, decisions, s);
    for (std::size_t t = 0; t < schedule.size(); ++t) {
      const std::size_t hour = t;
      if (hour >= 18) {
        ++evening_total;
        if (schedule[t]) ++evening_disc;
      } else if (hour >= 10 && hour < 16) {
        ++midday_total;
        if (schedule[t]) ++midday_disc;
      }
    }
  }
  const double evening_rate =
      static_cast<double>(evening_disc) / static_cast<double>(evening_total);
  const double midday_rate =
      static_cast<double>(midday_disc) / static_cast<double>(midday_total);
  EXPECT_GT(evening_rate, midday_rate);
}

TEST(Integration, PpoImprovesOverItsOwnStart) {
  // Short training on a tiny hub: final iterations should not be worse than
  // the first (PPO stability, the point of the clip).
  core::DrlExperimentConfig cfg;
  cfg.env.episode_days = 3;
  cfg.ppo.episodes_per_iteration = 2;
  cfg.train_iterations = 6;
  cfg.test_episodes = 2;
  const auto result = core::run_hub_experiment(core::HubConfig::urban("ppo", 780),
                                               std::vector<bool>(24, false), cfg, "PPO");
  ASSERT_EQ(result.train_curve.size(), 6u);
  double first2 = (result.train_curve[0] + result.train_curve[1]) / 2.0;
  double last2 = (result.train_curve[4] + result.train_curve[5]) / 2.0;
  EXPECT_GT(last2, first2 - 2.0);  // never collapses
}

TEST(Integration, UpliftBaselineDrivesPipelineToo) {
  ev::DatasetConfig dcfg;
  dcfg.num_stations = 2;
  dcfg.num_days = 40;
  const ev::ChargingDataset dataset(dcfg, Rng(781));
  const auto split = dataset.split(0.75);
  const auto train = causal::encode(split.train);
  const auto test = causal::encode(split.test);

  causal::UpliftConfig ucfg;
  ucfg.ncf.num_stations = 2;
  ucfg.ncf.embedding_dim = 8;
  ucfg.epochs = 2;
  causal::OutcomeRegression orm(ucfg, Rng(782));
  orm.fit(train);
  const auto decisions = causal::decide_by_uplift(orm.uplift(test));
  const auto schedule = to_schedule(test, decisions, 0);

  core::HubConfig hub = core::HubConfig::rural("or-pipeline", 783);
  core::HubEnvConfig env_cfg;
  env_cfg.episode_days = 3;
  env_cfg.discount_by_hour = schedule;
  core::EctHubEnv env(hub, env_cfg);
  policy::TouPolicy sched;
  const auto profits = core::run_policy(env, sched, 1);
  EXPECT_TRUE(std::isfinite(profits.front()));
}

}  // namespace
}  // namespace ecthub
