// Tests for the from-scratch NN library.  Every layer's analytic gradient is
// verified against central finite differences — the property that keeps the
// hand-written backprop in ECT-Price and PPO trustworthy.
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

namespace ecthub::nn {
namespace {

// ---------------------------------------------------------------- Matrix

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_THROW(m(2, 0), std::out_of_range);
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

// Reference product in the exact accumulation order both shipping kernels
// promise: per output element, k ascending, zero operands of A skipped.  The
// blocked kernel must match this to the last bit, not within a tolerance.
Matrix matmul_reference(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const double av = a(i, k);
        if (av == 0.0) continue;
        out(i, j) += av * b(k, j);
      }
    }
  }
  return out;
}

void expect_bit_equal(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t r = 0; r < want.rows(); ++r) {
    for (std::size_t c = 0; c < want.cols(); ++c) {
      // EXPECT_EQ on doubles is exact — bit-identity is the contract here.
      EXPECT_EQ(got(r, c), want(r, c)) << what << " (" << r << ", " << c << ")";
    }
  }
}

// Comparison against the *test-local* reference above: exact on
// contraction-free builds; under -DECTHUB_NATIVE=ON the compiler may fuse
// the reference's multiply-add differently from the shipping kernels'
// (both are correct — fused is the more precise), so the reference check
// relaxes to a 1-ulp-scale tolerance there.  The load-bearing exact
// identity — blocked kernel vs naive kernel — is pinned through shipping
// code only (see BlockedAndNaiveKernelsAgreeBitExactly), which holds on
// every build.
void expect_matches_reference(const Matrix& got, const Matrix& want, const char* what) {
#if defined(__FP_FAST_FMA)
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t r = 0; r < want.rows(); ++r) {
    for (std::size_t c = 0; c < want.cols(); ++c) {
      EXPECT_NEAR(got(r, c), want(r, c),
                  1e-13 * std::max(1.0, std::abs(want(r, c))))
          << what << " (" << r << ", " << c << ")";
    }
  }
#else
  expect_bit_equal(got, want, what);
#endif
}

TEST(Matrix, BlockedMatmulGoldenAboveTheThreshold) {
  // 16 rows is comfortably above the blocked-kernel threshold; a structured
  // integer-valued product keeps the expected values exactly representable.
  Matrix a(16, 5);
  Matrix b(5, 7);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      a(r, c) = static_cast<double>((r * 5 + c) % 11) - 3.0;
    }
  }
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      b(r, c) = static_cast<double>((r * 7 + c) % 13) - 5.0;
    }
  }
  expect_bit_equal(a.matmul(b), matmul_reference(a, b), "golden 16x5 * 5x7");
}

TEST(Matrix, BlockedMatmulMatchesNaiveAcrossRandomizedShapes) {
  // Randomized sweep across odd / tall / wide / tiny / empty shapes,
  // including zero-entry-dense matrices that exercise the zero-skip and
  // dimensions straddling the kernel-selection threshold and tile sizes.
  Rng rng(20240730);
  const std::size_t rows_set[] = {0, 1, 2, 7, 8, 9, 17, 64, 129};
  const std::size_t inner_set[] = {1, 3, 33, 64};
  const std::size_t cols_set[] = {1, 5, 64, 127, 128, 129, 200};
  for (const std::size_t rows : rows_set) {
    for (const std::size_t inner : inner_set) {
      for (const std::size_t cols : cols_set) {
        Matrix a(rows, inner);
        Matrix b(inner, cols);
        for (double& x : a.data()) {
          x = rng.uniform(0.0, 1.0) < 0.15 ? 0.0 : rng.normal(0.0, 1.0);
        }
        for (double& x : b.data()) x = rng.normal(0.0, 1.0);
        const Matrix want = matmul_reference(a, b);
        const std::string what = std::to_string(rows) + "x" + std::to_string(inner) +
                                 " * " + std::to_string(inner) + "x" + std::to_string(cols);
        expect_matches_reference(a.matmul(b), want, what.c_str());
      }
    }
  }
}

TEST(Matrix, MatmulRowsIntoMatchesTheFullProductRowBlocks) {
  // Arbitrary row blocks — 1-row, ragged, threshold-straddling — of the
  // full product must come out bit-identical, whichever kernel each side
  // picks.  This is the sharding contract the worker-GEMM fleet path uses.
  Rng rng(77);
  const Matrix a = Matrix::randn(37, 12, rng);
  const Matrix b = Matrix::randn(12, 9, rng);
  const Matrix full = a.matmul(b);
  const std::size_t splits[][2] = {{0, 37}, {0, 1},  {36, 37}, {0, 8},
                                   {8, 19}, {19, 37}, {5, 6},  {13, 13}};
  Matrix block;  // reused: exercises the capacity-reusing resize too
  for (const auto& split : splits) {
    a.matmul_rows_into(b, split[0], split[1], block);
    ASSERT_EQ(block.rows(), split[1] - split[0]);
    for (std::size_t r = split[0]; r < split[1]; ++r) {
      for (std::size_t c = 0; c < full.cols(); ++c) {
        EXPECT_EQ(block(r - split[0], c), full(r, c))
            << "rows [" << split[0] << ", " << split[1] << ") at (" << r << ", " << c << ")";
      }
    }
  }
  EXPECT_THROW(a.matmul_rows_into(b, 5, 4, block), std::invalid_argument);
  EXPECT_THROW(a.matmul_rows_into(b, 0, 38, block), std::invalid_argument);
  EXPECT_THROW(a.matmul_rows_into(b, 0, 37, const_cast<Matrix&>(a)),
               std::invalid_argument);
}

TEST(Matrix, BlockedAndNaiveKernelsAgreeBitExactly) {
  // The determinism contract through shipping code only, on EVERY build
  // (portable or -march=native): a right-hand side big enough to select the
  // blocked kernel for the full product, recomputed in sub-threshold row
  // blocks that take the naive kernel — the two kernels must agree to the
  // last bit, because per-hub decide() (naive, 1 row) and fleet-wide
  // decide_batch (blocked) must never diverge.
  Rng rng(4242);
  Matrix a = Matrix::randn(67, 80, rng);
  const Matrix b = Matrix::randn(80, 80, rng);  // 80x80x8 B = 50 KiB: blocked
  // Sprinkle exact zeros into A so the kernels' zero-skip is exercised too.
  Rng zrng(9);
  for (double& x : a.data()) {
    if (zrng.uniform(0.0, 1.0) < 0.1) x = 0.0;
  }
  const Matrix full = a.matmul(b);
  Matrix block;
  for (std::size_t r = 0; r < a.rows(); r += 3) {  // 3-row blocks: naive kernel
    const std::size_t end = std::min(r + 3, a.rows());
    a.matmul_rows_into(b, r, end, block);
    for (std::size_t i = r; i < end; ++i) {
      for (std::size_t c = 0; c < full.cols(); ++c) {
        EXPECT_EQ(block(i - r, c), full(i, c)) << "(" << i << ", " << c << ")";
      }
    }
  }
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix a = Matrix::randn(3, 5, rng);
  const Matrix att = a.transpose().transpose();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
  }
}

TEST(Matrix, AddRowVectorBroadcasts) {
  Matrix m(2, 2, 1.0);
  const Matrix row = Matrix::from_rows({{10.0, 20.0}});
  m.add_row_vector(row);
  EXPECT_DOUBLE_EQ(m(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 21.0);
  EXPECT_THROW(m.add_row_vector(Matrix(1, 3)), std::invalid_argument);
}

TEST(Matrix, ColSum) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix s = m.col_sum();
  EXPECT_DOUBLE_EQ(s(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 6.0);
}

TEST(Matrix, HconcatAndSlice) {
  const Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{3}});
  const Matrix ab = a.hconcat(b);
  EXPECT_EQ(ab.cols(), 3u);
  EXPECT_DOUBLE_EQ(ab(0, 2), 3.0);
  const Matrix back = ab.slice_cols(0, 2);
  EXPECT_DOUBLE_EQ(back(0, 1), 2.0);
  EXPECT_THROW(ab.slice_cols(2, 1), std::invalid_argument);
}

TEST(Matrix, HadamardAndScale) {
  const Matrix a = Matrix::from_rows({{2, 3}});
  const Matrix b = Matrix::from_rows({{4, 5}});
  const Matrix h = a.hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 8.0);
  Matrix c = a;
  c.scale_inplace(2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 6.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {1}}), std::invalid_argument);
}

// ---------------------------------------------------------------- softmax

TEST(Softmax, RowsSumToOne) {
  const Matrix logits = Matrix::from_rows({{1.0, 2.0, 3.0}, {-5.0, 0.0, 5.0}});
  const Matrix s = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += s(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Matrix logits = Matrix::from_rows({{1000.0, 999.0}});
  const Matrix s = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(s(0, 0)));
  EXPECT_GT(s(0, 0), s(0, 1));
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  Rng rng(2);
  Matrix logits = Matrix::randn(2, 4, rng);
  const Matrix dupstream = Matrix::randn(2, 4, rng);
  const Matrix s = softmax_rows(logits);
  const Matrix dlogits = softmax_backward(s, dupstream);

  const double eps = 1e-6;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      Matrix plus = logits, minus = logits;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const Matrix sp = softmax_rows(plus), sm = softmax_rows(minus);
      double fd = 0.0;
      for (std::size_t j = 0; j < 4; ++j) {
        fd += dupstream(r, j) * (sp(r, j) - sm(r, j)) / (2.0 * eps);
      }
      EXPECT_NEAR(dlogits(r, c), fd, 1e-6);
    }
  }
}

// ---------------------------------------------------------------- Dense

TEST(Dense, ForwardComputesAffine) {
  Rng rng(3);
  Dense d(2, 1, rng);
  d.weights()(0, 0) = 2.0;
  d.weights()(1, 0) = 3.0;
  const Matrix x = Matrix::from_rows({{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(d.forward(x)(0, 0), 5.0);  // bias starts at 0
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Rng rng(4);
  Dense d(2, 2, rng);
  EXPECT_THROW(d.backward(Matrix(1, 2)), std::logic_error);
}

TEST(Dense, GradientMatchesFiniteDifference) {
  // Scalar loss L = sum(Y); checks dW, db and dX.
  Rng rng(5);
  Dense d(3, 2, rng);
  const Matrix x = Matrix::randn(4, 3, rng);

  d.zero_grad();
  Matrix y = d.forward(x);
  const Matrix dy(4, 2, 1.0);  // dL/dY = 1
  const Matrix dx = d.backward(dy);

  auto params = d.parameters();
  const double eps = 1e-6;
  // dW check (first weight entry).
  {
    Matrix& w = *params[0].value;
    const Matrix& dw = *params[0].grad;
    const double orig = w(0, 0);
    w(0, 0) = orig + eps;
    const double lp = d.forward(x).data()[0] + d.forward(x).data()[1];  // recompute fully below
    (void)lp;
    w(0, 0) = orig;
    // Full-loss finite difference:
    auto loss_at = [&](double v) {
      w(0, 0) = v;
      const Matrix out = d.forward(x);
      double acc = 0.0;
      for (double e : out.data()) acc += e;
      return acc;
    };
    const double fd = (loss_at(orig + eps) - loss_at(orig - eps)) / (2.0 * eps);
    w(0, 0) = orig;
    EXPECT_NEAR(dw(0, 0), fd, 1e-5);
  }
  // dX check.
  {
    auto loss_at = [&](Matrix xm) {
      const Matrix out = d.forward(xm);
      double acc = 0.0;
      for (double e : out.data()) acc += e;
      return acc;
    };
    Matrix xp = x, xm = x;
    xp(1, 2) += eps;
    xm(1, 2) -= eps;
    const double fd = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx(1, 2), fd, 1e-5);
  }
}

// ---------------------------------------------------------------- Embedding

TEST(Embedding, LooksUpRows) {
  Rng rng(6);
  Embedding e(5, 3, rng);
  const Matrix out = e.forward({2, 2, 4});
  EXPECT_EQ(out.rows(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(out(0, c), e.table()(2, c));
    EXPECT_DOUBLE_EQ(out(1, c), e.table()(2, c));
    EXPECT_DOUBLE_EQ(out(2, c), e.table()(4, c));
  }
}

TEST(Embedding, OutOfVocabThrows) {
  Rng rng(7);
  Embedding e(5, 3, rng);
  EXPECT_THROW(e.forward({5}), std::out_of_range);
}

TEST(Embedding, BackwardAccumulatesDuplicateIds) {
  Rng rng(8);
  Embedding e(4, 2, rng);
  e.zero_grad();
  e.forward({1, 1});
  const Matrix dy = Matrix::from_rows({{1.0, 0.0}, {2.0, 0.0}});
  e.backward(dy);
  const Matrix* grad = e.parameters()[0].grad;
  EXPECT_DOUBLE_EQ((*grad)(1, 0), 3.0);  // both rows hit id 1
  EXPECT_DOUBLE_EQ((*grad)(0, 0), 0.0);
}

// ---------------------------------------------------------------- activations

class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradTest, MatchesFiniteDifference) {
  Rng rng(9);
  ActivationLayer act(GetParam());
  const Matrix x = Matrix::randn(3, 3, rng);
  act.forward(x);
  const Matrix dy(3, 3, 1.0);
  const Matrix dx = act.backward(dy);

  const double eps = 1e-6;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      Matrix xp = x, xm = x;
      xp(r, c) += eps;
      xm(r, c) -= eps;
      ActivationLayer a2(GetParam());
      const double fd =
          (a2.forward(xp)(r, c) - a2.forward(xm)(r, c)) / (2.0 * eps);
      EXPECT_NEAR(dx(r, c), fd, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradTest,
                         ::testing::Values(Activation::kRelu, Activation::kSigmoid,
                                           Activation::kTanh, Activation::kIdentity));

// ---------------------------------------------------------------- MLP

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(10);
  Mlp mlp(MlpConfig{.layer_dims = {4, 8, 2}}, rng);
  EXPECT_EQ(mlp.in_dim(), 4u);
  EXPECT_EQ(mlp.out_dim(), 2u);
  EXPECT_EQ(mlp.parameters().size(), 4u);  // 2 layers x (W, b)
  const Matrix x = Matrix::randn(5, 4, rng);
  EXPECT_EQ(mlp.forward(x).cols(), 2u);
}

TEST(Mlp, NeedsAtLeastTwoDims) {
  Rng rng(11);
  EXPECT_THROW(Mlp(MlpConfig{.layer_dims = {4}}, rng), std::invalid_argument);
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  Rng rng(12);
  Mlp mlp(MlpConfig{.layer_dims = {3, 5, 1},
                    .hidden_activation = Activation::kTanh,
                    .output_activation = Activation::kSigmoid},
          rng, "fd");
  const Matrix x = Matrix::randn(2, 3, rng);

  auto loss_of = [&]() {
    const Matrix out = mlp.forward(x);
    double acc = 0.0;
    for (double e : out.data()) acc += e * e;
    return 0.5 * acc;
  };

  mlp.zero_grad();
  const Matrix out = mlp.forward(x);
  Matrix dy = out;  // dL/dY = Y for L = 0.5 sum Y^2
  mlp.backward(dy);

  auto params = mlp.parameters();
  const double eps = 1e-6;
  for (auto& p : params) {
    // Spot check 2 entries per tensor.
    for (std::size_t k = 0; k < std::min<std::size_t>(2, p.value->data().size()); ++k) {
      const double orig = p.value->data()[k];
      p.value->data()[k] = orig + eps;
      const double lp = loss_of();
      p.value->data()[k] = orig - eps;
      const double lm = loss_of();
      p.value->data()[k] = orig;
      EXPECT_NEAR(p.grad->data()[k], (lp - lm) / (2.0 * eps), 1e-5) << p.name;
    }
  }
}

// ---------------------------------------------------------------- losses

TEST(Loss, MseValueAndGradient) {
  const Matrix pred = Matrix::from_rows({{1.0, 2.0}});
  const Matrix target = Matrix::from_rows({{0.0, 4.0}});
  const auto [loss, grad] = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 2.0 * -2.0 / 2.0);
}

TEST(Loss, BceAtConfidentCorrectIsSmall) {
  const Matrix pred = Matrix::from_rows({{0.999}});
  const Matrix target = Matrix::from_rows({{1.0}});
  const auto [loss, grad] = bce_loss(pred, target);
  EXPECT_LT(loss, 0.01);
  EXPECT_LT(grad(0, 0), 0.0);  // pushes prediction up
}

TEST(Loss, BceClampsExtremes) {
  const Matrix pred = Matrix::from_rows({{0.0}});
  const Matrix target = Matrix::from_rows({{1.0}});
  const auto [loss, grad] = bce_loss(pred, target);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(std::isfinite(grad(0, 0)));
}

TEST(Loss, ShapeMismatchThrows) {
  EXPECT_THROW(mse_loss(Matrix(1, 2), Matrix(2, 1)), std::invalid_argument);
  EXPECT_THROW(bce_loss(Matrix(1, 2), Matrix(2, 1)), std::invalid_argument);
}

// ---------------------------------------------------------------- optimizers

TEST(Sgd, MovesAgainstGradient) {
  Matrix w(1, 1, 1.0), g(1, 1, 0.5);
  std::vector<Parameter> params = {{"w", &w, &g}};
  Sgd(0.1).step(params);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.95);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 from w = 0.
  Matrix w(1, 1, 0.0), g(1, 1, 0.0);
  std::vector<Parameter> params = {{"w", &w, &g}};
  Adam opt(AdamConfig{.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    g(0, 0) = 2.0 * (w(0, 0) - 3.0);
    opt.step(params);
  }
  EXPECT_NEAR(w(0, 0), 3.0, 0.01);
}

TEST(Adam, WeightDecayShrinksWeights) {
  Matrix w(1, 1, 5.0), g(1, 1, 0.0);
  std::vector<Parameter> params = {{"w", &w, &g}};
  Adam opt(AdamConfig{.lr = 0.01, .weight_decay = 0.1});
  for (int i = 0; i < 100; ++i) opt.step(params);
  EXPECT_LT(w(0, 0), 5.0);
}

TEST(Adam, GradClipBoundsUpdateScale) {
  // With an enormous gradient and clip = 1, the first Adam step is bounded by
  // ~lr regardless of gradient magnitude.
  Matrix w(1, 1, 0.0), g(1, 1, 1e9);
  std::vector<Parameter> params = {{"w", &w, &g}};
  Adam opt(AdamConfig{.lr = 0.1, .grad_clip = 1.0});
  opt.step(params);
  EXPECT_LT(std::abs(w(0, 0)), 0.2);
}

TEST(Adam, StepCounterAdvances) {
  Matrix w(1, 1, 0.0), g(1, 1, 1.0);
  std::vector<Parameter> params = {{"w", &w, &g}};
  Adam opt(AdamConfig{});
  opt.step(params);
  opt.step(params);
  EXPECT_EQ(opt.steps_taken(), 2u);
}

TEST(Softmax, RowIntoMatchesBatchSoftmaxBitExactly) {
  // softmax_row_into is the per-row kernel of the vectorized rollout
  // collector; it must replicate softmax_rows' op sequence exactly so row
  // sampling is bit-identical to the batched path.
  Rng rng(77);
  Matrix logits = Matrix::randn(5, 4, rng);
  logits.scale_inplace(30.0);  // large logits stress the max-stabilization
  const Matrix batch = softmax_rows(logits);
  std::vector<double> row;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    softmax_row_into(logits, r, row);
    ASSERT_EQ(row.size(), logits.cols());
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      EXPECT_EQ(row[c], batch(r, c)) << "(" << r << "," << c << ")";
    }
  }
}

TEST(Softmax, RowIntoRejectsOutOfRangeRow) {
  const Matrix logits(2, 3, 0.0);
  std::vector<double> row;
  EXPECT_THROW(softmax_row_into(logits, 2, row), std::out_of_range);
}

TEST(Dense, ConstParameterViewsAliasTheWeights) {
  Rng rng(5);
  Dense layer(2, 3, rng, "d");
  const Dense& view = layer;
  const auto params = view.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "d.W");
  EXPECT_EQ(params[1].name, "d.b");
  // Same storage as the mutable views — a const export serializes the live
  // weights, not a copy.
  auto mutable_params = layer.parameters();
  EXPECT_EQ(params[0].value, mutable_params[0].value);
  EXPECT_EQ(params[1].value, mutable_params[1].value);
}

}  // namespace
}  // namespace ecthub::nn
