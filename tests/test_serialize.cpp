// Round-trip tests for model checkpointing.
#include "causal/ect_price.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ecthub::nn {
namespace {

TEST(Serialize, MlpRoundTripReproducesOutputs) {
  Rng rng(1);
  Mlp a(MlpConfig{.layer_dims = {4, 8, 2}}, rng, "m");
  Rng rng2(2);
  Mlp b(MlpConfig{.layer_dims = {4, 8, 2}}, rng2, "m");

  const Matrix x = Matrix::randn(3, 4, rng);
  // Different inits -> different outputs.
  EXPECT_NE(a.forward(x).data(), b.forward(x).data());

  std::stringstream buf;
  auto pa = a.parameters();
  save_parameters(buf, pa);
  auto pb = b.parameters();
  load_parameters(buf, pb);
  EXPECT_EQ(a.forward(x).data(), b.forward(x).data());
}

TEST(Serialize, NameMismatchThrows) {
  Rng rng(3);
  Mlp a(MlpConfig{.layer_dims = {2, 2}}, rng, "alpha");
  Mlp b(MlpConfig{.layer_dims = {2, 2}}, rng, "beta");
  std::stringstream buf;
  auto pa = a.parameters();
  save_parameters(buf, pa);
  auto pb = b.parameters();
  EXPECT_THROW(load_parameters(buf, pb), std::runtime_error);
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(4);
  Mlp a(MlpConfig{.layer_dims = {2, 3}}, rng, "m");
  Mlp b(MlpConfig{.layer_dims = {2, 4}}, rng, "m");
  std::stringstream buf;
  auto pa = a.parameters();
  save_parameters(buf, pa);
  auto pb = b.parameters();
  EXPECT_THROW(load_parameters(buf, pb), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  Rng rng(5);
  Mlp a(MlpConfig{.layer_dims = {2, 2}}, rng, "m");
  std::stringstream buf;
  auto pa = a.parameters();
  save_parameters(buf, pa);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_parameters(cut, pa), std::runtime_error);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buf("not a checkpoint at all........");
  Rng rng(6);
  Mlp a(MlpConfig{.layer_dims = {2, 2}}, rng, "m");
  auto pa = a.parameters();
  EXPECT_THROW(load_parameters(buf, pa), std::runtime_error);
}

TEST(Serialize, EctPriceModelCheckpointRestoresPredictions) {
  // End-to-end: train a model, checkpoint, restore into a fresh model with
  // a different seed, and verify identical predictions.
  using namespace ecthub::causal;
  EctPriceConfig cfg;
  cfg.ncf.num_stations = 2;
  cfg.ncf.embedding_dim = 4;
  cfg.ncf.hidden_dims = {8};
  cfg.epochs = 1;
  std::vector<Item> items;
  Rng data_rng(7);
  for (int k = 0; k < 200; ++k) {
    Item it;
    it.station_id = k % 2;
    it.time_id = k % 24;
    it.treated = data_rng.bernoulli(0.5);
    it.charged = data_rng.bernoulli(0.3);
    items.push_back(it);
  }
  EctPriceModel trained(cfg, Rng(8));
  trained.fit(items);
  EctPriceModel restored(cfg, Rng(999));

  std::stringstream buf;
  auto pt = trained.parameters();
  save_parameters(buf, pt);
  auto pr = restored.parameters();
  load_parameters(buf, pr);

  const auto a = trained.predict_one(0, 5);
  const auto b = restored.predict_one(0, 5);
  EXPECT_DOUBLE_EQ(a.p_incentive, b.p_incentive);
  EXPECT_DOUBLE_EQ(a.p_always, b.p_always);
  EXPECT_DOUBLE_EQ(a.propensity, b.propensity);
}

}  // namespace
}  // namespace ecthub::nn
